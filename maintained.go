package evolving

// The incrementally maintained analytics surface: a Maintainer rolls
// weak components and temporal Katz forward epoch by epoch at
// delta-proportional cost instead of recomputing them from scratch
// (internal/inc, DESIGN.md §13). Hand one to the ingest write path and
// every compaction publishes maintained results alongside the patched
// graph; the query service then serves /components/weak and /katz from
// them and carries provably unaffected cache entries across the swap.
//
//	srv := evolving.NewQueryServer(g, evolving.ServerConfig{})
//	log, _ := evolving.NewIngestLog(srv, evolving.IngestConfig{
//		WAL:       wal,
//		Analytics: evolving.NewMaintainer(evolving.MaintainerConfig{}),
//	})
//	srv.AttachIngest(log)
//
// cmd/egserve wires exactly this (flag -inc, on by default).

import (
	"repro/internal/inc"
	"repro/internal/ingest"
)

// Maintainer maintains weak components and temporal Katz across
// ArcDelta epochs; construct with NewMaintainer.
type Maintainer = inc.Maintainer

// MaintainerConfig tunes a Maintainer (Katz alpha, churn thresholds
// past which it falls back to the verbatim full recomputations).
type MaintainerConfig = inc.Config

// MaintainedResults is one epoch's maintained output: the weak
// partition, both causal modes' Katz vectors, and the delta
// classification behind the cache carry-over.
type MaintainedResults = inc.Results

// MaintainerStats counts how epochs were absorbed (incremental vs
// full-recompute fallback), surfaced under /ingest/stats.
type MaintainerStats = inc.Stats

// MaintainerSeriesTol is the truncation tolerance of the maintained
// Katz series and of the full recomputations the Maintainer races
// against (inc.SeriesTol): differential harnesses comparing maintained
// scores to evolving.TemporalKatz should pass it as KatzOptions.Tol so
// both sides approximate the same fixpoint.
const MaintainerSeriesTol = inc.SeriesTol

// NewMaintainer builds an incremental analytics maintainer.
func NewMaintainer(cfg MaintainerConfig) *Maintainer {
	return inc.New(cfg)
}

// EventDeltas lowers an ingest event stream to the arc-level deltas
// PatchGraph and Maintainer.Apply consume (stamp registrations carry no
// arc change and drop out).
func EventDeltas(events []IngestEvent) []ArcDelta {
	return ingest.Deltas(events)
}

// IngestAnalyticsPublisher is the extended publisher seam: a Publisher
// that also accepts maintained results with each snapshot swap.
type IngestAnalyticsPublisher = ingest.AnalyticsPublisher

// A QueryServer accepts maintained results: ReplaceGraphWithAnalytics
// and PublishAnalytics extend the publisher seam so the compactor can
// hand analytics along with each snapshot.
var _ IngestAnalyticsPublisher = (*QueryServer)(nil)
