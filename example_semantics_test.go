package evolving_test

import (
	"fmt"
	"log"

	evolving "repro"
)

// The four temporal-path criteria on the paper's running example:
// shortest hops, earliest arrival, latest departure, fastest duration.
func ExampleComparePathCriteria() {
	g := evolving.Figure1Graph()
	sum, err := evolving.ComparePathCriteria(g, 0, 2, evolving.CausalAllPairs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("reachable:", sum.Reachable)
	fmt.Println("shortest hops:", sum.ShortestHops)
	fmt.Println("earliest arrival:", sum.EarliestArrival)
	fmt.Println("latest departure:", sum.LatestDeparture)
	fmt.Println("fastest duration:", sum.FastestDuration)
	// Output:
	// reachable: true
	// shortest hops: 2
	// earliest arrival: 2
	// latest departure: 2
	// fastest duration: 0
}

// Foremost arrivals: the earliest stamp at which each node of the
// Fig. 1 graph can be reached from (1, t1).
func ExampleForemost() {
	g := evolving.Figure1Graph()
	fm, err := evolving.Foremost(g, evolving.TemporalNode{Node: 0, Stamp: 0}, evolving.CausalAllPairs)
	if err != nil {
		log.Fatal(err)
	}
	for v := int32(0); v < 3; v++ {
		if lbl, ok := fm.ArrivalLabel(v); ok {
			fmt.Printf("node %d: earliest arrival at time %d\n", v+1, lbl)
		}
	}
	// Output:
	// node 1: earliest arrival at time 1
	// node 2: earliest arrival at time 1
	// node 3: earliest arrival at time 2
}

// A dynamic store mutates under snapshot isolation: a pinned view never
// changes, later snapshots see the updates.
func ExampleDynamicStore() {
	store, err := evolving.NewDynamicStore(3, []int64{1, 2, 3}, true)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := store.Apply([]evolving.Update{
		{U: 0, V: 1, T: 0, Op: evolving.Insert},
		{U: 0, V: 2, T: 1, Op: evolving.Insert},
		{U: 1, V: 2, T: 2, Op: evolving.Insert},
	}); err != nil {
		log.Fatal(err)
	}
	pinned := store.Snapshot()
	if _, err := store.Apply([]evolving.Update{
		{U: 0, V: 1, T: 0, Op: evolving.Delete},
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("pinned edges:", pinned.NumEdges())
	fmt.Println("current edges:", store.Snapshot().NumEdges())

	// The pinned snapshot freezes into the Fig. 1 graph.
	g := pinned.Freeze()
	res, err := evolving.BFS(g, evolving.TemporalNode{Node: 0, Stamp: 0}, evolving.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("reached from (1,t1):", res.NumReached())
	// Output:
	// pinned edges: 3
	// current edges: 2
	// reached from (1,t1): 6
}

// Greedy influence maximization on the Fig. 1 graph: node 1 alone
// influences everything, so one seed suffices.
func ExampleGreedyInfluence() {
	g := evolving.Figure1Graph()
	seeds, err := evolving.GreedyInfluence(g, 3, evolving.InfluenceOptions{})
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range seeds {
		fmt.Printf("seed node %d: +%d nodes, %d covered\n", s.Node+1, s.Gain, s.Covered)
	}
	// Output:
	// seed node 1: +3 nodes, 3 covered
}

// Reach sketches give O(1) influence-size estimates; below k distinct
// reachable nodes they are exact.
func ExampleBuildReachSketches() {
	g := evolving.Figure1Graph()
	est, err := evolving.BuildReachSketches(g, evolving.CausalAllPairs, 8, 42)
	if err != nil {
		log.Fatal(err)
	}
	for _, ne := range est.TopK(3) {
		fmt.Printf("node %d influences %.0f node(s)\n", ne.Node+1, ne.Influence)
	}
	// Output:
	// node 1 influences 3 node(s)
	// node 2 influences 2 node(s)
	// node 3 influences 1 node(s)
}
