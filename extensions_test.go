package evolving_test

import (
	"bytes"
	"testing"

	evolving "repro"
)

// The extension surface: future-work sparse algebraic BFS, the
// direction-optimizing BFS, connectivity, and ranking.
func TestPublicAPIExtensions(t *testing.T) {
	g := evolving.Figure1Graph()
	root := evolving.TemporalNode{Node: 0, Stamp: 0}
	target := evolving.TemporalNode{Node: 2, Stamp: 2}

	sparse, err := evolving.SparseABFS(g, root, evolving.CausalAllPairs)
	if err != nil || sparse[target] != 3 {
		t.Fatalf("SparseABFS = %v, %v", sparse, err)
	}

	hyb, err := evolving.HybridBFS(g, root, evolving.HybridOptions{})
	if err != nil || hyb.Dist(target) != 3 {
		t.Fatal("HybridBFS disagrees")
	}

	weak := evolving.WeakComponents(g, evolving.CausalAllPairs)
	if len(weak) != 1 || len(weak[0]) != 6 {
		t.Fatalf("WeakComponents = %v", weak)
	}
	if sccs := evolving.StrongComponents(g, 2); len(sccs) != 0 {
		t.Fatalf("StrongComponents = %v, want none (DAG)", sccs)
	}
	out, err := evolving.OutComponent(g, root, evolving.CausalAllPairs)
	if err != nil || len(out) != 6 {
		t.Fatalf("OutComponent = %v", out)
	}

	pr, err := evolving.EvolvingPageRank(g, evolving.PageRankOptions{})
	if err != nil || len(pr.Scores) != 3 {
		t.Fatal("EvolvingPageRank wrong")
	}
	katz, err := evolving.TemporalKatz(g, evolving.KatzOptions{Alpha: 0.5})
	if err != nil || len(katz) != 9 {
		t.Fatal("TemporalKatz wrong")
	}
}

func TestPublicAPIGraphMethods(t *testing.T) {
	g := evolving.Figure1Graph()
	if g.Slice(2, 3).NumStamps() != 2 {
		t.Fatal("Slice wrong")
	}
	if g.Flatten().NumStamps() != 1 {
		t.Fatal("Flatten wrong")
	}
	if g.InducedSubgraph([]int32{0, 1}).StaticEdgeCount() != 1 {
		t.Fatal("InducedSubgraph wrong")
	}
	s := g.Stats()
	if s.ActiveNodes != 6 {
		t.Fatalf("Stats = %+v", s)
	}
	if g.TimeReverse().NumStamps() != 3 {
		t.Fatal("TimeReverse wrong")
	}
	u := g.Unfold(evolving.CausalAllPairs)
	if u.Graph.NumArcs() != 6 {
		t.Fatal("Unfold wrong")
	}
}

func TestPublicAPITraversalExtensions(t *testing.T) {
	g := evolving.Figure1Graph()
	root := evolving.TemporalNode{Node: 0, Stamp: 0}

	count := 0
	err := evolving.DFS(g, root, evolving.Options{}, func(n evolving.TemporalNode, ev evolving.DFSEvent) bool {
		if ev == evolving.Discover {
			count++
		}
		return true
	})
	if err != nil || count != 6 {
		t.Fatalf("DFS discovered %d, err %v", count, err)
	}

	order, err := evolving.TopologicalOrder(g, evolving.CausalAllPairs)
	if err != nil || len(order) != 6 {
		t.Fatalf("TopologicalOrder = %v, %v", order, err)
	}
	if !evolving.IsTemporalDAG(g) {
		t.Fatal("Fig. 1 should be a temporal DAG")
	}

	c := evolving.TransitiveClosure(g, evolving.CausalAllPairs)
	if !c.Reaches(root, evolving.TemporalNode{Node: 2, Stamp: 2}) {
		t.Fatal("closure wrong")
	}
	if evolving.TemporalDiameter(g, evolving.CausalAllPairs) != 3 {
		t.Fatal("diameter wrong")
	}
}

func TestPublicAPIBinaryIO(t *testing.T) {
	g := evolving.Figure1Graph()
	var buf bytes.Buffer
	if err := evolving.WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := evolving.ReadBinary(&buf)
	if err != nil || g2.StaticEdgeCount() != 3 {
		t.Fatal("binary round trip wrong")
	}
}

func TestPublicAPIReachIndexAndEfficiency(t *testing.T) {
	g := evolving.Figure1Graph()
	idx, err := evolving.BuildReachIndex(g, evolving.CausalAllPairs)
	if err != nil {
		t.Fatal(err)
	}
	if !idx.Reaches(evolving.TemporalNode{Node: 0, Stamp: 0}, evolving.TemporalNode{Node: 2, Stamp: 2}) {
		t.Fatal("reach index wrong")
	}
	st := evolving.GlobalEfficiency(g, evolving.CausalAllPairs)
	if st.Diameter != 3 {
		t.Fatalf("efficiency stats = %+v", st)
	}
	arr, err := evolving.EarliestArrival(g, evolving.TemporalNode{Node: 0, Stamp: 0}, evolving.CausalAllPairs)
	if err != nil || arr[2] != 1 {
		t.Fatalf("EarliestArrival = %v, %v", arr, err)
	}
	stats := evolving.AllSourcesBFS(g, evolving.CausalAllPairs, 2)
	if len(stats) != 6 {
		t.Fatal("AllSourcesBFS wrong")
	}
}
