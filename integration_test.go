package evolving_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	evolving "repro"
)

// TestDynamicLifecycleEndToEnd drives the whole extension stack as one
// pipeline: mutate a journalled dynamic store, crash it (truncate the
// log mid-record), recover, freeze the survivor, search it with the
// paper's BFS, cross-check the four path criteria, and finally query
// the same graph over HTTP. Every hand-off between subsystems must
// preserve the graph exactly.
func TestDynamicLifecycleEndToEnd(t *testing.T) {
	const nodes, stamps = 60, 6
	times := []int64{1, 2, 3, 4, 5, 6}

	var journal bytes.Buffer
	logged, err := evolving.NewLoggedStore(&journal, nodes, times, true)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	const fullBatches = 10
	for b := 0; b < fullBatches; b++ {
		var batch []evolving.Update
		for len(batch) < 25 {
			u := int32(rng.Intn(nodes))
			v := int32(rng.Intn(nodes))
			if u == v {
				continue
			}
			op := evolving.Insert
			if rng.Intn(6) == 0 {
				op = evolving.Delete
			}
			batch = append(batch, evolving.Update{U: u, V: v, T: int32(rng.Intn(stamps)), Op: op})
		}
		if _, err := logged.Apply(batch); err != nil {
			t.Fatal(err)
		}
	}

	// Crash: lose the tail of the journal mid-record.
	blob := journal.Bytes()
	cut := len(blob) - 17
	recovered, batches, err := evolving.ReplayJournal(bytes.NewReader(blob[:cut]))
	if !errors.Is(err, evolving.ErrTruncatedJournal) {
		t.Fatalf("replay of torn journal: err = %v, want ErrTruncatedJournal", err)
	}
	if batches != fullBatches-1 {
		t.Fatalf("recovered %d batches, want %d", batches, fullBatches-1)
	}

	// Re-apply the lost batch to the recovered store and the states
	// must converge — the journal holds exactly what was applied.
	full, n, err := evolving.ReplayJournal(bytes.NewReader(blob))
	if err != nil || n != fullBatches {
		t.Fatalf("clean replay: %d batches, %v", n, err)
	}
	gRecovered := recovered.Snapshot().Freeze()
	gFull := full.Snapshot().Freeze()
	gLive := logged.Store.Snapshot().Freeze()
	if gFull.StaticEdgeCount() != gLive.StaticEdgeCount() {
		t.Fatalf("replayed store has %d edges, live store %d", gFull.StaticEdgeCount(), gLive.StaticEdgeCount())
	}
	if gRecovered.StaticEdgeCount() == 0 {
		t.Fatal("recovered store is empty — truncation recovery lost everything")
	}

	// Search the frozen survivor with the paper's BFS and cross-check
	// against the sequential criteria layer.
	var root evolving.TemporalNode
	rootSet := false
	for v := int32(0); v < int32(gFull.NumNodes()) && !rootSet; v++ {
		if st := gFull.ActiveStamps(v); len(st) > 0 {
			root = evolving.TemporalNode{Node: v, Stamp: st[0]}
			rootSet = true
		}
	}
	if !rootSet {
		t.Fatal("no active node in frozen graph")
	}
	res, err := evolving.BFS(gFull, root, evolving.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumReached() < 1 {
		t.Fatal("BFS reached nothing")
	}

	// Every node the BFS reaches must be Reachable per the criteria
	// layer, with EarliestArrival ≥ the departure label.
	depart := gFull.TimeLabel(int(root.Stamp))
	checked := 0
	for v := int32(0); v < int32(gFull.NumNodes()) && checked < 10; v++ {
		if len(gFull.ActiveStamps(v)) == 0 || v == root.Node {
			continue
		}
		reachedAny := false
		for _, s := range gFull.ActiveStamps(v) {
			if res.Reached(evolving.TemporalNode{Node: v, Stamp: s}) {
				reachedAny = true
				break
			}
		}
		sum, err := evolving.ComparePathCriteria(gFull, root.Node, v, evolving.CausalAllPairs)
		if err != nil {
			t.Fatal(err)
		}
		if sum.Reachable != reachedAny {
			t.Fatalf("node %d: criteria reachable=%v, BFS=%v", v, sum.Reachable, reachedAny)
		}
		if sum.Reachable && sum.EarliestArrival < depart {
			t.Fatalf("node %d: arrival %d before departure %d", v, sum.EarliestArrival, depart)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("integration check exercised no targets")
	}

	// Serve the same graph over HTTP and confirm the wire answers match
	// the in-process ones.
	h := evolving.HTTPHandler(gFull)
	req := httptest.NewRequest(http.MethodGet, "/stats", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("/stats: %d", rec.Code)
	}
	var stats struct {
		Nodes       int `json:"nodes"`
		StaticEdges int `json:"staticEdges"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Nodes != gFull.NumNodes() || stats.StaticEdges != gFull.StaticEdgeCount() {
		t.Fatalf("HTTP stats %+v disagree with graph (%d nodes, %d edges)",
			stats, gFull.NumNodes(), gFull.StaticEdgeCount())
	}
}

// TestSketchAgreesWithInfluenceSpread ties the two influence estimators
// together: at exact-regime k the sketch must equal InfluenceSpread for
// single seeds (both count distinct influenced nodes, forward
// orientation).
func TestSketchAgreesWithInfluenceSpread(t *testing.T) {
	g := evolving.GNP(120, 5, 0.01, true, 31)
	est, err := evolving.BuildReachSketches(g, evolving.CausalAllPairs, g.NumNodes()+8, 4)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for v := int32(0); v < int32(g.NumNodes()); v += 5 {
		sk, ok := est.EstimateNode(v)
		if !ok {
			continue
		}
		spread, err := evolving.InfluenceSpread(g, []int32{v}, evolving.InfluenceOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if int(sk) != spread {
			t.Fatalf("node %d: sketch %g ≠ spread %d", v, sk, spread)
		}
		checked++
	}
	if checked < 5 {
		t.Fatalf("only %d nodes checked; generator too sparse", checked)
	}
}

// TestWindowedMotifsConsistent ties windows and motifs together: motifs
// of a window with δ = full width must equal motifs of the parent
// restricted to pairs inside the range. For a window covering the whole
// axis the counts coincide exactly.
func TestWindowedMotifsConsistent(t *testing.T) {
	g := evolving.Random(evolving.RandomConfig{
		Nodes: 80, Stamps: 6, Edges: 500, Directed: true, Seed: 13,
	})
	w, err := evolving.CutWindow(g, 0, g.NumStamps()-1)
	if err != nil {
		t.Fatal(err)
	}
	delta := g.NumStamps() - 1
	want, err := evolving.CountMotifs2(g, delta)
	if err != nil {
		t.Fatal(err)
	}
	got, err := evolving.CountMotifs2(w.Graph, delta)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("full-window motifs %+v ≠ parent motifs %+v", got, want)
	}
}
