// Distances: the paper's Def. 6 distance side by side with the two
// related-work notions it explicitly differentiates itself from — the
// Grindrod–Higham dynamic-walk distance (causal hops free) and the
// Tang-style temporal distance (time steps, inclusive) — evaluated on
// the paper's own Figure 1 example, where all three disagree.
package main

import (
	"fmt"
	"log"

	evolving "repro"
)

func main() {
	g := evolving.Figure1Graph()
	from := evolving.TemporalNode{Node: 0, Stamp: 0} // (1,t1)
	to := evolving.TemporalNode{Node: 2, Stamp: 2}   // (3,t3)

	fmt.Println("Figure 1 graph; query: from (1,t1) to node 3")
	fmt.Println()

	res, err := evolving.BFS(g, from, evolving.Options{TrackParents: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("paper distance (Def. 6, causal hops count):   %d\n", res.Dist(to))
	fmt.Printf("  witness: %v\n", evolving.TemporalPath(res.PathTo(to)))

	dw, err := evolving.DynamicWalkDistance(g, from, to, evolving.CausalAllPairs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dynamic-walk distance (waiting free):         %d\n", dw)

	tang := evolving.TangTemporalDistance(g, from, 2)
	fmt.Printf("Tang temporal distance (stamps, inclusive):   %d\n", tang)
	fmt.Println()

	// Asymmetry of the paper's distance (Def. 6 note).
	back, err := evolving.BFS(g, to, evolving.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("asymmetry: d((1,t1)->(3,t3)) = %d but d((3,t3)->(1,t1)) = %d (unreachable)\n",
		res.Dist(to), back.Dist(from))
	fmt.Println()

	// Centralities over the same graph.
	q, err := evolving.DynamicCommunicability(g, 0.3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Grindrod–Higham dynamic communicability (alpha=0.3):")
	fmt.Println(q)
	katz, err := evolving.TemporalKatz(g, evolving.KatzOptions{Alpha: 0.5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("temporal Katz scores by temporal node (alpha=0.5):")
	for s := 0; s < g.NumStamps(); s++ {
		for v := 0; v < g.NumNodes(); v++ {
			score := katz[s*g.NumNodes()+v]
			if score != 0 {
				fmt.Printf("  (%d,t%d): %.3f\n", v+1, s+1, score)
			}
		}
	}
}
