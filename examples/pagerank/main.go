// Pagerank: PageRank on an evolving graph (the workload of the paper's
// ref. [2], Bahmani et al.) — per-snapshot PageRank with warm-started
// power iteration, showing the incremental advantage over cold starts,
// plus temporal Katz centrality over the unfolded graph.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	evolving "repro"
)

// slowlyEvolvingGraph perturbs 5% of a fixed edge set per stamp — the
// regime ref. [2] targets.
func slowlyEvolvingGraph() *evolving.Graph {
	rng := rand.New(rand.NewSource(9))
	const n, edges, stamps = 400, 3000, 8
	type e struct{ u, v int32 }
	base := make([]e, edges)
	for i := range base {
		base[i] = e{int32(rng.Intn(n)), int32(rng.Intn(n))}
	}
	b := evolving.NewBuilder(true)
	for ts := int64(1); ts <= stamps; ts++ {
		for i, ed := range base {
			if rng.Intn(20) == 0 {
				base[i] = e{int32(rng.Intn(n)), int32(rng.Intn(n))}
			}
			b.AddEdge(ed.u, ed.v, ts)
		}
	}
	return b.Build()
}

func main() {
	g, _ := evolving.SyntheticCitation(evolving.DefaultCitationConfig())
	fmt.Printf("Citation network: %d authors, %d years, %d citations\n\n",
		g.NumNodes(), g.NumStamps(), g.StaticEdgeCount())

	warm, err := evolving.EvolvingPageRank(g, evolving.PageRankOptions{})
	if err != nil {
		log.Fatal(err)
	}
	cold, err := evolving.EvolvingPageRank(g, evolving.PageRankOptions{ColdStart: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PageRank power iterations: warm-start %d vs cold-start %d\n",
		warm.TotalIterations(), cold.TotalIterations())
	fmt.Println("(citation snapshots share few edges year to year, so warm starts barely help here)")
	fmt.Println()

	// Where warm starting shines: a slowly drifting graph whose
	// consecutive snapshots overlap heavily.
	slow := slowlyEvolvingGraph()
	warmS, err := evolving.EvolvingPageRank(slow, evolving.PageRankOptions{})
	if err != nil {
		log.Fatal(err)
	}
	coldS, err := evolving.EvolvingPageRank(slow, evolving.PageRankOptions{ColdStart: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Slowly drifting graph (95%% snapshot overlap): warm %d vs cold %d iterations (%.0f%% saved)\n",
		warmS.TotalIterations(), coldS.TotalIterations(),
		100*(1-float64(warmS.TotalIterations())/float64(coldS.TotalIterations())))
	fmt.Println()

	// Top authors in the final year.
	last := g.NumStamps() - 1
	type pair struct {
		v int32
		s float64
	}
	var ranked []pair
	for v, s := range warm.Scores[last] {
		if s > 0 {
			ranked = append(ranked, pair{int32(v), s})
		}
	}
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].s > ranked[j].s })
	fmt.Printf("Top 5 authors by PageRank in year %d:\n", g.TimeLabel(last))
	for i := 0; i < 5 && i < len(ranked); i++ {
		fmt.Printf("  %d. author %3d  score %.4f\n", i+1, ranked[i].v, ranked[i].s)
	}
	fmt.Println()

	// Temporal Katz over the whole unfolded history: which temporal
	// nodes accumulate the most walk mass.
	katz, err := evolving.TemporalKatz(g, evolving.KatzOptions{Alpha: 0.05})
	if err != nil {
		log.Fatal(err)
	}
	best, bestID := 0.0, 0
	for id, s := range katz {
		if s > best {
			best, bestID = s, id
		}
	}
	tn := g.TemporalNodeFromID(bestID)
	fmt.Printf("Highest temporal Katz score: author %d in year %d (%.3f)\n",
		tn.Node, g.TimeLabel(int(tn.Stamp)), best)
}
