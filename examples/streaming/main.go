// Streaming: incremental BFS maintenance on a growing evolving graph —
// the regime that motivates evolving-graph algorithms (cf. the paper's
// ref. [2], PageRank on an evolving graph). Edges arrive in time order;
// the incremental search repairs distances locally instead of re-running
// Algorithm 1 from scratch, and we verify both agree.
package main

import (
	"fmt"
	"log"

	evolving "repro"
)

func main() {
	const (
		nodes  = 500
		stamps = 8
		edges  = 4000
		seed   = 7
	)
	d := evolving.NewDynamicGraph(true)

	// Watch how far node 0's influence spreads from the first time it
	// becomes active.
	ib := evolving.NewIncrementalBFS(d, 0, 1)

	stream := evolving.Random(evolving.RandomConfig{
		Nodes: nodes, Stamps: stamps, Edges: edges, Directed: true, Seed: seed,
	})

	fmt.Printf("Streaming %d edges over %d stamps; tracking BFS from (node 0, t=1)\n",
		stream.StaticEdgeCount(), stream.NumStamps())
	fmt.Printf("%8s %10s %12s\n", "stamp", "edges", "reached")

	total := 0
	for t := 0; t < stream.NumStamps(); t++ {
		added := 0
		stream.VisitEdges(int32(t), func(u, v int32, _ float64) bool {
			if err := d.AddEdge(u, v, stream.TimeLabel(t)); err != nil {
				log.Fatal(err)
			}
			added++
			return true
		})
		total += added
		fmt.Printf("%8d %10d %12d\n", stream.TimeLabel(t), total, ib.NumReached())
	}

	// Verify against a from-scratch Algorithm 1 run.
	ref, err := ib.Recompute()
	if err != nil {
		log.Fatal(err)
	}
	if ref.NumReached() != ib.NumReached() {
		log.Fatalf("MISMATCH: incremental %d vs recompute %d", ib.NumReached(), ref.NumReached())
	}
	fmt.Printf("\nIncremental result verified against batch Algorithm 1: %d temporal nodes reached.\n",
		ib.NumReached())
}
