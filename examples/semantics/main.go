// Semantics: the four temporal-path optimality criteria side by side.
//
// The paper's BFS minimises Def. 6 distance — the number of static +
// causal hops. The temporal-graph literature asks three more questions
// about the same paths: when can I arrive earliest (foremost)? how late
// can I leave (latest departure)? and what is the shortest elapsed time
// over all departures (fastest)? This example runs all four on a small
// commuter scenario where the criteria genuinely disagree.
package main

import (
	"fmt"
	"log"

	evolving "repro"
)

func main() {
	// A toy transit network over five mornings (labels 1..5):
	//
	//   home --bus--> hub            every day (stamps 1..5)
	//   hub  --express--> office     only on day 2
	//   hub  --local--> mall --walk--> office   on days 3 and 4
	//
	// Nodes: 0 home, 1 hub, 2 office, 3 mall.
	b := evolving.NewBuilder(true)
	for day := int64(1); day <= 5; day++ {
		b.AddEdge(0, 1, day) // home → hub
	}
	b.AddEdge(1, 2, 2) // hub → office (express, day 2 only)
	b.AddEdge(1, 3, 3) // hub → mall
	b.AddEdge(3, 2, 3) // mall → office
	b.AddEdge(1, 3, 4)
	b.AddEdge(3, 2, 4)
	g := b.Build()

	fmt.Println("== Four path criteria, home → office ==")
	fmt.Println()

	sum, err := evolving.ComparePathCriteria(g, 0, 2, evolving.CausalAllPairs)
	if err != nil {
		log.Fatal(err)
	}
	if !sum.Reachable {
		log.Fatal("office unreachable — the schedule above should connect")
	}
	fmt.Printf("shortest (Def. 6 hops):   %d hops departing day 1\n", sum.ShortestHops)
	fmt.Printf("foremost (earliest):      arrive day %d departing day 1\n", sum.EarliestArrival)
	fmt.Printf("latest departure:         leave home as late as day %d\n", sum.LatestDeparture)
	fmt.Printf("fastest (min elapsed):    %d day(s) door to door\n", sum.FastestDuration)
	fmt.Println()

	// The fastest connection in detail.
	fast, err := evolving.Fastest(g, 0, 2, evolving.CausalAllPairs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fastest route: depart %v, arrive %v (%d hops)\n",
		fast.Departure, fast.Arrival, fast.Hops)
	fmt.Printf("  via %v\n", fast.Path)
	fmt.Println()

	// Foremost arrivals for every location, departing day 1.
	fm, err := evolving.Foremost(g, evolving.TemporalNode{Node: 0, Stamp: 0}, evolving.CausalAllPairs)
	if err != nil {
		log.Fatal(err)
	}
	names := []string{"home", "hub", "office", "mall"}
	fmt.Println("earliest arrivals departing home on day 1:")
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		if lbl, ok := fm.ArrivalLabel(v); ok {
			fmt.Printf("  %-7s day %d  (path %v)\n", names[v], lbl, fm.Path(v))
		} else {
			fmt.Printf("  %-7s unreachable\n", names[v])
		}
	}
	fmt.Println()

	// Latest departures that still make the office by day 5.
	last := g.ActiveStamps(2)
	ld, err := evolving.LatestDeparture(g, evolving.TemporalNode{Node: 2, Stamp: last[len(last)-1]}, evolving.CausalAllPairs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("latest departures that still reach the office:")
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		if lbl, ok := ld.DepartureLabel(v); ok {
			fmt.Printf("  %-7s day %d\n", names[v], lbl)
		} else {
			fmt.Printf("  %-7s never\n", names[v])
		}
	}
}
