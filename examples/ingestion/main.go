// Live ingestion: the durable write path of the query service
// (DESIGN.md §11) in one self-contained run.
//
// The walkthrough builds the paper's Figure 1 graph, serves it through
// a QueryServer, and then mutates it live: batches of arc events flow
// through a write-ahead log into an epoch compactor that folds them
// into fresh immutable snapshots and hot-swaps the served graph —
// readers never block, the analytics cache invalidates by revision.
// Finally the process "crashes" (the log is reopened cold) and
// recovery replays the WAL onto the same base graph, reproducing the
// exact served state.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	evolving "repro"
)

func main() {
	dir, err := os.MkdirTemp("", "ingestion-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	walPath := filepath.Join(dir, "events.wal")

	// A live server over the paper's running example: 3 nodes, stamps
	// t1..t3, arcs 0→1@1, 0→2@2, 1→2@3.
	base := evolving.Figure1Graph()
	srv := evolving.NewQueryServer(base, evolving.ServerConfig{
		Logf: func(string, ...interface{}) {}, // keep the walkthrough quiet
	})
	wal, rec, err := evolving.OpenWAL(walPath, evolving.WALOptions{Policy: evolving.WALSyncAlways})
	if err != nil {
		log.Fatal(err)
	}
	ingestLog, err := evolving.NewIngestLog(srv, evolving.IngestConfig{
		WAL:             wal,
		CompactInterval: time.Hour, // fold only when we say so
		CompactEvery:    1 << 30,
		Logf:            func(string, ...interface{}) {},
	})
	if err != nil {
		log.Fatal(err)
	}
	srv.AttachIngest(ingestLog)
	fmt.Printf("serving Figure 1: %d nodes, %d stamps, revision %d (recovered %d events)\n",
		srv.Graph().NumNodes(), srv.Graph().NumStamps(), srv.Revision(), len(rec.Events))

	// Mutate: open stamp t4, wire node 3 into it, and close the old
	// 0→1 arc at t1. Appends are durable (fsynced) before they return,
	// but invisible to readers until the next epoch fold.
	seq, err := ingestLog.Append([]evolving.IngestEvent{
		{Op: evolving.IngestAddStamp, T: 4},
		{Op: evolving.IngestAddArc, U: 2, V: 3, T: 4},
		{Op: evolving.IngestAddArc, U: 3, V: 0, T: 4},
		{Op: evolving.IngestRemoveArc, U: 0, V: 1, T: 1},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("appended batch seq=%d: served graph still %d stamps (snapshot isolation)\n",
		seq, srv.Graph().NumStamps())

	folded := ingestLog.CompactNow()
	g := srv.Graph()
	fmt.Printf("epoch folded %d events: now %d nodes, %d stamps, revision %d\n",
		folded, g.NumNodes(), g.NumStamps(), srv.Revision())
	// Removing 0→1 emptied stamp t1, so the fold dropped it — an empty
	// snapshot holds no active nodes (Def. 3). Labels therefore map to
	// fresh indices; resolve them through StampOf.
	t4 := int32(g.StampOf(4))
	fmt.Printf("  edge 2→3@t4 present: %v; stamp t1 emptied and dropped: %v\n",
		g.HasEdge(2, 3, t4), g.StampOf(1) == -1)

	// Reads traverse the fresh snapshot like any other graph.
	res, err := evolving.BFS(g, evolving.TemporalNode{Node: 2, Stamp: int32(g.StampOf(2))}, evolving.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  BFS from (2,t2) now reaches %d temporal nodes\n", res.NumReached())

	// "Crash": close the pipeline (final fold + WAL sync), then
	// recover-then-serve the way egserve -wal does — replay the WAL
	// onto the same base and compare.
	if err := ingestLog.Close(); err != nil {
		log.Fatal(err)
	}
	wal2, rec2, err := evolving.OpenWAL(walPath, evolving.WALOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer wal2.Close()
	recovered := evolving.FoldEvents(evolving.Figure1Graph(), rec2.Events)
	fmt.Printf("recovery: %d events in %d batches (torn=%v) → %d nodes, %d stamps\n",
		len(rec2.Events), rec2.Batches, rec2.Torn, recovered.NumNodes(), recovered.NumStamps())
	same := recovered.NumNodes() == g.NumNodes() &&
		recovered.NumStamps() == g.NumStamps() &&
		recovered.StaticEdgeCount() == g.StaticEdgeCount() &&
		recovered.HasEdge(2, 3, int32(recovered.StampOf(4))) &&
		recovered.StampOf(1) == -1
	fmt.Printf("recovered graph matches the served snapshot: %v\n", same)
}
