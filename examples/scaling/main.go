// Scaling: a miniature of the paper's Figure 5 experiment — wall-clock
// time of Algorithm 1 against the number of static edges |Ẽ| on random
// evolving graphs with a fixed node and stamp budget, demonstrating the
// linear scaling of Theorem 2.
//
// The paper ran 10⁵ active nodes, 10 stamps and |Ẽ| up to ~5×10⁸ on a
// 1 TB machine; this example keeps the generator and algorithm identical
// but defaults to laptop-sized edge counts. Run cmd/egbench for the
// full-control version with a least-squares linearity report.
package main

import (
	"fmt"
	"log"
	"time"

	evolving "repro"
)

func main() {
	const (
		nodes  = 20000
		stamps = 10
		seed   = 2016
	)
	edgeCounts := []int{100_000, 200_000, 400_000, 800_000}

	fmt.Printf("Figure 5 (miniature): %d nodes, %d stamps\n", nodes, stamps)
	fmt.Printf("%12s %12s %12s %14s\n", "|E~| target", "|E~| built", "BFS time", "ns per edge")

	series := evolving.RandomSeries(nodes, stamps, edgeCounts, true, seed)
	var base time.Duration
	for i, g := range series {
		root := firstActive(g)
		start := time.Now()
		res, err := evolving.BFS(g, root, evolving.Options{})
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		if i == 0 {
			base = elapsed
		}
		perEdge := float64(elapsed.Nanoseconds()) / float64(g.StaticEdgeCount())
		fmt.Printf("%12d %12d %12s %14.1f   (reached %d)\n",
			edgeCounts[i], g.StaticEdgeCount(), elapsed.Round(time.Microsecond), perEdge, res.NumReached())
	}
	last := series[len(series)-1]
	_ = last
	fmt.Println()
	fmt.Printf("Linear scaling check: time grew %.1fx while |E~| grew %.1fx\n",
		ratio(series, base), float64(edgeCounts[len(edgeCounts)-1])/float64(edgeCounts[0]))
	fmt.Println("(constant ns-per-edge across rows = the linear shape of the paper's Figure 5)")
}

func firstActive(g *evolving.Graph) evolving.TemporalNode {
	v := g.ActiveNodes(0).NextSet(0)
	return evolving.TemporalNode{Node: int32(v), Stamp: 0}
}

func ratio(series []*evolving.Graph, base time.Duration) float64 {
	g := series[len(series)-1]
	root := firstActive(g)
	start := time.Now()
	if _, err := evolving.BFS(g, root, evolving.Options{}); err != nil {
		log.Fatal(err)
	}
	return float64(time.Since(start)) / float64(base)
}
