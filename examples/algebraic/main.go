// Algebraic: reproduces the paper's Sec. III worked example on the
// Figure 1 graph — the naïve adjacency-product path sum (Eq. 2)
// miscounts temporal paths, while power iteration of the block adjacency
// matrix A_nᵀ counts them correctly.
package main

import (
	"fmt"
	"log"

	evolving "repro"
)

func main() {
	g := evolving.Figure1Graph()
	from := evolving.TemporalNode{Node: 0, Stamp: 0} // (1,t1)
	to := evolving.TemporalNode{Node: 2, Stamp: 2}   // (3,t3)

	fmt.Println("== Figure 1 graph: 1→2@t1, 1→3@t2, 2→3@t3 ==")
	fmt.Println()

	// Ground truth by explicit enumeration (Fig. 2).
	paths, err := evolving.EnumeratePaths(g, from, to, evolving.CausalAllPairs, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Temporal paths from (1,t1) to (3,t3): %d\n", len(paths))
	for _, p := range paths {
		fmt.Printf("  %v\n", p)
	}
	fmt.Println()

	// The naïve Eq. 2 sum undercounts.
	s3 := evolving.NaivePathSum(g, 2)
	fmt.Printf("Naive path sum (Eq. 2): (S[t3])_13 = %g   <-- WRONG, misses the causal-edge path\n", s3.At(0, 2))
	fmt.Println()

	// The block matrix with causal edges counts correctly.
	walks, err := evolving.CountWalks(g, from, to, evolving.CausalAllPairs, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Block power iteration: ((A3^T)^3 e1)_(3,t3) = %d   <-- matches the enumeration\n", walks)
	fmt.Println()

	// Show the full A3 matrix of the paper (active temporal nodes only).
	an, order := evolving.BlockMatrix(g, evolving.CausalAllPairs).CompactActive()
	fmt.Println("A3 over active temporal nodes (stamp-major order):")
	fmt.Print("  order:")
	for _, p := range order {
		fmt.Printf(" (%d,t%d)", p[1]+1, p[0]+1)
	}
	fmt.Println()
	fmt.Println(an)

	// And the algebraic BFS agrees with Algorithm 1.
	reached, err := evolving.ABFS(g, from, evolving.CausalAllPairs)
	if err != nil {
		log.Fatal(err)
	}
	res, err := evolving.BFS(g, from, evolving.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Algorithm 2 (algebraic) reached %d temporal nodes; Algorithm 1 reached %d. dist((3,t3)) = %d = %d\n",
		len(reached), res.NumReached(), reached[to], res.Dist(to))
}
