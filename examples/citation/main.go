// Citation: the Sec. V application — mining influence structure from a
// citation network with forward and backward evolving-graph BFS.
//
// The network is synthetic (the paper names no dataset): authors enter
// the field over time and cite earlier-publishing authors with
// preferential attachment. Edges are citer→cited per publication year.
package main

import (
	"fmt"
	"log"

	evolving "repro"
)

func main() {
	cfg := evolving.DefaultCitationConfig()
	g, _ := evolving.SyntheticCitation(cfg)
	fmt.Printf("Synthetic citation network: %d authors, %d years, %d citations\n",
		g.NumNodes(), g.NumStamps(), g.StaticEdgeCount())
	fmt.Println()

	an, err := evolving.NewCitationAnalyzer(g, evolving.CausalAllPairs)
	if err != nil {
		log.Fatal(err)
	}

	// Top authors by transitive influence T(a, t_first).
	scores, err := an.RankByInfluence(5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Most influential authors (size of T(a, t_first)):")
	for rank, s := range scores {
		fmt.Printf("  %d. author %3d influences %3d authors\n", rank+1, s.Author, s.Influence)
	}
	fmt.Println()

	// Influence and influencer sets of the top author.
	star := scores[0].Author
	first := g.ActiveStamps(star)[0]
	fwd, err := an.Influence(star, first)
	if err != nil {
		log.Fatal(err)
	}
	back, err := an.Influencers(star, g.ActiveStamps(star)[len(g.ActiveStamps(star))-1])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Author %d: T(a) spans %d authors over %d temporal nodes; T⁻¹(a) spans %d authors\n",
		star, fwd.NumAuthors(), len(fwd.TemporalNodes()), back.NumAuthors())

	// The community of a mid-ranked author: peers influenced by the same
	// sources (backward to the leaves, then forward union).
	mid := scores[len(scores)-1].Author
	midStamp := g.ActiveStamps(mid)[len(g.ActiveStamps(mid))-1]
	com, err := an.Community(mid, midStamp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Community of author %d (shared intellectual ancestry): %d authors\n",
		mid, com.NumAuthors())

	// Cross-check with temporal betweenness: relay authors.
	bt := evolving.TemporalBetweenness(g, evolving.CausalAllPairs)
	best, bestV := -1.0, int32(-1)
	for v, s := range bt {
		if s > best {
			best, bestV = s, int32(v)
		}
	}
	fmt.Printf("Highest temporal betweenness: author %d (%.1f)\n", bestV, best)
}
