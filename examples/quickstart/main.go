// Quickstart: the three-player message game from the paper's
// introduction, solved with the evolving-graph BFS.
//
// Players 1, 2, 3 hold messages a, b, c. Each turn one player talks to
// another, conveying every message in their possession. If 1 talks to 2
// and then 2 talks to 3, player 3 ends up with all three messages; if
// the conversations happen in the opposite order, message a can never
// reach player 3. Static graph analysis cannot tell these two stories
// apart — the evolving-graph BFS can.
package main

import (
	"fmt"
	"log"

	evolving "repro"
)

func main() {
	fmt.Println("== The message game (Sec. I of the paper) ==")
	fmt.Println()

	play("1 talks to 2 first, then 2 talks to 3", evolving.IntroGameGraph(false))
	fmt.Println()
	play("2 talks to 3 first, then 1 talks to 2", evolving.IntroGameGraph(true))
}

func play(order string, g *evolving.Graph) {
	fmt.Printf("Order: %s\n", order)

	// Message a starts with player 1 (node 0). It reaches player p iff
	// some active temporal node of player 1 reaches some active temporal
	// node of p along a temporal path.
	for p := int32(1); p <= 2; p++ {
		if spreads(g, 0, p) {
			fmt.Printf("  message a DOES reach player %d\n", p+1)
		} else {
			fmt.Printf("  message a CANNOT reach player %d\n", p+1)
		}
	}

	// Show one concrete route of message a to player 3, if any.
	for _, s := range g.ActiveStamps(0) {
		for _, s2 := range g.ActiveStamps(2) {
			path, err := evolving.ShortestPath(g,
				evolving.TemporalNode{Node: 0, Stamp: s},
				evolving.TemporalNode{Node: 2, Stamp: s2},
				evolving.CausalAllPairs)
			if err != nil {
				log.Fatal(err)
			}
			if path != nil {
				fmt.Printf("  route: %v (%d hops)\n", path, path.Hops())
				return
			}
		}
	}
}

// spreads reports whether information at node u (from any of its active
// moments) can reach node w at any time, using one BFS per active stamp.
func spreads(g *evolving.Graph, u, w int32) bool {
	for _, s := range g.ActiveStamps(u) {
		res, err := evolving.BFS(g, evolving.TemporalNode{Node: u, Stamp: s}, evolving.Options{})
		if err != nil {
			log.Fatal(err)
		}
		for _, s2 := range g.ActiveStamps(w) {
			if res.Reached(evolving.TemporalNode{Node: w, Stamp: s2}) {
				return true
			}
		}
	}
	return false
}
