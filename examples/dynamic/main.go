// Dynamic: concurrent-safe mutation of an evolving graph with snapshot
// isolation, in the style of dynamic-graph frameworks (STINGER, Aspen).
//
// The paper treats an evolving graph as immutable once built; this
// example shows the repository's fully dynamic substrate. A writer
// goroutine streams edge batches (inserts and deletes at arbitrary
// stamps) into a DynamicStore while reader goroutines pin immutable
// snapshots, freeze them, and run the paper's BFS — with no locks on the
// read path and no torn reads.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	evolving "repro"
)

const (
	nodes   = 200
	stamps  = 8
	batches = 40
	readers = 3
)

func main() {
	times := make([]int64, stamps)
	for i := range times {
		times[i] = int64(i + 1)
	}
	store, err := evolving.NewDynamicStore(nodes, times, true)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== Dynamic evolving graph: writer vs snapshot readers ==")
	fmt.Println()

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Readers: pin a snapshot, freeze it, search it. Each reader
	// records (version, reached) pairs; within one snapshot the answer
	// is stable by construction.
	type observation struct {
		seq     int64
		edges   int
		reached int
	}
	results := make([][]observation, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				view := store.Snapshot()
				g := view.Freeze()
				if g.NumStamps() == 0 {
					continue
				}
				var reached int
				if len(g.ActiveStamps(0)) > 0 {
					res, err := evolving.BFS(g,
						evolving.TemporalNode{Node: 0, Stamp: g.ActiveStamps(0)[0]},
						evolving.Options{})
					if err != nil {
						log.Fatal(err)
					}
					reached = res.NumReached()
				}
				results[r] = append(results[r],
					observation{seq: view.Seq(), edges: view.NumEdges(), reached: reached})
			}
		}(r)
	}

	// The writer: batches of random inserts with occasional deletes.
	rng := rand.New(rand.NewSource(42))
	for b := 0; b < batches; b++ {
		var batch []evolving.Update
		for len(batch) < 50 {
			u := int32(rng.Intn(nodes))
			v := int32(rng.Intn(nodes))
			if u == v {
				continue
			}
			op := evolving.Insert
			if rng.Intn(5) == 0 {
				op = evolving.Delete
			}
			batch = append(batch, evolving.Update{
				U: u, V: v, T: int32(rng.Intn(stamps)), Op: op,
			})
		}
		if _, err := store.Apply(batch); err != nil {
			log.Fatal(err)
		}
		// Pace the writer so the readers demonstrably interleave.
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	final := store.Snapshot()
	fmt.Printf("writer applied %d batches; final version %d, %d edges\n",
		batches, final.Seq(), final.NumEdges())
	for r, obs := range results {
		if len(obs) == 0 {
			fmt.Printf("reader %d: no observations (writer finished first)\n", r)
			continue
		}
		first, last := obs[0], obs[len(obs)-1]
		fmt.Printf("reader %d: %d snapshots, versions %d→%d, BFS reach %d→%d temporal nodes\n",
			r, len(obs), first.seq, last.seq, first.reached, last.reached)
	}
	fmt.Println()

	// Snapshot isolation demo: pin a view, mutate, compare.
	pinned := store.Snapshot()
	before := pinned.NumEdges()
	if _, err := store.Apply([]evolving.Update{{U: 0, V: 1, T: 0, Op: evolving.Insert}}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pinned snapshot still reports %d edges after a later insert "+
		"(current store: %d)\n", pinned.NumEdges(), store.Snapshot().NumEdges())
	if pinned.NumEdges() != before {
		log.Fatal("snapshot isolation violated")
	}
}
