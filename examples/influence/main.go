// Influence: who shaped a research field? Seed selection and sketched
// influence ranking on a synthetic citation network (Sec. V, extended).
//
// The paper's Sec. V computes one author's influence set T(a, t) with a
// single BFS. This example scales the question up twice over:
//
//  1. sketched ranking — bottom-k reach sketches estimate |T(a, t)| for
//     every author in near-linear total time, and are checked here
//     against exact BFS counts;
//  2. seed selection — CELF greedy picks the K authors whose *joint*
//     influence covers the most of the field, which is a different (and
//     for program committees, more useful) question than the top-K
//     individual influencers, because influence overlaps.
package main

import (
	"fmt"
	"log"
	"sort"

	evolving "repro"
)

func main() {
	cfg := evolving.DefaultCitationConfig()
	cfg.Authors = 300
	cfg.Stamps = 10
	cfg.PubProb = 0.15 // sparse field: influence fragments into schools
	cfg.CitesPerPaper = 2
	cfg.Seed = 2016
	g, entry := evolving.SyntheticCitation(cfg)
	fmt.Printf("== Citation network: %d authors, %d stamps, %d citations ==\n\n",
		g.NumNodes(), g.NumStamps(), g.StaticEdgeCount())

	// Citation edges point i→j for "i cites j"; influence flows j→i.
	opts := evolving.InfluenceOptions{ReverseEdges: true}

	// --- 1. sketched influence ranking -------------------------------
	// Reverse the direction by flipping time: influence in a citation
	// network is reachability under reversed edges; sketches run on the
	// forward orientation, so rank with exact spreads for the top few
	// and sketches for the broad sweep.
	est, err := evolving.BuildReachSketches(g, evolving.CausalConsecutive, 64, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top 5 by sketched forward reach (who a paper's readers go on to read):")
	for i, ne := range est.TopK(5) {
		exact, err := evolving.InfluenceSpread(g, []int32{ne.Node}, evolving.InfluenceOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %d. author %3d  sketch ≈ %6.1f   exact %4d   entered stamp %d\n",
			i+1, ne.Node, ne.Influence, exact, entry[ne.Node])
	}
	fmt.Println()

	// --- 2. greedy seed selection ------------------------------------
	seeds, err := evolving.GreedyInfluence(g, 5, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("greedy seed set (joint influence, citation direction):")
	for i, s := range seeds {
		fmt.Printf("  %d. author %3d  marginal +%3d  cumulative %3d/%d  entered stamp %d\n",
			i+1, s.Node, s.Gain, s.Covered, g.NumNodes(), entry[s.Node])
	}
	fmt.Println()

	// Contrast with the naive top-K individual influencers: their joint
	// coverage is usually worse because their influence overlaps.
	type single struct {
		node   int32
		spread int
	}
	var singles []single
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		if len(g.ActiveStamps(v)) == 0 {
			continue
		}
		sp, err := evolving.InfluenceSpread(g, []int32{v}, opts)
		if err != nil {
			log.Fatal(err)
		}
		singles = append(singles, single{v, sp})
	}
	sort.Slice(singles, func(i, j int) bool {
		if singles[i].spread != singles[j].spread {
			return singles[i].spread > singles[j].spread
		}
		return singles[i].node < singles[j].node
	})
	var topK []int32
	for i := 0; i < 5 && i < len(singles); i++ {
		topK = append(topK, singles[i].node)
	}
	topSpread, err := evolving.InfluenceSpread(g, topK, opts)
	if err != nil {
		log.Fatal(err)
	}
	greedySpread := seeds[len(seeds)-1].Covered
	fmt.Printf("joint coverage: greedy picks %d vs top-5 individuals %d "+
		"(greedy ≥ top-K because it accounts for overlap)\n", greedySpread, topSpread)
	if greedySpread < topSpread {
		log.Fatal("greedy coverage below top-K — submodularity violated?")
	}
}
