// Client: the typed egclient walkthrough over both transports
// (DESIGN.md §15). One in-process server is exposed twice — JSON over
// HTTP and the EGWP binary protocol on a second listener — and the
// same typed Client drives both: the second transport to ask a query
// hits the cache entry the first one computed, errors carry the same
// transport-neutral code either way, and instead of polling the
// X-Graph-Revision header the wire client subscribes to the change
// feed and is pushed each revision the moment the ingest pipeline
// publishes it.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	evolving "repro"
	"repro/egclient"
	"repro/internal/ingest"
)

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// One server, two listeners: HTTP JSON and the EGWP binary
	// protocol share the graph, the cache and the feed hub.
	g := evolving.Random(evolving.RandomConfig{
		Nodes: 300, Stamps: 6, Edges: 3_000, Directed: true, Seed: 7,
	})
	srv := evolving.NewQueryServer(g, evolving.ServerConfig{
		Logf: func(string, ...interface{}) {},
	})
	lg, err := ingest.New(srv, ingest.Config{
		CompactEvery:    1, // fold every batch: writes publish promptly
		CompactInterval: time.Hour,
		Logf:            func(string, ...interface{}) {},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer lg.Close()
	srv.AttachIngest(lg)

	httpLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	wireLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(httpLn, srv) //nolint:errcheck // torn down with the process
	go srv.ServeWire(wireLn)   //nolint:errcheck // torn down with the process

	httpClient := egclient.NewHTTP("http://"+httpLn.Addr().String(), egclient.HTTPOptions{})
	wireClient, err := egclient.DialWire(ctx, wireLn.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer wireClient.Close()

	// 1. Same query, both transports: identical answer, one cache
	// entry. Meta carries the revision and the cache outcome — the
	// binary protocol's X-Cache equivalent travels in the frame flags.
	fmt.Println("== one cache, two transports ==")
	overHTTP, m1, err := httpClient.ComponentsWeak(ctx, egclient.ComponentsQuery{})
	if err != nil {
		log.Fatal(err)
	}
	overWire, m2, err := wireClient.ComponentsWeak(ctx, egclient.ComponentsQuery{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("HTTP: %d weak components (cache %s, revision %d)\n",
		overHTTP.Count, m1.Cache, m1.Revision)
	fmt.Printf("wire: %d weak components (cache %s, revision %d)\n",
		overWire.Count, m2.Cache, m2.Revision)

	// 2. Errors carry one transport-neutral code. The same bad request
	// over either transport yields the same *RemoteError.
	fmt.Println("\n== one error surface ==")
	for name, c := range map[string]*egclient.Client{"HTTP": httpClient, "wire": wireClient} {
		_, _, err := c.InfluenceGreedy(ctx, 0, egclient.InfluenceQuery{})
		var re *egclient.RemoteError
		if errors.As(err, &re) {
			fmt.Printf("%s: code=%s message=%q\n", name, re.Code, re.Message)
		}
	}

	// 3. The change-feed: subscribe, write, get pushed the revision —
	// no polling loop anywhere.
	fmt.Println("\n== pushed change-feed ==")
	sub, err := wireClient.Subscribe(ctx, egclient.FeedSpec{
		Kind:   egclient.KindRevision,
		Cursor: egclient.CursorLive,
	})
	if err != nil {
		log.Fatal(err)
	}
	acc, err := wireClient.IngestArcs(ctx, []egclient.Event{
		{Op: egclient.AddArc, U: 0, V: 299, T: 1},
		{Op: egclient.AddArc, U: 299, V: 1, T: 2},
	})
	if err != nil {
		log.Fatal(err)
	}
	t0 := time.Now()
	ev, err := sub.Next(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("accepted %d events (seq %d); revision %d pushed after %s (%d nodes, %d stamps)\n",
		acc.Accepted, acc.Seq, ev.Revision, time.Since(t0).Round(time.Microsecond), ev.Nodes, ev.Stamps)

	// 4. Cursors make the stream resumable: disconnect, miss a
	// revision, resubscribe with the saved cursor and the ring replays
	// exactly what was missed.
	cursor := sub.Cursor()
	sub.Close()
	if _, err := wireClient.IngestArcs(ctx, []egclient.Event{
		{Op: egclient.AddArc, U: 1, V: 299, T: 1},
	}); err != nil {
		log.Fatal(err)
	}
	// The fold publishes asynchronously; resubscribing from the saved
	// cursor delivers the missed revision whenever it lands.
	sub2, err := wireClient.Subscribe(ctx, egclient.FeedSpec{
		Kind:   egclient.KindRevision,
		Cursor: cursor,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sub2.Close()
	ev2, err := sub2.Next(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resumed from cursor %d: replayed revision %d (kind %s)\n", cursor, ev2.Revision, ev2.Kind)
}
