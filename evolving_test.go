package evolving_test

import (
	"bytes"
	"testing"

	evolving "repro"
)

// End-to-end smoke test of the public API: every entry point is exercised
// at least once against paper ground truth.
func TestPublicAPIEndToEnd(t *testing.T) {
	g := evolving.Figure1Graph()
	root := evolving.TemporalNode{Node: 0, Stamp: 0}
	target := evolving.TemporalNode{Node: 2, Stamp: 2}

	res, err := evolving.BFS(g, root, evolving.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dist(target) != 3 {
		t.Fatalf("BFS dist = %d, want 3", res.Dist(target))
	}

	par, err := evolving.ParallelBFS(g, root, evolving.ParallelOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if par.Dist(target) != 3 {
		t.Fatal("parallel BFS disagrees")
	}

	multi, err := evolving.MultiSourceBFS(g, []evolving.TemporalNode{root}, evolving.Options{})
	if err != nil || multi.Dist(target) != 3 {
		t.Fatal("multi-source BFS disagrees")
	}

	ok, err := evolving.Reachable(g, root, target, evolving.CausalAllPairs)
	if err != nil || !ok {
		t.Fatal("Reachable wrong")
	}

	p, err := evolving.ShortestPath(g, root, target, evolving.CausalAllPairs)
	if err != nil || p.Hops() != 3 {
		t.Fatalf("ShortestPath = %v", p)
	}

	paths, err := evolving.EnumeratePaths(g, root, target, evolving.CausalAllPairs, 0)
	if err != nil || len(paths) != 2 {
		t.Fatalf("EnumeratePaths found %d, want 2", len(paths))
	}

	walks, err := evolving.CountWalks(g, root, target, evolving.CausalAllPairs, 3)
	if err != nil || walks != 2 {
		t.Fatalf("CountWalks = %d, want 2", walks)
	}

	nbs := evolving.ForwardNeighbors(g, root, evolving.CausalAllPairs)
	if len(nbs) != 2 {
		t.Fatalf("ForwardNeighbors = %v", nbs)
	}

	wres, err := evolving.WeightedShortestPaths(g, root, evolving.WeightedOptions{CausalWeight: 1})
	if err != nil || wres.Dist(target) != 3 {
		t.Fatal("weighted search disagrees")
	}

	reached, err := evolving.ABFS(g, root, evolving.CausalAllPairs)
	if err != nil || reached[target] != 3 {
		t.Fatal("ABFS disagrees")
	}
	dreached, err := evolving.DenseABFS(g, root, evolving.CausalAllPairs)
	if err != nil || dreached[target] != 3 {
		t.Fatal("DenseABFS disagrees")
	}

	if s := evolving.NaivePathSum(g, 2); s.At(0, 2) != 1 {
		t.Fatal("NaivePathSum should miscount as 1")
	}

	blk := evolving.BlockMatrix(g, evolving.CausalAllPairs)
	if blk.Dim() != 9 {
		t.Fatal("BlockMatrix dims wrong")
	}

	if d := evolving.TangTemporalDistance(g, root, 2); d != 2 {
		t.Fatalf("Tang distance = %d, want 2", d)
	}
	if d, err := evolving.DynamicWalkDistance(g, root, target, evolving.CausalAllPairs); err != nil || d != 1 {
		t.Fatalf("dynamic-walk distance = %d, want 1", d)
	}
	if q, err := evolving.DynamicCommunicability(g, 0.2); err != nil || q.At(0, 2) <= 0 {
		t.Fatal("communicability wrong")
	}
	if c, err := evolving.TemporalCloseness(g, root, evolving.CausalAllPairs); err != nil || c <= 0 {
		t.Fatal("closeness wrong")
	}
	if bt := evolving.TemporalBetweenness(g, evolving.CausalAllPairs); len(bt) != 3 {
		t.Fatal("betweenness wrong")
	}
}

func TestPublicAPIGameAndGenerators(t *testing.T) {
	game := evolving.IntroGameGraph(false)
	ok, err := evolving.Reachable(game,
		evolving.TemporalNode{Node: 0, Stamp: 0},
		evolving.TemporalNode{Node: 2, Stamp: 1},
		evolving.CausalAllPairs)
	if err != nil || !ok {
		t.Fatal("intro game reachability wrong")
	}

	rg := evolving.Random(evolving.RandomConfig{Nodes: 30, Stamps: 4, Edges: 60, Directed: true, Seed: 1})
	if rg.StaticEdgeCount() == 0 {
		t.Fatal("Random produced empty graph")
	}
	series := evolving.RandomSeries(30, 4, []int{10, 20}, true, 1)
	if len(series) != 2 {
		t.Fatal("RandomSeries wrong")
	}
	if evolving.GNP(10, 2, 0.5, false, 1).NumStamps() != 2 {
		t.Fatal("GNP wrong")
	}
	if evolving.PreferentialAttachment(50, 4, 2, 1).StaticEdgeCount() == 0 {
		t.Fatal("PA wrong")
	}

	cg, firstPub := evolving.SyntheticCitation(evolving.DefaultCitationConfig())
	if len(firstPub) == 0 || cg.StaticEdgeCount() == 0 {
		t.Fatal("SyntheticCitation wrong")
	}
	an, err := evolving.NewCitationAnalyzer(cg, evolving.CausalAllPairs)
	if err != nil {
		t.Fatal(err)
	}
	scores, err := an.RankByInfluence(3)
	if err != nil || len(scores) != 3 {
		t.Fatal("RankByInfluence wrong")
	}
}

func TestPublicAPILabeledGraph(t *testing.T) {
	lg := evolving.NewLabeledGraph[string](true)
	lg.AddEdge("knuth", "dijkstra", 1970)
	lg.AddEdge("lamport", "knuth", 1980)
	g := lg.Freeze()
	id, ok := lg.IDOf("knuth")
	if !ok {
		t.Fatal("label lost")
	}
	res, err := evolving.BFS(g, evolving.TemporalNode{Node: id, Stamp: 0}, evolving.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumReached() < 2 {
		t.Fatal("labeled BFS wrong")
	}
}

func TestPublicAPIStreamAndIO(t *testing.T) {
	d := evolving.NewDynamicGraph(true)
	ib := evolving.NewIncrementalBFS(d, 0, 1)
	_ = d.AddEdge(0, 1, 1)
	_ = d.AddEdge(1, 2, 2)
	if ib.Dist(2, 2) != 3 {
		t.Fatalf("incremental dist = %d, want 3", ib.Dist(2, 2))
	}

	g := evolving.Figure1Graph()
	var buf bytes.Buffer
	if err := evolving.WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := evolving.ReadEdgeList(&buf, true)
	if err != nil {
		t.Fatal(err)
	}
	if g2.StaticEdgeCount() != 3 {
		t.Fatal("edge-list round trip wrong")
	}
	buf.Reset()
	if err := evolving.WriteJSON(&buf, g); err != nil {
		t.Fatal(err)
	}
	g3, err := evolving.ReadJSON(&buf)
	if err != nil || g3.StaticEdgeCount() != 3 {
		t.Fatal("JSON round trip wrong")
	}
}
