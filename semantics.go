// Temporal-path optimality criteria, the dynamic adjacency store,
// reachability sketches, and influence maximization — the extension
// layer built on top of the paper's Algorithm 1 (see DESIGN.md §7).

package evolving

import (
	"repro/internal/core"
	"repro/internal/dynadj"
	"repro/internal/influence"
	"repro/internal/sketch"
	"repro/internal/temporal"
)

// ForemostResult holds per-node earliest-arrival stamps from a root.
type ForemostResult = temporal.ForemostResult

// DepartureResult holds per-node latest-departure stamps toward a target.
type DepartureResult = temporal.DepartureResult

// FastestResult is the minimum-elapsed-time connection between two nodes.
type FastestResult = temporal.FastestResult

// PathSummary reports all four path-optimality criteria side by side.
type PathSummary = temporal.Summary

// Foremost computes the earliest stamp at which every node can be
// reached from root (one forward BFS).
func Foremost(g *Graph, root TemporalNode, mode CausalMode) (*ForemostResult, error) {
	return temporal.Foremost(g, root, mode)
}

// LatestDeparture computes the latest stamp from which every node can
// still reach target (one backward BFS).
func LatestDeparture(g *Graph, target TemporalNode, mode CausalMode) (*DepartureResult, error) {
	return temporal.LatestDeparture(g, target, mode)
}

// Fastest finds the departure of src minimising elapsed time to dst.
func Fastest(g *Graph, src, dst int32, mode CausalMode) (FastestResult, error) {
	return temporal.Fastest(g, src, dst, mode)
}

// FastestDurations computes the fastest duration from src to every node.
func FastestDurations(g *Graph, src int32, mode CausalMode) ([]int64, error) {
	return temporal.Durations(g, src, mode)
}

// ComparePathCriteria evaluates shortest / foremost / latest-departure /
// fastest between two nodes in one call.
func ComparePathCriteria(g *Graph, src, dst int32, mode CausalMode) (PathSummary, error) {
	return temporal.Compare(g, src, dst, mode)
}

// DynamicStore is a mutable evolving-graph container with copy-on-write
// snapshots: one writer applies batches while readers hold immutable
// views (compare STINGER / Aspen).
type DynamicStore = dynadj.Store

// DynamicView is an immutable snapshot of a DynamicStore.
type DynamicView = dynadj.View

// Update is one edge insertion or deletion in a DynamicStore batch.
type Update = dynadj.Update

// Update operations.
const (
	Insert = dynadj.Insert
	Delete = dynadj.Delete
)

// NewDynamicStore creates an empty dynamic store over numNodes nodes and
// the given strictly-increasing time labels.
func NewDynamicStore(numNodes int, times []int64, directed bool) (*DynamicStore, error) {
	return dynadj.NewStore(numNodes, times, directed)
}

// ReachEstimator answers approximate influence-cardinality queries from
// bottom-k min-rank sketches.
type ReachEstimator = sketch.ReachEstimator

// NodeEstimate pairs a node with its estimated influence cardinality.
type NodeEstimate = sketch.NodeEstimate

// BuildReachSketches computes bottom-k reach sketches for every active
// temporal node; k controls the accuracy/memory trade-off (relative
// standard error ≈ 1/√(k−2)).
func BuildReachSketches(g *Graph, mode CausalMode, k int, seed int64) (*ReachEstimator, error) {
	return sketch.BuildReach(g, mode, k, seed)
}

// InfluenceOptions configures greedy seed selection.
type InfluenceOptions = influence.Options

// InfluenceSeed is one greedy selection step.
type InfluenceSeed = influence.Seed

// GreedyInfluence picks up to k seeds maximising joint influence
// coverage (CELF lazy greedy, (1−1/e)-approximate).
func GreedyInfluence(g *Graph, k int, opts InfluenceOptions) ([]InfluenceSeed, error) {
	return influence.Greedy(g, k, opts)
}

// InfluenceSpread returns the exact joint coverage of a seed set.
func InfluenceSpread(g *Graph, seeds []int32, opts InfluenceOptions) (int, error) {
	return influence.Spread(g, seeds, opts)
}

// ProfileEntry is one (departure stamp → earliest arrival) point.
type ProfileEntry = temporal.ProfileEntry

// ArrivalProfile computes the earliest arrival at dst for every active
// departure stamp of src (the temporal profile problem).
func ArrivalProfile(g *Graph, src, dst int32, mode CausalMode) ([]ProfileEntry, error) {
	return temporal.ArrivalProfile(g, src, dst, mode)
}

// BidirectionalShortestPath answers a point-to-point shortest-path query
// by growing forward and backward searches toward each other — far
// cheaper than a full BFS when both endpoints are known. ok is false
// when `to` is unreachable from `from` (including inactive endpoints).
func BidirectionalShortestPath(g *Graph, from, to TemporalNode, mode CausalMode) (path TemporalPath, ok bool, err error) {
	return core.BidirectionalShortestPath(g, from, to, mode)
}
