// Package egclient is the typed Go client of the query service: one
// Client, two interchangeable transports. NewHTTP speaks the JSON
// endpoints; DialWire speaks the EGWP binary protocol (internal/wire)
// the server exposes on its second listener. Every cached analytics
// endpoint has a per-endpoint method returning the server's response
// type plus a Meta (revision, cache outcome); mutations go through
// IngestArcs; Subscribe streams the revision change-feed — the
// push-based replacement for polling the X-Graph-Revision header.
//
// Both transports surface failures as *wire.RemoteError carrying the
// transport-neutral error code, so callers switch on codes, never on
// transport-specific status text. examples/client walks through the
// whole surface.
package egclient

import (
	"context"
	"fmt"
	"net/url"
	"strconv"

	"repro/internal/feed"
	"repro/internal/ingest"
	"repro/internal/server"
	"repro/internal/wire"
)

// Response and event types, re-exported so callers need no internal
// imports.
type (
	ComponentsResponse       = server.ComponentsResponse
	SizeDistributionResponse = server.SizeDistributionResponse
	InfluenceResponse        = server.InfluenceResponse
	ClosenessResponse        = server.ClosenessResponse
	EfficiencyResponse       = server.EfficiencyResponse
	KatzResponse             = server.KatzResponse
	IngestAcceptedResponse   = server.IngestAcceptedResponse
	ErrorResponse            = server.ErrorResponse

	// Event is one ingest mutation (ingest.Event).
	Event = ingest.Event
	// FeedSpec / FeedEvent / FeedKind describe change-feed
	// subscriptions (internal/feed).
	FeedSpec  = feed.Spec
	FeedEvent = feed.Event
	FeedKind  = feed.Kind

	// RemoteError is the error type both transports return for
	// server-reported failures.
	RemoteError = wire.RemoteError
	// Code is the transport-neutral error code inside a RemoteError.
	Code = wire.Code
)

// Ingest event ops and feed kinds, re-exported.
const (
	AddArc    = ingest.AddArc
	RemoveArc = ingest.RemoveArc
	AddStamp  = ingest.AddStamp

	KindRevision   = feed.KindRevision
	KindComponents = feed.KindComponents
	KindKatz       = feed.KindKatz
	KindGap        = feed.KindGap

	// CursorLive subscribes from the current revision onward.
	CursorLive = feed.CursorLive

	// Transport-neutral error codes carried by RemoteError.
	CodeOK               = wire.CodeOK
	CodeBadRequest       = wire.CodeBadRequest
	CodeNotFound         = wire.CodeNotFound
	CodeMethodNotAllowed = wire.CodeMethodNotAllowed
	CodeBackpressure     = wire.CodeBackpressure
	CodeInternal         = wire.CodeInternal
	CodeUnavailable      = wire.CodeUnavailable
)

// Meta travels with every query response: which snapshot revision the
// answer was computed on and how the shared cache answered ("miss",
// "hit", "collapsed").
type Meta struct {
	Revision uint64
	Cache    string
}

// transport is the seam between the typed methods and the two wire
// forms. Both implementations hit the server's shared request-decoding
// layer, so a query's cache entry is the same no matter which
// transport asked.
type transport interface {
	query(ctx context.Context, endpoint string, params url.Values, into interface{}) (Meta, error)
	ingest(ctx context.Context, events []Event) (*IngestAcceptedResponse, error)
	subscribe(ctx context.Context, spec FeedSpec) (*Subscription, error)
	close() error
}

// Client is the typed query-service client. Construct with NewHTTP or
// DialWire; methods are safe for concurrent use. WithRetry arms
// automatic retries and a per-endpoint circuit breaker.
type Client struct {
	t     transport
	retry *retrier // nil until WithRetry
}

// Close releases the transport (a no-op for HTTP).
func (c *Client) Close() error { return c.t.close() }

// query routes every typed method through the optional retry layer.
func (c *Client) query(ctx context.Context, endpoint string, params url.Values, into interface{}) (Meta, error) {
	if c.retry == nil {
		return c.t.query(ctx, endpoint, params, into)
	}
	var meta Meta
	err := c.retry.do(ctx, endpoint, true, func() error {
		var err error
		meta, err = c.t.query(ctx, endpoint, params, into)
		return err
	})
	return meta, err
}

// Query issues one cacheable analytics query by endpoint name — the
// escape hatch under the typed methods, and the hook the equivalence
// suite drives both transports through.
func (c *Client) Query(ctx context.Context, endpoint string, params url.Values, into interface{}) (Meta, error) {
	return c.query(ctx, endpoint, params, into)
}

// ComponentsQuery tunes ComponentsWeak / ComponentsSizes. Zero values
// mean server defaults.
type ComponentsQuery struct {
	Mode  string // "allpairs" (default) or "consecutive"
	Limit *int   // sizes cap: nil = server default, 0 = all
}

func (q ComponentsQuery) values() url.Values {
	v := url.Values{}
	if q.Mode != "" {
		v.Set("mode", q.Mode)
	}
	if q.Limit != nil {
		v.Set("limit", strconv.Itoa(*q.Limit))
	}
	return v
}

// Int is a *int literal helper for optional query fields.
func Int(v int) *int { return &v }

// ComponentsWeak is GET /components/weak.
func (c *Client) ComponentsWeak(ctx context.Context, q ComponentsQuery) (*ComponentsResponse, Meta, error) {
	var resp ComponentsResponse
	meta, err := c.query(ctx, "components/weak", q.values(), &resp)
	if err != nil {
		return nil, meta, err
	}
	return &resp, meta, nil
}

// StrongQuery tunes ComponentsStrong.
type StrongQuery struct {
	MinSize *int // smallest SCC reported (server default 2)
	Limit   *int
}

// ComponentsStrong is GET /components/strong.
func (c *Client) ComponentsStrong(ctx context.Context, q StrongQuery) (*ComponentsResponse, Meta, error) {
	v := url.Values{}
	if q.MinSize != nil {
		v.Set("minSize", strconv.Itoa(*q.MinSize))
	}
	if q.Limit != nil {
		v.Set("limit", strconv.Itoa(*q.Limit))
	}
	var resp ComponentsResponse
	meta, err := c.query(ctx, "components/strong", v, &resp)
	if err != nil {
		return nil, meta, err
	}
	return &resp, meta, nil
}

// ComponentsSizes is GET /components/sizes.
func (c *Client) ComponentsSizes(ctx context.Context, q ComponentsQuery) (*SizeDistributionResponse, Meta, error) {
	var resp SizeDistributionResponse
	meta, err := c.query(ctx, "components/sizes", q.values(), &resp)
	if err != nil {
		return nil, meta, err
	}
	return &resp, meta, nil
}

// InfluenceQuery tunes InfluenceGreedy.
type InfluenceQuery struct {
	Mode    string
	Reverse bool
}

// InfluenceGreedy is GET /influence/greedy with the required seed
// count k.
func (c *Client) InfluenceGreedy(ctx context.Context, k int, q InfluenceQuery) (*InfluenceResponse, Meta, error) {
	v := url.Values{"k": {strconv.Itoa(k)}}
	if q.Mode != "" {
		v.Set("mode", q.Mode)
	}
	if q.Reverse {
		v.Set("reverse", "true")
	}
	var resp InfluenceResponse
	meta, err := c.query(ctx, "influence/greedy", v, &resp)
	if err != nil {
		return nil, meta, err
	}
	return &resp, meta, nil
}

// Closeness is GET /closeness for one temporal node.
func (c *Client) Closeness(ctx context.Context, node, stamp int32, mode string) (*ClosenessResponse, Meta, error) {
	v := url.Values{
		"node":  {strconv.FormatInt(int64(node), 10)},
		"stamp": {strconv.FormatInt(int64(stamp), 10)},
	}
	if mode != "" {
		v.Set("mode", mode)
	}
	var resp ClosenessResponse
	meta, err := c.query(ctx, "closeness", v, &resp)
	if err != nil {
		return nil, meta, err
	}
	return &resp, meta, nil
}

// Efficiency is GET /efficiency.
func (c *Client) Efficiency(ctx context.Context, mode string) (*EfficiencyResponse, Meta, error) {
	v := url.Values{}
	if mode != "" {
		v.Set("mode", mode)
	}
	var resp EfficiencyResponse
	meta, err := c.query(ctx, "efficiency", v, &resp)
	if err != nil {
		return nil, meta, err
	}
	return &resp, meta, nil
}

// KatzQuery tunes Katz. Zero values mean server defaults.
type KatzQuery struct {
	Alpha float64
	Mode  string
	Top   int
}

// Katz is GET /katz.
func (c *Client) Katz(ctx context.Context, q KatzQuery) (*KatzResponse, Meta, error) {
	v := url.Values{}
	if q.Alpha != 0 {
		v.Set("alpha", strconv.FormatFloat(q.Alpha, 'g', -1, 64))
	}
	if q.Mode != "" {
		v.Set("mode", q.Mode)
	}
	if q.Top != 0 {
		v.Set("top", strconv.Itoa(q.Top))
	}
	var resp KatzResponse
	meta, err := c.query(ctx, "katz", v, &resp)
	if err != nil {
		return nil, meta, err
	}
	return &resp, meta, nil
}

// IngestArcs submits one mutation batch. Acceptance means the batch is
// durable (if the server runs a WAL) and becomes visible after the
// next epoch fold — watch Subscribe for the revision that carries it.
func (c *Client) IngestArcs(ctx context.Context, events []Event) (*IngestAcceptedResponse, error) {
	if c.retry == nil {
		return c.t.ingest(ctx, events)
	}
	var acc *IngestAcceptedResponse
	// Not idempotent: a transport error mid-batch is ambiguous, so only
	// server-declined (429/503) batches are retried.
	err := c.retry.do(ctx, "ingest/arcs", false, func() error {
		var err error
		acc, err = c.t.ingest(ctx, events)
		return err
	})
	return acc, err
}

// Subscribe opens a change-feed subscription (KindRevision,
// KindComponents or KindKatz; see feed.Spec for cursor semantics) and
// returns its event iterator. Over the wire transport events are
// pushed at epoch boundaries; over HTTP, Subscribe falls back to
// polling emulation for KindRevision only — see the deprecation note
// in the README.
func (c *Client) Subscribe(ctx context.Context, spec FeedSpec) (*Subscription, error) {
	return c.t.subscribe(ctx, spec)
}

// Subscription iterates one change-feed stream. Next is not safe for
// concurrent use with itself; Close may race anything.
type Subscription struct {
	events <-chan FeedEvent
	errc   <-chan error
	stop   func()
	// cursor is maintained by the transport feeding events.
	cursor func() uint64
}

// Next blocks for the next event, the context's cancellation, or the
// stream's termination.
func (s *Subscription) Next(ctx context.Context) (FeedEvent, error) {
	select {
	case e, ok := <-s.events:
		if !ok {
			return FeedEvent{}, s.termErr()
		}
		return e, nil
	case <-ctx.Done():
		return FeedEvent{}, ctx.Err()
	}
}

func (s *Subscription) termErr() error {
	select {
	case err := <-s.errc:
		if err != nil {
			return err
		}
	default:
	}
	return fmt.Errorf("egclient: subscription closed")
}

// Cursor is the last revision delivered — the value to resubscribe
// with after a disconnect.
func (s *Subscription) Cursor() uint64 { return s.cursor() }

// Close tears the subscription down.
func (s *Subscription) Close() { s.stop() }
