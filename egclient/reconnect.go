package egclient

import (
	"context"
	"errors"
	"sync/atomic"
)

// SubscribeReconnect opens a wire change-feed subscription that
// survives connection loss: when the socket dies it redials addr,
// resubscribes from the last delivered revision, and keeps streaming.
// Missed epochs come back either replayed from the server's feed ring
// or summarised as one KindGap event when the cursor has fallen off
// the ring — exactly the resume contract of a manual resubscribe, just
// automated.
//
// Consecutive failed reconnect cycles (no event delivered) are bounded
// by p.MaxAttempts with the policy's backoff between dials; any
// delivered event resets the count. The subscription terminates — Next
// returns the error — when ctx ends, a non-retriable server error
// arrives (e.g. a bad spec), or the attempts are exhausted.
func SubscribeReconnect(ctx context.Context, addr string, spec FeedSpec, p RetryPolicy) *Subscription {
	p = p.withDefaults()
	r := &retrier{p: p, rng: newSeededRand(p.Seed)}
	sctx, cancel := context.WithCancel(ctx)
	events := make(chan FeedEvent, 16)
	errc := make(chan error, 1)
	var cursor atomic.Uint64
	if spec.Cursor != CursorLive {
		cursor.Store(spec.Cursor)
	}

	go func() {
		defer close(events)
		cur := spec.Cursor
		dry := 0 // consecutive cycles that delivered nothing
		fail := func(err error) {
			errc <- err
		}
		for {
			delivered, err := streamOnce(sctx, p, addr, spec, cur, &cursor, events)
			if delivered > 0 {
				dry = 0
				cur = cursor.Load() // resume after the last event we handed out
			} else {
				dry++
			}
			if sctx.Err() != nil {
				fail(sctx.Err())
				return
			}
			var re *RemoteError
			if errors.As(err, &re) {
				switch re.Code {
				case CodeBackpressure, CodeUnavailable:
					// retriable: fall through to backoff
				default:
					fail(err) // the server rejected the spec; redialing cannot help
					return
				}
			}
			if dry >= p.MaxAttempts {
				fail(err)
				return
			}
			backoffAttempt := dry - 1
			if backoffAttempt < 0 {
				backoffAttempt = 0
			}
			if serr := p.sleep(sctx, r.backoff(backoffAttempt)); serr != nil {
				fail(serr)
				return
			}
		}
	}()

	return &Subscription{
		events: events,
		errc:   errc,
		stop:   cancel,
		cursor: cursor.Load,
	}
}

// streamOnce runs one dial → subscribe → pump cycle and reports how
// many events it forwarded plus the error that ended it (never nil).
func streamOnce(ctx context.Context, p RetryPolicy, addr string, spec FeedSpec, cur uint64, cursor *atomic.Uint64, out chan<- FeedEvent) (delivered int, err error) {
	c, err := p.dial(ctx, addr)
	if err != nil {
		return 0, err
	}
	defer c.Close()
	spec.Cursor = cur
	sub, err := c.Subscribe(ctx, spec)
	if err != nil {
		return 0, err
	}
	defer sub.Close()
	for {
		ev, err := sub.Next(ctx)
		if err != nil {
			return delivered, err
		}
		select {
		case out <- ev:
		case <-ctx.Done():
			return delivered, ctx.Err()
		}
		// Published only after the handoff: a consumer never observes a
		// cursor ahead of the events it has read.
		cursor.Store(ev.Revision)
		delivered++
	}
}
