package egclient

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/wire"
)

// DialWire connects to a server's EGWP listener and returns a Client
// speaking the binary protocol. The connection is multiplexed: queries
// pipeline by correlation id, subscriptions stream on their own ids,
// all over one socket. Close releases it.
func DialWire(ctx context.Context, addr string) (*Client, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	if err := wire.WriteHello(conn); err != nil {
		conn.Close()
		return nil, err
	}
	if err := wire.ReadHello(conn); err != nil {
		conn.Close()
		return nil, fmt.Errorf("egclient: %w", err)
	}
	t := &wireTransport{
		conn:    conn,
		pending: make(map[uint32]chan wireReply),
		subs:    make(map[uint32]*wireSub),
	}
	go t.readLoop()
	return &Client{t: t}, nil
}

// wireReply is one single-frame response routed to its waiter.
type wireReply struct {
	frame wire.Frame
	err   error
}

// wireSub is the demux state of one streaming subscription.
type wireSub struct {
	events chan FeedEvent
	errc   chan error
	done   chan struct{} // closed by Subscription.Close
	cursor atomic.Uint64
	once   sync.Once
}

func (ws *wireSub) fail(err error) {
	ws.once.Do(func() {
		ws.errc <- err
		close(ws.events)
	})
}

type wireTransport struct {
	conn net.Conn
	wmu  sync.Mutex // serialises frame writes
	wbuf []byte

	mu      sync.Mutex
	nextID  uint32
	pending map[uint32]chan wireReply
	subs    map[uint32]*wireSub
	err     error // terminal transport error, set once
	closed  bool
}

func (t *wireTransport) close() error {
	t.mu.Lock()
	t.closed = true
	t.mu.Unlock()
	return t.conn.Close()
}

// writeFrame sends one frame under the write lock, reusing one buffer.
func (t *wireTransport) writeFrame(typ, flags uint8, id uint32, payload []byte) error {
	t.wmu.Lock()
	defer t.wmu.Unlock()
	t.wbuf = wire.AppendFrame(t.wbuf[:0], typ, flags, id, payload)
	_, err := t.conn.Write(t.wbuf)
	return err
}

// register allocates a correlation id with a reply channel.
func (t *wireTransport) register() (uint32, chan wireReply, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return 0, nil, t.err
	}
	if t.closed {
		return 0, nil, fmt.Errorf("egclient: transport closed")
	}
	t.nextID++
	id := t.nextID
	ch := make(chan wireReply, 1)
	t.pending[id] = ch
	return id, ch, nil
}

func (t *wireTransport) unregister(id uint32) {
	t.mu.Lock()
	delete(t.pending, id)
	t.mu.Unlock()
}

// readLoop demultiplexes server frames: single replies to their
// waiters, events to their subscription channels. A read error
// terminates every outstanding conversation.
func (t *wireTransport) readLoop() {
	fr := wire.NewReader(bufio.NewReaderSize(t.conn, 1<<16))
	for {
		frame, err := fr.ReadFrame()
		if err != nil {
			t.fatal(fmt.Errorf("egclient: connection lost: %w", err))
			return
		}
		switch frame.Type {
		case wire.REvent:
			t.mu.Lock()
			ws := t.subs[frame.ID]
			t.mu.Unlock()
			if ws == nil {
				continue // events for a subscription closed client-side
			}
			ev, err := wire.DecodeEvent(frame.Payload)
			if err != nil {
				ws.fail(err)
				continue
			}
			ws.cursor.Store(ev.Revision)
			// Blocking here is the backpressure path: an unread
			// subscription stalls the socket, the server's writer queue
			// fills, its pump pauses, and the feed ring hands us a Gap
			// event when we catch back up. A closed subscription stops
			// blocking via done.
			select {
			case ws.events <- ev:
			case <-ws.done:
			}
		case wire.RError:
			// An error frame may answer a pending request or kill a
			// subscription stream.
			t.mu.Lock()
			ch := t.pending[frame.ID]
			ws := t.subs[frame.ID]
			if ws != nil {
				delete(t.subs, frame.ID)
			}
			t.mu.Unlock()
			if ch != nil {
				t.deliver(frame, ch)
			} else if ws != nil {
				ws.fail(decodeRemoteError(frame.Payload))
			}
		default:
			t.mu.Lock()
			ch := t.pending[frame.ID]
			t.mu.Unlock()
			if ch != nil {
				t.deliver(frame, ch)
			}
		}
	}
}

// deliver hands a reply frame to its waiter, copying the payload out
// of the reader's reused buffer.
func (t *wireTransport) deliver(frame wire.Frame, ch chan wireReply) {
	frame.Payload = append([]byte(nil), frame.Payload...)
	ch <- wireReply{frame: frame}
}

// fatal terminates every outstanding request and subscription.
func (t *wireTransport) fatal(err error) {
	t.mu.Lock()
	if t.closed {
		err = fmt.Errorf("egclient: transport closed")
	}
	if t.err == nil {
		t.err = err
	}
	pending := t.pending
	subs := t.subs
	t.pending = make(map[uint32]chan wireReply)
	t.subs = make(map[uint32]*wireSub)
	t.mu.Unlock()
	for _, ch := range pending {
		ch <- wireReply{err: err}
	}
	for _, ws := range subs {
		ws.fail(err)
	}
}

// roundTrip sends one request frame and waits for its single reply.
func (t *wireTransport) roundTrip(ctx context.Context, typ uint8, payload []byte) (wire.Frame, error) {
	id, ch, err := t.register()
	if err != nil {
		return wire.Frame{}, err
	}
	defer t.unregister(id)
	if err := t.writeFrame(typ, 0, id, payload); err != nil {
		return wire.Frame{}, err
	}
	select {
	case rep := <-ch:
		if rep.err != nil {
			return wire.Frame{}, rep.err
		}
		if rep.frame.Type == wire.RError {
			return wire.Frame{}, decodeRemoteError(rep.frame.Payload)
		}
		return rep.frame, nil
	case <-ctx.Done():
		return wire.Frame{}, ctx.Err()
	}
}

func decodeRemoteError(payload []byte) error {
	code, rev, msg, detail, err := wire.DecodeError(payload)
	if err != nil {
		return fmt.Errorf("egclient: undecodable error frame: %w", err)
	}
	return &RemoteError{Code: code, Message: msg, Detail: detail, Revision: rev}
}

func (t *wireTransport) query(ctx context.Context, endpoint string, params url.Values, into interface{}) (Meta, error) {
	if ms := budgetMillis(ctx); ms > 0 {
		// Deadline propagation: the reserved _budget_ms param rides
		// inside the query encoding; the server strips it before
		// decoding, so cache keys never see it.
		clone := url.Values{}
		for k, v := range params {
			clone[k] = v
		}
		clone.Set("_budget_ms", strconv.FormatInt(ms, 10))
		params = clone
	}
	frame, err := t.roundTrip(ctx, wire.TQuery, wire.AppendQuery(nil, endpoint, params))
	if err != nil {
		if re, ok := err.(*RemoteError); ok {
			return Meta{Revision: re.Revision}, err
		}
		return Meta{}, err
	}
	rev, body, err := wire.DecodeResult(frame.Payload)
	if err != nil {
		return Meta{}, err
	}
	meta := Meta{Revision: rev, Cache: wire.CacheName(frame.Flags)}
	if into != nil {
		if err := json.Unmarshal(body, into); err != nil {
			return meta, fmt.Errorf("egclient: decoding %s response: %w", endpoint, err)
		}
	}
	return meta, nil
}

func (t *wireTransport) ingest(ctx context.Context, events []Event) (*IngestAcceptedResponse, error) {
	frame, err := t.roundTrip(ctx, wire.TIngest, wire.AppendIngest(nil, events))
	if err != nil {
		return nil, err
	}
	_, body, err := wire.DecodeResult(frame.Payload)
	if err != nil {
		return nil, err
	}
	var acc IngestAcceptedResponse
	if err := json.Unmarshal(body, &acc); err != nil {
		return nil, fmt.Errorf("egclient: decoding ingest ack: %w", err)
	}
	return &acc, nil
}

func (t *wireTransport) subscribe(ctx context.Context, spec FeedSpec) (*Subscription, error) {
	id, ch, err := t.register()
	if err != nil {
		return nil, err
	}
	// The subscription must be routable before RSubscribed arrives —
	// events may follow it in the same flush.
	ws := &wireSub{events: make(chan FeedEvent, 16), errc: make(chan error, 1), done: make(chan struct{})}
	t.mu.Lock()
	t.subs[id] = ws
	t.mu.Unlock()
	var stopOnce sync.Once
	cleanup := func() {
		stopOnce.Do(func() { close(ws.done) })
		t.mu.Lock()
		delete(t.subs, id)
		t.mu.Unlock()
	}
	if err := t.writeFrame(wire.TSubscribe, 0, id, wire.AppendSubscribe(nil, spec)); err != nil {
		t.unregister(id)
		cleanup()
		return nil, err
	}
	select {
	case rep := <-ch:
		t.unregister(id)
		if rep.err != nil {
			cleanup()
			return nil, rep.err
		}
		if rep.frame.Type == wire.RError {
			cleanup()
			return nil, decodeRemoteError(rep.frame.Payload)
		}
	case <-ctx.Done():
		t.unregister(id)
		cleanup()
		return nil, ctx.Err()
	}
	if spec.Cursor != CursorLive {
		ws.cursor.Store(spec.Cursor)
	}
	return &Subscription{
		events: ws.events,
		errc:   ws.errc,
		stop:   cleanup,
		cursor: ws.cursor.Load,
	}, nil
}
