package egclient

import (
	"context"
	"errors"
	"net/url"
	"sync"
	"testing"
	"time"

	"repro/internal/feed"
)

// scriptedSubs fabricates one Client per dial whose Subscribe delivers
// a fixed batch of events and then dies with a connection error —
// a deterministic stand-in for a flapping wire transport.
type scriptedSubs struct {
	mu      sync.Mutex
	batches [][]FeedEvent // batches[i] = events delivered by dial i
	specs   []FeedSpec    // cursor each dial resubscribed with
	dials   int
	dialErr []error // optional per-dial dial failure (nil = connect ok)
}

var errConnLost = errors.New("egclient: connection lost: scripted")

func (s *scriptedSubs) dial(ctx context.Context, addr string) (*Client, error) {
	s.mu.Lock()
	i := s.dials
	s.dials++
	s.mu.Unlock()
	if i < len(s.dialErr) && s.dialErr[i] != nil {
		return nil, s.dialErr[i]
	}
	return &Client{t: &scriptedSubTransport{owner: s, dial: i}}, nil
}

type scriptedSubTransport struct {
	owner *scriptedSubs
	dial  int
}

func (t *scriptedSubTransport) query(ctx context.Context, endpoint string, params url.Values, into interface{}) (Meta, error) {
	return Meta{}, errors.New("scripted: queries unsupported")
}

func (t *scriptedSubTransport) ingest(ctx context.Context, events []Event) (*IngestAcceptedResponse, error) {
	return nil, errors.New("scripted: ingest unsupported")
}

func (t *scriptedSubTransport) close() error { return nil }

func (t *scriptedSubTransport) subscribe(ctx context.Context, spec FeedSpec) (*Subscription, error) {
	s := t.owner
	s.mu.Lock()
	s.specs = append(s.specs, spec)
	var batch []FeedEvent
	if t.dial < len(s.batches) {
		batch = s.batches[t.dial]
	}
	s.mu.Unlock()
	events := make(chan FeedEvent, len(batch)+1)
	for _, ev := range batch {
		events <- ev
	}
	close(events) // then the connection "drops"
	errc := make(chan error, 1)
	errc <- errConnLost
	var cur uint64
	if len(batch) > 0 {
		cur = batch[len(batch)-1].Revision
	}
	return &Subscription{
		events: events,
		errc:   errc,
		stop:   func() {},
		cursor: func() uint64 { return cur },
	}, nil
}

func rev(r uint64) FeedEvent { return FeedEvent{Kind: KindRevision, Revision: r} }

func TestSubscribeReconnectResumesFromCursor(t *testing.T) {
	s := &scriptedSubs{batches: [][]FeedEvent{
		{rev(1), rev(2)}, // dial 0: two events, then the conn dies
		{rev(3)},         // dial 1: resumed, one more
		{},               // dial 2: connects but dies eventless
		{},               // dial 3: same — second consecutive dry cycle
	}}
	rec := &sleepRecorder{}
	sub := SubscribeReconnect(context.Background(), "scripted:0", FeedSpec{Kind: KindRevision, Cursor: CursorLive},
		RetryPolicy{MaxAttempts: 2, sleep: rec.sleep, dial: s.dial})
	defer sub.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for want := uint64(1); want <= 3; want++ {
		ev, err := sub.Next(ctx)
		if err != nil {
			t.Fatalf("Next (want revision %d): %v", want, err)
		}
		if ev.Revision != want {
			t.Fatalf("revision %d out of order, want %d", ev.Revision, want)
		}
	}
	// Exhaustion: dials 2 and 3 delivered nothing, MaxAttempts=2
	// consecutive dry cycles terminate the stream with the last error.
	if _, err := sub.Next(ctx); !errors.Is(err, errConnLost) {
		t.Fatalf("terminal error = %v, want the scripted connection loss", err)
	}
	if sub.Cursor() != 3 {
		t.Fatalf("Cursor() = %d, want 3 (last delivered)", sub.Cursor())
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.specs) != 4 {
		t.Fatalf("subscribes = %d, want 4", len(s.specs))
	}
	if s.specs[0].Cursor != CursorLive {
		t.Fatalf("first subscribe cursor = %d, want CursorLive", s.specs[0].Cursor)
	}
	if s.specs[1].Cursor != 2 || s.specs[2].Cursor != 3 || s.specs[3].Cursor != 3 {
		t.Fatalf("resume cursors = %d,%d,%d, want 2,3,3 (last delivered revision)",
			s.specs[1].Cursor, s.specs[2].Cursor, s.specs[3].Cursor)
	}
}

func TestSubscribeReconnectStopsOnBadSpec(t *testing.T) {
	badSpec := &RemoteError{Code: CodeBadRequest, Message: "cannot subscribe to kind gap"}
	s := &scriptedSubs{}
	// Make every subscribe fail terminally by scripting the dial to
	// produce a transport whose subscribe errors: reuse dialErr for the
	// connect and a wrapper for the subscribe-level rejection.
	dial := func(ctx context.Context, addr string) (*Client, error) {
		s.mu.Lock()
		s.dials++
		s.mu.Unlock()
		return &Client{t: &failingSubTransport{err: badSpec}}, nil
	}
	sub := SubscribeReconnect(context.Background(), "scripted:0", FeedSpec{Kind: feed.KindGap},
		RetryPolicy{MaxAttempts: 5, sleep: (&sleepRecorder{}).sleep, dial: dial})
	defer sub.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, err := sub.Next(ctx)
	if !errors.Is(err, badSpec) {
		t.Fatalf("terminal error = %v, want the server's rejection", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dials != 1 {
		t.Fatalf("dials = %d, want 1: a rejected spec must not be redialed", s.dials)
	}
}

type failingSubTransport struct{ err error }

func (t *failingSubTransport) query(ctx context.Context, endpoint string, params url.Values, into interface{}) (Meta, error) {
	return Meta{}, t.err
}
func (t *failingSubTransport) ingest(ctx context.Context, events []Event) (*IngestAcceptedResponse, error) {
	return nil, t.err
}
func (t *failingSubTransport) close() error { return nil }
func (t *failingSubTransport) subscribe(ctx context.Context, spec FeedSpec) (*Subscription, error) {
	return nil, t.err
}
