package egclient

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// RetryPolicy arms a Client (via WithRetry) with automatic retries and
// a per-endpoint circuit breaker. Zero-valued fields take the defaults
// noted below, so RetryPolicy{} is a usable "sensible retries" choice.
//
// Retries fire only on failures the server declared retriable —
// backpressure (429) and unavailable (503, which covers degraded mode,
// budget rejection and recovery bootstrap) — plus, for idempotent
// reads, transport-level connection failures. A Retry-After hint on
// the failure becomes the backoff floor. Ingest batches are NOT
// retried on transport errors: a connection that died mid-request
// leaves the batch's fate unknown, and replaying it could double-apply
// the mutations.
type RetryPolicy struct {
	// MaxAttempts bounds total tries per call, first included
	// (default 3; 1 disables retries).
	MaxAttempts int
	// BaseBackoff seeds the exponential backoff: attempt k sleeps
	// base<<k halved-plus-jitter, capped at MaxBackoff. Defaults
	// 50ms and 2s.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// BreakerThreshold consecutive failures on one endpoint open its
	// breaker: calls fail fast with ErrCircuitOpen until
	// BreakerCooldown passes, then one probe is let through and its
	// outcome closes or re-opens the circuit. Defaults 5 and 1s; a
	// negative threshold disables the breaker.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Seed fixes the jitter sequence; 0 means 1. Deterministic seeds
	// keep retry tests and chaos runs reproducible.
	Seed int64

	// Test seams: sleeping, clock, and (for SubscribeReconnect) the
	// dialer. Nil means real time and DialWire.
	sleep func(ctx context.Context, d time.Duration) error
	now   func() time.Time
	dial  func(ctx context.Context, addr string) (*Client, error)
}

// ErrCircuitOpen is returned (wrapped, with the endpoint named) when
// an endpoint's breaker is open and the call was not attempted.
var ErrCircuitOpen = errors.New("egclient: circuit open")

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 50 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 2 * time.Second
	}
	if p.BreakerThreshold == 0 {
		p.BreakerThreshold = 5
	}
	if p.BreakerCooldown <= 0 {
		p.BreakerCooldown = time.Second
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.sleep == nil {
		p.sleep = sleepCtx
	}
	if p.now == nil {
		p.now = time.Now
	}
	if p.dial == nil {
		p.dial = DialWire
	}
	return p
}

// WithRetry arms the client with p and returns the same client, so it
// chains off the constructor:
//
//	c := egclient.NewHTTP(url, egclient.HTTPOptions{}).WithRetry(egclient.RetryPolicy{})
func (c *Client) WithRetry(p RetryPolicy) *Client {
	p = p.withDefaults()
	c.retry = &retrier{
		p:        p,
		rng:      newSeededRand(p.Seed),
		breakers: make(map[string]*breaker),
	}
	return c
}

func newSeededRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// retrier is the armed retry state: policy, deterministic jitter
// source, and one breaker per endpoint.
type retrier struct {
	p RetryPolicy

	mu       sync.Mutex
	rng      *rand.Rand
	breakers map[string]*breaker
}

// do runs call under the policy. idempotent gates whether ambiguous
// transport errors are retried (reads yes, ingest no).
func (r *retrier) do(ctx context.Context, endpoint string, idempotent bool, call func() error) error {
	br := r.breakerFor(endpoint)
	for attempt := 0; ; attempt++ {
		if !br.allow(r.p.now()) {
			return fmt.Errorf("%w: %s cooling down after %d consecutive failures",
				ErrCircuitOpen, endpoint, r.p.BreakerThreshold)
		}
		err := call()
		if err == nil {
			br.succeed()
			return nil
		}
		retriable, floor := classify(err, idempotent)
		br.fail(r.p.now())
		if !retriable || attempt+1 >= r.p.MaxAttempts {
			return err
		}
		d := r.backoff(attempt)
		if floor > d {
			d = floor
		}
		if serr := r.p.sleep(ctx, d); serr != nil {
			return serr
		}
	}
}

// classify decides whether err is worth retrying and extracts the
// server's Retry-After floor.
func classify(err error, idempotent bool) (retriable bool, floor time.Duration) {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false, 0 // the caller's deadline, not the server's state
	}
	var re *RemoteError
	if errors.As(err, &re) {
		switch re.Code {
		case CodeBackpressure, CodeUnavailable:
			return true, re.RetryAfter
		}
		return false, 0 // request errors: retrying the same bytes cannot help
	}
	// No server verdict: a transport failure. The request may or may
	// not have been applied, so only idempotent calls retry.
	return idempotent, 0
}

// backoff is exponential with equal jitter: half deterministic growth,
// half seeded randomness, capped at MaxBackoff.
func (r *retrier) backoff(attempt int) time.Duration {
	if attempt > 20 {
		attempt = 20 // base<<k would overflow; cap applies anyway
	}
	d := r.p.BaseBackoff << attempt
	if d <= 0 || d > r.p.MaxBackoff {
		d = r.p.MaxBackoff
	}
	half := d / 2
	r.mu.Lock()
	j := time.Duration(r.rng.Int63n(int64(half) + 1))
	r.mu.Unlock()
	return half + j
}

func (r *retrier) breakerFor(endpoint string) *breaker {
	r.mu.Lock()
	defer r.mu.Unlock()
	br := r.breakers[endpoint]
	if br == nil {
		br = &breaker{threshold: r.p.BreakerThreshold, cooldown: r.p.BreakerCooldown}
		r.breakers[endpoint] = br
	}
	return br
}

// breaker is one endpoint's consecutive-failure circuit. Closed until
// threshold consecutive failures, then open for cooldown, then
// half-open: one probe proceeds and its outcome closes or re-opens.
type breaker struct {
	threshold int
	cooldown  time.Duration

	mu        sync.Mutex
	fails     int
	openUntil time.Time
	probing   bool
}

func (b *breaker) allow(now time.Time) bool {
	if b.threshold < 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.fails < b.threshold {
		return true
	}
	if now.Before(b.openUntil) || b.probing {
		return false
	}
	b.probing = true
	return true
}

func (b *breaker) succeed() {
	b.mu.Lock()
	b.fails = 0
	b.probing = false
	b.mu.Unlock()
}

func (b *breaker) fail(now time.Time) {
	b.mu.Lock()
	b.fails++
	b.probing = false
	if b.threshold >= 0 && b.fails >= b.threshold {
		b.openUntil = now.Add(b.cooldown)
	}
	b.mu.Unlock()
}

// sleepCtx is the real-time sleep seam: context-aware, so a cancelled
// caller never sits out a backoff.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// budgetMillis converts a context deadline into the whole-millisecond
// budget both transports forward (X-Budget-Ms header, _budget_ms wire
// param). 0 means no deadline — send nothing.
func budgetMillis(ctx context.Context) int64 {
	d, ok := ctx.Deadline()
	if !ok {
		return 0
	}
	ms := time.Until(d).Milliseconds()
	if ms < 1 {
		ms = 1 // expired or sub-millisecond: still tell the server
	}
	return ms
}
