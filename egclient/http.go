package egclient

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/feed"
	"repro/internal/wire"
)

// HTTPOptions tunes the HTTP transport. The zero value is usable.
type HTTPOptions struct {
	// Client is the http.Client to use (default http.DefaultClient).
	Client *http.Client
	// PollInterval paces the Subscribe polling emulation (default
	// 100ms). Wire subscriptions push instead; prefer them.
	PollInterval time.Duration
}

// NewHTTP returns a Client speaking JSON-over-HTTP to baseURL (e.g.
// "http://127.0.0.1:8080").
func NewHTTP(baseURL string, opts HTTPOptions) *Client {
	if opts.Client == nil {
		opts.Client = http.DefaultClient
	}
	if opts.PollInterval <= 0 {
		opts.PollInterval = 100 * time.Millisecond
	}
	return &Client{t: &httpTransport{
		base: strings.TrimRight(baseURL, "/"),
		hc:   opts.Client,
		poll: opts.PollInterval,
	}}
}

type httpTransport struct {
	base string
	hc   *http.Client
	poll time.Duration
}

func (t *httpTransport) close() error { return nil }

func (t *httpTransport) query(ctx context.Context, endpoint string, params url.Values, into interface{}) (Meta, error) {
	u := t.base + "/" + endpoint
	if enc := params.Encode(); enc != "" {
		u += "?" + enc
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return Meta{}, err
	}
	if ms := budgetMillis(ctx); ms > 0 {
		// Propagate the caller's deadline so the server's admission
		// control can reject work it cannot finish in time.
		req.Header.Set("X-Budget-Ms", strconv.FormatInt(ms, 10))
	}
	resp, err := t.hc.Do(req)
	if err != nil {
		return Meta{}, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return Meta{}, err
	}
	rev, _ := strconv.ParseUint(resp.Header.Get("X-Graph-Revision"), 10, 64)
	meta := Meta{Revision: rev, Cache: resp.Header.Get("X-Cache")}
	if resp.StatusCode != http.StatusOK {
		return meta, remoteError(resp.StatusCode, resp.Header, body)
	}
	if into != nil {
		if err := json.Unmarshal(body, into); err != nil {
			return meta, fmt.Errorf("egclient: decoding %s response: %w", endpoint, err)
		}
	}
	return meta, nil
}

func (t *httpTransport) ingest(ctx context.Context, events []Event) (*IngestAcceptedResponse, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, e := range events {
		line := map[string]interface{}{"t": e.T}
		switch e.Op {
		case AddArc:
			line["op"] = "add"
		case RemoveArc:
			line["op"] = "remove"
		case AddStamp:
			line["op"] = "stamp"
		default:
			return nil, fmt.Errorf("egclient: unknown event op %d", e.Op)
		}
		if e.Op != AddStamp {
			line["u"], line["v"] = e.U, e.V
		}
		if err := enc.Encode(line); err != nil {
			return nil, err
		}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, t.base+"/ingest/arcs", &buf)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := t.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusAccepted {
		return nil, remoteError(resp.StatusCode, resp.Header, body)
	}
	var acc IngestAcceptedResponse
	if err := json.Unmarshal(body, &acc); err != nil {
		return nil, fmt.Errorf("egclient: decoding ingest response: %w", err)
	}
	return &acc, nil
}

// subscribe emulates a KindRevision feed by polling /healthz — the
// exact pattern the change-feed deprecates, kept only so HTTP-only
// callers can run unchanged. Events carry the revision and graph shape
// but no analytics-derived kinds; resume replays nothing (polling has
// no ring to replay from): a cursor only suppresses events at or below
// it.
//
// Deprecated: dial the wire transport for pushed events with resumable
// cursors.
func (t *httpTransport) subscribe(ctx context.Context, spec FeedSpec) (*Subscription, error) {
	if spec.Kind != feed.KindRevision {
		return nil, &RemoteError{
			Code:    wire.CodeBadRequest,
			Message: fmt.Sprintf("HTTP transport cannot stream %s events; use the wire transport", spec.Kind),
		}
	}
	sctx, cancel := context.WithCancel(ctx)
	events := make(chan FeedEvent, 16)
	errc := make(chan error, 1)
	cur := new(atomic.Uint64)
	if spec.Cursor != CursorLive {
		cur.Store(spec.Cursor)
	} else {
		// Live means "from now": one probe pins the current revision so
		// only later ones emit.
		var h healthz
		if _, err := t.query(sctx, "healthz", nil, &h); err != nil {
			cancel()
			return nil, err
		}
		cur.Store(h.GraphRevision)
	}
	go func() {
		defer close(events)
		tick := time.NewTicker(t.poll)
		defer tick.Stop()
		for {
			var h healthz
			if _, err := t.query(sctx, "healthz", nil, &h); err != nil {
				errc <- err
				return
			}
			if h.GraphRevision > cur.Load() {
				cur.Store(h.GraphRevision)
				select {
				case events <- FeedEvent{
					Kind:        feed.KindRevision,
					Revision:    h.GraphRevision,
					Nodes:       h.Nodes,
					Stamps:      h.Stamps,
					ActiveNodes: h.ActiveNodes,
				}:
				case <-sctx.Done():
					errc <- sctx.Err()
					return
				}
			}
			select {
			case <-tick.C:
			case <-sctx.Done():
				errc <- sctx.Err()
				return
			}
		}
	}()
	return &Subscription{
		events: events,
		errc:   errc,
		stop:   cancel,
		cursor: cur.Load,
	}, nil
}

// healthz mirrors the /healthz fields the poller needs.
type healthz struct {
	GraphRevision uint64 `json:"graphRevision"`
	Nodes         int    `json:"nodes"`
	Stamps        int    `json:"stamps"`
	ActiveNodes   int    `json:"activeTemporalNodes"`
}

// remoteError turns an HTTP error body (the versioned envelope) into
// the same *RemoteError the wire transport produces, capturing the
// Retry-After hint retriable failures (429/503) carry.
func remoteError(status int, header http.Header, body []byte) error {
	re := &RemoteError{Code: wire.CodeFromStatus(status)}
	if secs, err := strconv.Atoi(header.Get("Retry-After")); err == nil && secs > 0 {
		re.RetryAfter = time.Duration(secs) * time.Second
	}
	var env ErrorResponse
	if err := json.Unmarshal(body, &env); err != nil || env.Error == "" {
		re.Message = strings.TrimSpace(string(body))
		return re
	}
	re.Message = env.Error
	re.Detail = env.Detail
	re.Revision = env.Revision
	return re
}
