package egclient

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"testing"
	"time"

	"repro/internal/wire"
)

// fakeTransport scripts per-call outcomes: script[i] is the error the
// i-th call returns (nil = success); past the end the last entry
// repeats. Queries and ingest share one counter so tests read a single
// call total.
type fakeTransport struct {
	mu     sync.Mutex
	calls  int
	script []error
}

func (f *fakeTransport) next() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	i := f.calls
	f.calls++
	if len(f.script) == 0 {
		return nil
	}
	if i >= len(f.script) {
		i = len(f.script) - 1
	}
	return f.script[i]
}

func (f *fakeTransport) count() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}

func (f *fakeTransport) query(ctx context.Context, endpoint string, params url.Values, into interface{}) (Meta, error) {
	if err := f.next(); err != nil {
		return Meta{}, err
	}
	return Meta{Revision: 7, Cache: "hit"}, nil
}

func (f *fakeTransport) ingest(ctx context.Context, events []Event) (*IngestAcceptedResponse, error) {
	if err := f.next(); err != nil {
		return nil, err
	}
	return &IngestAcceptedResponse{Accepted: len(events)}, nil
}

func (f *fakeTransport) subscribe(ctx context.Context, spec FeedSpec) (*Subscription, error) {
	return nil, errors.New("fakeTransport: no subscriptions")
}

func (f *fakeTransport) close() error { return nil }

// sleepRecorder replaces the real backoff sleep and logs each duration.
type sleepRecorder struct {
	mu     sync.Mutex
	sleeps []time.Duration
}

func (s *sleepRecorder) sleep(ctx context.Context, d time.Duration) error {
	s.mu.Lock()
	s.sleeps = append(s.sleeps, d)
	s.mu.Unlock()
	return ctx.Err()
}

func retryClient(t *fakeTransport, p RetryPolicy) *Client {
	return (&Client{t: t}).WithRetry(p)
}

func TestRetrySucceedsAfterBackpressure(t *testing.T) {
	back := &RemoteError{Code: CodeBackpressure, Message: "pending delta full"}
	ft := &fakeTransport{script: []error{back, back, nil}}
	rec := &sleepRecorder{}
	c := retryClient(ft, RetryPolicy{
		MaxAttempts: 3,
		BaseBackoff: 50 * time.Millisecond,
		Seed:        42,
		sleep:       rec.sleep,
	})
	meta, err := c.Query(context.Background(), "katz", nil, nil)
	if err != nil {
		t.Fatalf("Query after retries: %v", err)
	}
	if meta.Revision != 7 {
		t.Fatalf("meta.Revision = %d, want 7", meta.Revision)
	}
	if ft.count() != 3 {
		t.Fatalf("transport calls = %d, want 3", ft.count())
	}
	if len(rec.sleeps) != 2 {
		t.Fatalf("sleeps = %v, want two backoffs", rec.sleeps)
	}
	// Equal jitter: attempt k sleeps in [base<<k / 2, base<<k].
	for k, d := range rec.sleeps {
		lo := (50 * time.Millisecond << k) / 2
		hi := 50 * time.Millisecond << k
		if d < lo || d > hi {
			t.Fatalf("backoff[%d] = %v, want within [%v, %v]", k, d, lo, hi)
		}
	}
}

func TestRetryIsDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) []time.Duration {
		back := &RemoteError{Code: CodeUnavailable}
		ft := &fakeTransport{script: []error{back, back, back, nil}}
		rec := &sleepRecorder{}
		c := retryClient(ft, RetryPolicy{MaxAttempts: 4, Seed: seed, sleep: rec.sleep})
		if _, err := c.Query(context.Background(), "katz", nil, nil); err != nil {
			t.Fatalf("Query: %v", err)
		}
		return rec.sleeps
	}
	a, b := run(9), run(9)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged: %v vs %v", a, b)
		}
	}
}

func TestRetryAfterIsBackoffFloor(t *testing.T) {
	back := &RemoteError{Code: CodeUnavailable, RetryAfter: 700 * time.Millisecond}
	ft := &fakeTransport{script: []error{back, nil}}
	rec := &sleepRecorder{}
	c := retryClient(ft, RetryPolicy{MaxAttempts: 2, BaseBackoff: 50 * time.Millisecond, sleep: rec.sleep})
	if _, err := c.Query(context.Background(), "katz", nil, nil); err != nil {
		t.Fatalf("Query: %v", err)
	}
	// backoff(0) ≤ 50ms, so the server's hint wins exactly.
	if len(rec.sleeps) != 1 || rec.sleeps[0] != 700*time.Millisecond {
		t.Fatalf("sleeps = %v, want exactly [700ms] (Retry-After floor)", rec.sleeps)
	}
}

func TestNoRetryOnRequestErrors(t *testing.T) {
	for _, code := range []Code{CodeBadRequest, CodeNotFound, CodeInternal} {
		ft := &fakeTransport{script: []error{&RemoteError{Code: code}}}
		rec := &sleepRecorder{}
		c := retryClient(ft, RetryPolicy{MaxAttempts: 5, sleep: rec.sleep})
		_, err := c.Query(context.Background(), "katz", nil, nil)
		var re *RemoteError
		if !errors.As(err, &re) || re.Code != code {
			t.Fatalf("code %v: err = %v, want the RemoteError back", code, err)
		}
		if ft.count() != 1 || len(rec.sleeps) != 0 {
			t.Fatalf("code %v: calls=%d sleeps=%v, want exactly one attempt", code, ft.count(), rec.sleeps)
		}
	}
}

func TestIngestNotRetriedOnAmbiguousTransportError(t *testing.T) {
	connDead := fmt.Errorf("egclient: connection lost: %w", errors.New("read: reset"))
	ft := &fakeTransport{script: []error{connDead, nil}}
	c := retryClient(ft, RetryPolicy{MaxAttempts: 3, sleep: (&sleepRecorder{}).sleep})
	if _, err := c.IngestArcs(context.Background(), []Event{{Op: AddArc, U: 1, V: 2, T: 0}}); err == nil {
		t.Fatal("ambiguous ingest failure must surface, not be replayed")
	}
	if ft.count() != 1 {
		t.Fatalf("transport calls = %d, want 1 (batch must not be re-sent)", ft.count())
	}
	// The same failure on a read IS retried: queries are idempotent.
	ft2 := &fakeTransport{script: []error{connDead, nil}}
	c2 := retryClient(ft2, RetryPolicy{MaxAttempts: 3, sleep: (&sleepRecorder{}).sleep})
	if _, err := c2.Query(context.Background(), "katz", nil, nil); err != nil {
		t.Fatalf("idempotent read should retry past a transport error: %v", err)
	}
	// Server-declined ingest (429) is safe to retry: nothing was applied.
	ft3 := &fakeTransport{script: []error{&RemoteError{Code: CodeBackpressure}, nil}}
	c3 := retryClient(ft3, RetryPolicy{MaxAttempts: 3, sleep: (&sleepRecorder{}).sleep})
	if _, err := c3.IngestArcs(context.Background(), []Event{{Op: AddStamp, T: 1}}); err != nil {
		t.Fatalf("backpressured ingest should retry: %v", err)
	}
	if ft3.count() != 2 {
		t.Fatalf("transport calls = %d, want 2", ft3.count())
	}
}

func TestBreakerOpensFailsFastAndRecovers(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	back := &RemoteError{Code: CodeUnavailable}
	ft := &fakeTransport{script: []error{back, back, nil}}
	c := retryClient(ft, RetryPolicy{
		MaxAttempts:      1, // isolate the breaker from the retry loop
		BreakerThreshold: 2,
		BreakerCooldown:  time.Second,
		sleep:            (&sleepRecorder{}).sleep,
		now:              clock,
	})
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := c.Query(ctx, "katz", nil, nil); !errors.Is(err, back) {
			t.Fatalf("failure %d: %v", i, err)
		}
	}
	// Threshold reached: open. Calls fail fast without touching the
	// transport...
	if _, err := c.Query(ctx, "katz", nil, nil); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("open breaker returned %v, want ErrCircuitOpen", err)
	}
	if ft.count() != 2 {
		t.Fatalf("transport calls = %d, want 2 (fail-fast must not dial)", ft.count())
	}
	// ...and other endpoints are unaffected (per-endpoint circuits).
	if _, err := c.Query(ctx, "closeness", nil, nil); err != nil {
		t.Fatalf("other endpoint tripped by katz's breaker: %v", err)
	}
	// After the cooldown one probe goes through; its success closes the
	// circuit for good.
	now = now.Add(1100 * time.Millisecond)
	if _, err := c.Query(ctx, "katz", nil, nil); err != nil {
		t.Fatalf("half-open probe: %v", err)
	}
	if _, err := c.Query(ctx, "katz", nil, nil); err != nil {
		t.Fatalf("closed circuit: %v", err)
	}
}

func TestBudgetHeaderPropagatesDeadline(t *testing.T) {
	got := make(chan string, 2)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got <- r.Header.Get("X-Budget-Ms")
		w.Header().Set("X-Graph-Revision", "1")
		fmt.Fprint(w, "{}")
	}))
	defer ts.Close()
	c := NewHTTP(ts.URL, HTTPOptions{})

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, err := c.Query(ctx, "katz", nil, nil); err != nil {
		t.Fatalf("Query with deadline: %v", err)
	}
	if ms := <-got; ms == "" {
		t.Fatal("deadline context sent no X-Budget-Ms header")
	}
	if _, err := c.Query(context.Background(), "katz", nil, nil); err != nil {
		t.Fatalf("Query without deadline: %v", err)
	}
	if ms := <-got; ms != "" {
		t.Fatalf("deadline-free context sent X-Budget-Ms=%q, want none", ms)
	}
}

func TestRemoteErrorCapturesRetryAfter(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "3")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprint(w, `{"error":"degraded"}`)
	}))
	defer ts.Close()
	c := NewHTTP(ts.URL, HTTPOptions{})
	_, err := c.Query(context.Background(), "katz", nil, nil)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want RemoteError", err)
	}
	if re.Code != wire.CodeUnavailable || re.RetryAfter != 3*time.Second {
		t.Fatalf("RemoteError = %+v, want unavailable with RetryAfter=3s", re)
	}
}
