package evolving

// The live ingestion surface: the durable write path that turns a
// read-only QueryServer into a live one (internal/ingest, DESIGN.md
// §11). Batches of IngestEvent flow through an optional write-ahead
// log into a pending delta; a background epoch compactor folds the
// delta into a fresh immutable Graph and publishes it through the
// server's ReplaceGraph, invalidating the versioned result cache.
//
//	srv := evolving.NewQueryServer(g, evolving.ServerConfig{})
//	wal, rec, _ := evolving.OpenWAL("events.wal", evolving.WALOptions{})
//	if len(rec.Events) > 0 {
//		srv.ReplaceGraph(evolving.FoldEvents(srv.Graph(), rec.Events))
//	}
//	log, _ := evolving.NewIngestLog(srv, evolving.IngestConfig{WAL: wal})
//	defer log.Close()
//	srv.AttachIngest(log)
//
// cmd/egserve wires exactly this (flag -wal); examples/ingestion is a
// self-contained walkthrough including a simulated crash.

import (
	"repro/internal/egio"
	"repro/internal/ingest"
)

// IngestEvent is one mutation of a live evolving graph: an arc
// insertion/removal at a time label, or the registration of a new
// label.
type IngestEvent = ingest.Event

// IngestEventOp enumerates the mutation kinds.
type IngestEventOp = ingest.EventOp

// Mutation kinds accepted by an IngestLog.
const (
	IngestAddArc    = ingest.AddArc
	IngestRemoveArc = ingest.RemoveArc
	IngestAddStamp  = ingest.AddStamp
)

// IngestLog is the mutation API of the live query service; construct
// with NewIngestLog.
type IngestLog = ingest.Log

// IngestConfig tunes an IngestLog (WAL, epoch thresholds,
// backpressure bound).
type IngestConfig = ingest.Config

// IngestStats is the write-path counter snapshot (/ingest/stats).
type IngestStats = ingest.Stats

// IngestPublisher is the seam the compactor publishes through;
// QueryServer implements it.
type IngestPublisher = ingest.Publisher

// WAL is the write-ahead log backing durable ingestion.
type WAL = ingest.WAL

// WALOptions tunes WAL durability (fsync policy and interval).
type WALOptions = ingest.WALOptions

// WALRecovery reports what OpenWAL found in an existing log.
type WALRecovery = ingest.Recovery

// WAL fsync policies.
const (
	WALSyncInterval = ingest.SyncInterval
	WALSyncAlways   = ingest.SyncAlways
	WALSyncNever    = ingest.SyncNever
)

// ErrIngestBackpressure is returned by IngestLog.Append when the
// compactor lags the write rate.
var ErrIngestBackpressure = ingest.ErrBackpressure

// NewIngestLog builds the write path over a publisher (normally a
// QueryServer) and starts its epoch compactor.
func NewIngestLog(pub IngestPublisher, cfg IngestConfig) (*IngestLog, error) {
	return ingest.New(pub, cfg)
}

// OpenWAL opens (creating if absent) a write-ahead log, replaying any
// existing records and truncating a torn tail at the last complete
// record.
func OpenWAL(path string, opts WALOptions) (*WAL, *WALRecovery, error) {
	return ingest.OpenWAL(path, opts)
}

// FoldEvents applies an event stream to a base graph and builds the
// resulting immutable graph from scratch — the full-rebuild fold,
// exposed for recovery and offline compaction, and the differential
// oracle of the incremental PatchEvents path
// (IngestConfig.UseFullRebuild).
func FoldEvents(base *Graph, events []IngestEvent) *Graph {
	return ingest.Fold(base, events)
}

// PatchEvents applies an event stream to a base graph by copy-on-write:
// only stamps the delta touches are rebuilt, everything else is shared
// with base by reference (DESIGN.md §12). Semantically equivalent to
// FoldEvents at delta-proportional cost; the live epoch compactor uses
// this path by default.
func PatchEvents(base *Graph, events []IngestEvent) *Graph {
	return ingest.Patch(base, events)
}

// A QueryServer is a valid publisher: Graph/ReplaceGraph/AttachIngest
// form the read-write seam the compactor swaps snapshots through.
var _ IngestPublisher = (*QueryServer)(nil)

// CheckpointMeta carries the WAL coverage sequence and extra time
// labels a checkpoint persists alongside the graph (internal/egio,
// DESIGN.md §14).
type CheckpointMeta = egio.CheckpointMeta

// CheckpointInfo describes a parsed checkpoint: coverage, labels,
// shape and on-disk size.
type CheckpointInfo = egio.CheckpointInfo

// Checkpoint is an open, validated, mmap-backed checkpoint; Close
// unmaps it (after which the graph must not be used).
type Checkpoint = egio.Checkpoint

// WriteCheckpoint persists g — snapshots, activity index and flat CSR
// view — as a page-aligned, CRC-guarded, mmap-able file, atomically
// (temp + rename). The returned size is the final file's bytes.
func WriteCheckpoint(path string, g *Graph, meta CheckpointMeta) (int64, error) {
	return egio.WriteCheckpoint(path, g, meta)
}

// OpenCheckpoint maps path read-only and validates it end to end
// (CRCs, then full structural validation), returning a zero-copy
// graph over the mapping. Any damage — truncation, bit rot, a torn
// rename — fails cleanly; recovery then falls back to WAL replay.
func OpenCheckpoint(path string) (*Checkpoint, error) {
	return egio.OpenCheckpoint(path)
}

// RecoverConfig and RecoverResult configure and report a
// checkpoint-aware recover-then-serve boot; see Recover.
type RecoverConfig = ingest.RecoverConfig

// RecoverResult reports how Recover brought the graph up.
type RecoverResult = ingest.RecoverResult

// Recover opens a WAL and boots the newest recoverable graph: mmap'd
// checkpoint + tail fold when the checkpoint validates and its
// coverage is confirmed, base + full replay otherwise. Both paths are
// bit-identical; cmd/egserve boots through this with -wal.
func Recover(cfg RecoverConfig) (*RecoverResult, error) {
	return ingest.Recover(cfg)
}
