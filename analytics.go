// Windowed views, temporal motif counting, journalled persistence for
// the dynamic store, and the HTTP query handler — the analytics and
// service layer over the core library (DESIGN.md §7).

package evolving

import (
	"io"
	"net/http"

	"repro/internal/dynadj"
	"repro/internal/feed"
	"repro/internal/motif"
	"repro/internal/server"
	"repro/internal/window"
	"repro/internal/wire"
)

// Window is the evolving subgraph induced by a contiguous stamp range.
type Window = window.Window

// WindowStats summarises one sliding-window position.
type WindowStats = window.Stats

// CutWindow returns the window of g covering stamps [lo, hi] inclusive.
func CutWindow(g *Graph, lo, hi int) (*Window, error) { return window.Cut(g, lo, hi) }

// RollWindows slides a width-stamp window across g and reports edge,
// activity, and (for root ≥ 0) windowed-reach statistics per position.
func RollWindows(g *Graph, width int, root int32) ([]WindowStats, error) {
	return window.Roll(g, width, root)
}

// MotifCounts2 is the 2-edge temporal motif census (path, ping-pong,
// fan-out, fan-in, repeat).
type MotifCounts2 = motif.Counts2

// MotifCounts3 is the triangle motif census (feed-forward, cycle).
type MotifCounts3 = motif.Counts3

// CountMotifs2 counts 2-edge temporal motifs with stamp window delta.
func CountMotifs2(g *Graph, delta int) (MotifCounts2, error) { return motif.Count2(g, delta) }

// CountTriangleMotifs counts feed-forward and cyclic temporal triangles
// with stamp window delta.
func CountTriangleMotifs(g *Graph, delta int) (MotifCounts3, error) {
	return motif.CountTriangles(g, delta)
}

// MotifProfile runs the 2-edge census for every delta in 1..maxDelta.
func MotifProfile(g *Graph, maxDelta int) ([]MotifCounts2, error) {
	return motif.Profile(g, maxDelta)
}

// LoggedStore pairs a DynamicStore with a write-ahead journal: every
// batch is logged before it is applied.
type LoggedStore = dynadj.Logged

// ErrTruncatedJournal reports a torn journal tail; the store returned
// with it holds every batch before the damage.
var ErrTruncatedJournal = dynadj.ErrTruncatedJournal

// NewLoggedStore creates a journalled dynamic store writing its log to w.
func NewLoggedStore(w io.Writer, numNodes int, times []int64, directed bool) (*LoggedStore, error) {
	return dynadj.NewLogged(w, numNodes, times, directed)
}

// ReplayJournal reconstructs a dynamic store from a journal, recovering
// the longest clean prefix of batches on a torn tail.
func ReplayJournal(r io.Reader) (store *DynamicStore, batches int, err error) {
	return dynadj.Replay(r)
}

// HTTPHandler serves g as a JSON query API with default configuration:
// the seed query endpoints (/stats, /bfs, /path, /reach, /neighbors,
// /criteria) plus the cached analytics endpoints (/components/*,
// /influence/greedy, /closeness, /efficiency, /katz) and the /healthz
// and /metrics operational endpoints — see internal/server and
// DESIGN.md §10. The graph must not be mutated while served; Graph
// values are immutable, so any graph built through this package
// qualifies.
func HTTPHandler(g *Graph) http.Handler { return server.Handler(g) }

// ServerConfig tunes the query service: analytics result-cache
// capacity and sharding, the in-flight expensive-computation bound,
// and the per-computation worker fan-out.
type ServerConfig = server.Config

// QueryServer is the production query service over an immutable Graph:
// analytics served from the shared CSR engine through a versioned
// result cache (internal/qcache) with singleflight collapse of
// concurrent identical requests and a worker-pool semaphore bounding
// in-flight computations. It implements http.Handler. ReplaceGraph
// atomically swaps the served graph and invalidates every cached
// result; CacheStats exposes the cache counters.
type QueryServer = server.Server

// NewQueryServer returns a QueryServer serving g under cfg (the zero
// ServerConfig picks machine-sized defaults).
func NewQueryServer(g *Graph, cfg ServerConfig) *QueryServer { return server.New(g, cfg) }

// Change-feed subsystem (DESIGN.md §15): the server publishes an epoch
// to its FeedHub at every revision swap; subscribers pull typed events
// (revision published, weak-component membership changed, a node's
// Katz score moved) with resumable cursors. QueryServer.ServeWire
// exposes the hub over the EGWP binary protocol; the egclient package
// is the typed client for both transports.
type (
	FeedHub   = feed.Hub
	FeedSpec  = feed.Spec
	FeedEvent = feed.Event
	FeedKind  = feed.Kind
	FeedStats = feed.Stats
)

// Feed event kinds and the live-cursor sentinel, re-exported.
const (
	FeedRevision   = feed.KindRevision
	FeedComponents = feed.KindComponents
	FeedKatz       = feed.KindKatz
	FeedGap        = feed.KindGap
	FeedCursorLive = feed.CursorLive
)

// WireCode is the transport-neutral error code every failure carries —
// the same enum inside the HTTP JSON envelope ("code" field) and the
// EGWP binary error frame, so callers switch on codes, not transports.
type WireCode = wire.Code

// WireError is the typed error both egclient transports return for
// server-reported failures.
type WireError = wire.RemoteError
