// Benchmark harness: one benchmark per figure/claim of the paper's
// evaluation, per the experiment index in DESIGN.md. Run:
//
//	go test -bench=. -benchmem .
//
// Absolute times depend on the machine; the *shapes* are what reproduce
// the paper: BenchmarkFig5ScalingBFS must grow linearly with |Ẽ|
// (Thm. 2 / Fig. 5), the adjacency-list BFS must beat both algebraic
// variants (Sec. IV's closing claim), and CSC must beat dense (Thm. 6 vs
// Thm. 5). cmd/egbench prints the Fig. 5 series with an explicit
// least-squares fit.
package evolving_test

import (
	"fmt"
	"testing"

	evolving "repro"
)

// fig5Sizes is the default |Ẽ| sweep: the paper's shape (1e8..5e8 on a
// 1 TB Xeon) scaled to a CI-sized budget with the same 10-stamp layout.
// The node count shrinks with the edge budget so that every point stays
// supercritical (the paper ran at ~1000 edges per node; a sweep that
// straddles the percolation threshold would measure component size, not
// |Ẽ| scaling).
var fig5Sizes = []int{250_000, 500_000, 1_000_000, 2_000_000}

// BenchmarkFig5ScalingBFS regenerates Figure 5: Algorithm 1 runtime vs
// |Ẽ| at 1e5 nodes and 10 stamps. Per-op time divided by |Ẽ| should be
// roughly constant across sub-benchmarks — that constant is the linear
// coefficient of Theorem 2.
func BenchmarkFig5ScalingBFS(b *testing.B) {
	series := evolving.RandomSeries(10_000, 10, fig5Sizes, true, 2016)
	for i, g := range series {
		g := g
		root := evolving.TemporalNode{Node: int32(g.ActiveNodes(0).NextSet(0)), Stamp: 0}
		b.Run(fmt.Sprintf("edges=%d", fig5Sizes[i]), func(b *testing.B) {
			b.ReportMetric(float64(g.StaticEdgeCount()), "static-edges")
			for n := 0; n < b.N; n++ {
				res, err := evolving.BFS(g, root, evolving.Options{})
				if err != nil {
					b.Fatal(err)
				}
				if res.NumReached() == 0 {
					b.Fatal("BFS reached nothing")
				}
			}
		})
	}
}

// BenchmarkAlg1VsAlg2 reproduces Sec. IV's claim that "the BFS over
// evolving graphs is most efficiently computed in the adjacency list
// representation": Algorithm 1 vs the CSC-blocked and dense Algorithm 2
// on the same mid-sized graph.
func BenchmarkAlg1VsAlg2(b *testing.B) {
	g := evolving.Random(evolving.RandomConfig{
		Nodes: 300, Stamps: 6, Edges: 3_000, Directed: true, Seed: 7,
	})
	root := evolving.TemporalNode{Node: int32(g.ActiveNodes(0).NextSet(0)), Stamp: 0}

	b.Run("Alg1-adjacency-list", func(b *testing.B) {
		for n := 0; n < b.N; n++ {
			if _, err := evolving.BFS(g, root, evolving.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Alg2-CSC-blocked", func(b *testing.B) {
		for n := 0; n < b.N; n++ {
			if _, err := evolving.ABFS(g, root, evolving.CausalAllPairs); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Alg2-dense", func(b *testing.B) {
		for n := 0; n < b.N; n++ {
			if _, err := evolving.DenseABFS(g, root, evolving.CausalAllPairs); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAlgebraicDenseVsCSC isolates Theorem 5 (dense, O(k|V|²)) vs
// Theorem 6 (CSC blocks, O(k(|Ẽ|+|V|))) across graph sizes: the gap must
// widen with |V|.
func BenchmarkAlgebraicDenseVsCSC(b *testing.B) {
	for _, nodes := range []int{100, 200, 400} {
		g := evolving.Random(evolving.RandomConfig{
			Nodes: nodes, Stamps: 5, Edges: 8 * nodes, Directed: true, Seed: 11,
		})
		root := evolving.TemporalNode{Node: int32(g.ActiveNodes(0).NextSet(0)), Stamp: 0}
		b.Run(fmt.Sprintf("CSC/nodes=%d", nodes), func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				if _, err := evolving.ABFS(g, root, evolving.CausalAllPairs); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("dense/nodes=%d", nodes), func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				if _, err := evolving.DenseABFS(g, root, evolving.CausalAllPairs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelBFS is the parallel-BFS ablation: the same search at
// 1, 2, 4 and 8 workers (plus the sequential baseline).
func BenchmarkParallelBFS(b *testing.B) {
	g := evolving.Random(evolving.RandomConfig{
		Nodes: 50_000, Stamps: 10, Edges: 1_000_000, Directed: true, Seed: 3,
	})
	root := evolving.TemporalNode{Node: int32(g.ActiveNodes(0).NextSet(0)), Stamp: 0}
	b.Run("sequential", func(b *testing.B) {
		for n := 0; n < b.N; n++ {
			if _, err := evolving.BFS(g, root, evolving.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				if _, err := evolving.ParallelBFS(g, root, evolving.ParallelOptions{Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCausalModes is the all-pairs vs consecutive causal-edge
// ablation on a stamp-heavy graph where nodes are active many times
// (all-pairs edge sets grow quadratically with activity).
func BenchmarkCausalModes(b *testing.B) {
	g := evolving.Random(evolving.RandomConfig{
		Nodes: 2_000, Stamps: 50, Edges: 200_000, Directed: true, Seed: 13,
	})
	root := evolving.TemporalNode{Node: int32(g.ActiveNodes(0).NextSet(0)), Stamp: 0}
	b.Run("all-pairs", func(b *testing.B) {
		b.ReportMetric(float64(g.CausalEdgeCount(evolving.CausalAllPairs)), "causal-edges")
		for n := 0; n < b.N; n++ {
			if _, err := evolving.BFS(g, root, evolving.Options{Mode: evolving.CausalAllPairs}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("consecutive", func(b *testing.B) {
		b.ReportMetric(float64(g.CausalEdgeCount(evolving.CausalConsecutive)), "causal-edges")
		for n := 0; n < b.N; n++ {
			if _, err := evolving.BFS(g, root, evolving.Options{Mode: evolving.CausalConsecutive}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkIncrementalVsRecompute compares maintaining the BFS while
// streaming edges (incremental repair) against recomputing Algorithm 1
// from scratch at every stamp boundary — the trade-off motivating
// incremental evolving-graph processing (ref. [2]).
func BenchmarkIncrementalVsRecompute(b *testing.B) {
	const (
		nodes  = 2_000
		stamps = 10
		edges  = 40_000
		seed   = 5
	)
	src := evolving.Random(evolving.RandomConfig{
		Nodes: nodes, Stamps: stamps, Edges: edges, Directed: true, Seed: seed,
	})
	rootNode := int32(src.ActiveNodes(0).NextSet(0))
	rootLabel := src.TimeLabel(0)

	b.Run("incremental-maintenance", func(b *testing.B) {
		for n := 0; n < b.N; n++ {
			d := evolving.NewDynamicGraph(true)
			ib := evolving.NewIncrementalBFS(d, rootNode, rootLabel)
			for t := 0; t < src.NumStamps(); t++ {
				src.VisitEdges(int32(t), func(u, v int32, _ float64) bool {
					_ = d.AddEdge(u, v, src.TimeLabel(t))
					return true
				})
			}
			if ib.NumReached() == 0 {
				b.Fatal("incremental BFS reached nothing")
			}
		}
	})
	b.Run("recompute-per-stamp", func(b *testing.B) {
		for n := 0; n < b.N; n++ {
			d := evolving.NewDynamicGraph(true)
			var last int
			for t := 0; t < src.NumStamps(); t++ {
				src.VisitEdges(int32(t), func(u, v int32, _ float64) bool {
					_ = d.AddEdge(u, v, src.TimeLabel(t))
					return true
				})
				g := d.Snapshot()
				res, err := evolving.BFS(g, evolving.TemporalNode{Node: rootNode, Stamp: 0}, evolving.Options{})
				if err != nil {
					b.Fatal(err)
				}
				last = res.NumReached()
			}
			if last == 0 {
				b.Fatal("batch BFS reached nothing")
			}
		}
	})
}

// BenchmarkPathEnumerationFig2 micro-benchmarks the Figure 2 enumeration
// (the two temporal paths of the running example).
func BenchmarkPathEnumerationFig2(b *testing.B) {
	g := evolving.Figure1Graph()
	from := evolving.TemporalNode{Node: 0, Stamp: 0}
	to := evolving.TemporalNode{Node: 2, Stamp: 2}
	for n := 0; n < b.N; n++ {
		paths, err := evolving.EnumeratePaths(g, from, to, evolving.CausalAllPairs, 0)
		if err != nil || len(paths) != 2 {
			b.Fatalf("paths = %v, err = %v", paths, err)
		}
	}
}

// BenchmarkUnfold measures the Theorem 1 static-graph construction,
// the preprocessing step shared by the equivalence tests and
// betweenness.
func BenchmarkUnfold(b *testing.B) {
	g := evolving.Random(evolving.RandomConfig{
		Nodes: 10_000, Stamps: 10, Edges: 100_000, Directed: true, Seed: 17,
	})
	for n := 0; n < b.N; n++ {
		u := g.Unfold(evolving.CausalAllPairs)
		if u.Graph.NumNodes() == 0 {
			b.Fatal("empty unfolding")
		}
	}
}

// BenchmarkCitationMining measures the Sec. V influence queries on the
// synthetic citation network.
func BenchmarkCitationMining(b *testing.B) {
	g, _ := evolving.SyntheticCitation(evolving.DefaultCitationConfig())
	an, err := evolving.NewCitationAnalyzer(g, evolving.CausalAllPairs)
	if err != nil {
		b.Fatal(err)
	}
	author := int32(g.ActiveNodes(0).NextSet(0))
	stamp := g.ActiveStamps(author)[0]
	b.Run("influence", func(b *testing.B) {
		for n := 0; n < b.N; n++ {
			if _, err := an.Influence(author, stamp); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("community", func(b *testing.B) {
		for n := 0; n < b.N; n++ {
			if _, err := an.Community(author, stamp); err != nil {
				b.Fatal(err)
			}
		}
	})
}
