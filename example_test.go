package evolving_test

import (
	"fmt"
	"log"
	"os"

	evolving "repro"
)

// The paper's running example (Fig. 1): build the graph, run Algorithm 1,
// read off the reached dictionary.
func Example() {
	b := evolving.NewBuilder(true)
	b.AddEdge(0, 1, 1) // the paper's 1→2 at t1
	b.AddEdge(0, 2, 2) // 1→3 at t2
	b.AddEdge(1, 2, 3) // 2→3 at t3
	g := b.Build()

	root := evolving.TemporalNode{Node: 0, Stamp: 0}
	res, err := evolving.BFS(g, root, evolving.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("reached:", res.NumReached())
	fmt.Println("dist to (3,t3):", res.Dist(evolving.TemporalNode{Node: 2, Stamp: 2}))
	// Output:
	// reached: 6
	// dist to (3,t3): 3
}

// Enumerating the two temporal paths of the paper's Fig. 2.
func ExampleEnumeratePaths() {
	g := evolving.Figure1Graph()
	paths, err := evolving.EnumeratePaths(g,
		evolving.TemporalNode{Node: 0, Stamp: 0},
		evolving.TemporalNode{Node: 2, Stamp: 2},
		evolving.CausalAllPairs, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(paths), "temporal paths")
	// Output:
	// 2 temporal paths
}

// The Eq. 2 miscount: the naive adjacency-product sum reports one path
// where two exist.
func ExampleNaivePathSum() {
	g := evolving.Figure1Graph()
	s := evolving.NaivePathSum(g, 2)
	walks, _ := evolving.CountWalks(g,
		evolving.TemporalNode{Node: 0, Stamp: 0},
		evolving.TemporalNode{Node: 2, Stamp: 2},
		evolving.CausalAllPairs, 3)
	fmt.Printf("naive: %g, correct: %d\n", s.At(0, 2), walks)
	// Output:
	// naive: 1, correct: 2
}

// Algorithm 2 (algebraic BFS) agrees with Algorithm 1 (Theorem 4).
func ExampleABFS() {
	g := evolving.Figure1Graph()
	reached, err := evolving.ABFS(g,
		evolving.TemporalNode{Node: 0, Stamp: 0}, evolving.CausalAllPairs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(reached[evolving.TemporalNode{Node: 2, Stamp: 2}])
	// Output:
	// 3
}

// Labelled graphs intern arbitrary comparable keys — here author names
// in a tiny citation network.
func ExampleNewLabeledGraph() {
	net := evolving.NewLabeledGraph[string](true)
	net.AddEdge("zhang", "chen", 2015) // zhang cites chen in 2015
	net.AddEdge("higham", "zhang", 2016)
	g := net.Freeze()

	chen, _ := net.IDOf("chen")
	// Influence flows against citation edges, forward in time.
	res, err := evolving.BFS(g,
		evolving.TemporalNode{Node: chen, Stamp: 0},
		evolving.Options{ReverseEdges: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("temporal nodes influenced:", res.NumReached())
	// Output:
	// temporal nodes influenced: 4
}

// Streaming edges while maintaining BFS distances incrementally.
func ExampleNewIncrementalBFS() {
	d := evolving.NewDynamicGraph(true)
	ib := evolving.NewIncrementalBFS(d, 0, 1)
	_ = d.AddEdge(0, 1, 1)
	_ = d.AddEdge(1, 2, 2)
	fmt.Println(ib.Dist(2, 2))
	// Output:
	// 3
}

// Exporting the Fig. 1 graph for Graphviz.
func ExampleWriteDOT() {
	g := evolving.Figure1Graph()
	err := evolving.WriteDOT(os.Stdout, g.Slice(1, 1), evolving.DOTOptions{Name: "t1"})
	if err != nil {
		log.Fatal(err)
	}
	// Output:
	// digraph "t1" {
	// 	rankdir=LR;
	// 	node [shape=circle];
	// 	subgraph "cluster_t0" {
	// 		label="t=1";
	// 		n0_t0 [label="0", style=filled, fillcolor=palegreen];
	// 		n1_t0 [label="1", style=filled, fillcolor=palegreen];
	// 		n0_t0 -> n1_t0;
	// 	}
	// }
}
