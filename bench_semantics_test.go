// Benchmarks for the extension layer: temporal-path criteria, the
// dynamic adjacency store, reachability sketches, and greedy influence
// maximization (DESIGN.md §7).
package evolving_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	evolving "repro"
)

// BenchmarkPathCriteria compares the cost of the four optimality
// criteria on one workload. Shortest/foremost/latest-departure are each
// a single BFS; fastest pays one pruned scan per departure stamp of the
// source.
func BenchmarkPathCriteria(b *testing.B) {
	g := evolving.Random(evolving.RandomConfig{
		Nodes: 5_000, Stamps: 10, Edges: 50_000, Directed: true, Seed: 31,
	})
	src := int32(g.ActiveNodes(0).NextSet(0))
	root := evolving.TemporalNode{Node: src, Stamp: g.ActiveStamps(src)[0]}
	dst := int32(g.NumNodes() - 1)
	for len(g.ActiveStamps(dst)) == 0 {
		dst--
	}

	b.Run("shortest", func(b *testing.B) {
		for n := 0; n < b.N; n++ {
			if _, err := evolving.BFS(g, root, evolving.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("foremost", func(b *testing.B) {
		for n := 0; n < b.N; n++ {
			if _, err := evolving.Foremost(g, root, evolving.CausalAllPairs); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("latest-departure", func(b *testing.B) {
		target := evolving.TemporalNode{Node: dst, Stamp: g.ActiveStamps(dst)[len(g.ActiveStamps(dst))-1]}
		for n := 0; n < b.N; n++ {
			if _, err := evolving.LatestDeparture(g, target, evolving.CausalAllPairs); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fastest", func(b *testing.B) {
		for n := 0; n < b.N; n++ {
			if _, err := evolving.Fastest(g, src, dst, evolving.CausalAllPairs); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDynamicStoreApply measures batched update throughput of the
// copy-on-write store at several batch sizes: bigger batches amortise
// version creation and per-block rebuilds.
func BenchmarkDynamicStoreApply(b *testing.B) {
	const nodes, stamps = 10_000, 10
	times := make([]int64, stamps)
	for i := range times {
		times[i] = int64(i + 1)
	}
	for _, batchSize := range []int{1, 64, 1024} {
		b.Run(fmt.Sprintf("batch=%d", batchSize), func(b *testing.B) {
			store, err := evolving.NewDynamicStore(nodes, times, true)
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(7))
			batch := make([]evolving.Update, batchSize)
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				for i := range batch {
					u := int32(rng.Intn(nodes))
					v := int32(rng.Intn(nodes))
					if u == v {
						v = (v + 1) % nodes
					}
					batch[i] = evolving.Update{U: u, V: v, T: int32(rng.Intn(stamps)), Op: evolving.Insert}
				}
				if _, err := store.Apply(batch); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(batchSize)*float64(b.N)/b.Elapsed().Seconds(), "updates/s")
		})
	}
}

// BenchmarkDynamicSnapshotFreeze measures the read path: taking a
// snapshot is a pointer load; freezing materialises an IntEvolvingGraph.
func BenchmarkDynamicSnapshotFreeze(b *testing.B) {
	const nodes, stamps = 5_000, 8
	times := make([]int64, stamps)
	for i := range times {
		times[i] = int64(i + 1)
	}
	store, err := evolving.NewDynamicStore(nodes, times, true)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	var batch []evolving.Update
	for len(batch) < 40_000 {
		u := int32(rng.Intn(nodes))
		v := int32(rng.Intn(nodes))
		if u == v {
			continue
		}
		batch = append(batch, evolving.Update{U: u, V: v, T: int32(rng.Intn(stamps)), Op: evolving.Insert})
	}
	if _, err := store.Apply(batch); err != nil {
		b.Fatal(err)
	}
	b.Run("snapshot", func(b *testing.B) {
		for n := 0; n < b.N; n++ {
			if store.Snapshot().Seq() != 1 {
				b.Fatal("unexpected version")
			}
		}
	})
	b.Run("freeze", func(b *testing.B) {
		view := store.Snapshot()
		for n := 0; n < b.N; n++ {
			if g := view.Freeze(); g.NumNodes() == 0 {
				b.Fatal("empty freeze")
			}
		}
	})
}

// BenchmarkSketchVsExactInfluence pits the sketched all-sources
// influence estimate against the exact per-source BFS sweep it
// replaces. The sketch build is one condensation pass; the exact sweep
// is |V| searches.
func BenchmarkSketchVsExactInfluence(b *testing.B) {
	for _, nodes := range []int{500, 2_000} {
		g := evolving.GNP(nodes, 8, 4.0/float64(nodes), true, 13)
		b.Run(fmt.Sprintf("sketch-build/n=%d", nodes), func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				if _, err := evolving.BuildReachSketches(g, evolving.CausalConsecutive, 64, 7); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("exact-sweep/n=%d", nodes), func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				for v := int32(0); v < int32(g.NumNodes()); v++ {
					stamps := g.ActiveStamps(v)
					if len(stamps) == 0 {
						continue
					}
					root := evolving.TemporalNode{Node: v, Stamp: stamps[0]}
					if _, err := evolving.BFS(g, root, evolving.Options{Mode: evolving.CausalConsecutive}); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkGreedyInfluence measures CELF seed selection on a synthetic
// citation network (Sec. V workload).
func BenchmarkGreedyInfluence(b *testing.B) {
	cfg := evolving.DefaultCitationConfig()
	cfg.Authors = 400
	cfg.Stamps = 10
	cfg.PubProb = 0.2
	g, _ := evolving.SyntheticCitation(cfg)
	for _, k := range []int{1, 5, 20} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				if _, err := evolving.GreedyInfluence(g, k, evolving.InfluenceOptions{ReverseEdges: true}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMotifCensus measures the 2-edge degree-profile counter and
// the wedge-probing triangle counter at growing window widths: the
// 2-edge census scales with |Ẽ|·δ, the triangles with wedges·δ.
func BenchmarkMotifCensus(b *testing.B) {
	g := evolving.Random(evolving.RandomConfig{
		Nodes: 2_000, Stamps: 12, Edges: 30_000, Directed: true, Seed: 77,
	})
	for _, delta := range []int{1, 4, 11} {
		b.Run(fmt.Sprintf("2edge/delta=%d", delta), func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				if _, err := evolving.CountMotifs2(g, delta); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("triangle/delta=%d", delta), func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				if _, err := evolving.CountTriangleMotifs(g, delta); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWindowRoll measures sliding-window materialisation plus the
// per-position BFS across the whole time axis.
func BenchmarkWindowRoll(b *testing.B) {
	g := evolving.Random(evolving.RandomConfig{
		Nodes: 2_000, Stamps: 16, Edges: 30_000, Directed: true, Seed: 55,
	})
	root := int32(g.ActiveNodes(0).NextSet(0))
	for _, width := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("width=%d", width), func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				if _, err := evolving.RollWindows(g, width, root); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkJournalReplay measures write-ahead logging overhead and
// recovery speed.
func BenchmarkJournalReplay(b *testing.B) {
	const nodes, stamps, batches = 5_000, 8, 200
	times := make([]int64, stamps)
	for i := range times {
		times[i] = int64(i + 1)
	}
	rng := rand.New(rand.NewSource(3))
	var log bytes.Buffer
	logged, err := evolving.NewLoggedStore(&log, nodes, times, true)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < batches; i++ {
		batch := make([]evolving.Update, 64)
		for j := range batch {
			u := int32(rng.Intn(nodes))
			v := int32(rng.Intn(nodes))
			if u == v {
				v = (v + 1) % nodes
			}
			batch[j] = evolving.Update{U: u, V: v, T: int32(rng.Intn(stamps)), Op: evolving.Insert}
		}
		if _, err := logged.Apply(batch); err != nil {
			b.Fatal(err)
		}
	}
	blob := log.Bytes()
	b.Run("replay", func(b *testing.B) {
		b.SetBytes(int64(len(blob)))
		for n := 0; n < b.N; n++ {
			if _, got, err := evolving.ReplayJournal(bytes.NewReader(blob)); err != nil || got != batches {
				b.Fatalf("replay: %d batches, %v", got, err)
			}
		}
	})
}

// BenchmarkPointToPoint compares the full-BFS ShortestPath against the
// bidirectional meet-in-the-middle search for point-to-point queries.
func BenchmarkPointToPoint(b *testing.B) {
	g := evolving.Random(evolving.RandomConfig{
		Nodes: 20_000, Stamps: 10, Edges: 200_000, Directed: true, Seed: 41,
	})
	from := evolving.TemporalNode{Node: int32(g.ActiveNodes(0).NextSet(0)), Stamp: 0}
	// A mid-distance target: walk a few BFS levels out.
	res, err := evolving.BFS(g, from, evolving.Options{})
	if err != nil {
		b.Fatal(err)
	}
	var to evolving.TemporalNode
	found := false
	for v := int32(0); v < int32(g.NumNodes()) && !found; v++ {
		for _, s := range g.ActiveStamps(v) {
			tn := evolving.TemporalNode{Node: v, Stamp: s}
			if res.Dist(tn) == 4 {
				to, found = tn, true
				break
			}
		}
	}
	if !found {
		b.Fatal("no node at distance 4; adjust workload")
	}
	b.Run("full-bfs", func(b *testing.B) {
		for n := 0; n < b.N; n++ {
			p, err := evolving.ShortestPath(g, from, to, evolving.CausalAllPairs)
			if err != nil || p == nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("bidirectional", func(b *testing.B) {
		for n := 0; n < b.N; n++ {
			p, ok, err := evolving.BidirectionalShortestPath(g, from, to, evolving.CausalAllPairs)
			if err != nil || !ok || p == nil {
				b.Fatal(err)
			}
		}
	})
}
