// Extension benchmarks: the design-choice ablations DESIGN.md calls out
// beyond the paper's own figures.
package evolving_test

import (
	"fmt"
	"testing"

	evolving "repro"
)

// BenchmarkAlg1VsAlg2Sparse extends the Sec. IV comparison with the
// future-work sparse-frontier algebraic BFS: it should track Algorithm 1
// within a small constant factor while the gaxpy Algorithm 2 falls
// behind as the graph grows.
func BenchmarkAlg1VsAlg2Sparse(b *testing.B) {
	for _, edges := range []int{5_000, 20_000, 80_000} {
		g := evolving.Random(evolving.RandomConfig{
			Nodes: edges / 10, Stamps: 8, Edges: edges, Directed: true, Seed: 23,
		})
		root := evolving.TemporalNode{Node: int32(g.ActiveNodes(0).NextSet(0)), Stamp: 0}
		b.Run(fmt.Sprintf("Alg1/edges=%d", edges), func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				if _, err := evolving.BFS(g, root, evolving.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("SparseABFS/edges=%d", edges), func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				if _, err := evolving.SparseABFS(g, root, evolving.CausalAllPairs); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("GaxpyABFS/edges=%d", edges), func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				if _, err := evolving.ABFS(g, root, evolving.CausalAllPairs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineCSRVsMaps races the default flat CSR/bitset BFS engine
// against the adjacency-map oracle (DESIGN.md §8) on the Fig. 5 random
// workload. The two return bit-identical results; the gap is pure
// engine overhead and should widen with graph size.
func BenchmarkEngineCSRVsMaps(b *testing.B) {
	for _, edges := range []int{20_000, 80_000, 320_000} {
		g := evolving.Random(evolving.RandomConfig{
			Nodes: edges / 10, Stamps: 8, Edges: edges, Directed: true, Seed: 8189,
		})
		g.CSR() // build the view outside the timed loop
		root := evolving.TemporalNode{Node: int32(g.ActiveNodes(0).NextSet(0)), Stamp: 0}
		b.Run(fmt.Sprintf("CSR/edges=%d", edges), func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				if _, err := evolving.BFS(g, root, evolving.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("Maps/edges=%d", edges), func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				if _, err := evolving.BFS(g, root, evolving.Options{UseAdjacencyMaps: true}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHybridBFS compares the direction-optimizing BFS against the
// plain top-down BFS on a dense, low-diameter graph (bottom-up's home
// turf) and on a sparse graph (where it should not help much).
func BenchmarkHybridBFS(b *testing.B) {
	cases := []struct {
		name  string
		nodes int
		edges int
	}{
		{"dense-low-diameter", 5_000, 500_000},
		{"sparse", 50_000, 200_000},
	}
	for _, tc := range cases {
		g := evolving.Random(evolving.RandomConfig{
			Nodes: tc.nodes, Stamps: 8, Edges: tc.edges, Directed: true, Seed: 29,
		})
		root := evolving.TemporalNode{Node: int32(g.ActiveNodes(0).NextSet(0)), Stamp: 0}
		b.Run("topdown/"+tc.name, func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				if _, err := evolving.BFS(g, root, evolving.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("hybrid/"+tc.name, func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				if _, err := evolving.HybridBFS(g, root, evolving.HybridOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPageRankWarmVsCold measures the ref. [2] trick: warm-starting
// each snapshot's PageRank from the previous one on a slowly changing
// graph.
func BenchmarkPageRankWarmVsCold(b *testing.B) {
	g := evolving.Random(evolving.RandomConfig{
		Nodes: 5_000, Stamps: 10, Edges: 200_000, Directed: true, Seed: 31,
	})
	b.Run("warm", func(b *testing.B) {
		for n := 0; n < b.N; n++ {
			res, err := evolving.EvolvingPageRank(g, evolving.PageRankOptions{})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.TotalIterations()), "iters")
		}
	})
	b.Run("cold", func(b *testing.B) {
		for n := 0; n < b.N; n++ {
			res, err := evolving.EvolvingPageRank(g, evolving.PageRankOptions{ColdStart: true})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.TotalIterations()), "iters")
		}
	})
}

// BenchmarkWeakComponents measures the union-find pass over the
// unfolding.
func BenchmarkWeakComponents(b *testing.B) {
	g := evolving.Random(evolving.RandomConfig{
		Nodes: 20_000, Stamps: 10, Edges: 100_000, Directed: true, Seed: 37,
	})
	for n := 0; n < b.N; n++ {
		comps := evolving.WeakComponents(g, evolving.CausalAllPairs)
		if len(comps) == 0 {
			b.Fatal("no components")
		}
	}
}

// BenchmarkTemporalKatz measures the blocked power-series kernel.
func BenchmarkTemporalKatz(b *testing.B) {
	g := evolving.Random(evolving.RandomConfig{
		Nodes: 5_000, Stamps: 10, Edges: 50_000, Directed: true, Seed: 41,
	})
	for n := 0; n < b.N; n++ {
		if _, err := evolving.TemporalKatz(g, evolving.KatzOptions{Alpha: 0.05}); err != nil {
			b.Fatal(err)
		}
	}
}
