package dynadj

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

// viewsEqual compares two snapshots edge-for-edge.
func viewsEqual(a, b *View, stamps int) bool {
	if a.NumEdges() != b.NumEdges() {
		return false
	}
	for t := int32(0); int(t) < stamps; t++ {
		equal := true
		a.VisitEdges(t, func(u, v int32) bool {
			if !b.HasEdge(u, v, t) {
				equal = false
			}
			return equal
		})
		if !equal {
			return false
		}
	}
	return true
}

func randomBatches(rng *rand.Rand, nodes, stamps, count int) [][]Update {
	out := make([][]Update, count)
	for b := range out {
		var batch []Update
		for len(batch) < 1+rng.Intn(10) {
			u := int32(rng.Intn(nodes))
			v := int32(rng.Intn(nodes))
			if u == v {
				continue
			}
			op := Insert
			if rng.Intn(4) == 0 {
				op = Delete
			}
			batch = append(batch, Update{U: u, V: v, T: int32(rng.Intn(stamps)), Op: op})
		}
		out[b] = batch
	}
	return out
}

// A clean journal replays to exactly the final store state.
func TestJournalRoundTrip(t *testing.T) {
	f := func(seed int64, directed bool) bool {
		rng := rand.New(rand.NewSource(seed))
		nodes := 2 + rng.Intn(10)
		stamps := 1 + rng.Intn(4)
		times := make([]int64, stamps)
		for i := range times {
			times[i] = int64(10 * (i + 1)) // non-trivial labels
		}
		var buf bytes.Buffer
		logged, err := NewLogged(&buf, nodes, times, directed)
		if err != nil {
			t.Log(err)
			return false
		}
		for _, batch := range randomBatches(rng, nodes, stamps, 5) {
			if _, err := logged.Apply(batch); err != nil {
				t.Log(err)
				return false
			}
		}
		replayed, batches, err := Replay(&buf)
		if err != nil {
			t.Logf("seed %d: replay: %v", seed, err)
			return false
		}
		if batches != 5 {
			t.Logf("seed %d: replayed %d batches, want 5", seed, batches)
			return false
		}
		if replayed.NumNodes() != nodes || replayed.NumStamps() != stamps || replayed.Directed() != directed {
			t.Logf("seed %d: geometry mismatch", seed)
			return false
		}
		if !viewsEqual(logged.Store.Snapshot(), replayed.Snapshot(), stamps) {
			t.Logf("seed %d: replayed state differs", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Truncating the journal at any byte boundary recovers a clean prefix of
// batches — never an error other than ErrTruncatedJournal, never a
// partially applied batch.
func TestJournalTruncationRecoversPrefix(t *testing.T) {
	times := []int64{1, 2, 3}
	var buf bytes.Buffer
	logged, err := NewLogged(&buf, 6, times, true)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	batches := randomBatches(rng, 6, 3, 6)
	// Record the store state after each prefix of batches.
	prefixes := make([]*View, 0, len(batches)+1)
	prefixes = append(prefixes, logged.Store.Snapshot())
	offsets := []int{buf.Len()}
	for _, b := range batches {
		if _, err := logged.Apply(b); err != nil {
			t.Fatal(err)
		}
		prefixes = append(prefixes, logged.Store.Snapshot())
		offsets = append(offsets, buf.Len())
	}
	full := buf.Bytes()

	headerLen := offsets[0] // nothing written until first Append
	if headerLen != 0 {
		t.Fatalf("journal wrote %d bytes before any batch", headerLen)
	}
	for cut := 0; cut <= len(full); cut++ {
		r := bytes.NewReader(full[:cut])
		store, n, err := Replay(r)
		if cut < 17+8*len(times) {
			// Not even a full header: hard error, no store.
			if err == nil {
				t.Fatalf("cut %d: replay of headerless journal succeeded", cut)
			}
			continue
		}
		if n >= len(offsets) || store == nil {
			t.Fatalf("cut %d: recovered %d batches", cut, n)
		}
		// The recovered batch count must be the largest prefix whose
		// bytes fit within the cut.
		want := 0
		for i := 1; i < len(offsets); i++ {
			if offsets[i] <= cut {
				want = i
			}
		}
		if n != want {
			t.Fatalf("cut %d: recovered %d batches, want %d", cut, n, want)
		}
		// Clean iff the cut lands exactly on a record boundary: the
		// end of the header (an empty journal) or the end of any
		// complete batch record.
		boundary := cut == 17+8*len(times)
		for i := 1; i < len(offsets); i++ {
			if cut == offsets[i] {
				boundary = true
			}
		}
		if boundary {
			if err != nil {
				t.Fatalf("cut %d: boundary cut returned %v", cut, err)
			}
		} else if !errors.Is(err, ErrTruncatedJournal) {
			t.Fatalf("cut %d: err = %v, want ErrTruncatedJournal", cut, err)
		}
		if !viewsEqual(store.Snapshot(), prefixes[n], len(times)) {
			t.Fatalf("cut %d: recovered state ≠ prefix %d state", cut, n)
		}
	}
}

// Flipping any payload byte must be caught by the CRC.
func TestJournalDetectsCorruption(t *testing.T) {
	times := []int64{1, 2}
	var buf bytes.Buffer
	logged, err := NewLogged(&buf, 4, times, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := logged.Apply([]Update{{U: 0, V: 1, T: 0, Op: Insert}, {U: 1, V: 2, T: 1, Op: Insert}}); err != nil {
		t.Fatal(err)
	}
	clean := buf.Bytes()
	headerLen := 17 + 8*len(times)
	for i := headerLen; i < len(clean); i++ {
		dirty := append([]byte(nil), clean...)
		dirty[i] ^= 0x40
		_, n, err := Replay(bytes.NewReader(dirty))
		if err == nil && n == 1 {
			// A flip in the frame's CRC field itself is also caught —
			// nothing may replay as valid.
			t.Fatalf("byte %d: corruption went undetected", i)
		}
	}
}

func TestReplayRejectsBadMagic(t *testing.T) {
	junk := append([]byte("NOTAJRNL"), make([]byte, 64)...)
	if _, _, err := Replay(bytes.NewReader(junk)); err == nil || errors.Is(err, ErrTruncatedJournal) {
		t.Fatalf("bad magic: err = %v, want hard error", err)
	}
}

func TestLoggedRejectsInvalidWithoutLogging(t *testing.T) {
	var buf bytes.Buffer
	logged, err := NewLogged(&buf, 3, []int64{1}, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := logged.Apply([]Update{{U: 0, V: 0, T: 0, Op: Insert}}); err == nil {
		t.Fatal("self-loop batch accepted")
	}
	if buf.Len() != 0 {
		t.Fatalf("invalid batch was journalled (%d bytes)", buf.Len())
	}
	if _, err := logged.Apply([]Update{{U: 0, V: 1, T: 0, Op: Op(9)}}); err == nil {
		t.Fatal("unknown op accepted")
	}
	if buf.Len() != 0 {
		t.Fatalf("unknown-op batch was journalled (%d bytes)", buf.Len())
	}
}

// An empty batch is legal, journals cleanly, and replays as a no-op.
func TestJournalEmptyBatch(t *testing.T) {
	var buf bytes.Buffer
	logged, err := NewLogged(&buf, 2, []int64{1}, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := logged.Apply(nil); err != nil {
		t.Fatal(err)
	}
	store, n, err := Replay(&buf)
	if err != nil || n != 1 {
		t.Fatalf("Replay = %d batches, %v", n, err)
	}
	if store.Snapshot().NumEdges() != 0 {
		t.Fatal("empty batch created edges")
	}
}
