// Journal: a write-ahead log for the dynamic store. Every applied batch
// is appended as one length-framed, checksummed record; replaying the
// journal reconstructs the store. A torn tail (crash mid-append) is
// detected by frame length or checksum and the replay stops cleanly at
// the last complete batch — the recovery contract of any write-ahead
// log. internal/ingest generalises this framing for the serving
// pipeline's WAL, where the node universe and stamp axis grow: its
// records carry time *labels* instead of this journal's fixed-geometry
// stamp indices, and appends go through a group-commit writer.
package dynadj

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// journalMagic identifies journal files and versions the format.
var journalMagic = [8]byte{'E', 'G', 'D', 'J', '0', '0', '0', '1'}

// ErrTruncatedJournal reports that a replay hit an incomplete or
// corrupt trailing record. The store returned alongside it reflects
// every batch before the damage and is safe to use.
var ErrTruncatedJournal = errors.New("dynadj: journal truncated mid-record")

// maxJournalBatch bounds a single record's update count so a corrupt
// length field cannot trigger a huge allocation during replay.
const maxJournalBatch = 1 << 24

// JournalWriter appends store batches to a log. Not safe for concurrent
// use; serialise through the same discipline as Store.Apply.
type JournalWriter struct {
	w      io.Writer
	headed bool
	store  *Store
}

// NewJournalWriter creates a journal for the given store's geometry.
// The header (node count, stamp labels, orientation) is written on the
// first Append, so an unused journal stays zero bytes.
func NewJournalWriter(w io.Writer, store *Store) *JournalWriter {
	return &JournalWriter{w: w, store: store}
}

func (jw *JournalWriter) writeHeader() error {
	s := jw.store
	buf := make([]byte, 8+4+4+1+8*s.numStamps)
	copy(buf, journalMagic[:])
	binary.LittleEndian.PutUint32(buf[8:], uint32(s.numNodes))
	binary.LittleEndian.PutUint32(buf[12:], uint32(s.numStamps))
	if s.directed {
		buf[16] = 1
	}
	for i, t := range s.times {
		binary.LittleEndian.PutUint64(buf[17+8*i:], uint64(t))
	}
	if _, err := jw.w.Write(buf); err != nil {
		return fmt.Errorf("dynadj: journal header: %w", err)
	}
	return nil
}

// Append logs one batch. Call it with exactly the batches passed to
// Store.Apply, in the same order.
func (jw *JournalWriter) Append(batch []Update) error {
	if !jw.headed {
		if err := jw.writeHeader(); err != nil {
			return err
		}
		jw.headed = true
	}
	// Frame: u32 payload length, u32 CRC of payload, payload. Payload:
	// u32 count, then (u32 u, u32 v, u32 t, u8 op) per update.
	payload := make([]byte, 4+13*len(batch))
	binary.LittleEndian.PutUint32(payload, uint32(len(batch)))
	off := 4
	for _, u := range batch {
		binary.LittleEndian.PutUint32(payload[off:], uint32(u.U))
		binary.LittleEndian.PutUint32(payload[off+4:], uint32(u.V))
		binary.LittleEndian.PutUint32(payload[off+8:], uint32(u.T))
		payload[off+12] = byte(u.Op)
		off += 13
	}
	var frame [8]byte
	binary.LittleEndian.PutUint32(frame[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(payload))
	if _, err := jw.w.Write(frame[:]); err != nil {
		return fmt.Errorf("dynadj: journal frame: %w", err)
	}
	if _, err := jw.w.Write(payload); err != nil {
		return fmt.Errorf("dynadj: journal payload: %w", err)
	}
	return nil
}

// Logged wraps a Store and a JournalWriter so every applied batch is
// durably logged first (write-ahead), then applied.
type Logged struct {
	Store   *Store
	Journal *JournalWriter
}

// NewLogged pairs a fresh store with a journal writing to w.
func NewLogged(w io.Writer, numNodes int, times []int64, directed bool) (*Logged, error) {
	s, err := NewStore(numNodes, times, directed)
	if err != nil {
		return nil, err
	}
	return &Logged{Store: s, Journal: NewJournalWriter(w, s)}, nil
}

// Apply logs the batch, then applies it. If logging fails the store is
// left untouched, so the journal never lags the store.
func (l *Logged) Apply(batch []Update) (changed int, err error) {
	// Validate first: a batch the store would reject must not be
	// journalled, or replay would fail where the original succeeded.
	if err := l.Store.validate(batch); err != nil {
		return 0, err
	}
	if err := l.Journal.Append(batch); err != nil {
		return 0, err
	}
	return l.Store.Apply(batch)
}

// Replay reconstructs a store from a journal. On a clean journal the
// error is nil; a torn or corrupt tail yields the recovered store, the
// count of complete batches, and ErrTruncatedJournal. Any other format
// violation (bad magic, impossible geometry) returns a hard error.
func Replay(r io.Reader) (store *Store, batches int, err error) {
	var head [17]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return nil, 0, fmt.Errorf("dynadj: journal header: %w", err)
	}
	if [8]byte(head[:8]) != journalMagic {
		return nil, 0, fmt.Errorf("dynadj: not a journal (magic %q)", head[:8])
	}
	numNodes := int(binary.LittleEndian.Uint32(head[8:]))
	numStamps := int(binary.LittleEndian.Uint32(head[12:]))
	directed := head[16] == 1
	if numStamps <= 0 || numStamps > 1<<20 {
		return nil, 0, fmt.Errorf("dynadj: implausible stamp count %d", numStamps)
	}
	timesBuf := make([]byte, 8*numStamps)
	if _, err := io.ReadFull(r, timesBuf); err != nil {
		return nil, 0, fmt.Errorf("dynadj: journal time labels: %w", err)
	}
	times := make([]int64, numStamps)
	for i := range times {
		times[i] = int64(binary.LittleEndian.Uint64(timesBuf[8*i:]))
	}
	store, err = NewStore(numNodes, times, directed)
	if err != nil {
		return nil, 0, err
	}

	for {
		var frame [8]byte
		if _, err := io.ReadFull(r, frame[:]); err != nil {
			if err == io.EOF {
				return store, batches, nil // clean end
			}
			return store, batches, ErrTruncatedJournal
		}
		length := binary.LittleEndian.Uint32(frame[:4])
		sum := binary.LittleEndian.Uint32(frame[4:])
		if length < 4 || length > 4+13*maxJournalBatch {
			return store, batches, ErrTruncatedJournal
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(r, payload); err != nil {
			return store, batches, ErrTruncatedJournal
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return store, batches, ErrTruncatedJournal
		}
		count := int(binary.LittleEndian.Uint32(payload))
		if uint32(4+13*count) != length {
			return store, batches, ErrTruncatedJournal
		}
		batch := make([]Update, count)
		off := 4
		for i := range batch {
			batch[i] = Update{
				U:  int32(binary.LittleEndian.Uint32(payload[off:])),
				V:  int32(binary.LittleEndian.Uint32(payload[off+4:])),
				T:  int32(binary.LittleEndian.Uint32(payload[off+8:])),
				Op: Op(payload[off+12]),
			}
			off += 13
		}
		if _, err := store.Apply(batch); err != nil {
			// The writer validates before logging, so an invalid
			// logged batch means the record bytes are damaged.
			return store, batches, ErrTruncatedJournal
		}
		batches++
	}
}
