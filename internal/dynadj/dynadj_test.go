package dynadj

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/egraph"
)

func mustStore(t *testing.T, n int, times []int64, directed bool) *Store {
	t.Helper()
	s, err := NewStore(n, times, directed)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewStoreValidation(t *testing.T) {
	if _, err := NewStore(0, []int64{1}, true); err == nil {
		t.Error("NewStore(0 nodes) succeeded")
	}
	if _, err := NewStore(3, nil, true); err == nil {
		t.Error("NewStore(no stamps) succeeded")
	}
	if _, err := NewStore(3, []int64{1, 1}, true); err == nil {
		t.Error("NewStore(non-increasing labels) succeeded")
	}
	if _, err := NewStore(3, []int64{2, 1}, true); err == nil {
		t.Error("NewStore(decreasing labels) succeeded")
	}
}

func TestApplyValidation(t *testing.T) {
	s := mustStore(t, 3, []int64{1, 2}, true)
	cases := []Update{
		{U: -1, V: 0, T: 0, Op: Insert},
		{U: 0, V: 3, T: 0, Op: Insert},
		{U: 0, V: 1, T: 2, Op: Insert},
		{U: 1, V: 1, T: 0, Op: Insert}, // self-loop
	}
	for _, u := range cases {
		if _, err := s.Apply([]Update{u}); err == nil {
			t.Errorf("Apply(%+v) succeeded, want error", u)
		}
	}
	// A bad update anywhere in the batch must reject the whole batch.
	if _, err := s.Apply([]Update{{U: 0, V: 1, T: 0}, {U: 1, V: 1, T: 0}}); err == nil {
		t.Error("batch with self-loop succeeded")
	}
	if got := s.Snapshot().NumEdges(); got != 0 {
		t.Errorf("rejected batch mutated the store: %d edges", got)
	}
}

func TestInsertDeleteBasics(t *testing.T) {
	s := mustStore(t, 3, []int64{1, 2, 3}, true)
	changed, err := s.Apply([]Update{
		{U: 0, V: 1, T: 0, Op: Insert},
		{U: 0, V: 2, T: 1, Op: Insert},
		{U: 1, V: 2, T: 2, Op: Insert},
	})
	if err != nil || changed != 3 {
		t.Fatalf("Apply = %d,%v, want 3,nil", changed, err)
	}
	v := s.Snapshot()
	if !v.HasEdge(0, 1, 0) || !v.HasEdge(0, 2, 1) || !v.HasEdge(1, 2, 2) {
		t.Fatal("inserted edges missing")
	}
	if v.HasEdge(1, 0, 0) {
		t.Fatal("directed store reported reverse edge")
	}
	if v.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d, want 3", v.NumEdges())
	}

	// Duplicate insert is a no-op; delete of a missing edge too.
	changed, err = s.Apply([]Update{
		{U: 0, V: 1, T: 0, Op: Insert},
		{U: 2, V: 0, T: 0, Op: Delete},
	})
	if err != nil || changed != 0 {
		t.Fatalf("no-op batch: changed = %d,%v, want 0,nil", changed, err)
	}

	changed, err = s.Apply([]Update{{U: 0, V: 1, T: 0, Op: Delete}})
	if err != nil || changed != 1 {
		t.Fatalf("delete: changed = %d,%v, want 1,nil", changed, err)
	}
	v = s.Snapshot()
	if v.HasEdge(0, 1, 0) || v.NumEdges() != 2 {
		t.Fatalf("delete failed: HasEdge=%v NumEdges=%d", v.HasEdge(0, 1, 0), v.NumEdges())
	}
}

func TestInsertThenDeleteWithinBatch(t *testing.T) {
	s := mustStore(t, 2, []int64{1}, true)
	changed, err := s.Apply([]Update{
		{U: 0, V: 1, T: 0, Op: Insert},
		{U: 0, V: 1, T: 0, Op: Delete},
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Snapshot().HasEdge(0, 1, 0) {
		t.Fatal("insert-then-delete left the edge present")
	}
	if changed != 0 {
		t.Fatalf("changed = %d, want 0 (edge was absent before and after)", changed)
	}
	// And the reverse order resurrects it.
	if _, err := s.Apply([]Update{
		{U: 0, V: 1, T: 0, Op: Delete},
		{U: 0, V: 1, T: 0, Op: Insert},
	}); err != nil {
		t.Fatal(err)
	}
	if !s.Snapshot().HasEdge(0, 1, 0) {
		t.Fatal("delete-then-insert left the edge absent")
	}
}

func TestUndirectedSymmetry(t *testing.T) {
	s := mustStore(t, 3, []int64{1}, false)
	if _, err := s.Apply([]Update{{U: 2, V: 0, T: 0, Op: Insert}}); err != nil {
		t.Fatal(err)
	}
	v := s.Snapshot()
	if !v.HasEdge(0, 2, 0) || !v.HasEdge(2, 0, 0) {
		t.Fatal("undirected edge not visible from both endpoints")
	}
	if v.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1 (logical count)", v.NumEdges())
	}
	count := 0
	v.VisitEdges(0, func(u, w int32) bool { count++; return true })
	if count != 1 {
		t.Fatalf("VisitEdges visited %d edges, want 1", count)
	}
	if _, err := s.Apply([]Update{{U: 0, V: 2, T: 0, Op: Delete}}); err != nil {
		t.Fatal(err)
	}
	v = s.Snapshot()
	if v.HasEdge(2, 0, 0) || v.NumEdges() != 0 {
		t.Fatal("undirected delete did not remove both directions")
	}
}

func TestSnapshotIsolation(t *testing.T) {
	s := mustStore(t, 3, []int64{1, 2}, true)
	if _, err := s.Apply([]Update{{U: 0, V: 1, T: 0, Op: Insert}}); err != nil {
		t.Fatal(err)
	}
	old := s.Snapshot()
	if _, err := s.Apply([]Update{
		{U: 0, V: 1, T: 0, Op: Delete},
		{U: 1, V: 2, T: 1, Op: Insert},
	}); err != nil {
		t.Fatal(err)
	}
	// The old view still sees the pre-batch world.
	if !old.HasEdge(0, 1, 0) || old.HasEdge(1, 2, 1) || old.NumEdges() != 1 {
		t.Fatal("snapshot changed under a later batch")
	}
	cur := s.Snapshot()
	if cur.HasEdge(0, 1, 0) || !cur.HasEdge(1, 2, 1) {
		t.Fatal("current snapshot missing the batch")
	}
	if old.Seq()+1 != cur.Seq() {
		t.Fatalf("Seq: old %d, cur %d, want +1", old.Seq(), cur.Seq())
	}
}

func TestOutNeighborsSorted(t *testing.T) {
	s := mustStore(t, 6, []int64{1}, true)
	if _, err := s.Apply([]Update{
		{U: 0, V: 4, T: 0, Op: Insert},
		{U: 0, V: 1, T: 0, Op: Insert},
		{U: 0, V: 3, T: 0, Op: Insert},
	}); err != nil {
		t.Fatal(err)
	}
	nbrs := s.Snapshot().OutNeighbors(0, 0)
	want := []int32{1, 3, 4}
	if len(nbrs) != len(want) {
		t.Fatalf("OutNeighbors = %v, want %v", nbrs, want)
	}
	for i := range want {
		if nbrs[i] != want[i] {
			t.Fatalf("OutNeighbors = %v, want %v", nbrs, want)
		}
	}
	if d := s.Snapshot().OutDegree(0, 0); d != 3 {
		t.Fatalf("OutDegree = %d, want 3", d)
	}
	if d := s.Snapshot().OutDegree(5, 0); d != 0 {
		t.Fatalf("OutDegree(isolated) = %d, want 0", d)
	}
}

// Freeze must agree with building the same edges through egraph.Builder.
func TestFreezeMatchesBuilder(t *testing.T) {
	f := func(seed int64, directed bool) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		stamps := 1 + rng.Intn(4)
		times := make([]int64, stamps)
		for i := range times {
			times[i] = int64(i + 1)
		}
		s, err := NewStore(n, times, directed)
		if err != nil {
			t.Log(err)
			return false
		}
		type key struct{ u, v, t int32 }
		live := make(map[key]bool)
		norm := func(u, v, t int32) key {
			if !directed && v < u {
				u, v = v, u
			}
			return key{u, v, t}
		}
		// A few batches of random inserts/deletes.
		for b := 0; b < 4; b++ {
			var batch []Update
			for len(batch) < 6 {
				u := int32(rng.Intn(n))
				v := int32(rng.Intn(n))
				if u == v {
					continue
				}
				ts := int32(rng.Intn(stamps))
				op := Insert
				if rng.Intn(3) == 0 {
					op = Delete
				}
				batch = append(batch, Update{U: u, V: v, T: ts, Op: op})
			}
			if _, err := s.Apply(batch); err != nil {
				t.Log(err)
				return false
			}
			for _, up := range batch {
				if up.Op == Insert {
					live[norm(up.U, up.V, up.T)] = true
				} else {
					delete(live, norm(up.U, up.V, up.T))
				}
			}
		}
		bld := egraph.NewBuilder(directed)
		for k := range live {
			bld.AddEdge(k.u, k.v, times[k.t])
		}
		want := bld.Build()
		got := s.Snapshot().Freeze()
		if got.NumStamps() != want.NumStamps() || got.StaticEdgeCount() != want.StaticEdgeCount() {
			t.Logf("seed %d: stamps %d/%d edges %d/%d", seed,
				got.NumStamps(), want.NumStamps(), got.StaticEdgeCount(), want.StaticEdgeCount())
			return false
		}
		for ts := 0; ts < want.NumStamps(); ts++ {
			if got.TimeLabel(ts) != want.TimeLabel(ts) {
				t.Logf("seed %d: label[%d] %d ≠ %d", seed, ts, got.TimeLabel(ts), want.TimeLabel(ts))
				return false
			}
			equal := true
			want.VisitEdges(int32(ts), func(u, v int32, _ float64) bool {
				if !got.HasEdge(u, v, int32(ts)) {
					equal = false
				}
				return equal
			})
			if !equal {
				t.Logf("seed %d: edge sets differ at stamp %d", seed, ts)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// BFS over a frozen snapshot must be oblivious to later mutations: run a
// search, mutate heavily, run it again from the same frozen view.
func TestFrozenSnapshotStableUnderMutation(t *testing.T) {
	s := mustStore(t, 4, []int64{1, 2, 3}, true)
	if _, err := s.Apply([]Update{
		{U: 0, V: 1, T: 0, Op: Insert},
		{U: 0, V: 2, T: 1, Op: Insert},
		{U: 1, V: 2, T: 2, Op: Insert},
	}); err != nil {
		t.Fatal(err)
	}
	frozen := s.Snapshot().Freeze()
	before, err := core.BFS(frozen, egraph.TemporalNode{Node: 0, Stamp: 0}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Apply([]Update{
		{U: 0, V: 1, T: 0, Op: Delete},
		{U: 0, V: 2, T: 1, Op: Delete},
		{U: 1, V: 2, T: 2, Op: Delete},
		{U: 2, V: 3, T: 0, Op: Insert},
	}); err != nil {
		t.Fatal(err)
	}
	after, err := core.BFS(frozen, egraph.TemporalNode{Node: 0, Stamp: 0}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if before.NumReached() != after.NumReached() {
		t.Fatalf("frozen BFS changed: %d → %d reached", before.NumReached(), after.NumReached())
	}
}

// Single writer, many concurrent readers; run with -race. Readers pin
// snapshots and verify internal consistency (edge count equals a manual
// recount) while the writer churns.
func TestConcurrentReadersWhileWriting(t *testing.T) {
	const (
		nodes   = 16
		stamps  = 4
		batches = 60
		readers = 4
	)
	times := []int64{1, 2, 3, 4}
	s := mustStore(t, nodes, times, true)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := s.Snapshot()
				count := 0
				for ts := int32(0); ts < stamps; ts++ {
					v.VisitEdges(ts, func(u, w int32) bool { count++; return true })
				}
				if count != v.NumEdges() {
					t.Errorf("snapshot %d: recount %d ≠ NumEdges %d", v.Seq(), count, v.NumEdges())
					return
				}
			}
		}(int64(r))
	}

	rng := rand.New(rand.NewSource(7))
	for b := 0; b < batches; b++ {
		var batch []Update
		for len(batch) < 8 {
			u := int32(rng.Intn(nodes))
			v := int32(rng.Intn(nodes))
			if u == v {
				continue
			}
			op := Insert
			if rng.Intn(2) == 0 {
				op = Delete
			}
			batch = append(batch, Update{U: u, V: v, T: int32(rng.Intn(stamps)), Op: op})
		}
		if _, err := s.Apply(batch); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	if seq := s.Snapshot().Seq(); seq != batches {
		t.Fatalf("final Seq = %d, want %d", seq, batches)
	}
}

// Concurrent writers must serialise: total applied batches equals the
// final version number, and the final edge set matches a sequential
// replay oracle is too strong (order nondeterministic), so check only
// structural invariants.
func TestConcurrentWriters(t *testing.T) {
	const writers = 4
	s := mustStore(t, 8, []int64{1, 2}, true)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for b := 0; b < 20; b++ {
				u := int32(rng.Intn(8))
				v := int32(rng.Intn(8))
				if u == v {
					continue
				}
				op := Insert
				if rng.Intn(2) == 0 {
					op = Delete
				}
				if _, err := s.Apply([]Update{{U: u, V: v, T: int32(rng.Intn(2)), Op: op}}); err != nil {
					t.Error(err)
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
	v := s.Snapshot()
	// NumEdges must equal a recount, whatever interleaving happened.
	count := 0
	for ts := int32(0); ts < 2; ts++ {
		v.VisitEdges(ts, func(u, w int32) bool { count++; return true })
	}
	if count != v.NumEdges() {
		t.Fatalf("recount %d ≠ NumEdges %d", count, v.NumEdges())
	}
}

func TestOpString(t *testing.T) {
	if Insert.String() != "insert" || Delete.String() != "delete" {
		t.Fatalf("Op strings: %q, %q", Insert.String(), Delete.String())
	}
}

func TestHasEdgeOutOfRange(t *testing.T) {
	s := mustStore(t, 2, []int64{1}, true)
	v := s.Snapshot()
	if v.HasEdge(-1, 0, 0) || v.HasEdge(0, 2, 0) || v.HasEdge(0, 1, 5) {
		t.Fatal("HasEdge out of range returned true")
	}
}
