// Package dynadj provides a dynamic adjacency store for evolving graphs:
// a mutable edge container that admits concurrent readers while a writer
// applies batches of insertions and deletions, in the spirit of dynamic-
// graph frameworks such as STINGER and Aspen.
//
// The paper treats an evolving graph as an immutable sequence of
// snapshots; internal/stream covers the append-only regime where new
// stamps arrive at the end. This package covers the fully dynamic
// regime — edges may be inserted into or deleted from any stamp — while
// still serving consistent reads:
//
//   - Writers call Apply with a batch of updates. Only the per-(node,
//     stamp) adjacency blocks touched by the batch are re-built
//     (copy-on-write); untouched blocks are shared between versions.
//   - Readers call Snapshot and get an immutable View pinned to the
//     version current at that moment. A View never changes, no matter
//     how many batches land afterwards, and requires no locking to read.
//   - Freeze converts a View into the package's canonical
//     IntEvolvingGraph so every algorithm in the repository (BFS,
//     algebraic BFS, metrics, …) runs on a consistent frozen state.
//
// The store is single-writer/multi-reader: Apply calls are serialised by
// an internal mutex, snapshots are lock-free pointer loads.
package dynadj

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/egraph"
)

// Op distinguishes edge insertions from deletions.
type Op int8

const (
	// Insert adds the edge; inserting an existing edge is a no-op.
	Insert Op = iota
	// Delete removes the edge; deleting a missing edge is a no-op.
	Delete
)

func (o Op) String() string {
	if o == Delete {
		return "delete"
	}
	return "insert"
}

// Update is one edge mutation: (U → V at stamp index T).
type Update struct {
	U, V int32
	T    int32
	Op   Op
}

// Store is the dynamic adjacency container. Construct with NewStore.
type Store struct {
	numNodes  int
	numStamps int
	directed  bool
	times     []int64

	mu      sync.Mutex // serialises writers
	version atomic.Pointer[version]
}

// version is one immutable state of the store. Adjacency blocks are
// shared across versions; a batch clones only the blocks it touches.
type version struct {
	// out[t*numNodes+v] = sorted out-neighbours of v at stamp t; nil
	// means empty. For undirected stores each edge appears in both
	// endpoint blocks.
	out   []*block
	edges int   // logical edge count (undirected edges counted once)
	seq   int64 // monotone version number, 0 for the empty store
}

// block is an immutable sorted adjacency list.
type block struct {
	nbrs []int32
}

func (b *block) contains(v int32) bool {
	if b == nil {
		return false
	}
	i := sort.Search(len(b.nbrs), func(i int) bool { return b.nbrs[i] >= v })
	return i < len(b.nbrs) && b.nbrs[i] == v
}

// NewStore creates an empty dynamic store over a fixed node universe and
// stamp axis. times are the user-visible labels of the stamp indices and
// must be strictly increasing.
func NewStore(numNodes int, times []int64, directed bool) (*Store, error) {
	if numNodes <= 0 {
		return nil, fmt.Errorf("dynadj: numNodes must be positive, got %d", numNodes)
	}
	if len(times) == 0 {
		return nil, fmt.Errorf("dynadj: need at least one stamp")
	}
	for i := 1; i < len(times); i++ {
		if times[i] <= times[i-1] {
			return nil, fmt.Errorf("dynadj: time labels must be strictly increasing (times[%d]=%d, times[%d]=%d)", i-1, times[i-1], i, times[i])
		}
	}
	s := &Store{
		numNodes:  numNodes,
		numStamps: len(times),
		directed:  directed,
		times:     append([]int64(nil), times...),
	}
	s.version.Store(&version{out: make([]*block, numNodes*len(times))})
	return s, nil
}

// NumNodes returns the size of the node universe.
func (s *Store) NumNodes() int { return s.numNodes }

// NumStamps returns the number of stamps on the time axis.
func (s *Store) NumStamps() int { return s.numStamps }

// Directed reports the edge orientation of the store.
func (s *Store) Directed() bool { return s.directed }

// Apply atomically applies a batch of updates and returns the number of
// updates that changed the graph (inserts of missing edges plus deletes
// of present edges). Within a batch, updates are applied in order, so an
// insert followed by a delete of the same edge leaves it absent.
// Self-loops are rejected: they never activate a node (Def. 3), so the
// paper's model has no use for them.
func (s *Store) Apply(batch []Update) (changed int, err error) {
	if err := s.validate(batch); err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	cur := s.version.Load()
	next := &version{
		out:   append([]*block(nil), cur.out...),
		edges: cur.edges,
		seq:   cur.seq + 1,
	}
	// Group mutations per adjacency block so each touched block is
	// rebuilt exactly once regardless of batch size.
	type delta struct {
		add, del map[int32]bool
	}
	deltas := make(map[int]*delta)
	touch := func(slot int) *delta {
		d := deltas[slot]
		if d == nil {
			d = &delta{add: make(map[int32]bool), del: make(map[int32]bool)}
			deltas[slot] = d
		}
		return d
	}
	record := func(from, to, t int32, op Op) {
		d := touch(int(t)*s.numNodes + int(from))
		if op == Insert {
			d.add[to] = true
			delete(d.del, to)
		} else {
			d.del[to] = true
			delete(d.add, to)
		}
	}
	for _, u := range batch {
		record(u.U, u.V, u.T, u.Op)
		if !s.directed {
			record(u.V, u.U, u.T, u.Op)
		}
	}

	added, deleted := 0, 0
	for slot, d := range deltas {
		old := next.out[slot]
		var oldN []int32
		if old != nil {
			oldN = old.nbrs
		}
		merged := make([]int32, 0, len(oldN)+len(d.add))
		for _, v := range oldN {
			if d.del[v] {
				deleted++
				continue
			}
			delete(d.add, v) // already present: insert is a no-op
			merged = append(merged, v)
		}
		for v := range d.add {
			merged = append(merged, v)
			added++
		}
		sort.Slice(merged, func(i, j int) bool { return merged[i] < merged[j] })
		if len(merged) == 0 {
			next.out[slot] = nil
		} else {
			next.out[slot] = &block{nbrs: merged}
		}
	}
	if !s.directed {
		// Each logical change was recorded at both endpoint blocks.
		added /= 2
		deleted /= 2
	}
	next.edges += added - deleted
	changed = added + deleted
	s.version.Store(next)
	return changed, nil
}

// validate rejects out-of-range endpoints/stamps, unknown ops, and
// self-loops (which never activate a node, Def. 3).
func (s *Store) validate(batch []Update) error {
	for i, u := range batch {
		if u.U < 0 || int(u.U) >= s.numNodes || u.V < 0 || int(u.V) >= s.numNodes {
			return fmt.Errorf("dynadj: update %d: node out of range: %+v", i, u)
		}
		if u.T < 0 || int(u.T) >= s.numStamps {
			return fmt.Errorf("dynadj: update %d: stamp out of range: %+v", i, u)
		}
		if u.Op != Insert && u.Op != Delete {
			return fmt.Errorf("dynadj: update %d: unknown op %d", i, u.Op)
		}
		if u.U == u.V {
			return fmt.Errorf("dynadj: update %d: self-loop %d→%d rejected", i, u.U, u.V)
		}
	}
	return nil
}

// Snapshot returns an immutable view of the current state. The view
// remains valid and unchanged for its lifetime; concurrent Apply calls
// produce new versions without disturbing it.
func (s *Store) Snapshot() *View {
	return &View{store: s, v: s.version.Load()}
}

// View is an immutable snapshot of a Store. All methods are safe for
// concurrent use.
type View struct {
	store *Store
	v     *version
}

// Seq returns the monotone version number of the snapshot (0 = empty
// initial state, +1 per applied batch).
func (w *View) Seq() int64 { return w.v.seq }

// NumEdges returns the logical edge count (undirected edges once).
func (w *View) NumEdges() int { return w.v.edges }

// HasEdge reports whether u→v exists at stamp t in this snapshot.
func (w *View) HasEdge(u, v, t int32) bool {
	if u < 0 || int(u) >= w.store.numNodes || v < 0 || int(v) >= w.store.numNodes ||
		t < 0 || int(t) >= w.store.numStamps {
		return false
	}
	return w.v.out[int(t)*w.store.numNodes+int(u)].contains(v)
}

// OutDegree returns the out-degree of v at stamp t.
func (w *View) OutDegree(v, t int32) int {
	b := w.v.out[int(t)*w.store.numNodes+int(v)]
	if b == nil {
		return 0
	}
	return len(b.nbrs)
}

// OutNeighbors returns the sorted out-neighbours of v at stamp t. The
// returned slice is shared with the snapshot and must not be modified.
func (w *View) OutNeighbors(v, t int32) []int32 {
	b := w.v.out[int(t)*w.store.numNodes+int(v)]
	if b == nil {
		return nil
	}
	return b.nbrs
}

// VisitEdges calls fn for every edge at stamp t (each undirected edge is
// visited once, with u < v). Iteration stops early if fn returns false.
func (w *View) VisitEdges(t int32, fn func(u, v int32) bool) {
	for u := int32(0); int(u) < w.store.numNodes; u++ {
		b := w.v.out[int(t)*w.store.numNodes+int(u)]
		if b == nil {
			continue
		}
		for _, v := range b.nbrs {
			if !w.store.directed && v < u {
				continue
			}
			if !fn(u, v) {
				return
			}
		}
	}
}

// Freeze materialises the snapshot as an IntEvolvingGraph so the full
// algorithm suite can run against it. Stamps with no edges carry no
// active nodes and are dropped from the frozen graph's stamp axis, like
// a Builder fed the same edges; user-visible time labels are preserved.
func (w *View) Freeze() *egraph.IntEvolvingGraph {
	b := egraph.NewBuilder(w.store.directed)
	for t := int32(0); int(t) < w.store.numStamps; t++ {
		label := w.store.times[t]
		w.VisitEdges(t, func(u, v int32) bool {
			b.AddEdge(u, v, label)
			return true
		})
	}
	return b.Build()
}
