package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/egraph"
	"repro/internal/gen"
)

func tn(v, s int32) egraph.TemporalNode { return egraph.TemporalNode{Node: v, Stamp: s} }

// The three distance notions disagree on the Fig. 1 graph for the pair
// (1,t1) → node 3:
//
//   - paper distance (edges, causal counted): 3
//   - dynamic-walk distance (causal free): 1
//   - Tang temporal distance (stamps, inclusive): 2  (start at t1, reach 3 at t2)
func TestThreeDistanceNotionsDisagree(t *testing.T) {
	g := egraph.Figure1Graph()
	paper, err := PaperDistance(g, tn(0, 0), tn(2, 2), egraph.CausalAllPairs)
	if err != nil {
		t.Fatal(err)
	}
	if paper != 3 {
		t.Fatalf("paper distance = %d, want 3", paper)
	}
	dw, err := DynamicWalkDistance(g, tn(0, 0), tn(2, 2), egraph.CausalAllPairs)
	if err != nil {
		t.Fatal(err)
	}
	if dw != 1 {
		t.Fatalf("dynamic-walk distance = %d, want 1", dw)
	}
	tang := TangTemporalDistance(g, tn(0, 0), 2)
	if tang != 2 {
		t.Fatalf("Tang temporal distance = %d, want 2", tang)
	}
	if paper == dw || paper == tang {
		t.Fatal("distance notions should disagree on this instance")
	}
}

func TestTangDistanceBasics(t *testing.T) {
	g := egraph.Figure1Graph()
	// Self: inclusive convention counts the starting stamp.
	if d := TangTemporalDistance(g, tn(0, 0), 0); d != 1 {
		t.Fatalf("self distance = %d, want 1", d)
	}
	// One hop within the first stamp: still 1 stamp used.
	if d := TangTemporalDistance(g, tn(0, 0), 1); d != 1 {
		t.Fatalf("same-stamp hop = %d, want 1", d)
	}
	// Unreachable: nothing reaches node 1 from (3,·) forward.
	if d := TangTemporalDistance(g, tn(2, 1), 0); d != Unreachable {
		t.Fatalf("unreachable = %d, want -1", d)
	}
	// Out-of-range inputs.
	if d := TangTemporalDistance(g, tn(9, 0), 0); d != Unreachable {
		t.Fatalf("bad node = %d, want -1", d)
	}
}

// Tang's model allows only one hop per stamp: a two-hop chain within a
// single stamp needs two stamps' worth of edges, or is unreachable if the
// edge never reappears.
func TestTangOneHopPerStamp(t *testing.T) {
	b := egraph.NewBuilder(true)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1) // same stamp
	g := b.Build()
	if d := TangTemporalDistance(g, tn(0, 0), 2); d != Unreachable {
		t.Fatalf("two hops in one stamp = %d, want unreachable", d)
	}
	// With the second edge also present at stamp 2, the journey takes 2.
	b2 := egraph.NewBuilder(true)
	b2.AddEdge(0, 1, 1)
	b2.AddEdge(1, 2, 1)
	b2.AddEdge(1, 2, 2)
	g2 := b2.Build()
	if d := TangTemporalDistance(g2, tn(0, 0), 2); d != 2 {
		t.Fatalf("two-stamp journey = %d, want 2", d)
	}
}

func TestDynamicWalkDistanceUnreachable(t *testing.T) {
	g := egraph.Figure1Graph()
	d, err := DynamicWalkDistance(g, tn(2, 2), tn(0, 0), egraph.CausalAllPairs)
	if err != nil {
		t.Fatal(err)
	}
	if d != Unreachable {
		t.Fatalf("d = %d, want unreachable", d)
	}
	if _, err := DynamicWalkDistance(g, tn(2, 0), tn(0, 0), egraph.CausalAllPairs); err == nil {
		t.Fatal("inactive source should error")
	}
}

func TestDynamicCommunicability(t *testing.T) {
	g := egraph.Figure1Graph()
	q, err := DynamicCommunicability(g, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	// Q ≥ I elementwise on the diagonal; walk 1→2 (via t1) and 1→3
	// (via t2, or t1→t3 chain) have positive weight.
	if q.At(0, 0) < 1 || q.At(0, 1) <= 0 || q.At(0, 2) <= 0 {
		t.Fatalf("communicability entries wrong:\n%v", q)
	}
	// No walk reaches node 1 from node 3 (edges never point back).
	if q.At(2, 0) != 0 {
		t.Fatalf("Q[3][1] = %g, want 0", q.At(2, 0))
	}
	// The chain walk 1→2@t1 then 2→3@t3 contributes at second order:
	// Q[1][3] must exceed the single-edge weight alpha.
	if q.At(0, 2) <= 0.3 {
		t.Fatalf("Q[1][3] = %g, want > alpha (chain walk missing)", q.At(0, 2))
	}
}

func TestDynamicCommunicabilityErrors(t *testing.T) {
	g := egraph.Figure1Graph()
	if _, err := DynamicCommunicability(g, 0); err == nil {
		t.Fatal("alpha = 0 should error")
	}
	// A 2-cycle with alpha = 1 makes I − αA singular.
	b := egraph.NewBuilder(true)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 0, 1)
	if _, err := DynamicCommunicability(b.Build(), 1.0); err == nil {
		t.Fatal("singular resolvent should error")
	}
}

func TestBroadcastReceiveCentrality(t *testing.T) {
	g := egraph.Figure1Graph()
	q, err := DynamicCommunicability(g, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	bc := BroadcastCentrality(q)
	rc := ReceiveCentrality(q)
	// Node 1 broadcasts most (starts both chains); node 3 receives most.
	if !(bc[0] > bc[1] && bc[0] > bc[2]) {
		t.Fatalf("broadcast = %v, want node 1 max", bc)
	}
	if !(rc[2] > rc[0] && rc[2] > rc[1]) {
		t.Fatalf("receive = %v, want node 3 max", rc)
	}
}

func TestTemporalCloseness(t *testing.T) {
	g := egraph.Figure1Graph()
	c, err := TemporalCloseness(g, tn(0, 0), egraph.CausalAllPairs)
	if err != nil {
		t.Fatal(err)
	}
	// Distances from (1,t1): 1,1,2,2,3 → Σ1/d = 1+1+0.5+0.5+1/3.
	want := 1 + 1 + 0.5 + 0.5 + 1.0/3.0
	if math.Abs(c-want) > 1e-12 {
		t.Fatalf("closeness = %g, want %g", c, want)
	}
	// A sink has closeness 0.
	c2, err := TemporalCloseness(g, tn(2, 2), egraph.CausalAllPairs)
	if err != nil {
		t.Fatal(err)
	}
	if c2 != 0 {
		t.Fatalf("sink closeness = %g, want 0", c2)
	}
	if _, err := TemporalCloseness(g, tn(2, 0), egraph.CausalAllPairs); err == nil {
		t.Fatal("inactive root should error")
	}
}

func TestTemporalBetweenness(t *testing.T) {
	// Path 0→1@t1, 1→2@t2: node 1 is the only intermediary.
	b := egraph.NewBuilder(true)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 2)
	g := b.Build()
	bt := TemporalBetweenness(g, egraph.CausalAllPairs)
	if len(bt) != 3 {
		t.Fatalf("scores = %v", bt)
	}
	if bt[1] <= 0 {
		t.Fatalf("intermediary node 1 has betweenness %g, want > 0", bt[1])
	}
	if bt[1] <= bt[0] || bt[1] <= bt[2] {
		t.Fatalf("node 1 should dominate: %v", bt)
	}
}

func TestTemporalBetweennessStar(t *testing.T) {
	// Hub 0 relays between 4 leaves across two stamps.
	b := egraph.NewBuilder(true)
	b.AddEdge(1, 0, 1)
	b.AddEdge(2, 0, 1)
	b.AddEdge(0, 3, 2)
	b.AddEdge(0, 4, 2)
	g := b.Build()
	bt := TemporalBetweenness(g, egraph.CausalAllPairs)
	for v := 1; v <= 4; v++ {
		if bt[0] <= bt[v] {
			t.Fatalf("hub should dominate leaves: %v", bt)
		}
	}
}

func TestGlobalEfficiencyFigure1(t *testing.T) {
	g := egraph.Figure1Graph()
	st := GlobalEfficiency(g, egraph.CausalAllPairs)
	// Reachable ordered pairs among the 6 active temporal nodes:
	// from (1,t1): 5; (2,t1): 2 ((2,t3),(3,t3)); (1,t2): 2; (3,t2): 1;
	// (2,t3): 1; (3,t3): 0  => 11 of 30.
	if st.ReachableFraction != 11.0/30.0 {
		t.Fatalf("ReachableFraction = %g, want %g", st.ReachableFraction, 11.0/30.0)
	}
	if st.Diameter != 3 {
		t.Fatalf("Diameter = %d, want 3", st.Diameter)
	}
	if st.Efficiency <= 0 || st.Efficiency >= 1 {
		t.Fatalf("Efficiency = %g out of range", st.Efficiency)
	}
	if st.MeanDistance <= 1 || st.MeanDistance >= 3 {
		t.Fatalf("MeanDistance = %g implausible", st.MeanDistance)
	}
}

func TestGlobalEfficiencyTrivial(t *testing.T) {
	b := egraph.NewBuilder(true)
	b.AddEdge(0, 1, 1)
	g := b.Build()
	st := GlobalEfficiency(g, egraph.CausalAllPairs)
	// Two active temporal nodes, one reachable pair of distance 1.
	if st.ReachableFraction != 0.5 || st.Efficiency != 0.5 || st.MeanDistance != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// Differential engine equivalence: the CSR-backed closeness and
// efficiency sweeps must return float-bit-identical results to the
// adjacency-map oracle (the underlying dist arrays are identical and
// both paths accumulate in the same order), across causal modes,
// worker counts and generator workloads.
func assertEnginesAgree(t *testing.T, g *egraph.IntEvolvingGraph, label string) {
	t.Helper()
	for _, mode := range []egraph.CausalMode{egraph.CausalAllPairs, egraph.CausalConsecutive} {
		csr := Options{Mode: mode, Workers: 3}
		oracle := Options{Mode: mode, UseAdjacencyMaps: true, Workers: 1}
		if got, want := GlobalEfficiencyOpts(g, csr), GlobalEfficiencyOpts(g, oracle); got != want {
			t.Fatalf("%s mode %v: GlobalEfficiency diverges:\ncsr  %+v\nmaps %+v", label, mode, got, want)
		}
		for i, root := range g.ActiveTemporalNodes() {
			if i%3 != 0 {
				continue // sample roots to keep the sweep cheap
			}
			got, err1 := TemporalClosenessOpts(g, root, csr)
			want, err2 := TemporalClosenessOpts(g, root, oracle)
			if err1 != nil || err2 != nil {
				t.Fatalf("%s mode %v: closeness errors: %v / %v", label, mode, err1, err2)
			}
			if got != want {
				t.Fatalf("%s mode %v root %v: closeness diverges: csr %v, maps %v",
					label, mode, root, got, want)
			}
		}
	}
}

func TestEngineEquivalenceRandom(t *testing.T) {
	f := func(seed int64, directed bool) bool {
		rng := rand.New(rand.NewSource(seed))
		b := egraph.NewBuilder(directed)
		n := 2 + rng.Intn(8)
		stamps := 1 + rng.Intn(4)
		for e := 0; e < rng.Intn(3*n); e++ {
			b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)), int64(1+rng.Intn(stamps)))
		}
		b.AddEdge(0, 1, 1)
		assertEnginesAgree(t, b.Build(), "random")
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestEngineEquivalenceGeneratorWorkloads(t *testing.T) {
	cfg := gen.DefaultCitationConfig()
	cfg.Authors = 50
	cfg.Stamps = 6
	cite, _ := gen.Citation(cfg)
	assertEnginesAgree(t, cite, "citation")
	assertEnginesAgree(t, gen.GNP(30, 4, 0.05, true, 5), "gnp")
}
