// Package metrics implements the related-work measures the paper
// explicitly contrasts its BFS distance against, plus centrality indices
// built on top of the core BFS:
//
//   - Tang-style temporal distance (refs [4],[8]): the number of time
//     steps, inclusive, needed to reach a node when one static hop may be
//     taken per stamp. The paper's Def. 6 distance counts edges instead.
//   - Grindrod–Higham dynamic-walk distance (refs [9],[10]): static hops
//     cost 1, waiting (causal edges) is free — "causal edges … are only
//     implicitly included in dynamic walks and are not counted toward
//     the length".
//   - Grindrod–Higham dynamic communicability (the matrix iteration
//     Q = Π (I − αA[t])⁻¹), with broadcast/receive centralities.
//   - Temporal closeness and temporal betweenness over the evolving
//     graph, computed with the paper's BFS.
//
// Having these executable side by side demonstrates that the three
// distance notions genuinely disagree (see the package tests).
//
// The BFS-backed centralities (TemporalCloseness, GlobalEfficiency) run
// on the graph's cached flat CSR view by default (DESIGN.md §8-9), with
// GlobalEfficiency fanning its one-BFS-per-root sweep across a worker
// pool; Options.UseAdjacencyMaps selects the adjacency-map oracle
// instead. Per-root contributions are always combined in root order, so
// results are bit-identical across engines and worker counts.
package metrics

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/ds"
	"repro/internal/egraph"
	"repro/internal/matrix"
)

// Options configures the BFS-backed centrality computations. The zero
// value is the default CSR engine under the paper's all-pairs causal
// mode.
type Options struct {
	// Mode selects the causal edge set.
	Mode egraph.CausalMode
	// UseAdjacencyMaps routes the underlying searches through the
	// adjacency-map oracle instead of the flat CSR engine. Kept for
	// differential testing; results are bit-identical.
	UseAdjacencyMaps bool
	// Workers bounds the fan-out of GlobalEfficiency's per-root sweep
	// on the CSR engine; 0 means GOMAXPROCS. The oracle engine is
	// always sequential (matching components.Options), so engine
	// comparisons race the parallel default against the pre-CSR
	// implementation.
	Workers int
}

// Unreachable is returned as a distance when no journey exists.
const Unreachable = -1

// TangTemporalDistance returns the Tang-style temporal distance from
// temporal node (v, t) to node w: the minimum number of stamps, counted
// inclusively from stamp t, needed to reach w when within each stamp a
// frontier may advance by at most one static hop (and waiting in place is
// free). Reaching w at stamp t itself (w == v) costs 1, matching the
// inclusive convention of Tang et al. Returns Unreachable if no journey
// exists.
func TangTemporalDistance(g *egraph.IntEvolvingGraph, from egraph.TemporalNode, w int32) int {
	if from.Node < 0 || int(from.Node) >= g.NumNodes() || w < 0 || int(w) >= g.NumNodes() ||
		from.Stamp < 0 || int(from.Stamp) >= g.NumStamps() {
		return Unreachable
	}
	cur := ds.NewBitSet(g.NumNodes())
	cur.Set(int(from.Node))
	if from.Node == w {
		return 1
	}
	for s := from.Stamp; s < int32(g.NumStamps()); s++ {
		next := cur.Clone() // waiting is free
		for vi := cur.NextSet(0); vi >= 0; vi = cur.NextSet(vi + 1) {
			for _, nb := range g.OutNeighbors(int32(vi), s) {
				next.Set(int(nb))
			}
		}
		if next.Get(int(w)) {
			return int(s-from.Stamp) + 1
		}
		cur = next
	}
	return Unreachable
}

// DynamicWalkDistance returns the Grindrod–Higham style distance from
// `from` to `to`: the minimum number of *static* hops over all temporal
// paths — causal hops are free. Returns Unreachable when no temporal
// path exists.
func DynamicWalkDistance(g *egraph.IntEvolvingGraph, from, to egraph.TemporalNode, mode egraph.CausalMode) (int, error) {
	res, err := core.WeightedShortestPaths(g, from, core.WeightedOptions{Mode: mode, CausalWeight: 0})
	if err != nil {
		return Unreachable, err
	}
	if !res.Reached(to) {
		return Unreachable, nil
	}
	return int(res.Dist(to)), nil
}

// PaperDistance returns the paper's Def. 6 distance (static + causal
// hops), or Unreachable.
func PaperDistance(g *egraph.IntEvolvingGraph, from, to egraph.TemporalNode, mode egraph.CausalMode) (int, error) {
	res, err := core.BFS(g, from, core.Options{Mode: mode})
	if err != nil {
		return Unreachable, err
	}
	return res.Dist(to), nil
}

// DynamicCommunicability computes the Grindrod–Higham matrix iteration
// Q = (I − αA[t1])⁻¹ (I − αA[t2])⁻¹ ··· (I − αA[tn])⁻¹ over the
// per-stamp adjacency matrices. α must satisfy α·ρ(A[t]) < 1 for every
// stamp; callers typically take α below 1/max-degree. Q[i][j] measures
// the weight of dynamic walks from i to j.
func DynamicCommunicability(g *egraph.IntEvolvingGraph, alpha float64) (*matrix.Dense, error) {
	if alpha <= 0 {
		return nil, errors.New("metrics: alpha must be positive")
	}
	n := g.NumNodes()
	q := matrix.Identity(n)
	for t := 0; t < g.NumStamps(); t++ {
		a := matrix.NewDense(n, n)
		g.VisitEdges(int32(t), func(u, v int32, _ float64) bool {
			a.Set(int(u), int(v), 1)
			if !g.Directed() {
				a.Set(int(v), int(u), 1)
			}
			return true
		})
		factor := matrix.Identity(n).Sub(a.Scale(alpha))
		inv, err := factor.Inverse()
		if err != nil {
			return nil, fmt.Errorf("metrics: resolvent at stamp %d: %w (alpha too large?)", t, err)
		}
		q = q.Mul(inv)
	}
	return q, nil
}

// BroadcastCentrality returns the row sums of the dynamic
// communicability matrix: how effectively each node seeds information.
func BroadcastCentrality(q *matrix.Dense) []float64 {
	r, c := q.Dims()
	out := make([]float64, r)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			out[i] += q.At(i, j)
		}
	}
	return out
}

// ReceiveCentrality returns the column sums of the dynamic
// communicability matrix: how effectively each node collects information.
func ReceiveCentrality(q *matrix.Dense) []float64 {
	r, c := q.Dims()
	out := make([]float64, c)
	for j := 0; j < c; j++ {
		for i := 0; i < r; i++ {
			out[j] += q.At(i, j)
		}
	}
	return out
}

// TemporalCloseness returns the closeness centrality of an active
// temporal node: Σ 1/d over all temporal nodes at positive distance d
// from it (harmonic convention, so disconnected pairs contribute 0).
func TemporalCloseness(g *egraph.IntEvolvingGraph, root egraph.TemporalNode, mode egraph.CausalMode) (float64, error) {
	return TemporalClosenessOpts(g, root, Options{Mode: mode})
}

// TemporalClosenessOpts is TemporalCloseness with engine control; the
// engine choice flows into the underlying core.BFS. The harmonic sum is
// accumulated in temporal-node id order either way, so both engines
// return bit-identical values.
func TemporalClosenessOpts(g *egraph.IntEvolvingGraph, root egraph.TemporalNode, opts Options) (float64, error) {
	res, err := core.BFS(g, root, core.Options{Mode: opts.Mode, UseAdjacencyMaps: opts.UseAdjacencyMaps})
	if err != nil {
		return 0, err
	}
	return closenessOf(res), nil
}

// closenessOf accumulates Σ 1/d over a BFS result in temporal-node id
// order (the Visit order) — kept in one place so every engine and sweep
// sums identically.
func closenessOf(res *core.Result) float64 {
	sum := 0.0
	res.Visit(func(_ egraph.TemporalNode, d int) bool {
		if d > 0 {
			sum += 1 / float64(d)
		}
		return true
	})
	return sum
}

// EfficiencyStats summarises global temporal-connectivity efficiency.
type EfficiencyStats struct {
	// Efficiency is the mean of 1/d over all ordered pairs of distinct
	// active temporal nodes (0 for unreachable pairs) — the temporal
	// analogue of global network efficiency.
	Efficiency float64
	// ReachableFraction is the fraction of ordered pairs with a
	// temporal path.
	ReachableFraction float64
	// MeanDistance is the mean Def. 6 distance over reachable pairs
	// (0 when no pair is reachable).
	MeanDistance float64
	// Diameter is the largest finite distance.
	Diameter int
}

// GlobalEfficiency computes EfficiencyStats with one BFS per active
// temporal node (analysis scale).
func GlobalEfficiency(g *egraph.IntEvolvingGraph, mode egraph.CausalMode) EfficiencyStats {
	return GlobalEfficiencyOpts(g, Options{Mode: mode})
}

// sourcePartial is one root's contribution to the efficiency sweep.
type sourcePartial struct {
	eff, dist float64
	reachable int
	ecc       int
}

// GlobalEfficiencyOpts is GlobalEfficiency with engine and worker
// control. The per-root searches are fanned across Workers goroutines;
// each root's contribution is accumulated in temporal-node id order and
// the partials are combined in root order, so the result is
// bit-identical across engines and worker counts.
func GlobalEfficiencyOpts(g *egraph.IntEvolvingGraph, opts Options) EfficiencyStats {
	roots := g.ActiveTemporalNodes()
	n := len(roots)
	var st EfficiencyStats
	if n < 2 {
		return st
	}
	workers := opts.Workers
	if opts.UseAdjacencyMaps {
		workers = 1 // the oracle is the sequential pre-CSR implementation
	} else if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	parts := make([]sourcePartial, n)
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				res, err := core.BFS(g, roots[i], core.Options{Mode: opts.Mode, UseAdjacencyMaps: opts.UseAdjacencyMaps})
				if err != nil {
					continue // unreachable: roots are active by construction
				}
				p := &parts[i]
				res.Visit(func(_ egraph.TemporalNode, d int) bool {
					if d > 0 {
						p.eff += 1 / float64(d)
						p.dist += float64(d)
						p.reachable++
						if d > p.ecc {
							p.ecc = d
						}
					}
					return true
				})
			}
		}()
	}
	wg.Wait()

	var effSum, distSum float64
	reachable := 0
	for i := range parts {
		effSum += parts[i].eff
		distSum += parts[i].dist
		reachable += parts[i].reachable
		if parts[i].ecc > st.Diameter {
			st.Diameter = parts[i].ecc
		}
	}
	pairs := float64(n * (n - 1))
	st.Efficiency = effSum / pairs
	st.ReachableFraction = float64(reachable) / pairs
	if reachable > 0 {
		st.MeanDistance = distSum / float64(reachable)
	}
	return st
}
