package metrics

import (
	"repro/internal/ds"
	"repro/internal/egraph"
)

// TemporalBetweenness computes betweenness centrality over the unfolded
// static graph G = (V, E) of Theorem 1 with Brandes' algorithm, then
// aggregates the per-temporal-node scores by node id. The score of node
// v is the sum over source-target pairs of the fraction of shortest
// temporal paths passing through any (v, t). Endpoints are excluded, per
// the classical definition.
//
// Cost is O(|V|·|E|); intended for the analysis of small-to-medium
// networks (e.g. the citation examples), not the Figure 5 scale.
func TemporalBetweenness(g *egraph.IntEvolvingGraph, mode egraph.CausalMode) []float64 {
	u := g.Unfold(mode)
	n := u.Graph.NumNodes()
	score := make([]float64, n) // per unfolded temporal node

	// Brandes' accumulation, one source at a time.
	dist := make([]int32, n)
	sigma := make([]float64, n) // number of shortest paths
	delta := make([]float64, n)
	preds := make([][]int32, n)
	order := make([]int32, 0, n) // nodes in nondecreasing distance
	q := ds.NewIntQueue(64)

	for s := 0; s < n; s++ {
		for i := range dist {
			dist[i] = -1
			sigma[i] = 0
			delta[i] = 0
			preds[i] = preds[i][:0]
		}
		order = order[:0]
		dist[s] = 0
		sigma[s] = 1
		q.Reset()
		q.Push(s)
		for !q.Empty() {
			v := int32(q.Pop())
			order = append(order, v)
			for _, w := range u.Graph.Neighbors(v) {
				if dist[w] < 0 {
					dist[w] = dist[v] + 1
					q.Push(int(w))
				}
				if dist[w] == dist[v]+1 {
					sigma[w] += sigma[v]
					preds[w] = append(preds[w], v)
				}
			}
		}
		// Back-propagate dependencies in reverse BFS order.
		for i := len(order) - 1; i >= 0; i-- {
			w := order[i]
			for _, v := range preds[w] {
				delta[v] += sigma[v] / sigma[w] * (1 + delta[w])
			}
			if int(w) != s {
				score[w] += delta[w]
			}
		}
	}

	// Aggregate temporal-node scores by node id.
	out := make([]float64, g.NumNodes())
	for id, tnode := range u.Order {
		out[tnode.Node] += score[id]
	}
	return out
}
