package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBucketForBoundaries(t *testing.T) {
	if b := bucketFor(0); b != 0 {
		t.Fatalf("bucketFor(0) = %d", b)
	}
	if b := bucketFor(-5); b != 0 {
		t.Fatalf("bucketFor(-5) = %d", b)
	}
	// Every bound must land in its own bucket, and bound+1 in the next.
	for i, bound := range bucketBoundsNS {
		ns := int64(bound)
		if got := bucketFor(ns); got != i {
			t.Fatalf("bucketFor(bound[%d]=%d) = %d", i, ns, got)
		}
		if got := bucketFor(ns + 1); got != i+1 {
			t.Fatalf("bucketFor(bound[%d]+1) = %d, want %d", i, got, i+1)
		}
	}
	if got := bucketFor(math.MaxInt64); got != histBuckets-1 {
		t.Fatalf("overflow bucket: got %d", got)
	}
}

func TestHistogramCountsAndQuantiles(t *testing.T) {
	var h Histogram
	const n = 10000
	for i := 1; i <= n; i++ {
		h.Observe(int64(i) * 1000) // 1µs .. 10ms uniform
	}
	s := h.Snapshot()
	if s.Count != n {
		t.Fatalf("count = %d, want %d", s.Count, n)
	}
	var sum uint64
	for _, c := range s.Counts {
		sum += c
	}
	if sum != n {
		t.Fatalf("bucket sum = %d, want %d", sum, n)
	}
	wantSum := int64(n) * (n + 1) / 2 * 1000
	if s.SumNS != wantSum {
		t.Fatalf("sumNS = %d, want %d", s.SumNS, wantSum)
	}
	if s.MaxNS != n*1000 {
		t.Fatalf("maxNS = %d", s.MaxNS)
	}
	// Log buckets have ~41% width, so quantiles are coarse; require the
	// right ballpark only.
	p50 := s.Quantile(0.50)
	if p50 < 2.5e6 || p50 > 10e6 {
		t.Fatalf("p50 = %v ns, want ~5e6", p50)
	}
	p99 := s.Quantile(0.99)
	if p99 < 6e6 || p99 > 1.5e7 {
		t.Fatalf("p99 = %v ns, want ~1e7", p99)
	}
	if q := s.Quantile(1); q < p99 {
		t.Fatalf("p100 %v < p99 %v", q, p99)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(seed + int64(i)%1_000_000)
			}
		}(int64(w) * 1000)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("count = %d, want %d", s.Count, workers*per)
	}
	var sum uint64
	for _, c := range s.Counts {
		sum += c
	}
	if sum != s.Count {
		t.Fatalf("bucket sum %d != count %d", sum, s.Count)
	}
}

func TestSnapshotMerge(t *testing.T) {
	var a, b Histogram
	a.Observe(1000)
	a.Observe(2000)
	b.Observe(4000)
	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Merge(sb)
	if sa.Count != 3 || sa.SumNS != 7000 || sa.MaxNS != 4000 {
		t.Fatalf("merge: %+v", sa)
	}
}

func TestHistogramVecLabels(t *testing.T) {
	v := (&Registry{families: map[string]*family{}}).Histogram("x_seconds", "h", "a", "b")
	h1 := v.With("p", "q")
	h2 := v.With("p", "q")
	if h1 != h2 {
		t.Fatal("same labels returned distinct histograms")
	}
	if v.With("p", "r") == h1 {
		t.Fatal("distinct labels shared a histogram")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("label arity mismatch did not panic")
		}
	}()
	v.With("only-one")
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Gauge("dup_metric", "x", func() float64 { return 0 })
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Gauge("dup_metric", "x", func() float64 { return 0 })
}

func TestNilRegistryInert(t *testing.T) {
	var r *Registry
	r.Gauge("x", "y", func() float64 { return 1 })
	v := r.Histogram("h_seconds", "h", "l")
	v.With("a").Observe(123)
	if err := r.WriteProm(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if r.HistogramSnapshots("h_seconds") != nil {
		t.Fatal("nil registry returned snapshots")
	}
}

func TestPromRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("eg_test_total", "A counter.", func() float64 { return 42 })
	r.Func("eg_labeled_total", `Help with \ backslash and "quotes"`, Counter,
		[]string{"kind"}, func() []Sample {
			return []Sample{
				{LabelValues: []string{`weird"v\al`}, Value: 1},
				{LabelValues: []string{"plain"}, Value: 2},
			}
		})
	hv := r.Histogram("eg_lat_seconds", "Latency.", "endpoint", "outcome")
	h := hv.With("/katz", "miss")
	for i := 0; i < 100; i++ {
		h.Observe(int64(i+1) * 10_000)
	}
	hv.With("/bfs", "hit").Observe(5_000)

	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseProm(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("strict parse of own output: %v\n%s", err, buf.String())
	}
	if f := fams["eg_test_total"]; f == nil || f.Type != "counter" || f.Samples[0].Value != 42 {
		t.Fatalf("eg_test_total: %+v", fams["eg_test_total"])
	}
	lf := fams["eg_labeled_total"]
	if lf == nil || len(lf.Samples) != 2 {
		t.Fatalf("eg_labeled_total: %+v", lf)
	}
	found := false
	for _, s := range lf.Samples {
		if s.Labels["kind"] == `weird"v\al` && s.Value == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("escaped label did not round-trip: %+v", lf.Samples)
	}
	hf := fams["eg_lat_seconds"]
	if hf == nil || hf.Type != "histogram" || len(hf.Hists) != 2 {
		t.Fatalf("eg_lat_seconds: %+v", hf)
	}
	g := hf.Find(map[string]string{"endpoint": "/katz", "outcome": "miss"})
	if g == nil {
		t.Fatal("katz/miss series not found")
	}
	if g.Count != 100 {
		t.Fatalf("count = %v", g.Count)
	}
	wantSum := float64(100*101/2) * 10_000 / 1e9
	if math.Abs(g.Sum-wantSum) > 1e-9 {
		t.Fatalf("sum = %v, want %v", g.Sum, wantSum)
	}
	p50 := g.Quantile(0.5)
	if p50 < 100e-6 || p50 > 1e-3 {
		t.Fatalf("prom p50 = %v s", p50)
	}
	// Runtime gauges must be present and well-typed.
	if f := fams["eg_goroutines"]; f == nil || f.Type != "gauge" || f.Samples[0].Value < 1 {
		t.Fatalf("eg_goroutines: %+v", f)
	}
}

func TestParsePromRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"sample before TYPE": "x_total 1\n",
		"duplicate TYPE":     "# TYPE a counter\n# TYPE a counter\na 1\n",
		"duplicate series":   "# TYPE a counter\na{l=\"x\"} 1\na{l=\"x\"} 2\n",
		"bad value":          "# TYPE a counter\na notanumber\n",
		"bad label syntax":   "# TYPE a counter\na{l=x} 1\n",
		"non-monotone buckets": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\n" +
			"h_sum 1\nh_count 5\n",
		"missing +Inf": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_sum 1\nh_count 5\n",
		"Inf != count": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 7\n",
		"missing sum": "# TYPE h histogram\n" +
			"h_bucket{le=\"+Inf\"} 5\nh_count 5\n",
		"TYPE after samples": "# TYPE a counter\na 1\n# TYPE b counter\n# HELP a x\n# TYPE a gauge\n",
	}
	for name, in := range cases {
		if _, err := ParseProm(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
}

func TestParsePromAcceptsWellFormed(t *testing.T) {
	in := "# HELP a Help text.\n# TYPE a counter\na{x=\"1\"} 3\na{x=\"2\"} 4\n" +
		"# TYPE g gauge\ng 1.5e-3\n"
	fams, err := ParseProm(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if fams["a"].Help != "Help text." || len(fams["a"].Samples) != 2 {
		t.Fatalf("%+v", fams["a"])
	}
	if fams["g"].Samples[0].Value != 1.5e-3 {
		t.Fatalf("%+v", fams["g"])
	}
}

func TestTracerSamplingAndSpans(t *testing.T) {
	tr := NewTracer(TracerOptions{Ring: 4, SampleEvery: -1, Slow: time.Hour})
	if tr.Start(false) != nil {
		t.Fatal("sampling disabled but trace started")
	}
	tc := tr.Start(true)
	if tc == nil {
		t.Fatal("forced trace not started")
	}
	root := tc.Span("serve", RootSpan)
	root.Attr("endpoint", "/katz")
	dec := tc.Span("decode", root)
	dec.End()
	cache := tc.Span("cache", root)
	comp := tc.Span("compute", cache)
	comp.Attr("outcome", "miss")
	comp.End()
	cache.End()
	root.End()
	tc.Finish()
	tc.Finish() // idempotent

	out, err := tr.Dump()
	if err != nil {
		t.Fatal(err)
	}
	s := string(out)
	for _, want := range []string{`"serve"`, `"decode"`, `"cache"`, `"compute"`, `"outcome": "miss"`} {
		if !strings.Contains(s, want) {
			t.Fatalf("dump missing %s:\n%s", want, s)
		}
	}
	if tc.Spans[3].Stage != "compute" || tc.Spans[3].Parent != 2 {
		t.Fatalf("span nesting wrong: %+v", tc.Spans)
	}
}

func TestTracerSlowRingAndEviction(t *testing.T) {
	tr := NewTracer(TracerOptions{Ring: 2, SlowRing: 2, SampleEvery: -1, Slow: time.Nanosecond})
	var last *Trace
	for i := 0; i < 5; i++ {
		tc := tr.Start(true)
		sp := tc.Span("serve", RootSpan)
		time.Sleep(100 * time.Microsecond)
		sp.End()
		tc.Finish()
		last = tc
	}
	if !last.Slow {
		t.Fatal("trace above threshold not marked slow")
	}
	tr.mu.Lock()
	n, sn := len(tr.ring), len(tr.slowRing)
	tr.mu.Unlock()
	if n != 2 || sn != 2 {
		t.Fatalf("ring sizes = %d/%d, want 2/2", n, sn)
	}
	out, err := tr.Dump()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), `"slow": true`) {
		t.Fatalf("dump lacks slow flag:\n%s", out)
	}
}

func TestTracerSampleEvery(t *testing.T) {
	tr := NewTracer(TracerOptions{SampleEvery: 4})
	got := 0
	for i := 0; i < 16; i++ {
		if tc := tr.Start(false); tc != nil {
			got++
			tc.Finish()
		}
	}
	if got != 4 {
		t.Fatalf("sampled %d of 16 with SampleEvery=4", got)
	}
}
