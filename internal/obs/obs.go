package obs

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
)

// Type is the Prometheus metric type of a registered family.
type Type int

const (
	Counter Type = iota
	Gauge
	HistogramType
)

func (t Type) String() string {
	switch t {
	case Counter:
		return "counter"
	case Gauge:
		return "gauge"
	case HistogramType:
		return "histogram"
	default:
		return "untyped"
	}
}

// Sample is one collected series: label values (matching the family's
// declared label names) and the current value.
type Sample struct {
	LabelValues []string
	Value       float64
}

// family is one registered metric family. Counters and gauges are
// backed by a collect closure reading whatever atomics or Stats()
// snapshot already exist — the registry owns no counter state of its
// own, so the JSON /metrics document and the Prometheus exposition
// read the same words of memory. Histograms are backed by a
// HistogramVec owned here.
type family struct {
	name    string
	help    string
	typ     Type
	labels  []string
	collect func() []Sample
	vec     *HistogramVec
}

// Registry holds metric families and renders them as Prometheus text
// exposition. Registration happens at construction time (server/ingest
// setup); collection happens on every scrape. A nil *Registry is inert:
// Histogram returns a usable (but unexported) vec, so instrumented code
// never has to nil-check.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry preloaded with Go runtime
// gauges (goroutines, heap, GC).
func NewRegistry() *Registry {
	r := &Registry{families: make(map[string]*family)}
	r.registerRuntime()
	return r
}

// Func registers a counter or gauge family whose samples are produced
// by collect on every scrape. Label values emitted by collect must
// match labels in number and order. Panics on duplicate names — two
// subsystems claiming one family is a wiring bug.
func (r *Registry) Func(name, help string, typ Type, labels []string, collect func() []Sample) {
	if r == nil {
		return
	}
	if typ == HistogramType {
		panic("obs: use Registry.Histogram for histogram families")
	}
	r.add(&family{name: name, help: help, typ: typ, labels: labels, collect: collect})
}

// Gauge registers an unlabeled gauge backed by a read closure.
func (r *Registry) Gauge(name, help string, read func() float64) {
	r.Func(name, help, Gauge, nil, func() []Sample {
		return []Sample{{Value: read()}}
	})
}

// Counter registers an unlabeled counter backed by a read closure.
func (r *Registry) Counter(name, help string, read func() float64) {
	r.Func(name, help, Counter, nil, func() []Sample {
		return []Sample{{Value: read()}}
	})
}

// Histogram registers a labeled histogram family and returns its vec.
// Safe on a nil registry: the vec works but is rendered nowhere.
func (r *Registry) Histogram(name, help string, labels ...string) *HistogramVec {
	v := &HistogramVec{name: name, help: help, labels: labels}
	if r == nil {
		return v
	}
	r.add(&family{name: name, help: help, typ: HistogramType, labels: labels, vec: v})
	return v
}

func (r *Registry) add(f *family) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[f.name]; dup {
		panic(fmt.Sprintf("obs: duplicate metric family %q", f.name))
	}
	r.families[f.name] = f
}

// snapshot returns the families sorted by name.
func (r *Registry) snapshot() []*family {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// HistogramSnapshots returns the merged snapshot of every series of
// the named histogram family, keyed by its label values. Nil registry
// or unknown family yields nil. The JSON /metrics latency summary and
// tests read histograms through this.
func (r *Registry) HistogramSnapshots(name string) map[string]HistSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	f := r.families[name]
	r.mu.Unlock()
	if f == nil || f.vec == nil {
		return nil
	}
	out := make(map[string]HistSnapshot)
	f.vec.m.Range(func(k, v any) bool {
		out[k.(string)] = v.(*Histogram).Snapshot()
		return true
	})
	return out
}

// SplitLabelKey splits a HistogramSnapshots map key back into the n
// label values it was built from.
func SplitLabelKey(key string, n int) []string { return splitLabelValues(key, n) }

func (r *Registry) registerRuntime() {
	r.Gauge("eg_goroutines", "Number of live goroutines.", func() float64 {
		return float64(runtime.NumGoroutine())
	})
	var ms runtime.MemStats
	var msMu sync.Mutex
	read := func(pick func(*runtime.MemStats) float64) func() float64 {
		return func() float64 {
			msMu.Lock()
			defer msMu.Unlock()
			runtime.ReadMemStats(&ms)
			return pick(&ms)
		}
	}
	r.Gauge("eg_heap_alloc_bytes", "Bytes of allocated heap objects.",
		read(func(m *runtime.MemStats) float64 { return float64(m.HeapAlloc) }))
	r.Gauge("eg_heap_sys_bytes", "Bytes of heap obtained from the OS.",
		read(func(m *runtime.MemStats) float64 { return float64(m.HeapSys) }))
	r.Counter("eg_gc_cycles_total", "Completed GC cycles.",
		read(func(m *runtime.MemStats) float64 { return float64(m.NumGC) }))
	r.Counter("eg_gc_pause_seconds_total", "Cumulative GC stop-the-world pause time.",
		read(func(m *runtime.MemStats) float64 { return float64(m.PauseTotalNs) / 1e9 }))
}
