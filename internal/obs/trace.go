package obs

import (
	"encoding/json"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer records request-scoped span trees into two bounded rings: one
// for sampled/forced traces, one for slow queries that crossed a
// latency threshold regardless of sampling. Recording is allocation-
// light and lock-free until a trace is actually retained; a nil
// *Tracer is fully inert, so callers never nil-check.
type Tracer struct {
	sampleEvery uint64 // retain every Nth trace; 0 disables sampling
	slow        time.Duration
	seq         atomic.Uint64
	nextID      atomic.Uint64

	mu       sync.Mutex
	ring     []*Trace
	ringPos  int
	slowRing []*Trace
	slowPos  int
	dropped  atomic.Uint64
	kept     atomic.Uint64
}

// TracerOptions configures NewTracer. Zero values get sane defaults.
type TracerOptions struct {
	Ring        int           // retained sampled traces (default 64)
	SlowRing    int           // retained slow traces (default 32)
	Slow        time.Duration // slow-query threshold (default 250ms)
	SampleEvery int           // keep every Nth trace (default 64; <0 disables)
}

func NewTracer(o TracerOptions) *Tracer {
	if o.Ring <= 0 {
		o.Ring = 64
	}
	if o.SlowRing <= 0 {
		o.SlowRing = 32
	}
	if o.Slow <= 0 {
		o.Slow = 250 * time.Millisecond
	}
	if o.SampleEvery == 0 {
		o.SampleEvery = 64
	}
	t := &Tracer{
		slow:     o.Slow,
		ring:     make([]*Trace, 0, o.Ring),
		slowRing: make([]*Trace, 0, o.SlowRing),
	}
	if o.SampleEvery > 0 {
		t.sampleEvery = uint64(o.SampleEvery)
	}
	return t
}

// Trace is one request's span tree, flattened: Spans[0] is the root
// and every other span names its parent by index.
type Trace struct {
	ID      uint64    `json:"id"`
	Start   time.Time `json:"start"`
	Forced  bool      `json:"forced,omitempty"`
	Slow    bool      `json:"slow,omitempty"`
	Spans   []Span    `json:"spans"`
	spansMu sync.Mutex
	tracer  *Tracer
	done    atomic.Bool
}

// Span is one recorded stage of a trace.
type Span struct {
	Parent   int               `json:"parent"` // index into Spans; -1 for root
	Stage    string            `json:"stage"`
	StartUS  int64             `json:"startUs"` // offset from trace start
	DurUS    int64             `json:"durUs"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	startMon time.Time
	open     bool
}

// SpanRef addresses one open span within a trace.
type SpanRef struct {
	t   *Trace
	idx int
}

// Start begins a trace if this request should be traced: forced (the
// X-Trace header / EGWP flag), or picked by 1-in-N sampling. Returns
// nil — safe to use — when the request is not traced; every SpanRef
// method tolerates a nil trace.
func (t *Tracer) Start(forced bool) *Trace {
	if t == nil {
		return nil
	}
	sampled := false
	if t.sampleEvery > 0 {
		sampled = t.seq.Add(1)%t.sampleEvery == 1
	}
	if !forced && !sampled {
		return nil
	}
	return &Trace{
		ID:     t.nextID.Add(1),
		Start:  time.Now(),
		Forced: forced,
		tracer: t,
	}
}

// Span opens a child span under parent (pass RootSpan for the root, or
// a SpanRef returned by an earlier Span call).
func (tr *Trace) Span(stage string, parent SpanRef) SpanRef {
	if tr == nil {
		return SpanRef{}
	}
	tr.spansMu.Lock()
	defer tr.spansMu.Unlock()
	pidx := -1
	if parent.t == tr {
		pidx = parent.idx
	}
	now := time.Now()
	tr.Spans = append(tr.Spans, Span{
		Parent:   pidx,
		Stage:    stage,
		StartUS:  now.Sub(tr.Start).Microseconds(),
		startMon: now,
		open:     true,
	})
	return SpanRef{t: tr, idx: len(tr.Spans) - 1}
}

// End closes the span. Attrs set after End are ignored.
func (r SpanRef) End() {
	if r.t == nil {
		return
	}
	r.t.spansMu.Lock()
	defer r.t.spansMu.Unlock()
	s := &r.t.Spans[r.idx]
	if s.open {
		s.DurUS = time.Since(s.startMon).Microseconds()
		s.open = false
	}
}

// Attr attaches a key/value to the span (revision, cache outcome,
// frontier size, ...).
func (r SpanRef) Attr(key, value string) {
	if r.t == nil {
		return
	}
	r.t.spansMu.Lock()
	defer r.t.spansMu.Unlock()
	s := &r.t.Spans[r.idx]
	if s.Attrs == nil {
		s.Attrs = make(map[string]string, 4)
	}
	s.Attrs[key] = value
}

// Finish closes any still-open spans and retains the trace: into the
// sampled ring always, and additionally flagged slow (and kept in the
// slow ring) when total duration crossed the threshold. Idempotent.
func (tr *Trace) Finish() {
	if tr == nil || !tr.done.CompareAndSwap(false, true) {
		return
	}
	tr.spansMu.Lock()
	var total time.Duration
	for i := range tr.Spans {
		s := &tr.Spans[i]
		if s.open {
			s.DurUS = time.Since(s.startMon).Microseconds()
			s.open = false
		}
		if s.Parent == -1 {
			if d := time.Duration(s.DurUS) * time.Microsecond; d > total {
				total = d
			}
		}
	}
	tr.spansMu.Unlock()
	t := tr.tracer
	tr.Slow = total >= t.slow
	t.kept.Add(1)
	t.mu.Lock()
	defer t.mu.Unlock()
	push(&t.ring, &t.ringPos, cap(t.ring), tr)
	if tr.Slow {
		push(&t.slowRing, &t.slowPos, cap(t.slowRing), tr)
	}
}

func push(ring *[]*Trace, pos *int, capacity int, tr *Trace) {
	if len(*ring) < capacity {
		*ring = append(*ring, tr)
		return
	}
	(*ring)[*pos] = tr
	*pos = (*pos + 1) % capacity
}

// RootSpan is the parent to pass when opening a trace's first span.
var RootSpan = SpanRef{}

// Dump renders the retained traces as JSON for /debug/traces: newest
// first, sampled ring then slow ring.
func (t *Tracer) Dump() ([]byte, error) {
	if t == nil {
		return []byte(`{"enabled":false}` + "\n"), nil
	}
	t.mu.Lock()
	doc := struct {
		Enabled bool     `json:"enabled"`
		Kept    uint64   `json:"kept"`
		SlowMS  int64    `json:"slowThresholdMs"`
		Traces  []*Trace `json:"traces"`
		Slow    []*Trace `json:"slow"`
	}{
		Enabled: true,
		Kept:    t.kept.Load(),
		SlowMS:  t.slow.Milliseconds(),
		Traces:  unroll(t.ring, t.ringPos),
		Slow:    unroll(t.slowRing, t.slowPos),
	}
	t.mu.Unlock()
	return json.MarshalIndent(doc, "", "  ")
}

// unroll returns ring contents newest-first.
func unroll(ring []*Trace, pos int) []*Trace {
	out := make([]*Trace, 0, len(ring))
	for i := len(ring) - 1; i >= 0; i-- {
		out = append(out, ring[(pos+i)%len(ring)])
	}
	return out
}
