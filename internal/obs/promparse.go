package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ParseProm is a strict parser for the Prometheus text exposition this
// package writes. It is deliberately pickier than a scraper needs to
// be — CI lints every soak generation's /metrics.prom through it — and
// rejects:
//
//   - samples appearing before their family's # TYPE line
//   - duplicate # TYPE declarations or duplicate series
//   - unparseable sample lines, label syntax, or values
//   - histograms with non-monotone cumulative buckets, a missing +Inf
//     bucket, +Inf != _count, or missing _sum/_count series
//
// It returns the families keyed by name.
func ParseProm(r io.Reader) (map[string]*PromFamily, error) {
	p := &promParser{
		families: make(map[string]*PromFamily),
		seen:     make(map[string]bool),
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		if err := p.line(strings.TrimRight(sc.Text(), " \t")); err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := p.validateHistograms(); err != nil {
		return nil, err
	}
	return p.families, nil
}

// PromFamily is one parsed metric family.
type PromFamily struct {
	Name    string
	Help    string
	Type    string
	Samples []PromSample
	// Hists holds the validated histogram series groups (reassembled
	// from _bucket/_sum/_count), sorted by label identity; empty for
	// non-histogram families.
	Hists []*PromHist
}

// PromSample is one parsed series sample. Name is the full series name
// (including any _bucket/_sum/_count suffix).
type PromSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

type promParser struct {
	families map[string]*PromFamily
	seen     map[string]bool // series identity -> present
}

func (p *promParser) line(s string) error {
	if s == "" {
		return nil
	}
	if strings.HasPrefix(s, "# HELP ") {
		rest := s[len("# HELP "):]
		name, help, _ := strings.Cut(rest, " ")
		if name == "" {
			return fmt.Errorf("HELP with no metric name")
		}
		f := p.family(name)
		if f.Help != "" {
			return fmt.Errorf("duplicate HELP for %s", name)
		}
		f.Help = help
		return nil
	}
	if strings.HasPrefix(s, "# TYPE ") {
		fields := strings.Fields(s[len("# TYPE "):])
		if len(fields) != 2 {
			return fmt.Errorf("malformed TYPE line %q", s)
		}
		name, typ := fields[0], fields[1]
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q for %s", typ, name)
		}
		f := p.family(name)
		if f.Type != "" {
			return fmt.Errorf("duplicate TYPE for %s", name)
		}
		if len(f.Samples) > 0 {
			return fmt.Errorf("TYPE for %s after its samples", name)
		}
		f.Type = typ
		return nil
	}
	if strings.HasPrefix(s, "#") {
		return nil // free-form comment
	}
	return p.sample(s)
}

func (p *promParser) family(name string) *PromFamily {
	f := p.families[name]
	if f == nil {
		f = &PromFamily{Name: name}
		p.families[name] = f
	}
	return f
}

func (p *promParser) sample(s string) error {
	name, rest, err := scanName(s)
	if err != nil {
		return err
	}
	labels := map[string]string{}
	if strings.HasPrefix(rest, "{") {
		labels, rest, err = scanLabels(rest)
		if err != nil {
			return fmt.Errorf("series %s: %w", name, err)
		}
	}
	rest = strings.TrimLeft(rest, " \t")
	// An optional timestamp may follow the value; we don't emit one, so
	// reject it to keep the lint strict.
	if strings.ContainsAny(rest, " \t") {
		return fmt.Errorf("series %s: trailing fields after value", name)
	}
	val, err := parsePromValue(rest)
	if err != nil {
		return fmt.Errorf("series %s: bad value %q", name, rest)
	}
	famName := name
	f := p.families[famName]
	if f == nil || f.Type == "" {
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if base, ok := strings.CutSuffix(name, suf); ok {
				if bf := p.families[base]; bf != nil && bf.Type == "histogram" {
					famName, f = base, bf
					break
				}
			}
		}
	}
	if f == nil || f.Type == "" {
		return fmt.Errorf("sample %s before any TYPE declaration", name)
	}
	id := seriesID(name, labels)
	if p.seen[id] {
		return fmt.Errorf("duplicate series %s", id)
	}
	p.seen[id] = true
	f.Samples = append(f.Samples, PromSample{Name: name, Labels: labels, Value: val})
	return nil
}

func scanName(s string) (name, rest string, err error) {
	i := 0
	for i < len(s) {
		c := s[i]
		if c == '{' || c == ' ' || c == '\t' {
			break
		}
		if !(c == '_' || c == ':' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
			i > 0 && c >= '0' && c <= '9') {
			return "", "", fmt.Errorf("invalid metric name in %q", s)
		}
		i++
	}
	if i == 0 {
		return "", "", fmt.Errorf("empty metric name in %q", s)
	}
	return s[:i], s[i:], nil
}

func scanLabels(s string) (map[string]string, string, error) {
	labels := map[string]string{}
	s = s[1:] // consume {
	for {
		s = strings.TrimLeft(s, " \t")
		if strings.HasPrefix(s, "}") {
			return labels, s[1:], nil
		}
		eq := strings.IndexByte(s, '=')
		if eq <= 0 {
			return nil, "", fmt.Errorf("malformed label pair near %q", s)
		}
		key := strings.TrimSpace(s[:eq])
		s = s[eq+1:]
		if !strings.HasPrefix(s, `"`) {
			return nil, "", fmt.Errorf("label %s value not quoted", key)
		}
		s = s[1:]
		var val strings.Builder
		for {
			if len(s) == 0 {
				return nil, "", fmt.Errorf("unterminated label value for %s", key)
			}
			c := s[0]
			if c == '"' {
				s = s[1:]
				break
			}
			if c == '\\' {
				if len(s) < 2 {
					return nil, "", fmt.Errorf("dangling escape in label %s", key)
				}
				switch s[1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, "", fmt.Errorf("bad escape \\%c in label %s", s[1], key)
				}
				s = s[2:]
				continue
			}
			val.WriteByte(c)
			s = s[1:]
		}
		if _, dup := labels[key]; dup {
			return nil, "", fmt.Errorf("duplicate label %s", key)
		}
		labels[key] = val.String()
		s = strings.TrimLeft(s, " \t")
		if strings.HasPrefix(s, ",") {
			s = s[1:]
		} else if !strings.HasPrefix(s, "}") {
			return nil, "", fmt.Errorf("expected , or } near %q", s)
		}
	}
}

func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

func seriesID(name string, labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString("=\"")
		b.WriteString(labels[k])
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// validateHistograms checks every histogram family's series set:
// per label combination (excluding le) the buckets must be cumulative
// and monotone, end in +Inf, match _count, and carry a _sum.
func (p *promParser) validateHistograms() error {
	for name, f := range p.families {
		if f.Type != "histogram" {
			continue
		}
		groups := map[string]*PromHist{}
		sums := map[string]float64{}
		counts := map[string]float64{}
		hasSum := map[string]bool{}
		hasCount := map[string]bool{}
		for _, s := range f.Samples {
			base := strings.TrimPrefix(s.Name, name)
			key := seriesID("", withoutLE(s.Labels))
			switch base {
			case "_bucket":
				le, ok := s.Labels["le"]
				if !ok {
					return fmt.Errorf("%s_bucket series without le label", name)
				}
				bound, err := parsePromValue(le)
				if err != nil {
					return fmt.Errorf("%s_bucket: bad le %q", name, le)
				}
				g := groups[key]
				if g == nil {
					g = &PromHist{Labels: withoutLE(s.Labels)}
					groups[key] = g
				}
				g.Bounds = append(g.Bounds, bound)
				g.Cumulative = append(g.Cumulative, s.Value)
			case "_sum":
				sums[key], hasSum[key] = s.Value, true
			case "_count":
				counts[key], hasCount[key] = s.Value, true
			case "":
				return fmt.Errorf("histogram %s has a bare sample", name)
			}
		}
		for key, g := range groups {
			if !hasSum[key] || !hasCount[key] {
				return fmt.Errorf("histogram %s%s missing _sum or _count", name, key)
			}
			g.Sum, g.Count = sums[key], counts[key]
			// Bounds must already be ascending as emitted; sort defends
			// against scrapes that reorder, then recheck cumulativity.
			sort.Sort(byBound{g})
			last := math.Inf(-1)
			prev := -1.0
			for i, b := range g.Bounds {
				if b <= last {
					return fmt.Errorf("histogram %s%s: duplicate le %v", name, key, b)
				}
				last = b
				if g.Cumulative[i] < prev {
					return fmt.Errorf("histogram %s%s: non-monotone buckets", name, key)
				}
				prev = g.Cumulative[i]
			}
			if len(g.Bounds) == 0 || !math.IsInf(g.Bounds[len(g.Bounds)-1], 1) {
				return fmt.Errorf("histogram %s%s: missing +Inf bucket", name, key)
			}
			if inf := g.Cumulative[len(g.Cumulative)-1]; inf != g.Count {
				return fmt.Errorf("histogram %s%s: +Inf bucket %v != count %v", name, key, inf, g.Count)
			}
			f.Hists = append(f.Hists, g)
		}
		sort.Slice(f.Hists, func(i, j int) bool {
			return seriesID("", f.Hists[i].Labels) < seriesID("", f.Hists[j].Labels)
		})
	}
	return nil
}

func withoutLE(labels map[string]string) map[string]string {
	out := make(map[string]string, len(labels))
	for k, v := range labels {
		if k != "le" {
			out[k] = v
		}
	}
	return out
}

// PromHist is one validated histogram series group reassembled from
// _bucket/_sum/_count samples.
type PromHist struct {
	Labels     map[string]string
	Bounds     []float64 // ascending, last is +Inf
	Cumulative []float64
	Sum        float64
	Count      float64
}

type byBound struct{ h *PromHist }

func (b byBound) Len() int           { return len(b.h.Bounds) }
func (b byBound) Less(i, j int) bool { return b.h.Bounds[i] < b.h.Bounds[j] }
func (b byBound) Swap(i, j int) {
	b.h.Bounds[i], b.h.Bounds[j] = b.h.Bounds[j], b.h.Bounds[i]
	b.h.Cumulative[i], b.h.Cumulative[j] = b.h.Cumulative[j], b.h.Cumulative[i]
}

// Hists on a PromFamily is populated for histogram families after
// validation.
//
// Find returns the series group whose labels include every key/value
// in match, or nil.
func (f *PromFamily) Find(match map[string]string) *PromHist {
	for _, h := range f.Hists {
		ok := true
		for k, v := range match {
			if h.Labels[k] != v {
				ok = false
				break
			}
		}
		if ok {
			return h
		}
	}
	return nil
}

// Quantile computes the q-th quantile from the cumulative buckets in
// the unit of the bounds (seconds for this repo's histograms), with
// linear interpolation inside the crossing bucket.
func (h *PromHist) Quantile(q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * h.Count
	prevCum, prevBound := 0.0, 0.0
	for i, cum := range h.Cumulative {
		if cum >= rank && cum > prevCum {
			hi := h.Bounds[i]
			if math.IsInf(hi, 1) {
				// Interpolating into +Inf is meaningless; report the
				// last finite bound (or mean if there is none).
				if i > 0 {
					return h.Bounds[i-1]
				}
				return h.Sum / h.Count
			}
			frac := (rank - prevCum) / (cum - prevCum)
			return prevBound + frac*(hi-prevBound)
		}
		prevCum = cum
		if !math.IsInf(h.Bounds[i], 1) {
			prevBound = h.Bounds[i]
		}
	}
	return prevBound
}
