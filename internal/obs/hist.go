// Package obs is the repo's zero-dependency observability layer: a
// metrics registry rendering both the JSON /metrics document and
// Prometheus text exposition from one source of truth, log-bucketed
// lock-free latency histograms, and a request-scoped span tracer with
// a bounded trace ring and slow-query log. Everything here is built
// on the standard library only — no client_golang, no proto.
package obs

import (
	"math"
	"sync"
	"sync/atomic"
	"unsafe"
)

// Histogram buckets are log-spaced by factor √2 starting at 1µs, which
// spans 1µs .. ~5.8s in 45 buckets with ~41% resolution per bucket —
// good enough for p50/p99 on serve latencies while keeping each shard
// a few cache lines. Observations above the last boundary land in a
// final +Inf bucket.
const (
	histBuckets   = 46 // 45 finite + overflow
	histFirstNS   = 1000.0
	histGrowth    = 1.4142135623730951 // √2
	histShardMask = 7                  // 8 shards
)

// bucketBoundsNS()[i] is the inclusive upper bound of bucket i in
// nanoseconds; the last finite bound is index histBuckets-2 and the
// overflow bucket has no bound (+Inf).
var bucketBoundsNS = func() [histBuckets - 1]float64 {
	var b [histBuckets - 1]float64
	v := histFirstNS
	for i := range b {
		b[i] = v
		v *= histGrowth
	}
	return b
}()

func bucketFor(ns int64) int {
	if ns <= 0 {
		return 0
	}
	f := float64(ns)
	// log_√2(f/first) = 2*log2(f/first); cheaper than a scan for the
	// common mid-range observation and exact at the boundaries because
	// we round by comparison below.
	i := int(math.Ceil(2 * math.Log2(f/histFirstNS)))
	if i < 0 {
		i = 0
	}
	if i >= histBuckets-1 {
		return histBuckets - 1
	}
	// Float error can land us one bucket off either way; fix by direct
	// comparison against the precomputed bounds.
	for i > 0 && f <= bucketBoundsNS[i-1] {
		i--
	}
	for i < histBuckets-1 && f > bucketBoundsNS[i] {
		i++
	}
	return i
}

// histShard is padded to its own cache lines so concurrent observers
// on different shards never false-share.
type histShard struct {
	counts [histBuckets]atomic.Uint64
	sumNS  atomic.Int64
	count  atomic.Uint64
	maxNS  atomic.Int64
	_      [64]byte
}

// Histogram is a lock-free latency histogram: observations hash to one
// of 8 shards (by the stack address of a local, which spreads
// goroutines without any runtime dependency) and touch only atomics.
// Snapshots merge the shards; merged snapshots from many histograms
// compose the same way.
type Histogram struct {
	shards [histShardMask + 1]histShard
}

// Observe records a duration in nanoseconds.
func (h *Histogram) Observe(ns int64) {
	var probe byte
	// Multiply-shift hash of the probe's stack address: goroutine
	// stacks are well spread, so this distributes concurrent observers
	// across shards with zero coordination. The uintptr conversion is
	// immediate, so probe never escapes.
	p := uint64(uintptr(unsafe.Pointer(&probe)))
	s := &h.shards[(p*0x9E3779B97F4A7C15)>>58&histShardMask]
	s.counts[bucketFor(ns)].Add(1)
	s.sumNS.Add(ns)
	s.count.Add(1)
	for {
		cur := s.maxNS.Load()
		if ns <= cur || s.maxNS.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// HistSnapshot is a merged, immutable view of a histogram.
type HistSnapshot struct {
	Counts [histBuckets]uint64
	SumNS  int64
	Count  uint64
	MaxNS  int64
}

// Snapshot merges all shards. Concurrent observations may straddle the
// merge (count and sum are read independently), which is fine for
// monitoring: each field is individually monotone.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.shards {
		sh := &h.shards[i]
		for b := range sh.counts {
			s.Counts[b] += sh.counts[b].Load()
		}
		s.SumNS += sh.sumNS.Load()
		s.Count += sh.count.Load()
		if m := sh.maxNS.Load(); m > s.MaxNS {
			s.MaxNS = m
		}
	}
	return s
}

// Merge adds o into s.
func (s *HistSnapshot) Merge(o HistSnapshot) {
	for i := range s.Counts {
		s.Counts[i] += o.Counts[i]
	}
	s.SumNS += o.SumNS
	s.Count += o.Count
	if o.MaxNS > s.MaxNS {
		s.MaxNS = o.MaxNS
	}
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) in nanoseconds,
// linearly interpolated within the bucket that crosses the rank.
// Returns 0 for an empty snapshot.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		lo := 0.0
		if i > 0 {
			lo = bucketBoundsNS[i-1]
		}
		hi := s.observedBound(i)
		next := cum + float64(c)
		if next >= rank {
			frac := (rank - cum) / float64(c)
			return lo + frac*(hi-lo)
		}
		cum = next
	}
	return s.observedBound(histBuckets - 1)
}

// observedBound is the effective upper bound of bucket i: the bucket
// boundary, clamped by the observed max so overflow-bucket quantiles
// stay finite and meaningful.
func (s HistSnapshot) observedBound(i int) float64 {
	m := float64(s.MaxNS)
	if i >= histBuckets-1 {
		if m > bucketBoundsNS[histBuckets-2] {
			return m
		}
		return bucketBoundsNS[histBuckets-2] * histGrowth
	}
	b := bucketBoundsNS[i]
	if m > 0 && m < b {
		return m
	}
	return b
}

// Mean returns the mean observation in nanoseconds, 0 if empty.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.SumNS) / float64(s.Count)
}

// BucketBoundsSeconds returns the finite bucket upper bounds in
// seconds, shared by every Histogram (the exposition writer and the
// tests both need them).
func BucketBoundsSeconds() []float64 {
	out := make([]float64, histBuckets-1)
	for i, b := range bucketBoundsNS {
		out[i] = b / 1e9
	}
	return out
}

// HistogramVec is a labeled family of histograms: one Histogram per
// distinct label-value tuple, created on first use and cached forever
// (label cardinality here is small and bounded: endpoints × outcomes ×
// transports, or pipeline stages).
type HistogramVec struct {
	name   string
	help   string
	labels []string
	mu     sync.Mutex
	m      sync.Map // joined label values -> *Histogram
}

// With returns the histogram for the given label values (must match
// the declared label names in number and order).
func (v *HistogramVec) With(values ...string) *Histogram {
	if len(values) != len(v.labels) {
		panic("obs: label value count mismatch for " + v.name)
	}
	key := joinLabelValues(values)
	if h, ok := v.m.Load(key); ok {
		return h.(*Histogram)
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h, ok := v.m.Load(key); ok {
		return h.(*Histogram)
	}
	h := &Histogram{}
	v.m.Store(key, h)
	return h
}

func joinLabelValues(values []string) string {
	switch len(values) {
	case 0:
		return ""
	case 1:
		return values[0]
	}
	n := len(values) - 1
	for _, s := range values {
		n += len(s)
	}
	b := make([]byte, 0, n)
	for i, s := range values {
		if i > 0 {
			b = append(b, '\xff')
		}
		b = append(b, s...)
	}
	return string(b)
}

func splitLabelValues(key string, n int) []string {
	if n == 0 {
		return nil
	}
	out := make([]string, 0, n)
	start := 0
	for i := 0; i < len(key); i++ {
		if key[i] == '\xff' {
			out = append(out, key[start:i])
			start = i + 1
		}
	}
	return append(out, key[start:])
}
