package obs

import (
	"bufio"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WriteProm renders the registry as Prometheus text exposition
// (version 0.0.4): sorted families, each with # HELP and # TYPE lines,
// histograms as cumulative _bucket{le=...}/_sum/_count series with
// bounds in seconds. The output round-trips through ParseProm, which
// the CI soak and egload use as a strict lint.
func (r *Registry) WriteProm(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	for _, f := range r.snapshot() {
		writeHeader(bw, f)
		switch f.typ {
		case HistogramType:
			writeHistogramFamily(bw, f)
		default:
			for _, s := range f.collect() {
				writeSample(bw, f.name, f.labels, s.LabelValues, "", 0, s.Value)
			}
		}
	}
	return bw.Flush()
}

func writeHeader(w *bufio.Writer, f *family) {
	w.WriteString("# HELP ")
	w.WriteString(f.name)
	w.WriteByte(' ')
	w.WriteString(escapeHelp(f.help))
	w.WriteString("\n# TYPE ")
	w.WriteString(f.name)
	w.WriteByte(' ')
	w.WriteString(f.typ.String())
	w.WriteByte('\n')
}

func writeHistogramFamily(w *bufio.Writer, f *family) {
	type series struct {
		values []string
		snap   HistSnapshot
	}
	var all []series
	f.vec.m.Range(func(k, v any) bool {
		all = append(all, series{
			values: splitLabelValues(k.(string), len(f.labels)),
			snap:   v.(*Histogram).Snapshot(),
		})
		return true
	})
	sort.Slice(all, func(i, j int) bool {
		return joinLabelValues(all[i].values) < joinLabelValues(all[j].values)
	})
	bounds := BucketBoundsSeconds()
	for _, s := range all {
		var cum uint64
		for i, b := range bounds {
			cum += s.snap.Counts[i]
			writeSample(w, f.name+"_bucket", f.labels, s.values, "le", b, float64(cum))
		}
		cum += s.snap.Counts[len(s.snap.Counts)-1]
		w.WriteString(f.name + "_bucket")
		writeLabels(w, f.labels, s.values, "le", "+Inf")
		w.WriteByte(' ')
		w.WriteString(formatValue(float64(cum)))
		w.WriteByte('\n')
		writeSample(w, f.name+"_sum", f.labels, s.values, "", 0, float64(s.snap.SumNS)/1e9)
		writeSample(w, f.name+"_count", f.labels, s.values, "", 0, float64(s.snap.Count))
	}
}

// writeSample writes one series line. If extraName is non-empty an
// extra numeric label (the histogram le bound) is appended after the
// family labels.
func writeSample(w *bufio.Writer, name string, labels, values []string, extraName string, extraVal float64, v float64) {
	w.WriteString(name)
	extra := ""
	if extraName != "" {
		extra = formatLE(extraVal)
	}
	writeLabels(w, labels, values, extraName, extra)
	w.WriteByte(' ')
	w.WriteString(formatValue(v))
	w.WriteByte('\n')
}

func writeLabels(w *bufio.Writer, names, values []string, extraName, extraVal string) {
	if len(names) == 0 && extraName == "" {
		return
	}
	w.WriteByte('{')
	first := true
	for i, n := range names {
		if !first {
			w.WriteByte(',')
		}
		first = false
		w.WriteString(n)
		w.WriteString(`="`)
		w.WriteString(escapeLabel(values[i]))
		w.WriteByte('"')
	}
	if extraName != "" {
		if !first {
			w.WriteByte(',')
		}
		w.WriteString(extraName)
		w.WriteString(`="`)
		w.WriteString(extraVal)
		w.WriteByte('"')
	}
	w.WriteByte('}')
}

// formatLE renders a bucket bound compactly but losslessly, matching
// what the parser reads back.
func formatLE(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
