// Package rank implements ranking measures over evolving graphs:
//
//   - EvolvingPageRank: per-snapshot PageRank maintained as the graph
//     evolves, with warm-started power iteration — the workload of the
//     paper's ref. [2] (Bahmani, Kumar, Mahdian, Upfal: "PageRank on an
//     evolving graph"). Warm starting from the previous stamp's vector
//     is the incremental trick; the package benchmark shows it cutting
//     iteration counts vs cold starts while converging to the same
//     ranking.
//   - TemporalKatz: Katz centrality over the unfolded temporal graph,
//     computed as the power series Σ_k α^k (A_nᵀ)^k 1 (never
//     materialising A_n). On acyclic snapshots A_n is nilpotent
//     (Lemma 1) and the series is exact and finite.
//
// TemporalKatz evaluates its series terms by a neighbour gather over
// the graph's cached flat CSR view (DESIGN.md §8-9) by default;
// KatzOptions.UseBlockKernel selects the assembled block matrix kernel
// instead — the differential-testing oracle, bit-identical scores.
// EvolvingPageRank is per-snapshot by construction and runs directly on
// the per-stamp adjacency.
package rank

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/egraph"
)

// PageRankOptions configures the per-snapshot PageRank iteration.
type PageRankOptions struct {
	// Damping is the teleport-complement factor (default 0.85).
	Damping float64
	// Tol is the L1 convergence threshold (default 1e-10).
	Tol float64
	// MaxIter caps power iterations per snapshot (default 200).
	MaxIter int
	// ColdStart disables warm starting from the previous stamp's
	// vector (the ablation baseline).
	ColdStart bool
}

func (o *PageRankOptions) defaults() {
	if o.Damping == 0 {
		o.Damping = 0.85
	}
	if o.Tol == 0 {
		o.Tol = 1e-10
	}
	if o.MaxIter == 0 {
		o.MaxIter = 200
	}
}

// PageRankResult holds one PageRank vector per stamp plus the iteration
// counts the solver needed (the warm-start advantage shows up there).
type PageRankResult struct {
	// Scores[t][v] is node v's PageRank in snapshot t (restricted to
	// nodes active at t; inactive nodes hold 0).
	Scores [][]float64
	// Iterations[t] is the number of power iterations snapshot t took.
	Iterations []int
}

// TotalIterations sums the per-stamp iteration counts.
func (r *PageRankResult) TotalIterations() int {
	total := 0
	for _, it := range r.Iterations {
		total += it
	}
	return total
}

// EvolvingPageRank computes PageRank for every snapshot of g. Each
// snapshot's walk lives on its active nodes; dangling active nodes
// teleport uniformly. Unless ColdStart is set, stamp t's iteration is
// seeded with stamp t-1's vector (re-normalised over the new active
// set), which converges in far fewer sweeps when consecutive snapshots
// overlap — the ref. [2] observation.
func EvolvingPageRank(g *egraph.IntEvolvingGraph, opts PageRankOptions) (*PageRankResult, error) {
	opts.defaults()
	if opts.Damping <= 0 || opts.Damping >= 1 {
		return nil, fmt.Errorf("rank: damping %g outside (0,1)", opts.Damping)
	}
	n := g.NumNodes()
	res := &PageRankResult{
		Scores:     make([][]float64, g.NumStamps()),
		Iterations: make([]int, g.NumStamps()),
	}
	var prev []float64
	for t := 0; t < g.NumStamps(); t++ {
		act := g.ActiveNodes(t)
		m := act.Count()
		if m == 0 {
			res.Scores[t] = make([]float64, n)
			continue
		}
		x := make([]float64, n)
		if prev != nil && !opts.ColdStart {
			// Warm start: carry the previous vector over the new active
			// set, topping up newly active nodes uniformly.
			var mass float64
			for v := act.NextSet(0); v >= 0; v = act.NextSet(v + 1) {
				x[v] = prev[v]
				mass += prev[v]
			}
			if mass > 0 {
				for v := act.NextSet(0); v >= 0; v = act.NextSet(v + 1) {
					if x[v] == 0 {
						x[v] = mass / float64(m) // seed newcomers
					}
				}
			}
			normalize(x, act)
		} else {
			u := 1 / float64(m)
			for v := act.NextSet(0); v >= 0; v = act.NextSet(v + 1) {
				x[v] = u
			}
		}

		next := make([]float64, n)
		iters := 0
		for ; iters < opts.MaxIter; iters++ {
			var dangling float64
			for i := range next {
				next[i] = 0
			}
			for v := act.NextSet(0); v >= 0; v = act.NextSet(v + 1) {
				out := g.OutNeighbors(int32(v), int32(t))
				if len(out) == 0 {
					dangling += x[v]
					continue
				}
				share := x[v] / float64(len(out))
				for _, w := range out {
					next[w] += share
				}
			}
			teleport := (1 - opts.Damping) / float64(m)
			danglingShare := opts.Damping * dangling / float64(m)
			var delta float64
			for v := act.NextSet(0); v >= 0; v = act.NextSet(v + 1) {
				nv := opts.Damping*next[v] + teleport + danglingShare
				delta += math.Abs(nv - x[v])
				next[v] = nv
			}
			// Zero any mass that leaked to inactive targets (cannot
			// happen: out-neighbours at stamp t are active by Def. 3).
			x, next = next, x
			for i := range next {
				next[i] = 0
			}
			if delta < opts.Tol {
				iters++
				break
			}
		}
		res.Iterations[t] = iters
		normalize(x, act)
		res.Scores[t] = x
		prev = x
	}
	return res, nil
}

func normalize(x []float64, act interface {
	NextSet(int) int
}) {
	var sum float64
	for v := act.NextSet(0); v >= 0; v = act.NextSet(v + 1) {
		sum += x[v]
	}
	if sum == 0 {
		return
	}
	for v := act.NextSet(0); v >= 0; v = act.NextSet(v + 1) {
		x[v] /= sum
	}
}

// KatzOptions configures the temporal Katz computation.
type KatzOptions struct {
	// Alpha is the walk attenuation (default 0.1). For graphs with
	// cyclic snapshots it must satisfy α·ρ(A_n) < 1 to converge.
	Alpha float64
	// Mode selects the causal edge set.
	Mode egraph.CausalMode
	// Tol stops the series when a term's L1 mass falls below it
	// (default 1e-12).
	Tol float64
	// MaxTerms caps the series length (default 10·stamps + 100).
	MaxTerms int
	// UseBlockKernel evaluates the series through the assembled block
	// matrix A_nᵀ (matrix.Block.TMatVec) instead of the default gather
	// over the graph's flat CSR view. The two kernels accumulate in the
	// same order and return bit-identical scores; the block path is kept
	// as the differential-testing oracle.
	UseBlockKernel bool
}

// ErrKatzDiverged is returned when the power series fails to attenuate
// within MaxTerms (α too large for a cyclic graph).
var ErrKatzDiverged = errors.New("rank: Katz series did not converge (alpha too large?)")

// TemporalKatz returns, for every temporal node id (stamp-major t·N+v),
// the Katz score Σ_k α^k · (#temporal walks of length k ending there,
// from anywhere). High scores mark temporal nodes that many temporal
// paths flow into. The series terms are evaluated by an A_nᵀ
// neighbour-gather over the graph's flat CSR view (or the block matrix
// kernel under UseBlockKernel — same scores); inactive slots stay 0.
func TemporalKatz(g *egraph.IntEvolvingGraph, opts KatzOptions) ([]float64, error) {
	if opts.Alpha == 0 {
		opts.Alpha = 0.1
	}
	if opts.Alpha < 0 {
		return nil, fmt.Errorf("rank: negative alpha %g", opts.Alpha)
	}
	if opts.Tol == 0 {
		opts.Tol = 1e-12
	}
	if opts.MaxTerms == 0 {
		opts.MaxTerms = 10*g.NumStamps() + 100
	}
	var kernel func(dst, src []float64)
	if opts.UseBlockKernel {
		kernel = g.BlockMatrix(opts.Mode).TMatVec
	} else {
		csr := g.CSR()
		consecutive := opts.Mode == egraph.CausalConsecutive
		kernel = func(dst, src []float64) { csrTMatVec(csr, consecutive, dst, src) }
	}
	dim := g.NumStamps() * g.NumNodes()
	// Seed with 1 on every *active* temporal node.
	term := make([]float64, dim)
	for t := 0; t < g.NumStamps(); t++ {
		act := g.ActiveNodes(t)
		for v := act.NextSet(0); v >= 0; v = act.NextSet(v + 1) {
			term[t*g.NumNodes()+v] = 1
		}
	}
	score := append([]float64(nil), term...)
	next := make([]float64, dim)
	for k := 1; k <= opts.MaxTerms; k++ {
		kernel(next, term)
		var mass float64
		for i := range next {
			next[i] *= opts.Alpha
			mass += math.Abs(next[i])
		}
		if mass < opts.Tol {
			return score, nil
		}
		for i := range next {
			score[i] += next[i]
		}
		term, next = next, term
	}
	return nil, ErrKatzDiverged
}

// csrTMatVec computes dst = A_nᵀ·src by gathering over the flat CSR
// view: the score flowing into temporal node (v, t) is the sum of src
// over v's static in-neighbours at t (ascending) plus v's earlier
// active stamps (ascending; just the previous one under consecutive
// mode). That is exactly the accumulation order of the block kernel —
// matrix.Block.TMatVec runs the diagonal CSC column sum first, then the
// ⊙-masked causal blocks in ascending stamp order — so the two kernels
// produce bit-identical floating-point results, which the package's
// differential test asserts. Inactive slots are written 0, matching the
// block kernel's empty columns.
func csrTMatVec(csr *egraph.CSR, consecutive bool, dst, src []float64) {
	n := int32(csr.N)
	for id := range dst {
		if csr.ActPos[id] < 0 {
			dst[id] = 0
			continue
		}
		var s float64
		for _, u := range csr.InArcs(int32(id)) {
			s += src[u]
		}
		stamps, v := csr.CausalArcs(int32(id), false, consecutive)
		for _, t := range stamps {
			if x := src[t*n+v]; x != 0 {
				s += x
			}
		}
		dst[id] = s
	}
}
