package rank

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/egraph"
	"repro/internal/gen"
)

func TestEvolvingPageRankSumsToOne(t *testing.T) {
	g := egraph.Figure1Graph()
	res, err := EvolvingPageRank(g, PageRankOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scores) != 3 {
		t.Fatalf("stamps = %d", len(res.Scores))
	}
	for ts, scores := range res.Scores {
		var sum float64
		act := g.ActiveNodes(ts)
		for v := act.NextSet(0); v >= 0; v = act.NextSet(v + 1) {
			if scores[v] <= 0 {
				t.Fatalf("stamp %d: active node %d has score %g", ts, v, scores[v])
			}
			sum += scores[v]
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("stamp %d: scores sum to %g", ts, sum)
		}
		// Inactive nodes carry no mass.
		for v := 0; v < g.NumNodes(); v++ {
			if !g.IsActive(int32(v), int32(ts)) && scores[v] != 0 {
				t.Fatalf("stamp %d: inactive node %d has score %g", ts, v, scores[v])
			}
		}
	}
}

func TestPageRankSinkDominates(t *testing.T) {
	// Star into node 0 at one stamp: 0 must outrank the spokes.
	b := egraph.NewBuilder(true)
	for v := int32(1); v <= 5; v++ {
		b.AddEdge(v, 0, 1)
	}
	g := b.Build()
	res, err := EvolvingPageRank(g, PageRankOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Scores[0]
	for v := 1; v <= 5; v++ {
		if s[0] <= s[v] {
			t.Fatalf("hub score %g not above spoke %g", s[0], s[v])
		}
	}
}

// Warm and cold starts converge to the same per-stamp ranking, and the
// warm start takes no more total iterations on slowly changing graphs.
func TestPageRankWarmStartAgreesAndSavesIterations(t *testing.T) {
	// A slowly evolving graph: consecutive snapshots share most edges.
	b := egraph.NewBuilder(true)
	rng := rand.New(rand.NewSource(5))
	const n = 60
	type e struct{ u, v int32 }
	var base []e
	for i := 0; i < 240; i++ {
		base = append(base, e{int32(rng.Intn(n)), int32(rng.Intn(n))})
	}
	for ts := int64(1); ts <= 6; ts++ {
		for i, ed := range base {
			// Perturb 5% of edges per stamp.
			if rng.Intn(20) == 0 {
				base[i] = e{int32(rng.Intn(n)), int32(rng.Intn(n))}
			}
			b.AddEdge(ed.u, ed.v, ts)
		}
	}
	g := b.Build()

	warm, err := EvolvingPageRank(g, PageRankOptions{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := EvolvingPageRank(g, PageRankOptions{Tol: 1e-12, ColdStart: true})
	if err != nil {
		t.Fatal(err)
	}
	for ts := range warm.Scores {
		for v := range warm.Scores[ts] {
			if math.Abs(warm.Scores[ts][v]-cold.Scores[ts][v]) > 1e-6 {
				t.Fatalf("stamp %d node %d: warm %g vs cold %g",
					ts, v, warm.Scores[ts][v], cold.Scores[ts][v])
			}
		}
	}
	if warm.TotalIterations() > cold.TotalIterations() {
		t.Fatalf("warm start took %d iterations, cold %d",
			warm.TotalIterations(), cold.TotalIterations())
	}
	// The first stamp has no warm start, so later stamps must be where
	// the saving comes from.
	if warm.Iterations[0] != cold.Iterations[0] {
		t.Fatal("first stamp should be identical")
	}
}

func TestPageRankBadDamping(t *testing.T) {
	g := egraph.Figure1Graph()
	for _, d := range []float64{-0.1, 1.0, 1.5} {
		if _, err := EvolvingPageRank(g, PageRankOptions{Damping: d}); err == nil {
			t.Fatalf("damping %g should fail", d)
		}
	}
}

// Property: PageRank mass is conserved per stamp on random graphs.
func TestPageRankMassConservation(t *testing.T) {
	f := func(seed int64, directed bool) bool {
		rng := rand.New(rand.NewSource(seed))
		b := egraph.NewBuilder(directed)
		n := 2 + rng.Intn(10)
		stamps := 1 + rng.Intn(4)
		for e := 0; e < 3*n; e++ {
			b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)), int64(1+rng.Intn(stamps)))
		}
		b.AddEdge(0, 1, 1)
		g := b.Build()
		res, err := EvolvingPageRank(g, PageRankOptions{})
		if err != nil {
			return false
		}
		for ts, scores := range res.Scores {
			var sum float64
			for _, s := range scores {
				sum += s
			}
			if g.ActiveNodes(ts).Count() > 0 && math.Abs(sum-1) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestTemporalKatzFigure1(t *testing.T) {
	g := egraph.Figure1Graph()
	scores, err := TemporalKatz(g, KatzOptions{Alpha: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	id := func(v, s int) int { return s*g.NumNodes() + v }
	// Exact series on the nilpotent Fig. 1 block matrix (α = 1/2):
	// walks into (3,t3): one 1-hop from (2,t3), one 1-hop from (3,t2),
	// 2-hop and 3-hop continuations...
	// Sanity: the sink (3,t3) collects the most walk mass.
	sink := scores[id(2, 2)]
	for v := 0; v < 3; v++ {
		for s := 0; s < 3; s++ {
			if v == 2 && s == 2 {
				continue
			}
			if scores[id(v, s)] > sink {
				t.Fatalf("(%d,t%d) score %g exceeds sink %g", v+1, s+1, scores[id(v, s)], sink)
			}
		}
	}
	// Sources with no inbound walks keep exactly the seed value 1.
	if scores[id(0, 0)] != 1 {
		t.Fatalf("(1,t1) score = %g, want 1", scores[id(0, 0)])
	}
	// Inactive slots stay 0.
	if scores[id(2, 0)] != 0 {
		t.Fatalf("inactive (3,t1) score = %g, want 0", scores[id(2, 0)])
	}
}

// Exact check: on the Fig. 1 graph the Katz score of (3,t3) is
// 1 + α·(walks of 1 hop in) + α²·(2 hops) + α³·(3 hops).
// In-walk counts ending at (3,t3): 1-hop: 2 ((2,t3),(3,t2)); 2-hop: 3
// (via (2,t1)→(2,t3), (1,t2)→(3,t2), (3,t2) chains…) — computed from
// the A3ᵀ powers: col sums of e-basis. We derive them from the paper's
// A3 matrix directly.
func TestTemporalKatzExactSeries(t *testing.T) {
	g := egraph.Figure1Graph()
	alpha := 0.5
	scores, err := TemporalKatz(g, KatzOptions{Alpha: alpha})
	if err != nil {
		t.Fatal(err)
	}
	// Walk counts into (3,t3) by length, from the unfolded DAG:
	// len1: (2,t3)→, (3,t2)→  = 2
	// len2: (2,t1)→(2,t3)→, (1,t2)→(3,t2)→ = 2... plus (1,t1)→(1,t2)?
	//       that ends at (1,t2). Into (3,t3): paths of length 2:
	//       (2,t1)→(2,t3)→(3,t3), (1,t2)→(3,t2)→(3,t3) = 2
	// len3: (1,t1)→(2,t1)→(2,t3)→(3,t3), (1,t1)→(1,t2)→(3,t2)→(3,t3) = 2
	want := 1 + alpha*2 + alpha*alpha*2 + alpha*alpha*alpha*2
	got := scores[2*g.NumNodes()+2]
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("Katz((3,t3)) = %g, want %g", got, want)
	}
}

func TestTemporalKatzDivergence(t *testing.T) {
	// 2-cycle at one stamp with α = 1: series cannot attenuate.
	b := egraph.NewBuilder(true)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 0, 1)
	g := b.Build()
	if _, err := TemporalKatz(g, KatzOptions{Alpha: 1.0, MaxTerms: 50}); err != ErrKatzDiverged {
		t.Fatalf("err = %v, want ErrKatzDiverged", err)
	}
	// Small α converges even with the cycle.
	if _, err := TemporalKatz(g, KatzOptions{Alpha: 0.3}); err != nil {
		t.Fatal(err)
	}
}

func TestTemporalKatzBadAlpha(t *testing.T) {
	g := egraph.Figure1Graph()
	if _, err := TemporalKatz(g, KatzOptions{Alpha: -1}); err == nil {
		t.Fatal("negative alpha should fail")
	}
}

func TestPageRankOnCitationNetwork(t *testing.T) {
	g, _ := gen.Citation(gen.DefaultCitationConfig())
	res, err := EvolvingPageRank(g, PageRankOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scores) != g.NumStamps() {
		t.Fatal("stamp count mismatch")
	}
	warmIters := res.TotalIterations()
	cold, err := EvolvingPageRank(g, PageRankOptions{ColdStart: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("citation network: warm %d iters vs cold %d", warmIters, cold.TotalIterations())
}

// Differential kernel equivalence: the CSR gather and the block matrix
// kernel accumulate each temporal node's in-flow in the same order, so
// TemporalKatz must return float-bit-identical scores either way, across
// causal modes and generator workloads.
func assertKatzKernelsAgree(t *testing.T, g *egraph.IntEvolvingGraph, alpha float64, label string) {
	t.Helper()
	for _, mode := range []egraph.CausalMode{egraph.CausalAllPairs, egraph.CausalConsecutive} {
		opts := KatzOptions{Alpha: alpha, Mode: mode}
		got, err1 := TemporalKatz(g, opts)
		opts.UseBlockKernel = true
		want, err2 := TemporalKatz(g, opts)
		if err1 != err2 {
			t.Fatalf("%s mode %v: kernel errors diverge: csr %v, block %v", label, mode, err1, err2)
		}
		if err1 != nil {
			continue // both diverged identically
		}
		if len(got) != len(want) {
			t.Fatalf("%s mode %v: score lengths diverge: %d vs %d", label, mode, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s mode %v: score[%d] diverges: csr %v, block %v", label, mode, i, got[i], want[i])
			}
		}
	}
}

func TestTemporalKatzKernelEquivalence(t *testing.T) {
	assertKatzKernelsAgree(t, egraph.Figure1Graph(), 0.5, "figure1")
	cfg := gen.DefaultCitationConfig()
	cfg.Authors = 50
	cfg.Stamps = 6
	cite, _ := gen.Citation(cfg)
	assertKatzKernelsAgree(t, cite, 0.05, "citation")
	assertKatzKernelsAgree(t, gen.GNP(30, 4, 0.05, true, 5), 0.05, "gnp")

	f := func(seed int64, directed bool) bool {
		rng := rand.New(rand.NewSource(seed))
		b := egraph.NewBuilder(directed)
		n := 2 + rng.Intn(8)
		stamps := 1 + rng.Intn(4)
		for e := 0; e < rng.Intn(3*n); e++ {
			b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)), int64(1+rng.Intn(stamps)))
		}
		b.AddEdge(0, 1, 1)
		assertKatzKernelsAgree(t, b.Build(), 0.02, "random")
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
