package ds

// UnionFind is a disjoint-set forest with union by rank and path
// halving. It backs the weakly-connected-component computation over
// unfolded evolving graphs.
type UnionFind struct {
	parent []int32
	rank   []int8
	sets   int
}

// NewUnionFind returns n singleton sets {0}, …, {n-1}.
func NewUnionFind(n int) *UnionFind {
	u := &UnionFind{parent: make([]int32, n), rank: make([]int8, n), sets: n}
	for i := range u.parent {
		u.parent[i] = int32(i)
	}
	return u
}

// Find returns the representative of x's set.
func (u *UnionFind) Find(x int) int {
	p := int32(x)
	for u.parent[p] != p {
		u.parent[p] = u.parent[u.parent[p]] // path halving
		p = u.parent[p]
	}
	return int(p)
}

// Union merges the sets of x and y; it reports whether a merge happened
// (false if they were already together).
func (u *UnionFind) Union(x, y int) bool {
	rx, ry := int32(u.Find(x)), int32(u.Find(y))
	if rx == ry {
		return false
	}
	if u.rank[rx] < u.rank[ry] {
		rx, ry = ry, rx
	}
	u.parent[ry] = rx
	if u.rank[rx] == u.rank[ry] {
		u.rank[rx]++
	}
	u.sets--
	return true
}

// Same reports whether x and y share a set.
func (u *UnionFind) Same(x, y int) bool { return u.Find(x) == u.Find(y) }

// Remap mirrors u into a fresh union-find over n elements under the
// injection f: f(x) inherits x's forest links, so f(a) and f(b) share a
// set exactly when a and b did; elements of [0,n) outside f's image
// stay singletons. f must map [0,len) injectively into [0,n).
func (u *UnionFind) Remap(n int, f func(int) int) *UnionFind {
	nu := NewUnionFind(n)
	for i := range u.parent {
		fi := f(i)
		nu.parent[fi] = int32(f(int(u.parent[i])))
		nu.rank[fi] = u.rank[i]
	}
	nu.sets = n - (len(u.parent) - u.sets)
	return nu
}

// Sets returns the number of disjoint sets remaining.
func (u *UnionFind) Sets() int { return u.sets }
