package ds

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestUnionFindBasic(t *testing.T) {
	u := NewUnionFind(5)
	if u.Sets() != 5 {
		t.Fatalf("Sets = %d, want 5", u.Sets())
	}
	if !u.Union(0, 1) {
		t.Fatal("first union returned false")
	}
	if u.Union(1, 0) {
		t.Fatal("repeat union returned true")
	}
	u.Union(2, 3)
	if u.Sets() != 3 {
		t.Fatalf("Sets = %d, want 3", u.Sets())
	}
	if !u.Same(0, 1) || u.Same(0, 2) {
		t.Fatal("Same wrong")
	}
	u.Union(1, 3)
	if !u.Same(0, 2) {
		t.Fatal("transitive union failed")
	}
	if u.Same(0, 4) {
		t.Fatal("singleton leaked into set")
	}
}

func TestUnionFindFindIsCanonical(t *testing.T) {
	u := NewUnionFind(10)
	for i := 0; i < 9; i++ {
		u.Union(i, i+1)
	}
	root := u.Find(0)
	for i := 1; i < 10; i++ {
		if u.Find(i) != root {
			t.Fatalf("Find(%d) = %d, want %d", i, u.Find(i), root)
		}
	}
	if u.Sets() != 1 {
		t.Fatalf("Sets = %d, want 1", u.Sets())
	}
}

// Property: Remap under a random injection preserves exactly the
// original Same relation, leaves unmapped elements singleton, and keeps
// the set count consistent.
func TestUnionFindRemap(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		u := NewUnionFind(n)
		for op := 0; op < n; op++ {
			u.Union(rng.Intn(n), rng.Intn(n))
		}
		m := n + rng.Intn(20)
		perm := rng.Perm(m)[:n] // injection [0,n) → [0,m)
		image := make(map[int]bool, n)
		for _, p := range perm {
			image[p] = true
		}
		nu := u.Remap(m, func(x int) int { return perm[x] })
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if nu.Same(perm[a], perm[b]) != u.Same(a, b) {
					return false
				}
			}
		}
		for x := 0; x < m; x++ {
			if !image[x] && nu.Find(x) != x {
				return false
			}
		}
		return nu.Sets() == m-(n-u.Sets())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: UnionFind agrees with a naive label-propagation model.
func TestUnionFindMatchesModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(60)
		u := NewUnionFind(n)
		label := make([]int, n)
		for i := range label {
			label[i] = i
		}
		relabel := func(from, to int) {
			for i := range label {
				if label[i] == from {
					label[i] = to
				}
			}
		}
		for op := 0; op < 150; op++ {
			x, y := rng.Intn(n), rng.Intn(n)
			switch rng.Intn(2) {
			case 0:
				merged := u.Union(x, y)
				if merged != (label[x] != label[y]) {
					return false
				}
				relabel(label[x], label[y])
			case 1:
				if u.Same(x, y) != (label[x] == label[y]) {
					return false
				}
			}
		}
		distinct := map[int]bool{}
		for _, l := range label {
			distinct[l] = true
		}
		return u.Sets() == len(distinct)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
