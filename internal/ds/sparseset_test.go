package ds

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSparseSetBasic(t *testing.T) {
	s := NewSparseSet(10)
	if s.Len() != 0 {
		t.Fatal("new set not empty")
	}
	if !s.Add(3) || !s.Add(7) {
		t.Fatal("Add of new element returned false")
	}
	if s.Add(3) {
		t.Fatal("Add of existing element returned true")
	}
	if !s.Contains(3) || !s.Contains(7) || s.Contains(5) {
		t.Fatal("Contains wrong")
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
}

func TestSparseSetInsertionOrder(t *testing.T) {
	s := NewSparseSet(100)
	want := []int{42, 7, 99, 0}
	for _, v := range want {
		s.Add(v)
	}
	got := s.Members()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Members = %v, want %v", got, want)
		}
	}
}

func TestSparseSetRemove(t *testing.T) {
	s := NewSparseSet(10)
	s.Add(1)
	s.Add(2)
	s.Add(3)
	if !s.Remove(2) {
		t.Fatal("Remove of member returned false")
	}
	if s.Remove(2) {
		t.Fatal("Remove of non-member returned true")
	}
	if s.Contains(2) || !s.Contains(1) || !s.Contains(3) {
		t.Fatal("membership wrong after Remove")
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
}

func TestSparseSetClear(t *testing.T) {
	s := NewSparseSet(10)
	s.Add(4)
	s.Clear()
	if s.Len() != 0 || s.Contains(4) {
		t.Fatal("Clear did not empty set")
	}
	// Stale sparse entries must not resurrect members.
	s.Add(5)
	if s.Contains(4) {
		t.Fatal("stale member visible after Clear")
	}
}

// Property: SparseSet agrees with a map model.
func TestSparseSetMatchesModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		s := NewSparseSet(n)
		model := make(map[int]bool)
		for op := 0; op < 500; op++ {
			v := rng.Intn(n)
			switch rng.Intn(4) {
			case 0:
				if s.Add(v) == model[v] {
					return false
				}
				model[v] = true
			case 1:
				if s.Remove(v) != model[v] {
					return false
				}
				delete(model, v)
			case 2:
				if s.Contains(v) != model[v] {
					return false
				}
			case 3:
				s.Clear()
				model = make(map[int]bool)
			}
			if s.Len() != len(model) {
				return false
			}
		}
		got := append([]int(nil), s.Members()...)
		sort.Ints(got)
		want := make([]int, 0, len(model))
		for v := range model {
			want = append(want, v)
		}
		sort.Ints(want)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
