// Package ds provides the low-level data structures shared by the
// evolving-graph traversal code: bitsets (plain and atomic), reusable
// BFS frontier scratch, ring-buffer queues, sparse sets, binary heaps
// and union-find. Everything is allocation-conscious; these types sit
// on the hot path of every BFS in the repository — the CSR/bitset
// engine (DESIGN.md §8) runs entirely on BitSet, AtomicBitSet and
// Frontier.
package ds

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// BitSet is a fixed-capacity dense bitset. The zero value is an empty set
// of capacity zero; use NewBitSet to allocate capacity up front.
type BitSet struct {
	words []uint64
	n     int // capacity in bits
}

// NewBitSet returns a BitSet able to hold bits [0, n).
func NewBitSet(n int) *BitSet {
	if n < 0 {
		panic("ds: negative BitSet size")
	}
	return &BitSet{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// Len returns the capacity in bits.
func (b *BitSet) Len() int { return b.n }

// Set sets bit i.
func (b *BitSet) Set(i int) {
	b.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Clear clears bit i.
func (b *BitSet) Clear(i int) {
	b.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Get reports whether bit i is set.
func (b *BitSet) Get(i int) bool {
	return b.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// TestAndSet sets bit i and reports whether it was already set.
func (b *BitSet) TestAndSet(i int) bool {
	w := &b.words[i/wordBits]
	mask := uint64(1) << (uint(i) % wordBits)
	old := *w&mask != 0
	*w |= mask
	return old
}

// Count returns the number of set bits.
func (b *BitSet) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Reset clears every bit without reallocating.
func (b *BitSet) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// ResetFirst clears all bits below n, rounding up to a whole word (so up
// to 63 bits above n may clear too, never fewer). Callers that know only
// a prefix of a large set is dirty avoid Reset's full-capacity sweep.
func (b *BitSet) ResetFirst(n int) {
	if n >= b.n {
		b.Reset()
		return
	}
	words := (n + wordBits - 1) / wordBits
	for i := 0; i < words; i++ {
		b.words[i] = 0
	}
}

// Any reports whether at least one bit is set.
func (b *BitSet) Any() bool {
	for _, w := range b.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// NextSet returns the index of the first set bit at or after i, or -1 if
// there is none. It allows iteration:
//
//	for i := s.NextSet(0); i >= 0; i = s.NextSet(i + 1) { ... }
func (b *BitSet) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= b.n {
		return -1
	}
	wi := i / wordBits
	w := b.words[wi] >> (uint(i) % wordBits)
	if w != 0 {
		r := i + bits.TrailingZeros64(w)
		if r >= b.n {
			return -1
		}
		return r
	}
	for wi++; wi < len(b.words); wi++ {
		if b.words[wi] != 0 {
			r := wi*wordBits + bits.TrailingZeros64(b.words[wi])
			if r >= b.n {
				return -1
			}
			return r
		}
	}
	return -1
}

// Or sets b to the union of b and other. The sets must have equal capacity.
func (b *BitSet) Or(other *BitSet) {
	if b.n != other.n {
		panic("ds: BitSet size mismatch in Or")
	}
	for i, w := range other.words {
		b.words[i] |= w
	}
}

// And sets b to the intersection of b and other.
func (b *BitSet) And(other *BitSet) {
	if b.n != other.n {
		panic("ds: BitSet size mismatch in And")
	}
	for i, w := range other.words {
		b.words[i] &= w
	}
}

// AndNot clears every bit of b that is set in other.
func (b *BitSet) AndNot(other *BitSet) {
	if b.n != other.n {
		panic("ds: BitSet size mismatch in AndNot")
	}
	for i, w := range other.words {
		b.words[i] &^= w
	}
}

// AndNotCount returns the number of bits set in b but not in other —
// Count of (b AND NOT other) — without materialising the difference.
// The sets must have equal capacity. This is the marginal-gain kernel of
// influence.Greedy's CELF loop, where a Clone-and-AndNot per heap
// re-evaluation would allocate on every lazy update.
func (b *BitSet) AndNotCount(other *BitSet) int {
	if b.n != other.n {
		panic("ds: BitSet size mismatch in AndNotCount")
	}
	c := 0
	for i, w := range b.words {
		c += bits.OnesCount64(w &^ other.words[i])
	}
	return c
}

// Clone returns an independent copy.
func (b *BitSet) Clone() *BitSet {
	c := &BitSet{words: make([]uint64, len(b.words)), n: b.n}
	copy(c.words, b.words)
	return c
}

// Equal reports whether b and other hold the same bits and capacity.
func (b *BitSet) Equal(other *BitSet) bool {
	if b.n != other.n {
		return false
	}
	for i, w := range b.words {
		if w != other.words[i] {
			return false
		}
	}
	return true
}

// Slice appends the indices of all set bits to dst and returns it.
func (b *BitSet) Slice(dst []int) []int {
	for i := b.NextSet(0); i >= 0; i = b.NextSet(i + 1) {
		dst = append(dst, i)
	}
	return dst
}

// String renders the set as {i, j, ...} for debugging.
func (b *BitSet) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	first := true
	for i := b.NextSet(0); i >= 0; i = b.NextSet(i + 1) {
		if !first {
			sb.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&sb, "%d", i)
	}
	sb.WriteByte('}')
	return sb.String()
}
