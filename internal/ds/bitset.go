// Package ds provides the low-level data structures shared by the
// evolving-graph traversal code: bitsets (plain and atomic), reusable
// BFS frontier scratch, ring-buffer queues, sparse sets, binary heaps
// and union-find. Everything is allocation-conscious; these types sit
// on the hot path of every BFS in the repository — the CSR/bitset
// engine (DESIGN.md §8) runs entirely on BitSet, AtomicBitSet and
// Frontier.
package ds

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// BitSet is a fixed-capacity dense bitset. The zero value is an empty set
// of capacity zero; use NewBitSet to allocate capacity up front.
type BitSet struct {
	words []uint64
	n     int // capacity in bits
}

// NewBitSet returns a BitSet able to hold bits [0, n).
func NewBitSet(n int) *BitSet {
	if n < 0 {
		panic("ds: negative BitSet size")
	}
	return &BitSet{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// Len returns the capacity in bits.
func (b *BitSet) Len() int { return b.n }

// Set sets bit i.
func (b *BitSet) Set(i int) {
	b.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Clear clears bit i.
func (b *BitSet) Clear(i int) {
	b.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Get reports whether bit i is set.
func (b *BitSet) Get(i int) bool {
	return b.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// TestAndSet sets bit i and reports whether it was already set.
func (b *BitSet) TestAndSet(i int) bool {
	w := &b.words[i/wordBits]
	mask := uint64(1) << (uint(i) % wordBits)
	old := *w&mask != 0
	*w |= mask
	return old
}

// Count returns the number of set bits.
func (b *BitSet) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Reset clears every bit without reallocating.
func (b *BitSet) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// ResetFirst clears all bits below n, rounding up to a whole word (so up
// to 63 bits above n may clear too, never fewer). Callers that know only
// a prefix of a large set is dirty avoid Reset's full-capacity sweep.
func (b *BitSet) ResetFirst(n int) {
	if n >= b.n {
		b.Reset()
		return
	}
	words := (n + wordBits - 1) / wordBits
	for i := 0; i < words; i++ {
		b.words[i] = 0
	}
}

// Any reports whether at least one bit is set.
func (b *BitSet) Any() bool {
	for _, w := range b.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// NextSet returns the index of the first set bit at or after i, or -1 if
// there is none. It allows iteration:
//
//	for i := s.NextSet(0); i >= 0; i = s.NextSet(i + 1) { ... }
func (b *BitSet) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= b.n {
		return -1
	}
	wi := i / wordBits
	w := b.words[wi] >> (uint(i) % wordBits)
	if w != 0 {
		r := i + bits.TrailingZeros64(w)
		if r >= b.n {
			return -1
		}
		return r
	}
	for wi++; wi < len(b.words); wi++ {
		if b.words[wi] != 0 {
			r := wi*wordBits + bits.TrailingZeros64(b.words[wi])
			if r >= b.n {
				return -1
			}
			return r
		}
	}
	return -1
}

// Or sets b to the union of b and other. The sets must have equal capacity.
func (b *BitSet) Or(other *BitSet) {
	if b.n != other.n {
		panic("ds: BitSet size mismatch in Or")
	}
	for i, w := range other.words {
		b.words[i] |= w
	}
}

// And sets b to the intersection of b and other.
func (b *BitSet) And(other *BitSet) {
	if b.n != other.n {
		panic("ds: BitSet size mismatch in And")
	}
	for i, w := range other.words {
		b.words[i] &= w
	}
}

// AndNot clears every bit of b that is set in other.
func (b *BitSet) AndNot(other *BitSet) {
	if b.n != other.n {
		panic("ds: BitSet size mismatch in AndNot")
	}
	for i, w := range other.words {
		b.words[i] &^= w
	}
}

// AndNotCount returns the number of bits set in b but not in other —
// Count of (b AND NOT other) — without materialising the difference.
// The sets must have equal capacity. This is the marginal-gain kernel of
// influence.Greedy's CELF loop, where a Clone-and-AndNot per heap
// re-evaluation would allocate on every lazy update.
func (b *BitSet) AndNotCount(other *BitSet) int {
	if b.n != other.n {
		panic("ds: BitSet size mismatch in AndNotCount")
	}
	c := 0
	for i, w := range b.words {
		c += bits.OnesCount64(w &^ other.words[i])
	}
	return c
}

// Clone returns an independent copy.
func (b *BitSet) Clone() *BitSet {
	c := &BitSet{words: make([]uint64, len(b.words)), n: b.n}
	copy(c.words, b.words)
	return c
}

// CloneGrow returns an independent copy with capacity for n bits,
// n ≥ b.Len(); the grown tail is zero. It is the copy-on-write path of
// egraph.Patch, where a delta introduces node ids beyond the base
// graph's universe.
func (b *BitSet) CloneGrow(n int) *BitSet {
	if n < b.n {
		panic("ds: CloneGrow capacity below current size")
	}
	c := NewBitSet(n)
	copy(c.words, b.words)
	return c
}

// Recap returns a BitSet of capacity n, reusing b's word storage when
// it is large enough (b may be nil). The result is zeroed either way.
// The caller must guarantee b is no longer in use — this is the
// arena-recycling path of the flat CSR build.
func Recap(b *BitSet, n int) *BitSet {
	words := (n + wordBits - 1) / wordBits
	if b == nil || cap(b.words) < words {
		return NewBitSet(n)
	}
	b.words = b.words[:words]
	for i := range b.words {
		b.words[i] = 0
	}
	b.n = n
	return b
}

// Blit ORs the first n bits of src into b starting at bit offset off
// (off+n must fit in b). It works word-at-a-time with shifts, so
// flattening T per-stamp active sets of n bits each into one N·T-bit
// set costs O(N·T/64) word operations rather than one Set per active
// node.
func (b *BitSet) Blit(src *BitSet, n, off int) {
	if n < 0 || off < 0 || off+n > b.n {
		panic("ds: Blit range out of bounds")
	}
	if n > src.n {
		panic("ds: Blit length exceeds source capacity")
	}
	words := n / wordBits
	shift := uint(off % wordBits)
	wi := off / wordBits
	if shift == 0 {
		for i := 0; i < words; i++ {
			b.words[wi+i] |= src.words[i]
		}
	} else {
		for i := 0; i < words; i++ {
			w := src.words[i]
			b.words[wi+i] |= w << shift
			b.words[wi+i+1] |= w >> (wordBits - shift)
		}
	}
	// Tail bits beyond the last whole source word.
	for i := words * wordBits; i < n; i++ {
		if src.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0 {
			b.Set(off + i)
		}
	}
}

// Equal reports whether b and other hold the same bits and capacity.
func (b *BitSet) Equal(other *BitSet) bool {
	if b.n != other.n {
		return false
	}
	for i, w := range b.words {
		if w != other.words[i] {
			return false
		}
	}
	return true
}

// Slice appends the indices of all set bits to dst and returns it.
func (b *BitSet) Slice(dst []int) []int {
	for i := b.NextSet(0); i >= 0; i = b.NextSet(i + 1) {
		dst = append(dst, i)
	}
	return dst
}

// String renders the set as {i, j, ...} for debugging.
func (b *BitSet) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	first := true
	for i := b.NextSet(0); i >= 0; i = b.NextSet(i + 1) {
		if !first {
			sb.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&sb, "%d", i)
	}
	sb.WriteByte('}')
	return sb.String()
}

// Words exposes the backing word slice, least-significant bit first.
// The slice aliases the set's storage: callers must treat it as
// read-only unless they own the set. Checkpoint I/O uses it to persist
// and map bitsets without copying.
func (b *BitSet) Words() []uint64 { return b.words }

// BitSetFromWords wraps an existing word slice as a BitSet of capacity
// n bits without copying; the set aliases words for its lifetime. The
// slice must hold exactly ceil(n/64) words and any bits at indices ≥ n
// in the final word must be zero (Count and the iteration helpers
// assume it). Used to serve bitsets straight out of an mmap'd
// checkpoint section.
func BitSetFromWords(words []uint64, n int) *BitSet {
	if want := (n + wordBits - 1) / wordBits; len(words) != want {
		panic(fmt.Sprintf("ds: BitSetFromWords: %d words for %d bits, want %d", len(words), n, want))
	}
	return &BitSet{words: words, n: n}
}
