package ds

import (
	"math/bits"
	"sync/atomic"
)

// AtomicBitSet is a fixed-capacity bitset safe for concurrent Set /
// TestAndSet / Get from multiple goroutines. It backs the shared
// "visited" map of the parallel BFS, where many workers race to claim
// newly discovered temporal nodes.
type AtomicBitSet struct {
	words []atomic.Uint64
	n     int
}

// NewAtomicBitSet returns an AtomicBitSet able to hold bits [0, n).
func NewAtomicBitSet(n int) *AtomicBitSet {
	if n < 0 {
		panic("ds: negative AtomicBitSet size")
	}
	return &AtomicBitSet{words: make([]atomic.Uint64, (n+wordBits-1)/wordBits), n: n}
}

// Len returns the capacity in bits.
func (b *AtomicBitSet) Len() int { return b.n }

// Set atomically sets bit i.
func (b *AtomicBitSet) Set(i int) {
	mask := uint64(1) << (uint(i) % wordBits)
	w := &b.words[i/wordBits]
	for {
		old := w.Load()
		if old&mask != 0 || w.CompareAndSwap(old, old|mask) {
			return
		}
	}
}

// Get reports whether bit i is set.
func (b *AtomicBitSet) Get(i int) bool {
	return b.words[i/wordBits].Load()&(1<<(uint(i)%wordBits)) != 0
}

// TestAndSet atomically sets bit i and reports whether it was already
// set. Exactly one concurrent caller observes false for a given bit.
func (b *AtomicBitSet) TestAndSet(i int) bool {
	mask := uint64(1) << (uint(i) % wordBits)
	w := &b.words[i/wordBits]
	for {
		old := w.Load()
		if old&mask != 0 {
			return true
		}
		if w.CompareAndSwap(old, old|mask) {
			return false
		}
	}
}

// Count returns the number of set bits. It is only meaningful once
// concurrent writers have quiesced.
func (b *AtomicBitSet) Count() int {
	c := 0
	for i := range b.words {
		c += bits.OnesCount64(b.words[i].Load())
	}
	return c
}

// Reset clears all bits. Not safe to call concurrently with writers.
func (b *AtomicBitSet) Reset() {
	for i := range b.words {
		b.words[i].Store(0)
	}
}
