package ds

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIntQueueFIFO(t *testing.T) {
	q := NewIntQueue(2)
	for i := 0; i < 10; i++ {
		q.Push(i)
	}
	if q.Len() != 10 {
		t.Fatalf("Len = %d, want 10", q.Len())
	}
	for i := 0; i < 10; i++ {
		if got := q.Pop(); got != i {
			t.Fatalf("Pop = %d, want %d", got, i)
		}
	}
	if !q.Empty() {
		t.Fatal("queue should be empty")
	}
}

func TestIntQueueWrapAround(t *testing.T) {
	q := NewIntQueue(4)
	// Interleave pushes and pops so head/tail wrap the ring repeatedly.
	next, expect := 0, 0
	for round := 0; round < 50; round++ {
		for i := 0; i < 3; i++ {
			q.Push(next)
			next++
		}
		for i := 0; i < 2; i++ {
			if got := q.Pop(); got != expect {
				t.Fatalf("Pop = %d, want %d", got, expect)
			}
			expect++
		}
	}
	for !q.Empty() {
		if got := q.Pop(); got != expect {
			t.Fatalf("drain Pop = %d, want %d", got, expect)
		}
		expect++
	}
	if expect != next {
		t.Fatalf("drained %d items, pushed %d", expect, next)
	}
}

func TestIntQueueZeroValue(t *testing.T) {
	var q IntQueue
	q.Push(42)
	if q.Peek() != 42 {
		t.Fatalf("Peek = %d, want 42", q.Peek())
	}
	if q.Pop() != 42 {
		t.Fatal("Pop != 42")
	}
}

func TestIntQueueReset(t *testing.T) {
	q := NewIntQueue(4)
	q.Push(1)
	q.Push(2)
	q.Reset()
	if !q.Empty() {
		t.Fatal("Reset did not empty queue")
	}
	q.Push(3)
	if q.Pop() != 3 {
		t.Fatal("queue broken after Reset")
	}
}

func TestIntQueuePopEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewIntQueue(1).Pop()
}

func TestIntQueuePeekEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewIntQueue(1).Peek()
}

// Property: IntQueue behaves like a slice-backed FIFO model.
func TestIntQueueMatchesModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := NewIntQueue(1)
		var model []int
		for op := 0; op < 1000; op++ {
			if rng.Intn(2) == 0 || len(model) == 0 {
				v := rng.Int()
				q.Push(v)
				model = append(model, v)
			} else {
				if q.Pop() != model[0] {
					return false
				}
				model = model[1:]
			}
			if q.Len() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
