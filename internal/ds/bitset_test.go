package ds

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitSetResetFirst(t *testing.T) {
	b := NewBitSet(256)
	for _, i := range []int{0, 63, 64, 127, 128, 255} {
		b.Set(i)
	}
	b.ResetFirst(65) // rounds up to 2 whole words: bits [0,128) clear
	for _, i := range []int{0, 63, 64, 127} {
		if b.Get(i) {
			t.Fatalf("bit %d survived ResetFirst(65)", i)
		}
	}
	for _, i := range []int{128, 255} {
		if !b.Get(i) {
			t.Fatalf("bit %d beyond the swept words was cleared", i)
		}
	}
	b.ResetFirst(10_000) // past capacity: full reset
	if b.Any() {
		t.Fatal("ResetFirst past capacity left bits set")
	}
}

func TestBitSetBasic(t *testing.T) {
	b := NewBitSet(130)
	if b.Len() != 130 {
		t.Fatalf("Len = %d, want 130", b.Len())
	}
	if b.Any() {
		t.Fatal("new set should be empty")
	}
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if b.Get(i) {
			t.Fatalf("bit %d set in fresh set", i)
		}
		b.Set(i)
		if !b.Get(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	if got := b.Count(); got != 8 {
		t.Fatalf("Count = %d, want 8", got)
	}
	b.Clear(64)
	if b.Get(64) {
		t.Fatal("bit 64 still set after Clear")
	}
	if got := b.Count(); got != 7 {
		t.Fatalf("Count = %d, want 7", got)
	}
}

func TestBitSetTestAndSet(t *testing.T) {
	b := NewBitSet(10)
	if b.TestAndSet(3) {
		t.Fatal("first TestAndSet returned true")
	}
	if !b.TestAndSet(3) {
		t.Fatal("second TestAndSet returned false")
	}
	if !b.Get(3) {
		t.Fatal("bit not set")
	}
}

func TestBitSetNextSet(t *testing.T) {
	b := NewBitSet(200)
	want := []int{3, 64, 65, 150, 199}
	for _, i := range want {
		b.Set(i)
	}
	var got []int
	for i := b.NextSet(0); i >= 0; i = b.NextSet(i + 1) {
		got = append(got, i)
	}
	if len(got) != len(want) {
		t.Fatalf("iterated %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("iterated %v, want %v", got, want)
		}
	}
	if b.NextSet(200) != -1 {
		t.Fatal("NextSet past capacity should be -1")
	}
	if b.NextSet(-5) != 3 {
		t.Fatal("NextSet with negative start should clamp to 0")
	}
}

func TestBitSetNextSetEmpty(t *testing.T) {
	b := NewBitSet(100)
	if b.NextSet(0) != -1 {
		t.Fatal("NextSet on empty set should be -1")
	}
}

func TestBitSetSetOps(t *testing.T) {
	a := NewBitSet(100)
	b := NewBitSet(100)
	a.Set(1)
	a.Set(70)
	b.Set(70)
	b.Set(99)

	u := a.Clone()
	u.Or(b)
	if u.Count() != 3 || !u.Get(1) || !u.Get(70) || !u.Get(99) {
		t.Fatalf("union wrong: %v", u)
	}

	i := a.Clone()
	i.And(b)
	if i.Count() != 1 || !i.Get(70) {
		t.Fatalf("intersection wrong: %v", i)
	}

	d := a.Clone()
	d.AndNot(b)
	if d.Count() != 1 || !d.Get(1) {
		t.Fatalf("difference wrong: %v", d)
	}
}

func TestBitSetCloneIndependence(t *testing.T) {
	a := NewBitSet(64)
	a.Set(5)
	c := a.Clone()
	c.Set(6)
	if a.Get(6) {
		t.Fatal("mutating clone affected original")
	}
	if !c.Equal(c.Clone()) {
		t.Fatal("clone not Equal to itself")
	}
	if a.Equal(c) {
		t.Fatal("different sets reported Equal")
	}
}

func TestBitSetEqualDifferentSizes(t *testing.T) {
	if NewBitSet(10).Equal(NewBitSet(20)) {
		t.Fatal("sets of different capacity reported Equal")
	}
}

func TestBitSetReset(t *testing.T) {
	b := NewBitSet(100)
	b.Set(10)
	b.Set(90)
	b.Reset()
	if b.Any() || b.Count() != 0 {
		t.Fatal("Reset left bits set")
	}
}

func TestBitSetSliceAndString(t *testing.T) {
	b := NewBitSet(20)
	b.Set(2)
	b.Set(17)
	s := b.Slice(nil)
	if len(s) != 2 || s[0] != 2 || s[1] != 17 {
		t.Fatalf("Slice = %v", s)
	}
	if got := b.String(); got != "{2, 17}" {
		t.Fatalf("String = %q", got)
	}
	if got := NewBitSet(4).String(); got != "{}" {
		t.Fatalf("empty String = %q", got)
	}
}

// Property: a BitSet agrees with a map[int]bool model under a random
// operation sequence.
func TestBitSetMatchesModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(300)
		b := NewBitSet(n)
		model := make(map[int]bool)
		for op := 0; op < 500; op++ {
			i := rng.Intn(n)
			switch rng.Intn(3) {
			case 0:
				b.Set(i)
				model[i] = true
			case 1:
				b.Clear(i)
				delete(model, i)
			case 2:
				if b.Get(i) != model[i] {
					return false
				}
			}
		}
		if b.Count() != len(model) {
			return false
		}
		for i := b.NextSet(0); i >= 0; i = b.NextSet(i + 1) {
			if !model[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestBitSetNegativeSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBitSet(-1)
}

func TestBitSetMismatchedOrPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBitSet(10).Or(NewBitSet(20))
}

func TestBitSetAndNotCount(t *testing.T) {
	a := NewBitSet(130)
	b := NewBitSet(130)
	for _, i := range []int{0, 5, 63, 64, 100, 129} {
		a.Set(i)
	}
	for _, i := range []int{5, 64, 128} {
		b.Set(i)
	}
	if got := a.AndNotCount(b); got != 4 { // {0, 63, 100, 129}
		t.Fatalf("AndNotCount = %d, want 4", got)
	}
	// Must agree with the materialised difference and leave a unchanged.
	diff := a.Clone()
	diff.AndNot(b)
	if diff.Count() != a.AndNotCount(b) {
		t.Fatal("AndNotCount disagrees with AndNot+Count")
	}
	if a.Count() != 6 {
		t.Fatal("AndNotCount mutated its receiver")
	}
}

func TestBitSetMismatchedAndNotCountPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBitSet(10).AndNotCount(NewBitSet(20))
}

func TestBitSetCloneGrow(t *testing.T) {
	b := NewBitSet(70)
	b.Set(0)
	b.Set(69)
	g := b.CloneGrow(200)
	if g.Len() != 200 || !g.Get(0) || !g.Get(69) || g.Count() != 2 {
		t.Fatalf("CloneGrow lost bits: len=%d count=%d", g.Len(), g.Count())
	}
	g.Set(150)
	if b.Count() != 2 {
		t.Fatal("CloneGrow shares storage with the source")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("CloneGrow below current size did not panic")
		}
	}()
	b.CloneGrow(10)
}

func TestBitSetRecap(t *testing.T) {
	if b := Recap(nil, 100); b.Len() != 100 || b.Any() {
		t.Fatalf("Recap(nil) = len %d, any %v", b.Len(), b.Any())
	}
	big := NewBitSet(1000)
	big.Set(3)
	big.Set(999)
	words := &big.words[0]
	r := Recap(big, 500)
	if r.Len() != 500 || r.Any() {
		t.Fatalf("Recap did not zero: len=%d any=%v", r.Len(), r.Any())
	}
	if &r.words[0] != words {
		t.Fatal("Recap with sufficient capacity reallocated")
	}
	small := NewBitSet(10)
	if r := Recap(small, 640); r.Len() != 640 || r.Any() {
		t.Fatalf("Recap grow = len %d, any %v", r.Len(), r.Any())
	}
}

func TestBitSetBlit(t *testing.T) {
	// Property-check Blit against a bit-by-bit model across unaligned
	// offsets and lengths — the stamp-major Active flattening depends
	// on the shift arithmetic being exact.
	for _, tc := range []struct{ n, off, srcN int }{
		{64, 0, 64}, {64, 64, 64}, {63, 1, 70}, {130, 37, 200},
		{1, 63, 5}, {100, 101, 150}, {0, 10, 3},
	} {
		src := NewBitSet(tc.srcN)
		for i := 0; i < tc.srcN; i += 3 {
			src.Set(i)
		}
		dst := NewBitSet(tc.off + tc.n + 7)
		dst.Set(0) // pre-existing bits must survive (Blit ORs)
		dst.Blit(src, tc.n, tc.off)
		for i := 0; i < dst.Len(); i++ {
			want := i == 0
			if i >= tc.off && i < tc.off+tc.n {
				want = want || src.Get(i-tc.off)
			}
			if dst.Get(i) != want {
				t.Fatalf("n=%d off=%d: bit %d = %v, want %v", tc.n, tc.off, i, dst.Get(i), want)
			}
		}
	}
}
