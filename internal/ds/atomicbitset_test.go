package ds

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestAtomicBitSetBasic(t *testing.T) {
	b := NewAtomicBitSet(130)
	if b.Len() != 130 {
		t.Fatalf("Len = %d, want 130", b.Len())
	}
	b.Set(0)
	b.Set(64)
	b.Set(129)
	for _, i := range []int{0, 64, 129} {
		if !b.Get(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if b.Get(1) {
		t.Fatal("bit 1 unexpectedly set")
	}
	if b.Count() != 3 {
		t.Fatalf("Count = %d, want 3", b.Count())
	}
	b.Reset()
	if b.Count() != 0 {
		t.Fatal("Reset left bits set")
	}
}

func TestAtomicBitSetSetIdempotent(t *testing.T) {
	b := NewAtomicBitSet(64)
	b.Set(7)
	b.Set(7)
	if b.Count() != 1 {
		t.Fatalf("Count = %d, want 1", b.Count())
	}
}

// Exactly one of many concurrent TestAndSet callers must win each bit.
func TestAtomicBitSetTestAndSetRace(t *testing.T) {
	const bits, workers = 1024, 8
	b := NewAtomicBitSet(bits)
	var wins atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < bits; i++ {
				if !b.TestAndSet(i) {
					wins.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if wins.Load() != bits {
		t.Fatalf("winners = %d, want %d", wins.Load(), bits)
	}
	if b.Count() != bits {
		t.Fatalf("Count = %d, want %d", b.Count(), bits)
	}
}

func TestAtomicBitSetConcurrentSet(t *testing.T) {
	const n = 4096
	b := NewAtomicBitSet(n)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := w; i < n; i += 4 {
				b.Set(i)
			}
		}()
	}
	wg.Wait()
	if b.Count() != n {
		t.Fatalf("Count = %d, want %d", b.Count(), n)
	}
}

func TestAtomicBitSetNegativeSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewAtomicBitSet(-1)
}
