package ds

import "testing"

func TestFrontierSeedAdvance(t *testing.T) {
	f := NewFrontier(128)
	f.Reset(128)
	f.Seed(3, 5)
	if len(f.Cur) != 2 || f.Cur[0] != 3 || f.Cur[1] != 5 {
		t.Fatalf("Cur = %v", f.Cur)
	}
	if !f.Visited.Get(3) || !f.Visited.Get(5) || f.Visited.Get(4) {
		t.Fatal("Seed did not mark visited bits")
	}
	f.Push(7)
	f.Push(9)
	f.Advance()
	if len(f.Cur) != 2 || f.Cur[0] != 7 || f.Cur[1] != 9 {
		t.Fatalf("after Advance, Cur = %v", f.Cur)
	}
	if len(f.Next) != 0 {
		t.Fatalf("after Advance, Next = %v", f.Next)
	}
}

func TestFrontierResetGrows(t *testing.T) {
	f := NewFrontier(10)
	f.Seed(1)
	f.Push(2)
	f.Reset(10)
	if len(f.Cur) != 0 || len(f.Next) != 0 || f.Visited.Any() {
		t.Fatal("Reset left state behind")
	}
	f.Reset(1000)
	if f.Visited.Len() < 1000 {
		t.Fatalf("Reset did not grow visited set: %d", f.Visited.Len())
	}
	f.Visited.Set(999)
	f.Reset(1000)
	if f.Visited.Any() {
		t.Fatal("Reset kept visited bits after growth")
	}
}

// A pooled Frontier that served a large id space must come back clean
// for later searches of any size — including a later large one whose
// range exceeds the small searches in between (stale-bit hazard of the
// prefix-only sweep).
func TestFrontierPooledReuseNoStaleBits(t *testing.T) {
	f := NewFrontier(0)
	f.Reset(1 << 12)
	f.Visited.Set(1<<12 - 1) // dirty the tail of the large range
	f.Reset(64)              // small search: only a prefix sweep
	if f.Visited.Any() && f.Visited.NextSet(0) < 64 {
		t.Fatal("small-range Reset left bits in its own range")
	}
	f.Reset(1 << 12) // back to the large range
	if f.Visited.Any() {
		t.Fatalf("stale bit survived at %d", f.Visited.NextSet(0))
	}
}

func TestFrontierZeroValue(t *testing.T) {
	var f Frontier
	f.Reset(64)
	f.Seed(0)
	if !f.Visited.Get(0) {
		t.Fatal("zero-value Frontier unusable after Reset")
	}
}
