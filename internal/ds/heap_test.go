package ds

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMinHeapOrdering(t *testing.T) {
	h := NewMinHeap(8)
	in := []float64{5, 1, 9, 3, 3, 7, 0}
	for i, p := range in {
		h.Push(p, i)
	}
	if h.Len() != len(in) {
		t.Fatalf("Len = %d, want %d", h.Len(), len(in))
	}
	var got []float64
	for h.Len() > 0 {
		p, _ := h.Pop()
		got = append(got, p)
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("Pop order not sorted: %v", got)
	}
}

func TestMinHeapValuesTravelWithPriorities(t *testing.T) {
	h := NewMinHeap(4)
	h.Push(30, 300)
	h.Push(10, 100)
	h.Push(20, 200)
	for _, want := range []struct {
		p float64
		v int
	}{{10, 100}, {20, 200}, {30, 300}} {
		p, v := h.Pop()
		if p != want.p || v != want.v {
			t.Fatalf("Pop = (%g,%d), want (%g,%d)", p, v, want.p, want.v)
		}
	}
}

func TestMinHeapReset(t *testing.T) {
	h := NewMinHeap(4)
	h.Push(1, 1)
	h.Reset()
	if h.Len() != 0 {
		t.Fatal("Reset did not empty heap")
	}
	h.Push(2, 2)
	if p, v := h.Pop(); p != 2 || v != 2 {
		t.Fatal("heap broken after Reset")
	}
}

// Property: heap pops priorities in nondecreasing order for random input.
func TestMinHeapSortsRandomInput(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(500)
		h := NewMinHeap(n)
		want := make([]float64, n)
		for i := range want {
			want[i] = float64(rng.Int63n(1000))
			h.Push(want[i], i)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := 0; i < n; i++ {
			p, _ := h.Pop()
			if p != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
