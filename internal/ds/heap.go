package ds

// MinHeap is a binary min-heap of (priority, value) pairs used by the
// weighted temporal shortest-path search (a Dijkstra variant over the
// unfolded graph). It is specialised to float64 priorities to avoid the
// interface indirection of container/heap on the hot path.
type MinHeap struct {
	prio []float64
	val  []int
}

// NewMinHeap returns a heap with capacity pre-allocated for n items.
func NewMinHeap(n int) *MinHeap {
	return &MinHeap{prio: make([]float64, 0, n), val: make([]int, 0, n)}
}

// Len returns the number of items on the heap.
func (h *MinHeap) Len() int { return len(h.prio) }

// Push adds an item with the given priority.
func (h *MinHeap) Push(prio float64, v int) {
	h.prio = append(h.prio, prio)
	h.val = append(h.val, v)
	h.up(len(h.prio) - 1)
}

// Pop removes and returns the item with the minimum priority.
func (h *MinHeap) Pop() (prio float64, v int) {
	n := len(h.prio) - 1
	prio, v = h.prio[0], h.val[0]
	h.prio[0], h.val[0] = h.prio[n], h.val[n]
	h.prio, h.val = h.prio[:n], h.val[:n]
	if n > 0 {
		h.down(0)
	}
	return prio, v
}

// Reset empties the heap, retaining capacity.
func (h *MinHeap) Reset() {
	h.prio = h.prio[:0]
	h.val = h.val[:0]
}

func (h *MinHeap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if h.prio[p] <= h.prio[i] {
			return
		}
		h.swap(p, i)
		i = p
	}
}

func (h *MinHeap) down(i int) {
	n := len(h.prio)
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && h.prio[l] < h.prio[m] {
			m = l
		}
		if r < n && h.prio[r] < h.prio[m] {
			m = r
		}
		if m == i {
			return
		}
		h.swap(m, i)
		i = m
	}
}

func (h *MinHeap) swap(i, j int) {
	h.prio[i], h.prio[j] = h.prio[j], h.prio[i]
	h.val[i], h.val[j] = h.val[j], h.val[i]
}
