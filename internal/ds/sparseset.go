package ds

// SparseSet is a set over a dense integer universe [0, n) with O(1)
// insert, membership test, and clear, and iteration proportional to the
// number of members (Briggs–Torczon). It backs BFS frontiers where a
// level must be iterated in insertion order and then discarded wholesale.
type SparseSet struct {
	dense  []int // members, in insertion order
	sparse []int // sparse[v] = index of v in dense, if member
}

// NewSparseSet returns a set over the universe [0, n).
func NewSparseSet(n int) *SparseSet {
	return &SparseSet{dense: make([]int, 0, 16), sparse: make([]int, n)}
}

// Len returns the number of members.
func (s *SparseSet) Len() int { return len(s.dense) }

// Contains reports whether v is a member.
func (s *SparseSet) Contains(v int) bool {
	i := s.sparse[v]
	return i < len(s.dense) && s.dense[i] == v
}

// Add inserts v; it reports whether v was newly inserted.
func (s *SparseSet) Add(v int) bool {
	if s.Contains(v) {
		return false
	}
	s.sparse[v] = len(s.dense)
	s.dense = append(s.dense, v)
	return true
}

// Remove deletes v; it reports whether v was a member. The last-inserted
// member is swapped into v's slot, so insertion order is not preserved
// across removals.
func (s *SparseSet) Remove(v int) bool {
	if !s.Contains(v) {
		return false
	}
	i := s.sparse[v]
	last := s.dense[len(s.dense)-1]
	s.dense[i] = last
	s.sparse[last] = i
	s.dense = s.dense[:len(s.dense)-1]
	return true
}

// Clear empties the set in O(1) amortised time.
func (s *SparseSet) Clear() { s.dense = s.dense[:0] }

// Members returns the members in insertion order. The returned slice
// aliases internal storage and is invalidated by the next mutation.
func (s *SparseSet) Members() []int { return s.dense }
