package ds

// IntQueue is a FIFO queue of ints backed by a growable ring buffer.
// The zero value is an empty queue ready to use. It avoids the per-element
// allocation of container/list and the slice-shift cost of naive queues;
// BFS frontiers push and pop millions of entries through it.
type IntQueue struct {
	buf        []int
	head, tail int // head = next pop, tail = next push
	size       int
}

// NewIntQueue returns a queue with capacity pre-allocated for n elements.
func NewIntQueue(n int) *IntQueue {
	if n < 1 {
		n = 1
	}
	return &IntQueue{buf: make([]int, n)}
}

// Len returns the number of queued elements.
func (q *IntQueue) Len() int { return q.size }

// Empty reports whether the queue has no elements.
func (q *IntQueue) Empty() bool { return q.size == 0 }

// Push appends v to the back of the queue.
func (q *IntQueue) Push(v int) {
	if q.size == len(q.buf) {
		q.grow()
	}
	q.buf[q.tail] = v
	q.tail++
	if q.tail == len(q.buf) {
		q.tail = 0
	}
	q.size++
}

// Pop removes and returns the front element. It panics on an empty queue;
// callers are expected to guard with Empty or Len.
func (q *IntQueue) Pop() int {
	if q.size == 0 {
		panic("ds: Pop from empty IntQueue")
	}
	v := q.buf[q.head]
	q.head++
	if q.head == len(q.buf) {
		q.head = 0
	}
	q.size--
	return v
}

// Peek returns the front element without removing it.
func (q *IntQueue) Peek() int {
	if q.size == 0 {
		panic("ds: Peek on empty IntQueue")
	}
	return q.buf[q.head]
}

// Reset empties the queue, retaining capacity.
func (q *IntQueue) Reset() {
	q.head, q.tail, q.size = 0, 0, 0
}

func (q *IntQueue) grow() {
	nb := make([]int, 2*len(q.buf))
	if q.buf == nil {
		nb = make([]int, 4)
	}
	n := copy(nb, q.buf[q.head:])
	copy(nb[n:], q.buf[:q.head])
	q.buf = nb
	q.head = 0
	q.tail = q.size
}
