package ds

// Frontier is reusable scratch for a level-synchronous BFS: the current
// and next frontier buffers plus a dense visited bitset. A search claims
// ids with Visited.TestAndSet (or a plain Get/Set pair), pushes newly
// discovered ids with Push, and calls Advance at each level barrier.
// Keeping the three pieces together lets engines recycle one allocation
// across runs via Reset instead of reallocating per search.
type Frontier struct {
	Cur, Next []int32
	Visited   *BitSet
	dirty     int // id bound of the search that last wrote Visited
}

// NewFrontier returns a Frontier whose visited set covers ids [0, n).
func NewFrontier(n int) *Frontier {
	return &Frontier{Visited: NewBitSet(n), dirty: n}
}

// Reset prepares the scratch for a fresh search over ids [0, n): both
// buffers are emptied and the visited set is cleared, growing it if the
// id space expanded. Capacity is retained, but only the previously
// dirtied prefix is swept — a pooled Frontier that once served a huge
// graph does not charge every later small search a full-capacity memset.
func (f *Frontier) Reset(n int) {
	f.Cur = f.Cur[:0]
	f.Next = f.Next[:0]
	if f.Visited == nil || f.Visited.Len() < n {
		f.Visited = NewBitSet(n)
	} else {
		f.Visited.ResetFirst(f.dirty)
	}
	f.dirty = n
}

// Push appends an id to the next frontier.
func (f *Frontier) Push(id int32) { f.Next = append(f.Next, id) }

// Advance swaps the buffers at a level barrier: the next frontier
// becomes current and the new next frontier is empty (capacity kept).
func (f *Frontier) Advance() {
	f.Cur, f.Next = f.Next, f.Cur[:0]
}

// Seed places the root ids into the current frontier and marks them
// visited, replacing any existing content of Cur.
func (f *Frontier) Seed(ids ...int32) {
	f.Cur = append(f.Cur[:0], ids...)
	for _, id := range ids {
		f.Visited.Set(int(id))
	}
}
