package egraph

import (
	"sync"

	"repro/internal/ds"
)

// CSR is a flat compressed-sparse-row view of the unfolded temporal
// graph G = (V, E) of Theorem 1, laid out for the BFS hot path
// (DESIGN.md §8). Everything is indexed by dense temporal-node id
// t·N + v, so a frontier expansion is pure array traversal: no maps, no
// per-visit binary searches, no (node, stamp) packing or unpacking.
//
// Static edges are materialised per temporal node: the out-arcs of id
// are OutAdj[OutPtr[id]:OutPtr[id+1]], already expressed as temporal-node
// ids of the same stamp and sorted ascending. Causal edges are *not*
// materialised (all-pairs would need Θ(k²) arcs per node active at k
// stamps); instead the per-node active-stamp rows are flattened into
// ActStamps and every active temporal node carries its position within
// its node's row in ActPos, so the forward causal neighbours of id are
// the row suffix after ActPos[id] and the backward ones are the prefix
// before it — an array scan either way, O(1) per arc.
//
// A CSR is immutable once built and safe for concurrent use. Build one
// with IntEvolvingGraph.CSR, which caches the view on the graph.
type CSR struct {
	// N and T are the node-id-space size and stamp count of the source
	// graph; ids run in [0, N·T).
	N, T int

	// OutPtr/OutAdj hold the static out-arcs of every temporal node;
	// InPtr/InAdj the in-arcs (identical for undirected graphs up to
	// row contents). OutPtr has N·T+1 entries; arc counts are summed
	// over all stamps, hence the int64 offsets.
	OutPtr []int64
	OutAdj []int32
	InPtr  []int64
	InAdj  []int32

	// ActPtr/ActStamps are the per-node active-stamp lists in CSR form:
	// node v is active exactly at stamps ActStamps[ActPtr[v]:ActPtr[v+1]],
	// sorted ascending. ActPos maps a temporal-node id to the *global*
	// index of its stamp within ActStamps, or -1 if (v, t) is inactive.
	ActPtr    []int32
	ActStamps []int32
	ActPos    []int32

	// Active marks the active temporal-node ids (Def. 3) as a dense
	// bitset over [0, N·T).
	Active *ds.BitSet
}

// Size returns the temporal-node id space N·T.
func (c *CSR) Size() int { return c.N * c.T }

// OutArcs returns the static out-arc targets of a temporal node as
// temporal-node ids (same stamp, sorted). The slice aliases internal
// storage and must not be mutated.
func (c *CSR) OutArcs(id int32) []int32 {
	return c.OutAdj[c.OutPtr[id]:c.OutPtr[id+1]]
}

// InArcs returns the static in-arc sources of a temporal node as
// temporal-node ids.
func (c *CSR) InArcs(id int32) []int32 {
	return c.InAdj[c.InPtr[id]:c.InPtr[id+1]]
}

// CausalRow returns node v's full active-stamp row and the position of
// stamp t within it (pos = -1 if (v, t) is inactive). The forward causal
// neighbours of (v, t) are row[pos+1:], the backward ones row[:pos].
func (c *CSR) CausalRow(v, t int32) (row []int32, pos int) {
	lo, hi := c.ActPtr[v], c.ActPtr[v+1]
	row = c.ActStamps[lo:hi]
	p := c.ActPos[int(t)*c.N+int(v)]
	if p < 0 {
		return row, -1
	}
	return row, int(p - lo)
}

// CausalArcs returns the causal-neighbour stamps of an *active*
// temporal node id: the sub-row of its node's active stamps strictly
// after (forward) or strictly before (backward) its own stamp, clamped
// to the single adjacent stamp under consecutive mode. Targets rebase
// as stamp·N + v with the returned v. The slice is in ascending stamp
// order and aliases internal storage; the traversal engines iterate it
// descending for forward searches to keep the oracle's visit order.
// Every engine shares this one copy of the bounds arithmetic.
func (c *CSR) CausalArcs(id int32, forward, consecutive bool) (stamps []int32, v int32) {
	pos := c.ActPos[id]
	v = id % int32(c.N)
	if forward {
		end := c.ActPtr[v+1]
		if consecutive && pos+1 < end {
			end = pos + 2
		}
		return c.ActStamps[pos+1 : end], v
	}
	start := c.ActPtr[v]
	if consecutive && pos > start {
		start = pos - 1
	}
	return c.ActStamps[start:pos], v
}

// CSR returns the flat CSR view of g, building it on first use. The
// view is cached on the graph and shared by all callers; like every
// other query method it is safe for concurrent use.
func (g *IntEvolvingGraph) CSR() *CSR {
	g.csrOnce.Do(func() { g.csr = buildCSR(g) })
	return g.csr
}

func buildCSR(g *IntEvolvingGraph) *CSR {
	n, t := g.numNodes, len(g.snaps)
	size := n * t
	c := &CSR{
		N:      n,
		T:      t,
		OutPtr: make([]int64, size+1),
		InPtr:  make([]int64, size+1),
		ActPtr: make([]int32, n+1),
		ActPos: make([]int32, size),
		Active: ds.NewBitSet(size),
	}

	// Static arcs: per-stamp CSR rows concatenated in stamp-major order,
	// targets rebased to temporal-node ids of the same stamp.
	var outArcs, inArcs int64
	for si := range g.snaps {
		s := &g.snaps[si]
		base := si * n
		for v := 0; v < n; v++ {
			id := base + v
			outArcs += int64(s.outPtr[v+1] - s.outPtr[v])
			inArcs += int64(s.inPtr[v+1] - s.inPtr[v])
			c.OutPtr[id+1] = outArcs
			c.InPtr[id+1] = inArcs
		}
	}
	c.OutAdj = make([]int32, outArcs)
	c.InAdj = make([]int32, inArcs)
	for si := range g.snaps {
		s := &g.snaps[si]
		base := int32(si * n)
		for v := 0; v < n; v++ {
			id := int32(si*n + v)
			o := c.OutPtr[id]
			for _, w := range s.outAdj[s.outPtr[v]:s.outPtr[v+1]] {
				c.OutAdj[o] = base + w
				o++
			}
			i := c.InPtr[id]
			for _, w := range s.inAdj[s.inPtr[v]:s.inPtr[v+1]] {
				c.InAdj[i] = base + w
				i++
			}
		}
	}

	// Causal structure: flatten activeAt and index each (v, t) into it.
	for i := range c.ActPos {
		c.ActPos[i] = -1
	}
	total := 0
	for v := 0; v < n; v++ {
		total += len(g.activeAt[v])
		c.ActPtr[v+1] = int32(total)
	}
	c.ActStamps = make([]int32, total)
	for v := 0; v < n; v++ {
		row := c.ActPtr[v]
		for i, s := range g.activeAt[v] {
			gi := row + int32(i)
			c.ActStamps[gi] = s
			c.ActPos[int(s)*n+v] = gi
			c.Active.Set(int(s)*n + v)
		}
	}
	return c
}

// csrCache is embedded in IntEvolvingGraph so the lazily built view does
// not change the graph's immutable query surface.
type csrCache struct {
	csrOnce sync.Once
	csr     *CSR
}
