package egraph

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ds"
)

// CSR is a flat compressed-sparse-row view of the unfolded temporal
// graph G = (V, E) of Theorem 1, laid out for the BFS hot path
// (DESIGN.md §8). Everything is indexed by dense temporal-node id
// t·N + v, so a frontier expansion is pure array traversal: no maps, no
// per-visit binary searches, no (node, stamp) packing or unpacking.
//
// Static edges are materialised per temporal node: the out-arcs of id
// are OutAdj[OutPtr[id]:OutPtr[id+1]], already expressed as temporal-node
// ids of the same stamp and sorted ascending. Causal edges are *not*
// materialised (all-pairs would need Θ(k²) arcs per node active at k
// stamps); instead the per-node active-stamp rows are flattened into
// ActStamps and every active temporal node carries its position within
// its node's row in ActPos, so the forward causal neighbours of id are
// the row suffix after ActPos[id] and the backward ones are the prefix
// before it — an array scan either way, O(1) per arc.
//
// A CSR is immutable once built and safe for concurrent use. Build one
// with IntEvolvingGraph.CSR, which caches the view on the graph, or
// BuildFlatCSR for an uncached build with explicit worker/arena control.
type CSR struct {
	// N and T are the node-id-space size and stamp count of the source
	// graph; ids run in [0, N·T).
	N, T int

	// OutPtr/OutAdj hold the static out-arcs of every temporal node;
	// InPtr/InAdj the in-arcs (identical for undirected graphs up to
	// row contents). OutPtr has N·T+1 entries; arc counts are summed
	// over all stamps, hence the int64 offsets.
	OutPtr []int64
	OutAdj []int32
	InPtr  []int64
	InAdj  []int32

	// ActPtr/ActStamps are the per-node active-stamp lists in CSR form:
	// node v is active exactly at stamps ActStamps[ActPtr[v]:ActPtr[v+1]],
	// sorted ascending. ActPos maps a temporal-node id to the *global*
	// index of its stamp within ActStamps, or -1 if (v, t) is inactive.
	ActPtr    []int32
	ActStamps []int32
	ActPos    []int32

	// Active marks the active temporal-node ids (Def. 3) as a dense
	// bitset over [0, N·T).
	Active *ds.BitSet
}

// Size returns the temporal-node id space N·T.
func (c *CSR) Size() int { return c.N * c.T }

// OutArcs returns the static out-arc targets of a temporal node as
// temporal-node ids (same stamp, sorted). The slice aliases internal
// storage and must not be mutated.
func (c *CSR) OutArcs(id int32) []int32 {
	return c.OutAdj[c.OutPtr[id]:c.OutPtr[id+1]]
}

// InArcs returns the static in-arc sources of a temporal node as
// temporal-node ids.
func (c *CSR) InArcs(id int32) []int32 {
	return c.InAdj[c.InPtr[id]:c.InPtr[id+1]]
}

// CausalRow returns node v's full active-stamp row and the position of
// stamp t within it (pos = -1 if (v, t) is inactive). The forward causal
// neighbours of (v, t) are row[pos+1:], the backward ones row[:pos].
func (c *CSR) CausalRow(v, t int32) (row []int32, pos int) {
	lo, hi := c.ActPtr[v], c.ActPtr[v+1]
	row = c.ActStamps[lo:hi]
	p := c.ActPos[int(t)*c.N+int(v)]
	if p < 0 {
		return row, -1
	}
	return row, int(p - lo)
}

// CausalArcs returns the causal-neighbour stamps of an *active*
// temporal node id: the sub-row of its node's active stamps strictly
// after (forward) or strictly before (backward) its own stamp, clamped
// to the single adjacent stamp under consecutive mode. Targets rebase
// as stamp·N + v with the returned v. The slice is in ascending stamp
// order and aliases internal storage; the traversal engines iterate it
// descending for forward searches to keep the oracle's visit order.
// Every engine shares this one copy of the bounds arithmetic.
func (c *CSR) CausalArcs(id int32, forward, consecutive bool) (stamps []int32, v int32) {
	pos := c.ActPos[id]
	v = id % int32(c.N)
	if forward {
		end := c.ActPtr[v+1]
		if consecutive && pos+1 < end {
			end = pos + 2
		}
		return c.ActStamps[pos+1 : end], v
	}
	start := c.ActPtr[v]
	if consecutive && pos > start {
		start = pos - 1
	}
	return c.ActStamps[start:pos], v
}

// CSRArena holds the flat-view buffers of a retired CSR so the next
// epoch's build can reuse them instead of allocating ~|V|+|E| of fresh
// memory. Obtain one with CSR.Recycle or IntEvolvingGraph.RecycleCSR
// once the owning graph is provably unreachable (the ingest write path
// learns this through the server's unpin notification, DESIGN.md §12);
// hand it to BuildFlatCSR or EnsureCSR. The zero value is an empty
// arena.
type CSRArena struct {
	outPtr, inPtr             []int64
	outAdj, inAdj             []int32
	actPtr, actStamps, actPos []int32
	active                    *ds.BitSet
}

// Recycle extracts c's buffers into an arena for the next build. The
// CSR must no longer be reachable by any reader: the returned arena
// aliases its storage, and the next build will overwrite it.
func (c *CSR) Recycle() *CSRArena {
	return &CSRArena{
		outPtr: c.OutPtr, inPtr: c.InPtr,
		outAdj: c.OutAdj, inAdj: c.InAdj,
		actPtr: c.ActPtr, actStamps: c.ActStamps, actPos: c.ActPos,
		active: c.Active,
	}
}

// RecycleCSR extracts the graph's cached flat view into an arena, or
// returns nil if the view was never built. It also severs the graph's
// reference to the view, so a late accidental query fails fast on a nil
// CSR instead of silently reading recycled memory. The caller must
// guarantee no concurrent reader of g exists — this is only safe for a
// retired, unpinned snapshot.
func (g *IntEvolvingGraph) RecycleCSR() *CSRArena {
	c := g.csr
	if c == nil {
		return nil
	}
	g.csr = nil
	return c.Recycle()
}

// CSRBuildOptions tunes BuildFlatCSR / EnsureCSR.
type CSRBuildOptions struct {
	// Workers fans the stamp-major fill out across this many goroutines
	// (0 = GOMAXPROCS, 1 = fully sequential). Graphs too small to repay
	// the fan-out are built sequentially regardless.
	Workers int
	// Arena recycles the buffers of a retired CSR (see CSRArena).
	// Buffers with insufficient capacity are reallocated individually.
	Arena *CSRArena
	// OnBuilt, when set, receives the wall-clock duration of the build.
	// It fires only when a build actually runs — an EnsureCSR call that
	// finds the cached view never reports. The ingest compactor hangs
	// its per-stage timing histogram here (internal/obs).
	OnBuilt func(time.Duration)
}

// CSR returns the flat CSR view of g, building it on first use. The
// view is cached on the graph and shared by all callers; like every
// other query method it is safe for concurrent use.
func (g *IntEvolvingGraph) CSR() *CSR { return g.EnsureCSR(CSRBuildOptions{}) }

// EnsureCSR returns the cached flat CSR view, building it with opts on
// first use — the ingest compactor prebuilds each epoch's view here,
// parallel and into a recycled arena, so the first query after a
// snapshot swap pays nothing. Safe for concurrent use; opts only
// matter for the call that actually builds.
func (g *IntEvolvingGraph) EnsureCSR(opts CSRBuildOptions) *CSR {
	g.csrOnce.Do(func() { g.csr = BuildFlatCSR(g, opts) })
	return g.csr
}

// BuildFlatCSR builds a flat CSR view of g without touching the
// graph's cache — the entry point egbench's csr suite uses to race
// sequential against parallel builds on one graph. The build is
// deterministic: sequential and parallel fills produce bit-identical
// arrays, because the per-stamp offsets are computed up front from the
// snapshot totals and every worker writes a disjoint range.
func BuildFlatCSR(g *IntEvolvingGraph, opts CSRBuildOptions) *CSR {
	if opts.OnBuilt != nil {
		start := time.Now()
		defer func() { opts.OnBuilt(time.Since(start)) }()
	}
	n, t := g.numNodes, len(g.snaps)
	size := n * t
	a := opts.Arena
	if a == nil {
		a = &CSRArena{}
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if size < 1<<15 {
		workers = 1 // fan-out overhead dominates tiny graphs
	}

	c := &CSR{
		N:      n,
		T:      t,
		OutPtr: i64Into(a.outPtr, size+1),
		InPtr:  i64Into(a.inPtr, size+1),
		ActPtr: i32Into(a.actPtr, n+1),
		ActPos: i32Into(a.actPos, size),
		Active: ds.Recap(a.active, size),
	}

	// Stamp-level base offsets come straight from the per-stamp CSR
	// totals: no counting pass over temporal nodes is needed, and every
	// (stamp, node-range) fill below is independent of all others.
	outBase := make([]int64, t+1)
	inBase := make([]int64, t+1)
	for si := range g.snaps {
		s := &g.snaps[si]
		outBase[si+1] = outBase[si] + int64(len(s.outAdj))
		inBase[si+1] = inBase[si] + int64(len(s.inAdj))
	}
	c.OutAdj = i32Into(a.outAdj, int(outBase[t]))
	c.InAdj = i32Into(a.inAdj, int(inBase[t]))
	c.OutPtr[size] = outBase[t]
	c.InPtr[size] = inBase[t]

	// Per-node active-row offsets (serial: O(N) additions).
	c.ActPtr[0] = 0
	total := 0
	for v := 0; v < n; v++ {
		total += len(g.activeAt[v])
		c.ActPtr[v+1] = int32(total)
	}
	c.ActStamps = i32Into(a.actStamps, total)

	// fill materialises the static rows of one stamp's node range:
	// pointer rows rebased by the stamp offset, adjacency rebased to
	// temporal-node ids of the same stamp.
	fill := func(si, v0, v1 int) {
		s := &g.snaps[si]
		ob, ib := outBase[si], inBase[si]
		idBase := si * n
		rebase := int32(idBase)
		for v := v0; v < v1; v++ {
			c.OutPtr[idBase+v] = ob + int64(s.outPtr[v])
			c.InPtr[idBase+v] = ib + int64(s.inPtr[v])
		}
		for j := s.outPtr[v0]; j < s.outPtr[v1]; j++ {
			c.OutAdj[ob+int64(j)] = rebase + s.outAdj[j]
		}
		for j := s.inPtr[v0]; j < s.inPtr[v1]; j++ {
			c.InAdj[ib+int64(j)] = rebase + s.inAdj[j]
		}
	}
	// causal materialises the active-stamp rows and the ActPos index of
	// one node range (the ActPos entries of nodes [v0,v1) are the
	// contiguous sub-rows [t·n+v0, t·n+v1) of every stamp — disjoint
	// across ranges).
	causal := func(v0, v1 int) {
		for si := 0; si < t; si++ {
			row := c.ActPos[si*n+v0 : si*n+v1]
			for i := range row {
				row[i] = -1
			}
		}
		for v := v0; v < v1; v++ {
			rowStart := c.ActPtr[v]
			for i, s := range g.activeAt[v] {
				gi := rowStart + int32(i)
				c.ActStamps[gi] = s
				c.ActPos[int(s)*n+v] = gi
			}
		}
	}

	if workers == 1 || n == 0 {
		for si := 0; si < t; si++ {
			fill(si, 0, n)
		}
		causal(0, n)
	} else {
		runCSRTasks(workers, n, t, fill, causal)
	}

	// Def.-3 activity, stamp-major: each stamp's active set word-blits
	// into its id block. Serial, but O(N·T/64) word operations.
	for si := range g.snaps {
		c.Active.Blit(g.snaps[si].active, n, si*n)
	}
	return c
}

// runCSRTasks fans the fill and causal closures out over (stamp,
// node-chunk) and (node-chunk) tasks respectively. Chunks are
// fixed-size node ranges so skewed stamps cannot serialise the build
// behind one goroutine.
func runCSRTasks(workers, n, t int, fill func(si, v0, v1 int), causal func(v0, v1 int)) {
	const chunk = 1 << 14
	nchunks := (n + chunk - 1) / chunk
	type task struct {
		si     int // stamp for fill tasks, -1 for causal tasks
		v0, v1 int
	}
	tasks := make([]task, 0, (t+1)*nchunks)
	for ci := 0; ci < nchunks; ci++ {
		v0, v1 := ci*chunk, (ci+1)*chunk
		if v1 > n {
			v1 = n
		}
		for si := 0; si < t; si++ {
			tasks = append(tasks, task{si: si, v0: v0, v1: v1})
		}
		tasks = append(tasks, task{si: -1, v0: v0, v1: v1})
	}
	runTasks(workers, len(tasks), func(i int) {
		tk := tasks[i]
		if tk.si >= 0 {
			fill(tk.si, tk.v0, tk.v1)
		} else {
			causal(tk.v0, tk.v1)
		}
	})
}

// runTasks runs fn(0..n-1) across up to workers goroutines dispatched
// through one shared atomic cursor; workers ≤ 1 (or a single task)
// runs inline. Both the flat-CSR fill and Patch's per-stamp rebuilds
// fan out through here.
func runTasks(workers, n int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// i64Into returns a length-n int64 slice, reusing buf's storage when
// its capacity suffices. Contents are unspecified; the build overwrites
// every entry.
func i64Into(buf []int64, n int) []int64 {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]int64, n)
}

// i32Into is i64Into for int32 slices.
func i32Into(buf []int32, n int) []int32 {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]int32, n)
}

// csrCache is embedded in IntEvolvingGraph so the lazily built view does
// not change the graph's immutable query surface.
type csrCache struct {
	csrOnce sync.Once
	csr     *CSR
}
