package egraph

import (
	"testing"
)

func TestFigure1Activity(t *testing.T) {
	g := Figure1Graph()
	if g.NumNodes() != 3 || g.NumStamps() != 3 {
		t.Fatalf("dims = (%d nodes, %d stamps)", g.NumNodes(), g.NumStamps())
	}
	if !g.Directed() {
		t.Fatal("Figure 1 graph is directed")
	}
	// Paper: (1,t1), (2,t1) active; (3,t1) inactive; (2,t2) inactive.
	type q struct {
		v, s   int32
		active bool
	}
	for _, tc := range []q{
		{0, 0, true}, {1, 0, true}, {2, 0, false},
		{0, 1, true}, {1, 1, false}, {2, 1, true},
		{0, 2, false}, {1, 2, true}, {2, 2, true},
	} {
		if got := g.IsActive(tc.v, tc.s); got != tc.active {
			t.Errorf("IsActive(%d,t%d) = %v, want %v", tc.v+1, tc.s+1, got, tc.active)
		}
	}
	if g.NumActiveNodes() != 6 {
		t.Fatalf("|V| = %d, want 6", g.NumActiveNodes())
	}
	if g.StaticEdgeCount() != 3 {
		t.Fatalf("|Ẽ| = %d, want 3", g.StaticEdgeCount())
	}
	if g.CausalEdgeCount(CausalAllPairs) != 3 {
		t.Fatalf("|E′| = %d, want 3", g.CausalEdgeCount(CausalAllPairs))
	}
	if g.EdgeCount(CausalAllPairs) != 6 {
		t.Fatalf("|E| = %d, want 6", g.EdgeCount(CausalAllPairs))
	}
}

func TestTimeLabels(t *testing.T) {
	b := NewBuilder(true)
	b.AddEdge(0, 1, 100)
	b.AddEdge(1, 2, 50)
	b.AddEdge(2, 3, 100)
	g := b.Build()
	if g.NumStamps() != 2 {
		t.Fatalf("stamps = %d, want 2", g.NumStamps())
	}
	if g.TimeLabel(0) != 50 || g.TimeLabel(1) != 100 {
		t.Fatalf("labels = %v", g.TimeLabels())
	}
	if g.StampOf(100) != 1 || g.StampOf(50) != 0 || g.StampOf(75) != -1 {
		t.Fatal("StampOf wrong")
	}
	// Edge at the later *label* but added first must land at stamp 1.
	if !g.HasEdge(0, 1, 1) || !g.HasEdge(1, 2, 0) {
		t.Fatal("edges assigned to wrong stamps")
	}
}

func TestActiveStampsAndNavigation(t *testing.T) {
	g := Figure1Graph()
	// Node 0 (paper's 1) active at stamps 0, 1.
	st := g.ActiveStamps(0)
	if len(st) != 2 || st[0] != 0 || st[1] != 1 {
		t.Fatalf("ActiveStamps(0) = %v", st)
	}
	if g.NextActiveStamp(0, 0) != 1 || g.NextActiveStamp(0, 1) != -1 {
		t.Fatal("NextActiveStamp wrong")
	}
	if g.PrevActiveStamp(0, 1) != 0 || g.PrevActiveStamp(0, 0) != -1 {
		t.Fatal("PrevActiveStamp wrong")
	}
	// Node 1 (paper's 2): active at stamps 0 and 2 — next after 0 skips 1.
	if g.NextActiveStamp(1, 0) != 2 {
		t.Fatalf("NextActiveStamp(1,0) = %d, want 2", g.NextActiveStamp(1, 0))
	}
}

func TestNeighborsDirected(t *testing.T) {
	g := Figure1Graph()
	out := g.OutNeighbors(0, 0)
	if len(out) != 1 || out[0] != 1 {
		t.Fatalf("OutNeighbors(1,t1) = %v", out)
	}
	if len(g.OutNeighbors(1, 0)) != 0 {
		t.Fatal("directed graph should have no reverse out-edge")
	}
	in := g.InNeighbors(1, 0)
	if len(in) != 1 || in[0] != 0 {
		t.Fatalf("InNeighbors(2,t1) = %v", in)
	}
	if g.OutDegree(0, 0) != 1 || g.OutDegree(2, 0) != 0 {
		t.Fatal("OutDegree wrong")
	}
}

func TestUndirectedSymmetry(t *testing.T) {
	b := NewBuilder(false)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 0, 1) // duplicate in canonical form
	b.AddEdge(1, 2, 1)
	g := b.Build()
	if g.StaticEdgeCount() != 2 {
		t.Fatalf("|Ẽ| = %d, want 2 (duplicate collapsed)", g.StaticEdgeCount())
	}
	if len(g.OutNeighbors(1, 0)) != 2 {
		t.Fatalf("undirected node 1 should see both neighbours, got %v", g.OutNeighbors(1, 0))
	}
	if len(g.OutNeighbors(0, 0)) != 1 || g.OutNeighbors(0, 0)[0] != 1 {
		t.Fatal("undirected reverse view missing")
	}
	// EdgeCount doubles undirected static edges (two arcs in G).
	if g.EdgeCount(CausalAllPairs) != 4 {
		t.Fatalf("|E| = %d, want 4", g.EdgeCount(CausalAllPairs))
	}
}

func TestSelfLoopsDropped(t *testing.T) {
	b := NewBuilder(true)
	b.AddEdge(0, 0, 1)
	b.AddEdge(0, 1, 1)
	g := b.Build()
	if b.DroppedSelfLoops() != 1 {
		t.Fatalf("DroppedSelfLoops = %d, want 1", b.DroppedSelfLoops())
	}
	if g.StaticEdgeCount() != 1 {
		t.Fatalf("|Ẽ| = %d, want 1", g.StaticEdgeCount())
	}
	// A node with only a self-loop is inactive (Def. 3).
	b2 := NewBuilder(true)
	b2.AddEdge(2, 2, 1)
	b2.AddEdge(0, 1, 1)
	g2 := b2.Build()
	if g2.IsActive(2, 0) {
		t.Fatal("self-loop-only node reported active")
	}
}

func TestDuplicateEdgesCollapse(t *testing.T) {
	b := NewBuilder(true)
	b.AddEdge(0, 1, 1)
	b.AddEdge(0, 1, 1)
	b.AddEdge(0, 1, 2)
	g := b.Build()
	if g.StaticEdgeCount() != 2 {
		t.Fatalf("|Ẽ| = %d, want 2", g.StaticEdgeCount())
	}
	if g.SnapshotEdgeCount(0) != 1 || g.SnapshotEdgeCount(1) != 1 {
		t.Fatal("per-snapshot counts wrong")
	}
}

func TestWeightedEdges(t *testing.T) {
	b := NewWeightedBuilder(true)
	b.AddWeightedEdge(0, 1, 1, 2.5)
	b.AddWeightedEdge(0, 2, 1, 7)
	g := b.Build()
	if !g.Weighted() {
		t.Fatal("graph should be weighted")
	}
	adj := g.OutNeighbors(0, 0)
	w := g.OutWeights(0, 0)
	if len(adj) != 2 || len(w) != 2 {
		t.Fatalf("adj=%v w=%v", adj, w)
	}
	for i, v := range adj {
		want := map[int32]float64{1: 2.5, 2: 7}[v]
		if w[i] != want {
			t.Fatalf("weight of edge to %d = %g, want %g", v, w[i], want)
		}
	}
	if g2 := Figure1Graph(); g2.OutWeights(0, 0) != nil {
		t.Fatal("unweighted graph should return nil weights")
	}
}

func TestVisitEdges(t *testing.T) {
	g := Figure1Graph()
	var got [][2]int32
	g.VisitEdges(0, func(u, v int32, w float64) bool {
		if w != 1 {
			t.Fatalf("weight = %g, want 1", w)
		}
		got = append(got, [2]int32{u, v})
		return true
	})
	if len(got) != 1 || got[0] != [2]int32{0, 1} {
		t.Fatalf("VisitEdges(t1) = %v", got)
	}
	// Early stop.
	count := 0
	b := NewBuilder(true)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	g2 := b.Build()
	g2.VisitEdges(0, func(u, v int32, w float64) bool {
		count++
		return false
	})
	if count != 1 {
		t.Fatalf("early stop visited %d edges", count)
	}
	// Undirected edges reported once with u ≤ v.
	bu := NewBuilder(false)
	bu.AddEdge(2, 0, 5)
	gu := bu.Build()
	n := 0
	gu.VisitEdges(0, func(u, v int32, w float64) bool {
		n++
		if u > v {
			t.Fatalf("undirected edge reported as (%d,%d)", u, v)
		}
		return true
	})
	if n != 1 {
		t.Fatalf("undirected edge reported %d times", n)
	}
}

func TestCausalEdgeCountModes(t *testing.T) {
	// One node active at 4 stamps: all-pairs C(4,2)=6, consecutive 3.
	b := NewBuilder(true)
	for ts := int64(1); ts <= 4; ts++ {
		b.AddEdge(0, 1, ts)
	}
	g := b.Build()
	// Both nodes 0 and 1 active at all 4 stamps.
	if got := g.CausalEdgeCount(CausalAllPairs); got != 12 {
		t.Fatalf("all-pairs |E′| = %d, want 12", got)
	}
	if got := g.CausalEdgeCount(CausalConsecutive); got != 6 {
		t.Fatalf("consecutive |E′| = %d, want 6", got)
	}
}

func TestTemporalNodeIDRoundTrip(t *testing.T) {
	g := Figure1Graph()
	for s := int32(0); s < 3; s++ {
		for v := int32(0); v < 3; v++ {
			tn := TemporalNode{Node: v, Stamp: s}
			if got := g.TemporalNodeFromID(g.TemporalNodeID(tn)); got != tn {
				t.Fatalf("round trip %v -> %v", tn, got)
			}
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder(true).Build()
	if g.NumNodes() != 0 || g.NumStamps() != 0 || g.NumActiveNodes() != 0 {
		t.Fatal("empty build not empty")
	}
	if g.StaticEdgeCount() != 0 || g.CausalEdgeCount(CausalAllPairs) != 0 {
		t.Fatal("empty graph has edges")
	}
}

func TestNegativeNodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBuilder(true).AddEdge(-1, 0, 1)
}

func TestCausalModeString(t *testing.T) {
	if CausalAllPairs.String() != "all-pairs" || CausalConsecutive.String() != "consecutive" {
		t.Fatal("CausalMode strings wrong")
	}
	if CausalMode(9).String() != "CausalMode(9)" {
		t.Fatal("unknown CausalMode string wrong")
	}
}

func TestTemporalNodeString(t *testing.T) {
	tn := TemporalNode{Node: 2, Stamp: 0}
	if tn.String() != "(2,t1)" {
		t.Fatalf("String = %q", tn.String())
	}
}

func TestIntroGameGraph(t *testing.T) {
	g := IntroGameGraph(false)
	if !g.HasEdge(0, 1, 0) || !g.HasEdge(1, 2, 1) {
		t.Fatal("intro game graph edges wrong")
	}
	gs := IntroGameGraph(true)
	if !gs.HasEdge(1, 2, 0) || !gs.HasEdge(0, 1, 1) {
		t.Fatal("swapped intro game graph edges wrong")
	}
}
