package egraph

// EvolvingGraph is a labelled evolving graph over any comparable node
// type. It interns labels to dense int32 ids and delegates to an
// IntEvolvingGraph, so every algorithm in the repository works on it.
// Typical use: author names in a citation network.
//
// The zero value is not usable; create one with NewEvolvingGraph, add
// edges, then Freeze (or let the first query freeze it lazily).
type EvolvingGraph[N comparable] struct {
	builder *Builder
	labels  []N
	ids     map[N]int32
	frozen  *IntEvolvingGraph
}

// NewEvolvingGraph returns an empty labelled evolving graph.
func NewEvolvingGraph[N comparable](directed bool) *EvolvingGraph[N] {
	return &EvolvingGraph[N]{
		builder: NewBuilder(directed),
		ids:     make(map[N]int32),
	}
}

// Intern returns the dense id of label, assigning one if new. Adding
// edges after Freeze panics, so intern everything before freezing.
func (g *EvolvingGraph[N]) Intern(label N) int32 {
	if id, ok := g.ids[label]; ok {
		return id
	}
	if g.frozen != nil {
		panic("egraph: Intern of new label after Freeze")
	}
	id := int32(len(g.labels))
	g.ids[label] = id
	g.labels = append(g.labels, label)
	return id
}

// Label returns the label of a dense id.
func (g *EvolvingGraph[N]) Label(id int32) N { return g.labels[id] }

// IDOf returns the dense id of a label and whether it is known.
func (g *EvolvingGraph[N]) IDOf(label N) (int32, bool) {
	id, ok := g.ids[label]
	return id, ok
}

// NumLabels returns the number of interned labels.
func (g *EvolvingGraph[N]) NumLabels() int { return len(g.labels) }

// AddEdge records the edge u→v at time label t.
func (g *EvolvingGraph[N]) AddEdge(u, v N, t int64) {
	if g.frozen != nil {
		panic("egraph: AddEdge after Freeze")
	}
	g.builder.AddEdge(g.Intern(u), g.Intern(v), t)
}

// Freeze builds the underlying IntEvolvingGraph. Idempotent.
func (g *EvolvingGraph[N]) Freeze() *IntEvolvingGraph {
	if g.frozen == nil {
		ig := g.builder.Build()
		// Interned labels that never appeared on an edge must still be
		// representable in the id space.
		if ig.NumNodes() < len(g.labels) {
			ig = ig.withNumNodes(len(g.labels))
		}
		g.frozen = ig
	}
	return g.frozen
}

// Graph returns the frozen IntEvolvingGraph, freezing on first use.
func (g *EvolvingGraph[N]) Graph() *IntEvolvingGraph { return g.Freeze() }
