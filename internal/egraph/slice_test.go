package egraph

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestSliceWindow(t *testing.T) {
	g := Figure1Graph()
	mid := g.Slice(2, 3)
	if mid.NumStamps() != 2 {
		t.Fatalf("stamps = %d, want 2", mid.NumStamps())
	}
	if !mid.HasEdge(0, 2, 0) || !mid.HasEdge(1, 2, 1) {
		t.Fatal("sliced edges wrong")
	}
	// Node-id space preserved for temporal-node compatibility.
	if mid.NumNodes() != g.NumNodes() {
		t.Fatalf("NumNodes = %d, want %d", mid.NumNodes(), g.NumNodes())
	}
	// Empty window.
	empty := g.Slice(10, 20)
	if empty.NumStamps() != 0 {
		t.Fatal("empty window should have no stamps")
	}
	// Full window is identity on counts.
	full := g.Slice(1, 3)
	if full.StaticEdgeCount() != g.StaticEdgeCount() || full.NumActiveNodes() != g.NumActiveNodes() {
		t.Fatal("full slice lost content")
	}
}

func TestFlatten(t *testing.T) {
	g := Figure1Graph()
	flat := g.Flatten()
	if flat.NumStamps() != 1 {
		t.Fatalf("stamps = %d, want 1", flat.NumStamps())
	}
	if flat.StaticEdgeCount() != 3 {
		t.Fatalf("|E~| = %d, want 3", flat.StaticEdgeCount())
	}
	// The flattened graph hides time ordering: 1 reaches 3 via 2 even in
	// the swapped game where temporally it cannot. That's the point.
	swapped := IntroGameGraph(true).Flatten()
	if !swapped.HasEdge(0, 1, 0) || !swapped.HasEdge(1, 2, 0) {
		t.Fatal("flattened game lost edges")
	}
}

func TestFlattenSumsWeights(t *testing.T) {
	b := NewWeightedBuilder(true)
	b.AddWeightedEdge(0, 1, 1, 2)
	b.AddWeightedEdge(0, 1, 2, 3)
	g := b.Build()
	flat := g.Flatten()
	w := flat.OutWeights(0, 0)
	if len(w) != 1 || w[0] != 5 {
		t.Fatalf("flattened weight = %v, want [5]", w)
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := Figure1Graph()
	sub := g.InducedSubgraph([]int32{0, 1})
	// Only 1→2@t1 survives (edges to node 2 drop).
	if sub.StaticEdgeCount() != 1 {
		t.Fatalf("|E~| = %d, want 1", sub.StaticEdgeCount())
	}
	if !sub.HasEdge(0, 1, 0) {
		t.Fatal("surviving edge wrong")
	}
	if sub.NumNodes() != g.NumNodes() {
		t.Fatal("id space changed")
	}
	none := g.InducedSubgraph(nil)
	if none.StaticEdgeCount() != 0 {
		t.Fatal("empty keep set should drop all edges")
	}
}

// Property: slicing [min,max] is the identity on edge content, and
// slicing two disjoint windows partitions the static edge count.
func TestSlicePartition(t *testing.T) {
	f := func(seed int64, directed bool) bool {
		rng := rand.New(rand.NewSource(seed))
		g := RandomGraph(rng, directed)
		labels := g.TimeLabels()
		minL, maxL := labels[0], labels[len(labels)-1]
		if g.Slice(minL, maxL).StaticEdgeCount() != g.StaticEdgeCount() {
			return false
		}
		mid := labels[len(labels)/2]
		lo := g.Slice(minL, mid)
		hi := g.Slice(mid+1, maxL)
		return lo.StaticEdgeCount()+hi.StaticEdgeCount() == g.StaticEdgeCount()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsFigure1(t *testing.T) {
	g := Figure1Graph()
	s := g.Stats()
	if s.Nodes != 3 || s.Stamps != 3 || s.StaticEdges != 3 || s.ActiveNodes != 6 {
		t.Fatalf("stats = %+v", s)
	}
	if s.CausalAllPairs != 3 || s.CausalConsec != 3 {
		t.Fatalf("causal counts = %d/%d, want 3/3", s.CausalAllPairs, s.CausalConsec)
	}
	if s.MaxOutDegree != 1 {
		t.Fatalf("MaxOutDegree = %d, want 1", s.MaxOutDegree)
	}
	if s.EverActiveNodes != 3 || s.MaxActivity != 2 {
		t.Fatalf("activity stats wrong: %+v", s)
	}
	if s.MeanActivity != 2 {
		t.Fatalf("MeanActivity = %g, want 2", s.MeanActivity)
	}
	str := s.String()
	for _, want := range []string{"directed", "3 nodes", "static edges", "all-pairs"} {
		if !strings.Contains(str, want) {
			t.Fatalf("summary %q missing %q", str, want)
		}
	}
}

func TestStatsEdgesPerSnapshot(t *testing.T) {
	b := NewBuilder(true)
	b.AddEdge(0, 1, 1)
	b.AddEdge(0, 2, 1)
	b.AddEdge(1, 2, 5)
	g := b.Build()
	s := g.Stats()
	if len(s.EdgesPerSnapshot) != 2 || s.EdgesPerSnapshot[0] != 2 || s.EdgesPerSnapshot[1] != 1 {
		t.Fatalf("EdgesPerSnapshot = %v", s.EdgesPerSnapshot)
	}
}
