// Package egraph implements the evolving-graph data structures of
// Chen & Zhang 2016: an evolving graph G_n = ⟨G[1], …, G[n]⟩ is a
// time-ordered sequence of static snapshots. The workhorse type is
// IntEvolvingGraph — dense int node ids, per-stamp CSR adjacency, and
// per-node active-stamp lists — mirroring the IntEvolvingGraph type of
// the authors' EvolvingGraphs.jl. A generic labelled wrapper
// (EvolvingGraph) interns arbitrary comparable node labels.
//
// Terminology follows the paper:
//
//   - A temporal node is a pair (v, t) of a node and a stamp (Def. 2).
//   - (v, t) is active iff some edge of E[t] joins v to a *different*
//     node (Def. 3); self-loops alone do not activate a node and are
//     dropped at build time (they can take part in no temporal path).
//   - Causal edges connect (v, s) to (v, t) for s < t when both are
//     active (proof of Thm. 1). The paper's definition takes all such
//     pairs; CausalConsecutive is a reduced variant for ablations.
package egraph

import (
	"fmt"
	"sort"

	"repro/internal/ds"
)

// TemporalNode identifies a node at a stamp index (not a raw time label).
type TemporalNode struct {
	Node  int32 // dense node id
	Stamp int32 // stamp index in 0..NumStamps()-1
}

func (tn TemporalNode) String() string {
	return fmt.Sprintf("(%d,t%d)", tn.Node, tn.Stamp+1)
}

// CausalMode selects which causal edges connect the same node across
// stamps.
type CausalMode int

const (
	// CausalAllPairs is the paper's definition: every pair s < t of
	// stamps where the node is active yields a causal edge.
	CausalAllPairs CausalMode = iota
	// CausalConsecutive keeps only edges to the next active stamp.
	// Reachability is unchanged; distances can grow (ablation mode).
	CausalConsecutive
)

func (m CausalMode) String() string {
	switch m {
	case CausalAllPairs:
		return "all-pairs"
	case CausalConsecutive:
		return "consecutive"
	default:
		return fmt.Sprintf("CausalMode(%d)", int(m))
	}
}

// snapshot is one static graph G[t] in CSR form (out- and in-adjacency).
type snapshot struct {
	outPtr []int32
	outAdj []int32
	outW   []float64 // nil for unweighted graphs
	inPtr  []int32
	inAdj  []int32
	inW    []float64
	active *ds.BitSet
	edges  int // directed edge count (undirected edges count once)
}

// IntEvolvingGraph is an immutable evolving graph over dense int32 node
// ids 0..NumNodes()-1 and stamp indices 0..NumStamps()-1. Build one with
// a Builder. All query methods are safe for concurrent use.
type IntEvolvingGraph struct {
	directed  bool
	weighted  bool
	times     []int64 // sorted distinct time labels, times[i] labels stamp i
	snaps     []snapshot
	activeAt  [][]int32 // per node: sorted stamp indices where active
	numNodes  int
	numActive int // total active temporal nodes |V|
	csrCache      // lazily built flat CSR view (DESIGN.md §8)
}

// NumNodes returns the size of the node id space N (max id + 1).
func (g *IntEvolvingGraph) NumNodes() int { return g.numNodes }

// NumStamps returns the number of time stamps n.
func (g *IntEvolvingGraph) NumStamps() int { return len(g.snaps) }

// Directed reports whether edges are directed.
func (g *IntEvolvingGraph) Directed() bool { return g.directed }

// Weighted reports whether the graph stores edge weights.
func (g *IntEvolvingGraph) Weighted() bool { return g.weighted }

// TimeLabel returns the user-supplied time label of stamp index t.
func (g *IntEvolvingGraph) TimeLabel(t int) int64 { return g.times[t] }

// TimeLabels returns all labels in stamp order (a copy).
func (g *IntEvolvingGraph) TimeLabels() []int64 {
	return append([]int64(nil), g.times...)
}

// StampOf returns the stamp index of a time label, or -1 if no snapshot
// carries that label.
func (g *IntEvolvingGraph) StampOf(label int64) int {
	i := sort.Search(len(g.times), func(i int) bool { return g.times[i] >= label })
	if i < len(g.times) && g.times[i] == label {
		return i
	}
	return -1
}

// IsActive reports whether temporal node (v, t) is active (Def. 3).
func (g *IntEvolvingGraph) IsActive(v, t int32) bool {
	return g.snaps[t].active.Get(int(v))
}

// ActiveStamps returns the sorted stamp indices at which v is active.
// The slice aliases internal storage and must not be mutated.
func (g *IntEvolvingGraph) ActiveStamps(v int32) []int32 { return g.activeAt[v] }

// NextActiveStamp returns the smallest active stamp of v strictly after
// t, or -1 if none exists.
func (g *IntEvolvingGraph) NextActiveStamp(v, t int32) int32 {
	st := g.activeAt[v]
	i := sort.Search(len(st), func(i int) bool { return st[i] > t })
	if i == len(st) {
		return -1
	}
	return st[i]
}

// PrevActiveStamp returns the largest active stamp of v strictly before
// t, or -1 if none exists.
func (g *IntEvolvingGraph) PrevActiveStamp(v, t int32) int32 {
	st := g.activeAt[v]
	i := sort.Search(len(st), func(i int) bool { return st[i] >= t })
	if i == 0 {
		return -1
	}
	return st[i-1]
}

// ActiveNodes returns the set of nodes active at stamp t.
func (g *IntEvolvingGraph) ActiveNodes(t int) *ds.BitSet { return g.snaps[t].active }

// NumActiveNodes returns |V|, the total number of active temporal nodes.
func (g *IntEvolvingGraph) NumActiveNodes() int { return g.numActive }

// ActiveTemporalNodes returns every active temporal node in stamp-major,
// node-ascending order — the same order as Unfold's Order field, without
// materialising the unfolded adjacency. It is the root enumeration used
// by the all-sources analytics sweeps (DESIGN.md §9).
func (g *IntEvolvingGraph) ActiveTemporalNodes() []TemporalNode {
	out := make([]TemporalNode, 0, g.numActive)
	for t := range g.snaps {
		a := g.snaps[t].active
		for v := a.NextSet(0); v >= 0; v = a.NextSet(v + 1) {
			out = append(out, TemporalNode{Node: int32(v), Stamp: int32(t)})
		}
	}
	return out
}

// OutNeighbors returns the static out-neighbours of v at stamp t. For
// undirected graphs this includes both endpoints' views. The slice
// aliases internal storage and must not be mutated.
func (g *IntEvolvingGraph) OutNeighbors(v, t int32) []int32 {
	s := &g.snaps[t]
	return s.outAdj[s.outPtr[v]:s.outPtr[v+1]]
}

// OutWeights returns the weights parallel to OutNeighbors, or nil for
// unweighted graphs.
func (g *IntEvolvingGraph) OutWeights(v, t int32) []float64 {
	s := &g.snaps[t]
	if s.outW == nil {
		return nil
	}
	return s.outW[s.outPtr[v]:s.outPtr[v+1]]
}

// InNeighbors returns the static in-neighbours of v at stamp t (equal to
// OutNeighbors for undirected graphs).
func (g *IntEvolvingGraph) InNeighbors(v, t int32) []int32 {
	s := &g.snaps[t]
	return s.inAdj[s.inPtr[v]:s.inPtr[v+1]]
}

// OutDegree returns the static out-degree of v at stamp t.
func (g *IntEvolvingGraph) OutDegree(v, t int32) int {
	s := &g.snaps[t]
	return int(s.outPtr[v+1] - s.outPtr[v])
}

// StaticEdgeCount returns |Ẽ|: the total number of static edges summed
// over stamps (undirected edges counted once).
func (g *IntEvolvingGraph) StaticEdgeCount() int {
	c := 0
	for i := range g.snaps {
		c += g.snaps[i].edges
	}
	return c
}

// SnapshotEdgeCount returns the number of edges in G[t].
func (g *IntEvolvingGraph) SnapshotEdgeCount(t int) int { return g.snaps[t].edges }

// CausalEdgeCount returns |E′| under the given mode.
func (g *IntEvolvingGraph) CausalEdgeCount(mode CausalMode) int {
	c := 0
	for _, st := range g.activeAt {
		k := len(st)
		if k < 2 {
			continue
		}
		switch mode {
		case CausalAllPairs:
			c += k * (k - 1) / 2
		case CausalConsecutive:
			c += k - 1
		}
	}
	return c
}

// EdgeCount returns |E| = |Ẽ| + |E′| of the unfolded static graph,
// counting undirected static edges twice (they unfold to two arcs).
func (g *IntEvolvingGraph) EdgeCount(mode CausalMode) int {
	static := g.StaticEdgeCount()
	if !g.directed {
		static *= 2
	}
	return static + g.CausalEdgeCount(mode)
}

// HasEdge reports whether the static edge u→v exists at stamp t
// (either direction for undirected graphs). Out-of-range endpoints or
// stamps answer false — callers resolving stamps from labels (e.g.
// after an ingest fold dropped an emptied stamp, StampOf returns -1)
// get a definitive "no" rather than a panic, matching dynadj's
// View.HasEdge contract.
func (g *IntEvolvingGraph) HasEdge(u, v, t int32) bool {
	if u < 0 || int(u) >= g.numNodes || v < 0 || int(v) >= g.numNodes ||
		t < 0 || int(t) >= len(g.snaps) {
		return false
	}
	adj := g.OutNeighbors(u, t)
	i := sort.Search(len(adj), func(i int) bool { return adj[i] >= v })
	return i < len(adj) && adj[i] == v
}

// VisitEdges calls fn for every static edge (u, v) of stamp t, in
// u-major order. For undirected graphs each edge is reported once, with
// u ≤ v. Iteration stops early if fn returns false.
func (g *IntEvolvingGraph) VisitEdges(t int32, fn func(u, v int32, w float64) bool) {
	s := &g.snaps[t]
	for u := int32(0); u < int32(g.numNodes); u++ {
		for p := s.outPtr[u]; p < s.outPtr[u+1]; p++ {
			v := s.outAdj[p]
			if !g.directed && v < u {
				continue // report undirected edges once
			}
			w := 1.0
			if s.outW != nil {
				w = s.outW[p]
			}
			if !fn(u, v, w) {
				return
			}
		}
	}
}

// TemporalNodeID packs (v, t) into a dense id t·N + v, the block-vector
// index used by the algebraic BFS.
func (g *IntEvolvingGraph) TemporalNodeID(tn TemporalNode) int {
	return int(tn.Stamp)*g.numNodes + int(tn.Node)
}

// TemporalNodeFromID is the inverse of TemporalNodeID.
func (g *IntEvolvingGraph) TemporalNodeFromID(id int) TemporalNode {
	return TemporalNode{Node: int32(id % g.numNodes), Stamp: int32(id / g.numNodes)}
}
