package egraph

import (
	"fmt"

	"repro/internal/ds"
)

// Raw is the deconstructed storage of an IntEvolvingGraph: every dense
// slice behind the query surface, exposed so a checkpoint writer can
// persist them verbatim and a reader can reassemble the graph around
// mmap'd sections without re-deriving anything. The slices alias the
// graph's internal storage — treat them as read-only.
type Raw struct {
	Directed  bool
	Weighted  bool
	NumNodes  int
	NumActive int
	Times     []int64
	Snaps     []RawSnapshot
}

// RawSnapshot is the raw storage of one per-stamp snapshot: CSR rows
// over node ids plus the stamp's active-node bitset.
type RawSnapshot struct {
	OutPtr []int32
	OutAdj []int32
	OutW   []float64 // nil for unweighted graphs
	InPtr  []int32
	InAdj  []int32
	InW    []float64
	Active *ds.BitSet
	Edges  int
}

// Raw exports the graph's storage. The result aliases the graph.
func (g *IntEvolvingGraph) Raw() Raw {
	r := Raw{
		Directed:  g.directed,
		Weighted:  g.weighted,
		NumNodes:  g.numNodes,
		NumActive: g.numActive,
		Times:     g.times,
		Snaps:     make([]RawSnapshot, len(g.snaps)),
	}
	for i, s := range g.snaps {
		r.Snaps[i] = RawSnapshot{
			OutPtr: s.outPtr, OutAdj: s.outAdj, OutW: s.outW,
			InPtr: s.inPtr, InAdj: s.inAdj, InW: s.inW,
			Active: s.active, Edges: s.edges,
		}
	}
	return r
}

// FromRaw assembles a graph directly from raw storage, skipping the
// Builder. The caller is responsible for the Builder invariants (sorted
// rows, consistent bitsets, NumActive matching the bitsets); the
// checkpoint reader validates them against the file before calling.
//
// actPtr/actStamps are the flattened per-node active-stamp lists (the
// same layout as CSR.ActPtr/ActStamps); the per-node activeAt rows are
// rebuilt as subslice headers over actStamps, so an mmap'd section
// backs them with no copying. When csr is non-nil it is installed as
// the graph's prebuilt flat view: EnsureCSR returns it as-is and never
// runs a build, which is what makes a checkpoint boot O(1) in the
// graph size.
func FromRaw(r Raw, actPtr, actStamps []int32, csr *CSR) *IntEvolvingGraph {
	if len(actPtr) != r.NumNodes+1 {
		panic(fmt.Sprintf("egraph: FromRaw: actPtr has %d entries for %d nodes", len(actPtr), r.NumNodes))
	}
	g := &IntEvolvingGraph{
		directed:  r.Directed,
		weighted:  r.Weighted,
		times:     r.Times,
		snaps:     make([]snapshot, len(r.Snaps)),
		activeAt:  make([][]int32, r.NumNodes),
		numNodes:  r.NumNodes,
		numActive: r.NumActive,
	}
	for i, s := range r.Snaps {
		g.snaps[i] = snapshot{
			outPtr: s.OutPtr, outAdj: s.OutAdj, outW: s.OutW,
			inPtr: s.InPtr, inAdj: s.InAdj, inW: s.InW,
			active: s.Active, edges: s.Edges,
		}
	}
	for v := 0; v < r.NumNodes; v++ {
		g.activeAt[v] = actStamps[actPtr[v]:actPtr[v+1]:actPtr[v+1]]
	}
	if csr != nil {
		// Consume the once so EnsureCSR serves the prebuilt view.
		g.csrOnce.Do(func() { g.csr = csr })
	}
	return g
}
