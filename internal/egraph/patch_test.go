package egraph

import (
	"math/rand"
	"reflect"
	"testing"
)

// foldOracle rebuilds base+delta from scratch through a Builder with
// exactly ingest.Fold's semantics (last op per arc wins, re-adds keep
// base's weight, removals of absent arcs are no-ops) — the
// differential oracle every Patch test races against.
func foldOracle(base *IntEvolvingGraph, delta []ArcDelta) *IntEvolvingGraph {
	type op struct {
		del bool
		w   float64
	}
	final := make(map[patchKey]op)
	for _, d := range delta {
		if d.U == d.V {
			continue
		}
		k := patchKey{u: d.U, v: d.V, t: d.T}
		if !base.directed && k.u > k.v {
			k.u, k.v = k.v, k.u
		}
		final[k] = op{del: d.Del, w: d.W}
	}
	var b *Builder
	if base.weighted {
		b = NewWeightedBuilder(base.directed)
	} else {
		b = NewBuilder(base.directed)
	}
	for t := 0; t < base.NumStamps(); t++ {
		label := base.TimeLabel(t)
		base.VisitEdges(int32(t), func(u, v int32, w float64) bool {
			k := patchKey{u: u, v: v, t: label} // VisitEdges reports undirected edges with u ≤ v
			if o, ok := final[k]; ok {
				if o.del {
					return true
				}
				delete(final, k) // re-added: keep base's weight
			}
			b.AddWeightedEdge(u, v, label, w)
			return true
		})
	}
	for k, o := range final {
		if !o.del {
			b.AddWeightedEdge(k.u, k.v, k.t, o.w)
		}
	}
	return b.Build()
}

// edgeRec is one (u, v, w) edge of a stamp, for stream comparison.
type edgeRec struct {
	u, v int32
	w    float64
}

func edgeStream(g *IntEvolvingGraph, t int32) []edgeRec {
	var out []edgeRec
	g.VisitEdges(t, func(u, v int32, w float64) bool {
		out = append(out, edgeRec{u, v, w})
		return true
	})
	return out
}

// requireEquivalent asserts got and want are the same evolving graph:
// identical shape, labels, per-stamp edge streams with weights, active
// structure, and a bit-identical flat CSR view.
func requireEquivalent(t *testing.T, got, want *IntEvolvingGraph) {
	t.Helper()
	if got.Directed() != want.Directed() || got.Weighted() != want.Weighted() {
		t.Fatalf("flags: got (%v,%v), want (%v,%v)", got.Directed(), got.Weighted(), want.Directed(), want.Weighted())
	}
	if got.NumNodes() != want.NumNodes() {
		t.Fatalf("NumNodes: got %d, want %d", got.NumNodes(), want.NumNodes())
	}
	if !reflect.DeepEqual(got.TimeLabels(), want.TimeLabels()) {
		t.Fatalf("TimeLabels: got %v, want %v", got.TimeLabels(), want.TimeLabels())
	}
	if got.NumActiveNodes() != want.NumActiveNodes() {
		t.Fatalf("NumActiveNodes: got %d, want %d", got.NumActiveNodes(), want.NumActiveNodes())
	}
	if got.StaticEdgeCount() != want.StaticEdgeCount() {
		t.Fatalf("StaticEdgeCount: got %d, want %d", got.StaticEdgeCount(), want.StaticEdgeCount())
	}
	for st := 0; st < want.NumStamps(); st++ {
		if got.SnapshotEdgeCount(st) != want.SnapshotEdgeCount(st) {
			t.Fatalf("stamp %d edge count: got %d, want %d", st, got.SnapshotEdgeCount(st), want.SnapshotEdgeCount(st))
		}
		if ge, we := edgeStream(got, int32(st)), edgeStream(want, int32(st)); !reflect.DeepEqual(ge, we) {
			t.Fatalf("stamp %d edges:\ngot  %v\nwant %v", st, ge, we)
		}
	}
	for v := int32(0); v < int32(want.NumNodes()); v++ {
		ga, wa := got.ActiveStamps(v), want.ActiveStamps(v)
		if len(ga) != len(wa) {
			t.Fatalf("node %d ActiveStamps: got %v, want %v", v, ga, wa)
		}
		for i := range ga {
			if ga[i] != wa[i] {
				t.Fatalf("node %d ActiveStamps: got %v, want %v", v, ga, wa)
			}
		}
	}
	// The flat views must come out byte-identical — the same assertion
	// egbench's compact suite races in CI.
	gc := BuildFlatCSR(got, CSRBuildOptions{Workers: 1})
	wc := BuildFlatCSR(want, CSRBuildOptions{Workers: 1})
	if !reflect.DeepEqual(gc, wc) {
		t.Fatalf("flat CSR views differ")
	}
}

// randomBase builds a reproducible base graph. Labels are spaced by 10
// so deltas can insert stamps mid-axis.
func randomBase(directed, weighted bool, nodes, stamps, edges int, seed int64) *IntEvolvingGraph {
	rng := rand.New(rand.NewSource(seed))
	var b *Builder
	if weighted {
		b = NewWeightedBuilder(directed)
	} else {
		b = NewBuilder(directed)
	}
	for i := 0; i < edges; i++ {
		u := int32(rng.Intn(nodes))
		v := int32(rng.Intn(nodes))
		if u == v {
			v = (v + 1) % int32(nodes)
		}
		b.AddWeightedEdge(u, v, int64(10*(1+rng.Intn(stamps))), 1+rng.Float64())
	}
	return b.Build()
}

// collectArcs samples existing canonical arcs for remove events.
func collectArcs(g *IntEvolvingGraph) []ArcDelta {
	var arcs []ArcDelta
	for t := 0; t < g.NumStamps(); t++ {
		label := g.TimeLabel(t)
		g.VisitEdges(int32(t), func(u, v int32, w float64) bool {
			arcs = append(arcs, ArcDelta{U: u, V: v, T: label})
			return true
		})
	}
	return arcs
}

// TestPatchEquivalenceRandom races Patch against the full-rebuild
// oracle across directed/undirected × weighted/unweighted bases under
// random deltas mixing insertions (including brand-new nodes and
// labels, mid-axis and appended), removals of existing arcs, removals
// of absent arcs, and re-adds.
func TestPatchEquivalenceRandom(t *testing.T) {
	for _, directed := range []bool{true, false} {
		for _, weighted := range []bool{true, false} {
			base := randomBase(directed, weighted, 60, 5, 400, 42)
			existing := collectArcs(base)
			for seed := int64(0); seed < 8; seed++ {
				rng := rand.New(rand.NewSource(1000 + seed))
				var delta []ArcDelta
				size := 1 + rng.Intn(200)
				for i := 0; i < size; i++ {
					switch rng.Intn(10) {
					case 0, 1, 2: // remove an existing arc
						a := existing[rng.Intn(len(existing))]
						a.Del = true
						delta = append(delta, a)
					case 3: // remove an absent arc (maybe unknown node)
						delta = append(delta, ArcDelta{
							U: int32(rng.Intn(80)), V: int32(60 + rng.Intn(40)),
							T: int64(10 * (1 + rng.Intn(5))), Del: true,
						})
					case 4: // re-add an existing arc (weight must survive)
						a := existing[rng.Intn(len(existing))]
						a.W = 99
						delta = append(delta, a)
					case 5: // new label — mid-axis or appended
						delta = append(delta, ArcDelta{
							U: int32(rng.Intn(60)), V: int32(rng.Intn(60)),
							T: int64(5 + 10*rng.Intn(7)), W: 1,
						})
					default: // plain add, occasionally growing the universe
						delta = append(delta, ArcDelta{
							U: int32(rng.Intn(70)), V: int32(rng.Intn(70)),
							T: int64(10 * (1 + rng.Intn(5))), W: 1 + rng.Float64(),
						})
					}
				}
				got := Patch(base, delta)
				want := foldOracle(base, delta)
				requireEquivalent(t, got, want)
			}
		}
	}
}

// TestPatchEmptyDelta asserts the no-copy contract: an empty delta
// returns base itself — pointer-identical, arc slices and all.
func TestPatchEmptyDelta(t *testing.T) {
	base := randomBase(true, false, 20, 3, 60, 7)
	if got := Patch(base, nil); got != base {
		t.Fatalf("Patch(base, nil) returned a new graph, want base itself")
	}
	if got := Patch(base, []ArcDelta{}); got != base {
		t.Fatalf("Patch(base, []) returned a new graph, want base itself")
	}
}

// TestPatchNoopDelta asserts a structurally empty delta (re-adds of
// present arcs, removals of absent ones, self-loops) also returns base
// itself: indistinguishable from an empty delta, so not even the
// top-level slices are copied.
func TestPatchNoopDelta(t *testing.T) {
	base := randomBase(true, true, 20, 3, 60, 7)
	arc := collectArcs(base)[0]
	delta := []ArcDelta{
		{U: arc.U, V: arc.V, T: arc.T, W: 123},          // re-add: keeps base's weight
		{U: 17, V: 18, T: 999, Del: true},               // unknown label
		{U: 18, V: 19, T: base.TimeLabel(0), Del: true}, // absent arc (maybe)
		{U: 5, V: 5, T: base.TimeLabel(0), W: 1},        // self-loop
	}
	// Make the "absent arc" genuinely absent.
	if base.HasEdge(18, 19, 0) {
		delta[2].U, delta[2].V = 18, 18 // degenerate to a self-loop instead
	}
	if got := Patch(base, delta); got != base {
		t.Fatalf("no-op delta returned a new graph, want base itself")
	}
}

// TestPatchSharesUntouchedStamps asserts the copy-on-write contract at
// the slice level: a delta touching only one stamp leaves every other
// stamp's arc arrays shared with base by pointer and capacity.
func TestPatchSharesUntouchedStamps(t *testing.T) {
	base := randomBase(true, true, 40, 4, 300, 9)
	label := base.TimeLabel(1)
	got := Patch(base, []ArcDelta{{U: 0, V: 39, T: label, W: 2}})
	if got == base {
		t.Fatalf("structural delta returned base itself")
	}
	for st := 0; st < base.NumStamps(); st++ {
		bs, gs := &base.snaps[st], &got.snaps[st]
		shared := len(gs.outAdj) == len(bs.outAdj) && cap(gs.outAdj) == cap(bs.outAdj) &&
			(len(bs.outAdj) == 0 || &gs.outAdj[0] == &bs.outAdj[0])
		if st == 1 {
			if shared {
				t.Fatalf("stamp %d was patched but still shares outAdj with base", st)
			}
			continue
		}
		if !shared {
			t.Fatalf("untouched stamp %d does not share outAdj with base", st)
		}
		if len(bs.outW) > 0 && &gs.outW[0] != &bs.outW[0] {
			t.Fatalf("untouched stamp %d does not share outW with base", st)
		}
	}
	// Untouched nodes share their active-stamp rows too.
	for v := int32(1); v < 39; v++ {
		br, gr := base.activeAt[v], got.activeAt[v]
		if len(br) > 0 && &gr[0] != &br[0] {
			t.Fatalf("untouched node %d does not share its activeAt row", v)
		}
	}
	requireEquivalent(t, got, foldOracle(base, []ArcDelta{{U: 0, V: 39, T: label, W: 2}}))
}

// TestPatchReAddKeepsWeight pins the weight-preserving re-add rule.
func TestPatchReAddKeepsWeight(t *testing.T) {
	b := NewWeightedBuilder(true)
	b.AddWeightedEdge(0, 1, 10, 5)
	b.AddWeightedEdge(1, 2, 10, 7)
	base := b.Build()
	got := Patch(base, []ArcDelta{
		{U: 0, V: 1, T: 10, W: 99}, // re-add: weight must stay 5
		{U: 2, V: 0, T: 10, W: 3},  // genuinely new: weight 3
	})
	ws := got.OutWeights(0, 0)
	if len(ws) != 1 || ws[0] != 5 {
		t.Fatalf("re-added arc weight = %v, want [5]", ws)
	}
	if ws := got.OutWeights(2, 0); len(ws) != 1 || ws[0] != 3 {
		t.Fatalf("new arc weight = %v, want [3]", ws)
	}
	requireEquivalent(t, got, foldOracle(base, []ArcDelta{
		{U: 0, V: 1, T: 10, W: 99}, {U: 2, V: 0, T: 10, W: 3},
	}))
}

// TestPatchNewStamp covers stamp creation at both axis positions and
// the label-with-no-surviving-adds rule.
func TestPatchNewStamp(t *testing.T) {
	base := randomBase(false, false, 30, 3, 120, 3) // labels 10, 20, 30
	cases := map[string][]ArcDelta{
		"appended": {{U: 1, V: 2, T: 40, W: 1}},
		"mid-axis": {{U: 1, V: 2, T: 15, W: 1}},
		"new label, adds all removed": {
			{U: 1, V: 2, T: 15, W: 1},
			{U: 1, V: 2, T: 15, Del: true},
		},
		"new label, removals only": {{U: 1, V: 2, T: 25, Del: true}},
	}
	for name, delta := range cases {
		got := Patch(base, delta)
		want := foldOracle(base, delta)
		if got.NumStamps() != want.NumStamps() {
			t.Fatalf("%s: NumStamps got %d, want %d", name, got.NumStamps(), want.NumStamps())
		}
		requireEquivalent(t, got, want)
	}
}

// TestPatchDropsEmptiedStamp removes every arc of one stamp: the stamp
// must vanish and later stamp indices shift, exactly as a full rebuild
// would renumber them.
func TestPatchDropsEmptiedStamp(t *testing.T) {
	base := randomBase(true, false, 25, 4, 150, 5)
	var delta []ArcDelta
	label := base.TimeLabel(1)
	base.VisitEdges(1, func(u, v int32, w float64) bool {
		delta = append(delta, ArcDelta{U: u, V: v, T: label, Del: true})
		return true
	})
	got := Patch(base, delta)
	want := foldOracle(base, delta)
	if got.NumStamps() != base.NumStamps()-1 {
		t.Fatalf("NumStamps = %d, want %d", got.NumStamps(), base.NumStamps()-1)
	}
	requireEquivalent(t, got, want)
}

// TestPatchUniverseGrowAndShrink covers node-id growth from inserted
// arcs and shrink when the top of the id space loses its last edge.
func TestPatchUniverseGrowAndShrink(t *testing.T) {
	b := NewBuilder(true)
	b.AddEdge(0, 1, 10)
	b.AddEdge(1, 2, 20)
	b.AddEdge(0, 9, 20) // node 9 is the top of the universe
	base := b.Build()
	if base.NumNodes() != 10 {
		t.Fatalf("base NumNodes = %d, want 10", base.NumNodes())
	}
	grow := []ArcDelta{{U: 3, V: 14, T: 10, W: 1}}
	got := Patch(base, grow)
	if got.NumNodes() != 15 {
		t.Fatalf("grown NumNodes = %d, want 15", got.NumNodes())
	}
	requireEquivalent(t, got, foldOracle(base, grow))

	shrink := []ArcDelta{{U: 0, V: 9, T: 20, Del: true}}
	got = Patch(base, shrink)
	if got.NumNodes() != 3 {
		t.Fatalf("shrunk NumNodes = %d, want 3", got.NumNodes())
	}
	requireEquivalent(t, got, foldOracle(base, shrink))

	// Regrow after the shrink, to a universe between the shrunk and the
	// original size: the surviving snapshots' rows are still sized for
	// the pre-shrink universe, which the next patch must tolerate (found
	// by the internal/inc fuzz harness — this used to panic).
	shrunk := got
	regrow := []ArcDelta{{U: 3, V: 6, T: 10, W: 1}}
	got = Patch(shrunk, regrow)
	if got.NumNodes() != 7 {
		t.Fatalf("regrown NumNodes = %d, want 7", got.NumNodes())
	}
	requireEquivalent(t, got, foldOracle(shrunk, regrow))
	// And past the original size, touching both a rebuilt and a shared
	// stamp.
	regrow = []ArcDelta{{U: 4, V: 12, T: 20, W: 1}, {U: 0, V: 1, T: 10, Del: true}}
	got = Patch(shrunk, regrow)
	if got.NumNodes() != 13 {
		t.Fatalf("regrown NumNodes = %d, want 13", got.NumNodes())
	}
	requireEquivalent(t, got, foldOracle(shrunk, regrow))
}

// TestPatchIsPure asserts base is untouched by a heavily overlapping
// patch: same edge streams and flat view before and after.
func TestPatchIsPure(t *testing.T) {
	base := randomBase(false, true, 30, 4, 200, 13)
	before := make([][]edgeRec, base.NumStamps())
	for st := range before {
		before[st] = edgeStream(base, int32(st))
	}
	var delta []ArcDelta
	for _, a := range collectArcs(base)[:50] {
		a.Del = true
		delta = append(delta, a)
	}
	delta = append(delta, ArcDelta{U: 50, V: 51, T: 999, W: 2})
	_ = Patch(base, delta)
	for st := range before {
		if !reflect.DeepEqual(edgeStream(base, int32(st)), before[st]) {
			t.Fatalf("Patch mutated base at stamp %d", st)
		}
	}
}

// TestPatchChained applies several deltas in sequence — the compactor's
// epoch-by-epoch shape — racing each step against the oracle.
func TestPatchChained(t *testing.T) {
	cur := randomBase(true, false, 40, 4, 250, 21)
	oracle := cur
	rng := rand.New(rand.NewSource(77))
	for epoch := 0; epoch < 6; epoch++ {
		var delta []ArcDelta
		for i := 0; i < 40; i++ {
			if rng.Intn(3) == 0 {
				arcs := collectArcs(oracle)
				if len(arcs) > 0 {
					a := arcs[rng.Intn(len(arcs))]
					a.Del = true
					delta = append(delta, a)
					continue
				}
			}
			delta = append(delta, ArcDelta{
				U: int32(rng.Intn(45)), V: int32(rng.Intn(45)),
				T: int64(10 * (1 + rng.Intn(6))), W: 1,
			})
		}
		cur = Patch(cur, delta)
		oracle = foldOracle(oracle, delta)
		requireEquivalent(t, cur, oracle)
	}
}
