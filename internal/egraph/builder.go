package egraph

import (
	"fmt"
	"sort"

	"repro/internal/ds"
)

// Builder accumulates time-stamped edges and assembles an immutable
// IntEvolvingGraph. Edges may be added in any time order; stamps are
// sorted and de-duplicated at Build time. Duplicate (u,v,t) edges
// collapse to one (for weighted graphs the last weight wins).
type Builder struct {
	directed bool
	weighted bool
	edges    []rawEdge
	maxNode  int32
	selfDrop int
}

type rawEdge struct {
	u, v int32
	t    int64
	w    float64
}

// NewBuilder returns a Builder for a directed or undirected, unweighted
// evolving graph.
func NewBuilder(directed bool) *Builder {
	return &Builder{directed: directed, maxNode: -1}
}

// NewWeightedBuilder returns a Builder whose edges carry float64 weights.
func NewWeightedBuilder(directed bool) *Builder {
	return &Builder{directed: directed, weighted: true, maxNode: -1}
}

// AddEdge records the edge u→v (u—v if undirected) at time label t with
// weight 1. Self-loops are dropped (Def. 3: they activate nothing and can
// appear in no temporal path); DroppedSelfLoops counts them.
func (b *Builder) AddEdge(u, v int32, t int64) { b.AddWeightedEdge(u, v, t, 1) }

// AddWeightedEdge records the edge u→v at time label t with weight w.
func (b *Builder) AddWeightedEdge(u, v int32, t int64, w float64) {
	if u < 0 || v < 0 {
		panic(fmt.Sprintf("egraph: negative node id (%d,%d)", u, v))
	}
	if u == v {
		b.selfDrop++
		return
	}
	if u > b.maxNode {
		b.maxNode = u
	}
	if v > b.maxNode {
		b.maxNode = v
	}
	b.edges = append(b.edges, rawEdge{u: u, v: v, t: t, w: w})
}

// DroppedSelfLoops returns how many self-loop edges were discarded.
func (b *Builder) DroppedSelfLoops() int { return b.selfDrop }

// NumEdges returns the number of edges recorded so far (before dedup).
func (b *Builder) NumEdges() int { return len(b.edges) }

// Build assembles the immutable graph. The Builder may be reused
// afterwards (its edge list is not consumed).
func (b *Builder) Build() *IntEvolvingGraph {
	n := int(b.maxNode) + 1

	// Collect and index the distinct time labels.
	labelSet := make(map[int64]struct{}, 16)
	for i := range b.edges {
		labelSet[b.edges[i].t] = struct{}{}
	}
	times := make([]int64, 0, len(labelSet))
	for t := range labelSet {
		times = append(times, t)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	stampOf := make(map[int64]int32, len(times))
	for i, t := range times {
		stampOf[t] = int32(i)
	}

	g := &IntEvolvingGraph{
		directed: b.directed,
		weighted: b.weighted,
		times:    times,
		snaps:    make([]snapshot, len(times)),
		numNodes: n,
	}

	// Bucket edges per stamp, de-duplicating (u,v) within a stamp.
	perStamp := make([]map[edgeKey]float64, len(times))
	for i := range perStamp {
		perStamp[i] = make(map[edgeKey]float64)
	}
	for i := range b.edges {
		e := &b.edges[i]
		s := stampOf[e.t]
		k := edgeKey{e.u, e.v}
		if !b.directed && k.u > k.v {
			k.u, k.v = k.v, k.u // canonicalise undirected edges
		}
		perStamp[s][k] = e.w
	}

	for si := range perStamp {
		g.snaps[si] = buildSnapshot(n, b.directed, b.weighted, perStamp[si])
	}

	// Per-node active stamp lists and the |V| total.
	g.activeAt = make([][]int32, n)
	for si := range g.snaps {
		act := g.snaps[si].active
		for v := act.NextSet(0); v >= 0; v = act.NextSet(v + 1) {
			g.activeAt[v] = append(g.activeAt[v], int32(si))
			g.numActive++
		}
	}
	return g
}

// edgeKey identifies a (u, v) pair within one stamp.
type edgeKey struct {
	u, v int32
}

func buildSnapshot(n int, directed, weighted bool, edges map[edgeKey]float64) snapshot {
	type arc struct {
		u, v int32
		w    float64
	}
	// Expand to directed arcs (undirected edges become two arcs).
	arcs := make([]arc, 0, 2*len(edges))
	for k, w := range edges {
		arcs = append(arcs, arc{k.u, k.v, w})
		if !directed {
			arcs = append(arcs, arc{k.v, k.u, w})
		}
	}

	s := snapshot{active: ds.NewBitSet(n), edges: len(edges)}
	s.outPtr = make([]int32, n+1)
	s.inPtr = make([]int32, n+1)
	for _, a := range arcs {
		s.outPtr[a.u+1]++
		s.inPtr[a.v+1]++
		s.active.Set(int(a.u))
		s.active.Set(int(a.v))
	}
	for i := 0; i < n; i++ {
		s.outPtr[i+1] += s.outPtr[i]
		s.inPtr[i+1] += s.inPtr[i]
	}
	s.outAdj = make([]int32, len(arcs))
	s.inAdj = make([]int32, len(arcs))
	if weighted {
		s.outW = make([]float64, len(arcs))
		s.inW = make([]float64, len(arcs))
	}
	nextOut := make([]int32, n)
	nextIn := make([]int32, n)
	copy(nextOut, s.outPtr[:n])
	copy(nextIn, s.inPtr[:n])
	for _, a := range arcs {
		po := nextOut[a.u]
		s.outAdj[po] = a.v
		if weighted {
			s.outW[po] = a.w
		}
		nextOut[a.u] = po + 1

		pi := nextIn[a.v]
		s.inAdj[pi] = a.u
		if weighted {
			s.inW[pi] = a.w
		}
		nextIn[a.v] = pi + 1
	}
	// Sort adjacency within each node for binary-search lookups.
	for v := 0; v < n; v++ {
		sortAdj(s.outAdj, s.outW, int(s.outPtr[v]), int(s.outPtr[v+1]))
		sortAdj(s.inAdj, s.inW, int(s.inPtr[v]), int(s.inPtr[v+1]))
	}
	return s
}

func sortAdj(adj []int32, w []float64, lo, hi int) {
	if hi-lo < 2 {
		return
	}
	if w == nil {
		s := adj[lo:hi]
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		return
	}
	idx := make([]int, hi-lo)
	for i := range idx {
		idx[i] = i
	}
	a, ww := adj[lo:hi], w[lo:hi]
	sort.Slice(idx, func(i, j int) bool { return a[idx[i]] < a[idx[j]] })
	na := make([]int32, len(idx))
	nw := make([]float64, len(idx))
	for i, p := range idx {
		na[i], nw[i] = a[p], ww[p]
	}
	copy(a, na)
	copy(ww, nw)
}
