package egraph

import (
	"repro/internal/ds"
	"repro/internal/matrix"
)

// BlockMatrix assembles the block upper-triangular adjacency matrix A_n
// of Sec. III-C: diagonal blocks are the per-stamp one-sided adjacency
// matrices (Eq. 1), off-diagonal causal blocks act implicitly through the
// activity sets. Undirected edges appear in both (i,j) and (j,i) of the
// diagonal blocks, matching the two-arcs-per-edge unfolding of Thm. 1.
func (g *IntEvolvingGraph) BlockMatrix(mode CausalMode) *matrix.Block {
	n := g.numNodes
	diag := make([]*matrix.CSC, g.NumStamps())
	act := make([]*ds.BitSet, g.NumStamps())
	for t := 0; t < g.NumStamps(); t++ {
		coo := matrix.NewCOO(n, n)
		a := g.snaps[t].active
		for vi := a.NextSet(0); vi >= 0; vi = a.NextSet(vi + 1) {
			v := int32(vi)
			for _, w := range g.OutNeighbors(v, int32(t)) {
				coo.Add(int(v), int(w), 1)
			}
		}
		diag[t] = coo.ToCSC()
		act[t] = a.Clone()
	}
	blk := matrix.NewBlock(n, diag, act)
	blk.Consecutive = mode == CausalConsecutive
	return blk
}

// TimeReverse returns the evolving graph with time running backwards and
// every edge reversed: stamp i of the result is stamp n-1-i of g with
// u→v becoming v→u. A forward BFS on the reversal is exactly the
// paper's backward-in-time search (Sec. V: "by reversing the time
// labels, e.g. by the transformation t → −t"), used to compute
// influencer sets T⁻¹(a, t). Time labels are negated so they remain
// increasing.
func (g *IntEvolvingGraph) TimeReverse() *IntEvolvingGraph {
	var b *Builder
	if g.weighted {
		b = NewWeightedBuilder(g.directed)
	} else {
		b = NewBuilder(g.directed)
	}
	for t := int32(0); t < int32(g.NumStamps()); t++ {
		label := -g.times[t]
		g.VisitEdges(t, func(u, v int32, w float64) bool {
			b.AddWeightedEdge(v, u, label, w)
			return true
		})
	}
	rg := b.Build()
	// Preserve the node-id space even if high-numbered nodes only
	// appear in dropped positions (reversal drops nothing, but an
	// empty graph must keep its dimensions consistent).
	if rg.numNodes < g.numNodes {
		rg = rg.withNumNodes(g.numNodes)
	}
	return rg
}

// withNumNodes widens the node-id space to n (n ≥ current). Used when a
// derived graph must stay index-compatible with its source.
func (g *IntEvolvingGraph) withNumNodes(n int) *IntEvolvingGraph {
	if n <= g.numNodes {
		return g
	}
	ng := &IntEvolvingGraph{
		directed:  g.directed,
		weighted:  g.weighted,
		times:     g.times,
		snaps:     make([]snapshot, len(g.snaps)),
		activeAt:  make([][]int32, n),
		numNodes:  n,
		numActive: g.numActive,
	}
	copy(ng.activeAt, g.activeAt)
	for i := range g.snaps {
		s := g.snaps[i]
		ns := snapshot{
			outAdj: s.outAdj, outW: s.outW,
			inAdj: s.inAdj, inW: s.inW,
			edges:  s.edges,
			active: ds.NewBitSet(n),
		}
		ns.outPtr = widenPtr(s.outPtr, n)
		ns.inPtr = widenPtr(s.inPtr, n)
		for v := s.active.NextSet(0); v >= 0; v = s.active.NextSet(v + 1) {
			ns.active.Set(v)
		}
		ng.snaps[i] = ns
	}
	return ng
}

func widenPtr(ptr []int32, n int) []int32 {
	out := make([]int32, n+1)
	copy(out, ptr)
	last := ptr[len(ptr)-1]
	for i := len(ptr); i <= n; i++ {
		out[i] = last
	}
	return out
}
