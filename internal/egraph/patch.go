package egraph

import (
	"fmt"
	"runtime"
	"sort"

	"repro/internal/ds"
)

// ArcDelta is one arc-level mutation consumed by Patch: insert (Del
// false) or remove (Del true) the arc U→V — the edge U—V when the base
// graph is undirected — at time label T. W is the weight an insertion
// carries on weighted graphs; it is ignored on removals, on unweighted
// graphs, and when the arc already exists in base (a re-add keeps
// base's weight, the same rule as the full ingest.Fold rebuild).
type ArcDelta struct {
	U, V int32
	T    int64
	W    float64
	Del  bool
}

// patchKey identifies one canonical arc of the delta; undirected arcs
// are stored with u < v so (u,v) and (v,u) collide.
type patchKey struct {
	u, v int32
	t    int64
}

// stampOp is one surviving (post last-wins) canonical arc change at a
// single time label.
type stampOp struct {
	u, v int32
	w    float64
	del  bool
}

// Patch applies delta to base by copy-on-write and returns the
// resulting immutable graph. It is the delta-proportional alternative
// to replaying every base edge through a Builder (DESIGN.md §12):
//
//   - Only stamps actually changed by the delta get their snapshot CSR
//     rows rebuilt — and that rebuild is a merge-copy of the old rows,
//     not a hash-map reconstruction. Untouched snapshots, per-node
//     active-stamp rows and weight slices are shared with base by
//     reference, which is safe because an IntEvolvingGraph is
//     immutable.
//   - Ops are collapsed last-wins per canonical arc, exactly like the
//     full rebuild: re-adding an arc base already has keeps base's
//     weight, removing an absent arc is a no-op, and a label unknown to
//     base materialises as a new stamp only if at least one insertion
//     survives for it.
//   - The node universe grows to cover surviving insertions and
//     shrinks when the top of the id space loses its last edge, both
//     matching what a Builder replay would produce.
//
// Patch is pure (base is never mutated) and deterministic. An empty or
// fully no-op delta returns base itself — no slice is copied at all.
// The result's flat CSR view is not built; the ingest compactor builds
// it explicitly (EnsureCSR) into a recycled arena.
func Patch(base *IntEvolvingGraph, delta []ArcDelta) *IntEvolvingGraph {
	if len(delta) == 0 {
		return base
	}
	n0 := base.numNodes

	// Last op per canonical arc wins — the same collapse rule as the
	// full rebuild's delta map.
	type finalOp struct {
		del bool
		w   float64
	}
	final := make(map[patchKey]finalOp, len(delta))
	for _, d := range delta {
		if d.U < 0 || d.V < 0 {
			panic(fmt.Sprintf("egraph: negative node id (%d,%d) in Patch delta", d.U, d.V))
		}
		if d.U == d.V {
			continue // self-loops activate nothing (Def. 3); Builder drops them too
		}
		k := patchKey{u: d.U, v: d.V, t: d.T}
		if !base.directed && k.u > k.v {
			k.u, k.v = k.v, k.u
		}
		final[k] = finalOp{del: d.Del, w: d.W}
	}

	// Bucket surviving ops per label. The node universe grows only from
	// surviving insertions: a removal of an arc base never held cannot
	// invent a node, because it would never reach a Builder either.
	newN := n0
	perLabel := make(map[int64][]stampOp)
	for k, op := range final {
		if !op.del {
			if int(k.u) >= newN {
				newN = int(k.u) + 1
			}
			if int(k.v) >= newN {
				newN = int(k.v) + 1
			}
		}
		perLabel[k.t] = append(perLabel[k.t], stampOp{u: k.u, v: k.v, w: op.w, del: op.del})
	}

	// Rebuild the touched stamps — each one independently, so the
	// merge-copies fan out across cores when the delta spans several
	// stamps — and assemble brand-new ones.
	type labelWork struct {
		label int64
		si    int // base stamp index, or -1 for a new label
		ops   []stampOp
		ps    patchedStamp
		ok    bool // new-label work: at least one insertion survived
	}
	work := make([]labelWork, 0, len(perLabel))
	for label, ops := range perLabel {
		work = append(work, labelWork{label: label, si: base.StampOf(label), ops: ops})
	}
	runTasks(runtime.GOMAXPROCS(0), len(work), func(i int) {
		if work[i].si >= 0 {
			work[i].ps = patchStamp(base, work[i].si, work[i].ops, newN)
		} else {
			work[i].ps, work[i].ok = newStamp(base, work[i].ops, newN)
		}
	})
	patched := make(map[int]patchedStamp, len(work))
	inserted := make(map[int64]patchedStamp)
	changedAny := false
	for i := range work {
		w := &work[i]
		if w.si >= 0 {
			patched[w.si] = w.ps
			changedAny = changedAny || w.ps.changed
		} else if w.ok {
			inserted[w.label] = w.ps
			changedAny = true
		}
	}
	if !changedAny {
		// Every op was a no-op (re-adds of present arcs, removals of
		// absent ones): the delta cannot be told apart from an empty
		// one, so share everything — including the cached CSR view.
		return base
	}

	// New stamp axis: base stamps survive unless their patched edge set
	// emptied; new labels splice in label order. oldToNew records where
	// each base stamp landed (-1: dropped).
	newLabels := make([]int64, 0, len(inserted))
	for l := range inserted {
		newLabels = append(newLabels, l)
	}
	sort.Slice(newLabels, func(i, j int) bool { return newLabels[i] < newLabels[j] })
	type axisEntry struct {
		label   int64
		snap    snapshot
		shared  bool // snapshot shared with base
		touched []int32
	}
	axis := make([]axisEntry, 0, len(base.snaps)+len(newLabels))
	oldToNew := make([]int32, len(base.snaps))
	li := 0
	for si := range base.snaps {
		label := base.times[si]
		for li < len(newLabels) && newLabels[li] < label {
			ps := inserted[newLabels[li]]
			axis = append(axis, axisEntry{label: newLabels[li], snap: ps.snap, touched: ps.touched})
			li++
		}
		if ps, ok := patched[si]; ok && ps.changed {
			if ps.snap.edges == 0 {
				oldToNew[si] = -1 // the delta emptied this stamp: it vanishes, like a Builder never seeing its label
				continue
			}
			oldToNew[si] = int32(len(axis))
			axis = append(axis, axisEntry{label: label, snap: ps.snap, touched: ps.touched})
			continue
		}
		oldToNew[si] = int32(len(axis))
		axis = append(axis, axisEntry{label: label, snap: base.snaps[si], shared: true})
	}
	for ; li < len(newLabels); li++ {
		ps := inserted[newLabels[li]]
		axis = append(axis, axisEntry{label: newLabels[li], snap: ps.snap, touched: ps.touched})
	}
	// Did any surviving base stamp change index? Appends at the end of
	// the time axis (the live append-mostly case) do not shift anything,
	// so shared active-stamp rows stay valid as-is.
	axisShifted := false
	for si := range oldToNew {
		if oldToNew[si] != int32(si) {
			axisShifted = true
			break
		}
	}

	g := &IntEvolvingGraph{
		directed: base.directed,
		weighted: base.weighted,
		numNodes: newN,
		snaps:    make([]snapshot, len(axis)),
	}
	if !axisShifted && len(newLabels) == 0 {
		g.times = base.times // axis unchanged: share the label slice
	} else {
		g.times = make([]int64, len(axis))
		for i, e := range axis {
			g.times[i] = e.label
		}
	}
	grown := newN > n0
	for i, e := range axis {
		if e.shared && grown {
			// A shared snapshot's pointer rows and active set are sized
			// for the old universe; regrow them (the adjacency and
			// weight slices — the bulk — stay shared). A snapshot kept
			// across an earlier universe shrink can already be wider
			// than base.numNodes — its tail rows are empty, so it only
			// grows when the new universe passes its real capacity.
			if prevN := e.snap.active.Len(); prevN < newN {
				e.snap.outPtr = extendPtr(e.snap.outPtr, prevN, newN)
				e.snap.inPtr = extendPtr(e.snap.inPtr, prevN, newN)
				e.snap.active = e.snap.active.CloneGrow(newN)
			}
		}
		g.snaps[i] = e.snap
	}

	// Active-stamp rows. Nodes whose activity possibly changed (arc
	// endpoints of structural changes) are rebuilt by scanning the new
	// stamps; everyone else shares base's row — remapped through
	// oldToNew only when the axis shifted.
	affected := make(map[int32]struct{})
	for _, e := range axis {
		for _, v := range e.touched {
			affected[v] = struct{}{}
		}
	}
	g.activeAt = make([][]int32, newN)
	for v := 0; v < n0; v++ {
		if _, ok := affected[int32(v)]; ok {
			continue
		}
		row := base.activeAt[v]
		if !axisShifted || len(row) == 0 {
			g.activeAt[v] = row
			continue
		}
		nr := make([]int32, 0, len(row))
		for _, s := range row {
			if ns := oldToNew[s]; ns >= 0 {
				nr = append(nr, ns)
			}
		}
		g.activeAt[v] = nr
	}
	for v := range affected {
		var nr []int32
		for t := range g.snaps {
			if g.snaps[t].active.Get(int(v)) {
				nr = append(nr, int32(t))
			}
		}
		g.activeAt[v] = nr
	}
	for _, row := range g.activeAt {
		g.numActive += len(row)
	}

	// The universe shrinks when the top of the id space lost its last
	// edge — a Builder replay would compute the smaller max node id.
	// (Activity ⇔ having an edge somewhere, since self-loops are
	// dropped at build time.)
	shrunk := newN
	for shrunk > 0 && len(g.activeAt[shrunk-1]) == 0 {
		shrunk--
	}
	if shrunk < newN {
		g.numNodes = shrunk
		g.activeAt = g.activeAt[:shrunk]
	}
	return g
}

// patchedStamp is one stamp's rebuild result: the new snapshot plus the
// nodes whose activity there may have changed. changed == false means
// every op was a no-op and base's snapshot should be shared untouched.
type patchedStamp struct {
	snap    snapshot
	touched []int32
	changed bool
}

// patchStamp merge-copies one existing stamp's snapshot under a set of
// canonical arc ops. Cost is O(n + m_s + d log m) for a stamp with m_s
// arcs and d ops — a memcopy with per-touched-node merges, never a
// hash-map rebuild.
func patchStamp(base *IntEvolvingGraph, si int, ops []stampOp, newN int) patchedStamp {
	s := &base.snaps[si]
	n0 := base.numNodes
	// Resolve each op against base's rows: re-adding a present arc
	// (weight kept) and removing an absent one change nothing and drop
	// out here.
	type dirChange struct {
		src, dst int32
		w        float64
		add      bool
	}
	var changes []dirChange
	edges := s.edges
	for _, op := range ops {
		present := int(op.u) < n0 && int(op.v) < n0 && hasArc(s, op.u, op.v)
		switch {
		case op.del && present:
			edges--
			changes = append(changes, dirChange{src: op.u, dst: op.v})
			if !base.directed {
				changes = append(changes, dirChange{src: op.v, dst: op.u})
			}
		case !op.del && !present:
			edges++
			changes = append(changes, dirChange{src: op.u, dst: op.v, w: op.w, add: true})
			if !base.directed {
				changes = append(changes, dirChange{src: op.v, dst: op.u, w: op.w, add: true})
			}
		}
	}
	if len(changes) == 0 {
		return patchedStamp{}
	}

	outEd := make(map[int32]*rowEdit)
	inEd := make(map[int32]*rowEdit)
	edit := func(m map[int32]*rowEdit, v int32) *rowEdit {
		e := m[v]
		if e == nil {
			e = &rowEdit{}
			m[v] = e
		}
		return e
	}
	touchedSet := make(map[int32]struct{})
	for _, ch := range changes {
		touchedSet[ch.src] = struct{}{}
		touchedSet[ch.dst] = struct{}{}
		if ch.add {
			edit(outEd, ch.src).adds = append(edit(outEd, ch.src).adds, nbrW{ch.dst, ch.w})
			edit(inEd, ch.dst).adds = append(edit(inEd, ch.dst).adds, nbrW{ch.src, ch.w})
		} else {
			edit(outEd, ch.src).dels = append(edit(outEd, ch.src).dels, ch.dst)
			edit(inEd, ch.dst).dels = append(edit(inEd, ch.dst).dels, ch.src)
		}
	}
	touched := make([]int32, 0, len(touchedSet))
	for v := range touchedSet {
		touched = append(touched, v)
	}
	sort.Slice(touched, func(i, j int) bool { return touched[i] < touched[j] })

	ns := snapshot{edges: edges}
	ns.outPtr, ns.outAdj, ns.outW = rebuildRows(s.outPtr, s.outAdj, s.outW, outEd, n0, newN, base.weighted)
	ns.inPtr, ns.inAdj, ns.inW = rebuildRows(s.inPtr, s.inAdj, s.inW, inEd, n0, newN, base.weighted)
	ns.active = cloneActive(s.active, newN)
	for _, v := range touched {
		if ns.outPtr[v+1] > ns.outPtr[v] || ns.inPtr[v+1] > ns.inPtr[v] {
			ns.active.Set(int(v))
		} else {
			ns.active.Clear(int(v))
		}
	}
	return patchedStamp{snap: ns, touched: touched, changed: true}
}

// newStamp builds the snapshot of a label base does not carry. Only
// surviving insertions matter: removals at an unknown label cannot hit
// anything, and a label left with no edges materialises no stamp (the
// Builder rule).
func newStamp(base *IntEvolvingGraph, ops []stampOp, newN int) (patchedStamp, bool) {
	edges := make(map[edgeKey]float64)
	touchedSet := make(map[int32]struct{})
	for _, op := range ops {
		if op.del {
			continue
		}
		edges[edgeKey{op.u, op.v}] = op.w // keys are already canonical
		touchedSet[op.u] = struct{}{}
		touchedSet[op.v] = struct{}{}
	}
	if len(edges) == 0 {
		return patchedStamp{}, false
	}
	touched := make([]int32, 0, len(touchedSet))
	for v := range touchedSet {
		touched = append(touched, v)
	}
	sort.Slice(touched, func(i, j int) bool { return touched[i] < touched[j] })
	return patchedStamp{
		snap:    buildSnapshot(newN, base.directed, base.weighted, edges),
		touched: touched,
		changed: true,
	}, true
}

// nbrW is one adjacency insertion: a neighbour and its weight.
type nbrW struct {
	nbr int32
	w   float64
}

// rowEdit collects the insertions and deletions of one node's adjacency
// row at one stamp.
type rowEdit struct {
	adds []nbrW
	dels []int32
}

// rebuildRows produces the patched pointer/adjacency/weight arrays of
// one direction of one stamp: untouched node runs are bulk-copied,
// edited rows are three-way merged in sorted order. oldPtr covers n0
// nodes; the result covers newN ≥ n0 (rows beyond n0 start empty).
func rebuildRows(oldPtr, oldAdj []int32, oldW []float64, edits map[int32]*rowEdit, n0, newN int, weighted bool) (ptr, adj []int32, ws []float64) {
	touched := make([]int32, 0, len(edits))
	for v := range edits {
		touched = append(touched, v)
	}
	sort.Slice(touched, func(i, j int) bool { return touched[i] < touched[j] })

	// Pointer rows: untouched runs keep their old degrees, offsets
	// shifted by the arcs inserted/deleted so far — a tight add loop,
	// no per-node edit lookups.
	ptr = make([]int32, newN+1)
	oldTotal := oldPtr[n0]
	shift := int32(0)
	shiftCopy := func(lo, hi int) {
		mid := hi
		if mid > n0 {
			mid = n0
		}
		for i := lo; i < mid; i++ {
			ptr[i+1] = oldPtr[i+1] + shift
		}
		if lo < n0 {
			lo = n0
		}
		for i := lo; i < hi; i++ {
			ptr[i+1] = oldTotal + shift // rows beyond the old universe are empty
		}
	}
	prevPtr := 0
	for _, v := range touched {
		shiftCopy(prevPtr, int(v))
		e := edits[v]
		deg := int32(0)
		if int(v) < n0 {
			deg = oldPtr[v+1] - oldPtr[v]
		}
		d := int32(len(e.adds) - len(e.dels))
		ptr[v+1] = ptr[v] + deg + d
		shift += d
		prevPtr = int(v) + 1
	}
	shiftCopy(prevPtr, newN)

	adj = make([]int32, ptr[newN])
	if weighted {
		ws = make([]float64, ptr[newN])
	}
	prev := 0
	bulk := func(lo, hi int) { // copy the untouched rows [lo, hi)
		if hi > n0 {
			hi = n0
		}
		if lo >= hi {
			return
		}
		copy(adj[ptr[lo]:], oldAdj[oldPtr[lo]:oldPtr[hi]])
		if weighted {
			copy(ws[ptr[lo]:], oldW[oldPtr[lo]:oldPtr[hi]])
		}
	}
	for _, v := range touched {
		bulk(prev, int(v))
		e := edits[v]
		sort.Slice(e.adds, func(i, j int) bool { return e.adds[i].nbr < e.adds[j].nbr })
		sort.Slice(e.dels, func(i, j int) bool { return e.dels[i] < e.dels[j] })
		var src []int32
		var srcW []float64
		if int(v) < n0 {
			src = oldAdj[oldPtr[v]:oldPtr[v+1]]
			if oldW != nil {
				srcW = oldW[oldPtr[v]:oldPtr[v+1]]
			}
		}
		mergeRow(adj[ptr[v]:ptr[v+1]], wslice(ws, ptr, v), src, srcW, e.adds, e.dels)
		prev = int(v) + 1
	}
	bulk(prev, n0)
	return ptr, adj, ws
}

// wslice returns the weight sub-row of node v, or nil for unweighted
// graphs.
func wslice(ws []float64, ptr []int32, v int32) []float64 {
	if ws == nil {
		return nil
	}
	return ws[ptr[v]:ptr[v+1]]
}

// mergeRow writes src minus dels plus adds into dst in sorted order.
// adds and dels are sorted, disjoint from each other (one final op per
// arc), adds are absent from src and dels present — patchStamp resolved
// that. dstW is nil for unweighted rows.
func mergeRow(dst []int32, dstW []float64, src []int32, srcW []float64, adds []nbrW, dels []int32) {
	di, ai, xi := 0, 0, 0
	for si, nb := range src {
		for ai < len(adds) && adds[ai].nbr < nb {
			dst[di] = adds[ai].nbr
			if dstW != nil {
				dstW[di] = adds[ai].w
			}
			di++
			ai++
		}
		if xi < len(dels) && dels[xi] == nb {
			xi++
			continue
		}
		dst[di] = nb
		if dstW != nil {
			dstW[di] = srcW[si]
		}
		di++
	}
	for ; ai < len(adds); ai++ {
		dst[di] = adds[ai].nbr
		if dstW != nil {
			dstW[di] = adds[ai].w
		}
		di++
	}
}

// cloneActive copies an active set to exactly n bits. The source may be
// wider than n when the snapshot survived an earlier universe shrink —
// every bit past n is guaranteed clear then (those nodes hold no arcs
// anywhere), so the narrower copy loses nothing and restores the
// invariant that a rebuilt snapshot's rows and active set agree on
// capacity.
func cloneActive(b *ds.BitSet, n int) *ds.BitSet {
	if n >= b.Len() {
		return b.CloneGrow(n)
	}
	c := ds.NewBitSet(n)
	for i := b.NextSet(0); i >= 0 && i < n; i = b.NextSet(i + 1) {
		c.Set(i)
	}
	return c
}

// hasArc reports whether u's out-row of s contains v (rows are sorted).
func hasArc(s *snapshot, u, v int32) bool {
	adj := s.outAdj[s.outPtr[u]:s.outPtr[u+1]]
	i := sort.Search(len(adj), func(i int) bool { return adj[i] >= v })
	return i < len(adj) && adj[i] == v
}

// extendPtr grows a prefix-sum pointer array from n0+1 to newN+1
// entries; the new rows are empty (all offsets equal the old total).
func extendPtr(ptr []int32, n0, newN int) []int32 {
	np := make([]int32, newN+1)
	copy(np, ptr[:n0+1])
	last := ptr[n0]
	for i := n0 + 1; i <= newN; i++ {
		np[i] = last
	}
	return np
}
