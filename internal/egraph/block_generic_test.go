package egraph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBlockMatrixFigure1(t *testing.T) {
	g := Figure1Graph()
	blk := g.BlockMatrix(CausalAllPairs)
	if blk.Stamps() != 3 || blk.Nodes() != 3 {
		t.Fatalf("block dims = (%d,%d)", blk.Stamps(), blk.Nodes())
	}
	// Diagonal blocks are the paper's per-stamp adjacency matrices.
	if blk.Diag(0).At(0, 1) != 1 || blk.Diag(0).NNZ() != 1 {
		t.Fatal("A[t1] wrong")
	}
	if blk.Diag(1).At(0, 2) != 1 || blk.Diag(1).NNZ() != 1 {
		t.Fatal("A[t2] wrong")
	}
	if blk.Diag(2).At(1, 2) != 1 || blk.Diag(2).NNZ() != 1 {
		t.Fatal("A[t3] wrong")
	}
	// Activity propagated.
	if !blk.IsActive(0, 0) || blk.IsActive(2, 0) {
		t.Fatal("block activity wrong")
	}
}

// Property: the compacted block matrix has exactly EdgeCount nonzeros
// (each unfolded arc is one entry) over NumActiveNodes rows.
func TestBlockMatrixMatchesUnfold(t *testing.T) {
	f := func(seed int64, directed, consecutive bool) bool {
		rng := rand.New(rand.NewSource(seed))
		g := RandomGraph(rng, directed)
		mode := CausalAllPairs
		if consecutive {
			mode = CausalConsecutive
		}
		dense, order := g.BlockMatrix(mode).CompactActive()
		if len(order) != g.NumActiveNodes() {
			return false
		}
		return dense.NNZ() == g.EdgeCount(mode)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeReverse(t *testing.T) {
	g := Figure1Graph()
	r := g.TimeReverse()
	if r.NumStamps() != 3 || r.NumNodes() != 3 {
		t.Fatalf("reversed dims = (%d,%d)", r.NumNodes(), r.NumStamps())
	}
	// Reversed stamp 0 is original stamp 2 with edges flipped: 3→2.
	if !r.HasEdge(2, 1, 0) {
		t.Fatal("reversed graph missing 3→2 at first stamp")
	}
	if !r.HasEdge(2, 0, 1) {
		t.Fatal("reversed graph missing 3→1 at middle stamp")
	}
	if !r.HasEdge(1, 0, 2) {
		t.Fatal("reversed graph missing 2→1 at last stamp")
	}
	// Activity is preserved under reversal (edge endpoints unchanged).
	if r.NumActiveNodes() != g.NumActiveNodes() {
		t.Fatal("reversal changed |V|")
	}
}

// Property: time reversal is an involution on edge structure.
func TestTimeReverseInvolution(t *testing.T) {
	f := func(seed int64, directed bool) bool {
		rng := rand.New(rand.NewSource(seed))
		g := RandomGraph(rng, directed)
		rr := g.TimeReverse().TimeReverse()
		if rr.NumStamps() != g.NumStamps() || rr.StaticEdgeCount() != g.StaticEdgeCount() {
			return false
		}
		for ts := int32(0); ts < int32(g.NumStamps()); ts++ {
			ok := true
			g.VisitEdges(ts, func(u, v int32, w float64) bool {
				if !rr.HasEdge(u, v, ts) {
					ok = false
					return false
				}
				return true
			})
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestGenericEvolvingGraph(t *testing.T) {
	g := NewEvolvingGraph[string](true)
	g.AddEdge("alice", "bob", 2001)
	g.AddEdge("bob", "carol", 2003)
	ig := g.Freeze()
	if ig.NumNodes() != 3 || ig.NumStamps() != 2 {
		t.Fatalf("dims = (%d,%d)", ig.NumNodes(), ig.NumStamps())
	}
	a, ok := g.IDOf("alice")
	if !ok {
		t.Fatal("alice not interned")
	}
	if g.Label(a) != "alice" {
		t.Fatal("label round trip failed")
	}
	if _, ok := g.IDOf("dave"); ok {
		t.Fatal("unknown label reported present")
	}
	if g.NumLabels() != 3 {
		t.Fatalf("NumLabels = %d, want 3", g.NumLabels())
	}
	// Freeze is idempotent.
	if g.Freeze() != ig || g.Graph() != ig {
		t.Fatal("Freeze not idempotent")
	}
}

func TestGenericInternOnlyLabelKeepsIDSpace(t *testing.T) {
	g := NewEvolvingGraph[string](true)
	g.AddEdge("a", "b", 1)
	g.Intern("loner") // never on an edge
	ig := g.Freeze()
	if ig.NumNodes() != 3 {
		t.Fatalf("NumNodes = %d, want 3 (loner included)", ig.NumNodes())
	}
	id, _ := g.IDOf("loner")
	if len(ig.ActiveStamps(id)) != 0 {
		t.Fatal("loner should have no active stamps")
	}
}

func TestGenericAddAfterFreezePanics(t *testing.T) {
	g := NewEvolvingGraph[int](true)
	g.AddEdge(1, 2, 1)
	g.Freeze()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.AddEdge(3, 4, 2)
}
