package egraph

import (
	"repro/internal/ds"
)

// StaticGraph is a plain directed graph in CSR form. The unfolding of an
// evolving graph (Theorem 1) produces one; its textbook BFS is the
// reference against which the evolving-graph BFS is verified.
type StaticGraph struct {
	ptr []int32
	adj []int32
	n   int
}

// NewStaticGraph builds a static graph with n nodes from an arc list.
// Arcs may repeat; duplicates are kept (harmless for BFS).
func NewStaticGraph(n int, arcs [][2]int32) *StaticGraph {
	g := &StaticGraph{n: n, ptr: make([]int32, n+1)}
	for _, a := range arcs {
		g.ptr[a[0]+1]++
	}
	for i := 0; i < n; i++ {
		g.ptr[i+1] += g.ptr[i]
	}
	g.adj = make([]int32, len(arcs))
	next := make([]int32, n)
	copy(next, g.ptr[:n])
	for _, a := range arcs {
		g.adj[next[a[0]]] = a[1]
		next[a[0]]++
	}
	return g
}

// NumNodes returns the node count.
func (g *StaticGraph) NumNodes() int { return g.n }

// NumArcs returns the arc count.
func (g *StaticGraph) NumArcs() int { return len(g.adj) }

// Neighbors returns the out-neighbours of v (aliases internal storage).
func (g *StaticGraph) Neighbors(v int32) []int32 {
	return g.adj[g.ptr[v]:g.ptr[v+1]]
}

// BFS runs a textbook breadth-first search from root and returns the
// distance of every node (-1 if unreachable). This is the classical
// algorithm the paper generalises; it anchors the Theorem 1 equivalence
// tests.
func (g *StaticGraph) BFS(root int32) []int32 {
	dist := make([]int32, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[root] = 0
	q := ds.NewIntQueue(64)
	q.Push(int(root))
	for !q.Empty() {
		u := int32(q.Pop())
		for _, w := range g.Neighbors(u) {
			if dist[w] == -1 {
				dist[w] = dist[u] + 1
				q.Push(int(w))
			}
		}
	}
	return dist
}

// Unfolding is the static graph G = (V, E) of Theorem 1 together with
// the correspondence between its dense node ids and the active temporal
// nodes of the evolving graph.
type Unfolding struct {
	// Graph is G = (V, E): V = active temporal nodes, E = Ẽ ∪ E′.
	Graph *StaticGraph
	// Order lists the active temporal nodes in id order (stamp-major,
	// node-ascending — the order the paper uses for its A3 example).
	Order []TemporalNode

	index map[TemporalNode]int32
}

// IDOf returns the unfolded id of an active temporal node, or -1 if the
// temporal node is inactive.
func (u *Unfolding) IDOf(tn TemporalNode) int32 {
	if id, ok := u.index[tn]; ok {
		return id
	}
	return -1
}

// Unfold constructs the Theorem 1 static graph under the given causal
// mode. Static edges contribute one arc per direction of traversal
// (two for undirected edges); causal edges contribute one arc each,
// always pointing forward in time.
func (g *IntEvolvingGraph) Unfold(mode CausalMode) *Unfolding {
	u := &Unfolding{index: make(map[TemporalNode]int32)}
	for t := 0; t < g.NumStamps(); t++ {
		act := g.snaps[t].active
		for v := act.NextSet(0); v >= 0; v = act.NextSet(v + 1) {
			tn := TemporalNode{Node: int32(v), Stamp: int32(t)}
			u.index[tn] = int32(len(u.Order))
			u.Order = append(u.Order, tn)
		}
	}

	var arcs [][2]int32
	// Static edges Ẽ: out-adjacency already contains both directions
	// for undirected graphs.
	for t := int32(0); t < int32(g.NumStamps()); t++ {
		act := g.snaps[t].active
		for vi := act.NextSet(0); vi >= 0; vi = act.NextSet(vi + 1) {
			v := int32(vi)
			from := u.index[TemporalNode{Node: v, Stamp: t}]
			for _, w := range g.OutNeighbors(v, t) {
				to := u.index[TemporalNode{Node: w, Stamp: t}]
				arcs = append(arcs, [2]int32{from, to})
			}
		}
	}
	// Causal edges E′.
	for v := int32(0); v < int32(g.numNodes); v++ {
		st := g.activeAt[v]
		for i := 0; i < len(st); i++ {
			from := u.index[TemporalNode{Node: v, Stamp: st[i]}]
			switch mode {
			case CausalAllPairs:
				for j := i + 1; j < len(st); j++ {
					to := u.index[TemporalNode{Node: v, Stamp: st[j]}]
					arcs = append(arcs, [2]int32{from, to})
				}
			case CausalConsecutive:
				if i+1 < len(st) {
					to := u.index[TemporalNode{Node: v, Stamp: st[i+1]}]
					arcs = append(arcs, [2]int32{from, to})
				}
			}
		}
	}
	u.Graph = NewStaticGraph(len(u.Order), arcs)
	return u
}
