package egraph

// Figure1Graph returns the running example of the paper (Figs. 1–4): a
// directed evolving graph on nodes {0,1,2} (the paper's {1,2,3}) over
// stamps {0,1,2} (the paper's {t1,t2,t3}) with edges
//
//	1→2 at t1,  1→3 at t2,  2→3 at t3.
//
// Every worked result in the paper — the two temporal paths of Fig. 2,
// the BFS trace of Fig. 3, the explicit A3 matrix and power iteration of
// Fig. 4, and the Eq. 2 miscount — is stated on this graph, so tests
// throughout the repository anchor on it.
func Figure1Graph() *IntEvolvingGraph {
	b := NewBuilder(true)
	b.AddEdge(0, 1, 1) // 1→2 @ t1
	b.AddEdge(0, 2, 2) // 1→3 @ t2
	b.AddEdge(1, 2, 3) // 2→3 @ t3
	return b.Build()
}

// IntroGameGraph returns the three-player message game from the paper's
// introduction: players 1, 2, 3 hold messages a, b, c; "1 talks to 2
// first, and 2 in turn talks to 3". Information flow is modelled as a
// directed edge speaker→listener per turn. With this ordering player 3
// (node 2) collects every message; swapping the turns (swapped=true)
// makes message a unreachable — the motivating example for time-respecting
// paths.
func IntroGameGraph(swapped bool) *IntEvolvingGraph {
	b := NewBuilder(true)
	if swapped {
		b.AddEdge(1, 2, 1) // 2 talks to 3 first
		b.AddEdge(0, 1, 2) // then 1 talks to 2
	} else {
		b.AddEdge(0, 1, 1) // 1 talks to 2 first
		b.AddEdge(1, 2, 2) // then 2 talks to 3
	}
	return b.Build()
}
