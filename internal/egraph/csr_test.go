package egraph

import (
	"math/rand"
	"reflect"
	"testing"
)

func randomCSRGraph(rng *rand.Rand, directed bool) *IntEvolvingGraph {
	b := NewBuilder(directed)
	n := 2 + rng.Intn(10)
	stamps := 1 + rng.Intn(6)
	edges := rng.Intn(4 * n)
	for e := 0; e < edges; e++ {
		b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)), int64(1+rng.Intn(stamps)))
	}
	b.AddEdge(0, 1, 1)
	return b.Build()
}

// The CSR view must agree arc-for-arc with the per-stamp adjacency the
// graph already exposes, with targets rebased to temporal-node ids.
func TestCSRMatchesAdjacency(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		g := randomCSRGraph(rng, trial%2 == 0)
		c := g.CSR()
		n := g.NumNodes()
		if c.N != n || c.T != g.NumStamps() {
			t.Fatalf("dims: got (%d,%d), want (%d,%d)", c.N, c.T, n, g.NumStamps())
		}
		for st := int32(0); st < int32(g.NumStamps()); st++ {
			for v := int32(0); v < int32(n); v++ {
				id := st*int32(n) + v
				out := c.OutArcs(id)
				want := g.OutNeighbors(v, st)
				if len(out) != len(want) {
					t.Fatalf("(%d,t%d): %d out-arcs, want %d", v, st, len(out), len(want))
				}
				for i, w := range want {
					if out[i] != st*int32(n)+w {
						t.Fatalf("(%d,t%d) arc %d: got id %d, want %d", v, st, i, out[i], st*int32(n)+w)
					}
				}
				in := c.InArcs(id)
				wantIn := g.InNeighbors(v, st)
				if len(in) != len(wantIn) {
					t.Fatalf("(%d,t%d): %d in-arcs, want %d", v, st, len(in), len(wantIn))
				}
				for i, w := range wantIn {
					if in[i] != st*int32(n)+w {
						t.Fatalf("(%d,t%d) in-arc %d: got id %d, want %d", v, st, i, in[i], st*int32(n)+w)
					}
				}
			}
		}
	}
}

// ActPos/ActStamps/Active must agree with ActiveStamps and IsActive, and
// CausalRow must partition a node's stamps around the query stamp.
func TestCSRCausalStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		g := randomCSRGraph(rng, trial%2 == 1)
		c := g.CSR()
		n := g.NumNodes()
		for v := int32(0); v < int32(n); v++ {
			want := g.ActiveStamps(v)
			row := c.ActStamps[c.ActPtr[v]:c.ActPtr[v+1]]
			if len(row) != len(want) {
				t.Fatalf("node %d: row length %d, want %d", v, len(row), len(want))
			}
			for i := range want {
				if row[i] != want[i] {
					t.Fatalf("node %d: row %v, want %v", v, row, want)
				}
			}
			for st := int32(0); st < int32(g.NumStamps()); st++ {
				id := int(st)*n + int(v)
				active := g.IsActive(v, st)
				if c.Active.Get(id) != active {
					t.Fatalf("(%d,t%d): Active bit %v, want %v", v, st, c.Active.Get(id), active)
				}
				crow, pos := c.CausalRow(v, st)
				if !active {
					if pos != -1 || c.ActPos[id] != -1 {
						t.Fatalf("(%d,t%d) inactive but pos %d", v, st, pos)
					}
					continue
				}
				if crow[pos] != st {
					t.Fatalf("(%d,t%d): row[%d] = %d", v, st, pos, crow[pos])
				}
				if next := g.NextActiveStamp(v, st); pos+1 < len(crow) {
					if crow[pos+1] != next {
						t.Fatalf("(%d,t%d): next stamp %d, want %d", v, st, crow[pos+1], next)
					}
				} else if next != -1 {
					t.Fatalf("(%d,t%d): row exhausted but NextActiveStamp=%d", v, st, next)
				}
				if prev := g.PrevActiveStamp(v, st); pos > 0 {
					if crow[pos-1] != prev {
						t.Fatalf("(%d,t%d): prev stamp %d, want %d", v, st, crow[pos-1], prev)
					}
				} else if prev != -1 {
					t.Fatalf("(%d,t%d): row start but PrevActiveStamp=%d", v, st, prev)
				}
			}
		}
	}
}

// CausalArcs must return exactly the stamp sub-row the oracle methods
// describe, in both directions and both causal modes.
func TestCSRCausalArcs(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 40; trial++ {
		g := randomCSRGraph(rng, trial%2 == 0)
		c := g.CSR()
		n := int32(g.NumNodes())
		for v := int32(0); v < n; v++ {
			for _, st := range g.ActiveStamps(v) {
				id := st*n + v
				all := g.ActiveStamps(v)
				var after, before []int32
				for _, s := range all {
					if s > st {
						after = append(after, s)
					} else if s < st {
						before = append(before, s)
					}
				}
				check := func(label string, got, want []int32, wantV int32) {
					t.Helper()
					if wantV != v || len(got) != len(want) {
						t.Fatalf("(%d,t%d) %s: got %v (v=%d), want %v", v, st, label, got, wantV, want)
					}
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("(%d,t%d) %s: got %v, want %v", v, st, label, got, want)
						}
					}
				}
				fwd, gv := c.CausalArcs(id, true, false)
				check("forward all-pairs", fwd, after, gv)
				bwd, gv := c.CausalArcs(id, false, false)
				check("backward all-pairs", bwd, before, gv)
				fc, gv := c.CausalArcs(id, true, true)
				var wantFC []int32
				if s := g.NextActiveStamp(v, st); s >= 0 {
					wantFC = []int32{s}
				}
				check("forward consecutive", fc, wantFC, gv)
				bc, gv := c.CausalArcs(id, false, true)
				var wantBC []int32
				if s := g.PrevActiveStamp(v, st); s >= 0 {
					wantBC = []int32{s}
				}
				check("backward consecutive", bc, wantBC, gv)
			}
		}
	}
}

// The view is cached: two calls return the same object.
func TestCSRCached(t *testing.T) {
	g := Figure1Graph()
	if g.CSR() != g.CSR() {
		t.Fatal("CSR() rebuilt the view")
	}
}

// Total arc counts must match the graph's edge accounting.
func TestCSRArcCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		g := randomCSRGraph(rng, trial%2 == 0)
		c := g.CSR()
		wantArcs := g.StaticEdgeCount()
		if !g.Directed() {
			wantArcs *= 2
		}
		if len(c.OutAdj) != wantArcs || len(c.InAdj) != wantArcs {
			t.Fatalf("arcs: out=%d in=%d, want %d", len(c.OutAdj), len(c.InAdj), wantArcs)
		}
		if len(c.ActStamps) != g.NumActiveNodes() {
			t.Fatalf("active rows: %d, want %d", len(c.ActStamps), g.NumActiveNodes())
		}
		if c.Active.Count() != g.NumActiveNodes() {
			t.Fatalf("active bits: %d, want %d", c.Active.Count(), g.NumActiveNodes())
		}
	}
}

// The parallel stamp-major fill must be bit-identical to the
// sequential build — same arrays, same order, no races deciding
// contents. The graph is sized past the sequential-fallback threshold
// so the fan-out actually engages.
func TestCSRParallelBuildDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	b := NewBuilder(true)
	for i := 0; i < 60_000; i++ {
		u := int32(rng.Intn(6000))
		v := int32(rng.Intn(6000))
		if u == v {
			continue
		}
		b.AddEdge(u, v, int64(1+rng.Intn(8)))
	}
	g := b.Build()
	if g.NumNodes()*g.NumStamps() < 1<<15 {
		t.Fatalf("test graph too small to engage the parallel fill")
	}
	seq := BuildFlatCSR(g, CSRBuildOptions{Workers: 1})
	for _, workers := range []int{2, 3, 8} {
		par := BuildFlatCSR(g, CSRBuildOptions{Workers: workers})
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("parallel build (workers=%d) differs from sequential", workers)
		}
	}
}

// An arena-reused build must produce the same view as a fresh one and
// actually reuse the recycled buffers when their capacity suffices.
func TestCSRArenaReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	big := randomCSRGraph(rng, true)
	old := BuildFlatCSR(big, CSRBuildOptions{Workers: 1})
	oldOutPtr, oldActPos := &old.OutPtr[0], &old.ActPos[0]
	arena := old.Recycle()

	small := randomCSRGraph(rng, false)
	reused := BuildFlatCSR(small, CSRBuildOptions{Workers: 1, Arena: arena})
	fresh := BuildFlatCSR(small, CSRBuildOptions{Workers: 1})
	if !reflect.DeepEqual(reused, fresh) {
		t.Fatalf("arena-reused build differs from fresh build")
	}
	if small.NumNodes()*small.NumStamps() <= big.NumNodes()*big.NumStamps() {
		if &reused.OutPtr[0] != oldOutPtr || &reused.ActPos[0] != oldActPos {
			t.Fatalf("arena buffers were not reused despite sufficient capacity")
		}
	}
}

// RecycleCSR severs the graph's cached view (fail-fast against
// use-after-recycle) and returns nil when no view was ever built.
func TestRecycleCSR(t *testing.T) {
	g := Figure1Graph()
	if a := g.RecycleCSR(); a != nil {
		t.Fatalf("RecycleCSR before any build returned %v, want nil", a)
	}
	g.CSR()
	if a := g.RecycleCSR(); a == nil {
		t.Fatalf("RecycleCSR after build returned nil")
	}
}

// EnsureCSR caches exactly one view regardless of options.
func TestEnsureCSRCachesOnce(t *testing.T) {
	g := Figure1Graph()
	c := g.EnsureCSR(CSRBuildOptions{Workers: 2})
	if g.EnsureCSR(CSRBuildOptions{}) != c || g.CSR() != c {
		t.Fatal("EnsureCSR rebuilt the cached view")
	}
}
