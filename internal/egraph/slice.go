package egraph

import (
	"fmt"
	"strings"
)

// Slice returns the evolving graph restricted to snapshots whose time
// label lies in [from, to] (inclusive). Node ids are preserved; the
// node-id space is kept at the original width so temporal-node indexing
// stays compatible with the source graph.
func (g *IntEvolvingGraph) Slice(from, to int64) *IntEvolvingGraph {
	b := g.compatibleBuilder()
	for t := 0; t < g.NumStamps(); t++ {
		label := g.times[t]
		if label < from || label > to {
			continue
		}
		g.VisitEdges(int32(t), func(u, v int32, w float64) bool {
			b.AddWeightedEdge(u, v, label, w)
			return true
		})
	}
	out := b.Build()
	if out.numNodes < g.numNodes {
		out = out.withNumNodes(g.numNodes)
	}
	return out
}

// Flatten aggregates every snapshot into a single static graph: the
// union of all static edge sets under one stamp (label 0). For weighted
// graphs, weights of an edge appearing at several stamps are summed.
// This is what a time-oblivious analysis sees — the baseline the paper's
// introduction argues against.
func (g *IntEvolvingGraph) Flatten() *IntEvolvingGraph {
	type key struct{ u, v int32 }
	acc := make(map[key]float64)
	for t := 0; t < g.NumStamps(); t++ {
		g.VisitEdges(int32(t), func(u, v int32, w float64) bool {
			acc[key{u, v}] += w
			return true
		})
	}
	b := g.compatibleBuilder()
	for k, w := range acc {
		b.AddWeightedEdge(k.u, k.v, 0, w)
	}
	out := b.Build()
	if out.numNodes < g.numNodes {
		out = out.withNumNodes(g.numNodes)
	}
	return out
}

// InducedSubgraph keeps only edges whose both endpoints are in keep.
// Node ids are preserved.
func (g *IntEvolvingGraph) InducedSubgraph(keep []int32) *IntEvolvingGraph {
	in := make(map[int32]bool, len(keep))
	for _, v := range keep {
		in[v] = true
	}
	b := g.compatibleBuilder()
	for t := 0; t < g.NumStamps(); t++ {
		label := g.times[t]
		g.VisitEdges(int32(t), func(u, v int32, w float64) bool {
			if in[u] && in[v] {
				b.AddWeightedEdge(u, v, label, w)
			}
			return true
		})
	}
	out := b.Build()
	if out.numNodes < g.numNodes {
		out = out.withNumNodes(g.numNodes)
	}
	return out
}

func (g *IntEvolvingGraph) compatibleBuilder() *Builder {
	if g.weighted {
		return NewWeightedBuilder(g.directed)
	}
	return NewBuilder(g.directed)
}

// Summary bundles descriptive statistics of an evolving graph.
type Summary struct {
	Nodes            int
	Stamps           int
	StaticEdges      int
	ActiveNodes      int // |V|
	CausalAllPairs   int
	CausalConsec     int
	MaxOutDegree     int     // over all (v, t)
	MeanActivity     float64 // mean #active stamps per ever-active node
	MaxActivity      int     // max #active stamps of any node
	EverActiveNodes  int     // nodes active at ≥1 stamp
	DirectedEdges    bool
	WeightedEdges    bool
	EdgesPerSnapshot []int
}

// Stats computes a Summary in one pass over the graph.
func (g *IntEvolvingGraph) Stats() Summary {
	s := Summary{
		Nodes:          g.NumNodes(),
		Stamps:         g.NumStamps(),
		StaticEdges:    g.StaticEdgeCount(),
		ActiveNodes:    g.NumActiveNodes(),
		CausalAllPairs: g.CausalEdgeCount(CausalAllPairs),
		CausalConsec:   g.CausalEdgeCount(CausalConsecutive),
		DirectedEdges:  g.Directed(),
		WeightedEdges:  g.Weighted(),
	}
	for t := 0; t < g.NumStamps(); t++ {
		s.EdgesPerSnapshot = append(s.EdgesPerSnapshot, g.SnapshotEdgeCount(t))
		act := g.ActiveNodes(t)
		for v := act.NextSet(0); v >= 0; v = act.NextSet(v + 1) {
			if d := g.OutDegree(int32(v), int32(t)); d > s.MaxOutDegree {
				s.MaxOutDegree = d
			}
		}
	}
	total := 0
	for v := 0; v < g.NumNodes(); v++ {
		k := len(g.activeAt[v])
		if k == 0 {
			continue
		}
		s.EverActiveNodes++
		total += k
		if k > s.MaxActivity {
			s.MaxActivity = k
		}
	}
	if s.EverActiveNodes > 0 {
		s.MeanActivity = float64(total) / float64(s.EverActiveNodes)
	}
	return s
}

// String renders the summary as a small report.
func (s Summary) String() string {
	var b strings.Builder
	kind := "undirected"
	if s.DirectedEdges {
		kind = "directed"
	}
	if s.WeightedEdges {
		kind += ", weighted"
	}
	fmt.Fprintf(&b, "evolving graph (%s): %d nodes over %d stamps\n", kind, s.Nodes, s.Stamps)
	fmt.Fprintf(&b, "  static edges |E~|:      %d\n", s.StaticEdges)
	fmt.Fprintf(&b, "  active temporal nodes:  %d (%d distinct nodes ever active)\n", s.ActiveNodes, s.EverActiveNodes)
	fmt.Fprintf(&b, "  causal edges:           %d all-pairs / %d consecutive\n", s.CausalAllPairs, s.CausalConsec)
	fmt.Fprintf(&b, "  max out-degree:         %d\n", s.MaxOutDegree)
	fmt.Fprintf(&b, "  activity per node:      mean %.2f, max %d stamps\n", s.MeanActivity, s.MaxActivity)
	return b.String()
}
