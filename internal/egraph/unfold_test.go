package egraph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestUnfoldFigure1Structure(t *testing.T) {
	g := Figure1Graph()
	u := g.Unfold(CausalAllPairs)
	// Paper: V has 6 active temporal nodes in stamp-major order.
	want := []TemporalNode{
		{0, 0}, {1, 0}, // (1,t1), (2,t1)
		{0, 1}, {2, 1}, // (1,t2), (3,t2)
		{1, 2}, {2, 2}, // (2,t3), (3,t3)
	}
	if len(u.Order) != len(want) {
		t.Fatalf("Order = %v, want %v", u.Order, want)
	}
	for i := range want {
		if u.Order[i] != want[i] {
			t.Fatalf("Order = %v, want %v", u.Order, want)
		}
	}
	// |E| = |Ẽ| + |E′| = 3 + 3 (paper's listed sets, with the corrected
	// causal edge ((2,t1),(2,t3))).
	if u.Graph.NumArcs() != 6 {
		t.Fatalf("arcs = %d, want 6", u.Graph.NumArcs())
	}
	arcWant := map[[2]TemporalNode]bool{
		{{0, 0}, {1, 0}}: true, // static (1,t1)→(2,t1)
		{{0, 1}, {2, 1}}: true, // static (1,t2)→(3,t2)
		{{1, 2}, {2, 2}}: true, // static (2,t3)→(3,t3)
		{{0, 0}, {0, 1}}: true, // causal (1,t1)→(1,t2)
		{{1, 0}, {1, 2}}: true, // causal (2,t1)→(2,t3) [paper typo corrected]
		{{2, 1}, {2, 2}}: true, // causal (3,t2)→(3,t3)
	}
	seen := 0
	for fromID, from := range u.Order {
		for _, toID := range u.Graph.Neighbors(int32(fromID)) {
			key := [2]TemporalNode{from, u.Order[toID]}
			if !arcWant[key] {
				t.Fatalf("unexpected arc %v→%v", key[0], key[1])
			}
			seen++
		}
	}
	if seen != len(arcWant) {
		t.Fatalf("saw %d arcs, want %d", seen, len(arcWant))
	}
}

func TestUnfoldIDOf(t *testing.T) {
	g := Figure1Graph()
	u := g.Unfold(CausalAllPairs)
	if u.IDOf(TemporalNode{0, 0}) != 0 {
		t.Fatal("IDOf (1,t1) != 0")
	}
	if u.IDOf(TemporalNode{2, 0}) != -1 {
		t.Fatal("inactive temporal node should map to -1")
	}
}

func TestUnfoldConsecutiveSmaller(t *testing.T) {
	b := NewBuilder(true)
	for ts := int64(1); ts <= 5; ts++ {
		b.AddEdge(0, 1, ts)
	}
	g := b.Build()
	all := g.Unfold(CausalAllPairs)
	cons := g.Unfold(CausalConsecutive)
	if all.Graph.NumArcs() <= cons.Graph.NumArcs() {
		t.Fatalf("all-pairs arcs %d should exceed consecutive %d",
			all.Graph.NumArcs(), cons.Graph.NumArcs())
	}
	if len(all.Order) != len(cons.Order) {
		t.Fatal("causal mode must not change the active node set")
	}
}

func TestStaticGraphBFS(t *testing.T) {
	// 0→1→2, 3 isolated.
	g := NewStaticGraph(4, [][2]int32{{0, 1}, {1, 2}})
	dist := g.BFS(0)
	want := []int32{0, 1, 2, -1}
	for i := range want {
		if dist[i] != want[i] {
			t.Fatalf("dist = %v, want %v", dist, want)
		}
	}
	if g.NumNodes() != 4 || g.NumArcs() != 2 {
		t.Fatal("static graph dims wrong")
	}
}

func TestStaticGraphBFSCycle(t *testing.T) {
	g := NewStaticGraph(3, [][2]int32{{0, 1}, {1, 2}, {2, 0}})
	dist := g.BFS(1)
	if dist[1] != 0 || dist[2] != 1 || dist[0] != 2 {
		t.Fatalf("dist = %v", dist)
	}
}

// RandomGraph builds a random evolving graph for property tests shared
// across packages.
func RandomGraph(rng *rand.Rand, directed bool) *IntEvolvingGraph {
	b := NewBuilder(directed)
	n := 2 + rng.Intn(8)
	stamps := 1 + rng.Intn(5)
	edges := rng.Intn(3 * n)
	for e := 0; e < edges; e++ {
		u := int32(rng.Intn(n))
		v := int32(rng.Intn(n))
		ts := int64(1 + rng.Intn(stamps))
		b.AddEdge(u, v, ts)
	}
	// Guarantee at least one edge so the graph is non-trivial.
	b.AddEdge(0, 1, 1)
	return b.Build()
}

// Property: the unfolding's arc count equals EdgeCount and its node
// count equals NumActiveNodes, in both modes and directions.
func TestUnfoldCountsConsistent(t *testing.T) {
	f := func(seed int64, directed, consecutive bool) bool {
		rng := rand.New(rand.NewSource(seed))
		g := RandomGraph(rng, directed)
		mode := CausalAllPairs
		if consecutive {
			mode = CausalConsecutive
		}
		u := g.Unfold(mode)
		if u.Graph.NumNodes() != g.NumActiveNodes() {
			return false
		}
		return u.Graph.NumArcs() == g.EdgeCount(mode)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: every unfolded arc goes forward in time, and same-stamp arcs
// correspond to static edges (upper-triangular structure of A_n).
func TestUnfoldArcsRespectTime(t *testing.T) {
	f := func(seed int64, directed bool) bool {
		rng := rand.New(rand.NewSource(seed))
		g := RandomGraph(rng, directed)
		u := g.Unfold(CausalAllPairs)
		for fromID := range u.Order {
			from := u.Order[fromID]
			for _, toID := range u.Graph.Neighbors(int32(fromID)) {
				to := u.Order[toID]
				if to.Stamp < from.Stamp {
					return false // backward-in-time arc
				}
				if to.Stamp == from.Stamp {
					if from.Node == to.Node {
						return false // same-stamp self arc
					}
					if !g.HasEdge(from.Node, to.Node, from.Stamp) {
						return false // same-stamp arc with no static edge
					}
				} else if from.Node != to.Node {
					return false // cross-stamp arc must be causal
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
