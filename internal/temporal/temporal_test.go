package temporal

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/egraph"
)

func tn(v, s int32) egraph.TemporalNode { return egraph.TemporalNode{Node: v, Stamp: s} }

// randomGraph mirrors the generator used by core's property tests.
func randomGraph(rng *rand.Rand, directed bool) *egraph.IntEvolvingGraph {
	b := egraph.NewBuilder(directed)
	n := 2 + rng.Intn(8)
	stamps := 1 + rng.Intn(5)
	edges := rng.Intn(3 * n)
	for e := 0; e < edges; e++ {
		b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)), int64(1+rng.Intn(stamps)))
	}
	b.AddEdge(0, 1, 1)
	return b.Build()
}

func TestForemostFigure1(t *testing.T) {
	g := egraph.Figure1Graph()
	fm, err := Foremost(g, tn(0, 0), egraph.CausalAllPairs)
	if err != nil {
		t.Fatal(err)
	}
	// Node 0 (paper's 1) is its own root at stamp 0; node 1 (paper's 2)
	// is reached at stamp 0 via the static edge; node 2 (paper's 3)
	// first becomes reachable at stamp 1 via (1,t1)→(1,t2)→(3,t2).
	want := []int32{0, 0, 1}
	for v, w := range want {
		if got := fm.ArrivalStamp(int32(v)); got != w {
			t.Errorf("ArrivalStamp(%d) = %d, want %d", v, got, w)
		}
	}
	if n := fm.NumReachableNodes(); n != 3 {
		t.Errorf("NumReachableNodes = %d, want 3", n)
	}
	if lbl, ok := fm.ArrivalLabel(2); !ok || lbl != 2 {
		t.Errorf("ArrivalLabel(2) = %d,%v, want 2,true", lbl, ok)
	}
	p := fm.Path(2)
	if len(p) == 0 || p[0] != tn(0, 0) || p[len(p)-1] != tn(2, 1) {
		t.Fatalf("foremost path to 2 = %v", p)
	}
	if !p.IsValid(g, egraph.CausalAllPairs) {
		t.Fatalf("foremost path invalid: %v", p)
	}
}

func TestForemostInactiveRoot(t *testing.T) {
	g := egraph.Figure1Graph()
	if _, err := Foremost(g, tn(2, 0), egraph.CausalAllPairs); !errors.Is(err, core.ErrInactiveRoot) {
		t.Fatalf("Foremost from inactive (3,t1): err = %v, want ErrInactiveRoot", err)
	}
}

func TestLatestDepartureFigure1(t *testing.T) {
	g := egraph.Figure1Graph()
	ld, err := LatestDeparture(g, tn(2, 2), egraph.CausalAllPairs)
	if err != nil {
		t.Fatal(err)
	}
	// Node 0 can depart as late as t2 ((1,t2)→(3,t2)→(3,t3)); node 1
	// departs latest at t3 itself ((2,t3)→(3,t3)); node 2 at t3.
	want := []int32{1, 2, 2}
	for v, w := range want {
		if got := ld.DepartureStamp(int32(v)); got != w {
			t.Errorf("DepartureStamp(%d) = %d, want %d", v, got, w)
		}
	}
	p := ld.Path(0)
	if len(p) == 0 || p[0] != tn(0, 1) || p[len(p)-1] != tn(2, 2) {
		t.Fatalf("latest-departure path from 0 = %v", p)
	}
	if !p.IsValid(g, egraph.CausalAllPairs) {
		t.Fatalf("latest-departure path invalid: %v", p)
	}
}

func TestFastestFigure1(t *testing.T) {
	g := egraph.Figure1Graph()
	fast, err := Fastest(g, 0, 2, egraph.CausalAllPairs)
	if err != nil {
		t.Fatal(err)
	}
	// Departing at t2, (1,t2)→(3,t2) arrives within the same stamp:
	// duration 0, one hop. Departing at t1 would cost duration 1.
	if fast.Duration != 0 {
		t.Fatalf("Duration = %d, want 0", fast.Duration)
	}
	if fast.Departure != tn(0, 1) || fast.Arrival != tn(2, 1) {
		t.Fatalf("Departure/Arrival = %v/%v, want (0,t2)/(2,t2)", fast.Departure, fast.Arrival)
	}
	if fast.Hops != 1 {
		t.Fatalf("Hops = %d, want 1", fast.Hops)
	}
	if !fast.Path.IsValid(g, egraph.CausalAllPairs) {
		t.Fatalf("fastest path invalid: %v", fast.Path)
	}
}

func TestFastestUnreachable(t *testing.T) {
	g := egraph.Figure1Graph()
	// Node 2 (paper's 3) has no out-edges; node 0 is unreachable from it.
	fast, err := Fastest(g, 2, 0, egraph.CausalAllPairs)
	if err != nil {
		t.Fatal(err)
	}
	if fast.Duration != -1 || fast.Path != nil {
		t.Fatalf("Fastest(2,0) = %+v, want unreachable", fast)
	}
}

func TestFastestBadArgs(t *testing.T) {
	g := egraph.Figure1Graph()
	if _, err := Fastest(g, -1, 0, egraph.CausalAllPairs); err == nil {
		t.Fatal("Fastest(-1, 0) succeeded, want range error")
	}
	if _, err := Fastest(g, 0, 99, egraph.CausalAllPairs); err == nil {
		t.Fatal("Fastest(0, 99) succeeded, want range error")
	}
}

func TestCompareFigure1(t *testing.T) {
	g := egraph.Figure1Graph()
	sum, err := Compare(g, 0, 2, egraph.CausalAllPairs)
	if err != nil {
		t.Fatal(err)
	}
	want := Summary{
		Source: 0, Target: 2,
		Reachable:       true,
		ShortestHops:    2, // (1,t1)→(1,t2)→(3,t2)
		EarliestArrival: 2, // label of t2
		LatestDeparture: 2, // depart (1,t2)
		FastestDuration: 0, // same-stamp hop at t2
	}
	if sum != want {
		t.Fatalf("Compare(0,2) = %+v, want %+v", sum, want)
	}
}

func TestCompareUnreachable(t *testing.T) {
	g := egraph.Figure1Graph()
	sum, err := Compare(g, 1, 0, egraph.CausalAllPairs)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Reachable {
		t.Fatalf("Compare(1,0) = %+v, want unreachable", sum)
	}
}

// Foremost arrival stamps must agree with an independent oracle: the
// minimum stamp over temporal nodes reached by BFS on the Theorem 1
// unfolding.
func TestForemostMatchesUnfoldingOracle(t *testing.T) {
	f := func(seed int64, directed bool) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, directed)
		root := tn(0, g.ActiveStamps(0)[0])
		fm, err := Foremost(g, root, egraph.CausalAllPairs)
		if err != nil {
			t.Logf("foremost: %v", err)
			return false
		}
		u := g.Unfold(egraph.CausalAllPairs)
		dist := u.Graph.BFS(u.IDOf(root))
		oracle := make([]int32, g.NumNodes())
		for i := range oracle {
			oracle[i] = -1
		}
		for id, d := range dist {
			if d < 0 {
				continue
			}
			v := u.Order[id]
			if oracle[v.Node] < 0 || v.Stamp < oracle[v.Node] {
				oracle[v.Node] = v.Stamp
			}
		}
		for v := int32(0); v < int32(g.NumNodes()); v++ {
			if fm.ArrivalStamp(v) != oracle[v] {
				t.Logf("seed %d: node %d arrival %d, oracle %d", seed, v, fm.ArrivalStamp(v), oracle[v])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Latest departure must agree with brute force: the max stamp s of v such
// that a forward BFS from (v, s) reaches the target.
func TestLatestDepartureMatchesBruteForce(t *testing.T) {
	f := func(seed int64, directed bool) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, directed)
		// Aim at node 1's last active stamp (node 1 is always active:
		// the generator pins edge 0→1@t1).
		ts := g.ActiveStamps(1)
		target := tn(1, ts[len(ts)-1])
		ld, err := LatestDeparture(g, target, egraph.CausalAllPairs)
		if err != nil {
			t.Logf("latest departure: %v", err)
			return false
		}
		for v := int32(0); v < int32(g.NumNodes()); v++ {
			want := int32(-1)
			for _, s := range g.ActiveStamps(v) {
				res, err := core.BFS(g, tn(v, s), core.Options{})
				if err != nil {
					t.Logf("bfs: %v", err)
					return false
				}
				if res.Reached(target) {
					want = s // ascending: keep the last hit
				}
			}
			if ld.DepartureStamp(v) != want {
				t.Logf("seed %d: node %d departure %d, brute force %d", seed, v, ld.DepartureStamp(v), want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Fastest must agree with brute force over all departures, where each
// departure's earliest arrival is read off a plain BFS.
func TestFastestMatchesBruteForce(t *testing.T) {
	f := func(seed int64, directed bool) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, directed)
		dst := int32(1)
		fast, err := Fastest(g, 0, dst, egraph.CausalAllPairs)
		if err != nil {
			t.Logf("fastest: %v", err)
			return false
		}
		want := int64(-1)
		for _, s := range g.ActiveStamps(0) {
			res, err := core.BFS(g, tn(0, s), core.Options{})
			if err != nil {
				t.Logf("bfs: %v", err)
				return false
			}
			for _, a := range g.ActiveStamps(dst) {
				if !res.Reached(tn(dst, a)) {
					continue
				}
				d := g.TimeLabel(int(a)) - g.TimeLabel(int(s))
				if want < 0 || d < want {
					want = d
				}
				break
			}
		}
		if fast.Duration != want {
			t.Logf("seed %d: duration %d, brute force %d", seed, fast.Duration, want)
			return false
		}
		if want >= 0 {
			if !fast.Path.IsValid(g, egraph.CausalAllPairs) {
				t.Logf("seed %d: invalid path %v", seed, fast.Path)
				return false
			}
			if got := g.TimeLabel(int(fast.Arrival.Stamp)) - g.TimeLabel(int(fast.Departure.Stamp)); got != want {
				t.Logf("seed %d: endpoint duration %d ≠ %d", seed, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Durations must be pointwise consistent with Fastest.
func TestDurationsMatchFastest(t *testing.T) {
	f := func(seed int64, directed bool) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, directed)
		durations, err := Durations(g, 0, egraph.CausalAllPairs)
		if err != nil {
			t.Logf("durations: %v", err)
			return false
		}
		for v := int32(0); v < int32(g.NumNodes()); v++ {
			fast, err := Fastest(g, 0, v, egraph.CausalAllPairs)
			if err != nil {
				t.Logf("fastest: %v", err)
				return false
			}
			if durations[v] != fast.Duration {
				t.Logf("seed %d: node %d durations %d ≠ fastest %d", seed, v, durations[v], fast.Duration)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// The four criteria obey the standard sandwich inequalities whenever the
// target is reachable.
func TestCriteriaInequalities(t *testing.T) {
	f := func(seed int64, directed bool) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, directed)
		for dst := int32(0); dst < int32(g.NumNodes()); dst++ {
			sum, err := Compare(g, 0, dst, egraph.CausalAllPairs)
			if err != nil {
				t.Logf("compare: %v", err)
				return false
			}
			if !sum.Reachable {
				continue
			}
			depart := g.TimeLabel(int(g.ActiveStamps(0)[0]))
			if sum.EarliestArrival < depart {
				t.Logf("seed %d dst %d: arrival %d before departure %d", seed, dst, sum.EarliestArrival, depart)
				return false
			}
			if sum.FastestDuration < 0 || sum.FastestDuration > sum.EarliestArrival-depart {
				t.Logf("seed %d dst %d: fastest %d outside [0, %d]", seed, dst, sum.FastestDuration, sum.EarliestArrival-depart)
				return false
			}
			if sum.LatestDeparture < depart {
				t.Logf("seed %d dst %d: latest departure %d before earliest stamp %d", seed, dst, sum.LatestDeparture, depart)
				return false
			}
			if sum.ShortestHops < 1 && dst != 0 {
				t.Logf("seed %d dst %d: shortest hops %d", seed, dst, sum.ShortestHops)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Foremost paths must be valid temporal paths under both causal modes.
func TestForemostPathsValid(t *testing.T) {
	for _, mode := range []egraph.CausalMode{egraph.CausalAllPairs, egraph.CausalConsecutive} {
		f := func(seed int64, directed bool) bool {
			rng := rand.New(rand.NewSource(seed))
			g := randomGraph(rng, directed)
			fm, err := Foremost(g, tn(0, g.ActiveStamps(0)[0]), mode)
			if err != nil {
				t.Logf("foremost: %v", err)
				return false
			}
			for v := int32(0); v < int32(g.NumNodes()); v++ {
				p := fm.Path(v)
				if fm.ArrivalStamp(v) < 0 {
					if p != nil {
						t.Logf("seed %d: path for unreachable node %d", seed, v)
						return false
					}
					continue
				}
				if !p.IsValid(g, mode) {
					t.Logf("seed %d mode %v: invalid path %v", seed, mode, p)
					return false
				}
				if last := p[len(p)-1]; last.Node != v || last.Stamp != fm.ArrivalStamp(v) {
					t.Logf("seed %d: path ends at %v, want (%d,%d)", seed, last, v, fm.ArrivalStamp(v))
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
	}
}

// collapseCausalChains must turn consecutive-mode scan routes into valid
// all-pairs paths without changing endpoints.
func TestCollapseCausalChains(t *testing.T) {
	p := core.TemporalPath{tn(0, 0), tn(0, 1), tn(0, 3), tn(1, 3)}
	got := collapseCausalChains(p)
	want := core.TemporalPath{tn(0, 0), tn(0, 3), tn(1, 3)}
	if len(got) != len(want) {
		t.Fatalf("collapsed = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("collapsed = %v, want %v", got, want)
		}
	}
	// Short paths are returned unchanged.
	short := core.TemporalPath{tn(0, 0), tn(1, 0)}
	if out := collapseCausalChains(short); len(out) != 2 {
		t.Fatalf("collapse(short) = %v", out)
	}
}

// The intro game: with the right turn order player 3 hears everything
// fast; with the swapped order message a never arrives — and the
// fastest-path machinery agrees.
func TestIntroGameSemantics(t *testing.T) {
	g := egraph.IntroGameGraph(false)
	fast, err := Fastest(g, 0, 2, egraph.CausalAllPairs)
	if err != nil {
		t.Fatal(err)
	}
	if fast.Duration != 1 {
		t.Fatalf("intro game duration = %d, want 1 (depart t1, arrive t2)", fast.Duration)
	}
	swapped := egraph.IntroGameGraph(true)
	fast, err = Fastest(swapped, 0, 2, egraph.CausalAllPairs)
	if err != nil {
		t.Fatal(err)
	}
	if fast.Duration != -1 {
		t.Fatalf("swapped intro game duration = %d, want unreachable", fast.Duration)
	}
}

func TestArrivalProfileFigure1(t *testing.T) {
	g := egraph.Figure1Graph()
	profile, err := ArrivalProfile(g, 0, 2, egraph.CausalAllPairs)
	if err != nil {
		t.Fatal(err)
	}
	// Node 0 departs at t1 or t2; both reach node 2 earliest at t2.
	want := []ProfileEntry{
		{Departure: 0, Arrival: 1, Duration: 1},
		{Departure: 1, Arrival: 1, Duration: 0},
	}
	if len(profile) != len(want) {
		t.Fatalf("profile = %+v, want %+v", profile, want)
	}
	for i := range want {
		if profile[i] != want[i] {
			t.Fatalf("profile[%d] = %+v, want %+v", i, profile[i], want[i])
		}
	}
}

func TestArrivalProfileErrors(t *testing.T) {
	g := egraph.Figure1Graph()
	if _, err := ArrivalProfile(g, 0, 9, egraph.CausalAllPairs); err == nil {
		t.Error("out-of-range dst succeeded")
	}
	// Unreachable target: empty, no error.
	profile, err := ArrivalProfile(g, 2, 0, egraph.CausalAllPairs)
	if err != nil {
		t.Fatal(err)
	}
	if len(profile) != 0 {
		t.Fatalf("profile to unreachable target = %+v", profile)
	}
}

// Profile invariants on random graphs: arrivals are non-decreasing in
// the departure stamp; every entry matches a brute-force BFS; and the
// minimum duration over the profile equals Fastest.
func TestArrivalProfileInvariants(t *testing.T) {
	f := func(seed int64, directed bool) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, directed)
		dst := int32(1)
		profile, err := ArrivalProfile(g, 0, dst, egraph.CausalAllPairs)
		if err != nil {
			t.Log(err)
			return false
		}
		for i := 1; i < len(profile); i++ {
			if profile[i].Arrival < profile[i-1].Arrival {
				t.Logf("seed %d: arrivals decreased: %+v", seed, profile)
				return false
			}
		}
		byDeparture := make(map[int32]int32, len(profile))
		for _, p := range profile {
			byDeparture[p.Departure] = p.Arrival
		}
		minDur := int64(-1)
		for _, s := range g.ActiveStamps(0) {
			res, err := core.BFS(g, tn(0, s), core.Options{})
			if err != nil {
				t.Log(err)
				return false
			}
			want := int32(-1)
			for _, a := range g.ActiveStamps(dst) {
				if res.Reached(tn(dst, a)) {
					want = a
					break
				}
			}
			got, ok := byDeparture[s]
			if (want < 0) != !ok || (ok && got != want) {
				t.Logf("seed %d: departure %d arrival %d, brute force %d", seed, s, got, want)
				return false
			}
			if want >= 0 {
				d := g.TimeLabel(int(want)) - g.TimeLabel(int(s))
				if minDur < 0 || d < minDur {
					minDur = d
				}
			}
		}
		fast, err := Fastest(g, 0, dst, egraph.CausalAllPairs)
		if err != nil {
			t.Log(err)
			return false
		}
		if fast.Duration != minDur {
			t.Logf("seed %d: fastest %d ≠ profile min %d", seed, fast.Duration, minDur)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
