// Package temporal implements the classic optimality criteria for
// temporal paths — foremost (earliest arrival), reverse-foremost (latest
// departure), fastest (minimum elapsed time), and shortest (fewest hops)
// — on top of the paper's evolving-graph model.
//
// The paper's BFS (Algorithm 1, internal/core) minimises Def. 6 distance:
// the number of static + causal hops. The temporal-graph literature (Wu
// et al., PVLDB 2014; Tang et al.) studies three further criteria that
// are all expressible as queries over the same temporal-path structure:
//
//   - foremost: reach a node at the earliest possible stamp;
//   - reverse-foremost: depart from a node as late as possible while
//     still reaching a target;
//   - fastest: minimise arrival label minus departure label over all
//     possible departures of the source node.
//
// Because Algorithm 1 discovers every reachable temporal node (v, s),
// foremost and reverse-foremost reduce to a min/max over stamps of the
// reached set of a single forward/backward BFS, so each costs one
// O(|E| + |V|) search. Fastest requires one earliest-arrival scan per
// active departure stamp of the source; the scan prunes temporal nodes
// whose stamp label can no longer improve the incumbent duration.
package temporal

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ds"
	"repro/internal/egraph"
)

// ForemostResult holds earliest-arrival information from a fixed root,
// for every node of the graph (not every temporal node).
type ForemostResult struct {
	g    *egraph.IntEvolvingGraph
	root egraph.TemporalNode
	bfs  *core.Result
	// arrival[v] = earliest stamp s with (v, s) reachable, or -1.
	arrival []int32
}

// Foremost computes, for every node v, the earliest stamp at which v can
// be reached from root along a temporal path. One forward BFS.
func Foremost(g *egraph.IntEvolvingGraph, root egraph.TemporalNode, mode egraph.CausalMode) (*ForemostResult, error) {
	res, err := core.BFS(g, root, core.Options{Mode: mode, TrackParents: true})
	if err != nil {
		return nil, fmt.Errorf("temporal: foremost: %w", err)
	}
	arrival := make([]int32, g.NumNodes())
	for i := range arrival {
		arrival[i] = -1
	}
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		for _, s := range g.ActiveStamps(v) {
			if res.Reached(egraph.TemporalNode{Node: v, Stamp: s}) {
				arrival[v] = s // ActiveStamps is ascending; first hit is earliest
				break
			}
		}
	}
	return &ForemostResult{g: g, root: root, bfs: res, arrival: arrival}, nil
}

// Root returns the departure temporal node of the search.
func (r *ForemostResult) Root() egraph.TemporalNode { return r.root }

// ArrivalStamp returns the earliest stamp at which v is reachable, or -1
// if v is unreachable from the root.
func (r *ForemostResult) ArrivalStamp(v int32) int32 { return r.arrival[v] }

// ArrivalLabel returns the user-visible time label of the earliest
// arrival at v. ok is false when v is unreachable.
func (r *ForemostResult) ArrivalLabel(v int32) (label int64, ok bool) {
	s := r.arrival[v]
	if s < 0 {
		return 0, false
	}
	return r.g.TimeLabel(int(s)), true
}

// NumReachableNodes counts nodes (not temporal nodes) reachable from the
// root, the root's own node included.
func (r *ForemostResult) NumReachableNodes() int {
	n := 0
	for _, s := range r.arrival {
		if s >= 0 {
			n++
		}
	}
	return n
}

// Path reconstructs a foremost path to v: a temporal path from the root
// that arrives at v's earliest reachable stamp. Returns nil if v is
// unreachable. The path is shortest (in hops) among paths arriving at
// that stamp, because it is read off the BFS tree.
func (r *ForemostResult) Path(v int32) core.TemporalPath {
	s := r.arrival[v]
	if s < 0 {
		return nil
	}
	return pathFromParents(r.bfs, egraph.TemporalNode{Node: v, Stamp: s})
}

// DepartureResult holds latest-departure information toward a fixed
// target (the reverse-foremost problem).
type DepartureResult struct {
	g      *egraph.IntEvolvingGraph
	target egraph.TemporalNode
	bfs    *core.Result
	// departure[v] = latest stamp s with a temporal path (v, s) ⇝
	// target, or -1.
	departure []int32
}

// LatestDeparture computes, for every node v, the latest stamp at which
// a temporal path from (v, s) can still reach the target. One backward
// (time-reversed) BFS.
func LatestDeparture(g *egraph.IntEvolvingGraph, target egraph.TemporalNode, mode egraph.CausalMode) (*DepartureResult, error) {
	res, err := core.BFS(g, target, core.Options{Mode: mode, Direction: core.Backward, TrackParents: true})
	if err != nil {
		return nil, fmt.Errorf("temporal: latest departure: %w", err)
	}
	departure := make([]int32, g.NumNodes())
	for i := range departure {
		departure[i] = -1
	}
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		stamps := g.ActiveStamps(v)
		for i := len(stamps) - 1; i >= 0; i-- {
			if res.Reached(egraph.TemporalNode{Node: v, Stamp: stamps[i]}) {
				departure[v] = stamps[i]
				break
			}
		}
	}
	return &DepartureResult{g: g, target: target, bfs: res, departure: departure}, nil
}

// Target returns the arrival temporal node of the search.
func (r *DepartureResult) Target() egraph.TemporalNode { return r.target }

// DepartureStamp returns the latest stamp from which v still reaches the
// target, or -1 if no temporal path exists from any stamp of v.
func (r *DepartureResult) DepartureStamp(v int32) int32 { return r.departure[v] }

// DepartureLabel returns the time label of the latest viable departure
// from v. ok is false when the target is unreachable from v.
func (r *DepartureResult) DepartureLabel(v int32) (label int64, ok bool) {
	s := r.departure[v]
	if s < 0 {
		return 0, false
	}
	return r.g.TimeLabel(int(s)), true
}

// Path reconstructs a latest-departure path from v to the target.
// Returns nil if the target is unreachable from v.
func (r *DepartureResult) Path(v int32) core.TemporalPath {
	s := r.departure[v]
	if s < 0 {
		return nil
	}
	// The backward BFS tree points from the target outward; walking
	// parents from (v, s) yields the path reversed in time, i.e. the
	// forward path read back-to-front.
	back := pathFromParents(r.bfs, egraph.TemporalNode{Node: v, Stamp: s})
	for i, j := 0, len(back)-1; i < j; i, j = i+1, j-1 {
		back[i], back[j] = back[j], back[i]
	}
	return back
}

// FastestResult describes the minimum-elapsed-time connection between
// two nodes.
type FastestResult struct {
	Source, Target int32
	// Departure and Arrival bracket the fastest connection. Zero
	// values when Duration < 0.
	Departure, Arrival egraph.TemporalNode
	// Duration = TimeLabel(Arrival.Stamp) − TimeLabel(Departure.Stamp),
	// or -1 when the target is unreachable from every departure.
	Duration int64
	// Hops is the Def. 6 distance of the realised path.
	Hops int
	// Path is one realising temporal path.
	Path core.TemporalPath
}

// Fastest finds the departure stamp of src that minimises elapsed time
// (arrival label − departure label) to dst. Ties are broken toward the
// earliest departure. Runs one pruned earliest-arrival scan per active
// stamp of src; a zero-duration connection short-circuits the sweep.
func Fastest(g *egraph.IntEvolvingGraph, src, dst int32, mode egraph.CausalMode) (FastestResult, error) {
	if src < 0 || int(src) >= g.NumNodes() || dst < 0 || int(dst) >= g.NumNodes() {
		return FastestResult{}, fmt.Errorf("temporal: fastest: node out of range (src=%d, dst=%d, n=%d)", src, dst, g.NumNodes())
	}
	best := FastestResult{Source: src, Target: dst, Duration: -1}
	if len(g.ActiveStamps(src)) == 0 {
		return best, core.ErrInactiveRoot
	}
	scan := newArrivalScanner(g, mode)
	for _, s := range g.ActiveStamps(src) {
		root := egraph.TemporalNode{Node: src, Stamp: s}
		cutoff := int64(-1) // no cutoff until an incumbent exists
		if best.Duration >= 0 {
			// Only arrivals strictly faster than the incumbent help.
			cutoff = g.TimeLabel(int(s)) + best.Duration - 1
			if cutoff < g.TimeLabel(int(s)) {
				continue // cannot possibly improve from this departure
			}
		}
		arrive, hops, path := scan.earliestArrival(root, dst, cutoff)
		if arrive < 0 {
			continue
		}
		dur := g.TimeLabel(int(arrive)) - g.TimeLabel(int(s))
		if best.Duration < 0 || dur < best.Duration {
			best.Departure = root
			best.Arrival = egraph.TemporalNode{Node: dst, Stamp: arrive}
			best.Duration = dur
			best.Hops = hops
			best.Path = path
			if dur == 0 {
				break
			}
		}
	}
	return best, nil
}

// arrivalScanner runs repeated earliest-arrival sweeps over one graph,
// reusing its visited marks and per-stamp buckets across calls.
type arrivalScanner struct {
	g       *egraph.IntEvolvingGraph
	mode    egraph.CausalMode
	visited *ds.BitSet
	parent  []int32
	buckets [][]int32 // one frontier bucket per stamp
	touched []int
}

func newArrivalScanner(g *egraph.IntEvolvingGraph, mode egraph.CausalMode) *arrivalScanner {
	size := g.NumNodes() * g.NumStamps()
	return &arrivalScanner{
		g:       g,
		mode:    mode,
		visited: ds.NewBitSet(size),
		parent:  make([]int32, size),
		buckets: make([][]int32, g.NumStamps()),
	}
}

// earliestArrival finds the smallest stamp s such that (dst, s) is
// reachable from root, skipping temporal nodes whose time label exceeds
// cutoff (cutoff < 0 disables pruning). Returns -1 when unreachable
// within the cutoff. hops and path describe one realising route.
//
// Arrival stamps never decrease along a temporal path (static hops stay
// on the stamp, causal hops advance it), so the sweep processes one
// bucket of temporal nodes per stamp, in stamp order — Dial's algorithm
// with the stamp as the priority. A plain hop-ordered BFS would be
// wrong here: it can discover dst first via a short path into a *later*
// stamp while a longer same-stamp route arrives earlier.
func (sc *arrivalScanner) earliestArrival(root egraph.TemporalNode, dst int32, cutoff int64) (arrival int32, hops int, path core.TemporalPath) {
	g := sc.g
	for _, id := range sc.touched {
		sc.visited.Clear(id)
	}
	sc.touched = sc.touched[:0]
	for s := range sc.buckets {
		sc.buckets[s] = sc.buckets[s][:0]
	}

	mark := func(tn egraph.TemporalNode, par int32) int32 {
		id := g.TemporalNodeID(tn)
		if sc.visited.TestAndSet(id) {
			return -1
		}
		sc.parent[id] = par
		sc.touched = append(sc.touched, id)
		return int32(id)
	}

	rootID := mark(root, -1)
	sc.buckets[root.Stamp] = append(sc.buckets[root.Stamp], rootID)
	if root.Node == dst {
		return root.Stamp, 0, core.TemporalPath{root}
	}
	bestStamp := int32(-1)
sweep:
	for s := int(root.Stamp); s < len(sc.buckets); s++ {
		// The bucket grows while it is processed (same-stamp hops).
		for i := 0; i < len(sc.buckets[s]); i++ {
			id := sc.buckets[s][i]
			tn := g.TemporalNodeFromID(int(id))
			// Static hops stay on the same stamp.
			for _, w := range g.OutNeighbors(tn.Node, tn.Stamp) {
				next := egraph.TemporalNode{Node: w, Stamp: tn.Stamp}
				if nid := mark(next, id); nid >= 0 {
					if w == dst {
						bestStamp = tn.Stamp
						break sweep
					}
					sc.buckets[s] = append(sc.buckets[s], nid)
				}
			}
			// Causal hops move forward in time. Consecutive
			// chaining preserves reachability and earliest
			// arrivals, so the scan always chains one active stamp
			// at a time regardless of mode; Def. 6 hop counts are
			// recovered only for the final path, re-derived below
			// under the caller's mode.
			if next := g.NextActiveStamp(tn.Node, tn.Stamp); next >= 0 {
				if cutoff < 0 || g.TimeLabel(int(next)) <= cutoff {
					nt := egraph.TemporalNode{Node: tn.Node, Stamp: next}
					if nid := mark(nt, id); nid >= 0 {
						sc.buckets[next] = append(sc.buckets[next], nid)
					}
				}
			}
		}
	}
	if bestStamp < 0 {
		return -1, 0, nil
	}
	// Reconstruct the scan's route, then recompute its hop count under
	// the caller's causal mode by collapsing consecutive causal chains
	// when mode is all-pairs.
	var rev core.TemporalPath
	for id := int32(g.TemporalNodeID(egraph.TemporalNode{Node: dst, Stamp: bestStamp})); id >= 0; id = sc.parent[id] {
		rev = append(rev, g.TemporalNodeFromID(int(id)))
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	if sc.mode == egraph.CausalAllPairs {
		rev = collapseCausalChains(rev)
	}
	return bestStamp, rev.Hops(), rev
}

// collapseCausalChains rewrites maximal runs of causal hops on the same
// node into a single all-pairs causal edge, converting a consecutive-
// mode path into its all-pairs equivalent.
func collapseCausalChains(p core.TemporalPath) core.TemporalPath {
	if len(p) < 3 {
		return p
	}
	out := p[:1]
	for i := 1; i < len(p); i++ {
		last := out[len(out)-1]
		if i+1 < len(p) && p[i].Node == last.Node && p[i+1].Node == last.Node {
			continue // interior of a causal chain; skip
		}
		out = append(out, p[i])
	}
	return out
}

// Durations computes the fastest duration from src to every node:
// durations[v] = min over departures s of (arrival label − departure
// label), or -1 where v is never reachable. Cost is one earliest-arrival
// scan per active stamp of src.
func Durations(g *egraph.IntEvolvingGraph, src int32, mode egraph.CausalMode) ([]int64, error) {
	if src < 0 || int(src) >= g.NumNodes() {
		return nil, fmt.Errorf("temporal: durations: node %d out of range (n=%d)", src, g.NumNodes())
	}
	if len(g.ActiveStamps(src)) == 0 {
		return nil, core.ErrInactiveRoot
	}
	durations := make([]int64, g.NumNodes())
	for i := range durations {
		durations[i] = -1
	}
	for _, s := range g.ActiveStamps(src) {
		root := egraph.TemporalNode{Node: src, Stamp: s}
		res, err := core.BFS(g, root, core.Options{Mode: mode})
		if err != nil {
			return nil, err
		}
		depart := g.TimeLabel(int(s))
		for v := int32(0); v < int32(g.NumNodes()); v++ {
			for _, t := range g.ActiveStamps(v) {
				if !res.Reached(egraph.TemporalNode{Node: v, Stamp: t}) {
					continue
				}
				d := g.TimeLabel(int(t)) - depart
				if durations[v] < 0 || d < durations[v] {
					durations[v] = d
				}
				break // ascending stamps: later arrivals only increase d
			}
		}
	}
	return durations, nil
}

// ProfileEntry is one point of an arrival profile: departing src at
// stamp Departure, the earliest reachable stamp of the target is
// Arrival, Duration = label(Arrival) − label(Departure).
type ProfileEntry struct {
	Departure int32
	Arrival   int32
	Duration  int64
}

// ArrivalProfile computes the earliest arrival at dst for *every* active
// departure stamp of src — the profile problem of the temporal-path
// literature. Departures from which dst is unreachable are omitted, so
// the result may be empty. Arrivals are non-decreasing in the departure
// stamp: departing earlier can always emulate departing later via a
// causal hop, never the reverse.
func ArrivalProfile(g *egraph.IntEvolvingGraph, src, dst int32, mode egraph.CausalMode) ([]ProfileEntry, error) {
	if src < 0 || int(src) >= g.NumNodes() || dst < 0 || int(dst) >= g.NumNodes() {
		return nil, fmt.Errorf("temporal: arrival profile: node out of range (src=%d, dst=%d, n=%d)", src, dst, g.NumNodes())
	}
	if len(g.ActiveStamps(src)) == 0 {
		return nil, core.ErrInactiveRoot
	}
	scan := newArrivalScanner(g, mode)
	var profile []ProfileEntry
	for _, s := range g.ActiveStamps(src) {
		arrive, _, _ := scan.earliestArrival(egraph.TemporalNode{Node: src, Stamp: s}, dst, -1)
		if arrive < 0 {
			continue
		}
		profile = append(profile, ProfileEntry{
			Departure: s,
			Arrival:   arrive,
			Duration:  g.TimeLabel(int(arrive)) - g.TimeLabel(int(s)),
		})
	}
	return profile, nil
}

// Summary reports all four path-optimality criteria between two nodes in
// one structure, for side-by-side comparison (see examples/semantics).
type Summary struct {
	Source, Target int32
	// Reachable is false when no temporal path connects any active
	// stamp of Source to any stamp of Target; all other fields are
	// then zero.
	Reachable bool
	// ShortestHops is the paper's Def. 6 distance from the earliest
	// active stamp of Source.
	ShortestHops int
	// EarliestArrival is the label of the foremost arrival at Target
	// when departing at Source's earliest active stamp.
	EarliestArrival int64
	// LatestDeparture is the label of the latest stamp of Source from
	// which Target is still reachable.
	LatestDeparture int64
	// FastestDuration is the minimum elapsed time over all departures.
	FastestDuration int64
}

// Compare evaluates the four criteria between src and dst. The shortest
// and foremost criteria depart at src's earliest active stamp, matching
// the paper's convention that BFS roots sit at the earliest stamp.
func Compare(g *egraph.IntEvolvingGraph, src, dst int32, mode egraph.CausalMode) (Summary, error) {
	sum := Summary{Source: src, Target: dst}
	stamps := g.ActiveStamps(src)
	if len(stamps) == 0 {
		return sum, core.ErrInactiveRoot
	}
	root := egraph.TemporalNode{Node: src, Stamp: stamps[0]}

	fm, err := Foremost(g, root, mode)
	if err != nil {
		return sum, err
	}
	if fm.ArrivalStamp(dst) < 0 {
		// Unreachable from the earliest stamp implies unreachable
		// from every later stamp: any path departing later is a
		// suffix-compatible path departing earlier via a causal hop.
		return sum, nil
	}
	sum.Reachable = true
	sum.EarliestArrival, _ = fm.ArrivalLabel(dst)
	sum.ShortestHops = fm.Path(dst).Hops()

	target := egraph.TemporalNode{Node: dst, Stamp: fm.ArrivalStamp(dst)}
	// The latest departure is with respect to reaching dst at any
	// stamp, so aim the backward search at dst's last reachable stamp.
	lastStamps := g.ActiveStamps(dst)
	target = egraph.TemporalNode{Node: dst, Stamp: lastStamps[len(lastStamps)-1]}
	ld, err := LatestDeparture(g, target, mode)
	if err != nil {
		return sum, err
	}
	if lbl, ok := ld.DepartureLabel(src); ok {
		sum.LatestDeparture = lbl
	} else {
		// dst's last stamp may be unreachable even though an earlier
		// stamp is; fall back to the foremost arrival stamp.
		ld, err = LatestDeparture(g, egraph.TemporalNode{Node: dst, Stamp: fm.ArrivalStamp(dst)}, mode)
		if err != nil {
			return sum, err
		}
		sum.LatestDeparture, _ = ld.DepartureLabel(src)
	}

	fast, err := Fastest(g, src, dst, mode)
	if err != nil {
		return sum, err
	}
	sum.FastestDuration = fast.Duration
	return sum, nil
}

// pathFromParents walks the BFS tree from tn back to the root and
// returns the forward path.
func pathFromParents(res *core.Result, tn egraph.TemporalNode) core.TemporalPath {
	if !res.Reached(tn) {
		return nil
	}
	var rev core.TemporalPath
	cur, ok := tn, true
	for {
		rev = append(rev, cur)
		cur, ok = res.Parent(cur)
		if !ok {
			break
		}
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}
