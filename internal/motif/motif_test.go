package motif

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/egraph"
)

func randomGraph(rng *rand.Rand) *egraph.IntEvolvingGraph {
	b := egraph.NewBuilder(true)
	n := 2 + rng.Intn(7)
	stamps := 1 + rng.Intn(5)
	edges := rng.Intn(4 * n)
	for e := 0; e < edges; e++ {
		b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)), int64(1+rng.Intn(stamps)))
	}
	b.AddEdge(0, 1, 1)
	return b.Build()
}

type tEdge struct{ u, v, t int32 }

func allEdges(g *egraph.IntEvolvingGraph) []tEdge {
	var out []tEdge
	for t := 0; t < g.NumStamps(); t++ {
		g.VisitEdges(int32(t), func(u, v int32, _ float64) bool {
			out = append(out, tEdge{u, v, int32(t)})
			return true
		})
	}
	return out
}

// brute2 classifies every ordered edge pair the slow way.
func brute2(g *egraph.IntEvolvingGraph, delta int) Counts2 {
	c := Counts2{Delta: delta}
	edges := allEdges(g)
	for _, e1 := range edges {
		for _, e2 := range edges {
			gap := e2.t - e1.t
			if gap < 1 || int(gap) > delta {
				continue
			}
			switch {
			case e1.u == e2.u && e1.v == e2.v:
				c.Repeat++
			case e1.v == e2.u && e2.v == e1.u:
				c.PingPong++
			}
			if e1.v == e2.u && e2.v != e1.u {
				c.Path++
			}
			if e1.u == e2.u && e1.v != e2.v {
				c.FanOut++
			}
			if e1.v == e2.v && e1.u != e2.u {
				c.FanIn++
			}
		}
	}
	return c
}

// brute3 classifies every ordered edge triple the slow way.
func brute3(g *egraph.IntEvolvingGraph, delta int) Counts3 {
	c := Counts3{Delta: delta}
	edges := allEdges(g)
	for _, e1 := range edges {
		for _, e2 := range edges {
			if e2.t <= e1.t || int(e2.t-e1.t) > delta {
				continue
			}
			// Wedge A→B, B→C with distinct nodes.
			if e1.v != e2.u || e2.v == e1.u || e2.v == e1.v {
				continue
			}
			a, b, cc := e1.u, e1.v, e2.v
			_ = b
			for _, e3 := range edges {
				if e3.t <= e2.t || int(e3.t-e1.t) > delta {
					continue
				}
				if e3.u == a && e3.v == cc {
					c.FeedForward++
				}
				if e3.u == cc && e3.v == a {
					c.Cycle++
				}
			}
		}
	}
	return c
}

func TestCount2Validation(t *testing.T) {
	g := egraph.Figure1Graph()
	if _, err := Count2(g, 0); err == nil {
		t.Error("Count2(delta=0) succeeded")
	}
	b := egraph.NewBuilder(false)
	b.AddEdge(0, 1, 1)
	if _, err := Count2(b.Build(), 1); err == nil {
		t.Error("Count2(undirected) succeeded")
	}
	if _, err := CountTriangles(b.Build(), 1); err == nil {
		t.Error("CountTriangles(undirected) succeeded")
	}
}

func TestCount2Figure1(t *testing.T) {
	// Fig. 1 edges: 1→2@t1, 1→3@t2, 2→3@t3.
	g := egraph.Figure1Graph()
	c, err := Count2(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Pairs with increasing stamps: (1→2@t1, 1→3@t2) fan-out;
	// (1→2@t1, 2→3@t3) path; (1→3@t2, 2→3@t3) fan-in.
	want := Counts2{Delta: 2, Path: 1, FanOut: 1, FanIn: 1}
	if c != want {
		t.Fatalf("Count2 = %+v, want %+v", c, want)
	}
	// δ=1 drops the (t1, t3) path pair.
	c, err = Count2(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	want = Counts2{Delta: 1, FanOut: 1, FanIn: 1}
	if c != want {
		t.Fatalf("Count2(δ=1) = %+v, want %+v", c, want)
	}
}

func TestTrianglesHandBuilt(t *testing.T) {
	b := egraph.NewBuilder(true)
	b.AddEdge(0, 1, 1) // A→B
	b.AddEdge(1, 2, 2) // B→C
	b.AddEdge(0, 2, 3) // A→C closes feed-forward
	b.AddEdge(2, 0, 3) // C→A closes cycle
	g := b.Build()
	c, err := CountTriangles(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c.FeedForward != 1 || c.Cycle != 1 {
		t.Fatalf("CountTriangles = %+v, want 1 feed-forward, 1 cycle", c)
	}
	// δ=1 cannot span t1→t3.
	c, err = CountTriangles(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.FeedForward != 0 || c.Cycle != 0 {
		t.Fatalf("CountTriangles(δ=1) = %+v, want zeros", c)
	}
}

func TestCount2MatchesBruteForce(t *testing.T) {
	f := func(seed int64, deltaSel uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng)
		delta := 1 + int(deltaSel)%4
		got, err := Count2(g, delta)
		if err != nil {
			t.Log(err)
			return false
		}
		want := brute2(g, delta)
		if got != want {
			t.Logf("seed %d δ=%d: got %+v, want %+v", seed, delta, got, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestTrianglesMatchBruteForce(t *testing.T) {
	f := func(seed int64, deltaSel uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng)
		delta := 1 + int(deltaSel)%4
		got, err := CountTriangles(g, delta)
		if err != nil {
			t.Log(err)
			return false
		}
		want := brute3(g, delta)
		if got != want {
			t.Logf("seed %d δ=%d: got %+v, want %+v", seed, delta, got, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Counts are monotone in δ, and Profile returns them in order.
func TestProfileMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng)
		max := g.NumStamps()
		profile, err := Profile(g, max)
		if err != nil {
			t.Log(err)
			return false
		}
		if len(profile) != max {
			return false
		}
		for i := 1; i < len(profile); i++ {
			a, b := profile[i-1], profile[i]
			if b.Path < a.Path || b.PingPong < a.PingPong || b.FanOut < a.FanOut ||
				b.FanIn < a.FanIn || b.Repeat < a.Repeat {
				t.Logf("seed %d: counts shrank from δ=%d to δ=%d", seed, a.Delta, b.Delta)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
