// Package motif counts temporal motifs: small patterns of static edges
// whose stamps strictly increase within a bounded window, the standard
// building blocks of temporal-network analysis (Paranjape, Benson &
// Leskovec, WSDM 2017), adapted to the paper's discretised model.
//
// A 2-edge motif is an ordered pair of static edges (e₁@t₁, e₂@t₂) with
// t₂ − t₁ ∈ [1, δ] (stamp indices; same-stamp pairs are static, not
// temporal, structure and are excluded). The pair is classified by how
// the edges touch:
//
//	path         A→B then B→C, A ≠ C   (information relay)
//	ping-pong    A→B then B→A          (reply)
//	fan-out      A→B then A→C, B ≠ C   (broadcast)
//	fan-in       A→C then B→C, A ≠ B   (convergence)
//	repeat       A→B then A→B          (repeated contact)
//
// A 3-edge triangle motif adds a closing edge within the same window
// measured from the first edge:
//
//	feed-forward A→B, B→C, then A→C
//	cycle        A→B, B→C, then C→A
//
// Every count is an ordered instance count over distinct temporal edge
// occurrences, so one edge pair present at several stamp combinations
// counts once per combination — matching the event-based literature.
//
// The 2-edge counters run in O(Σ_t |E[t]| · δ) using per-node degree
// profiles; the triangle counters enumerate wedges and probe the
// closing edge with a hash lookup.
package motif

import (
	"fmt"

	"repro/internal/egraph"
)

// Counts2 holds the 2-edge motif census for one window width.
type Counts2 struct {
	// Delta is the maximum stamp gap between the two edges (≥ 1).
	Delta int
	// Path counts A→B@t₁, B→C@t₂ with A ≠ C.
	Path int64
	// PingPong counts A→B@t₁, B→A@t₂.
	PingPong int64
	// FanOut counts A→B@t₁, A→C@t₂ with B ≠ C.
	FanOut int64
	// FanIn counts A→C@t₁, B→C@t₂ with A ≠ B.
	FanIn int64
	// Repeat counts A→B@t₁, A→B@t₂.
	Repeat int64
}

// Count2 runs the 2-edge motif census over g with stamp window delta.
// The graph must be directed: motif orientation is meaningless on
// undirected snapshots.
func Count2(g *egraph.IntEvolvingGraph, delta int) (Counts2, error) {
	if err := checkArgs(g, delta); err != nil {
		return Counts2{}, err
	}
	c := Counts2{Delta: delta}
	n := int32(g.NumNodes())
	stamps := g.NumStamps()

	// Degree profiles: outDeg[v][t], inDeg[v][t].
	outDeg := make([][]int64, n)
	inDeg := make([][]int64, n)
	for v := int32(0); v < n; v++ {
		outDeg[v] = make([]int64, stamps)
		inDeg[v] = make([]int64, stamps)
	}
	for t := 0; t < stamps; t++ {
		g.VisitEdges(int32(t), func(u, v int32, _ float64) bool {
			outDeg[u][t]++
			inDeg[v][t]++
			return true
		})
	}

	// Degree-product terms: for every node M and stamp pair t₁ < t₂ ≤
	// t₁+δ, paths-with-returns through M and fans at M.
	for v := int32(0); v < n; v++ {
		for t1 := 0; t1 < stamps; t1++ {
			hi := t1 + delta
			if hi > stamps-1 {
				hi = stamps - 1
			}
			for t2 := t1 + 1; t2 <= hi; t2++ {
				c.Path += inDeg[v][t1] * outDeg[v][t2]    // A→v then v→C (incl. A=C)
				c.FanOut += outDeg[v][t1] * outDeg[v][t2] // v→B then v→C (incl. B=C)
				c.FanIn += inDeg[v][t1] * inDeg[v][t2]    // A→v then B→v (incl. A=B)
			}
		}
	}

	// Correction terms need per-edge repeat structure: for each edge
	// u→v@t₁, how many later stamps within the window repeat u→v or
	// hold the reverse v→u.
	for t1 := 0; t1 < stamps; t1++ {
		hi := t1 + delta
		if hi > stamps-1 {
			hi = stamps - 1
		}
		g.VisitEdges(int32(t1), func(u, v int32, _ float64) bool {
			for t2 := t1 + 1; t2 <= hi; t2++ {
				if g.HasEdge(u, v, int32(t2)) {
					c.Repeat++
				}
				if g.HasEdge(v, u, int32(t2)) {
					c.PingPong++
				}
			}
			return true
		})
	}

	// Strip the diagonal cases out of the product terms.
	c.Path -= c.PingPong // A=C instances are exactly the ping-pongs
	c.FanOut -= c.Repeat // B=C instances are exactly the repeats
	c.FanIn -= c.Repeat  // A=B instances likewise
	return c, nil
}

// Counts3 holds the triangle motif census for one window width.
type Counts3 struct {
	// Delta is the maximum stamp gap between the first and last edge.
	Delta int
	// FeedForward counts A→B@t₁, B→C@t₂, A→C@t₃ with t₁<t₂<t₃≤t₁+δ
	// and A, B, C distinct.
	FeedForward int64
	// Cycle counts A→B@t₁, B→C@t₂, C→A@t₃ with t₁<t₂<t₃≤t₁+δ and
	// A, B, C distinct.
	Cycle int64
}

// CountTriangles runs the 3-edge triangle census over g with stamp
// window delta (measured first edge → last edge).
func CountTriangles(g *egraph.IntEvolvingGraph, delta int) (Counts3, error) {
	if err := checkArgs(g, delta); err != nil {
		return Counts3{}, err
	}
	c := Counts3{Delta: delta}
	stamps := g.NumStamps()
	for t1 := 0; t1 < stamps; t1++ {
		hi := t1 + delta
		if hi > stamps-1 {
			hi = stamps - 1
		}
		g.VisitEdges(int32(t1), func(a, b int32, _ float64) bool {
			for t2 := t1 + 1; t2 <= hi; t2++ {
				for _, cnode := range g.OutNeighbors(b, int32(t2)) {
					if cnode == a || cnode == b {
						continue
					}
					for t3 := t2 + 1; t3 <= hi; t3++ {
						if g.HasEdge(a, cnode, int32(t3)) {
							c.FeedForward++
						}
						if g.HasEdge(cnode, a, int32(t3)) {
							c.Cycle++
						}
					}
				}
			}
			return true
		})
	}
	return c, nil
}

// Profile runs the 2-edge census across a range of window widths,
// delta = 1..maxDelta — the decay of motif counts with window width is
// the usual summary plot.
func Profile(g *egraph.IntEvolvingGraph, maxDelta int) ([]Counts2, error) {
	if err := checkArgs(g, maxDelta); err != nil {
		return nil, err
	}
	out := make([]Counts2, 0, maxDelta)
	for d := 1; d <= maxDelta; d++ {
		c, err := Count2(g, d)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}

func checkArgs(g *egraph.IntEvolvingGraph, delta int) error {
	if !g.Directed() {
		return fmt.Errorf("motif: graph must be directed")
	}
	if delta < 1 {
		return fmt.Errorf("motif: delta must be ≥ 1, got %d", delta)
	}
	return nil
}
