package qcache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestCancelledLeaderDoesNotPoisonFollowers is the regression test for
// the singleflight context-poisoning bug: a leader whose own context
// is cancelled mid-compute must neither cache its context error nor
// hand it to collapsed followers — the followers re-elect and the
// computation succeeds under a live context.
func TestCancelledLeaderDoesNotPoisonFollowers(t *testing.T) {
	c := New(Options{Capacity: 16, Shards: 1})

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderIn := make(chan struct{})
	var computes atomic.Int64

	// Leader: enters compute, then blocks until its context dies.
	var wg sync.WaitGroup
	wg.Add(1)
	var leaderErr error
	go func() {
		defer wg.Done()
		_, _, leaderErr = c.DoAtCtx(leaderCtx, 1, "k", func(ctx context.Context) (interface{}, error) {
			computes.Add(1)
			close(leaderIn)
			<-ctx.Done()
			return nil, ctx.Err()
		})
	}()
	<-leaderIn

	// Followers park on the leader's flight.
	const followers = 8
	results := make(chan error, followers)
	for i := 0; i < followers; i++ {
		go func() {
			v, _, err := c.DoAtCtx(context.Background(), 1, "k", func(context.Context) (interface{}, error) {
				computes.Add(1)
				return "fresh", nil
			})
			if err == nil && v != "fresh" {
				err = fmt.Errorf("got %v, want fresh", v)
			}
			results <- err
		}()
	}
	// Give followers a moment to join the flight, then kill the leader.
	time.Sleep(20 * time.Millisecond)
	cancelLeader()
	wg.Wait()

	if !errors.Is(leaderErr, context.Canceled) {
		t.Fatalf("leader err = %v, want context.Canceled", leaderErr)
	}
	for i := 0; i < followers; i++ {
		if err := <-results; err != nil {
			t.Fatalf("follower inherited the dead leader's fate: %v", err)
		}
	}
	// The abandoned flight must not have cached the context error; the
	// re-elected leader's value must be cached.
	v, out, err := c.DoAt(1, "k", func() (interface{}, error) {
		return nil, errors.New("must not recompute")
	})
	if err != nil || v != "fresh" || (out != Hit && out != Carried) {
		t.Fatalf("post-recovery lookup = (%v, %v, %v), want cached fresh", v, out, err)
	}
}

// TestCancelledLeaderHammer runs the re-election machinery under load:
// many rounds, each with a doomed leader and a pack of followers, some
// of which are themselves cancelled mid-wait. Run with -race this
// doubles as the synchronisation check.
func TestCancelledLeaderHammer(t *testing.T) {
	c := New(Options{Capacity: 64, Shards: 4})
	for round := 0; round < 50; round++ {
		key := fmt.Sprintf("k%d", round%8)
		ver := uint64(round) // fresh revision each round: never a plain hit
		leaderCtx, cancelLeader := context.WithCancel(context.Background())
		leaderIn := make(chan struct{})
		go func() {
			c.DoAtCtx(leaderCtx, ver, key, func(ctx context.Context) (interface{}, error) {
				close(leaderIn)
				<-ctx.Done()
				return nil, ctx.Err()
			})
		}()
		<-leaderIn

		const followers = 16
		var wg sync.WaitGroup
		errs := make(chan error, followers)
		for i := 0; i < followers; i++ {
			wg.Add(1)
			doomed := i%4 == 0 // every 4th follower dies while waiting
			go func() {
				defer wg.Done()
				ctx := context.Background()
				if doomed {
					var cancel context.CancelFunc
					ctx, cancel = context.WithCancel(ctx)
					defer cancel()
					go func() {
						time.Sleep(time.Millisecond)
						cancel()
					}()
				}
				v, _, err := c.DoAtCtx(ctx, ver, key, func(context.Context) (interface{}, error) {
					return "ok", nil
				})
				switch {
				case err == nil && v == "ok":
				case doomed && errors.Is(err, context.Canceled):
					// A cancelled follower failing with its own context
					// error is correct; inheriting the leader's is not
					// distinguishable here, but the live followers below
					// prove no poisoning happened.
				default:
					errs <- fmt.Errorf("round %d: (%v, %v)", round, v, err)
				}
			}()
		}
		time.Sleep(2 * time.Millisecond)
		cancelLeader()
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
	}
}

// TestWaiterContextExpiresWhileWaiting pins that a follower whose own
// context dies stops waiting on a still-running computation.
func TestWaiterContextExpiresWhileWaiting(t *testing.T) {
	c := New(Options{Capacity: 16, Shards: 1})
	leaderIn := make(chan struct{})
	release := make(chan struct{})
	go func() {
		c.DoAt(1, "k", func() (interface{}, error) {
			close(leaderIn)
			<-release
			return "v", nil
		})
	}()
	<-leaderIn

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, out, err := c.DoAtCtx(ctx, 1, "k", func(context.Context) (interface{}, error) {
		t.Error("waiter must not compute")
		return nil, nil
	})
	if !errors.Is(err, context.DeadlineExceeded) || out != Collapsed {
		t.Fatalf("waiter = (%v, %v), want Collapsed + DeadlineExceeded", out, err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("waiter stayed parked past its deadline")
	}
	close(release)
}

// TestDoWithDeadCtxNeverLeads pins that a request arriving with an
// already-expired context does not take the leader slot.
func TestDoWithDeadCtxNeverLeads(t *testing.T) {
	c := New(Options{Capacity: 16, Shards: 1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := c.DoAtCtx(ctx, 1, "k", func(context.Context) (interface{}, error) {
		t.Error("dead-context caller must not compute")
		return nil, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestStaleFallback(t *testing.T) {
	c := New(Options{Capacity: 16, Shards: 2})
	if _, ok := c.Stale("k"); ok {
		t.Fatal("stale value before any compute")
	}
	if _, _, err := c.DoAt(1, "k", func() (interface{}, error) { return "v1", nil }); err != nil {
		t.Fatal(err)
	}
	// A later revision misses, but the stale store still serves v1.
	v, ok := c.Stale("k")
	if !ok || v != "v1" {
		t.Fatalf("Stale = (%v, %v), want v1", v, ok)
	}
	// A newer success replaces it.
	if _, _, err := c.DoAt(2, "k", func() (interface{}, error) { return "v2", nil }); err != nil {
		t.Fatal(err)
	}
	if v, ok := c.Stale("k"); !ok || v != "v2" {
		t.Fatalf("Stale after refresh = (%v, %v), want v2", v, ok)
	}
	// Errors never touch the stale store.
	c.DoAt(3, "k", func() (interface{}, error) { return nil, errors.New("boom") })
	if v, ok := c.Stale("k"); !ok || v != "v2" {
		t.Fatalf("Stale after failed compute = (%v, %v), want v2", v, ok)
	}
	if st := c.Stats(); st.StaleServed == 0 {
		t.Fatal("StaleServed counter never moved")
	}
	if Stale.String() != "stale" {
		t.Fatalf("Stale outcome name = %q", Stale.String())
	}
}
