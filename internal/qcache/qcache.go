// Package qcache is the result cache behind the query service
// (internal/server, DESIGN.md §10): a sharded LRU keyed by caller
// string keys, versioned by a graph revision, with singleflight
// collapse of concurrent identical computations.
//
// The cache is designed for read-heavy analytics serving where a miss
// is expensive (an all-sources BFS sweep, a CELF influence run) and the
// same handful of queries arrive hot:
//
//   - Sharding spreads lock contention: each key lives in the shard
//     picked by an FNV-1a hash, every shard has its own mutex, LRU list
//     and in-flight table.
//   - Versioning makes invalidation O(1): Bump advances the revision
//     counter and every key formed after it misses, because the
//     revision is folded into the stored key. Stale entries are not
//     swept eagerly; the LRU simply ages them out.
//   - Singleflight means a cold hot-key computes once under load: the
//     first Do runs compute, concurrent Dos for the same key park on
//     the leader's WaitGroup and share its result (Collapsed outcome).
//
// Errors are never cached — a failed compute is retried by the next
// caller — and collapsed waiters share the leader's error only when it
// is genuinely the computation's: a leader whose own context was
// cancelled mid-compute abandons the flight, and its waiters elect a
// new leader instead of inheriting the dead request's error (the
// singleflight context-poisoning fix, DESIGN.md §17).
package qcache

import (
	"container/list"
	"context"
	"errors"
	"hash/maphash"
	"sync"
	"sync/atomic"
)

// Outcome says how a Do call obtained its value.
type Outcome int

const (
	// Miss: this call ran compute itself.
	Miss Outcome = iota
	// Hit: the value was already cached.
	Hit
	// Collapsed: an identical computation was in flight; this call
	// waited for it and shares its result.
	Collapsed
	// Carried: the value was cached, and got there via CarryOver from
	// an earlier revision rather than a compute at this one — the
	// incremental maintainer proved the answer unchanged across the
	// swap. Operationally a hit; reported distinctly so the carry-over
	// machinery's contribution is visible in latency histograms.
	Carried
	// Stale: the serving layer fell back to the last good value for
	// this key (Cache.Stale) after a compute failure or budget
	// exhaustion — possibly from an older revision. Never produced by
	// Do/DoAt themselves; the degradation layer reports it when it
	// serves the fallback.
	Stale
)

// String returns the wire name used in X-Cache headers and load
// reports.
func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case Collapsed:
		return "collapsed"
	case Carried:
		return "carried"
	case Stale:
		return "stale"
	default:
		return "miss"
	}
}

// Options sizes a Cache. The zero value is usable.
type Options struct {
	// Capacity bounds the total number of cached entries across all
	// shards (default 1024). Oldest entries per shard are evicted.
	Capacity int
	// Shards is the number of independent lock domains (default 8).
	Shards int
}

// Cache is a versioned, sharded LRU with singleflight. The zero value
// is not usable; construct with New.
type Cache struct {
	shards  []shard
	seed    maphash.Seed
	version atomic.Uint64

	hits        atomic.Int64
	misses      atomic.Int64
	collapsed   atomic.Int64
	evictions   atomic.Int64
	carriedIn   atomic.Int64
	carriedHits atomic.Int64
	staleServed atomic.Int64
}

type shard struct {
	mu      sync.Mutex
	lru     *list.List // front = most recently used
	entries map[string]*list.Element
	flight  map[string]*call
	cap     int
	// stale holds the last successfully computed value per caller key
	// (revision stripped, sharded by the caller key alone), feeding
	// the serve-stale degradation mode. Bounded by cap with
	// arbitrary-entry eviction — staleness, not recency, is its
	// nature.
	stale map[string]interface{}
}

type entry struct {
	key string
	val interface{}
	// carried marks a value reinserted by CarryOver; a fresh compute
	// for the same key clears it.
	carried bool
}

// call is one in-flight computation. done closes when the leader
// finishes (a channel, not a WaitGroup, so waiters can also select on
// their own context). abandoned marks a flight whose leader's context
// was cancelled mid-compute: its error is the dead request's, not the
// computation's, so waiters re-elect instead of sharing it.
type call struct {
	done      chan struct{}
	val       interface{}
	err       error
	abandoned bool
}

// New returns a Cache sized by opts.
func New(opts Options) *Cache {
	if opts.Capacity <= 0 {
		opts.Capacity = 1024
	}
	if opts.Shards <= 0 {
		opts.Shards = 8
	}
	if opts.Shards > opts.Capacity {
		opts.Shards = opts.Capacity
	}
	c := &Cache{shards: make([]shard, opts.Shards), seed: maphash.MakeSeed()}
	per := (opts.Capacity + opts.Shards - 1) / opts.Shards
	for i := range c.shards {
		c.shards[i] = shard{
			lru:     list.New(),
			entries: make(map[string]*list.Element),
			flight:  make(map[string]*call),
			cap:     per,
			stale:   make(map[string]interface{}),
		}
	}
	return c
}

// Version returns the current revision. Keys formed under an older
// revision can no longer hit.
func (c *Cache) Version() uint64 { return c.version.Load() }

// Bump advances the revision, invalidating every cached entry in O(1).
// It returns the new revision. Call it whenever the data the cache is
// keyed over changes (the served graph is swapped).
func (c *Cache) Bump() uint64 { return c.version.Add(1) }

// Do returns the cached value for key at the current revision, or runs
// compute to produce it. Concurrent Do calls with an equal key collapse
// onto one compute; the others wait and share the result. A compute
// error is returned to the leader and every collapsed waiter but is not
// cached. compute runs without any shard lock held, so it may be slow
// and may itself block (e.g. on a concurrency gate).
func (c *Cache) Do(key string, compute func() (interface{}, error)) (val interface{}, outcome Outcome, err error) {
	return c.DoAt(c.version.Load(), key, compute)
}

// DoAt is Do pinned to an explicit revision. Callers that capture a
// data snapshot together with the revision it belongs to (e.g. an HTTP
// handler serving an atomically swappable graph) must use DoAt with
// the captured revision: forming the key from Version() at lookup time
// would let a computation over the *old* snapshot be stored under the
// *new* revision if a Bump lands in between, and that stale entry
// would then be served indefinitely.
func (c *Cache) DoAt(version uint64, key string, compute func() (interface{}, error)) (val interface{}, outcome Outcome, err error) {
	return c.DoAtCtx(context.Background(), version, key,
		func(context.Context) (interface{}, error) { return compute() })
}

// DoAtCtx is DoAt with the caller's request context threaded through.
// The context matters in three places:
//
//   - The leader runs compute with it, so a cancelled request stops
//     computing.
//   - A leader whose context is cancelled mid-compute *abandons* the
//     flight: its error is the dead request's, not the computation's,
//     so it is neither cached nor shared — the waiters elect a new
//     leader among themselves and the computation is retried with a
//     live context.
//   - A waiter whose own context expires stops waiting and returns its
//     context error instead of parking on a computation it will never
//     consume.
func (c *Cache) DoAtCtx(ctx context.Context, version uint64, key string, compute func(context.Context) (interface{}, error)) (val interface{}, outcome Outcome, err error) {
	vkey := versionedKey(version, key)
	s := &c.shards[c.shardOf(vkey)]

	waited := false
	for {
		s.mu.Lock()
		if el, ok := s.entries[vkey]; ok {
			s.lru.MoveToFront(el)
			e := el.Value.(*entry)
			v, carried := e.val, e.carried
			s.mu.Unlock()
			c.hits.Add(1)
			if carried {
				c.carriedHits.Add(1)
				return v, Carried, nil
			}
			return v, Hit, nil
		}
		if cl, ok := s.flight[vkey]; ok {
			s.mu.Unlock()
			if !waited {
				waited = true
				c.collapsed.Add(1)
			}
			select {
			case <-cl.done:
			case <-ctx.Done():
				return nil, Collapsed, ctx.Err()
			}
			if cl.abandoned {
				// The leader died of its own context, not of the
				// computation. Loop: re-check the cache (another
				// re-elected leader may have finished) or take the
				// leader slot ourselves.
				if err := ctx.Err(); err != nil {
					return nil, Collapsed, err
				}
				continue
			}
			return cl.val, Collapsed, cl.err
		}
		if err := ctx.Err(); err != nil {
			// Don't lead with a dead context: the compute would be
			// cancelled immediately and every follower forced through a
			// re-election round.
			s.mu.Unlock()
			return nil, Miss, err
		}
		cl := &call{done: make(chan struct{})}
		s.flight[vkey] = cl
		s.mu.Unlock()
		if !waited {
			c.misses.Add(1)
		}

		// Run compute unlocked; guarantee waiters are released and the
		// flight slot is cleared even if compute panics.
		completed := false
		defer func() {
			if !completed {
				cl.err = ErrPanic
				s.mu.Lock()
				delete(s.flight, vkey)
				s.mu.Unlock()
				close(cl.done)
			}
		}()
		cl.val, cl.err = compute(ctx)
		completed = true

		s.mu.Lock()
		delete(s.flight, vkey)
		if cl.err == nil {
			s.insert(vkey, cl.val, false, &c.evictions)
		} else if ctx.Err() != nil {
			// Cancelled leader: the flight is abandoned, the error stays
			// with this caller only.
			cl.abandoned = true
		}
		s.mu.Unlock()
		if cl.err == nil {
			// Record the last good value for serve-stale, sharded by the
			// caller key alone (so every revision's compute refreshes the
			// same slot). Separate lock scope: the stale shard is not
			// generally the flight's shard.
			ss := &c.shards[c.shardOf(key)]
			ss.mu.Lock()
			ss.stale[key] = cl.val
			for len(ss.stale) > ss.cap {
				for k := range ss.stale {
					delete(ss.stale, k)
					break
				}
			}
			ss.mu.Unlock()
		}
		close(cl.done)
		return cl.val, Miss, cl.err
	}
}

// Stale returns the last value a successful compute produced for key
// under *any* revision — the serve-stale degradation fallback. The
// caller decides when falling back is acceptable and must mark the
// response as stale (X-Cache: stale / the wire stale outcome).
func (c *Cache) Stale(key string) (interface{}, bool) {
	s := &c.shards[c.shardOf(key)]
	s.mu.Lock()
	v, ok := s.stale[key]
	s.mu.Unlock()
	if ok {
		c.staleServed.Add(1)
		return v, true
	}
	return nil, false
}

// insert adds a key to the shard's LRU, evicting from the back past
// capacity. Caller holds s.mu.
func (s *shard) insert(key string, val interface{}, carried bool, evictions *atomic.Int64) {
	if el, ok := s.entries[key]; ok { // lost a bump race; refresh
		e := el.Value.(*entry)
		e.val = val
		e.carried = carried
		s.lru.MoveToFront(el)
		return
	}
	s.entries[key] = s.lru.PushFront(&entry{key: key, val: val, carried: carried})
	for s.lru.Len() > s.cap {
		back := s.lru.Back()
		s.lru.Remove(back)
		delete(s.entries, back.Value.(*entry).key)
		evictions.Add(1)
	}
}

// CarryOver re-registers entries cached under revision from at
// revision to, for every key the keep predicate approves. It is the
// escape hatch from Bump's invalidate-everything semantics: a caller
// that can prove a data change cannot affect certain keys (e.g. an
// incremental maintainer classifying a delta as confined to one
// component, DESIGN.md §13) keeps those answers warm across the swap
// instead of recomputing them. keep receives the caller key with the
// revision prefix stripped. Returns the number of entries carried.
//
// Collection and reinsertion are two phases because the versioned key
// changes shard: the entry for (to, key) generally lives in a
// different shard than (from, key), and lock ordering across shards is
// not defined. Entries observed during the collect phase may age out
// before reinsertion; the value carried is the one read, which is safe
// because keep only approves keys whose value is provably identical
// under both revisions.
func (c *Cache) CarryOver(from, to uint64, keep func(key string) bool) int {
	if from == to {
		return 0
	}
	prefix := versionedKey(from, "")
	type kv struct {
		key string
		val interface{}
	}
	var carry []kv
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for el := s.lru.Front(); el != nil; el = el.Next() {
			e := el.Value.(*entry)
			if len(e.key) < len(prefix) || e.key[:len(prefix)] != prefix {
				continue
			}
			if k := e.key[len(prefix):]; keep(k) {
				carry = append(carry, kv{key: k, val: e.val})
			}
		}
		s.mu.Unlock()
	}
	for _, e := range carry {
		vkey := versionedKey(to, e.key)
		s := &c.shards[c.shardOf(vkey)]
		s.mu.Lock()
		s.insert(vkey, e.val, true, &c.evictions)
		s.mu.Unlock()
	}
	c.carriedIn.Add(int64(len(carry)))
	return len(carry)
}

// Stats is a point-in-time counter snapshot. CarriedHits is the subset
// of Hits served from a carried-over entry; CarriedIn counts entries
// reinserted by CarryOver across all swaps.
type Stats struct {
	Hits        int64  `json:"hits"`
	Misses      int64  `json:"misses"`
	Collapsed   int64  `json:"collapsed"`
	Evictions   int64  `json:"evictions"`
	CarriedIn   int64  `json:"carriedIn"`
	CarriedHits int64  `json:"carriedHits"`
	StaleServed int64  `json:"staleServed"` // serve-stale fallbacks handed out
	Entries     int    `json:"entries"`
	Version     uint64 `json:"version"`
}

// HitRate is the fraction of Do calls that avoided a computation —
// hits plus collapsed waiters over all calls (0 when idle).
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses + s.Collapsed
	if total == 0 {
		return 0
	}
	return float64(s.Hits+s.Collapsed) / float64(total)
}

// Stats returns the current counters. Entries counts stored values
// including not-yet-evicted entries from older revisions.
func (c *Cache) Stats() Stats {
	st := Stats{
		Hits:        c.hits.Load(),
		Misses:      c.misses.Load(),
		Collapsed:   c.collapsed.Load(),
		Evictions:   c.evictions.Load(),
		CarriedIn:   c.carriedIn.Load(),
		CarriedHits: c.carriedHits.Load(),
		StaleServed: c.staleServed.Load(),
		Version:     c.version.Load(),
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Entries += s.lru.Len()
		s.mu.Unlock()
	}
	return st
}

func (c *Cache) shardOf(key string) int {
	return int(maphash.String(c.seed, key) % uint64(len(c.shards)))
}

// versionedKey folds the revision into the stored key so Bump
// invalidates without sweeping. NUL separates the fields; caller keys
// are URL-ish strings that never contain it.
func versionedKey(v uint64, key string) string {
	const hex = "0123456789abcdef"
	var b [16]byte
	i := len(b)
	for {
		i--
		b[i] = hex[v&0xf]
		v >>= 4
		if v == 0 {
			break
		}
	}
	return string(b[i:]) + "\x00" + key
}

// ErrPanic is handed to collapsed waiters when the leading compute
// panicked (the panic itself propagates on the leader's goroutine).
// It marks a server-side failure, not a request problem.
var ErrPanic = errors.New("qcache: compute panicked")
