package qcache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func mustDo(t *testing.T, c *Cache, key string, val interface{}) Outcome {
	t.Helper()
	got, outcome, err := c.Do(key, func() (interface{}, error) { return val, nil })
	if err != nil {
		t.Fatalf("Do(%q): %v", key, err)
	}
	if got != val && outcome == Miss {
		t.Fatalf("Do(%q) = %v, want %v", key, got, val)
	}
	return outcome
}

func TestHitMiss(t *testing.T) {
	c := New(Options{})
	if out := mustDo(t, c, "a", 1); out != Miss {
		t.Fatalf("first Do = %v, want Miss", out)
	}
	if out := mustDo(t, c, "a", 2); out != Hit {
		t.Fatalf("second Do = %v, want Hit", out)
	}
	// A hit returns the cached value, not the new compute's.
	got, _, _ := c.Do("a", func() (interface{}, error) { return 99, nil })
	if got != 1 {
		t.Fatalf("cached value = %v, want 1", got)
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if r := st.HitRate(); r < 0.66 || r > 0.67 {
		t.Fatalf("hit rate = %v, want 2/3", r)
	}
}

func TestVersionBumpInvalidates(t *testing.T) {
	c := New(Options{})
	mustDo(t, c, "k", "v0")
	if got := c.Bump(); got != 1 {
		t.Fatalf("Bump = %d, want 1", got)
	}
	if out := mustDo(t, c, "k", "v1"); out != Miss {
		t.Fatalf("post-bump Do = %v, want Miss", out)
	}
	got, _, _ := c.Do("k", func() (interface{}, error) { return "nope", nil })
	if got != "v1" {
		t.Fatalf("post-bump cached value = %v, want v1", got)
	}
}

// TestCarryOver pins the selective-invalidation primitive behind
// maintained analytics: entries the keep predicate approves survive a
// version bump under the new version with their old values, everything
// else stays invalidated.
func TestCarryOver(t *testing.T) {
	c := New(Options{})
	mustDo(t, c, "keep-me", "old")
	mustDo(t, c, "drop-me", "stale")
	from := c.Version()
	to := c.Bump()

	if n := c.CarryOver(from, to, func(key string) bool { return key == "keep-me" }); n != 1 {
		t.Fatalf("CarryOver = %d, want 1", n)
	}
	// The kept key hits at the new version with the carried value,
	// reported as Carried so the serve layer can label it.
	got, outcome, _ := c.Do("keep-me", func() (interface{}, error) { return "recomputed", nil })
	if outcome != Carried || got != "old" {
		t.Fatalf("kept key: outcome %v value %v, want Carried old", outcome, got)
	}
	st := c.Stats()
	if st.CarriedIn != 1 || st.CarriedHits != 1 {
		t.Fatalf("carried counters = %d/%d, want 1/1", st.CarriedIn, st.CarriedHits)
	}
	if st.HitRate() < 0.3 {
		t.Fatalf("carried hit not counted in hit rate: %v", st.HitRate())
	}
	// The dropped key recomputes.
	if out := mustDo(t, c, "drop-me", "fresh"); out != Miss {
		t.Fatalf("dropped key outcome = %v, want Miss", out)
	}
	// Same-version carry-over is a no-op.
	if n := c.CarryOver(to, to, func(string) bool { return true }); n != 0 {
		t.Fatalf("self carry-over = %d, want 0", n)
	}
}

func TestLRUEviction(t *testing.T) {
	// One shard, capacity 2: inserting a third key evicts the coldest.
	c := New(Options{Capacity: 2, Shards: 1})
	mustDo(t, c, "a", 1)
	mustDo(t, c, "b", 2)
	mustDo(t, c, "a", 0) // touch a → b is now coldest
	mustDo(t, c, "c", 3) // evicts b
	if out := mustDo(t, c, "a", 0); out != Hit {
		t.Fatalf("a = %v, want Hit", out)
	}
	if out := mustDo(t, c, "b", 9); out != Miss {
		t.Fatalf("b = %v, want Miss after eviction", out)
	}
	if st := c.Stats(); st.Evictions < 1 {
		t.Fatalf("evictions = %d, want ≥ 1", st.Evictions)
	}
}

func TestErrorsNotCached(t *testing.T) {
	c := New(Options{})
	boom := errors.New("boom")
	_, _, err := c.Do("k", func() (interface{}, error) { return nil, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if out := mustDo(t, c, "k", "ok"); out != Miss {
		t.Fatalf("Do after error = %v, want Miss (errors must not cache)", out)
	}
	if out := mustDo(t, c, "k", "ok"); out != Hit {
		t.Fatalf("Do after recovery = %v, want Hit", out)
	}
}

// TestSingleflightCollapses parks N concurrent Do calls for one key on
// a gate and asserts exactly one compute ran; everyone shares its
// value and the others report Collapsed.
func TestSingleflightCollapses(t *testing.T) {
	c := New(Options{})
	const n = 16
	var computes atomic.Int64
	started := make(chan struct{}) // leader entered compute
	release := make(chan struct{}) // let the leader finish
	waiting := make(chan struct{}, n)

	leaderDone := make(chan error, 1)
	go func() {
		val, outcome, err := c.Do("hot", func() (interface{}, error) {
			computes.Add(1)
			close(started)
			<-release
			return "answer", nil
		})
		if outcome != Miss || val != "answer" {
			leaderDone <- fmt.Errorf("leader: outcome %v val %v", outcome, val)
			return
		}
		leaderDone <- err
	}()
	<-started

	var wg sync.WaitGroup
	results := make([]Outcome, n)
	vals := make([]interface{}, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			waiting <- struct{}{}
			val, outcome, err := c.Do("hot", func() (interface{}, error) {
				computes.Add(1)
				return "wrong", nil
			})
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
			}
			results[i], vals[i] = outcome, val
		}(i)
	}
	for i := 0; i < n; i++ {
		<-waiting
	}
	close(release)
	wg.Wait()
	if err := <-leaderDone; err != nil {
		t.Fatal(err)
	}

	if got := computes.Load(); got != 1 {
		t.Fatalf("computes = %d, want exactly 1", got)
	}
	for i := range results {
		if vals[i] != "answer" {
			t.Fatalf("waiter %d got %v, want leader's answer", i, vals[i])
		}
		if results[i] != Collapsed && results[i] != Hit {
			t.Fatalf("waiter %d outcome = %v, want Collapsed or Hit", i, results[i])
		}
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits+st.Collapsed != n {
		t.Fatalf("stats = %+v, want 1 miss and %d hit+collapsed", st, n)
	}
}

func TestComputePanicReleasesWaiters(t *testing.T) {
	c := New(Options{})
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic did not propagate")
			}
		}()
		c.Do("k", func() (interface{}, error) { panic("kaboom") })
	}()
	// The flight slot must be clear: a fresh Do runs compute again.
	if out := mustDo(t, c, "k", "fine"); out != Miss {
		t.Fatalf("Do after panic = %v, want Miss", out)
	}
}

func TestShardedConcurrentUse(t *testing.T) {
	c := New(Options{Capacity: 64, Shards: 4})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", i%32)
				val, _, err := c.Do(key, func() (interface{}, error) { return i % 32, nil })
				if err != nil {
					t.Errorf("Do: %v", err)
					return
				}
				if val.(int) != i%32 {
					t.Errorf("Do(%s) = %v, want %d", key, val, i%32)
					return
				}
				if i%50 == 0 && w == 0 {
					c.Bump()
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestOutcomeString(t *testing.T) {
	for out, want := range map[Outcome]string{Miss: "miss", Hit: "hit", Collapsed: "collapsed", Carried: "carried"} {
		if out.String() != want {
			t.Fatalf("%d.String() = %q, want %q", out, out.String(), want)
		}
	}
}

// TestDoAtPinsRevision asserts a computation keyed at an old revision
// can never be read back after a Bump — the property that stops a
// compute racing a data swap from serving stale results forever.
func TestDoAtPinsRevision(t *testing.T) {
	c := New(Options{})
	rev := c.Version()
	newRev := c.Bump() // the swap lands while the old compute is conceptually in flight
	if _, out, _ := c.DoAt(rev, "k", func() (interface{}, error) { return "stale", nil }); out != Miss {
		t.Fatalf("DoAt(old) = %v, want Miss", out)
	}
	// A lookup at the new revision must not see the old result.
	val, out, _ := c.DoAt(newRev, "k", func() (interface{}, error) { return "fresh", nil })
	if out != Miss || val != "fresh" {
		t.Fatalf("DoAt(new) = %v %v, want Miss fresh", out, val)
	}
	// The old revision's entry is still readable at the old revision
	// (in-flight requests of the old generation share it) …
	if val, out, _ := c.DoAt(rev, "k", func() (interface{}, error) { return nil, nil }); out != Hit || val != "stale" {
		t.Fatalf("DoAt(old) again = %v %v, want Hit stale", out, val)
	}
	// … and Do (current revision) serves the fresh one.
	if val, out, _ := c.Do("k", func() (interface{}, error) { return nil, nil }); out != Hit || val != "fresh" {
		t.Fatalf("Do = %v %v, want Hit fresh", out, val)
	}
}
