package reachindex

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/egraph"
	"repro/internal/gen"
)

func tn(v, s int32) egraph.TemporalNode { return egraph.TemporalNode{Node: v, Stamp: s} }

func TestIndexFigure1(t *testing.T) {
	g := egraph.Figure1Graph()
	idx, err := Build(g, egraph.CausalAllPairs)
	if err != nil {
		t.Fatal(err)
	}
	if !idx.Reaches(tn(0, 0), tn(2, 2)) {
		t.Fatal("(1,t1) should reach (3,t3)")
	}
	if idx.Reaches(tn(2, 2), tn(0, 0)) {
		t.Fatal("(3,t3) must not reach (1,t1)")
	}
	if !idx.Reaches(tn(0, 0), tn(0, 0)) {
		t.Fatal("self-reachability missing")
	}
	if idx.Reaches(tn(2, 0), tn(2, 2)) || idx.Reaches(tn(0, 0), tn(2, 0)) {
		t.Fatal("inactive temporal nodes must be unreachable")
	}
	if idx.Chains() < 1 || idx.Chains() > 6 {
		t.Fatalf("chains = %d", idx.Chains())
	}
}

func TestIndexRejectsCycles(t *testing.T) {
	b := egraph.NewBuilder(true)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 0, 1)
	if _, err := Build(b.Build(), egraph.CausalAllPairs); err != ErrCyclic {
		t.Fatalf("err = %v, want ErrCyclic", err)
	}
}

// Property: the index answers exactly like the transitive closure on
// random temporal DAGs, in both causal modes.
func TestIndexMatchesClosure(t *testing.T) {
	f := func(seed int64, consecutive bool) bool {
		rng := rand.New(rand.NewSource(seed))
		b := egraph.NewBuilder(true)
		n := 2 + rng.Intn(8)
		stamps := 1 + rng.Intn(4)
		for e := 0; e < rng.Intn(3*n); e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			if u > v {
				u, v = v, u // DAG snapshots
			}
			b.AddEdge(int32(u), int32(v), int64(1+rng.Intn(stamps)))
		}
		b.AddEdge(0, 1, 1)
		g := b.Build()
		mode := egraph.CausalAllPairs
		if consecutive {
			mode = egraph.CausalConsecutive
		}
		idx, err := Build(g, mode)
		if err != nil {
			return false
		}
		cl := core.TransitiveClosure(g, mode)
		u := g.Unfold(mode)
		for _, a := range u.Order {
			for _, c := range u.Order {
				if idx.Reaches(a, c) != cl.Reaches(a, c) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// The citation generator produces temporal DAGs... not necessarily: an
// author pair can cite both ways across years within one stamp? Edges
// point citer→cited within one year; two authors citing each other in
// the same year is possible, creating a 2-cycle. Build tolerantly.
func TestIndexOnCitationNetwork(t *testing.T) {
	g, _ := gen.Citation(gen.CitationConfig{
		Authors: 80, Stamps: 6, PubProb: 0.4, CitesPerPaper: 2, Seed: 3,
	})
	idx, err := Build(g, egraph.CausalAllPairs)
	if err == ErrCyclic {
		t.Skip("generated network has a same-year citation cycle")
	}
	if err != nil {
		t.Fatal(err)
	}
	// Spot-check 200 random pairs against BFS.
	rng := rand.New(rand.NewSource(1))
	u := g.Unfold(egraph.CausalAllPairs)
	for q := 0; q < 200; q++ {
		a := u.Order[rng.Intn(len(u.Order))]
		c := u.Order[rng.Intn(len(u.Order))]
		want, err := core.Reachable(g, a, c, egraph.CausalAllPairs)
		if err != nil {
			t.Fatal(err)
		}
		if idx.Reaches(a, c) != want {
			t.Fatalf("Reaches(%v,%v) = %v, want %v", a, c, idx.Reaches(a, c), want)
		}
	}
}
