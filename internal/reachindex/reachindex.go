// Package reachindex builds a constant-query-time reachability index
// over the Theorem 1 unfolding of a temporal DAG (every snapshot
// acyclic — Lemma 1 territory, which includes citation networks by
// construction).
//
// The index is a chain-cover (Jagadish-style): the unfolded DAG's nodes
// are partitioned into chains (paths), and every node stores, per chain,
// the earliest position on that chain it can reach. A query
// Reaches(a, b) then reduces to one array lookup and one comparison:
// b is reachable from a iff a's reach-frontier on b's chain is at or
// before b's position. Preprocessing costs O(C·(|V|+|E|)) for C chains;
// queries cost O(1) words — far cheaper than a BFS per query when many
// queries hit the same graph (the Sec. V mining workloads).
package reachindex

import (
	"errors"
	"math"

	"repro/internal/core"
	"repro/internal/egraph"
)

// Index answers temporal reachability queries in O(1) after
// preprocessing.
type Index struct {
	u        *egraph.Unfolding
	chainOf  []int32 // node -> chain id
	posOf    []int32 // node -> position along its chain
	chains   int
	frontier [][]int32 // frontier[node][chain] = min reachable position, or maxPos
}

// ErrCyclic mirrors core.ErrCyclic: the index requires acyclic snapshots.
var ErrCyclic = errors.New("reachindex: evolving graph has a cyclic snapshot")

// Build constructs the index. It fails with ErrCyclic when some snapshot
// has a directed cycle.
func Build(g *egraph.IntEvolvingGraph, mode egraph.CausalMode) (*Index, error) {
	order, err := core.TopologicalOrder(g, mode)
	if err != nil {
		return nil, ErrCyclic
	}
	u := g.Unfold(mode)
	n := u.Graph.NumNodes()
	idx := &Index{
		u:       u,
		chainOf: make([]int32, n),
		posOf:   make([]int32, n),
	}

	// Greedy chain decomposition along the topological order: append
	// each node to a chain whose tail has an edge to it, else start a
	// new chain.
	topoIDs := make([]int32, 0, n)
	for _, tn := range order {
		topoIDs = append(topoIDs, u.IDOf(tn))
	}
	const none = int32(-1)
	chainTail := []int32{} // chain -> last node id
	onChain := make([]int32, n)
	for i := range onChain {
		onChain[i] = none
	}
	// Reverse adjacency for tail matching.
	preds := make([][]int32, n)
	for v := 0; v < n; v++ {
		for _, w := range u.Graph.Neighbors(int32(v)) {
			preds[w] = append(preds[w], int32(v))
		}
	}
	for _, id := range topoIDs {
		assigned := false
		for _, p := range preds[id] {
			c := onChain[p]
			if c != none && chainTail[c] == p {
				onChain[id] = c
				idx.posOf[id] = idx.posOf[p] + 1
				chainTail[c] = id
				assigned = true
				break
			}
		}
		if !assigned {
			c := int32(len(chainTail))
			chainTail = append(chainTail, id)
			onChain[id] = c
			idx.posOf[id] = 0
		}
		idx.chainOf[id] = onChain[id]
	}
	idx.chains = len(chainTail)

	// Reach frontiers by reverse topological sweep:
	// frontier[v][c] = min position on chain c reachable from v.
	idx.frontier = make([][]int32, n)
	flat := make([]int32, n*idx.chains)
	for i := range flat {
		flat[i] = math.MaxInt32
	}
	for v := 0; v < n; v++ {
		idx.frontier[v] = flat[v*idx.chains : (v+1)*idx.chains]
	}
	for i := len(topoIDs) - 1; i >= 0; i-- {
		v := topoIDs[i]
		fv := idx.frontier[v]
		if p := idx.posOf[v]; p < fv[idx.chainOf[v]] {
			fv[idx.chainOf[v]] = p
		}
		for _, w := range u.Graph.Neighbors(v) {
			fw := idx.frontier[w]
			for c := 0; c < idx.chains; c++ {
				if fw[c] < fv[c] {
					fv[c] = fw[c]
				}
			}
		}
	}
	return idx, nil
}

// Chains returns the number of chains in the cover (an index-quality
// metric: queries cost O(1) but memory is |V|·Chains words).
func (x *Index) Chains() int { return x.chains }

// Reaches reports whether a temporal path joins from to to. Inactive
// temporal nodes are unreachable and reach nothing.
func (x *Index) Reaches(from, to egraph.TemporalNode) bool {
	fi := x.u.IDOf(from)
	ti := x.u.IDOf(to)
	if fi < 0 || ti < 0 {
		return false
	}
	return x.frontier[fi][x.chainOf[ti]] <= x.posOf[ti]
}
