package gen

import (
	"testing"

	"repro/internal/core"
	"repro/internal/egraph"
)

func TestRandomDeterministic(t *testing.T) {
	cfg := RandomConfig{Nodes: 50, Stamps: 5, Edges: 200, Directed: true, Seed: 7}
	a := Random(cfg)
	b := Random(cfg)
	if a.StaticEdgeCount() != b.StaticEdgeCount() || a.NumActiveNodes() != b.NumActiveNodes() {
		t.Fatal("same seed produced different graphs")
	}
	c := Random(RandomConfig{Nodes: 50, Stamps: 5, Edges: 200, Directed: true, Seed: 8})
	if a.StaticEdgeCount() == c.StaticEdgeCount() && a.NumActiveNodes() == c.NumActiveNodes() &&
		a.CausalEdgeCount(egraph.CausalAllPairs) == c.CausalEdgeCount(egraph.CausalAllPairs) {
		t.Log("different seeds produced identical summary stats (possible but unlikely)")
	}
}

func TestRandomShape(t *testing.T) {
	g := Random(RandomConfig{Nodes: 100, Stamps: 10, Edges: 500, Directed: true, Seed: 1})
	if g.NumStamps() > 10 || g.NumStamps() < 1 {
		t.Fatalf("stamps = %d", g.NumStamps())
	}
	if g.NumNodes() > 100 {
		t.Fatalf("nodes = %d > 100", g.NumNodes())
	}
	// Duplicates collapse, so ≤ requested.
	if g.StaticEdgeCount() > 500 {
		t.Fatalf("|Ẽ| = %d > 500", g.StaticEdgeCount())
	}
	if g.StaticEdgeCount() < 400 {
		t.Fatalf("|Ẽ| = %d, too many collisions for 100×100×10 space", g.StaticEdgeCount())
	}
}

func TestRandomSeriesPrefixProperty(t *testing.T) {
	counts := []int{100, 200, 400}
	series := RandomSeries(60, 6, counts, true, 3)
	if len(series) != 3 {
		t.Fatalf("series length = %d", len(series))
	}
	// Edge sets grow: every edge of series[k] appears in series[k+1].
	for k := 0; k+1 < len(series); k++ {
		small, big := series[k], series[k+1]
		if small.StaticEdgeCount() > big.StaticEdgeCount() {
			t.Fatalf("series shrank: %d > %d", small.StaticEdgeCount(), big.StaticEdgeCount())
		}
		for ts := 0; ts < small.NumStamps(); ts++ {
			label := small.TimeLabel(ts)
			bs := big.StampOf(label)
			if bs < 0 {
				t.Fatalf("stamp label %d missing from larger graph", label)
			}
			small.VisitEdges(int32(ts), func(u, v int32, _ float64) bool {
				if !big.HasEdge(u, v, int32(bs)) {
					t.Fatalf("edge (%d,%d)@%d missing from larger graph", u, v, label)
				}
				return true
			})
		}
	}
}

func TestRandomSeriesValidation(t *testing.T) {
	if RandomSeries(10, 2, nil, true, 1) != nil {
		t.Fatal("empty counts should give nil")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for decreasing counts")
		}
	}()
	RandomSeries(10, 2, []int{5, 3}, true, 1)
}

func TestGNP(t *testing.T) {
	g := GNP(20, 3, 0.2, false, 5)
	if g.NumStamps() != 3 {
		t.Fatalf("stamps = %d, want 3", g.NumStamps())
	}
	// Expected edges per stamp ≈ p·C(20,2) = 38; allow wide tolerance.
	for ts := 0; ts < 3; ts++ {
		e := g.SnapshotEdgeCount(ts)
		if e < 10 || e > 80 {
			t.Fatalf("snapshot %d has %d edges, outside [10,80]", ts, e)
		}
	}
	gd := GNP(20, 2, 1.0, true, 5)
	if gd.SnapshotEdgeCount(0) != 20*19 {
		t.Fatalf("dense directed GNP edges = %d, want 380", gd.SnapshotEdgeCount(0))
	}
}

func TestGNPValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	GNP(10, 2, 1.5, true, 1)
}

func TestPreferentialAttachment(t *testing.T) {
	g := PreferentialAttachment(200, 8, 2, 9)
	if g.Directed() {
		t.Fatal("PA graph should be undirected")
	}
	if g.NumStamps() < 2 {
		t.Fatalf("stamps = %d, want several", g.NumStamps())
	}
	// Heavy tail: max total degree should well exceed the mean.
	deg := make(map[int32]int)
	for ts := int32(0); ts < int32(g.NumStamps()); ts++ {
		g.VisitEdges(ts, func(u, v int32, _ float64) bool {
			deg[u]++
			deg[v]++
			return true
		})
	}
	maxDeg, sum := 0, 0
	for _, d := range deg {
		sum += d
		if d > maxDeg {
			maxDeg = d
		}
	}
	mean := float64(sum) / float64(len(deg))
	if float64(maxDeg) < 3*mean {
		t.Fatalf("max degree %d not heavy-tailed vs mean %.1f", maxDeg, mean)
	}
}

func TestStreamSortedByTime(t *testing.T) {
	es := Stream(40, 6, 300, 11)
	if len(es) != 300 {
		t.Fatalf("len = %d, want 300", len(es))
	}
	for i := 1; i < len(es); i++ {
		if es[i].T < es[i-1].T {
			t.Fatal("stream not sorted by time")
		}
	}
	for _, e := range es {
		if e.U == e.V {
			t.Fatal("stream contains self-loop")
		}
		if e.U < 0 || e.U >= 40 || e.V < 0 || e.V >= 40 {
			t.Fatal("node id out of range")
		}
		if e.T < 1 || e.T > 6 {
			t.Fatal("stamp out of range")
		}
	}
}

func TestCitationNetwork(t *testing.T) {
	cfg := DefaultCitationConfig()
	g, firstPub := Citation(cfg)
	if !g.Directed() {
		t.Fatal("citation network must be directed")
	}
	if g.NumStamps() < 2 {
		t.Fatalf("stamps = %d, want several", g.NumStamps())
	}
	if g.StaticEdgeCount() < cfg.Authors {
		t.Fatalf("|Ẽ| = %d, suspiciously small", g.StaticEdgeCount())
	}
	if len(firstPub) != cfg.Authors {
		t.Fatalf("firstPub length = %d", len(firstPub))
	}
	// Citations must point backward or within the same stamp: a cited
	// author's first publication is never later than the citing stamp.
	for ts := int32(0); ts < int32(g.NumStamps()); ts++ {
		g.VisitEdges(ts, func(citer, cited int32, _ float64) bool {
			if firstPub[cited] < 0 {
				t.Fatalf("author %d cited but never published", cited)
			}
			if int64(firstPub[cited])+1 > g.TimeLabel(int(ts)) {
				t.Fatalf("author %d cited at %d before first publication %d",
					cited, g.TimeLabel(int(ts)), firstPub[cited])
			}
			return true
		})
	}
	// Determinism.
	g2, _ := Citation(cfg)
	if g2.StaticEdgeCount() != g.StaticEdgeCount() {
		t.Fatal("citation generator not deterministic")
	}
}

func TestCitationInfluencePropagates(t *testing.T) {
	g, _ := Citation(DefaultCitationConfig())
	// Pick an early active author; their influence set (backward BFS
	// over citations: who cites them transitively) should be non-trivial.
	act := g.ActiveNodes(0)
	a := act.NextSet(0)
	if a < 0 {
		t.Skip("no active author at first stamp")
	}
	root := egraph.TemporalNode{Node: int32(a), Stamp: 0}
	// Edges are citer→cited, so influence flows against edges, forward
	// in time: Forward + ReverseEdges.
	res, err := core.BFS(g, root, core.Options{Direction: core.Forward, ReverseEdges: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumReached() < 2 {
		t.Fatalf("early author influences %d temporal nodes, want ≥ 2", res.NumReached())
	}
}

func TestCitationValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Citation(CitationConfig{Authors: 1, Stamps: 1, PubProb: 0.5, CitesPerPaper: 1})
}

func TestRandomValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Random(RandomConfig{Nodes: 1, Stamps: 1, Edges: 5})
}

func TestPreferentialAttachmentValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PreferentialAttachment(1, 1, 1, 1)
}
