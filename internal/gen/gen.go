// Package gen provides deterministic workload generators for the
// benchmarks, examples and differential tests: the uniform random
// evolving graphs of the paper's Figure 5 experiment, per-snapshot
// Erdős–Rényi graphs, an evolving preferential-attachment model,
// synthetic citation networks (the substitution for the unnamed
// citation data of Sec. V), and raw timed edge streams. All generators
// are pure functions of their seed, so every workload — including the
// engine-comparison sweeps of cmd/egbench — is reproducible
// bit-for-bit.
package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/egraph"
)

// TimedEdge is one time-stamped edge of an edge stream.
type TimedEdge struct {
	U, V int32
	T    int64
	W    float64
}

// RandomConfig parameterises the Figure 5 workload: a directed evolving
// graph over Nodes node ids and Stamps stamps with Edges uniformly random
// static edges (duplicates collapse, so the built graph may hold slightly
// fewer). The paper used Nodes = 1e5, Stamps = 10 and Edges up to ~5e8;
// the benchmarks scale Edges down while keeping the same generator.
type RandomConfig struct {
	Nodes    int
	Stamps   int
	Edges    int
	Directed bool
	Seed     int64
}

// Random generates one random evolving graph.
func Random(cfg RandomConfig) *egraph.IntEvolvingGraph {
	validate(cfg.Nodes, cfg.Stamps, cfg.Edges)
	b := egraph.NewBuilder(cfg.Directed)
	rng := rand.New(rand.NewSource(cfg.Seed))
	for i := 0; i < cfg.Edges; i++ {
		e := randomEdge(rng, cfg.Nodes, cfg.Stamps)
		b.AddEdge(e.U, e.V, e.T)
	}
	return b.Build()
}

// RandomSeries generates the Figure 5 sequence: graphs whose edge sets
// grow by prefix — the k-th graph contains exactly the first
// edgeCounts[k] random edges, mirroring the paper's "we consecutively
// add new random static edges" protocol. edgeCounts must be
// non-decreasing.
func RandomSeries(nodes, stamps int, edgeCounts []int, directed bool, seed int64) []*egraph.IntEvolvingGraph {
	if len(edgeCounts) == 0 {
		return nil
	}
	maxE := edgeCounts[len(edgeCounts)-1]
	for i := 1; i < len(edgeCounts); i++ {
		if edgeCounts[i] < edgeCounts[i-1] {
			panic("gen: RandomSeries edge counts must be non-decreasing")
		}
	}
	validate(nodes, stamps, maxE)
	rng := rand.New(rand.NewSource(seed))
	edges := make([]TimedEdge, maxE)
	for i := range edges {
		edges[i] = randomEdge(rng, nodes, stamps)
	}
	out := make([]*egraph.IntEvolvingGraph, len(edgeCounts))
	for k, cnt := range edgeCounts {
		b := egraph.NewBuilder(directed)
		for _, e := range edges[:cnt] {
			b.AddEdge(e.U, e.V, e.T)
		}
		out[k] = b.Build()
	}
	return out
}

// GNP generates an evolving graph whose every snapshot is an independent
// Erdős–Rényi G(n, p) graph. Intended for small n (cost is
// O(Stamps·n²)).
func GNP(n, stamps int, p float64, directed bool, seed int64) *egraph.IntEvolvingGraph {
	if n < 1 || stamps < 1 || p < 0 || p > 1 {
		panic(fmt.Sprintf("gen: bad GNP parameters n=%d stamps=%d p=%g", n, stamps, p))
	}
	rng := rand.New(rand.NewSource(seed))
	b := egraph.NewBuilder(directed)
	for t := 1; t <= stamps; t++ {
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u == v {
					continue
				}
				if !directed && v < u {
					continue
				}
				if rng.Float64() < p {
					b.AddEdge(int32(u), int32(v), int64(t))
				}
			}
		}
	}
	return b.Build()
}

// PreferentialAttachment generates an evolving graph in which nodes
// arrive spread uniformly over stamps and each newcomer attaches m
// undirected edges to previously arrived nodes chosen with probability
// proportional to (degree + 1). This produces the heavy-tailed degree
// profile typical of complex networks the paper's introduction cites.
func PreferentialAttachment(n, stamps, m int, seed int64) *egraph.IntEvolvingGraph {
	if n < 2 || stamps < 1 || m < 1 {
		panic(fmt.Sprintf("gen: bad PA parameters n=%d stamps=%d m=%d", n, stamps, m))
	}
	rng := rand.New(rand.NewSource(seed))
	b := egraph.NewBuilder(false)
	deg := make([]int, n)
	// Repeated-node list for degree-proportional sampling.
	pool := make([]int32, 0, 2*n*m)
	pool = append(pool, 0) // seed node
	for v := 1; v < n; v++ {
		t := int64(1 + v*stamps/n)
		attach := m
		if attach > v {
			attach = v
		}
		for e := 0; e < attach; e++ {
			var target int32
			// (deg+1)-proportional: mix pool draws with uniform draws.
			if len(pool) > 0 && rng.Intn(2) == 0 {
				target = pool[rng.Intn(len(pool))]
			} else {
				target = int32(rng.Intn(v))
			}
			if int(target) == v {
				continue
			}
			b.AddEdge(int32(v), target, t)
			deg[v]++
			deg[target]++
			pool = append(pool, target, int32(v))
		}
	}
	return b.Build()
}

// Stream generates a deterministic sequence of random timed edges with
// non-decreasing stamps, the input shape of internal/stream.
func Stream(nodes, stamps, edges int, seed int64) []TimedEdge {
	validate(nodes, stamps, edges)
	rng := rand.New(rand.NewSource(seed))
	out := make([]TimedEdge, edges)
	for i := range out {
		out[i] = randomEdge(rng, nodes, stamps)
	}
	// Non-decreasing time order.
	sortEdgesByTime(out)
	return out
}

func randomEdge(rng *rand.Rand, nodes, stamps int) TimedEdge {
	u := int32(rng.Intn(nodes))
	v := int32(rng.Intn(nodes))
	for v == u {
		v = int32(rng.Intn(nodes))
	}
	return TimedEdge{U: u, V: v, T: int64(1 + rng.Intn(stamps)), W: 1}
}

func validate(nodes, stamps, edges int) {
	if nodes < 2 || stamps < 1 || edges < 0 {
		panic(fmt.Sprintf("gen: bad parameters nodes=%d stamps=%d edges=%d", nodes, stamps, edges))
	}
}

func sortEdgesByTime(edges []TimedEdge) {
	// Counting sort on the (small) stamp space keeps generation O(E).
	var maxT int64
	for _, e := range edges {
		if e.T > maxT {
			maxT = e.T
		}
	}
	buckets := make([][]TimedEdge, maxT+1)
	for _, e := range edges {
		buckets[e.T] = append(buckets[e.T], e)
	}
	i := 0
	for _, bkt := range buckets {
		for _, e := range bkt {
			edges[i] = e
			i++
		}
	}
}
