package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/egraph"
)

// CitationConfig parameterises the synthetic citation network that stands
// in for the (unnamed) citation data of Sec. V. The model: Authors enter
// the field spread uniformly over Stamps publication years; in each year
// every already-active author publishes with probability PubProb, and a
// publication cites CitesPerPaper earlier-publishing authors chosen with
// preferential attachment toward frequently cited authors. Each citation
// of author j by author i in year t is the directed edge i→j at stamp t —
// exactly the paper's construction ("E[t] ∋ (i,j) representing a citation
// of author j by author i in a publication at time t").
type CitationConfig struct {
	Authors       int
	Stamps        int
	PubProb       float64
	CitesPerPaper int
	Seed          int64
}

// DefaultCitationConfig returns a mid-sized network suitable for the
// examples and tests.
func DefaultCitationConfig() CitationConfig {
	return CitationConfig{Authors: 300, Stamps: 12, PubProb: 0.5, CitesPerPaper: 3, Seed: 42}
}

// Citation generates the synthetic citation network. The second return
// value maps each author to the stamp at which they first published
// (-1 if they never did).
func Citation(cfg CitationConfig) (*egraph.IntEvolvingGraph, []int32) {
	if cfg.Authors < 2 || cfg.Stamps < 1 || cfg.CitesPerPaper < 1 ||
		cfg.PubProb <= 0 || cfg.PubProb > 1 {
		panic(fmt.Sprintf("gen: bad citation config %+v", cfg))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := egraph.NewBuilder(true)

	entry := make([]int, cfg.Authors) // stamp at which the author enters
	for a := range entry {
		entry[a] = a * cfg.Stamps / cfg.Authors
	}
	firstPub := make([]int32, cfg.Authors)
	for i := range firstPub {
		firstPub[i] = -1
	}
	citedPool := []int32{} // repeated-author list for preferential citing
	var published []int32  // authors with ≥1 publication so far
	isPublished := make([]bool, cfg.Authors)

	for t := 0; t < cfg.Stamps; t++ {
		var newPubs []int32
		for a := 0; a < cfg.Authors; a++ {
			if entry[a] > t {
				continue
			}
			if rng.Float64() >= cfg.PubProb {
				continue
			}
			if len(published) == 0 {
				// The field's first paper cites nobody; record the debut.
				newPubs = append(newPubs, int32(a))
				if firstPub[a] < 0 {
					firstPub[a] = int32(t)
				}
				continue
			}
			cites := cfg.CitesPerPaper
			if cites > len(published) {
				cites = len(published)
			}
			for c := 0; c < cites; c++ {
				var target int32
				if len(citedPool) > 0 && rng.Intn(2) == 0 {
					target = citedPool[rng.Intn(len(citedPool))]
				} else {
					target = published[rng.Intn(len(published))]
				}
				if int(target) == a {
					continue
				}
				b.AddEdge(int32(a), target, int64(t+1))
				citedPool = append(citedPool, target)
			}
			newPubs = append(newPubs, int32(a))
			if firstPub[a] < 0 {
				firstPub[a] = int32(t)
			}
		}
		for _, a := range newPubs {
			if !isPublished[a] {
				isPublished[a] = true
				published = append(published, a)
			}
		}
	}
	return b.Build(), firstPub
}
