// Package fault is the seeded, scenario-driven fault-injection
// registry (DESIGN.md §17). It exists so every failure-handling path
// in the service — WAL write errors, checkpoint fsync failures, wire
// connections dying mid-frame, slow computations — can be provoked
// deterministically from a test, the chaos harness (egload -chaos) or
// an operator flag (egserve -fault), instead of waiting for the disk
// to actually fill up.
//
// The model is a flat rule list over named injection sites. Code on a
// hot path declares a site by calling Injector.Fire(site) at the
// moment the fault would naturally occur (just before an fsync, after
// reading a frame header, ...). Fire on a nil *Injector is a single
// pointer comparison, so production binaries pay one predictable
// branch per site and nothing else; only a configured injector
// evaluates rules.
//
// Scenarios are text so they can travel through flags, CI matrices
// and fuzzers:
//
//	# one rule per line; '#' comments and blank lines are ignored
//	seed 7
//	wal.fsync error=disk-full after=20
//	ckpt.fsync error=io times=1
//	wire.read drop p=0.02
//	query.compute delay=5ms p=0.5
//
// A rule names a site and combines directives: an error class to
// return, a delay to sleep, a probability, and hit-count gates
// (after=, every=, times=). All randomness comes from the scenario's
// seed, so a scenario replays identically — the property the chaos
// soak's fault-free-oracle comparison depends on.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Site names one injection point threaded through the codebase. The
// inventory below is the complete set; Parse rejects unknown sites so
// a typo in a scenario fails loudly instead of silently injecting
// nothing.
type Site string

const (
	// WALAppend fires inside ingest WAL record writes, before bytes
	// reach the buffered writer. An error here poisons the WAL exactly
	// like a real short write.
	WALAppend Site = "wal.append"
	// WALFsync fires inside the WAL group-commit flush+fsync. An error
	// here is the canonical "disk full" trigger: the sticky WAL error
	// degrades the write path while reads keep serving.
	WALFsync Site = "wal.fsync"
	// CkptWrite fires between checkpoint section writes (the
	// generalisation of the old CheckpointMeta.StallWrite hook).
	CkptWrite Site = "ckpt.write"
	// CkptFsync fires just before the checkpoint temp file's fsync. An
	// error must leave the previous checkpoint generation intact.
	CkptFsync Site = "ckpt.fsync"
	// CkptRename fires between the temp file's fsync and the atomic
	// rename (the old CheckpointMeta.StallRename hook).
	CkptRename Site = "ckpt.rename"
	// WireAccept fires as a new EGWP connection is accepted; a drop
	// closes it before the hello.
	WireAccept Site = "wire.accept"
	// WireRead fires per frame read on a server-side EGWP connection;
	// a drop severs the connection mid-stream (the peer sees a partial
	// frame), a delay models a slow or stalled client.
	WireRead Site = "wire.read"
	// WireWrite fires per frame write on a server-side EGWP
	// connection; a drop severs it with a response half-sent.
	WireWrite Site = "wire.write"
	// QueryCompute fires inside the cached-query compute path, adding
	// artificial latency or failing the computation.
	QueryCompute Site = "query.compute"
)

// Sites is the injection-site inventory, sorted, as scenario text
// names them.
var Sites = []Site{
	CkptFsync, CkptRename, CkptWrite,
	QueryCompute,
	WALAppend, WALFsync,
	WireAccept, WireRead, WireWrite,
}

func knownSite(s Site) bool {
	for _, k := range Sites {
		if s == k {
			return true
		}
	}
	return false
}

// Error classes. Injected errors wrap one of these sentinels, so
// callers can both detect "this was injected" (errors.Is against the
// class) and treat it like the real failure it models.
var (
	// ErrDiskFull models ENOSPC from a write or fsync.
	ErrDiskFull = errors.New("no space left on device (injected)")
	// ErrIO models a generic I/O failure.
	ErrIO = errors.New("input/output error (injected)")
	// ErrDropped models a peer vanishing: the connection (or write
	// path) is gone mid-operation.
	ErrDropped = errors.New("connection dropped (injected)")
	// ErrTimeout models an operation exceeding its deadline.
	ErrTimeout = errors.New("operation timed out (injected)")
)

// classes maps scenario error names to sentinels. Order is fixed for
// deterministic encoding.
var classes = []struct {
	name string
	err  error
}{
	{"disk-full", ErrDiskFull},
	{"io", ErrIO},
	{"dropped", ErrDropped},
	{"timeout", ErrTimeout},
}

func classErr(name string) (error, bool) {
	for _, c := range classes {
		if c.name == name {
			return c.err, true
		}
	}
	return nil, false
}

// IsFault reports whether err is (or wraps) an injected fault of any
// class. Layers that degrade gracefully use it to map an injected
// failure onto the same path the real failure would take (a fault is a
// server-side condition, never the client's request being wrong).
func IsFault(err error) bool {
	for _, c := range classes {
		if errors.Is(err, c.err) {
			return true
		}
	}
	return false
}

// Rule is one parsed scenario line: fire at Site, gated by the
// hit-count window and probability, injecting a delay and/or an
// error.
type Rule struct {
	Site Site
	// Err names the error class to inject ("" for delay-only rules).
	Err string
	// Drop injects ErrDropped; sugar for Err="dropped" on connection
	// sites, kept distinct so scenarios read naturally.
	Drop bool
	// Delay is slept before the (possible) error is returned.
	Delay time.Duration
	// P is the per-hit probability in (0,1]; 0 means 1 (always).
	P float64
	// After skips the first N hits of the site.
	After int64
	// Every fires on every Nth eligible hit (0 and 1 mean every hit).
	Every int64
	// Times stops the rule after it has fired N times (0 = unlimited).
	Times int64
}

func (r Rule) err() error {
	if r.Drop {
		return ErrDropped
	}
	if r.Err == "" {
		return nil
	}
	e, _ := classErr(r.Err)
	return e
}

// encode renders the rule in canonical scenario text (directives in a
// fixed order), so Parse∘String round-trips.
func (r Rule) encode() string {
	var b strings.Builder
	b.WriteString(string(r.Site))
	if r.Err != "" {
		fmt.Fprintf(&b, " error=%s", r.Err)
	}
	if r.Drop {
		b.WriteString(" drop")
	}
	if r.Delay > 0 {
		fmt.Fprintf(&b, " delay=%s", r.Delay)
	}
	if r.P > 0 && r.P < 1 {
		fmt.Fprintf(&b, " p=%s", strconv.FormatFloat(r.P, 'g', -1, 64))
	}
	if r.After > 0 {
		fmt.Fprintf(&b, " after=%d", r.After)
	}
	if r.Every > 1 {
		fmt.Fprintf(&b, " every=%d", r.Every)
	}
	if r.Times > 0 {
		fmt.Fprintf(&b, " times=%d", r.Times)
	}
	return b.String()
}

// Scenario is a parsed fault scenario: a seed and a rule list.
type Scenario struct {
	Seed  int64
	Rules []Rule
}

// String renders the scenario in canonical text form; Parse(String())
// yields an equal Scenario (the fuzz target's round-trip invariant).
func (sc *Scenario) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed %d\n", sc.Seed)
	for _, r := range sc.Rules {
		b.WriteString(r.encode())
		b.WriteByte('\n')
	}
	return b.String()
}

// maxScenario bounds accepted scenario text; anything larger is a
// decoding error, never an allocation amplifier.
const maxScenario = 1 << 16

// maxRules bounds the rule list.
const maxRules = 64

// Parse decodes scenario text. It is strict — unknown sites,
// directives, error classes or malformed values are errors carrying
// the offending line — and total: no input panics (the fuzz target
// enforces this).
func Parse(text string) (*Scenario, error) {
	if len(text) > maxScenario {
		return nil, fmt.Errorf("fault: scenario exceeds %d bytes", maxScenario)
	}
	sc := &Scenario{Seed: 1}
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if fields[0] == "seed" {
			if len(fields) != 2 {
				return nil, fmt.Errorf("fault: line %d: want 'seed N'", ln+1)
			}
			n, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: line %d: bad seed %q", ln+1, fields[1])
			}
			sc.Seed = n
			continue
		}
		r, err := parseRule(fields)
		if err != nil {
			return nil, fmt.Errorf("fault: line %d: %w", ln+1, err)
		}
		sc.Rules = append(sc.Rules, r)
		if len(sc.Rules) > maxRules {
			return nil, fmt.Errorf("fault: more than %d rules", maxRules)
		}
	}
	return sc, nil
}

func parseRule(fields []string) (Rule, error) {
	r := Rule{Site: Site(fields[0])}
	if !knownSite(r.Site) {
		return r, fmt.Errorf("unknown site %q (known: %s)", fields[0], siteList())
	}
	for _, f := range fields[1:] {
		if f == "drop" {
			r.Drop = true
			continue
		}
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			return r, fmt.Errorf("bad directive %q (want key=value or drop)", f)
		}
		switch k {
		case "error":
			if _, ok := classErr(v); !ok {
				return r, fmt.Errorf("unknown error class %q (known: %s)", v, classList())
			}
			r.Err = v
		case "delay", "stall":
			d, err := time.ParseDuration(v)
			if err != nil || d < 0 {
				return r, fmt.Errorf("bad duration %q", v)
			}
			r.Delay = d
		case "p":
			p, err := strconv.ParseFloat(v, 64)
			if err != nil || p <= 0 || p > 1 {
				return r, fmt.Errorf("bad probability %q (want 0 < p <= 1)", v)
			}
			if p == 1 {
				p = 0 // normalise: 0 and 1 both mean "always"
			}
			r.P = p
		case "after", "every", "times":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil || n < 0 {
				return r, fmt.Errorf("bad count %q", v)
			}
			switch k {
			case "after":
				r.After = n
			case "every":
				if n == 1 {
					n = 0 // normalise: 0 and 1 both mean "every hit"
				}
				r.Every = n
			case "times":
				r.Times = n
			}
		default:
			return r, fmt.Errorf("unknown directive %q", k)
		}
	}
	if !r.Drop && r.Err == "" && r.Delay == 0 {
		return r, fmt.Errorf("rule injects nothing: add error=, delay= or drop")
	}
	if r.Drop && r.Err != "" {
		return r, fmt.Errorf("drop and error=%s conflict", r.Err)
	}
	return r, nil
}

func siteList() string {
	names := make([]string, len(Sites))
	for i, s := range Sites {
		names[i] = string(s)
	}
	return strings.Join(names, ", ")
}

func classList() string {
	names := make([]string, len(classes))
	for i, c := range classes {
		names[i] = c.name
	}
	return strings.Join(names, ", ")
}

// ruleState is a Rule plus its per-injector counters.
type ruleState struct {
	Rule
	hits  int64 // Fire calls that reached this rule
	fired int64 // times it actually injected
}

// Injector evaluates a Scenario at runtime. A nil *Injector is valid
// and injects nothing — hot paths call Fire unconditionally. All
// methods are safe for concurrent use; the seeded RNG is serialised
// under the mutex so a scenario's probabilistic decisions replay in
// hit order.
type Injector struct {
	mu    sync.Mutex
	rng   *rand.Rand
	rules map[Site][]*ruleState
	sleep func(time.Duration) // test seam; time.Sleep when nil
}

// New builds an Injector from a Scenario. A nil scenario yields a nil
// injector (inject nothing), so New(ParseOrNil(flag)) composes.
func New(sc *Scenario) *Injector {
	if sc == nil || len(sc.Rules) == 0 {
		return nil
	}
	in := &Injector{
		rng:   rand.New(rand.NewSource(sc.Seed)),
		rules: make(map[Site][]*ruleState),
	}
	for _, r := range sc.Rules {
		in.rules[r.Site] = append(in.rules[r.Site], &ruleState{Rule: r})
	}
	return in
}

// Must parses scenario text and builds an Injector, panicking on a
// decode error — for tests and canned scenarios only.
func Must(text string) *Injector {
	sc, err := Parse(text)
	if err != nil {
		panic(err)
	}
	return New(sc)
}

// Fire evaluates site's rules: it sleeps any matched delay, then
// returns the first matched error (wrapped with the site name), or
// nil. Nil-receiver safe — this is the call threaded through hot
// paths.
func (in *Injector) Fire(site Site) error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	var delay time.Duration
	var injected error
	for _, rs := range in.rules[site] {
		rs.hits++
		if rs.hits <= rs.After {
			continue
		}
		if rs.Times > 0 && rs.fired >= rs.Times {
			continue
		}
		if rs.Every > 1 && (rs.hits-rs.After-1)%rs.Every != 0 {
			continue
		}
		if rs.P > 0 && rs.P < 1 && in.rng.Float64() >= rs.P {
			continue
		}
		rs.fired++
		delay += rs.Delay
		if injected == nil {
			if e := rs.err(); e != nil {
				injected = fmt.Errorf("fault %s: %w", site, e)
			}
		}
	}
	sleep := in.sleep
	in.mu.Unlock()
	if delay > 0 {
		if sleep == nil {
			sleep = time.Sleep
		}
		sleep(delay)
	}
	return injected
}

// Count reports how many times site's rules have injected (fired, not
// merely been evaluated) — chaos reports surface these so a scenario
// that silently never triggered is visible.
func (in *Injector) Count(site Site) int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	var n int64
	for _, rs := range in.rules[site] {
		n += rs.fired
	}
	return n
}

// Counts returns every site's fired count, keyed by site name, for
// JSON reports. Sites with no rules are absent.
func (in *Injector) Counts() map[string]int64 {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[string]int64, len(in.rules))
	for site, rules := range in.rules {
		var n int64
		for _, rs := range rules {
			n += rs.fired
		}
		out[string(site)] = n
	}
	return out
}

// Named returns the canned scenario text for one of the chaos-soak
// scenarios, or "" for an unknown name. These are the four scenarios
// the CI chaos matrix drives; Names lists them.
func Named(name string) string {
	switch name {
	case "disk-full":
		// The WAL's fsync starts failing ENOSPC after 20 commits: the
		// write path must degrade to 503s while reads keep serving.
		return "seed 11\nwal.fsync error=disk-full after=20\n"
	case "fsync-stall":
		// Checkpoint persistence stalls mid-write and the fsync then
		// fails once: the previous checkpoint generation must survive
		// and recovery fall back to it plus the WAL tail.
		return "seed 12\nckpt.write delay=150ms\nckpt.fsync error=io times=1\n"
	case "conn-flap":
		// Wire connections drop randomly mid-frame in both directions:
		// subscribers must resume from their cursors and the server
		// must reclaim every per-connection goroutine.
		return "seed 13\nwire.read drop p=0.05\nwire.write drop p=0.05\n"
	case "slow-compute":
		// The query path slows down: deadline-aware admission control
		// and client backoff absorb it without wrong answers.
		return "seed 14\nquery.compute delay=20ms p=0.5\n"
	}
	return ""
}

// Names lists the canned scenarios, sorted.
func Names() []string {
	names := []string{"conn-flap", "disk-full", "fsync-stall", "slow-compute"}
	sort.Strings(names)
	return names
}
