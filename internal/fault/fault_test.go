package fault

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestParseDirectives(t *testing.T) {
	sc, err := Parse(`
# comment
seed 42
wal.fsync error=disk-full after=3 times=2
wire.read drop p=0.25
query.compute delay=5ms every=4
`)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Seed != 42 {
		t.Fatalf("seed = %d, want 42", sc.Seed)
	}
	if len(sc.Rules) != 3 {
		t.Fatalf("rules = %d, want 3", len(sc.Rules))
	}
	r := sc.Rules[0]
	if r.Site != WALFsync || r.Err != "disk-full" || r.After != 3 || r.Times != 2 {
		t.Fatalf("rule 0 = %+v", r)
	}
	if r2 := sc.Rules[1]; !r2.Drop || r2.P != 0.25 {
		t.Fatalf("rule 1 = %+v", r2)
	}
	if r3 := sc.Rules[2]; r3.Delay != 5*time.Millisecond || r3.Every != 4 {
		t.Fatalf("rule 2 = %+v", r3)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		text string
		want string // substring of the error
	}{
		{"bogus.site error=io", "unknown site"},
		{"wal.fsync error=enotdisk", "unknown error class"},
		{"wal.fsync wibble=1", "unknown directive"},
		{"wal.fsync p=2", "bad probability"},
		{"wal.fsync p=0", "bad probability"},
		{"wal.fsync delay=chewy", "bad duration"},
		{"wal.fsync delay=-4ms", "bad duration"},
		{"wal.fsync after=-1", "bad count"},
		{"wal.fsync", "injects nothing"},
		{"wal.fsync after=9", "injects nothing"},
		{"wal.fsync drop error=io", "conflict"},
		{"seed", "want 'seed N'"},
		{"seed eleven", "bad seed"},
		{"wal.fsync error", "bad directive"},
	}
	for _, c := range cases {
		if _, err := Parse(c.text); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) err = %v, want %q", c.text, err, c.want)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	text := "seed 7\nwal.fsync error=disk-full after=2 times=1\nwire.write drop p=0.5\nquery.compute delay=1ms every=3\n"
	sc, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if got := sc.String(); got != text {
		t.Fatalf("canonical form diverged:\n got %q\nwant %q", got, text)
	}
}

func TestFireCountGates(t *testing.T) {
	in := Must("wal.fsync error=io after=2 times=3")
	var errs int
	for i := 0; i < 10; i++ {
		if err := in.Fire(WALFsync); err != nil {
			if !errors.Is(err, ErrIO) {
				t.Fatalf("wrong class: %v", err)
			}
			if i < 2 {
				t.Fatalf("fired during after window at hit %d", i)
			}
			errs++
		}
	}
	if errs != 3 {
		t.Fatalf("fired %d times, want 3 (times=3)", errs)
	}
	if in.Count(WALFsync) != 3 {
		t.Fatalf("Count = %d, want 3", in.Count(WALFsync))
	}
}

func TestFireEvery(t *testing.T) {
	in := Must("wal.append error=io every=3")
	var pattern []bool
	for i := 0; i < 9; i++ {
		pattern = append(pattern, in.Fire(WALAppend) != nil)
	}
	want := []bool{true, false, false, true, false, false, true, false, false}
	for i := range want {
		if pattern[i] != want[i] {
			t.Fatalf("every=3 pattern = %v, want %v", pattern, want)
		}
	}
}

// TestFireDeterministic pins the property the chaos oracle depends
// on: the same scenario text produces the same injection sequence.
func TestFireDeterministic(t *testing.T) {
	run := func() []bool {
		in := Must("seed 99\nwire.read drop p=0.3")
		out := make([]bool, 200)
		for i := range out {
			out[i] = in.Fire(WireRead) != nil
		}
		return out
	}
	a, b := run(), run()
	var fired int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at hit %d", i)
		}
		if a[i] {
			fired++
		}
	}
	// p=0.3 over 200 hits: expect roughly 60, sanity-check it's in a
	// wide band (the sequence itself is pinned by the seed above).
	if fired < 30 || fired > 100 {
		t.Fatalf("p=0.3 fired %d/200", fired)
	}
}

func TestFireDelay(t *testing.T) {
	in := Must("query.compute delay=40ms times=2")
	var slept time.Duration
	in.sleep = func(d time.Duration) { slept += d }
	for i := 0; i < 5; i++ {
		if err := in.Fire(QueryCompute); err != nil {
			t.Fatalf("delay-only rule returned error: %v", err)
		}
	}
	if slept != 80*time.Millisecond {
		t.Fatalf("slept %v, want 80ms", slept)
	}
}

func TestNilInjector(t *testing.T) {
	var in *Injector
	if err := in.Fire(WALFsync); err != nil {
		t.Fatal(err)
	}
	if in.Count(WALFsync) != 0 || in.Counts() != nil {
		t.Fatal("nil injector reported counts")
	}
	if New(nil) != nil {
		t.Fatal("New(nil) != nil")
	}
}

func TestNamedScenariosParse(t *testing.T) {
	for _, name := range Names() {
		text := Named(name)
		if text == "" {
			t.Fatalf("Named(%q) empty", name)
		}
		if _, err := Parse(text); err != nil {
			t.Fatalf("canned scenario %q does not parse: %v", name, err)
		}
	}
	if Named("no-such-scenario") != "" {
		t.Fatal("unknown name returned a scenario")
	}
}

func TestDropClass(t *testing.T) {
	in := Must("wire.accept drop")
	err := in.Fire(WireAccept)
	if !errors.Is(err, ErrDropped) {
		t.Fatalf("drop err = %v", err)
	}
	if !strings.Contains(err.Error(), "wire.accept") {
		t.Fatalf("error does not name the site: %v", err)
	}
}
