package fault

import (
	"reflect"
	"testing"
	"time"
)

// FuzzScenarioParse feeds arbitrary bytes to the scenario decoder.
// The invariants: Parse never panics, and any text it accepts
// round-trips — re-encoding the parsed scenario and parsing that must
// yield an identical Scenario. The committed corpus seeds every
// directive, every canned chaos scenario and the error classes from
// the unit tests; CI explores past it for 30s under -race.
func FuzzScenarioParse(f *testing.F) {
	f.Add("seed 7\nwal.fsync error=disk-full after=2 times=1\n")
	f.Add("wire.read drop p=0.25\nwire.write drop p=0.25")
	f.Add("query.compute delay=5ms every=4\n# trailing comment")
	f.Add("seed -9223372036854775808\nckpt.rename stall=2s")
	f.Add("wal.append error=io\nwal.append error=timeout p=0.001")
	for _, name := range Names() {
		f.Add(Named(name))
	}
	f.Fuzz(func(t *testing.T, text string) {
		sc, err := Parse(text)
		if err != nil {
			return
		}
		again, err := Parse(sc.String())
		if err != nil {
			t.Fatalf("canonical form rejected: %v\ntext: %q\ncanonical: %q", err, text, sc.String())
		}
		if !reflect.DeepEqual(sc, again) {
			t.Fatalf("round-trip diverged:\n first %+v\nsecond %+v", sc, again)
		}
		// An accepted scenario must also build and fire without
		// panicking; cap the work for pathological rule counts.
		if in := New(sc); in != nil {
			in.sleep = func(time.Duration) {}
			for _, s := range Sites {
				in.Fire(s)
			}
		}
	})
}
