package influence

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/egraph"
	"repro/internal/gen"
)

func randomGraph(rng *rand.Rand, directed bool) *egraph.IntEvolvingGraph {
	b := egraph.NewBuilder(directed)
	n := 2 + rng.Intn(8)
	stamps := 1 + rng.Intn(5)
	edges := rng.Intn(3 * n)
	for e := 0; e < edges; e++ {
		b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)), int64(1+rng.Intn(stamps)))
	}
	b.AddEdge(0, 1, 1)
	return b.Build()
}

func TestGreedyFigure1(t *testing.T) {
	g := egraph.Figure1Graph()
	seeds, err := Greedy(g, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Node 0 (paper's 1) influences all three nodes; after that, every
	// remaining candidate is fully covered, so greedy stops at one seed.
	if len(seeds) != 1 {
		t.Fatalf("seeds = %+v, want exactly one", seeds)
	}
	if seeds[0].Node != 0 || seeds[0].Gain != 3 || seeds[0].Covered != 3 {
		t.Fatalf("seeds[0] = %+v, want node 0, gain 3, covered 3", seeds[0])
	}
}

func TestGreedyRejectsBadArgs(t *testing.T) {
	g := egraph.Figure1Graph()
	if _, err := Greedy(g, 0, Options{}); err == nil {
		t.Error("Greedy(k=0) succeeded")
	}
	if _, err := Greedy(g, 1, Options{Candidates: []int32{99}}); err == nil {
		t.Error("Greedy(candidate out of range) succeeded")
	}
	if _, err := Spread(g, []int32{-1}, Options{}); err == nil {
		t.Error("Spread(seed out of range) succeeded")
	}
}

func TestGreedyCandidateRestriction(t *testing.T) {
	g := egraph.Figure1Graph()
	seeds, err := Greedy(g, 2, Options{Candidates: []int32{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	// Node 1 (paper's 2) covers {1,2}; node 2 covers {2} ⊂ {1,2}, so
	// one seed suffices.
	if len(seeds) != 1 || seeds[0].Node != 1 || seeds[0].Covered != 2 {
		t.Fatalf("restricted seeds = %+v", seeds)
	}
}

// Two disjoint chains: greedy needs one seed per chain and coverage
// must be additive.
func TestGreedyDisjointComponents(t *testing.T) {
	b := egraph.NewBuilder(true)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 2)
	b.AddEdge(3, 4, 1)
	g := b.Build()
	seeds, err := Greedy(g, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) != 2 {
		t.Fatalf("seeds = %+v, want two", seeds)
	}
	if seeds[0].Node != 0 || seeds[0].Gain != 3 {
		t.Fatalf("first seed = %+v, want node 0 gain 3", seeds[0])
	}
	if seeds[1].Node != 3 || seeds[1].Gain != 2 || seeds[1].Covered != 5 {
		t.Fatalf("second seed = %+v, want node 3 gain 2 covered 5", seeds[1])
	}
}

// Greedy invariants on random graphs: gains are positive and
// non-increasing, cumulative coverage equals Spread of the seed set,
// and the first seed is a maximiser of single-node influence.
func TestGreedyInvariants(t *testing.T) {
	f := func(seed int64, directed bool) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, directed)
		seeds, err := Greedy(g, 3, Options{})
		if err != nil {
			t.Log(err)
			return false
		}
		if len(seeds) == 0 {
			t.Logf("seed %d: no seeds from a graph with at least one edge", seed)
			return false
		}
		for i, s := range seeds {
			if s.Gain <= 0 {
				t.Logf("seed %d: non-positive gain %+v", seed, s)
				return false
			}
			if i > 0 && s.Gain > seeds[i-1].Gain {
				t.Logf("seed %d: gains increased: %+v", seed, seeds)
				return false
			}
		}
		ids := make([]int32, len(seeds))
		for i, s := range seeds {
			ids[i] = s.Node
		}
		spread, err := Spread(g, ids, Options{})
		if err != nil {
			t.Log(err)
			return false
		}
		if spread != seeds[len(seeds)-1].Covered {
			t.Logf("seed %d: Spread %d ≠ final Covered %d", seed, spread, seeds[len(seeds)-1].Covered)
			return false
		}
		// First seed maximises single-node spread.
		best := 0
		for v := int32(0); v < int32(g.NumNodes()); v++ {
			if len(g.ActiveStamps(v)) == 0 {
				continue
			}
			sp, err := Spread(g, []int32{v}, Options{})
			if err != nil {
				t.Log(err)
				return false
			}
			if sp > best {
				best = sp
			}
		}
		if seeds[0].Gain != best {
			t.Logf("seed %d: first gain %d ≠ best single spread %d", seed, seeds[0].Gain, best)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Greedy coverage must meet the (1 − 1/e) bound against the exhaustive
// optimum for k = 2 on tiny graphs. (Greedy coverage is in fact usually
// optimal at this scale; the bound is the safe check.)
func TestGreedyApproximationBound(t *testing.T) {
	f := func(seed int64, directed bool) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, directed)
		if g.NumNodes() > 7 {
			return true // keep the exhaustive sweep cheap
		}
		seeds, err := Greedy(g, 2, Options{})
		if err != nil {
			t.Log(err)
			return false
		}
		got := seeds[len(seeds)-1].Covered
		opt := 0
		for a := int32(0); a < int32(g.NumNodes()); a++ {
			for b := a; b < int32(g.NumNodes()); b++ {
				sp, err := Spread(g, []int32{a, b}, Options{})
				if err != nil {
					t.Log(err)
					return false
				}
				if sp > opt {
					opt = sp
				}
			}
		}
		if float64(got) < (1-1/2.718281828459045)*float64(opt) {
			t.Logf("seed %d: greedy %d below (1-1/e)·opt (%d)", seed, got, opt)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Differential engine equivalence: seeds and spreads from the
// concurrent CSR reach sweep must be identical to the adjacency-map
// oracle, across causal modes and edge senses.
func assertEnginesAgree(t *testing.T, g *egraph.IntEvolvingGraph, label string) {
	t.Helper()
	for _, mode := range []egraph.CausalMode{egraph.CausalAllPairs, egraph.CausalConsecutive} {
		for _, reverse := range []bool{false, true} {
			csr := Options{Mode: mode, ReverseEdges: reverse, Workers: 3}
			oracle := csr
			oracle.UseAdjacencyMaps = true
			oracle.Workers = 0
			gotSeeds, err1 := Greedy(g, 4, csr)
			wantSeeds, err2 := Greedy(g, 4, oracle)
			if err1 != nil || err2 != nil {
				t.Fatalf("%s mode %v reverse %v: Greedy errors: %v / %v", label, mode, reverse, err1, err2)
			}
			if !reflect.DeepEqual(gotSeeds, wantSeeds) {
				t.Fatalf("%s mode %v reverse %v: seeds diverge:\ncsr  %+v\nmaps %+v",
					label, mode, reverse, gotSeeds, wantSeeds)
			}
			var all []int32
			for v := int32(0); v < int32(g.NumNodes()); v++ {
				all = append(all, v)
			}
			gotSp, err1 := Spread(g, all, csr)
			wantSp, err2 := Spread(g, all, oracle)
			if err1 != nil || err2 != nil {
				t.Fatalf("%s mode %v reverse %v: Spread errors: %v / %v", label, mode, reverse, err1, err2)
			}
			if gotSp != wantSp {
				t.Fatalf("%s mode %v reverse %v: Spread diverges: csr %d, maps %d",
					label, mode, reverse, gotSp, wantSp)
			}
		}
	}
}

func TestEngineEquivalenceRandom(t *testing.T) {
	f := func(seed int64, directed bool) bool {
		rng := rand.New(rand.NewSource(seed))
		assertEnginesAgree(t, randomGraph(rng, directed), "random")
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestEngineEquivalenceGeneratorWorkloads(t *testing.T) {
	cfg := gen.DefaultCitationConfig()
	cfg.Authors = 60
	cfg.Stamps = 6
	cfg.Seed = 23
	cite, _ := gen.Citation(cfg)
	assertEnginesAgree(t, cite, "citation")
	assertEnginesAgree(t, gen.GNP(30, 4, 0.05, true, 9), "gnp")
}

// On a synthetic citation network, influence must flow against citation
// edges: with ReverseEdges the earliest authors dominate the seed set.
func TestGreedyCitationDirection(t *testing.T) {
	cfg := gen.DefaultCitationConfig()
	cfg.Authors = 80
	cfg.Stamps = 6
	cfg.Seed = 17
	g, entry := gen.Citation(cfg)
	seeds, err := Greedy(g, 3, Options{ReverseEdges: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) == 0 {
		t.Fatal("no seeds on citation network")
	}
	// The top influencer should have entered the network early: its
	// entry stamp must be in the first half of the time axis. (Late
	// authors cannot be cited by much that follows.)
	top := seeds[0].Node
	if int(entry[top]) > cfg.Stamps/2 {
		t.Fatalf("top influencer %d entered at stamp %d of %d — influence direction looks wrong",
			top, entry[top], cfg.Stamps)
	}
	// And forward (non-reversed) influence of that node should differ,
	// demonstrating the direction matters.
	fwd, err := Spread(g, []int32{top}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rev, err := Spread(g, []int32{top}, Options{ReverseEdges: true})
	if err != nil {
		t.Fatal(err)
	}
	if fwd == rev {
		t.Logf("forward and reverse spread equal (%d); acceptable but unusual", fwd)
	}
	if rev <= 1 {
		t.Fatalf("reverse spread of top influencer = %d, want > 1", rev)
	}
}
