// Package influence selects maximally influential seed sets on evolving
// graphs, extending the paper's Sec. V citation mining from "who did a
// influence?" (one BFS) to "which K authors jointly influence the most?"
//
// The objective — the number of distinct nodes covered by the union of
// the seeds' influence sets T(a, t) — is monotone and submodular, so
// greedy selection is a (1 − 1/e)-approximation (Nemhauser et al.). The
// implementation uses CELF lazy evaluation (Leskovec et al.): marginal
// gains only shrink as the covered set grows, so a stale heap priority
// is an upper bound and most re-evaluations are skipped.
//
// Influence sets are materialised once as per-source node bitsets via
// the paper's BFS from each node's earliest active stamp. By default the
// searches run on the graph's cached flat CSR view (DESIGN.md §8-9),
// evaluated concurrently across a worker pool with pooled frontier
// scratch (core.ReachSweep); Options.UseAdjacencyMaps instead runs one
// adjacency-map BFS per candidate — the differential-testing oracle,
// producing bit-identical reach sets, seeds and spreads. Either way the
// cost is one O(|E| + |V|) search per candidate and |V|²/8 bytes of
// bitsets — exact and fine at mining scale; use internal/sketch for
// read-only influence *ranking* on graphs too large to materialise.
package influence

import (
	"container/heap"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/ds"
	"repro/internal/egraph"
)

// Options configures seed selection.
type Options struct {
	// Mode selects the causal edge set; reachability (and therefore
	// influence) is identical in both modes.
	Mode egraph.CausalMode
	// ReverseEdges flips static edges, the citation-network convention:
	// an edge i→j records "i cites j", so influence flows j→i (Sec. V).
	ReverseEdges bool
	// Candidates restricts the seed pool to these nodes; nil means
	// every active node is a candidate.
	Candidates []int32
	// UseAdjacencyMaps evaluates reach sets with the adjacency-map
	// oracle (one sequential core.BFS plus a full temporal-node scan per
	// candidate) instead of the concurrent CSR sweep. Kept for
	// differential testing; results are identical.
	UseAdjacencyMaps bool
	// Workers bounds the concurrency of CSR reach-set evaluation;
	// 0 means GOMAXPROCS.
	Workers int
}

// Seed is one greedy selection step.
type Seed struct {
	// Node is the selected seed.
	Node int32
	// Gain is the number of nodes newly covered by this seed.
	Gain int
	// Covered is the cumulative coverage after adding this seed.
	Covered int
}

// Greedy picks up to k seeds maximising joint influence coverage. It
// stops early when every remaining candidate has zero marginal gain.
// Nodes that are never active cannot influence anything and are skipped.
func Greedy(g *egraph.IntEvolvingGraph, k int, opts Options) ([]Seed, error) {
	if k <= 0 {
		return nil, fmt.Errorf("influence: k must be positive, got %d", k)
	}
	candidates := opts.Candidates
	if candidates == nil {
		for v := int32(0); v < int32(g.NumNodes()); v++ {
			if len(g.ActiveStamps(v)) > 0 {
				candidates = append(candidates, v)
			}
		}
	} else {
		for _, v := range candidates {
			if v < 0 || int(v) >= g.NumNodes() {
				return nil, fmt.Errorf("influence: candidate %d out of range (n=%d)", v, g.NumNodes())
			}
		}
	}

	reach, err := reachSets(g, candidates, opts)
	if err != nil {
		return nil, err
	}

	// CELF: heap of (stale gain, node, round-evaluated). A candidate
	// whose priority was computed in the current round is exact and
	// can be taken immediately; otherwise re-evaluate and push back.
	h := &gainHeap{}
	for v, r := range reach {
		heap.Push(h, gainEntry{node: v, gain: r.Count(), round: 0})
	}
	covered := ds.NewBitSet(g.NumNodes())
	var seeds []Seed
	for round := 1; len(seeds) < k && h.Len() > 0; {
		top := heap.Pop(h).(gainEntry)
		if top.round == round {
			if top.gain == 0 {
				break // submodularity: nobody can do better than 0
			}
			covered.Or(reach[top.node])
			seeds = append(seeds, Seed{Node: top.node, Gain: top.gain, Covered: covered.Count()})
			round++
			continue
		}
		// Lazy re-evaluation: AndNotCount counts the uncovered bits of
		// the candidate's reach set without cloning it, so CELF rounds
		// allocate nothing.
		top.gain = reach[top.node].AndNotCount(covered)
		top.round = round
		heap.Push(h, top)
	}
	return seeds, nil
}

// Spread returns the exact joint coverage of an arbitrary seed set: the
// number of distinct nodes influenced by at least one seed. Unlike
// Greedy it never holds per-seed reach sets — every search folds
// straight into one covered bitset — so memory stays O(|V|/8) however
// many seeds are passed.
func Spread(g *egraph.IntEvolvingGraph, seeds []int32, opts Options) (int, error) {
	for _, v := range seeds {
		if v < 0 || int(v) >= g.NumNodes() {
			return 0, fmt.Errorf("influence: seed %d out of range (n=%d)", v, g.NumNodes())
		}
	}
	n := g.NumNodes()
	covered := ds.NewBitSet(n)
	if opts.UseAdjacencyMaps {
		for _, v := range seeds {
			r, err := reachSetReference(g, v, opts)
			if err != nil {
				return 0, err
			}
			if r != nil {
				covered.Or(r)
			}
		}
		return covered.Count(), nil
	}
	roots := make([]egraph.TemporalNode, 0, len(seeds))
	for _, v := range seeds {
		if stamps := g.ActiveStamps(v); len(stamps) > 0 {
			roots = append(roots, egraph.TemporalNode{Node: v, Stamp: stamps[0]})
		}
	}
	var mu sync.Mutex
	err := core.ReachSweep(g, roots, core.Options{Mode: opts.Mode, ReverseEdges: opts.ReverseEdges},
		opts.Workers, func(_ int, reached []int32) {
			mu.Lock()
			for _, id := range reached {
				covered.Set(int(id) % n) // temporal id t·N+v → node v
			}
			mu.Unlock()
		})
	if err != nil {
		return 0, err // unreachable: roots are earliest active stamps
	}
	return covered.Count(), nil
}

// reachSets materialises the per-candidate influence bitsets: candidate
// v covers node w iff some (w, s) is reachable from v's earliest active
// temporal node. Never-active candidates are skipped (no map entry). The
// default engine collapses concurrent CSR reach sweeps; the oracle runs
// one adjacency-map BFS per candidate.
func reachSets(g *egraph.IntEvolvingGraph, candidates []int32, opts Options) (map[int32]*ds.BitSet, error) {
	out := make(map[int32]*ds.BitSet, len(candidates))
	if opts.UseAdjacencyMaps {
		for _, v := range candidates {
			r, err := reachSetReference(g, v, opts)
			if err != nil {
				return nil, err
			}
			if r != nil {
				out[v] = r
			}
		}
		return out, nil
	}
	nodes := make([]int32, 0, len(candidates))
	roots := make([]egraph.TemporalNode, 0, len(candidates))
	for _, v := range candidates {
		stamps := g.ActiveStamps(v)
		if len(stamps) == 0 {
			continue
		}
		nodes = append(nodes, v)
		roots = append(roots, egraph.TemporalNode{Node: v, Stamp: stamps[0]})
	}
	sets := make([]*ds.BitSet, len(roots))
	n := g.NumNodes()
	err := core.ReachSweep(g, roots, core.Options{Mode: opts.Mode, ReverseEdges: opts.ReverseEdges},
		opts.Workers, func(i int, reached []int32) {
			set := ds.NewBitSet(n)
			for _, id := range reached {
				set.Set(int(id) % n) // temporal id t·N+v → node v
			}
			sets[i] = set
		})
	if err != nil {
		return nil, err // unreachable: roots are earliest active stamps
	}
	for i, v := range nodes {
		out[v] = sets[i]
	}
	return out, nil
}

// reachSetReference is the adjacency-map oracle: the paper's BFS from
// v's earliest active stamp, collapsed to a distinct-node bitset by a
// full temporal-node scan. nil (no error) for never-active nodes.
func reachSetReference(g *egraph.IntEvolvingGraph, v int32, opts Options) (*ds.BitSet, error) {
	stamps := g.ActiveStamps(v)
	if len(stamps) == 0 {
		return nil, nil
	}
	root := egraph.TemporalNode{Node: v, Stamp: stamps[0]}
	res, err := core.BFS(g, root, core.Options{
		Mode: opts.Mode, ReverseEdges: opts.ReverseEdges, UseAdjacencyMaps: true,
	})
	if err != nil {
		return nil, fmt.Errorf("influence: BFS from %v: %w", root, err)
	}
	set := ds.NewBitSet(g.NumNodes())
	for w := int32(0); w < int32(g.NumNodes()); w++ {
		for _, s := range g.ActiveStamps(w) {
			if res.Reached(egraph.TemporalNode{Node: w, Stamp: s}) {
				set.Set(int(w))
				break
			}
		}
	}
	return set, nil
}

type gainEntry struct {
	node  int32
	gain  int
	round int
}

// gainHeap is a max-heap on gain, tie-broken by node id for determinism.
type gainHeap []gainEntry

func (h gainHeap) Len() int { return len(h) }
func (h gainHeap) Less(i, j int) bool {
	if h[i].gain != h[j].gain {
		return h[i].gain > h[j].gain
	}
	return h[i].node < h[j].node
}
func (h gainHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *gainHeap) Push(x interface{}) { *h = append(*h, x.(gainEntry)) }
func (h *gainHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
