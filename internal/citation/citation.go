// Package citation implements the Sec. V application of the evolving-graph
// BFS: mining influence structure from citation networks. The network is
// a directed evolving graph with an edge i→j at stamp t for every
// citation of author j by author i in a publication at time t.
//
// Influence flows *against* citation edges and *forward* in time: if i
// cites j, then j has influenced i and everyone who later builds on i.
// The three queries of the paper are:
//
//   - Influence (T(a,t)): all authors transitively influenced by a's
//     work at time t — a forward-in-time BFS over reversed edges.
//   - Influencers (T⁻¹(a,t)): all authors whose work influenced a at
//     time t — a backward-in-time BFS along citation edges.
//   - Community: the authors influenced by the same sources as a —
//     found by taking the leaves of the influencer tree and uniting
//     their forward influence sets ("searching backward in time …
//     and then searching forward", Sec. V).
package citation

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/ds"
	"repro/internal/egraph"
)

// Analyzer runs influence queries over a citation network.
type Analyzer struct {
	g    *egraph.IntEvolvingGraph
	mode egraph.CausalMode
}

// NewAnalyzer wraps a citer→cited evolving graph. The graph must be
// directed.
func NewAnalyzer(g *egraph.IntEvolvingGraph, mode egraph.CausalMode) (*Analyzer, error) {
	if !g.Directed() {
		return nil, fmt.Errorf("citation: network must be directed (edges are citer→cited)")
	}
	return &Analyzer{g: g, mode: mode}, nil
}

// Graph returns the underlying evolving graph.
func (a *Analyzer) Graph() *egraph.IntEvolvingGraph { return a.g }

// InfluenceSet is the result of an influence query: a set of temporal
// nodes together with the distinct authors among them.
type InfluenceSet struct {
	res     *core.Result
	authors *ds.BitSet
	nodes   []egraph.TemporalNode
}

// NumAuthors returns the number of distinct authors in the set
// (including the query root's author).
func (s *InfluenceSet) NumAuthors() int { return s.authors.Count() }

// ContainsAuthor reports whether any temporal node of the author is in
// the set.
func (s *InfluenceSet) ContainsAuthor(author int32) bool {
	return int(author) < s.authors.Len() && s.authors.Get(int(author))
}

// Authors returns the distinct author ids in ascending order.
func (s *InfluenceSet) Authors() []int32 {
	out := make([]int32, 0, s.authors.Count())
	for v := s.authors.NextSet(0); v >= 0; v = s.authors.NextSet(v + 1) {
		out = append(out, int32(v))
	}
	return out
}

// TemporalNodes returns the reached temporal nodes.
func (s *InfluenceSet) TemporalNodes() []egraph.TemporalNode {
	return append([]egraph.TemporalNode(nil), s.nodes...)
}

// Dist returns the BFS distance of a temporal node from the query root,
// or -1 when the underlying search is a union (Community) or the node
// was not reached.
func (s *InfluenceSet) Dist(tn egraph.TemporalNode) int {
	if s.res == nil {
		return -1
	}
	return s.res.Dist(tn)
}

// Influence computes T(author, stamp): every author influenced by the
// root author's work at the given stamp.
func (a *Analyzer) Influence(author, stamp int32) (*InfluenceSet, error) {
	return a.search(author, stamp, core.Options{
		Mode:         a.mode,
		Direction:    core.Forward,
		ReverseEdges: true, // influence flows cited→citer
		TrackParents: true,
	})
}

// Influencers computes T⁻¹(author, stamp): every author whose work
// influenced the root author at the given stamp.
func (a *Analyzer) Influencers(author, stamp int32) (*InfluenceSet, error) {
	return a.search(author, stamp, core.Options{
		Mode:         a.mode,
		Direction:    core.Backward,
		ReverseEdges: true, // follow citations backward in time
		TrackParents: true,
	})
}

func (a *Analyzer) search(author, stamp int32, opts core.Options) (*InfluenceSet, error) {
	root := egraph.TemporalNode{Node: author, Stamp: stamp}
	res, err := core.BFS(a.g, root, opts)
	if err != nil {
		return nil, err
	}
	return a.newSet(res), nil
}

func (a *Analyzer) newSet(res *core.Result) *InfluenceSet {
	s := &InfluenceSet{res: res, authors: ds.NewBitSet(a.g.NumNodes())}
	res.Visit(func(tn egraph.TemporalNode, _ int) bool {
		s.authors.Set(int(tn.Node))
		s.nodes = append(s.nodes, tn)
		return true
	})
	return s
}

// Leaves returns the leaves of the influence tree: reached temporal
// nodes that are not the parent of any other reached node. For an
// Influencers query these are the paper's (l1,t1)…(lk,tk).
func (s *InfluenceSet) Leaves() []egraph.TemporalNode {
	if s.res == nil {
		return nil
	}
	isParent := make(map[egraph.TemporalNode]bool)
	for _, tn := range s.nodes {
		if p, ok := s.res.Parent(tn); ok {
			isParent[p] = true
		}
	}
	var leaves []egraph.TemporalNode
	for _, tn := range s.nodes {
		if !isParent[tn] {
			leaves = append(leaves, tn)
		}
	}
	return leaves
}

// Community computes the paper's community of an author at a stamp: the
// union of the forward influence sets of every leaf of the influencer
// tree — "a group of researchers that have been influenced by the same
// authors".
func (a *Analyzer) Community(author, stamp int32) (*InfluenceSet, error) {
	back, err := a.Influencers(author, stamp)
	if err != nil {
		return nil, err
	}
	union := &InfluenceSet{authors: ds.NewBitSet(a.g.NumNodes())}
	seen := make(map[egraph.TemporalNode]bool)
	for _, leaf := range back.Leaves() {
		fwd, err := a.Influence(leaf.Node, leaf.Stamp)
		if err != nil {
			return nil, err
		}
		for _, tn := range fwd.nodes {
			if !seen[tn] {
				seen[tn] = true
				union.nodes = append(union.nodes, tn)
				union.authors.Set(int(tn.Node))
			}
		}
	}
	return union, nil
}

// Score is one entry of an influence ranking.
type Score struct {
	Author    int32
	Influence int // distinct authors influenced (excluding self)
}

// RankByInfluence scores every author by the size of their influence set
// from their earliest active stamp and returns the topK (all if
// topK ≤ 0), ordered by descending influence, ties by ascending id.
func (a *Analyzer) RankByInfluence(topK int) ([]Score, error) {
	var scores []Score
	for v := int32(0); v < int32(a.g.NumNodes()); v++ {
		stamps := a.g.ActiveStamps(v)
		if len(stamps) == 0 {
			continue
		}
		set, err := a.Influence(v, stamps[0])
		if err != nil {
			return nil, err
		}
		n := set.NumAuthors()
		if set.ContainsAuthor(v) {
			n-- // exclude self
		}
		scores = append(scores, Score{Author: v, Influence: n})
	}
	sort.Slice(scores, func(i, j int) bool {
		if scores[i].Influence != scores[j].Influence {
			return scores[i].Influence > scores[j].Influence
		}
		return scores[i].Author < scores[j].Author
	})
	if topK > 0 && topK < len(scores) {
		scores = scores[:topK]
	}
	return scores, nil
}
