package citation

import (
	"testing"

	"repro/internal/egraph"
	"repro/internal/gen"
)

func tn(v, s int32) egraph.TemporalNode { return egraph.TemporalNode{Node: v, Stamp: s} }

// chainNetwork builds a hand-checkable citation chain:
//
//	year 1: author 1 cites author 0
//	year 2: author 2 cites author 1
//	year 3: author 3 cites author 2
//
// Influence of 0's year-1 work must reach {0,1,2,3}.
func chainNetwork(t *testing.T) *Analyzer {
	t.Helper()
	b := egraph.NewBuilder(true)
	b.AddEdge(1, 0, 1)
	b.AddEdge(2, 1, 2)
	b.AddEdge(3, 2, 3)
	a, err := NewAnalyzer(b.Build(), egraph.CausalAllPairs)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestInfluenceChain(t *testing.T) {
	a := chainNetwork(t)
	set, err := a.Influence(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if set.NumAuthors() != 4 {
		t.Fatalf("influence of author 0 = %v, want 4 authors", set.Authors())
	}
	for _, author := range []int32{0, 1, 2, 3} {
		if !set.ContainsAuthor(author) {
			t.Fatalf("author %d missing from influence set", author)
		}
	}
	// Author 3's work influences nobody else.
	set3, err := a.Influence(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if set3.NumAuthors() != 1 {
		t.Fatalf("influence of author 3 = %v, want just itself", set3.Authors())
	}
}

func TestInfluencersChain(t *testing.T) {
	a := chainNetwork(t)
	// T⁻¹ of author 3 at its citing year: everyone upstream.
	set, err := a.Influencers(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if set.NumAuthors() != 4 {
		t.Fatalf("influencers of author 3 = %v, want 4 authors", set.Authors())
	}
	// T⁻¹ of author 0 (cited only): nobody influenced 0.
	set0, err := a.Influencers(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if set0.NumAuthors() != 1 {
		t.Fatalf("influencers of author 0 = %v, want just itself", set0.Authors())
	}
}

func TestInfluenceRespectsTime(t *testing.T) {
	// Author 1 cites 0 in year 3; author 2 cites 1 in year 1 (earlier!).
	// Influence of 0 must NOT flow through to 2: the citation 2→1
	// happened before 1 absorbed 0's work.
	b := egraph.NewBuilder(true)
	b.AddEdge(1, 0, 3)
	b.AddEdge(2, 1, 1)
	a, err := NewAnalyzer(b.Build(), egraph.CausalAllPairs)
	if err != nil {
		t.Fatal(err)
	}
	set, err := a.Influence(0, 1) // 0 active at stamp of year 3 = index 1
	if err != nil {
		t.Fatal(err)
	}
	if set.ContainsAuthor(2) {
		t.Fatal("influence leaked backward in time to author 2")
	}
	if !set.ContainsAuthor(1) {
		t.Fatal("direct citer missing from influence set")
	}
}

func TestLeavesOfInfluencerTree(t *testing.T) {
	// Diamond: 3 cites 1 and 2 (year 2); 1 and 2 each cite 0 (year 1).
	b := egraph.NewBuilder(true)
	b.AddEdge(1, 0, 1)
	b.AddEdge(2, 0, 1)
	b.AddEdge(3, 1, 2)
	b.AddEdge(3, 2, 2)
	a, err := NewAnalyzer(b.Build(), egraph.CausalAllPairs)
	if err != nil {
		t.Fatal(err)
	}
	back, err := a.Influencers(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	leaves := back.Leaves()
	// The deepest influencer is author 0 at year 1.
	found := false
	for _, l := range leaves {
		if l.Node == 0 {
			found = true
		}
		if l == tn(3, 1) {
			t.Fatal("root listed as leaf despite having children")
		}
	}
	if !found {
		t.Fatalf("author 0 missing from leaves %v", leaves)
	}
}

func TestCommunityDiamond(t *testing.T) {
	// Same diamond; community of author 1 = everyone influenced by 0's
	// early work, i.e. {0, 1, 2, 3}.
	b := egraph.NewBuilder(true)
	b.AddEdge(1, 0, 1)
	b.AddEdge(2, 0, 1)
	b.AddEdge(3, 1, 2)
	b.AddEdge(3, 2, 2)
	a, err := NewAnalyzer(b.Build(), egraph.CausalAllPairs)
	if err != nil {
		t.Fatal(err)
	}
	com, err := a.Community(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, author := range []int32{0, 1, 2, 3} {
		if !com.ContainsAuthor(author) {
			t.Fatalf("author %d missing from community %v", author, com.Authors())
		}
	}
	// Community Dist is undefined (union of searches).
	if com.Dist(tn(0, 0)) != -1 {
		t.Fatal("community Dist should be -1")
	}
}

func TestCommunitySeparateSchools(t *testing.T) {
	// Two disjoint schools: {0←1} and {2←3}. The community of 1 must not
	// contain school B.
	b := egraph.NewBuilder(true)
	b.AddEdge(1, 0, 1)
	b.AddEdge(3, 2, 1)
	a, err := NewAnalyzer(b.Build(), egraph.CausalAllPairs)
	if err != nil {
		t.Fatal(err)
	}
	com, err := a.Community(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if com.ContainsAuthor(2) || com.ContainsAuthor(3) {
		t.Fatalf("community of author 1 leaked into the other school: %v", com.Authors())
	}
	if !com.ContainsAuthor(0) || !com.ContainsAuthor(1) {
		t.Fatalf("community of author 1 incomplete: %v", com.Authors())
	}
}

func TestRankByInfluence(t *testing.T) {
	a := chainNetwork(t)
	scores, err := a.RankByInfluence(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 4 {
		t.Fatalf("scores = %v, want 4 entries", scores)
	}
	// Author 0 tops the chain with 3 influenced authors.
	if scores[0].Author != 0 || scores[0].Influence != 3 {
		t.Fatalf("top = %+v, want author 0 with influence 3", scores[0])
	}
	// Last is author 3 with 0.
	if scores[3].Author != 3 || scores[3].Influence != 0 {
		t.Fatalf("bottom = %+v, want author 3 with influence 0", scores[3])
	}
	top2, err := a.RankByInfluence(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(top2) != 2 || top2[0].Author != 0 {
		t.Fatalf("top2 = %v", top2)
	}
}

func TestAnalyzerRejectsUndirected(t *testing.T) {
	b := egraph.NewBuilder(false)
	b.AddEdge(0, 1, 1)
	if _, err := NewAnalyzer(b.Build(), egraph.CausalAllPairs); err == nil {
		t.Fatal("undirected graph should be rejected")
	}
}

func TestInfluenceErrorsOnInactive(t *testing.T) {
	a := chainNetwork(t)
	if _, err := a.Influence(3, 0); err == nil {
		t.Fatal("author 3 is inactive at stamp 0; query should fail")
	}
}

func TestSyntheticNetworkInvariants(t *testing.T) {
	g, firstPub := gen.Citation(gen.DefaultCitationConfig())
	a, err := NewAnalyzer(g, egraph.CausalAllPairs)
	if err != nil {
		t.Fatal(err)
	}
	scores, err := a.RankByInfluence(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 10 {
		t.Fatalf("topK = %d, want 10", len(scores))
	}
	// Influence can only reach authors who published.
	top := scores[0]
	set, err := a.Influence(top.Author, g.ActiveStamps(top.Author)[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, author := range set.Authors() {
		if firstPub[author] < 0 && len(g.ActiveStamps(author)) == 0 {
			t.Fatalf("influenced author %d never appeared in the network", author)
		}
	}
	// Early authors tend to out-influence late ones: the top author must
	// influence at least as many as the median.
	mid := scores[len(scores)/2]
	if top.Influence < mid.Influence {
		t.Fatal("ranking not sorted by influence")
	}
}

func TestInfluenceSetAccessors(t *testing.T) {
	a := chainNetwork(t)
	set, err := a.Influence(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	nodes := set.TemporalNodes()
	if len(nodes) == 0 {
		t.Fatal("no temporal nodes")
	}
	// Mutating the returned slice must not corrupt the set.
	nodes[0] = tn(99, 0)
	if set.TemporalNodes()[0] == tn(99, 0) && len(nodes) == 1 {
		t.Fatal("TemporalNodes aliases internal storage")
	}
	if set.Dist(tn(0, 0)) != 0 {
		t.Fatal("root distance should be 0")
	}
	if a.Graph() == nil {
		t.Fatal("Graph accessor nil")
	}
}
