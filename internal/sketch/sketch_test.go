package sketch

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/egraph"
	"repro/internal/gen"
)

func tn(v, s int32) egraph.TemporalNode { return egraph.TemporalNode{Node: v, Stamp: s} }

func randomGraph(rng *rand.Rand, directed bool) *egraph.IntEvolvingGraph {
	b := egraph.NewBuilder(directed)
	n := 2 + rng.Intn(8)
	stamps := 1 + rng.Intn(5)
	edges := rng.Intn(3 * n)
	for e := 0; e < edges; e++ {
		b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)), int64(1+rng.Intn(stamps)))
	}
	b.AddEdge(0, 1, 1)
	return b.Build()
}

// distinctNodesReached is the exact oracle: run the paper's BFS and
// count distinct node ids among reached temporal nodes.
func distinctNodesReached(t *testing.T, g *egraph.IntEvolvingGraph, root egraph.TemporalNode) int {
	t.Helper()
	res, err := core.BFS(g, root, core.Options{})
	if err != nil {
		t.Fatalf("oracle BFS: %v", err)
	}
	seen := make(map[int32]bool)
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		for _, s := range g.ActiveStamps(v) {
			if res.Reached(tn(v, s)) {
				seen[v] = true
				break
			}
		}
	}
	return len(seen)
}

func TestBuildReachRejectsTinyK(t *testing.T) {
	g := egraph.Figure1Graph()
	for _, k := range []int{-1, 0, 1, 2, 3} {
		if _, err := BuildReach(g, egraph.CausalAllPairs, k, 1); err == nil {
			t.Errorf("BuildReach(k=%d) succeeded, want error", k)
		}
	}
}

func TestFigure1ExactSketches(t *testing.T) {
	g := egraph.Figure1Graph()
	e, err := BuildReach(g, egraph.CausalAllPairs, 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	// k=8 > 3 nodes, so every estimate is exact.
	cases := []struct {
		tn   egraph.TemporalNode
		want float64
	}{
		{tn(0, 0), 3}, // (1,t1) influences all of {1,2,3}
		{tn(1, 0), 2}, // (2,t1) → (2,t3) → (3,t3): {2,3}
		{tn(2, 1), 1}, // (3,t2) reaches only itself (via (3,t3))
		{tn(2, 2), 1},
	}
	for _, c := range cases {
		if got := e.EstimateTemporalNode(c.tn); got != c.want {
			t.Errorf("Estimate(%v) = %g, want %g", c.tn, got, c.want)
		}
		if !e.Exact(c.tn) {
			t.Errorf("Exact(%v) = false, want true at k=8", c.tn)
		}
	}
	// Inactive temporal nodes influence nothing.
	if got := e.EstimateTemporalNode(tn(2, 0)); got != 0 {
		t.Errorf("Estimate(inactive (3,t1)) = %g, want 0", got)
	}
}

// With k at least the node count every sketch is exact and must equal
// the BFS oracle, on random graphs, both modes, both orientations.
func TestSketchExactMatchesOracle(t *testing.T) {
	for _, mode := range []egraph.CausalMode{egraph.CausalAllPairs, egraph.CausalConsecutive} {
		f := func(seed int64, directed bool) bool {
			rng := rand.New(rand.NewSource(seed))
			g := randomGraph(rng, directed)
			e, err := BuildReach(g, mode, g.NumNodes()+MinK, seed)
			if err != nil {
				t.Log(err)
				return false
			}
			for v := int32(0); v < int32(g.NumNodes()); v++ {
				for _, s := range g.ActiveStamps(v) {
					root := tn(v, s)
					want := float64(distinctNodesReached(t, g, root))
					if got := e.EstimateTemporalNode(root); got != want {
						t.Logf("seed %d mode %v: Estimate(%v) = %g, oracle %g", seed, mode, root, got, want)
						return false
					}
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
	}
}

// At realistic k the estimates must land near the oracle on a graph
// large enough for the estimator to engage (reach sets ≫ k).
func TestSketchAccuracy(t *testing.T) {
	g := gen.GNP(400, 6, 0.004, true, 99)
	e, err := BuildReach(g, egraph.CausalConsecutive, 64, 7)
	if err != nil {
		t.Fatal(err)
	}
	var relErrSum float64
	var measured, engaged int
	for v := int32(0); v < int32(g.NumNodes()); v += 7 { // sample sources
		stamps := g.ActiveStamps(v)
		if len(stamps) == 0 {
			continue
		}
		root := tn(v, stamps[0])
		want := float64(distinctNodesReached(t, g, root))
		got := e.EstimateTemporalNode(root)
		if want == 0 {
			t.Fatalf("active root %v with zero oracle reach", root)
		}
		relErrSum += math.Abs(got-want) / want
		measured++
		if !e.Exact(root) {
			engaged++
		}
	}
	if measured == 0 {
		t.Fatal("no sources sampled")
	}
	if engaged == 0 {
		t.Fatal("estimator never engaged: all reach sets < k; grow the workload")
	}
	if mean := relErrSum / float64(measured); mean > 0.25 {
		t.Fatalf("mean relative error %.3f > 0.25 over %d sources (k=64)", mean, measured)
	}
}

// Same seed, same sketches; different seed, (almost surely) different
// internal ranks but similar estimates.
func TestSketchDeterminism(t *testing.T) {
	g := gen.GNP(100, 4, 0.01, true, 3)
	a, err := BuildReach(g, egraph.CausalAllPairs, 16, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildReach(g, egraph.CausalAllPairs, 16, 5)
	if err != nil {
		t.Fatal(err)
	}
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		ea, oka := a.EstimateNode(v)
		eb, okb := b.EstimateNode(v)
		if oka != okb || ea != eb {
			t.Fatalf("node %d: run A (%g,%v) ≠ run B (%g,%v)", v, ea, oka, eb, okb)
		}
	}
}

// Undirected graphs put 2-cycles in every stamp of the unfolding; the
// condensation path must still produce exact results at large k.
func TestSketchHandlesCycles(t *testing.T) {
	b := egraph.NewBuilder(false)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(2, 3, 2)
	b.AddEdge(3, 0, 2)
	g := b.Build()
	e, err := BuildReach(g, egraph.CausalAllPairs, 16, 11)
	if err != nil {
		t.Fatal(err)
	}
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		for _, s := range g.ActiveStamps(v) {
			root := tn(v, s)
			want := float64(distinctNodesReached(t, g, root))
			if got := e.EstimateTemporalNode(root); got != want {
				t.Fatalf("Estimate(%v) = %g, oracle %g", root, got, want)
			}
		}
	}
}

func TestEstimateNodeInactive(t *testing.T) {
	b := egraph.NewBuilder(true)
	b.AddEdge(0, 1, 1)
	b.AddEdge(0, 3, 2) // node 2 exists but never participates
	g := b.Build()
	e, err := BuildReach(g, egraph.CausalAllPairs, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.EstimateNode(2); ok {
		t.Fatal("EstimateNode(inactive) reported ok")
	}
	if est, ok := e.EstimateNode(0); !ok || est != 3 {
		t.Fatalf("EstimateNode(0) = %g,%v, want 3,true", est, ok)
	}
}

func TestTopK(t *testing.T) {
	g := egraph.Figure1Graph()
	e, err := BuildReach(g, egraph.CausalAllPairs, 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	top := e.TopK(2)
	if len(top) != 2 {
		t.Fatalf("TopK(2) returned %d entries", len(top))
	}
	// Node 0 (influence 3) must rank first, node 1 (influence 2) second.
	if top[0].Node != 0 || top[0].Influence != 3 {
		t.Fatalf("top[0] = %+v, want node 0 influence 3", top[0])
	}
	if top[1].Node != 1 || top[1].Influence != 2 {
		t.Fatalf("top[1] = %+v, want node 1 influence 2", top[1])
	}
	// Requesting more than exists returns everything, once.
	if all := e.TopK(100); len(all) != 3 {
		t.Fatalf("TopK(100) returned %d entries, want 3", len(all))
	}
}

func TestBottomK(t *testing.T) {
	got := bottomK([]float64{0.9, 0.1, 0.5, 0.1, 0.3, 0.5}, 3)
	want := []float64{0.1, 0.3, 0.5}
	if len(got) != len(want) {
		t.Fatalf("bottomK = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bottomK = %v, want %v", got, want)
		}
	}
	if out := bottomK([]float64{0.2}, 4); len(out) != 1 || out[0] != 0.2 {
		t.Fatalf("bottomK(short) = %v", out)
	}
	if out := bottomK(nil, 4); len(out) != 0 {
		t.Fatalf("bottomK(nil) = %v", out)
	}
}
