// Package sketch estimates the size of temporal reachability sets with
// bottom-k min-rank sketches (Cohen's size-estimation framework).
//
// The Sec. V application asks for influence sets T(a, t) — everything
// downstream of an author. Computing |T(a, t)| exactly for *every*
// author costs one BFS per source, O(|V|·(|E| + |V|)) overall; the
// transitive closure (internal/core) additionally stores Θ(|V|²/64)
// bits. Sketches reduce the all-sources cost to O(k·(|E| + |V|) log k):
// assign every node an i.i.d. uniform rank in (0,1), and for every
// temporal node keep only the k smallest distinct ranks among the nodes
// it reaches. The k-th smallest rank x then yields the unbiased
// cardinality estimate (k−1)/x; when fewer than k distinct ranks exist
// the sketch is the whole set and the count is exact.
//
// Sketches compose over the Theorem 1 unfolding: the reach set of a
// temporal node is the union of its own node and the reach sets of its
// forward neighbours, so one pass in reverse topological order of the
// unfolding's condensation fills every sketch. Cycles (possible within
// a stamp, e.g. for undirected graphs) are handled by Tarjan
// condensation — members of a strongly connected component share one
// sketch.
package sketch

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/components"
	"repro/internal/egraph"
)

// MinK is the smallest accepted sketch size. The estimator (k−1)/x_k is
// undefined for k < 2; tiny k gives useless variance, so the
// constructor insists on at least 4.
const MinK = 4

// ReachEstimator answers approximate "how many distinct nodes does
// (v, t) influence?" queries in O(1) after a build pass.
type ReachEstimator struct {
	g    *egraph.IntEvolvingGraph
	mode egraph.CausalMode
	k    int
	u    *egraph.Unfolding
	// sketches[id] = the k smallest distinct node ranks reachable from
	// unfolded id, ascending. len < k means the sketch is exact.
	sketches [][]float64
	rank     []float64 // per node
}

// BuildReach computes reach sketches for every active temporal node of
// g under the given causal mode. k trades accuracy for memory and build
// time: the relative standard error is about 1/√(k−2) (≈12% at k=64).
// The build is deterministic for a fixed seed.
func BuildReach(g *egraph.IntEvolvingGraph, mode egraph.CausalMode, k int, seed int64) (*ReachEstimator, error) {
	if k < MinK {
		return nil, fmt.Errorf("sketch: k = %d below minimum %d", k, MinK)
	}
	e := &ReachEstimator{g: g, mode: mode, k: k, u: g.Unfold(mode)}

	// I.i.d. uniform ranks per node. Ranks double as node identities
	// during merges, so nudge exact collisions apart (astronomically
	// unlikely, but a collision would silently under-count).
	e.rank = make([]float64, g.NumNodes())
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[float64]bool, g.NumNodes())
	for v := range e.rank {
		r := rng.Float64()
		for r == 0 || seen[r] {
			r = rng.Float64()
		}
		seen[r] = true
		e.rank[v] = r
	}

	n := len(e.u.Order)
	e.sketches = make([][]float64, n)

	// Tarjan emits strongly connected components in reverse
	// topological order of the condensation: every component is
	// finished only after all components reachable from it. One pass
	// in emission order therefore sees fully-built successor sketches.
	sccs := components.TarjanStatic(e.u.Graph)
	comp := make([]int32, n)
	for ci, members := range sccs {
		for _, id := range members {
			comp[id] = int32(ci)
		}
	}
	scratch := make([]float64, 0, 4*k)
	for ci, members := range sccs {
		scratch = scratch[:0]
		for _, id := range members {
			scratch = append(scratch, e.rank[e.u.Order[id].Node])
			for _, nb := range e.u.Graph.Neighbors(id) {
				if comp[nb] == int32(ci) {
					continue // intra-component edge; members share the sketch
				}
				scratch = append(scratch, e.sketches[nb]...)
			}
		}
		merged := bottomK(scratch, k)
		for _, id := range members {
			e.sketches[id] = merged
		}
	}
	return e, nil
}

// bottomK returns the k smallest distinct values of vals, ascending, as
// a fresh slice.
func bottomK(vals []float64, k int) []float64 {
	sort.Float64s(vals)
	out := make([]float64, 0, k)
	for i, v := range vals {
		if i > 0 && v == vals[i-1] {
			continue
		}
		out = append(out, v)
		if len(out) == k {
			break
		}
	}
	return out
}

// K returns the sketch size.
func (e *ReachEstimator) K() int { return e.k }

// Mode returns the causal mode the sketches were built under. (Reach
// sets are identical in both modes; the mode only affects build cost.)
func (e *ReachEstimator) Mode() egraph.CausalMode { return e.mode }

// EstimateTemporalNode estimates the number of distinct nodes reachable
// from (v, t), counting v itself. Inactive temporal nodes influence
// nothing (Def. 4) and estimate to 0.
func (e *ReachEstimator) EstimateTemporalNode(tn egraph.TemporalNode) float64 {
	id := e.u.IDOf(tn)
	if id < 0 {
		return 0
	}
	sk := e.sketches[id]
	if len(sk) < e.k {
		return float64(len(sk)) // sketch holds the whole set: exact
	}
	return float64(e.k-1) / sk[e.k-1]
}

// Exact reports whether the estimate for (v, t) is exact, i.e. the
// reach set held fewer than k distinct nodes.
func (e *ReachEstimator) Exact(tn egraph.TemporalNode) bool {
	id := e.u.IDOf(tn)
	return id < 0 || len(e.sketches[id]) < e.k
}

// EstimateNode estimates the influence of node v departing at its
// earliest active stamp (the paper's convention for roots). ok is false
// when v is never active.
func (e *ReachEstimator) EstimateNode(v int32) (estimate float64, ok bool) {
	stamps := e.g.ActiveStamps(v)
	if len(stamps) == 0 {
		return 0, false
	}
	return e.EstimateTemporalNode(egraph.TemporalNode{Node: v, Stamp: stamps[0]}), true
}

// TopK returns the nodeCount nodes with the largest estimated influence
// (departing at each node's earliest active stamp), descending. Ties
// break toward smaller node ids for determinism.
func (e *ReachEstimator) TopK(nodeCount int) []NodeEstimate {
	all := make([]NodeEstimate, 0, e.g.NumNodes())
	for v := int32(0); v < int32(e.g.NumNodes()); v++ {
		if est, ok := e.EstimateNode(v); ok {
			all = append(all, NodeEstimate{Node: v, Influence: est})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Influence != all[j].Influence {
			return all[i].Influence > all[j].Influence
		}
		return all[i].Node < all[j].Node
	})
	if nodeCount < len(all) {
		all = all[:nodeCount]
	}
	return all
}

// NodeEstimate pairs a node with its estimated influence cardinality.
type NodeEstimate struct {
	Node      int32
	Influence float64
}
