package ingest

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
)

// WAL file format — the same length-prefix + CRC framing discipline as
// the egio binary format and the dynadj journal, versioned separately
// because the record payload is an event stream, not a graph:
//
//	header  magic "EVWL" | version u8 | reserved u8
//	record  u32 payload length | u32 CRC32-IEEE(payload) | payload
//	payload seq uvarint | count uvarint | count × event
//	event   op u8 | for arcs: u uvarint, v uvarint, t varint
//	               for AddStamp: t varint
//
// The header is written lazily on the first append, so an unused WAL
// stays zero bytes (a valid empty log). Records carry their batch
// sequence number so replay can verify the stream is contiguous.
const (
	walMagic   = "EVWL"
	walVersion = 1
	// walHeaderLen is the byte length of the file header.
	walHeaderLen = 6
	// maxWALBatch bounds one record's event count so a corrupt length
	// field cannot trigger a huge allocation during replay.
	maxWALBatch = 1 << 20
	// maxEventEnc is the worst-case encoded size of one event:
	// op byte + two uvarint32 + one varint64.
	maxEventEnc = 1 + 5 + 5 + 10
	// maxWALPayload bounds a record's payload length field.
	maxWALPayload = 15 + maxWALBatch*maxEventEnc
)

// ErrTornWAL reports that replay hit an incomplete or corrupt trailing
// record. The events returned alongside it are the full clean prefix
// and are safe to apply — the standard recovery contract of a
// write-ahead log.
var ErrTornWAL = errors.New("ingest: WAL torn mid-record")

// SyncPolicy selects when appended records are fsynced to disk.
type SyncPolicy int

const (
	// SyncInterval (the default) fsyncs on a background ticker every
	// WALOptions.Interval: a crash loses at most one interval of
	// acknowledged writes. The group-commit sweet spot for load that
	// can tolerate a small durability window.
	SyncInterval SyncPolicy = iota
	// SyncAlways fsyncs before an append is acknowledged. Concurrent
	// appenders share fsyncs through group commit: one leader syncs
	// the whole buffered tail while followers wait on its result.
	SyncAlways
	// SyncNever leaves syncing to the operating system. Acknowledged
	// writes survive a process kill (the kernel holds them) but not a
	// power failure.
	SyncNever
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncNever:
		return "never"
	default:
		return "interval"
	}
}

// ParseSyncPolicy maps the CLI spelling to a SyncPolicy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	default:
		return 0, fmt.Errorf("ingest: unknown fsync policy %q (want always, interval or never)", s)
	}
}

// WALOptions tunes a WAL opened with OpenWAL.
type WALOptions struct {
	// Policy is the fsync policy (default SyncInterval).
	Policy SyncPolicy
	// Interval is the SyncInterval flush period (default 100ms).
	Interval time.Duration
	// Faults, when non-nil, arms the WAL's injection sites: wal.append
	// (inside the buffered record write) and wal.fsync (inside the
	// group-commit flush+fsync). An injected error is sticky, exactly
	// like a real short write or ENOSPC — the WAL contract is that one
	// write failure makes the file unusable.
	Faults *fault.Injector
}

// WALStats is a point-in-time snapshot of the writer's counters.
type WALStats struct {
	Records int64 `json:"records"` // records appended this process
	Bytes   int64 `json:"bytes"`   // file bytes including recovered prefix
	Syncs   int64 `json:"syncs"`   // fsync calls issued
}

// Recovery describes what OpenWAL found in an existing file.
type Recovery struct {
	// Events is the clean-prefix event stream in append order; fold it
	// onto the base graph the WAL was recorded against.
	Events []Event
	// Batches is the number of complete records recovered.
	Batches int
	// BatchStarts[i] is the index in Events where batch i (WAL
	// sequence i) begins: the tail of the stream from sequence s
	// onward is Events[BatchStarts[s]:]. len(BatchStarts) == Batches.
	// Checkpoint recovery uses it to replay only the records a
	// checkpoint does not already cover.
	BatchStarts []int
	// Torn reports that the file ended in an incomplete or corrupt
	// record, which OpenWAL truncated away before reopening for
	// append.
	Torn bool
	// TruncatedBytes is how many trailing bytes the torn record held.
	TruncatedBytes int64
}

// WAL is an append-only write-ahead log backed by a file. Appends are
// buffered; durability follows the configured SyncPolicy. Safe for
// concurrent use.
type WAL struct {
	path string
	opts WALOptions
	f    *os.File

	mu     sync.Mutex // serialises buffered writes
	bw     *bufio.Writer
	headed bool
	next   uint64 // sequence number of the next record
	werr   error  // sticky write error: the file is unusable after one

	// Group commit: Commit waiters sleep on cond until synced passes
	// their record; one leader at a time flushes and fsyncs the tail.
	cmu     sync.Mutex
	cond    *sync.Cond
	synced  uint64 // records [0, synced) are durable
	syncing bool

	records atomic.Int64
	bytes   atomic.Int64
	syncs   atomic.Int64

	tickQuit chan struct{}
	tickDone chan struct{}

	closeOnce sync.Once
	closeErr  error
}

// OpenWAL opens (creating if absent) the log at path, replays any
// existing records, truncates a torn tail so appends resume at a clean
// record boundary, and returns the writer positioned at the end. The
// caller folds Recovery.Events onto its base graph before serving.
func OpenWAL(path string, opts WALOptions) (*WAL, *Recovery, error) {
	if opts.Interval <= 0 {
		opts.Interval = 100 * time.Millisecond
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("ingest: open WAL: %w", err)
	}
	events, starts, batches, good, rerr := replay(f)
	rec := &Recovery{Events: events, Batches: batches, BatchStarts: starts}
	switch {
	case rerr == nil:
	case errors.Is(rerr, ErrTornWAL):
		size, serr := f.Seek(0, io.SeekEnd)
		if serr != nil {
			f.Close()
			return nil, nil, fmt.Errorf("ingest: sizing torn WAL: %w", serr)
		}
		rec.Torn = true
		rec.TruncatedBytes = size - good
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("ingest: truncating torn WAL tail: %w", err)
		}
	default:
		f.Close()
		return nil, nil, rerr
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("ingest: seek WAL end: %w", err)
	}
	w := &WAL{
		path:   path,
		opts:   opts,
		f:      f,
		bw:     bufio.NewWriterSize(f, 1<<16),
		headed: good >= walHeaderLen,
		next:   uint64(batches),
		synced: uint64(batches),
	}
	w.cond = sync.NewCond(&w.cmu)
	w.bytes.Store(good)
	if opts.Policy == SyncInterval {
		w.tickQuit = make(chan struct{})
		w.tickDone = make(chan struct{})
		go w.tick()
	}
	return w, rec, nil
}

// tick is the SyncInterval background flusher.
func (w *WAL) tick() {
	defer close(w.tickDone)
	t := time.NewTicker(w.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-w.tickQuit:
			return
		case <-t.C:
			w.flushSync() //nolint:errcheck // sticky werr surfaces on the next Append
		}
	}
}

// Append buffers one record holding the batch and returns its sequence
// number. Durability is governed by Commit; call Commit(seq) before
// acknowledging the batch to a client.
func (w *WAL) Append(events []Event) (seq uint64, err error) {
	if len(events) == 0 {
		return 0, fmt.Errorf("ingest: empty WAL batch")
	}
	if len(events) > maxWALBatch {
		return 0, fmt.Errorf("ingest: WAL batch of %d events exceeds the %d limit", len(events), maxWALBatch)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.werr != nil {
		return 0, fmt.Errorf("ingest: WAL unusable after write error: %w", w.werr)
	}
	if err := w.opts.Faults.Fire(fault.WALAppend); err != nil {
		w.werr = err
		return 0, fmt.Errorf("ingest: WAL append: %w", err)
	}
	n := int64(0)
	if !w.headed {
		var hdr [walHeaderLen]byte
		copy(hdr[:], walMagic)
		hdr[4] = walVersion
		if _, err := w.bw.Write(hdr[:]); err != nil {
			w.werr = err
			return 0, fmt.Errorf("ingest: WAL header: %w", err)
		}
		w.headed = true
		n += walHeaderLen
	}
	seq = w.next
	payload := appendPayload(nil, seq, events)
	var frame [8]byte
	binary.LittleEndian.PutUint32(frame[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(payload))
	if _, err := w.bw.Write(frame[:]); err != nil {
		w.werr = err
		return 0, fmt.Errorf("ingest: WAL frame: %w", err)
	}
	if _, err := w.bw.Write(payload); err != nil {
		w.werr = err
		return 0, fmt.Errorf("ingest: WAL payload: %w", err)
	}
	w.next++
	n += int64(8 + len(payload))
	w.records.Add(1)
	w.bytes.Add(n)
	return seq, nil
}

// appendPayload encodes (seq, events) onto buf.
func appendPayload(buf []byte, seq uint64, events []Event) []byte {
	buf = binary.AppendUvarint(buf, seq)
	buf = binary.AppendUvarint(buf, uint64(len(events)))
	for _, e := range events {
		buf = append(buf, byte(e.Op))
		if e.Op != AddStamp {
			buf = binary.AppendUvarint(buf, uint64(uint32(e.U)))
			buf = binary.AppendUvarint(buf, uint64(uint32(e.V)))
		}
		buf = binary.AppendVarint(buf, e.T)
	}
	return buf
}

// Commit blocks until record seq is durable under the configured
// policy. For SyncAlways this is a group commit: the first waiter
// flushes and fsyncs the whole buffered tail, later waiters ride the
// same fsync. SyncNever flushes to the kernel (an acknowledged write
// survives a process kill, not a power failure) without fsyncing;
// SyncInterval acknowledges immediately — its durability window is the
// background ticker's contract, not Commit's.
func (w *WAL) Commit(seq uint64) error {
	switch w.opts.Policy {
	case SyncInterval:
		return nil
	case SyncNever:
		w.mu.Lock()
		err := w.bw.Flush()
		if err != nil && w.werr == nil {
			w.werr = err
		}
		w.mu.Unlock()
		if err != nil {
			return fmt.Errorf("ingest: WAL flush: %w", err)
		}
		return nil
	}
	w.cmu.Lock()
	defer w.cmu.Unlock()
	for w.synced <= seq {
		if w.syncing {
			w.cond.Wait()
			continue
		}
		w.syncing = true
		w.cmu.Unlock()
		target, err := w.flushSync()
		w.cmu.Lock()
		w.syncing = false
		if err == nil && target > w.synced {
			w.synced = target
		}
		w.cond.Broadcast()
		if err != nil {
			return err
		}
	}
	return nil
}

// flushSync flushes the buffer and fsyncs the file, returning the
// record count the sync covers.
func (w *WAL) flushSync() (uint64, error) {
	w.mu.Lock()
	target := w.next
	err := w.bw.Flush()
	if err == nil {
		err = w.opts.Faults.Fire(fault.WALFsync)
	}
	if err == nil {
		err = w.f.Sync()
	}
	if err != nil && w.werr == nil {
		w.werr = err
	}
	w.mu.Unlock()
	w.syncs.Add(1)
	if err != nil {
		return 0, fmt.Errorf("ingest: WAL sync: %w", err)
	}
	return target, nil
}

// Stats returns the writer's counters.
func (w *WAL) Stats() WALStats {
	return WALStats{
		Records: w.records.Load(),
		Bytes:   w.bytes.Load(),
		Syncs:   w.syncs.Load(),
	}
}

// Path returns the file path the WAL writes to.
func (w *WAL) Path() string { return w.path }

// NextSeq returns the sequence number the next appended record will
// carry (equivalently: the count of records the log holds, recovered
// prefix included).
func (w *WAL) NextSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.next
}

// Close flushes, fsyncs and closes the file. Further appends fail.
// Idempotent: later calls return the first call's result.
func (w *WAL) Close() error {
	w.closeOnce.Do(func() {
		if w.tickQuit != nil {
			close(w.tickQuit)
			<-w.tickDone
		}
		_, serr := w.flushSync()
		w.mu.Lock()
		if w.werr == nil {
			w.werr = ErrClosed
		}
		w.mu.Unlock()
		cerr := w.f.Close()
		w.closeErr = serr
		if serr == nil {
			w.closeErr = cerr
		}
	})
	return w.closeErr
}

// Replay decodes a WAL stream. On a clean log err is nil; an
// incomplete or corrupt trailing record yields the clean-prefix events,
// the complete batch count, the byte offset where the damage starts and
// ErrTornWAL. A log whose header is wrong (bad magic or version)
// returns a hard error: that file is not a WAL, and truncating it would
// destroy someone else's data. goodBytes is the length of the valid
// prefix — OpenWAL truncates the file to it before appending.
func Replay(r io.Reader) (events []Event, batches int, goodBytes int64, err error) {
	events, _, batches, goodBytes, err = replay(r)
	return events, batches, goodBytes, err
}

// replay is Replay plus the per-batch start offsets Recovery exposes.
func replay(r io.Reader) (events []Event, starts []int, batches int, goodBytes int64, err error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [walHeaderLen]byte
	n, err := io.ReadFull(br, hdr[:])
	if err != nil {
		if err == io.EOF {
			return nil, nil, 0, 0, nil // empty file: a valid fresh WAL
		}
		// A short file is a torn first append only if what exists is a
		// prefix of a real header — anything else is not a WAL, and
		// reporting it torn would let OpenWAL truncate (destroy)
		// someone else's file.
		if string(hdr[:min(n, 4)]) != walMagic[:min(n, 4)] || (n > 4 && hdr[4] != walVersion) {
			return nil, nil, 0, 0, fmt.Errorf("ingest: not a WAL: %d-byte file starting %q, want header %q", n, hdr[:n], walMagic)
		}
		return nil, nil, 0, 0, ErrTornWAL
	}
	if string(hdr[:4]) != walMagic {
		return nil, nil, 0, 0, fmt.Errorf("ingest: not a WAL: magic %q at offset 0, want %q", hdr[:4], walMagic)
	}
	if hdr[4] != walVersion {
		return nil, nil, 0, 0, fmt.Errorf("ingest: unsupported WAL version %d at offset 4, want %d", hdr[4], walVersion)
	}
	goodBytes = walHeaderLen

	var seqWant uint64
	for {
		var frame [8]byte
		if _, err := io.ReadFull(br, frame[:]); err != nil {
			if err == io.EOF {
				return events, starts, batches, goodBytes, nil // clean end
			}
			return events, starts, batches, goodBytes, ErrTornWAL
		}
		length := binary.LittleEndian.Uint32(frame[:4])
		sum := binary.LittleEndian.Uint32(frame[4:])
		if length < 2 || length > maxWALPayload {
			return events, starts, batches, goodBytes, ErrTornWAL
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(br, payload); err != nil {
			return events, starts, batches, goodBytes, ErrTornWAL
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return events, starts, batches, goodBytes, ErrTornWAL
		}
		seq, batch, ok := decodePayload(payload)
		// A CRC-valid record that fails to decode, or that breaks the
		// sequence contiguity the writer guarantees, is damage the
		// checksum cannot see (e.g. a spliced file); stop at the clean
		// prefix like any other tear.
		if !ok || seq != seqWant {
			return events, starts, batches, goodBytes, ErrTornWAL
		}
		starts = append(starts, len(events))
		events = append(events, batch...)
		batches++
		seqWant++
		goodBytes += int64(8 + len(payload))
	}
}

// decodePayload decodes one record payload; ok is false on any
// malformed byte, including trailing garbage.
func decodePayload(p []byte) (seq uint64, events []Event, ok bool) {
	seq, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, nil, false
	}
	p = p[n:]
	count, n := binary.Uvarint(p)
	if n <= 0 || count > maxWALBatch {
		return 0, nil, false
	}
	p = p[n:]
	events = make([]Event, 0, count)
	for i := uint64(0); i < count; i++ {
		if len(p) == 0 {
			return 0, nil, false
		}
		op := EventOp(p[0])
		p = p[1:]
		var e Event
		e.Op = op
		switch op {
		case AddArc, RemoveArc:
			u, n := binary.Uvarint(p)
			if n <= 0 || u > 1<<31-1 {
				return 0, nil, false
			}
			p = p[n:]
			v, n := binary.Uvarint(p)
			if n <= 0 || v > 1<<31-1 {
				return 0, nil, false
			}
			p = p[n:]
			e.U, e.V = int32(u), int32(v)
		case AddStamp:
		default:
			return 0, nil, false
		}
		t, n := binary.Varint(p)
		if n <= 0 {
			return 0, nil, false
		}
		p = p[n:]
		e.T = t
		events = append(events, e)
	}
	if len(p) != 0 {
		return 0, nil, false
	}
	return seq, events, true
}
