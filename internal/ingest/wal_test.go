package ingest

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

// testBatches is a small deterministic batch stream exercising every
// event kind and varint width.
func testBatches() [][]Event {
	return [][]Event{
		{{Op: AddStamp, T: 4}, {Op: AddArc, U: 0, V: 1, T: 4}},
		{{Op: AddArc, U: 1, V: 2, T: 4}, {Op: AddArc, U: 300, V: 70000, T: -9}},
		{{Op: RemoveArc, U: 0, V: 1, T: 4}},
		{{Op: AddStamp, T: 1 << 40}, {Op: AddArc, U: 5, V: 6, T: 1 << 40}},
	}
}

func flatten(batches [][]Event) []Event {
	var out []Event
	for _, b := range batches {
		out = append(out, b...)
	}
	return out
}

// writeWAL appends batches to a fresh WAL at path and returns the byte
// offset of the file end after each batch (the record boundaries).
func writeWAL(t *testing.T, path string, batches [][]Event, opts WALOptions) []int64 {
	t.Helper()
	w, rec, err := OpenWAL(path, opts)
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	if rec.Batches != 0 || rec.Torn {
		t.Fatalf("fresh WAL recovery = %+v, want empty", rec)
	}
	var bounds []int64
	for i, b := range batches {
		seq, err := w.Append(b)
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		if seq != uint64(i) {
			t.Fatalf("Append %d: seq = %d", i, seq)
		}
		if err := w.Commit(seq); err != nil {
			t.Fatalf("Commit %d: %v", i, err)
		}
		bounds = append(bounds, w.Stats().Bytes)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return bounds
}

func TestWALRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.wal")
	batches := testBatches()
	writeWAL(t, path, batches, WALOptions{Policy: SyncAlways})

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	events, n, good, rerr := Replay(bytes.NewReader(data))
	if rerr != nil {
		t.Fatalf("Replay: %v", rerr)
	}
	if n != len(batches) {
		t.Fatalf("Replay batches = %d, want %d", n, len(batches))
	}
	if good != int64(len(data)) {
		t.Fatalf("Replay goodBytes = %d, want %d", good, len(data))
	}
	if want := flatten(batches); !reflect.DeepEqual(events, want) {
		t.Fatalf("Replay events = %+v, want %+v", events, want)
	}
}

// TestReplayTornAtEveryOffset is the torn-write recovery property: for
// every byte-length prefix of a valid WAL, replay must return exactly
// the prefix of complete records — never an error-free partial record,
// never fewer records than the prefix wholly contains.
func TestReplayTornAtEveryOffset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.wal")
	batches := testBatches()
	bounds := writeWAL(t, path, batches, WALOptions{Policy: SyncAlways})
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	all := flatten(batches)

	for cut := 0; cut <= len(data); cut++ {
		events, n, good, rerr := Replay(bytes.NewReader(data[:cut]))
		// wantBatches = number of records wholly inside the prefix.
		wantBatches := 0
		for _, b := range bounds {
			if int64(cut) >= b {
				wantBatches++
			}
		}
		if n != wantBatches {
			t.Fatalf("cut %d: replayed %d batches, want %d", cut, n, wantBatches)
		}
		wantEvents := 0
		for _, b := range batches[:wantBatches] {
			wantEvents += len(b)
		}
		if !reflect.DeepEqual(events, all[:wantEvents]) && !(len(events) == 0 && wantEvents == 0) {
			t.Fatalf("cut %d: events = %+v, want prefix of %d", cut, events, wantEvents)
		}
		// Clean cuts are exactly: empty file, bare header, or a record
		// boundary.
		clean := cut == 0 || cut == walHeaderLen
		for _, b := range bounds {
			if int64(cut) == b {
				clean = true
			}
		}
		if clean && rerr != nil {
			t.Fatalf("cut %d: err = %v, want clean replay", cut, rerr)
		}
		if !clean && !errors.Is(rerr, ErrTornWAL) {
			t.Fatalf("cut %d: err = %v, want ErrTornWAL", cut, rerr)
		}
		if wantGood := int64(walHeaderLen); cut >= walHeaderLen {
			for _, b := range bounds {
				if int64(cut) >= b {
					wantGood = b
				}
			}
			if good != wantGood {
				t.Fatalf("cut %d: goodBytes = %d, want %d", cut, good, wantGood)
			}
		}
	}
}

// TestReplayCorruptByte flips each byte of one record's payload and
// asserts replay stops at the preceding clean prefix.
func TestReplayCorruptByte(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.wal")
	batches := testBatches()
	bounds := writeWAL(t, path, batches, WALOptions{Policy: SyncAlways})
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt inside record 2 (bytes [bounds[1], bounds[2])).
	for off := bounds[1]; off < bounds[2]; off++ {
		mut := append([]byte(nil), data...)
		mut[off] ^= 0x40
		_, n, good, rerr := Replay(bytes.NewReader(mut))
		if !errors.Is(rerr, ErrTornWAL) {
			t.Fatalf("flip at %d: err = %v, want ErrTornWAL", off, rerr)
		}
		if n != 2 || good != bounds[1] {
			t.Fatalf("flip at %d: batches=%d good=%d, want 2/%d", off, n, good, bounds[1])
		}
	}
}

func TestReplayBadHeader(t *testing.T) {
	if _, _, _, err := Replay(bytes.NewReader([]byte("NOPE\x01\x00"))); err == nil || errors.Is(err, ErrTornWAL) {
		t.Fatalf("bad magic err = %v, want hard error", err)
	}
	if _, _, _, err := Replay(bytes.NewReader([]byte("EVWL\x07\x00"))); err == nil || errors.Is(err, ErrTornWAL) {
		t.Fatalf("bad version err = %v, want hard error", err)
	}
	// A short file that is a genuine header prefix is a tear…
	if _, _, _, err := Replay(bytes.NewReader([]byte("EVW"))); !errors.Is(err, ErrTornWAL) {
		t.Fatalf("short header err = %v, want ErrTornWAL", err)
	}
	// …but a short file that is NOT a header prefix is someone else's
	// data: a hard error, never "torn" (OpenWAL would truncate it).
	if _, _, _, err := Replay(bytes.NewReader([]byte("hi"))); err == nil || errors.Is(err, ErrTornWAL) {
		t.Fatalf("short non-WAL err = %v, want hard error", err)
	}
}

// TestOpenWALRefusesForeignFile asserts OpenWAL never truncates a file
// that is not a WAL, long or short.
func TestOpenWALRefusesForeignFile(t *testing.T) {
	for _, contents := range []string{"hi", "notes: buy milk\n"} {
		path := filepath.Join(t.TempDir(), "notes.txt")
		if err := os.WriteFile(path, []byte(contents), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := OpenWAL(path, WALOptions{}); err == nil {
			t.Fatalf("OpenWAL accepted foreign file %q", contents)
		}
		got, err := os.ReadFile(path)
		if err != nil || string(got) != contents {
			t.Fatalf("foreign file was modified: %q (err %v)", got, err)
		}
	}
}

// TestWALCloseIdempotent asserts double Close returns the first result
// without panicking on the interval ticker.
func TestWALCloseIdempotent(t *testing.T) {
	w, _, err := OpenWAL(filepath.Join(t.TempDir(), "w.wal"), WALOptions{Policy: SyncInterval})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestOpenWALRecoversAndTruncatesTornTail kills a log mid-record and
// asserts OpenWAL recovers the clean prefix, truncates the tail, and
// appends continue at the right sequence number.
func TestOpenWALRecoversAndTruncatesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.wal")
	batches := testBatches()
	bounds := writeWAL(t, path, batches, WALOptions{Policy: SyncAlways})

	// Tear the last record in half.
	tear := bounds[2] + (bounds[3]-bounds[2])/2
	if err := os.Truncate(path, tear); err != nil {
		t.Fatal(err)
	}

	w, rec, err := OpenWAL(path, WALOptions{Policy: SyncAlways})
	if err != nil {
		t.Fatalf("OpenWAL after tear: %v", err)
	}
	if !rec.Torn || rec.Batches != 3 {
		t.Fatalf("recovery = %+v, want torn with 3 batches", rec)
	}
	if want := flatten(batches[:3]); !reflect.DeepEqual(rec.Events, want) {
		t.Fatalf("recovered events = %+v, want %+v", rec.Events, want)
	}
	if rec.TruncatedBytes != tear-bounds[2] {
		t.Fatalf("TruncatedBytes = %d, want %d", rec.TruncatedBytes, tear-bounds[2])
	}
	// The next append must continue the sequence at 3 and produce a
	// clean log holding exactly prefix+new.
	extra := []Event{{Op: AddArc, U: 9, V: 10, T: 4}}
	seq, err := w.Append(extra)
	if err != nil || seq != 3 {
		t.Fatalf("Append after recovery: seq=%d err=%v, want 3", seq, err)
	}
	if err := w.Commit(seq); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	events, n, _, rerr := Replay(bytes.NewReader(data))
	if rerr != nil || n != 4 {
		t.Fatalf("final replay: batches=%d err=%v, want 4 clean", n, rerr)
	}
	if want := append(flatten(batches[:3]), extra...); !reflect.DeepEqual(events, want) {
		t.Fatalf("final events = %+v, want %+v", events, want)
	}
}

// TestWALGroupCommitConcurrent hammers Append+Commit from many
// goroutines under SyncAlways and asserts every record survives and
// the fsync count stayed at or below the append count (group commit
// never syncs more than once per record).
func TestWALGroupCommitConcurrent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.wal")
	w, _, err := OpenWAL(path, WALOptions{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 8, 25
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < perWriter; j++ {
				ev := []Event{{Op: AddStamp, T: int64(i*1000 + j)}}
				seq, err := w.Append(ev)
				if err != nil {
					t.Errorf("Append: %v", err)
					return
				}
				if err := w.Commit(seq); err != nil {
					t.Errorf("Commit: %v", err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	st := w.Stats()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if st.Records != writers*perWriter {
		t.Fatalf("records = %d, want %d", st.Records, writers*perWriter)
	}
	if st.Syncs > st.Records {
		t.Fatalf("syncs = %d > records = %d: group commit degenerated", st.Syncs, st.Records)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	events, n, _, rerr := Replay(bytes.NewReader(data))
	if rerr != nil || n != writers*perWriter || len(events) != writers*perWriter {
		t.Fatalf("replay: batches=%d events=%d err=%v, want %d clean", n, len(events), rerr, writers*perWriter)
	}
	// Every (i, j) stamp label must be present exactly once.
	seen := make(map[int64]int)
	for _, e := range events {
		seen[e.T]++
	}
	if len(seen) != writers*perWriter {
		t.Fatalf("distinct labels = %d, want %d", len(seen), writers*perWriter)
	}
}

func TestWALEmptyAndOversizeBatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.wal")
	w, _, err := OpenWAL(path, WALOptions{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := w.Append(nil); err == nil {
		t.Fatal("Append(nil) succeeded, want error")
	}
	if _, err := w.Append(make([]Event, maxWALBatch+1)); err == nil {
		t.Fatal("oversize Append succeeded, want error")
	}
}
