package ingest

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/egio"
	"repro/internal/egraph"
	"repro/internal/fault"
)

// recoverBatches is the durable history the recovery tests replay:
// six batches over the Figure 1 graph exercising arc churn, removals,
// a fresh stamp and an emptied stamp.
func recoverBatches() [][]Event {
	return [][]Event{
		{{Op: AddArc, U: 2, V: 0, T: 1}, {Op: AddArc, U: 4, V: 6, T: 2}},
		{{Op: RemoveArc, U: 0, V: 1, T: 1}},
		{{Op: AddStamp, T: 9}, {Op: AddArc, U: 1, V: 2, T: 9}},
		{{Op: AddArc, U: 5, V: 3, T: 3}, {Op: RemoveArc, U: 4, V: 6, T: 2}},
		{{Op: RemoveArc, U: 1, V: 2, T: 9}}, // stamp 9 now empty again
		{{Op: AddArc, U: 6, V: 0, T: 1}, {Op: AddArc, U: 0, V: 3, T: 2}},
	}
}

// eventLabels collects the distinct labels an event stream mentions.
func eventLabels(events []Event) map[int64]bool {
	out := make(map[int64]bool)
	for _, e := range events {
		out[e.T] = true
	}
	return out
}

// assertGraphsIdentical compares the strong way: shape, labels,
// per-stamp edge streams and freshly built flat CSR views.
func assertGraphsIdentical(t *testing.T, got, want *egraph.IntEvolvingGraph) {
	t.Helper()
	if got.NumNodes() != want.NumNodes() || got.NumStamps() != want.NumStamps() {
		t.Fatalf("shape (%d nodes, %d stamps), want (%d nodes, %d stamps)",
			got.NumNodes(), got.NumStamps(), want.NumNodes(), want.NumStamps())
	}
	if ge, we := edgeSet(got), edgeSet(want); !reflect.DeepEqual(ge, we) {
		t.Fatalf("edge sets differ: got %v, want %v", ge, we)
	}
	gc := egraph.BuildFlatCSR(got, egraph.CSRBuildOptions{Workers: 1})
	wc := egraph.BuildFlatCSR(want, egraph.CSRBuildOptions{Workers: 1})
	if !reflect.DeepEqual(gc, wc) {
		t.Fatal("flat CSR views differ")
	}
}

// writeScenario writes the full WAL and a checkpoint covering the
// first cover batches (folded over the Figure 1 base), returning both
// paths. The checkpoint's label set is everything the covered prefix
// mentioned, the way a live Log records labels at append time.
func writeScenario(t *testing.T, dir string, batches [][]Event, cover int) (walPath, ckptPath string) {
	t.Helper()
	walPath = filepath.Join(dir, "events.wal")
	ckptPath = walPath + ".ckpt"
	writeWAL(t, walPath, batches, WALOptions{Policy: SyncAlways})
	covered := Fold(egraph.Figure1Graph(), flatten(batches[:cover]))
	var labels []int64
	for l := range eventLabels(flatten(batches[:cover])) {
		labels = append(labels, l)
	}
	if _, err := egio.WriteCheckpoint(ckptPath, covered, egio.CheckpointMeta{
		WALSeq: uint64(cover), Labels: labels,
	}); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	return walPath, ckptPath
}

func figBase() (*egraph.IntEvolvingGraph, error) { return egraph.Figure1Graph(), nil }

// TestRecoverCheckpointPlusTail boots from a checkpoint covering a
// strict prefix of the WAL and asserts the result is bit-identical to
// the full replay — without ever invoking the base constructor.
func TestRecoverCheckpointPlusTail(t *testing.T) {
	batches := recoverBatches()
	const cover = 3
	walPath, ckptPath := writeScenario(t, t.TempDir(), batches, cover)

	baseCalled := false
	res, err := Recover(RecoverConfig{
		WALPath:        walPath,
		WALOptions:     WALOptions{Policy: SyncAlways},
		CheckpointPath: ckptPath,
		Base: func() (*egraph.IntEvolvingGraph, error) {
			baseCalled = true
			return egraph.Figure1Graph(), nil
		},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	defer res.WAL.Close()
	defer res.CloseCheckpoint()
	if baseCalled {
		t.Fatal("checkpoint boot invoked the base constructor")
	}
	if res.Path != "checkpoint" || res.FallbackReason != "" {
		t.Fatalf("Path = %q (reason %q), want checkpoint", res.Path, res.FallbackReason)
	}
	if res.CheckpointSeq != cover || res.TailBatches != len(batches)-cover {
		t.Fatalf("coverage: seq %d tail %d, want %d and %d", res.CheckpointSeq, res.TailBatches, cover, len(batches)-cover)
	}
	if want := len(flatten(batches[cover:])); res.TailEvents != want {
		t.Fatalf("TailEvents = %d, want %d", res.TailEvents, want)
	}
	assertGraphsIdentical(t, res.Graph, Fold(egraph.Figure1Graph(), flatten(batches)))
	have := make(map[int64]bool)
	for _, l := range res.ExtraLabels {
		have[l] = true
	}
	for l := range eventLabels(flatten(batches)) {
		if !have[l] {
			t.Fatalf("ExtraLabels %v missing label %d", res.ExtraLabels, l)
		}
	}
}

// TestRecoverEmptyTail is the O(1) warm restart: a checkpoint covering
// every batch boots with zero events folded.
func TestRecoverEmptyTail(t *testing.T) {
	batches := recoverBatches()
	walPath, ckptPath := writeScenario(t, t.TempDir(), batches, len(batches))
	res, err := Recover(RecoverConfig{
		WALPath:        walPath,
		WALOptions:     WALOptions{Policy: SyncAlways},
		CheckpointPath: ckptPath,
		Base:           figBase,
	})
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	defer res.WAL.Close()
	defer res.CloseCheckpoint()
	if res.Path != "checkpoint" || res.TailBatches != 0 || res.TailEvents != 0 {
		t.Fatalf("Path %q tail %d/%d, want checkpoint with empty tail", res.Path, res.TailBatches, res.TailEvents)
	}
	assertGraphsIdentical(t, res.Graph, Fold(egraph.Figure1Graph(), flatten(batches)))
}

// TestRecoverFallbacks: every way a checkpoint can be unusable ends in
// a full replay that still produces the oracle graph.
func TestRecoverFallbacks(t *testing.T) {
	batches := recoverBatches()
	oracle := Fold(egraph.Figure1Graph(), flatten(batches))

	cases := []struct {
		name   string
		ckpt   func(t *testing.T, dir string) string // returns CheckpointPath
		reason string                                // substring of FallbackReason ("" = no checkpoint configured)
	}{
		{"unconfigured", func(t *testing.T, dir string) string { return "" }, ""},
		{"missing-file", func(t *testing.T, dir string) string {
			return filepath.Join(dir, "nonexistent.ckpt")
		}, "no checkpoint file"},
		{"corrupt-byte", func(t *testing.T, dir string) string {
			_, ckptPath := writeScenario(t, dir, batches, 3)
			data, err := os.ReadFile(ckptPath)
			if err != nil {
				t.Fatal(err)
			}
			// Flip inside the first section's body (sections start at the
			// first page boundary; padding between sections is not CRC'd).
			data[4096+2] ^= 0x40
			if err := os.WriteFile(ckptPath, data, 0o644); err != nil {
				t.Fatal(err)
			}
			return ckptPath
		}, "CRC mismatch"},
		{"truncated", func(t *testing.T, dir string) string {
			_, ckptPath := writeScenario(t, dir, batches, 3)
			data, err := os.ReadFile(ckptPath)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(ckptPath, data[:len(data)*2/3], 0o644); err != nil {
				t.Fatal(err)
			}
			return ckptPath
		}, "length mismatch"},
		{"covers-unheld-batches", func(t *testing.T, dir string) string {
			ckptPath := filepath.Join(dir, "future.ckpt")
			g := Fold(egraph.Figure1Graph(), flatten(batches))
			if _, err := egio.WriteCheckpoint(ckptPath, g, egio.CheckpointMeta{
				WALSeq: uint64(len(batches)) + 5,
			}); err != nil {
				t.Fatal(err)
			}
			return ckptPath
		}, "covers WAL sequence"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			walPath := filepath.Join(dir, "events.wal")
			writeWAL(t, walPath, batches, WALOptions{Policy: SyncAlways})
			// The checkpoint builder gets its own directory: some cases
			// write a scenario WAL of their own alongside the file.
			ckptPath := tc.ckpt(t, t.TempDir())
			res, err := Recover(RecoverConfig{
				WALPath:        walPath,
				WALOptions:     WALOptions{Policy: SyncAlways},
				CheckpointPath: ckptPath,
				Base:           figBase,
				Logf:           t.Logf,
			})
			if err != nil {
				t.Fatalf("Recover: %v", err)
			}
			defer res.WAL.Close()
			if res.Path != "replay" {
				t.Fatalf("Path = %q, want replay", res.Path)
			}
			if tc.reason == "" {
				if res.FallbackReason != "" {
					t.Fatalf("FallbackReason = %q, want empty", res.FallbackReason)
				}
			} else if !strings.Contains(res.FallbackReason, tc.reason) {
				t.Fatalf("FallbackReason = %q, want substring %q", res.FallbackReason, tc.reason)
			}
			if res.TailBatches != len(batches) {
				t.Fatalf("TailBatches = %d, want all %d", res.TailBatches, len(batches))
			}
			assertGraphsIdentical(t, res.Graph, oracle)
		})
	}
}

// TestRecoverEveryWALPrefix is the torn-tail property lifted to the
// whole recovery path: for every byte-length prefix of the WAL,
// Recover must come up with exactly the graph a full replay of the
// prefix's complete records produces — via the checkpoint when the
// prefix still holds its covered batches, via replay-with-fallback
// when the truncation ate them. (The sibling property for checkpoint
// prefixes at every byte is TestCheckpointEveryPrefix in
// internal/egio; TestRecoverCheckpointPrefixes covers the recovery
// wiring.)
func TestRecoverEveryWALPrefix(t *testing.T) {
	dir := t.TempDir()
	batches := recoverBatches()
	const cover = 3
	walPath, ckptPath := writeScenario(t, dir, batches, cover)
	full, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// Record boundaries, recomputed the way wal_test's torn-offset test
	// does: byte offset of the file end after each batch.
	bounds := writeWAL(t, filepath.Join(dir, "bounds.wal"), batches, WALOptions{Policy: SyncAlways})

	cutPath := filepath.Join(dir, "cut.wal")
	for cut := 0; cut <= len(full); cut++ {
		if err := os.WriteFile(cutPath, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		wantBatches := 0
		for _, b := range bounds {
			if int64(cut) >= b {
				wantBatches++
			}
		}
		res, err := Recover(RecoverConfig{
			WALPath:        cutPath,
			WALOptions:     WALOptions{Policy: SyncAlways},
			CheckpointPath: ckptPath,
			Base:           figBase,
		})
		if err != nil {
			t.Fatalf("cut %d: Recover: %v", cut, err)
		}
		wantPath := "replay"
		if wantBatches >= cover {
			wantPath = "checkpoint"
		}
		if res.Path != wantPath {
			t.Fatalf("cut %d (%d batches): Path = %q (reason %q), want %q",
				cut, wantBatches, res.Path, res.FallbackReason, wantPath)
		}
		assertGraphsIdentical(t, res.Graph, Fold(egraph.Figure1Graph(), flatten(batches[:wantBatches])))
		res.WAL.Close()
		res.CloseCheckpoint()
	}
}

// TestRecoverCheckpointPrefixes cuts the checkpoint file at section
// boundaries (±1), a byte stride, and the entire header/table and
// footer regions, asserting every short prefix falls back to a replay
// that still produces the oracle graph. Parse-level every-byte
// coverage lives in internal/egio's TestCheckpointEveryPrefix.
func TestRecoverCheckpointPrefixes(t *testing.T) {
	dir := t.TempDir()
	batches := recoverBatches()
	walPath, ckptPath := writeScenario(t, dir, batches, 3)
	full, err := os.ReadFile(ckptPath)
	if err != nil {
		t.Fatal(err)
	}
	oracle := Fold(egraph.Figure1Graph(), flatten(batches))

	cuts := map[int]bool{}
	for c := 0; c < len(full); c += 509 {
		cuts[c] = true
	}
	for c := 0; c < len(full); c += 4096 { // section alignment boundaries
		for _, d := range []int{-1, 0, 1} {
			if c+d >= 0 && c+d < len(full) {
				cuts[c+d] = true
			}
		}
	}
	for c := 0; c < 600 && c < len(full); c++ { // header + section table, every byte
		cuts[c] = true
	}
	for c := len(full) - 20; c < len(full); c++ { // around the footer
		if c >= 0 {
			cuts[c] = true
		}
	}

	prefixPath := filepath.Join(dir, "prefix.ckpt")
	for cut := range cuts {
		if err := os.WriteFile(prefixPath, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		res, err := Recover(RecoverConfig{
			WALPath:        walPath,
			WALOptions:     WALOptions{Policy: SyncAlways},
			CheckpointPath: prefixPath,
			Base:           figBase,
		})
		if err != nil {
			t.Fatalf("cut %d: Recover: %v", cut, err)
		}
		if res.Path != "replay" || res.FallbackReason == "" {
			t.Fatalf("cut %d: Path = %q (reason %q), want fallback to replay", cut, res.Path, res.FallbackReason)
		}
		assertGraphsIdentical(t, res.Graph, oracle)
		res.WAL.Close()
	}
}

// ckptLogConfig is a Log config with checkpointing on and every
// automatic trigger (epoch budget, interval, background compactor)
// pushed out of the way; tests lower what they exercise.
func ckptLogConfig(wal *WAL, ckptPath string, t *testing.T) Config {
	return Config{
		WAL:                wal,
		CompactEvery:       1 << 30,
		CompactInterval:    time.Hour,
		CheckpointPath:     ckptPath,
		CheckpointEvery:    1 << 30,
		CheckpointInterval: time.Hour,
		Logf:               t.Logf,
	}
}

// TestLogCheckpointEpochPolicy: the epoch budget triggers a checkpoint
// on exactly the CheckpointEvery-th epoch that advanced coverage.
func TestLogCheckpointEpochPolicy(t *testing.T) {
	dir := t.TempDir()
	wal, _, err := OpenWAL(filepath.Join(dir, "w.wal"), WALOptions{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	ckptPath := filepath.Join(dir, "w.ckpt")
	cfg := ckptLogConfig(wal, ckptPath, t)
	cfg.CheckpointEvery = 2
	lg, err := New(newFakePub(egraph.Figure1Graph()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer lg.Close()

	for i, wantCkpts := range []int64{0, 1, 0, 1} { // two cycles of the budget
		if _, err := lg.Append([]Event{{Op: AddArc, U: 2, V: int32(10 + i), T: 1}}); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		lg.CompactNow()
		st := lg.Stats()
		if st.Checkpoints != wantCkpts+int64(i/2) {
			t.Fatalf("epoch %d: Checkpoints = %d, want %d", i+1, st.Checkpoints, wantCkpts+int64(i/2))
		}
	}
	st := lg.Stats()
	if st.LastCheckpointSeq != 4 || st.CheckpointBytes == 0 || st.LastCheckpointMs < 0 {
		t.Fatalf("stats after two checkpoints: %+v", st)
	}
	ck, err := egio.OpenCheckpoint(ckptPath)
	if err != nil {
		t.Fatalf("OpenCheckpoint: %v", err)
	}
	defer ck.Close()
	if ck.Info.WALSeq != 4 {
		t.Fatalf("on-disk coverage = %d, want 4", ck.Info.WALSeq)
	}
}

// TestLogCheckpointIntervalPolicy: with the epoch budget out of reach,
// an elapsed interval alone triggers the write at the next epoch.
func TestLogCheckpointIntervalPolicy(t *testing.T) {
	dir := t.TempDir()
	wal, _, err := OpenWAL(filepath.Join(dir, "w.wal"), WALOptions{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	cfg := ckptLogConfig(wal, filepath.Join(dir, "w.ckpt"), t)
	cfg.CheckpointInterval = time.Nanosecond
	lg, err := New(newFakePub(egraph.Figure1Graph()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer lg.Close()
	if _, err := lg.Append([]Event{{Op: AddArc, U: 2, V: 0, T: 1}}); err != nil {
		t.Fatal(err)
	}
	lg.CompactNow()
	if st := lg.Stats(); st.Checkpoints != 1 || st.LastCheckpointSeq != 1 {
		t.Fatalf("stats after interval-triggered epoch: %+v", st)
	}
}

// TestLogCheckpointNow: the forced write bypasses both budgets but
// never writes when coverage has not advanced.
func TestLogCheckpointNow(t *testing.T) {
	dir := t.TempDir()
	wal, _, err := OpenWAL(filepath.Join(dir, "w.wal"), WALOptions{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	ckptPath := filepath.Join(dir, "w.ckpt")
	lg, err := New(newFakePub(egraph.Figure1Graph()), ckptLogConfig(wal, ckptPath, t))
	if err != nil {
		t.Fatal(err)
	}
	defer lg.Close()

	if n, err := lg.CheckpointNow(); err != nil || n != 0 {
		t.Fatalf("CheckpointNow with nothing folded = (%d, %v), want (0, nil)", n, err)
	}
	if _, err := os.Stat(ckptPath); !os.IsNotExist(err) {
		t.Fatalf("checkpoint file exists before any coverage (stat err %v)", err)
	}
	if _, err := lg.Append([]Event{{Op: AddArc, U: 2, V: 0, T: 1}}); err != nil {
		t.Fatal(err)
	}
	lg.CompactNow()
	n, err := lg.CheckpointNow()
	if err != nil || n == 0 {
		t.Fatalf("CheckpointNow = (%d, %v), want bytes written", n, err)
	}
	if n2, err := lg.CheckpointNow(); err != nil || n2 != 0 {
		t.Fatalf("repeat CheckpointNow = (%d, %v), want (0, nil): coverage unchanged", n2, err)
	}

	// Unconfigured path errors.
	wal2, _, err := OpenWAL(filepath.Join(dir, "w2.wal"), WALOptions{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	lg2, err := New(newFakePub(egraph.Figure1Graph()), Config{WAL: wal2, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer lg2.Close()
	if _, err := lg2.CheckpointNow(); err == nil {
		t.Fatal("CheckpointNow without a path succeeded")
	}
}

// TestLogCloseWritesFinalCheckpoint: a clean shutdown folds pending
// events and leaves a full-coverage checkpoint behind.
func TestLogCloseWritesFinalCheckpoint(t *testing.T) {
	dir := t.TempDir()
	wal, _, err := OpenWAL(filepath.Join(dir, "w.wal"), WALOptions{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	ckptPath := filepath.Join(dir, "w.ckpt")
	lg, err := New(newFakePub(egraph.Figure1Graph()), ckptLogConfig(wal, ckptPath, t))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := lg.Append([]Event{{Op: AddArc, U: 2, V: int32(10 + i), T: 1}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := lg.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	ck, err := egio.OpenCheckpoint(ckptPath)
	if err != nil {
		t.Fatalf("OpenCheckpoint after Close: %v", err)
	}
	defer ck.Close()
	if ck.Info.WALSeq != 3 {
		t.Fatalf("final checkpoint covers seq %d, want 3", ck.Info.WALSeq)
	}
}

// TestLogCheckpointSeqSeeding: LastCheckpointSeq tells a
// checkpoint-booted Log what is already on disk, so it defers writing
// until coverage moves past it.
func TestLogCheckpointSeqSeeding(t *testing.T) {
	dir := t.TempDir()
	wal, _, err := OpenWAL(filepath.Join(dir, "w.wal"), WALOptions{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	cfg := ckptLogConfig(wal, filepath.Join(dir, "w.ckpt"), t)
	cfg.CheckpointInterval = time.Nanosecond // every epoch would write
	cfg.LastCheckpointSeq = 2
	lg, err := New(newFakePub(egraph.Figure1Graph()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer lg.Close()
	for i := 0; i < 3; i++ {
		if _, err := lg.Append([]Event{{Op: AddArc, U: 2, V: int32(10 + i), T: 1}}); err != nil {
			t.Fatal(err)
		}
		lg.CompactNow()
	}
	// Epochs 1 and 2 fold batches the on-disk checkpoint already
	// covers (seq 1, 2 ≤ 2); only epoch 3 advances coverage.
	if st := lg.Stats(); st.Checkpoints != 1 || st.LastCheckpointSeq != 3 {
		t.Fatalf("stats = Checkpoints %d LastCheckpointSeq %d, want 1 and 3", st.Checkpoints, st.LastCheckpointSeq)
	}
}

// TestRecoverRestartCycle is the end-to-end crash/restart story: a
// live Log checkpoints mid-stream, the process "crashes" with batches
// past the checkpoint durable in the WAL, and the next boot comes up
// through the checkpoint bit-identical to a full replay — then keeps
// serving writes.
func TestRecoverRestartCycle(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "events.wal")
	ckptPath := walPath + ".ckpt"

	// Life 1: fold three batches, checkpoint, accept three more
	// batches whose fold the "crash" never publishes.
	wal, rec, err := OpenWAL(walPath, WALOptions{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Batches != 0 {
		t.Fatalf("fresh WAL holds %d batches", rec.Batches)
	}
	lg, err := New(newFakePub(egraph.Figure1Graph()), ckptLogConfig(wal, ckptPath, t))
	if err != nil {
		t.Fatal(err)
	}
	batches := recoverBatches()
	for _, b := range batches[:3] {
		if _, err := lg.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	lg.CompactNow()
	if n, err := lg.CheckpointNow(); err != nil || n == 0 {
		t.Fatalf("CheckpointNow = (%d, %v)", n, err)
	}
	for _, b := range batches[3:] {
		if _, err := lg.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	// Crash: release the WAL handle without Close's final fold and
	// checkpoint. The three tail batches are durable but uncovered.
	lg.stopOnce.Do(func() { close(lg.quit); <-lg.done })
	if err := wal.Close(); err != nil {
		t.Fatal(err)
	}

	// Life 2: boot through the checkpoint, fold only the tail.
	res, err := Recover(RecoverConfig{
		WALPath:        walPath,
		WALOptions:     WALOptions{Policy: SyncAlways},
		CheckpointPath: ckptPath,
		Base:           figBase,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	defer res.CloseCheckpoint()
	if res.Path != "checkpoint" || res.CheckpointSeq != 3 || res.TailBatches != len(batches)-3 {
		t.Fatalf("recovery = path %q seq %d tail %d, want checkpoint/3/%d", res.Path, res.CheckpointSeq, res.TailBatches, len(batches)-3)
	}
	assertGraphsIdentical(t, res.Graph, Fold(egraph.Figure1Graph(), flatten(batches)))

	// The revived Log seeds its coverage cursor and keeps serving: a
	// new batch folds and a forced checkpoint covers everything.
	pub := newFakePub(res.Graph)
	cfg := ckptLogConfig(res.WAL, ckptPath, t)
	cfg.ExtraLabels = res.ExtraLabels
	cfg.LastCheckpointSeq = res.CheckpointSeq
	cfg.RecoverPath = res.Path
	cfg.TailRecordsReplayed = res.TailEvents
	lg2, err := New(pub, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer lg2.Close()
	if st := lg2.Stats(); st.RecoverPath != "checkpoint" || st.TailRecordsReplayed != int64(res.TailEvents) || st.LastCheckpointSeq != 3 {
		t.Fatalf("revived stats = %+v", st)
	}
	if _, err := lg2.Append([]Event{{Op: AddArc, U: 3, V: 1, T: 2}}); err != nil {
		t.Fatal(err)
	}
	lg2.CompactNow()
	if n, err := lg2.CheckpointNow(); err != nil || n == 0 {
		t.Fatalf("post-restart CheckpointNow = (%d, %v)", n, err)
	}
	ck, err := egio.OpenCheckpoint(ckptPath)
	if err != nil {
		t.Fatal(err)
	}
	defer ck.Close()
	if ck.Info.WALSeq != uint64(len(batches))+1 {
		t.Fatalf("post-restart coverage = %d, want %d", ck.Info.WALSeq, len(batches)+1)
	}
	assertGraphsIdentical(t, ck.Graph, Fold(egraph.Figure1Graph(),
		append(flatten(batches), Event{Op: AddArc, U: 3, V: 1, T: 2})))
}

// TestLogCheckpointStallHooks: the fault-injection stalls delay the
// write visibly — the window the CI soak SIGKILLs inside — without
// changing the result.
func TestLogCheckpointStallHooks(t *testing.T) {
	dir := t.TempDir()
	wal, _, err := OpenWAL(filepath.Join(dir, "w.wal"), WALOptions{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	ckptPath := filepath.Join(dir, "w.ckpt")
	cfg := ckptLogConfig(wal, ckptPath, t)
	cfg.CheckpointStallWrite = 30 * time.Millisecond
	cfg.CheckpointStallRename = 30 * time.Millisecond
	lg, err := New(newFakePub(egraph.Figure1Graph()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer lg.Close()
	if _, err := lg.Append([]Event{{Op: AddArc, U: 2, V: 0, T: 1}}); err != nil {
		t.Fatal(err)
	}
	lg.CompactNow()
	start := time.Now()
	n, err := lg.CheckpointNow()
	if err != nil || n == 0 {
		t.Fatalf("CheckpointNow = (%d, %v)", n, err)
	}
	if elapsed := time.Since(start); elapsed < 60*time.Millisecond {
		t.Fatalf("stalled checkpoint took %s, want ≥60ms", elapsed)
	}
	ck, err := egio.OpenCheckpoint(ckptPath)
	if err != nil {
		t.Fatal(err)
	}
	ck.Close()
}

// TestCheckpointFsyncFailureFallsBack (DESIGN.md §17): an injected
// fsync failure while writing checkpoint generation 2 must abort the
// temp-file write before the rename, leaving generation 1 intact on
// disk; the failure is counted but never poisons the write path; and
// recovery boots from generation 1 plus the WAL tail, bit-identical to
// a full replay.
func TestCheckpointFsyncFailureFallsBack(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "w.wal")
	wal, _, err := OpenWAL(walPath, WALOptions{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	ckptPath := filepath.Join(dir, "w.ckpt")
	cfg := ckptLogConfig(wal, ckptPath, t)
	// after=1: generation 1 fsyncs clean, every later attempt fails.
	cfg.Faults = fault.Must("seed 1\nckpt.fsync error=io after=1")
	lg, err := New(newFakePub(egraph.Figure1Graph()), cfg)
	if err != nil {
		t.Fatal(err)
	}

	batches := [][]Event{
		{{Op: AddArc, U: 2, V: 10, T: 1}},
		{{Op: AddArc, U: 2, V: 11, T: 1}},
		{{Op: AddArc, U: 2, V: 12, T: 1}},
	}
	append1 := func(b []Event) {
		t.Helper()
		if _, err := lg.Append(b); err != nil {
			t.Fatalf("Append: %v", err)
		}
		lg.CompactNow()
	}

	append1(batches[0])
	if _, err := lg.CheckpointNow(); err != nil {
		t.Fatalf("generation 1 checkpoint: %v", err)
	}
	append1(batches[1])
	if _, err := lg.CheckpointNow(); err == nil {
		t.Fatal("generation 2 checkpoint succeeded despite the injected fsync failure")
	}
	st := lg.Stats()
	if st.Checkpoints != 1 || st.CheckpointErrors == 0 {
		t.Fatalf("stats after failed generation 2: %+v, want 1 checkpoint and counted errors", st)
	}
	// Checkpoint failures never poison the pipeline: the WAL remains
	// the source of truth and appends keep landing.
	append1(batches[2])
	if deg, _ := lg.Degraded(); deg {
		t.Fatal("checkpoint failure degraded the write path; only WAL failures may")
	}
	lg.Close() // its final checkpoint attempt also fails; Close must still release everything

	// Generation 1 is intact on disk: the aborted write never renamed.
	ck, err := egio.OpenCheckpoint(ckptPath)
	if err != nil {
		t.Fatalf("OpenCheckpoint after failed generation 2: %v", err)
	}
	if ck.Info.WALSeq != 1 {
		t.Fatalf("on-disk coverage = %d, want 1 (generation 1)", ck.Info.WALSeq)
	}
	ck.Close()

	// Recovery boots from generation 1 + the two-tail-batch replay.
	res, err := Recover(RecoverConfig{
		WALPath:        walPath,
		WALOptions:     WALOptions{Policy: SyncAlways},
		CheckpointPath: ckptPath,
		Base:           figBase,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	defer res.WAL.Close()
	defer res.CloseCheckpoint()
	if res.Path != "checkpoint" || res.CheckpointSeq != 1 || res.TailBatches != 2 {
		t.Fatalf("recovery path %q seq %d tail %d, want checkpoint/1/2", res.Path, res.CheckpointSeq, res.TailBatches)
	}
	assertGraphsIdentical(t, res.Graph, Fold(egraph.Figure1Graph(), flatten(batches)))
}
