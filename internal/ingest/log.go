package ingest

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/egio"
	"repro/internal/egraph"
	"repro/internal/fault"
	"repro/internal/inc"
	"repro/internal/obs"
)

// Publisher is the read/write seam between the ingest pipeline and the
// serving layer: the compactor folds the pending delta onto Graph()
// and publishes the result through ReplaceGraph, which bumps the graph
// revision and invalidates the versioned result cache.
// internal/server.Server implements it. The Log must be the only
// ReplaceGraph caller for the Publisher it owns — a concurrent
// replacer would race the fold's read-modify-write.
type Publisher interface {
	Graph() *egraph.IntEvolvingGraph
	ReplaceGraph(*egraph.IntEvolvingGraph) uint64
}

// Config tunes a Log. The zero value is a WAL-less in-memory pipeline
// with defaults sized for a single serving process.
type Config struct {
	// WAL, when non-nil, makes appends durable: a batch is logged and
	// committed before it is acknowledged. The Log takes ownership and
	// closes it in Close.
	WAL *WAL
	// CompactEvery folds the pending delta once it holds this many
	// events (default 4096).
	CompactEvery int
	// CompactInterval folds any pending delta at least this often, so
	// a trickle of writes still reaches the served graph promptly
	// (default 2s).
	CompactInterval time.Duration
	// MaxPending bounds the pending delta; Append returns
	// ErrBackpressure beyond it (default 65536).
	MaxPending int
	// MaxNodeID rejects arc endpoints above it, bounding the dense
	// node universe a hostile or buggy client can force the fold to
	// allocate (default 1<<24 - 1).
	MaxNodeID int32
	// ExtraLabels pre-registers time labels beyond the base graph's
	// own — after a WAL recovery these are the labels the event stream
	// mentioned, which the folded graph may no longer carry (a stamp
	// whose arcs were all removed, or an AddStamp with no arcs yet).
	ExtraLabels []int64
	// Analytics, when non-nil, maintains whole-graph analytics (weak
	// components, temporal Katz) incrementally across epochs: the
	// compactor hands the Maintainer the same resolved deltas it hands
	// the fold, and publishes the maintained results alongside each
	// epoch's graph when the Publisher supports it (AnalyticsPublisher;
	// internal/server.Server does). New primes the Maintainer on the
	// base graph — a one-time full recompute.
	Analytics *inc.Maintainer
	// CheckpointPath, when non-empty, makes the compactor persist
	// mmap-able checkpoints of the published graph (DESIGN.md §14):
	// after an epoch once CheckpointEvery epochs have accumulated, or
	// whenever CheckpointInterval has passed since the last one and new
	// batches were folded. A restart then boots through Recover — mmap
	// + tail fold — instead of a full WAL replay. Checkpoint failures
	// are counted and logged but never poison the pipeline: the WAL
	// remains the source of truth.
	CheckpointPath string
	// CheckpointEvery is the epoch budget between checkpoints
	// (default 8).
	CheckpointEvery int
	// CheckpointInterval is the time budget between checkpoints
	// (default 60s).
	CheckpointInterval time.Duration
	// CheckpointStallWrite/CheckpointStallRename forward to the
	// writer's fault-injection hooks; the CI soak SIGKILLs the server
	// inside these windows to prove a torn checkpoint is survivable.
	// Zero in production. They predate internal/fault and remain as
	// the flag-level spelling; Faults generalises them.
	CheckpointStallWrite  time.Duration
	CheckpointStallRename time.Duration
	// Faults, when non-nil, arms the checkpoint writer's injection
	// sites (ckpt.write / ckpt.fsync / ckpt.rename). The WAL's own
	// sites are armed through WALOptions.Faults when the WAL is
	// opened; pass the same injector to both so one scenario drives
	// the whole write path.
	Faults *fault.Injector
	// LastCheckpointSeq seeds the coverage cursor when the process
	// booted from a checkpoint: sequences below it are already covered
	// on disk, so the first write is deferred until coverage advances.
	LastCheckpointSeq uint64
	// RecoverPath and TailRecordsReplayed describe how this process
	// recovered ("checkpoint" or "replay"); they flow through Stats to
	// /ingest/stats and /metrics.
	RecoverPath         string
	TailRecordsReplayed int
	// UseFullRebuild routes every epoch through the full Fold rebuild
	// (replay all of base through a Builder) instead of the incremental
	// copy-on-write Patch. Patch and Fold produce equivalent graphs —
	// egbench's compact suite races them with a bit-identical-CSR
	// assertion — so this is the differential oracle of the write path,
	// the same engine-race pattern the traversal and analytics layers
	// use (DESIGN.md §12).
	UseFullRebuild bool
	// Logf receives operational log lines (default log.Printf).
	Logf func(format string, args ...interface{})
	// Registry, when non-nil, receives the pipeline's stage-level
	// latency histograms (eg_epoch_stage_seconds, labeled by stage:
	// wal, fold, csr, analytics, checkpoint, visible — DESIGN.md §16).
	// Share the serving layer's registry so one /metrics.prom scrape
	// covers the whole process. Register at most one Log per Registry.
	Registry *obs.Registry
}

// Stats is a point-in-time snapshot of the pipeline counters, served
// by /ingest/stats and folded into /metrics.
type Stats struct {
	AppendedBatches  int64 `json:"appendedBatches"`
	AppendedEvents   int64 `json:"appendedEvents"`
	RejectedBatches  int64 `json:"rejectedBatches"`  // validation failures
	ThrottledBatches int64 `json:"throttledBatches"` // backpressure drops
	ThrottledEvents  int64 `json:"throttledEvents"`
	PendingEvents    int64 `json:"pendingEvents"` // buffered, not yet folded
	Epochs           int64 `json:"epochs"`        // compactions published
	CompactedEvents  int64 `json:"compactedEvents"`
	// PatchEpochs/FullRebuildEpochs split Epochs by fold path: the
	// incremental copy-on-write Patch (the default) vs the full Builder
	// replay (Config.UseFullRebuild, the differential oracle).
	PatchEpochs       int64   `json:"patchEpochs"`
	FullRebuildEpochs int64   `json:"fullRebuildEpochs"`
	LastCompactMs     float64 `json:"lastCompactMs"`
	TotalCompactMs    float64 `json:"totalCompactMs"`
	// LastCSRBuildMs is the slice of the last epoch spent prebuilding
	// the new snapshot's flat CSR view (parallel, into a recycled arena
	// when one was banked) before publishing it.
	LastCSRBuildMs float64 `json:"lastCsrBuildMs"`
	// LastAnalyticsMs is the slice of the last epoch spent rolling the
	// incremental analytics forward (Config.Analytics); Analytics
	// breaks down how many epochs each analytic absorbed incrementally
	// vs recomputed.
	LastAnalyticsMs float64    `json:"lastAnalyticsMs,omitempty"`
	Analytics       *inc.Stats `json:"analytics,omitempty"`
	// LastVisibleMs / MaxVisibleMs report ingest-to-visible latency:
	// the age of the oldest event in an epoch at the moment its fold
	// was published — how stale an acknowledged write can get before
	// readers observe it.
	LastVisibleMs float64   `json:"lastVisibleMs"`
	MaxVisibleMs  float64   `json:"maxVisibleMs"`
	WAL           *WALStats `json:"wal,omitempty"`
	// Checkpoint counters (Config.CheckpointPath): how many were
	// written, how the last one went, and which WAL sequence the
	// newest on-disk checkpoint covers.
	Checkpoints       int64   `json:"checkpoints,omitempty"`
	CheckpointErrors  int64   `json:"checkpointErrors,omitempty"`
	LastCheckpointMs  float64 `json:"lastCheckpointMs,omitempty"`
	CheckpointBytes   int64   `json:"checkpointBytes,omitempty"`
	LastCheckpointSeq uint64  `json:"lastCheckpointSeq,omitempty"`
	// RecoverPath/TailRecordsReplayed report how this process booted:
	// "checkpoint" (mmap + tail fold of TailRecordsReplayed WAL
	// records) or "replay" (full fold).
	RecoverPath         string `json:"recoverPath,omitempty"`
	TailRecordsReplayed int64  `json:"tailRecordsReplayed,omitempty"`
	// Degraded/DegradedReason report the read-only degraded state: a
	// WAL failure halted the write path while reads keep serving.
	Degraded       bool   `json:"degraded,omitempty"`
	DegradedReason string `json:"degradedReason,omitempty"`
}

// Log is the mutation API of the live query service: validated,
// sequence-numbered batches of events flow through an optional WAL
// into a pending delta that a background epoch compactor folds into
// fresh immutable graphs. Construct with New; all methods are safe for
// concurrent use.
type Log struct {
	pub Publisher
	cfg Config
	wal *WAL

	mu       sync.Mutex
	pending  []pendingBatch // sorted by seq; may have transient gaps
	pendingN int            // total events across pending
	labels   map[int64]struct{}
	seq      uint64 // next batch sequence when no WAL assigns one
	foldNext uint64 // first sequence number the compactor may fold
	closed   bool
	poisoned bool
	degraded string    // why the log poisoned itself ("" while healthy)
	stopOnce sync.Once // stops the compactor exactly once

	// foldMu serialises fold+publish between the background compactor
	// and CompactNow.
	foldMu sync.Mutex

	kick chan struct{}
	quit chan struct{}
	done chan struct{}

	// arena banks the recycled flat-CSR buffers of the last retired
	// snapshot; owned tracks the graphs this log published and still
	// expects a retirement notification for. Both are populated only
	// when the Publisher supports unpin notification (RetireNotifier).
	arenaMu sync.Mutex
	arena   *egraph.CSRArena
	owned   map[*egraph.IntEvolvingGraph]struct{}

	// Checkpoint policy state, guarded by foldMu (writes happen only
	// inside a fold slot or a forced CheckpointNow/Close).
	ckptEpochs  int
	lastCkptAt  time.Time
	lastCkptSeq uint64

	appendedBatches  atomic.Int64
	appendedEvents   atomic.Int64
	rejectedBatches  atomic.Int64
	throttledBatches atomic.Int64
	throttledEvents  atomic.Int64
	epochs           atomic.Int64
	patchEpochs      atomic.Int64
	fullEpochs       atomic.Int64
	compactedEvents  atomic.Int64
	lastCompactNS    atomic.Int64
	totalCompactNS   atomic.Int64
	lastCSRBuildNS   atomic.Int64
	lastAnalyticsNS  atomic.Int64
	lastVisibleNS    atomic.Int64
	maxVisibleNS     atomic.Int64

	checkpoints       atomic.Int64
	checkpointErrs    atomic.Int64
	lastCheckpointNS  atomic.Int64
	checkpointBytes   atomic.Int64
	lastCheckpointSeq atomic.Uint64

	// stage is the per-stage epoch timing histogram family; always
	// non-nil (an obs vec without a registry records into the void), so
	// the hot paths never nil-check.
	stage *obs.HistogramVec
}

// AnalyticsPublisher is the optional half of the Publisher seam for
// incrementally maintained analytics: a Publisher that can serve
// maintained results alongside the graph (internal/server.Server)
// receives each epoch's inc.Results with the snapshot swap, plus the
// primed results at startup without a revision bump.
type AnalyticsPublisher interface {
	Publisher
	ReplaceGraphWithAnalytics(*egraph.IntEvolvingGraph, *inc.Results) uint64
	PublishAnalytics(*inc.Results)
}

// RetireNotifier is the optional half of the Publisher seam backing
// arena reuse: a Publisher that can prove a replaced graph has no
// remaining readers (internal/server pin-tracks requests per epoch)
// reports it through the registered callback, and the Log recycles
// that snapshot's flat-CSR buffers into the next epoch's rebuild. A
// Publisher without it simply leaves every build allocating fresh.
type RetireNotifier interface {
	NotifyRetired(fn func(*egraph.IntEvolvingGraph))
}

// New builds a Log over pub and starts its epoch compactor. Close it
// to stop the compactor (and close the WAL, when one is configured).
func New(pub Publisher, cfg Config) (*Log, error) {
	if pub == nil {
		return nil, fmt.Errorf("ingest: nil publisher")
	}
	if cfg.CompactEvery <= 0 {
		cfg.CompactEvery = 4096
	}
	if cfg.CompactInterval <= 0 {
		cfg.CompactInterval = 2 * time.Second
	}
	if cfg.MaxPending <= 0 {
		cfg.MaxPending = 1 << 16
	}
	if cfg.MaxNodeID <= 0 {
		cfg.MaxNodeID = 1<<24 - 1
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 8
	}
	if cfg.CheckpointInterval <= 0 {
		cfg.CheckpointInterval = 60 * time.Second
	}
	l := &Log{
		pub:    pub,
		cfg:    cfg,
		wal:    cfg.WAL,
		labels: make(map[int64]struct{}),
		kick:   make(chan struct{}, 1),
		quit:   make(chan struct{}),
		done:   make(chan struct{}),
		stage: cfg.Registry.Histogram("eg_epoch_stage_seconds",
			"Per-stage epoch pipeline timings: wal (append+fsync per batch), fold (Patch/Fold), csr (flat view build), analytics (inc maintenance), checkpoint (EGCP write), visible (oldest write's ingest-to-visible).",
			"stage"),
	}
	for _, t := range pub.Graph().TimeLabels() {
		l.labels[t] = struct{}{}
	}
	for _, t := range cfg.ExtraLabels {
		l.labels[t] = struct{}{}
	}
	if l.wal != nil {
		// Sequence numbers continue from the recovered log; the
		// recovered prefix is already folded into the base graph.
		l.foldNext = l.wal.NextSeq()
	}
	l.lastCkptAt = time.Now()
	l.lastCkptSeq = cfg.LastCheckpointSeq
	l.lastCheckpointSeq.Store(cfg.LastCheckpointSeq)
	if rn, ok := pub.(RetireNotifier); ok {
		l.owned = make(map[*egraph.IntEvolvingGraph]struct{})
		rn.NotifyRetired(l.graphRetired)
	}
	if cfg.Analytics != nil {
		// One-time full recompute on the base graph; every epoch after
		// this rolls forward incrementally.
		res := cfg.Analytics.Prime(pub.Graph())
		if ap, ok := pub.(AnalyticsPublisher); ok {
			ap.PublishAnalytics(res)
		}
	}
	go l.run()
	return l, nil
}

// graphRetired is the unpin callback: the Publisher guarantees g has no
// remaining readers, so if g is a snapshot this log published, its flat
// CSR buffers are safe to recycle into the next epoch's build. Graphs
// the log did not create (the seed base, or anything a caller swapped
// in directly) are never touched — the caller may still hold them.
func (l *Log) graphRetired(g *egraph.IntEvolvingGraph) {
	l.arenaMu.Lock()
	defer l.arenaMu.Unlock()
	if _, ok := l.owned[g]; !ok {
		return
	}
	delete(l.owned, g)
	if l.arena == nil {
		l.arena = g.RecycleCSR()
	}
}

// pendingBatch is one accepted batch awaiting its epoch fold. Batches
// fold strictly in sequence order: a batch enters pending only after
// its WAL commit, so the compactor can never publish events the log
// does not durably hold.
type pendingBatch struct {
	seq    uint64
	events []Event
	at     time.Time // buffered (≈ acknowledged); feeds ingest-to-visible latency
}

// Append validates events as one atomic batch, makes it durable (when
// a WAL is configured), buffers it for the next epoch and returns its
// sequence number. It never touches the served graph: readers keep the
// current snapshot until the compactor publishes the next one.
func (l *Log) Append(events []Event) (seq uint64, err error) {
	if len(events) == 0 {
		return 0, fmt.Errorf("ingest: empty batch")
	}
	l.mu.Lock()
	if l.closed {
		poisoned := l.poisoned
		l.mu.Unlock()
		if poisoned {
			return 0, ErrDegraded
		}
		return 0, ErrClosed
	}
	if l.pendingN+len(events) > l.cfg.MaxPending {
		l.throttledBatches.Add(1)
		l.throttledEvents.Add(int64(len(events)))
		l.mu.Unlock()
		return 0, ErrBackpressure
	}
	newLabels, err := l.validateLocked(events)
	if err != nil {
		l.rejectedBatches.Add(1)
		l.mu.Unlock()
		return 0, err
	}
	walStart := time.Now()
	if l.wal != nil {
		seq, err = l.wal.Append(events)
		if err != nil {
			// The WAL is sticky-failed; accepting more writes would let
			// the served state run ahead of the log.
			l.mu.Unlock()
			l.poison(err)
			return 0, fmt.Errorf("%w: %v", ErrDegraded, err)
		}
	} else {
		seq = l.seq
		l.seq++
	}
	// Labels register before the commit: a concurrent batch may cite
	// them, and if this batch's commit fails the whole log halts, so
	// no arc referencing the label can ever be served without it.
	for _, t := range newLabels {
		l.labels[t] = struct{}{}
	}
	l.mu.Unlock()

	// Durability before visibility: the batch joins the foldable delta
	// only after its WAL commit, so even a fold racing this append can
	// never publish a snapshot containing an unfsynced write.
	if l.wal != nil {
		if err := l.wal.Commit(seq); err != nil {
			l.poison(err)
			return seq, fmt.Errorf("%w: %v", ErrDegraded, err)
		}
		l.stage.With("wal").Observe(time.Since(walStart).Nanoseconds())
	}

	l.mu.Lock()
	if l.closed {
		// The pipeline halted while this batch was committing. With a
		// WAL the batch is durable — recovery will serve it — so the
		// append stands; without one there is nothing to recover from,
		// so the caller must not believe the write landed.
		l.mu.Unlock()
		if l.wal == nil {
			return 0, ErrClosed
		}
		return seq, nil
	}
	l.insertPendingLocked(pendingBatch{seq: seq, events: events})
	npend := l.pendingN
	l.mu.Unlock()

	l.appendedBatches.Add(1)
	l.appendedEvents.Add(int64(len(events)))
	if npend >= l.cfg.CompactEvery {
		select {
		case l.kick <- struct{}{}:
		default:
		}
	}
	return seq, nil
}

// insertPendingLocked places b into the seq-sorted pending list (l.mu
// held). Concurrent appenders commit out of order, so an insert may
// back-fill a gap before already-buffered higher sequences.
func (l *Log) insertPendingLocked(b pendingBatch) {
	b.at = time.Now()
	i := len(l.pending)
	for i > 0 && l.pending[i-1].seq > b.seq {
		i--
	}
	l.pending = append(l.pending, pendingBatch{})
	copy(l.pending[i+1:], l.pending[i:])
	l.pending[i] = b
	l.pendingN += len(b.events)
}

// poison halts the write path after a WAL failure: the durability of
// recent writes is unknown, so nothing further may be acknowledged or
// published. Appends fail with ErrDegraded and the compactor stops
// without folding the buffered delta — its batches are durable in the
// WAL (they committed before entering pending) and will be served
// after a restart's recovery replay, but publishing them now could
// order them around the failed write. The served graph freezes at the
// last published revision; reads continue. cause is recorded and
// surfaces through Degraded / Stats / the eg_degraded gauge.
func (l *Log) poison(cause error) {
	l.mu.Lock()
	l.closed = true
	l.poisoned = true
	if l.degraded == "" && cause != nil {
		l.degraded = cause.Error()
	}
	l.pending = nil
	l.pendingN = 0
	l.mu.Unlock()
	l.stopOnce.Do(func() {
		close(l.quit)
		<-l.done
	})
	l.cfg.Logf("ingest: WAL failure poisoned the log; write path halted (reads continue on the last published snapshot): %v", cause)
}

// Degraded reports whether a WAL failure has halted the write path,
// and why. A degraded log is read-only-degraded, not dead: the served
// graph stays up on the last published revision, /healthz reports the
// state, and writes are rejected with ErrDegraded (503 over HTTP).
func (l *Log) Degraded() (bool, string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.poisoned, l.degraded
}

// validateLocked checks the batch as a unit against the label/node
// universe (l.mu held) and returns the labels the batch introduces.
// Within a batch, an AddStamp makes its label valid for later events
// of the same batch — the natural "open a stamp, fill it" idiom.
func (l *Log) validateLocked(events []Event) ([]int64, error) {
	var newLabels []int64
	batch := make(map[int64]struct{})
	known := func(t int64) bool {
		if _, ok := l.labels[t]; ok {
			return true
		}
		_, ok := batch[t]
		return ok
	}
	for i, e := range events {
		switch e.Op {
		case AddArc, RemoveArc:
			if e.U < 0 || e.V < 0 || e.U > l.cfg.MaxNodeID || e.V > l.cfg.MaxNodeID {
				return nil, fmt.Errorf("ingest: event %d: node out of range [0, %d]: %d→%d", i, l.cfg.MaxNodeID, e.U, e.V)
			}
			if e.U == e.V {
				return nil, fmt.Errorf("ingest: event %d: self-loop %d→%d rejected (a self-loop never activates a node, Def. 3)", i, e.U, e.V)
			}
			if !known(e.T) {
				return nil, fmt.Errorf("ingest: event %d: unknown time label %d (AddStamp it first)", i, e.T)
			}
		case AddStamp:
			if !known(e.T) {
				batch[e.T] = struct{}{}
				newLabels = append(newLabels, e.T)
			}
		default:
			return nil, fmt.Errorf("ingest: event %d: unknown op %d", i, e.Op)
		}
	}
	return newLabels, nil
}

// run is the epoch compactor: fold the pending delta on a size kick or
// an interval tick, whichever comes first, and once more on shutdown.
func (l *Log) run() {
	defer close(l.done)
	t := time.NewTicker(l.cfg.CompactInterval)
	defer t.Stop()
	for {
		select {
		case <-l.quit:
			l.CompactNow()
			return
		case <-l.kick:
		case <-t.C:
		}
		l.CompactNow()
	}
}

// CompactNow synchronously folds the pending delta into a fresh graph
// and publishes it, returning the number of events folded. Batches
// fold strictly in sequence order: if an appender has committed seq N+1
// but seq N is still mid-commit, both wait for the next epoch — fold
// order must match WAL replay order or recovery could disagree with
// what was served. The background compactor calls CompactNow on its
// own schedule; tests and shutdown paths call it to make the served
// graph catch up immediately.
func (l *Log) CompactNow() int {
	l.foldMu.Lock()
	defer l.foldMu.Unlock()
	l.mu.Lock()
	var events []Event
	var oldest time.Time
	n := 0
	for n < len(l.pending) && l.pending[n].seq == l.foldNext+uint64(n) {
		if n == 0 {
			oldest = l.pending[0].at
		}
		events = append(events, l.pending[n].events...)
		n++
	}
	if n > 0 {
		l.foldNext += uint64(n)
		l.pending = append(l.pending[:0:0], l.pending[n:]...)
		l.pendingN -= len(events)
	}
	l.mu.Unlock()
	if len(events) == 0 {
		// Still give the interval-based checkpoint policy a chance: a
		// server that replayed a long WAL at boot but sees no writes
		// should persist that work instead of replaying it again on the
		// next restart.
		l.maybeCheckpoint(false, false)
		return 0
	}
	start := time.Now()
	base := l.pub.Graph()
	var g *egraph.IntEvolvingGraph
	path := "patched"
	if l.cfg.UseFullRebuild {
		g = Fold(base, events)
		l.fullEpochs.Add(1)
		path = "full-rebuilt"
	} else {
		g = Patch(base, events)
		l.patchEpochs.Add(1)
	}
	l.stage.With("fold").Observe(time.Since(start).Nanoseconds())
	if g == base {
		// Every event was structurally a no-op (pure stamp
		// registrations, removals of absent arcs): the served graph is
		// unchanged, and republishing it would only invalidate the
		// result cache — and worse, retire-and-recycle the snapshot
		// still being served. Labels were registered at append time.
		l.epochs.Add(1)
		l.compactedEvents.Add(int64(len(events)))
		// Coverage still advanced (the no-op batches are in the WAL), so
		// the checkpoint policy runs: persisting the same graph under a
		// higher sequence shrinks the tail a restart must refold.
		l.maybeCheckpoint(true, false)
		return len(events)
	}
	// Prebuild the flat CSR view off the request path — parallel, and
	// into the retired snapshot's recycled buffers when the Publisher
	// has reported the previous-but-one revision unpinned — so the
	// first query after the swap pays nothing.
	csrStart := time.Now()
	l.arenaMu.Lock()
	arena := l.arena
	l.arena = nil
	l.arenaMu.Unlock()
	g.EnsureCSR(egraph.CSRBuildOptions{Arena: arena, OnBuilt: func(d time.Duration) {
		l.stage.With("csr").Observe(d.Nanoseconds())
	}})
	l.lastCSRBuildNS.Store(time.Since(csrStart).Nanoseconds())
	l.arenaMu.Lock()
	if l.owned != nil {
		l.owned[g] = struct{}{}
	}
	l.arenaMu.Unlock()
	// Roll the maintained analytics forward over the same delta the fold
	// consumed, and publish graph and results in one snapshot swap when
	// the Publisher can carry both.
	var res *inc.Results
	if l.cfg.Analytics != nil {
		aStart := time.Now()
		res = l.cfg.Analytics.Apply(base, g, Deltas(events))
		d := time.Since(aStart)
		l.lastAnalyticsNS.Store(d.Nanoseconds())
		l.stage.With("analytics").Observe(d.Nanoseconds())
	}
	var rev uint64
	if ap, ok := l.pub.(AnalyticsPublisher); ok && res != nil {
		rev = ap.ReplaceGraphWithAnalytics(g, res)
	} else {
		rev = l.pub.ReplaceGraph(g)
	}
	dur := time.Since(start)
	visible := time.Since(oldest)
	l.stage.With("visible").Observe(visible.Nanoseconds())
	l.epochs.Add(1)
	l.compactedEvents.Add(int64(len(events)))
	l.lastCompactNS.Store(dur.Nanoseconds())
	l.totalCompactNS.Add(dur.Nanoseconds())
	l.lastVisibleNS.Store(visible.Nanoseconds())
	for {
		max := l.maxVisibleNS.Load()
		if visible.Nanoseconds() <= max || l.maxVisibleNS.CompareAndSwap(max, visible.Nanoseconds()) {
			break
		}
	}
	l.cfg.Logf("ingest: epoch %d: %s %d events in %s (csr %s), published revision %d (%d nodes, %d stamps, oldest write visible after %s)",
		l.epochs.Load(), path, len(events), dur.Round(time.Microsecond),
		time.Duration(l.lastCSRBuildNS.Load()).Round(time.Microsecond), rev,
		g.NumNodes(), g.NumStamps(), visible.Round(time.Millisecond))
	l.maybeCheckpoint(true, false)
	return len(events)
}

// maybeCheckpoint runs the checkpoint policy at the end of a fold
// slot. Callers must hold foldMu: the policy state is foldMu-guarded,
// and holding the fold slot pins pub.Graph() to exactly the graph that
// covers foldNext — the pair the checkpoint persists. epochDone spends
// one epoch of the CheckpointEvery budget; force ignores both budgets
// (but never writes when nothing new is covered, and never on a
// poisoned log, whose served graph may lag its WAL).
func (l *Log) maybeCheckpoint(epochDone, force bool) (int64, error) {
	if l.cfg.CheckpointPath == "" {
		return 0, nil
	}
	if epochDone {
		l.ckptEpochs++
	}
	l.mu.Lock()
	seq := l.foldNext
	poisoned := l.poisoned
	l.mu.Unlock()
	if poisoned || seq <= l.lastCkptSeq {
		return 0, nil
	}
	if !force && l.ckptEpochs < l.cfg.CheckpointEvery && time.Since(l.lastCkptAt) < l.cfg.CheckpointInterval {
		return 0, nil
	}
	start := time.Now()
	g := l.pub.Graph()
	l.mu.Lock()
	labels := make([]int64, 0, len(l.labels))
	for t := range l.labels {
		labels = append(labels, t)
	}
	l.mu.Unlock()
	n, err := egio.WriteCheckpoint(l.cfg.CheckpointPath, g, egio.CheckpointMeta{
		WALSeq:      seq,
		Labels:      labels,
		StallWrite:  l.cfg.CheckpointStallWrite,
		StallRename: l.cfg.CheckpointStallRename,
		Faults:      l.cfg.Faults,
	})
	if err != nil {
		l.checkpointErrs.Add(1)
		l.cfg.Logf("ingest: checkpoint %s failed (will retry next epoch): %v", l.cfg.CheckpointPath, err)
		return 0, err
	}
	dur := time.Since(start)
	l.ckptEpochs = 0
	l.lastCkptAt = time.Now()
	l.lastCkptSeq = seq
	l.checkpoints.Add(1)
	l.lastCheckpointNS.Store(dur.Nanoseconds())
	l.stage.With("checkpoint").Observe(dur.Nanoseconds())
	l.checkpointBytes.Store(n)
	l.lastCheckpointSeq.Store(seq)
	l.cfg.Logf("ingest: checkpoint %s: seq %d, %d bytes in %s",
		l.cfg.CheckpointPath, seq, n, dur.Round(time.Millisecond))
	return n, nil
}

// CheckpointNow synchronously writes a checkpoint covering everything
// folded so far, regardless of the epoch/interval budgets. It returns
// (0, nil) when there is nothing new to cover. POST /ingest/checkpoint
// calls it; so does Close, so a clean shutdown always leaves a
// full-coverage checkpoint behind.
func (l *Log) CheckpointNow() (int64, error) {
	if l.cfg.CheckpointPath == "" {
		return 0, fmt.Errorf("ingest: no checkpoint path configured")
	}
	l.foldMu.Lock()
	defer l.foldMu.Unlock()
	return l.maybeCheckpoint(false, true)
}

// Close stops the compactor after a final fold of any pending delta,
// then closes the WAL. Subsequent Appends return ErrClosed. Close is
// idempotent and also reclaims a poisoned log's compactor and WAL
// handle (the poison path halts the pipeline but leaves the file open
// for Close to release).
func (l *Log) Close() error {
	l.mu.Lock()
	l.closed = true
	l.mu.Unlock()
	l.stopOnce.Do(func() {
		close(l.quit)
		<-l.done
	})
	if l.cfg.CheckpointPath != "" {
		// The final fold above advanced coverage past the last periodic
		// checkpoint; persist it so the next boot replays no tail at
		// all. Failure is non-fatal — recovery falls back to the WAL.
		l.foldMu.Lock()
		l.maybeCheckpoint(false, true)
		l.foldMu.Unlock()
	}
	if l.wal != nil {
		return l.wal.Close()
	}
	return nil
}

// Stats snapshots the pipeline counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	pending := l.pendingN
	degraded, reason := l.poisoned, l.degraded
	l.mu.Unlock()
	s := Stats{
		AppendedBatches:   l.appendedBatches.Load(),
		AppendedEvents:    l.appendedEvents.Load(),
		RejectedBatches:   l.rejectedBatches.Load(),
		ThrottledBatches:  l.throttledBatches.Load(),
		ThrottledEvents:   l.throttledEvents.Load(),
		PendingEvents:     int64(pending),
		Epochs:            l.epochs.Load(),
		PatchEpochs:       l.patchEpochs.Load(),
		FullRebuildEpochs: l.fullEpochs.Load(),
		CompactedEvents:   l.compactedEvents.Load(),
		LastCompactMs:     float64(l.lastCompactNS.Load()) / 1e6,
		TotalCompactMs:    float64(l.totalCompactNS.Load()) / 1e6,
		LastCSRBuildMs:    float64(l.lastCSRBuildNS.Load()) / 1e6,
		LastAnalyticsMs:   float64(l.lastAnalyticsNS.Load()) / 1e6,
		LastVisibleMs:     float64(l.lastVisibleNS.Load()) / 1e6,
		MaxVisibleMs:      float64(l.maxVisibleNS.Load()) / 1e6,
		Checkpoints:       l.checkpoints.Load(),
		CheckpointErrors:  l.checkpointErrs.Load(),
		LastCheckpointMs:  float64(l.lastCheckpointNS.Load()) / 1e6,
		CheckpointBytes:   l.checkpointBytes.Load(),
		LastCheckpointSeq: l.lastCheckpointSeq.Load(),
		RecoverPath:       l.cfg.RecoverPath,
		Degraded:          degraded,
		DegradedReason:    reason,
	}
	s.TailRecordsReplayed = int64(l.cfg.TailRecordsReplayed)
	if l.cfg.Analytics != nil {
		as := l.cfg.Analytics.Stats()
		s.Analytics = &as
	}
	if l.wal != nil {
		ws := l.wal.Stats()
		s.WAL = &ws
	}
	return s
}

// arcKey identifies one arc of the folded delta; undirected arcs are
// canonicalised with u < v so (u,v) and (v,u) collide.
type arcKey struct {
	u, v int32
	t    int64
}

// Fold applies events (in order, last op per arc wins) to base and
// builds the resulting immutable graph: base's edges minus removals
// plus additions, rebuilt through egraph.Builder so the stamp axis,
// active sets and CSR view all come out consistent. Fold is pure — it
// never mutates base — and deterministic, so replaying a WAL onto the
// same base always reproduces the same graph. Added arcs carry weight
// 1; re-adding an arc base already has keeps base's weight.
//
// Fold is O(base + events) regardless of the delta's size; the epoch
// compactor uses the delta-proportional Patch by default and keeps
// Fold as the differential oracle (Config.UseFullRebuild) and the
// recovery replay path.
func Fold(base *egraph.IntEvolvingGraph, events []Event) *egraph.IntEvolvingGraph {
	if len(events) == 0 {
		// Nothing to fold: a timer-driven epoch with no writes must not
		// pay for a delta map and a full stamp walk.
		return base
	}
	delta := make(map[arcKey]bool, len(events))
	key := func(u, v int32, t int64) arcKey {
		if !base.Directed() && u > v {
			u, v = v, u
		}
		return arcKey{u: u, v: v, t: t}
	}
	for _, e := range events {
		switch e.Op {
		case AddArc:
			delta[key(e.U, e.V, e.T)] = true
		case RemoveArc:
			delta[key(e.U, e.V, e.T)] = false
		}
	}
	var b *egraph.Builder
	if base.Weighted() {
		b = egraph.NewWeightedBuilder(base.Directed())
	} else {
		b = egraph.NewBuilder(base.Directed())
	}
	for t := 0; t < base.NumStamps(); t++ {
		label := base.TimeLabel(t)
		base.VisitEdges(int32(t), func(u, v int32, w float64) bool {
			k := key(u, v, label)
			if add, ok := delta[k]; ok {
				if !add {
					return true // removed
				}
				delete(delta, k) // re-added: keep base's weight
			}
			b.AddWeightedEdge(u, v, label, w)
			return true
		})
	}
	for k, add := range delta {
		if add {
			b.AddWeightedEdge(k.u, k.v, k.t, 1)
		}
	}
	return b.Build()
}

// Patch applies events to base through egraph.Patch, the incremental
// copy-on-write fold: only stamps the delta touches get their rows
// rebuilt, everything else is shared with base by reference. Patch and
// Fold implement the same semantics (last op per arc wins, re-adds
// keep base's weight, added arcs carry weight 1) and produce
// equivalent graphs; Patch's cost is proportional to the delta, which
// is why the epoch compactor uses it by default. Like Fold it is pure
// and deterministic; an empty or no-op event list returns base itself.
func Patch(base *egraph.IntEvolvingGraph, events []Event) *egraph.IntEvolvingGraph {
	if len(events) == 0 {
		return base
	}
	return egraph.Patch(base, Deltas(events))
}

// Deltas converts an event stream into the arc-level delta egraph.Patch
// consumes — the same list the compactor hands the incremental
// analytics maintainer, so fold and maintenance see one delta. Added
// arcs carry weight 1; AddStamp registrations carry no arc and drop
// out (labels are registered at append time).
func Deltas(events []Event) []egraph.ArcDelta {
	delta := make([]egraph.ArcDelta, 0, len(events))
	for _, e := range events {
		switch e.Op {
		case AddArc:
			delta = append(delta, egraph.ArcDelta{U: e.U, V: e.V, T: e.T, W: 1})
		case RemoveArc:
			delta = append(delta, egraph.ArcDelta{U: e.U, V: e.V, T: e.T, Del: true})
		}
	}
	return delta
}
