// Package ingest is the durable write path of the query service: it
// turns the read-only server of internal/server into a live one that
// absorbs a stream of edge events while serving reads.
//
// The paper's evolving-graph model is append-mostly — new stamps arrive
// at the end of the time axis — so the write path is built around a
// log-then-compact design rather than in-place mutation:
//
//   - Log is the mutation API. Clients submit batches of AddArc /
//     RemoveArc / AddStamp events; a batch is validated as a unit,
//     sequence-numbered, appended to the write-ahead log (when one is
//     configured), and buffered as a pending delta. Appends never touch
//     the served graph.
//   - WAL is the durability layer: length-prefixed, CRC32-checksummed
//     binary records (the same framing discipline as the egio binary
//     format and the dynadj journal) appended through a buffered
//     group-commit writer with a configurable fsync policy. Replay
//     recovers the event stream and stops cleanly at the first torn
//     record, so a crash mid-append loses at most the batch being
//     written, never the prefix.
//   - The epoch compactor is a background goroutine that every
//     CompactEvery events or CompactInterval folds the pending delta
//     into a fresh egraph.IntEvolvingGraph — Fold rebuilds the
//     immutable graph and its CSR view off the request path — and
//     publishes it through the Publisher (Server.ReplaceGraph), which
//     bumps the graph revision and invalidates every cached analytics
//     result at once.
//
// Readers therefore always see a consistent frozen snapshot; writers
// see bounded staleness of one epoch. When the compactor lags, Append
// returns ErrBackpressure and the HTTP layer surfaces 429 with a
// Retry-After. DESIGN.md §11 documents the end-to-end write path and
// its durability guarantees.
package ingest

import (
	"errors"
	"fmt"
)

// EventOp enumerates the mutation kinds a Log accepts.
type EventOp uint8

const (
	// AddArc inserts the arc U→V at the existing time label T (for
	// undirected graphs, the edge U—V). Inserting a present arc is a
	// no-op at fold time.
	AddArc EventOp = iota
	// RemoveArc deletes the arc U→V at time label T; removing a
	// missing arc is a no-op at fold time.
	RemoveArc
	// AddStamp registers the time label T so later arc events may
	// target it. A label with no arcs holds no active nodes and does
	// not materialise as a stamp in the folded graph (the same rule
	// egraph.Builder applies); re-adding a known label is a no-op.
	AddStamp
)

func (op EventOp) String() string {
	switch op {
	case AddArc:
		return "add"
	case RemoveArc:
		return "remove"
	case AddStamp:
		return "stamp"
	default:
		return fmt.Sprintf("op(%d)", uint8(op))
	}
}

// Event is one mutation of the evolving graph. T is a user-visible
// time label (the graph's int64 stamp labels), not a stamp index:
// ingestion grows the time axis, so indices are assigned at fold time.
// U and V are ignored for AddStamp.
type Event struct {
	Op EventOp
	U  int32
	V  int32
	T  int64
}

// ErrBackpressure is returned by Log.Append when the pending delta has
// reached Config.MaxPending — the compactor is lagging the write rate.
// The HTTP layer maps it to 429 with a Retry-After header; clients
// should back off and retry the same batch.
var ErrBackpressure = errors.New("ingest: pending delta full, compactor lagging")

// ErrClosed is returned by Log.Append after Close (or after a WAL
// commit failure poisoned the log: a write whose durability is unknown
// must not be followed by more writes).
var ErrClosed = errors.New("ingest: log closed")

// ErrDegraded is returned by Log.Append once a WAL failure (disk full,
// persistent fsync error) has poisoned the write path: the log is
// read-only-degraded, not crashed — the served graph freezes at the
// last published revision and reads continue. It wraps ErrClosed, so
// errors.Is(err, ErrClosed) still holds; the HTTP layer maps it to 503
// with Retry-After, and /healthz reports the degraded state.
var ErrDegraded = fmt.Errorf("%w: write path degraded after WAL failure (reads continue)", ErrClosed)
