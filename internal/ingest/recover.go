package ingest

// Recovery path selection (DESIGN.md §14). A checkpoint records the
// WAL batch sequence it covers; recovery mmaps the newest valid
// checkpoint and folds only the WAL tail past that sequence through
// the same Patch fold the live compactor uses. Any doubt about the
// checkpoint — missing file, failed validation, or a coverage claim
// the durable log cannot confirm — falls back to the seed base plus a
// full replay. Both paths produce bit-identical graphs (the torn-prefix
// property test in recover_test.go proves it for every truncation).

import (
	"fmt"
	"os"

	"repro/internal/egio"
	"repro/internal/egraph"
)

// RecoverConfig configures a checkpoint-aware recover-then-serve boot.
type RecoverConfig struct {
	// WALPath is the write-ahead log to open (created if absent); the
	// returned WAL is positioned for appending, with any torn tail
	// truncated.
	WALPath string
	// WALOptions configures fsync policy for the reopened WAL.
	WALOptions WALOptions
	// CheckpointPath, when non-empty, is tried before a full replay.
	CheckpointPath string
	// Base lazily builds the seed graph the WAL was recorded against.
	// It is only invoked on the full-replay path, so a checkpoint boot
	// never pays for (re)generating or parsing the base.
	Base func() (*egraph.IntEvolvingGraph, error)
	// Logf, when non-nil, receives one line per recovery decision.
	Logf func(format string, args ...interface{})
}

// RecoverResult is how the process came back up.
type RecoverResult struct {
	// Graph is the recovered graph, bit-identical to what a full WAL
	// replay over the base produces.
	Graph *egraph.IntEvolvingGraph
	// WAL is the reopened log, ready for new appends.
	WAL *WAL
	// Recovery is the WAL scan result (events, batches, torn-tail
	// truncation).
	Recovery *Recovery
	// Path is "checkpoint" (mmap + tail fold) or "replay" (base +
	// full fold).
	Path string
	// FallbackReason says why the checkpoint was not used when Path is
	// "replay" ("" when it was, or when no checkpoint was configured).
	FallbackReason string
	// CheckpointSeq and CheckpointBytes describe the checkpoint used.
	CheckpointSeq   uint64
	CheckpointBytes int64
	// TailBatches/TailEvents is how much of the WAL the checkpoint did
	// not cover and had to be folded at boot.
	TailBatches int
	TailEvents  int
	// ExtraLabels are the time labels a Log serving this graph must
	// register beyond the graph's own: the checkpoint's label set plus
	// every label the folded events mention.
	ExtraLabels []int64

	checkpoint *egio.Checkpoint
}

// CloseCheckpoint unmaps the backing checkpoint, if one was used. The
// recovered graph — and anything patched from it — must not be used
// afterwards; a serving process keeps the mapping for its lifetime and
// never calls this.
func (r *RecoverResult) CloseCheckpoint() error {
	if r.checkpoint == nil {
		return nil
	}
	ck := r.checkpoint
	r.checkpoint = nil
	return ck.Close()
}

// Recover opens the WAL and brings up the newest recoverable graph:
// checkpoint + tail fold when a checkpoint validates, base + full
// replay otherwise. It never fails because of checkpoint damage — a
// checkpoint is an optimization, the WAL is the source of truth.
func Recover(cfg RecoverConfig) (*RecoverResult, error) {
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...interface{}) {}
	}
	wal, rec, err := OpenWAL(cfg.WALPath, cfg.WALOptions)
	if err != nil {
		return nil, err
	}
	res := &RecoverResult{WAL: wal, Recovery: rec}
	if cfg.CheckpointPath != "" {
		ck, cerr := egio.OpenCheckpoint(cfg.CheckpointPath)
		switch {
		case cerr != nil && os.IsNotExist(cerr):
			res.FallbackReason = "no checkpoint file"
		case cerr != nil:
			// Torn, corrupt, foreign — anything short of a clean parse.
			res.FallbackReason = cerr.Error()
		case ck.Info.WALSeq > uint64(rec.Batches):
			// The checkpoint claims to cover batches the log does not
			// hold (e.g. the WAL was truncated or swapped underneath
			// it). The claim cannot be confirmed, so the checkpoint
			// cannot be trusted.
			res.FallbackReason = fmt.Sprintf("checkpoint covers WAL sequence %d but the log holds %d batches", ck.Info.WALSeq, rec.Batches)
			ck.Close()
		default:
			tail := rec.Events[len(rec.Events):]
			if int(ck.Info.WALSeq) < rec.Batches {
				tail = rec.Events[rec.BatchStarts[ck.Info.WALSeq]:]
			}
			res.Graph = Patch(ck.Graph, tail)
			res.Path = "checkpoint"
			res.CheckpointSeq = ck.Info.WALSeq
			res.CheckpointBytes = ck.Info.Bytes
			res.TailBatches = rec.Batches - int(ck.Info.WALSeq)
			res.TailEvents = len(tail)
			res.ExtraLabels = append(res.ExtraLabels, ck.Info.Labels...)
			for _, e := range tail {
				res.ExtraLabels = append(res.ExtraLabels, e.T)
			}
			res.checkpoint = ck
			logf("recovery: checkpoint %s seq %d (%d bytes) + %d tail batches (%d events)",
				cfg.CheckpointPath, ck.Info.WALSeq, ck.Info.Bytes, res.TailBatches, res.TailEvents)
			return res, nil
		}
	}
	base, berr := cfg.Base()
	if berr != nil {
		wal.Close()
		return nil, berr
	}
	res.Graph = Fold(base, rec.Events)
	res.Path = "replay"
	res.TailBatches = rec.Batches
	res.TailEvents = len(rec.Events)
	for _, e := range rec.Events {
		res.ExtraLabels = append(res.ExtraLabels, e.T)
	}
	if res.FallbackReason != "" {
		logf("recovery: full replay of %d batches (%d events); checkpoint unusable: %s",
			rec.Batches, len(rec.Events), res.FallbackReason)
	} else {
		logf("recovery: full replay of %d batches (%d events)", rec.Batches, len(rec.Events))
	}
	return res, nil
}
