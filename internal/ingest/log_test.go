package ingest

import (
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/egraph"
)

// fakePub is a Publisher over a swappable graph.
type fakePub struct {
	g   atomic.Pointer[egraph.IntEvolvingGraph]
	rev atomic.Uint64
}

func newFakePub(g *egraph.IntEvolvingGraph) *fakePub {
	p := &fakePub{}
	p.g.Store(g)
	return p
}

func (p *fakePub) Graph() *egraph.IntEvolvingGraph { return p.g.Load() }
func (p *fakePub) ReplaceGraph(g *egraph.IntEvolvingGraph) uint64 {
	p.g.Store(g)
	return p.rev.Add(1)
}

// edgeSet flattens a graph into a comparable (u,v,label) set.
func edgeSet(g *egraph.IntEvolvingGraph) map[string]bool {
	out := make(map[string]bool)
	for t := 0; t < g.NumStamps(); t++ {
		label := g.TimeLabel(t)
		g.VisitEdges(int32(t), func(u, v int32, w float64) bool {
			out[fmt.Sprintf("%d-%d@%d#%g", u, v, label, w)] = true
			return true
		})
	}
	return out
}

// TestFoldMatchesRebuild folds a delta onto the Figure 1 graph and
// compares against building the expected edge list from scratch.
func TestFoldMatchesRebuild(t *testing.T) {
	base := egraph.Figure1Graph() // directed, labels 1..3
	events := []Event{
		{Op: AddArc, U: 2, V: 0, T: 1},    // new arc at existing stamp
		{Op: RemoveArc, U: 0, V: 1, T: 1}, // drop a base arc
		{Op: AddStamp, T: 9},
		{Op: AddArc, U: 1, V: 2, T: 9},    // arc at a brand-new stamp
		{Op: AddArc, U: 0, V: 1, T: 2},    // same endpoints as a removed arc, later stamp
		{Op: RemoveArc, U: 5, V: 6, T: 3}, // remove a missing arc: no-op
		{Op: AddArc, U: 3, V: 4, T: 3},
		{Op: RemoveArc, U: 3, V: 4, T: 3}, // add then remove: absent
	}
	got := Fold(base, events)

	want := egraph.NewBuilder(true)
	for ti := 0; ti < base.NumStamps(); ti++ {
		label := base.TimeLabel(ti)
		base.VisitEdges(int32(ti), func(u, v int32, w float64) bool {
			if label == 1 && u == 0 && v == 1 {
				return true // removed
			}
			want.AddEdge(u, v, label)
			return true
		})
	}
	want.AddEdge(2, 0, 1)
	want.AddEdge(1, 2, 9)
	want.AddEdge(0, 1, 2)
	wg := want.Build()

	if !reflect.DeepEqual(edgeSet(got), edgeSet(wg)) {
		t.Fatalf("fold edges = %v\nwant %v", edgeSet(got), edgeSet(wg))
	}
	if got.NumStamps() != wg.NumStamps() || got.NumNodes() != wg.NumNodes() {
		t.Fatalf("fold shape = %d nodes %d stamps, want %d/%d",
			got.NumNodes(), got.NumStamps(), wg.NumNodes(), wg.NumStamps())
	}
	labels := got.TimeLabels()
	if !sort.SliceIsSorted(labels, func(i, j int) bool { return labels[i] < labels[j] }) {
		t.Fatalf("fold labels not sorted: %v", labels)
	}
}

// TestFoldUndirectedCanonicalises checks that (u,v) and (v,u) hit the
// same undirected edge.
func TestFoldUndirectedCanonicalises(t *testing.T) {
	b := egraph.NewBuilder(false)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	base := b.Build()
	got := Fold(base, []Event{{Op: RemoveArc, U: 1, V: 0, T: 1}}) // reversed spelling
	if got.HasEdge(0, 1, 0) || got.HasEdge(1, 0, 0) {
		t.Fatalf("undirected remove via reversed endpoints did not delete the edge")
	}
	if !got.HasEdge(1, 2, 0) {
		t.Fatalf("unrelated edge vanished")
	}
}

// TestFoldPreservesWeights folds onto a weighted base: surviving edges
// keep their weight, re-added existing edges keep base's weight, and
// new arcs come in at weight 1.
func TestFoldPreservesWeights(t *testing.T) {
	b := egraph.NewWeightedBuilder(true)
	b.AddWeightedEdge(0, 1, 1, 2.5)
	b.AddWeightedEdge(1, 2, 1, 7.0)
	base := b.Build()
	got := Fold(base, []Event{
		{Op: AddArc, U: 0, V: 1, T: 1}, // re-add: keep 2.5
		{Op: AddArc, U: 2, V: 3, T: 1}, // new: weight 1
	})
	ws := edgeSet(got)
	for _, want := range []string{"0-1@1#2.5", "1-2@1#7", "2-3@1#1"} {
		if !ws[want] {
			t.Fatalf("weighted fold = %v, missing %q", ws, want)
		}
	}
}

func logConfigForTest() Config {
	return Config{
		CompactEvery:    1 << 30, // only explicit CompactNow folds
		CompactInterval: time.Hour,
		Logf:            func(string, ...interface{}) {},
	}
}

// TestLogAppendCompactPublish drives the full pipeline against a fake
// publisher: append, fold, publish, revision bump, stats.
func TestLogAppendCompactPublish(t *testing.T) {
	pub := newFakePub(egraph.Figure1Graph())
	l, err := New(pub, logConfigForTest())
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	seq, err := l.Append([]Event{{Op: AddStamp, T: 10}, {Op: AddArc, U: 0, V: 5, T: 10}})
	if err != nil || seq != 0 {
		t.Fatalf("Append: seq=%d err=%v", seq, err)
	}
	if seq, _ = l.Append([]Event{{Op: AddArc, U: 5, V: 4, T: 10}}); seq != 1 {
		t.Fatalf("second Append seq = %d, want 1", seq)
	}
	if st := l.Stats(); st.PendingEvents != 3 || st.AppendedBatches != 2 || st.Epochs != 0 {
		t.Fatalf("pre-compact stats = %+v", st)
	}
	// The served graph is untouched until the fold.
	if pub.Graph().NumStamps() != 3 {
		t.Fatalf("graph mutated before compaction")
	}
	if n := l.CompactNow(); n != 3 {
		t.Fatalf("CompactNow folded %d events, want 3", n)
	}
	g := pub.Graph()
	if g.NumStamps() != 4 || !g.HasEdge(0, 5, 3) || !g.HasEdge(5, 4, 3) {
		t.Fatalf("folded graph wrong: stamps=%d", g.NumStamps())
	}
	if pub.rev.Load() != 1 {
		t.Fatalf("revision = %d, want 1", pub.rev.Load())
	}
	st := l.Stats()
	if st.PendingEvents != 0 || st.Epochs != 1 || st.CompactedEvents != 3 {
		t.Fatalf("post-compact stats = %+v", st)
	}
	if l.CompactNow() != 0 {
		t.Fatal("empty CompactNow folded something")
	}
}

// TestLogValidation rejects each malformed batch shape atomically.
func TestLogValidation(t *testing.T) {
	pub := newFakePub(egraph.Figure1Graph())
	l, err := New(pub, logConfigForTest())
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	cases := []struct {
		name   string
		events []Event
	}{
		{"empty", nil},
		{"self-loop", []Event{{Op: AddArc, U: 1, V: 1, T: 1}}},
		{"negative node", []Event{{Op: AddArc, U: -1, V: 1, T: 1}}},
		{"unknown label", []Event{{Op: AddArc, U: 0, V: 1, T: 77}}},
		{"stamp after use", []Event{{Op: AddArc, U: 0, V: 1, T: 77}, {Op: AddStamp, T: 77}}},
		{"unknown op", []Event{{Op: EventOp(9), T: 1}}},
		{"huge node id", []Event{{Op: AddArc, U: 1 << 25, V: 1, T: 1}}},
	}
	for _, tc := range cases {
		if _, err := l.Append(tc.events); err == nil {
			t.Fatalf("%s: Append succeeded, want error", tc.name)
		}
	}
	// Atomicity: a batch with a bad tail applies nothing.
	if _, err := l.Append([]Event{{Op: AddArc, U: 0, V: 5, T: 1}, {Op: AddArc, U: 1, V: 1, T: 1}}); err == nil {
		t.Fatal("mixed batch succeeded, want rejection")
	}
	if st := l.Stats(); st.PendingEvents != 0 || st.RejectedBatches != 7 {
		t.Fatalf("stats after rejects = %+v, want 0 pending, 7 rejected (empty batch fails before counting)", st)
	}
	// AddStamp-then-use inside one batch is valid.
	if _, err := l.Append([]Event{{Op: AddStamp, T: 42}, {Op: AddArc, U: 0, V: 1, T: 42}}); err != nil {
		t.Fatalf("stamp-then-arc batch: %v", err)
	}
	// The label stays known in later batches; re-adding it is a no-op.
	if _, err := l.Append([]Event{{Op: AddArc, U: 1, V: 2, T: 42}, {Op: AddStamp, T: 42}}); err != nil {
		t.Fatalf("label did not persist: %v", err)
	}
}

// TestLogBackpressure fills the pending delta past MaxPending and
// expects ErrBackpressure, then room again after a compaction.
func TestLogBackpressure(t *testing.T) {
	pub := newFakePub(egraph.Figure1Graph())
	cfg := logConfigForTest()
	cfg.MaxPending = 4
	l, err := New(pub, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	mk := func(n int) []Event {
		ev := make([]Event, n)
		for i := range ev {
			ev[i] = Event{Op: AddArc, U: 0, V: int32(2 + i), T: 1}
		}
		return ev
	}
	if _, err := l.Append(mk(3)); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(mk(2)); !errors.Is(err, ErrBackpressure) {
		t.Fatalf("overfill err = %v, want ErrBackpressure", err)
	}
	if st := l.Stats(); st.ThrottledBatches != 1 || st.ThrottledEvents != 2 {
		t.Fatalf("throttle stats = %+v", st)
	}
	l.CompactNow()
	if _, err := l.Append(mk(2)); err != nil {
		t.Fatalf("post-compact Append: %v", err)
	}
}

// TestLogWALRecoveryEndToEnd is the crash-recovery loop in miniature:
// run a WAL-backed log, "crash" (close), reopen, fold the recovered
// events onto the same base, and require the same graph the first
// process was serving.
func TestLogWALRecoveryEndToEnd(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log.wal")
	base := egraph.Figure1Graph()

	wal, rec, err := OpenWAL(path, WALOptions{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Batches != 0 {
		t.Fatalf("fresh recovery = %+v", rec)
	}
	pub := newFakePub(base)
	cfg := logConfigForTest()
	cfg.WAL = wal
	l, err := New(pub, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]Event{{Op: AddStamp, T: 8}, {Op: AddArc, U: 4, V: 5, T: 8}}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]Event{{Op: RemoveArc, U: 0, V: 1, T: 1}}); err != nil {
		t.Fatal(err)
	}
	l.CompactNow()
	served := edgeSet(pub.Graph())
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": reopen the WAL, fold the recovered stream onto the
	// same base.
	wal2, rec2, err := OpenWAL(path, WALOptions{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if rec2.Torn || rec2.Batches != 2 {
		t.Fatalf("recovery = %+v, want 2 clean batches", rec2)
	}
	recovered := Fold(egraph.Figure1Graph(), rec2.Events)
	if !reflect.DeepEqual(edgeSet(recovered), served) {
		t.Fatalf("recovered edges = %v\nserved pre-crash %v", edgeSet(recovered), served)
	}
	// The recovered log keeps accepting writes, including at the label
	// only the WAL knows about (stamp 8 still has its arc here, but
	// ExtraLabels must cover labels the fold may have dropped).
	pub2 := newFakePub(recovered)
	cfg2 := logConfigForTest()
	cfg2.WAL = wal2
	for _, e := range rec2.Events {
		cfg2.ExtraLabels = append(cfg2.ExtraLabels, e.T)
	}
	l2, err := New(pub2, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if seq, err := l2.Append([]Event{{Op: AddArc, U: 5, V: 6, T: 8}}); err != nil || seq != 2 {
		t.Fatalf("post-recovery Append: seq=%d err=%v, want seq 2", seq, err)
	}
}

// TestLogClosed asserts Append fails after Close and Close is
// idempotent.
func TestLogClosed(t *testing.T) {
	pub := newFakePub(egraph.Figure1Graph())
	l, err := New(pub, logConfigForTest())
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := l.Append([]Event{{Op: AddStamp, T: 1}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Close = %v, want ErrClosed", err)
	}
}

// TestLogPoisonOnWALFailure sabotages the WAL under a live log and
// asserts the whole write path halts: the failing append errors,
// later appends get ErrClosed, nothing pending survives to be folded,
// the publisher never sees a post-failure revision, and Close still
// reclaims the compactor cleanly.
func TestLogPoisonOnWALFailure(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.wal")
	wal, _, err := OpenWAL(path, WALOptions{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	pub := newFakePub(egraph.Figure1Graph())
	cfg := logConfigForTest()
	cfg.WAL = wal
	l, err := New(pub, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Sabotage: close the WAL behind the log's back; the next append's
	// write fails sticky.
	if err := wal.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]Event{{Op: AddStamp, T: 9}}); err == nil {
		t.Fatal("append on a dead WAL succeeded")
	}
	if _, err := l.Append([]Event{{Op: AddStamp, T: 10}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-poison append err = %v, want ErrClosed", err)
	}
	if st := l.Stats(); st.PendingEvents != 0 {
		t.Fatalf("poisoned log kept %d pending events", st.PendingEvents)
	}
	if l.CompactNow() != 0 {
		t.Fatal("poisoned log folded events")
	}
	if pub.rev.Load() != 0 {
		t.Fatalf("poisoned log published revision %d", pub.rev.Load())
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close after poison: %v", err)
	}
}

// TestLogBackgroundCompaction exercises the size-triggered kick: with
// CompactEvery=2 the delta folds without any explicit CompactNow.
func TestLogBackgroundCompaction(t *testing.T) {
	pub := newFakePub(egraph.Figure1Graph())
	l, err := New(pub, Config{
		CompactEvery:    2,
		CompactInterval: time.Hour,
		Logf:            func(string, ...interface{}) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append([]Event{{Op: AddArc, U: 2, V: 0, T: 1}, {Op: AddArc, U: 2, V: 1, T: 1}}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for pub.rev.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background compactor never published")
		}
		time.Sleep(time.Millisecond)
	}
	if g := pub.Graph(); !g.HasEdge(2, 0, 0) || !g.HasEdge(2, 1, 0) {
		t.Fatalf("background fold missing edges")
	}
}

// TestPatchMatchesFold races the incremental fold against the full
// rebuild on the same event streams — the ingest-level slice of the
// equivalence suite (egraph's patch tests cover the structural cases).
func TestPatchMatchesFold(t *testing.T) {
	base := egraph.Figure1Graph()
	streams := [][]Event{
		{
			{Op: AddArc, U: 2, V: 0, T: 1},
			{Op: RemoveArc, U: 0, V: 1, T: 1},
			{Op: AddStamp, T: 9},
			{Op: AddArc, U: 1, V: 2, T: 9},
			{Op: RemoveArc, U: 5, V: 6, T: 3},
			{Op: AddArc, U: 3, V: 4, T: 3},
			{Op: RemoveArc, U: 3, V: 4, T: 3},
		},
		{{Op: AddArc, U: 0, V: 11, T: 2}},   // universe growth
		{{Op: RemoveArc, U: 0, V: 1, T: 1}}, // plain removal
		{{Op: AddStamp, T: 42}},             // pure stamp registration
		{{Op: RemoveArc, U: 3, V: 2, T: 1}}, // absent arc: no-op
	}
	for i, events := range streams {
		folded := Fold(base, events)
		patched := Patch(base, events)
		if !reflect.DeepEqual(edgeSet(folded), edgeSet(patched)) {
			t.Fatalf("stream %d: patch edges = %v\nwant %v", i, edgeSet(patched), edgeSet(folded))
		}
		if folded.NumNodes() != patched.NumNodes() || folded.NumStamps() != patched.NumStamps() {
			t.Fatalf("stream %d: shape (%d,%d) vs (%d,%d)", i,
				patched.NumNodes(), patched.NumStamps(), folded.NumNodes(), folded.NumStamps())
		}
	}
}

// TestFoldEmptyShortCircuit pins the empty-batch fix: a timer-driven
// epoch with no writes must not pay for a delta map and a stamp walk —
// both fold paths return base itself.
func TestFoldEmptyShortCircuit(t *testing.T) {
	base := egraph.Figure1Graph()
	if Fold(base, nil) != base {
		t.Fatal("Fold(base, nil) rebuilt the graph")
	}
	if Fold(base, []Event{}) != base {
		t.Fatal("Fold(base, []) rebuilt the graph")
	}
	if Patch(base, nil) != base {
		t.Fatal("Patch(base, nil) rebuilt the graph")
	}
}

// TestCompactSkipsNoopEpoch: an epoch whose events are structurally
// no-ops (pure stamp registrations) must not republish the served
// graph — the revision holds and readers keep their cache.
func TestCompactSkipsNoopEpoch(t *testing.T) {
	pub := newFakePub(egraph.Figure1Graph())
	l, err := New(pub, Config{CompactEvery: 1 << 30, CompactInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append([]Event{{Op: AddStamp, T: 77}}); err != nil {
		t.Fatal(err)
	}
	if n := l.CompactNow(); n != 1 {
		t.Fatalf("CompactNow = %d, want 1", n)
	}
	if rev := pub.rev.Load(); rev != 0 {
		t.Fatalf("no-op epoch bumped revision to %d", rev)
	}
	st := l.Stats()
	if st.Epochs != 1 || st.CompactedEvents != 1 {
		t.Fatalf("stats = %+v, want the drained epoch counted", st)
	}
	// A real write at the registered label now publishes.
	if _, err := l.Append([]Event{{Op: AddArc, U: 0, V: 2, T: 77}}); err != nil {
		t.Fatal(err)
	}
	l.CompactNow()
	if rev := pub.rev.Load(); rev != 1 {
		t.Fatalf("revision = %d after a structural epoch, want 1", rev)
	}
}

// TestUseFullRebuildOracle drives the same event stream through a
// patch-path log and a full-rebuild log and requires identical served
// graphs and the path split reported in Stats.
func TestUseFullRebuildOracle(t *testing.T) {
	streamEpochs := [][]Event{
		{{Op: AddArc, U: 2, V: 0, T: 1}, {Op: RemoveArc, U: 0, V: 1, T: 1}},
		{{Op: AddStamp, T: 9}, {Op: AddArc, U: 1, V: 2, T: 9}},
		{{Op: RemoveArc, U: 1, V: 2, T: 9}, {Op: AddArc, U: 4, V: 5, T: 2}},
	}
	run := func(full bool) (*egraph.IntEvolvingGraph, Stats) {
		pub := newFakePub(egraph.Figure1Graph())
		l, err := New(pub, Config{
			CompactEvery: 1 << 30, CompactInterval: time.Hour, UseFullRebuild: full,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		for _, events := range streamEpochs {
			if _, err := l.Append(events); err != nil {
				t.Fatal(err)
			}
			l.CompactNow()
		}
		return pub.Graph(), l.Stats()
	}
	patched, pst := run(false)
	folded, fst := run(true)
	if !reflect.DeepEqual(edgeSet(patched), edgeSet(folded)) {
		t.Fatalf("served graphs diverged:\npatch %v\nfold  %v", edgeSet(patched), edgeSet(folded))
	}
	if pst.PatchEpochs != 3 || pst.FullRebuildEpochs != 0 {
		t.Fatalf("patch log epochs = %+v", pst)
	}
	if fst.FullRebuildEpochs != 3 || fst.PatchEpochs != 0 {
		t.Fatalf("full-rebuild log epochs = %+v", fst)
	}
	if pst.LastVisibleMs <= 0 || pst.LastCSRBuildMs < 0 {
		t.Fatalf("latency stats missing: %+v", pst)
	}
}

// retirePub is a Publisher with unpin notification: every replaced
// graph is reported retired immediately (no readers in this test).
type retirePub struct {
	fakePub
	fn func(*egraph.IntEvolvingGraph)
}

func (p *retirePub) NotifyRetired(fn func(*egraph.IntEvolvingGraph)) { p.fn = fn }
func (p *retirePub) ReplaceGraph(g *egraph.IntEvolvingGraph) uint64 {
	old := p.Graph()
	rev := p.fakePub.ReplaceGraph(g)
	if p.fn != nil && old != g {
		p.fn(old)
	}
	return rev
}

// TestArenaRecycling: with a retire-notifying publisher, the epoch
// compactor recycles the retired snapshot's CSR buffers into the next
// build — and never touches the seed graph it did not create.
func TestArenaRecycling(t *testing.T) {
	seed := egraph.Figure1Graph()
	seed.CSR() // built, but must never be recycled: the caller owns it
	pub := &retirePub{}
	pub.g.Store(seed)
	l, err := New(pub, Config{CompactEvery: 1 << 30, CompactInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	epoch := func(u, v int32) {
		t.Helper()
		if _, err := l.Append([]Event{{Op: AddArc, U: u, V: v, T: 1}}); err != nil {
			t.Fatal(err)
		}
		l.CompactNow()
	}
	// Arcs stay inside the seed's node/stamp universe so every epoch's
	// view has the same shape and buffer reuse is capacity-exact.
	epoch(1, 0) // retires the seed: must NOT be recycled
	if seed.CSR() == nil {
		t.Fatal("compactor recycled the seed graph's CSR")
	}
	g1 := pub.Graph()
	p1 := &g1.CSR().OutPtr[0] // prebuilt by the compactor
	epoch(2, 0)               // retires g1, a log-owned graph: its buffers enter the arena
	l.arenaMu.Lock()
	banked := l.arena != nil
	l.arenaMu.Unlock()
	if !banked {
		t.Fatal("retired log-owned snapshot was not recycled into the arena")
	}
	epoch(2, 1) // consumes the banked arena for its prebuild
	// Same graph shape, so the new view must sit in g1's recycled
	// buffers — the steady-state allocation-light epoch.
	if &pub.Graph().CSR().OutPtr[0] != p1 {
		t.Fatal("epoch build did not reuse the recycled arena buffers")
	}
}
