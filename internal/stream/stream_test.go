package stream

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/egraph"
	"repro/internal/gen"
)

func TestDynamicBasics(t *testing.T) {
	d := NewDynamic(true)
	if err := d.AddEdge(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := d.AddEdge(0, 2, 2); err != nil {
		t.Fatal(err)
	}
	if d.NumStamps() != 2 || d.NumEdges() != 2 {
		t.Fatalf("stamps=%d edges=%d", d.NumStamps(), d.NumEdges())
	}
	if !d.IsActive(0, 0) || d.IsActive(2, 0) {
		t.Fatal("activity wrong")
	}
	if d.Label(1) != 2 {
		t.Fatal("label wrong")
	}
	if len(d.ActiveStampsOf(0)) != 2 {
		t.Fatal("activeAt wrong")
	}
	if len(d.Out(0, 0)) != 1 || d.Out(0, 0)[0] != 1 {
		t.Fatal("out adjacency wrong")
	}
	if len(d.In(1, 0)) != 1 || d.In(1, 0)[0] != 0 {
		t.Fatal("in adjacency wrong")
	}
	if !d.Directed() {
		t.Fatal("directed flag lost")
	}
}

func TestDynamicRejects(t *testing.T) {
	d := NewDynamic(true)
	if err := d.AddEdge(0, 0, 1); err == nil {
		t.Fatal("self-loop accepted")
	}
	if err := d.AddEdge(-1, 0, 1); err == nil {
		t.Fatal("negative id accepted")
	}
	if err := d.AddEdge(0, 1, 5); err != nil {
		t.Fatal(err)
	}
	if err := d.AddEdge(1, 2, 4); err == nil {
		t.Fatal("time regression accepted")
	}
}

func TestDynamicDuplicateIgnored(t *testing.T) {
	d := NewDynamic(true)
	_ = d.AddEdge(0, 1, 1)
	_ = d.AddEdge(0, 1, 1)
	if d.NumEdges() != 1 {
		t.Fatalf("edges = %d, want 1", d.NumEdges())
	}
}

func TestDynamicUndirectedSymmetry(t *testing.T) {
	d := NewDynamic(false)
	_ = d.AddEdge(0, 1, 1)
	if len(d.Out(1, 0)) != 1 || d.Out(1, 0)[0] != 0 {
		t.Fatal("undirected reverse adjacency missing")
	}
}

func TestSnapshotMatchesBuilder(t *testing.T) {
	d := NewDynamic(true)
	_ = d.AddEdge(0, 1, 1)
	_ = d.AddEdge(1, 2, 2)
	_ = d.AddEdge(0, 2, 2)
	g := d.Snapshot()
	if g.NumStamps() != 2 || g.StaticEdgeCount() != 3 {
		t.Fatalf("snapshot stamps=%d edges=%d", g.NumStamps(), g.StaticEdgeCount())
	}
	if !g.HasEdge(0, 1, 0) || !g.HasEdge(1, 2, 1) || !g.HasEdge(0, 2, 1) {
		t.Fatal("snapshot edges wrong")
	}
}

func TestIncrementalBFSFigure1Replay(t *testing.T) {
	// Stream the Fig. 1 graph edge by edge and check distances evolve.
	d := NewDynamic(true)
	ib := NewIncrementalBFS(d, 0, 1) // root (1, t1)
	if ib.Started() {
		t.Fatal("started before any edge")
	}
	_ = d.AddEdge(0, 1, 1)
	if !ib.Started() {
		t.Fatal("root should start with first edge")
	}
	if ib.Dist(1, 1) != 1 {
		t.Fatalf("dist(2,t1) = %d, want 1", ib.Dist(1, 1))
	}
	_ = d.AddEdge(0, 2, 2)
	if ib.Dist(0, 2) != 1 {
		t.Fatalf("dist(1,t2) = %d, want 1", ib.Dist(0, 2))
	}
	if ib.Dist(2, 2) != 2 {
		t.Fatalf("dist(3,t2) = %d, want 2", ib.Dist(2, 2))
	}
	_ = d.AddEdge(1, 2, 3)
	if ib.Dist(1, 3) != 2 {
		t.Fatalf("dist(2,t3) = %d, want 2", ib.Dist(1, 3))
	}
	if ib.Dist(2, 3) != 3 {
		t.Fatalf("dist(3,t3) = %d, want 3", ib.Dist(2, 3))
	}
	if ib.NumReached() != 6 {
		t.Fatalf("NumReached = %d, want 6", ib.NumReached())
	}
}

func TestIncrementalBFSUnknownLabel(t *testing.T) {
	d := NewDynamic(true)
	ib := NewIncrementalBFS(d, 0, 1)
	if ib.Dist(0, 99) != -1 {
		t.Fatal("unknown label should be unreachable")
	}
}

func TestIncrementalBFSAttachToNonEmpty(t *testing.T) {
	d := NewDynamic(true)
	_ = d.AddEdge(0, 1, 1)
	_ = d.AddEdge(1, 2, 2)
	ib := NewIncrementalBFS(d, 0, 1)
	if !ib.Started() {
		t.Fatal("replay should start the search")
	}
	if ib.Dist(2, 2) != 3 { // (1,t1)→(2,t1)→(2,t2)→(3,t2)
		t.Fatalf("dist = %d, want 3", ib.Dist(2, 2))
	}
	// Continue streaming after attach: (1,t3) arrives; the causal edge
	// (1,t1)→(1,t3) gives distance 1, beating the static route via
	// (3,t3) of length 5.
	_ = d.AddEdge(2, 0, 3)
	if ib.Dist(0, 3) != 1 {
		t.Fatalf("dist after attach-continue = %d, want 1", ib.Dist(0, 3))
	}
	if ib.Dist(2, 3) != 4 {
		t.Fatalf("dist((3,t3)) = %d, want 4", ib.Dist(2, 3))
	}
}

// Property: after every edge of a random stream, the incremental
// distances equal a from-scratch Algorithm 1 run on the snapshot.
func TestIncrementalMatchesRecompute(t *testing.T) {
	f := func(seed int64, directed bool) bool {
		rng := rand.New(rand.NewSource(seed))
		edges := gen.Stream(8, 5, 40, seed)
		d := NewDynamic(directed)
		// Root: the first edge's source at its label.
		ib := NewIncrementalBFS(d, edges[0].U, edges[0].T)
		for i, e := range edges {
			if err := d.AddEdge(e.U, e.V, e.T); err != nil {
				return false
			}
			// Check a random prefix subset of events to bound cost.
			if i%7 != 0 && i != len(edges)-1 {
				continue
			}
			if !ib.Started() {
				continue
			}
			ref, err := ib.Recompute()
			if err != nil {
				return false
			}
			if ref.NumReached() != ib.NumReached() {
				return false
			}
			ok := true
			g := d.Snapshot()
			ref.Visit(func(n egraph.TemporalNode, dd int) bool {
				if ib.Dist(n.Node, g.TimeLabel(int(n.Stamp))) != dd {
					ok = false
					return false
				}
				return true
			})
			if !ok {
				return false
			}
		}
		_ = rng
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestIncrementalRootNeverActivates(t *testing.T) {
	d := NewDynamic(true)
	ib := NewIncrementalBFS(d, 5, 1)
	_ = d.AddEdge(0, 1, 1)
	_ = d.AddEdge(1, 2, 2)
	if ib.Started() || ib.NumReached() != 0 {
		t.Fatal("search must not start for an inactive root")
	}
	if _, err := ib.Recompute(); err == nil {
		t.Fatal("Recompute with inactive root should error")
	}
}
