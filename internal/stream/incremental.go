package stream

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/egraph"
)

// tkey identifies a temporal node inside a Dynamic graph by node id and
// stamp index.
type tkey struct {
	v int32
	s int32
}

// IncrementalBFS maintains the Algorithm 1 distances from a fixed root
// (node, time label) while edges stream in, using the all-pairs causal
// edge set.
//
// Correctness of the local repair relies on the append-only discipline:
// every new edge lands on the *newest* stamp, every temporal path through
// it has its entire suffix on that stamp, and therefore only newest-stamp
// distances can improve. Three kinds of update suffice per edge event:
//
//  1. activation pull — a node newly active at the newest stamp acquires
//     causal in-edges from all its earlier active stamps, so its distance
//     is min over those + 1;
//  2. static relax across the new edge;
//  3. a bounded BFS that drains improvements within the newest stamp.
//
// Distances at older stamps are frozen, which is what makes the repair
// O(affected area) instead of O(graph).
type IncrementalBFS struct {
	d         *Dynamic
	rootNode  int32
	rootLabel int64
	dist      map[tkey]int32
	started   bool
	queue     []tkey
}

// NewIncrementalBFS attaches an incremental BFS to d. The search begins
// the moment (rootNode, rootLabel) becomes an active temporal node; until
// then every distance query reports unreachable.
func NewIncrementalBFS(d *Dynamic, rootNode int32, rootLabel int64) *IncrementalBFS {
	ib := &IncrementalBFS{
		d:         d,
		rootNode:  rootNode,
		rootLabel: rootLabel,
		dist:      make(map[tkey]int32),
	}
	d.onEdge(ib.handleEdge)
	// Process any pre-existing state by replaying activations in stamp
	// order (cheap: the Dynamic is usually empty when attached).
	for s := range d.labels {
		for v := range d.active[s] {
			ib.maybeStart(v, s)
		}
	}
	if ib.started {
		ib.rebuildAll()
	}
	return ib
}

// Started reports whether the root has become active.
func (ib *IncrementalBFS) Started() bool { return ib.started }

// Dist returns the current distance from the root to (node, label), or
// -1 if unreachable (or the search has not started).
func (ib *IncrementalBFS) Dist(node int32, label int64) int {
	s := ib.stampOf(label)
	if s < 0 {
		return -1
	}
	if d, ok := ib.dist[tkey{node, int32(s)}]; ok {
		return int(d)
	}
	return -1
}

// NumReached returns the number of reached temporal nodes.
func (ib *IncrementalBFS) NumReached() int { return len(ib.dist) }

func (ib *IncrementalBFS) stampOf(label int64) int {
	lo, hi := 0, len(ib.d.labels)
	for lo < hi {
		mid := (lo + hi) / 2
		if ib.d.labels[mid] < label {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(ib.d.labels) && ib.d.labels[lo] == label {
		return lo
	}
	return -1
}

func (ib *IncrementalBFS) maybeStart(v int32, s int) {
	if ib.started || v != ib.rootNode || ib.d.labels[s] != ib.rootLabel {
		return
	}
	ib.started = true
	ib.dist[tkey{v, int32(s)}] = 0
	ib.queue = append(ib.queue, tkey{v, int32(s)})
}

// handleEdge is invoked by the Dynamic after the edge (u,v) is inserted
// at stamp index s (always the newest stamp).
func (ib *IncrementalBFS) handleEdge(u, v int32, s int) {
	ib.maybeStart(u, s)
	ib.maybeStart(v, s)
	if !ib.started {
		return
	}
	// Activation pulls: both endpoints are active at s now; their causal
	// in-edges from earlier active stamps may offer a distance.
	ib.pull(u, s)
	ib.pull(v, s)
	// Static relaxation across the new edge.
	if du, ok := ib.dist[tkey{u, int32(s)}]; ok {
		ib.relax(tkey{v, int32(s)}, du+1)
	}
	if !ib.d.directed {
		if dv, ok := ib.dist[tkey{v, int32(s)}]; ok {
			ib.relax(tkey{u, int32(s)}, dv+1)
		}
	}
	ib.drain()
}

// pull offers (x, s) the best causal-in distance from x's earlier active
// stamps (all-pairs causal edges: one hop from any earlier stamp).
func (ib *IncrementalBFS) pull(x int32, s int) {
	best := int32(-1)
	for _, s2 := range ib.d.activeAt[x] {
		if s2 >= s {
			break
		}
		if d, ok := ib.dist[tkey{x, int32(s2)}]; ok && (best < 0 || d < best) {
			best = d
		}
	}
	if best >= 0 {
		ib.relax(tkey{x, int32(s)}, best+1)
	}
}

func (ib *IncrementalBFS) relax(k tkey, cand int32) {
	if cur, ok := ib.dist[k]; !ok || cand < cur {
		ib.dist[k] = cand
		ib.queue = append(ib.queue, k)
	}
}

// drain propagates improvements. All queued keys live on the newest
// stamp (or are the freshly started root), so only static hops within
// their stamp need relaxing — causal hops would lead to stamps that do
// not exist yet and are instead handled by future activation pulls.
func (ib *IncrementalBFS) drain() {
	for len(ib.queue) > 0 {
		k := ib.queue[len(ib.queue)-1]
		ib.queue = ib.queue[:len(ib.queue)-1]
		dk := ib.dist[k]
		for _, w := range ib.d.out[k.s][k.v] {
			ib.relax(tkey{w, k.s}, dk+1)
		}
	}
}

// rebuildAll recomputes every distance from scratch over the current
// Dynamic state. Used when the incremental search attaches to a
// non-empty stream (the replay path of NewIncrementalBFS).
func (ib *IncrementalBFS) rebuildAll() {
	g := ib.d.Snapshot()
	res, root, err := recompute(g, ib.rootNode, ib.rootLabel)
	if err != nil {
		return
	}
	_ = root
	ib.queue = ib.queue[:0]
	ib.dist = make(map[tkey]int32)
	res.Visit(func(n egraph.TemporalNode, dd int) bool {
		ib.dist[tkey{n.Node, n.Stamp}] = int32(dd)
		return true
	})
}

// Recompute runs the batch Algorithm 1 on a snapshot of the stream —
// the from-scratch baseline the incremental maintenance is benchmarked
// against.
func (ib *IncrementalBFS) Recompute() (*core.Result, error) {
	res, _, err := recompute(ib.d.Snapshot(), ib.rootNode, ib.rootLabel)
	return res, err
}

func recompute(g *egraph.IntEvolvingGraph, rootNode int32, rootLabel int64) (*core.Result, egraph.TemporalNode, error) {
	s := g.StampOf(rootLabel)
	if s < 0 {
		return nil, egraph.TemporalNode{}, fmt.Errorf("stream: root label %d not in graph", rootLabel)
	}
	root := egraph.TemporalNode{Node: rootNode, Stamp: int32(s)}
	res, err := core.BFS(g, root, core.Options{Mode: egraph.CausalAllPairs})
	return res, root, err
}
