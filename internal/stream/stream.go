// Package stream implements the incremental side of evolving graphs: an
// append-only edge stream with non-decreasing time labels, snapshot
// extraction, and incremental maintenance of a BFS from a fixed root as
// edges arrive.
//
// The paper treats an evolving graph as a completed sequence of
// snapshots, but its motivation (ref. [2], PageRank on an evolving
// graph) is streams that grow at the frontier of time. Appending edges
// only at the newest stamp has a pleasant consequence for Algorithm 1:
// a new edge can only create temporal paths whose suffix lies at the
// newest stamp, so distance improvements are confined there and the BFS
// can be repaired locally instead of recomputed (see IncrementalBFS).
package stream

import (
	"fmt"
	"sort"

	"repro/internal/egraph"
)

// Dynamic is an evolving graph under construction: edges arrive with
// non-decreasing time labels. The zero value is not ready; use
// NewDynamic.
type Dynamic struct {
	directed  bool
	labels    []int64 // distinct stamp labels in arrival (= sorted) order
	out       []map[int32][]int32
	in        []map[int32][]int32
	active    []map[int32]bool
	activeAt  map[int32][]int // per node: stamp indices where active
	numEdges  int
	maxNode   int32
	listeners []func(u, v int32, stamp int)
}

// NewDynamic returns an empty dynamic evolving graph.
func NewDynamic(directed bool) *Dynamic {
	return &Dynamic{directed: directed, activeAt: make(map[int32][]int), maxNode: -1}
}

// Directed reports the edge sense.
func (d *Dynamic) Directed() bool { return d.directed }

// NumStamps returns the number of distinct labels seen.
func (d *Dynamic) NumStamps() int { return len(d.labels) }

// NumEdges returns the number of accepted edges (duplicates included).
func (d *Dynamic) NumEdges() int { return d.numEdges }

// Label returns the time label of stamp index s.
func (d *Dynamic) Label(s int) int64 { return d.labels[s] }

// IsActive reports whether node v is active at stamp index s.
func (d *Dynamic) IsActive(v int32, s int) bool {
	return s < len(d.active) && d.active[s][v]
}

// ActiveStampsOf returns the stamp indices where v is active.
func (d *Dynamic) ActiveStampsOf(v int32) []int { return d.activeAt[v] }

// Out returns the out-neighbours of v at stamp index s.
func (d *Dynamic) Out(v int32, s int) []int32 { return d.out[s][v] }

// In returns the in-neighbours of v at stamp index s.
func (d *Dynamic) In(v int32, s int) []int32 { return d.in[s][v] }

// AddEdge appends the edge u→v at the given label. The label must be
// ≥ every label seen so far; self-loops are rejected (Def. 3 makes them
// inert). Duplicate edges are ignored.
func (d *Dynamic) AddEdge(u, v int32, label int64) error {
	if u == v {
		return fmt.Errorf("stream: self-loop (%d,%d) rejected", u, v)
	}
	if u < 0 || v < 0 {
		return fmt.Errorf("stream: negative node id (%d,%d)", u, v)
	}
	if n := len(d.labels); n > 0 && label < d.labels[n-1] {
		return fmt.Errorf("stream: label %d is earlier than current frontier %d", label, d.labels[n-1])
	}
	if n := len(d.labels); n == 0 || label > d.labels[n-1] {
		d.labels = append(d.labels, label)
		d.out = append(d.out, make(map[int32][]int32))
		d.in = append(d.in, make(map[int32][]int32))
		d.active = append(d.active, make(map[int32]bool))
	}
	s := len(d.labels) - 1
	if contains(d.out[s][u], v) {
		return nil // duplicate
	}
	d.out[s][u] = append(d.out[s][u], v)
	d.in[s][v] = append(d.in[s][v], u)
	if !d.directed {
		d.out[s][v] = append(d.out[s][v], u)
		d.in[s][u] = append(d.in[s][u], v)
	}
	d.activate(u, s)
	d.activate(v, s)
	if u > d.maxNode {
		d.maxNode = u
	}
	if v > d.maxNode {
		d.maxNode = v
	}
	d.numEdges++
	for _, fn := range d.listeners {
		fn(u, v, s)
	}
	return nil
}

func (d *Dynamic) activate(v int32, s int) {
	if !d.active[s][v] {
		d.active[s][v] = true
		d.activeAt[v] = append(d.activeAt[v], s)
	}
}

func contains(xs []int32, v int32) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// onEdge registers a callback invoked after each accepted edge.
func (d *Dynamic) onEdge(fn func(u, v int32, stamp int)) {
	d.listeners = append(d.listeners, fn)
}

// Snapshot freezes the current state into an immutable IntEvolvingGraph.
func (d *Dynamic) Snapshot() *egraph.IntEvolvingGraph {
	b := egraph.NewBuilder(d.directed)
	for s := range d.labels {
		// Deterministic order: sorted source then insertion order.
		us := make([]int32, 0, len(d.out[s]))
		for u := range d.out[s] {
			us = append(us, u)
		}
		sort.Slice(us, func(i, j int) bool { return us[i] < us[j] })
		for _, u := range us {
			for _, v := range d.out[s][u] {
				if !d.directed && v < u {
					continue
				}
				b.AddEdge(u, v, d.labels[s])
			}
		}
	}
	return b.Build()
}
