package components

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/egraph"
	"repro/internal/gen"
)

func tn(v, s int32) egraph.TemporalNode { return egraph.TemporalNode{Node: v, Stamp: s} }

func randomGraph(rng *rand.Rand, directed bool) *egraph.IntEvolvingGraph {
	b := egraph.NewBuilder(directed)
	n := 2 + rng.Intn(8)
	stamps := 1 + rng.Intn(4)
	for e := 0; e < rng.Intn(3*n); e++ {
		b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)), int64(1+rng.Intn(stamps)))
	}
	b.AddEdge(0, 1, 1)
	return b.Build()
}

func TestWeakFigure1(t *testing.T) {
	// The Fig. 1 graph is weakly connected: one component of 6.
	g := egraph.Figure1Graph()
	comps := Weak(g, egraph.CausalAllPairs)
	if len(comps) != 1 || len(comps[0]) != 6 {
		t.Fatalf("components = %v", comps)
	}
}

func TestWeakTwoIslands(t *testing.T) {
	b := egraph.NewBuilder(true)
	b.AddEdge(0, 1, 1) // island A
	b.AddEdge(2, 3, 2) // island B
	b.AddEdge(0, 1, 3) // A again (causal edges join stamps)
	g := b.Build()
	comps := Weak(g, egraph.CausalAllPairs)
	if len(comps) != 2 {
		t.Fatalf("want 2 components, got %d: %v", len(comps), comps)
	}
	// Island A has 4 temporal nodes (0,1 at two stamps), B has 2.
	if len(comps[0]) != 4 || len(comps[1]) != 2 {
		t.Fatalf("sizes = %d,%d, want 4,2", len(comps[0]), len(comps[1]))
	}
}

func TestWeakCausalOnlyBridge(t *testing.T) {
	// Node 1 appears at stamps 1 and 2 with different partners; only the
	// causal edge links the stamps into one component.
	b := egraph.NewBuilder(true)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 2)
	g := b.Build()
	comps := Weak(g, egraph.CausalAllPairs)
	if len(comps) != 1 || len(comps[0]) != 4 {
		t.Fatalf("components = %v, want one of size 4", comps)
	}
}

func TestStrongFigure1AllTrivial(t *testing.T) {
	// The Fig. 1 graph is a temporal DAG: every SCC is a singleton.
	g := egraph.Figure1Graph()
	comps := Strong(g, 2)
	if len(comps) != 0 {
		t.Fatalf("nontrivial SCCs = %v, want none", comps)
	}
	all := Strong(g, 1)
	if len(all) != 6 {
		t.Fatalf("singleton SCC count = %d, want 6", len(all))
	}
}

func TestStrongCycleWithinStamp(t *testing.T) {
	b := egraph.NewBuilder(true)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(2, 0, 1) // 3-cycle at t1
	b.AddEdge(0, 1, 2) // acyclic at t2
	g := b.Build()
	comps := Strong(g, 2)
	if len(comps) != 1 || len(comps[0]) != 3 {
		t.Fatalf("SCCs = %v, want one triangle", comps)
	}
	if comps[0][0].Stamp != 0 {
		t.Fatal("SCC at wrong stamp")
	}
}

// The structure theorem: SCCs of the unfolded graph equal the union of
// per-snapshot SCCs (cross-stamp arcs cannot close cycles). Validate the
// per-snapshot shortcut against generic Tarjan on the unfolding.
func TestStrongMatchesGenericTarjan(t *testing.T) {
	f := func(seed int64, directed bool) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, directed)
		u := g.Unfold(egraph.CausalAllPairs)

		want := map[string]int{} // canonical member list -> count
		for _, scc := range TarjanStatic(u.Graph) {
			if len(scc) < 2 {
				continue
			}
			want[canonical(u, scc)]++
		}
		got := map[string]int{}
		for _, comp := range Strong(g, 2) {
			key := ""
			for _, tnode := range comp {
				key += tnode.String() + ";"
			}
			got[key]++
		}
		if len(got) != len(want) {
			return false
		}
		for k, c := range want {
			if got[k] != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func canonical(u *egraph.Unfolding, scc []int32) string {
	nodes := make([]egraph.TemporalNode, len(scc))
	for i, id := range scc {
		nodes[i] = u.Order[id]
	}
	sort.Slice(nodes, func(a, b int) bool {
		if nodes[a].Stamp != nodes[b].Stamp {
			return nodes[a].Stamp < nodes[b].Stamp
		}
		return nodes[a].Node < nodes[b].Node
	})
	key := ""
	for _, n := range nodes {
		key += n.String() + ";"
	}
	return key
}

// Undirected graphs: every connected snapshot subgraph is one SCC.
func TestStrongUndirected(t *testing.T) {
	b := egraph.NewBuilder(false)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	g := b.Build()
	comps := Strong(g, 2)
	if len(comps) != 1 || len(comps[0]) != 3 {
		t.Fatalf("undirected SCCs = %v", comps)
	}
}

func TestOutComponent(t *testing.T) {
	g := egraph.Figure1Graph()
	comp, err := OutComponent(g, tn(0, 0), egraph.CausalAllPairs)
	if err != nil {
		t.Fatal(err)
	}
	if len(comp) != 6 {
		t.Fatalf("out-component size = %d, want 6", len(comp))
	}
	// Sorted stamp-major.
	for i := 1; i < len(comp); i++ {
		a, b := comp[i-1], comp[i]
		if a.Stamp > b.Stamp || (a.Stamp == b.Stamp && a.Node >= b.Node) {
			t.Fatalf("not sorted: %v", comp)
		}
	}
	if _, err := OutComponent(g, tn(2, 0), egraph.CausalAllPairs); err == nil {
		t.Fatal("inactive root should fail")
	}
}

func TestSizeDistribution(t *testing.T) {
	g := egraph.Figure1Graph()
	sizes := SizeDistribution(g, egraph.CausalAllPairs)
	if len(sizes) != 6 {
		t.Fatalf("%d sizes, want 6", len(sizes))
	}
	// Descending, max is the full reach of (1,t1) = 6, min is 1 ((3,t3)).
	if sizes[0] != 6 || sizes[len(sizes)-1] != 1 {
		t.Fatalf("sizes = %v", sizes)
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] > sizes[i-1] {
			t.Fatalf("not descending: %v", sizes)
		}
	}
}

// Differential engine equivalence: the CSR paths must return results
// identical to the adjacency-map oracle for every entry point, across
// both causal modes.
func assertEnginesAgree(t *testing.T, g *egraph.IntEvolvingGraph, label string) {
	t.Helper()
	for _, mode := range []egraph.CausalMode{egraph.CausalAllPairs, egraph.CausalConsecutive} {
		csr := Options{Mode: mode, Workers: 3}
		oracle := Options{Mode: mode, UseAdjacencyMaps: true}
		if got, want := WeakOpts(g, csr), WeakOpts(g, oracle); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s mode %v: Weak diverges:\ncsr  %v\nmaps %v", label, mode, got, want)
		}
		if got, want := StrongOpts(g, 1, csr), StrongOpts(g, 1, oracle); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s mode %v: Strong diverges:\ncsr  %v\nmaps %v", label, mode, got, want)
		}
		if got, want := SizeDistributionOpts(g, csr), SizeDistributionOpts(g, oracle); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s mode %v: SizeDistribution diverges:\ncsr  %v\nmaps %v", label, mode, got, want)
		}
		for i, root := range g.ActiveTemporalNodes() {
			if i%3 != 0 {
				continue // sample roots to keep the sweep cheap
			}
			got, err1 := OutComponentOpts(g, root, csr)
			want, err2 := OutComponentOpts(g, root, oracle)
			if err1 != nil || err2 != nil {
				t.Fatalf("%s mode %v: OutComponent errors: %v / %v", label, mode, err1, err2)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s mode %v root %v: OutComponent diverges:\ncsr  %v\nmaps %v",
					label, mode, root, got, want)
			}
		}
	}
}

func TestEngineEquivalenceRandom(t *testing.T) {
	f := func(seed int64, directed bool) bool {
		rng := rand.New(rand.NewSource(seed))
		assertEnginesAgree(t, randomGraph(rng, directed), "random")
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEngineEquivalenceGeneratorWorkloads(t *testing.T) {
	cfg := gen.DefaultCitationConfig()
	cfg.Authors = 60
	cfg.Stamps = 6
	cite, _ := gen.Citation(cfg)
	assertEnginesAgree(t, cite, "citation")
	assertEnginesAgree(t, gen.GNP(40, 4, 0.05, true, 7), "gnp")
	assertEnginesAgree(t, gen.Random(gen.RandomConfig{Nodes: 50, Stamps: 5, Edges: 200, Directed: true, Seed: 11}), "random-gen")
}

// Property: weak components partition the active temporal nodes.
func TestWeakIsPartition(t *testing.T) {
	f := func(seed int64, directed bool) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, directed)
		comps := Weak(g, egraph.CausalAllPairs)
		seen := map[egraph.TemporalNode]bool{}
		total := 0
		for _, c := range comps {
			for _, tnode := range c {
				if seen[tnode] {
					return false
				}
				seen[tnode] = true
				total++
			}
		}
		return total == g.NumActiveNodes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
