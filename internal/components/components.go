// Package components computes connectivity structure over evolving
// graphs via the Theorem 1 unfolding:
//
//   - weakly connected temporal components (edge direction and time
//     ignored): the coarsest "who ever touches whom" partition;
//   - strongly connected temporal components: because causal edges only
//     ever point forward in time, every directed cycle of the unfolded
//     graph lies within a single stamp, so SCCs are per-snapshot
//     objects — a small structure theorem this package both exploits
//     and property-tests;
//   - out-components (Def. 7 reachability sets) and their size
//     distribution, the building block of Sec. V influence analysis.
package components

import (
	"sort"

	"repro/internal/core"
	"repro/internal/ds"
	"repro/internal/egraph"
)

// Component is a set of temporal nodes.
type Component []egraph.TemporalNode

// Weak returns the weakly connected components of the evolving graph's
// unfolding: temporal nodes joined by static or causal edges in either
// direction. Components are sorted by decreasing size (ties: by first
// member); members are in stamp-major order.
func Weak(g *egraph.IntEvolvingGraph, mode egraph.CausalMode) []Component {
	u := g.Unfold(mode)
	n := u.Graph.NumNodes()
	uf := ds.NewUnionFind(n)
	for v := 0; v < n; v++ {
		for _, w := range u.Graph.Neighbors(int32(v)) {
			uf.Union(v, int(w))
		}
	}
	groups := make(map[int][]int, uf.Sets())
	for v := 0; v < n; v++ {
		r := uf.Find(v)
		groups[r] = append(groups[r], v)
	}
	out := make([]Component, 0, len(groups))
	for _, ids := range groups {
		comp := make(Component, len(ids))
		for i, id := range ids {
			comp[i] = u.Order[id]
		}
		out = append(out, comp)
	}
	sortComponents(out)
	return out
}

// Strong returns the strongly connected components of the unfolding with
// at least minSize members. Because the unfolded graph's cross-stamp
// edges are acyclic, this runs Tarjan's algorithm independently on each
// snapshot's active subgraph; TestStrongMatchesGenericTarjan verifies the
// shortcut against a direct Tarjan on the whole unfolding.
func Strong(g *egraph.IntEvolvingGraph, minSize int) []Component {
	if minSize < 1 {
		minSize = 1
	}
	var out []Component
	for t := 0; t < g.NumStamps(); t++ {
		act := g.ActiveNodes(t)
		// Dense id remap for this snapshot's active nodes.
		ids := make([]int32, 0, act.Count())
		index := make(map[int32]int32)
		for v := act.NextSet(0); v >= 0; v = act.NextSet(v + 1) {
			index[int32(v)] = int32(len(ids))
			ids = append(ids, int32(v))
		}
		adj := make([][]int32, len(ids))
		for i, v := range ids {
			for _, w := range g.OutNeighbors(v, int32(t)) {
				adj[i] = append(adj[i], index[w])
			}
		}
		for _, scc := range tarjan(adj) {
			if len(scc) < minSize {
				continue
			}
			comp := make(Component, len(scc))
			for i, li := range scc {
				comp[i] = egraph.TemporalNode{Node: ids[li], Stamp: int32(t)}
			}
			sort.Slice(comp, func(a, b int) bool { return comp[a].Node < comp[b].Node })
			out = append(out, comp)
		}
	}
	sortComponents(out)
	return out
}

// OutComponent returns the reachability set of an active temporal node
// (Def. 7) as a Component, root included.
func OutComponent(g *egraph.IntEvolvingGraph, root egraph.TemporalNode, mode egraph.CausalMode) (Component, error) {
	res, err := core.BFS(g, root, core.Options{Mode: mode})
	if err != nil {
		return nil, err
	}
	comp := make(Component, 0, res.NumReached())
	res.Visit(func(tn egraph.TemporalNode, _ int) bool {
		comp = append(comp, tn)
		return true
	})
	sort.Slice(comp, func(a, b int) bool {
		if comp[a].Stamp != comp[b].Stamp {
			return comp[a].Stamp < comp[b].Stamp
		}
		return comp[a].Node < comp[b].Node
	})
	return comp, nil
}

// SizeDistribution returns the multiset of out-component sizes over all
// active temporal nodes, sorted descending — the influence profile of
// the graph. Cost is one BFS per active temporal node.
func SizeDistribution(g *egraph.IntEvolvingGraph, mode egraph.CausalMode) []int {
	u := g.Unfold(mode)
	sizes := make([]int, 0, len(u.Order))
	for _, root := range u.Order {
		res, err := core.BFS(g, root, core.Options{Mode: mode})
		if err != nil {
			continue
		}
		sizes = append(sizes, res.NumReached())
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	return sizes
}

// sortComponents orders by decreasing size, then by first member.
func sortComponents(cs []Component) {
	for _, c := range cs {
		sort.Slice(c, func(a, b int) bool {
			if c[a].Stamp != c[b].Stamp {
				return c[a].Stamp < c[b].Stamp
			}
			return c[a].Node < c[b].Node
		})
	}
	sort.Slice(cs, func(i, j int) bool {
		if len(cs[i]) != len(cs[j]) {
			return len(cs[i]) > len(cs[j])
		}
		a, b := cs[i][0], cs[j][0]
		if a.Stamp != b.Stamp {
			return a.Stamp < b.Stamp
		}
		return a.Node < b.Node
	})
}

// tarjan computes strongly connected components of a digraph given as
// adjacency lists, iteratively (no recursion, safe for deep graphs).
// Components are emitted in reverse topological order.
func tarjan(adj [][]int32) [][]int32 {
	n := len(adj)
	const unset = -1
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unset
	}
	var (
		stack   []int32 // Tarjan stack
		sccs    [][]int32
		counter int32
	)
	type frame struct {
		v  int32
		ei int // next edge index to explore
	}
	var call []frame
	for s := 0; s < n; s++ {
		if index[s] != unset {
			continue
		}
		call = append(call[:0], frame{v: int32(s)})
		index[s] = counter
		low[s] = counter
		counter++
		stack = append(stack, int32(s))
		onStack[s] = true
		for len(call) > 0 {
			f := &call[len(call)-1]
			if f.ei < len(adj[f.v]) {
				w := adj[f.v][f.ei]
				f.ei++
				if index[w] == unset {
					index[w] = counter
					low[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					call = append(call, frame{v: w})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			// Post-order: pop the frame, emit an SCC if v is a root.
			v := f.v
			call = call[:len(call)-1]
			if len(call) > 0 {
				p := call[len(call)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] == index[v] {
				var scc []int32
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					scc = append(scc, w)
					if w == v {
						break
					}
				}
				sccs = append(sccs, scc)
			}
		}
	}
	return sccs
}

// TarjanStatic exposes the generic Tarjan over an unfolded static graph,
// used by tests to validate the per-snapshot shortcut of Strong.
func TarjanStatic(g *egraph.StaticGraph) [][]int32 {
	adj := make([][]int32, g.NumNodes())
	for v := 0; v < g.NumNodes(); v++ {
		adj[v] = g.Neighbors(int32(v))
	}
	return tarjan(adj)
}
