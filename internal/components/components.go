// Package components computes connectivity structure over evolving
// graphs via the Theorem 1 unfolding:
//
//   - weakly connected temporal components (edge direction and time
//     ignored): the coarsest "who ever touches whom" partition;
//   - strongly connected temporal components: because causal edges only
//     ever point forward in time, every directed cycle of the unfolded
//     graph lies within a single stamp, so SCCs are per-snapshot
//     objects — a small structure theorem this package both exploits
//     and property-tests;
//   - out-components (Def. 7 reachability sets) and their size
//     distribution, the building block of Sec. V influence analysis.
//
// Every entry point traverses the graph's cached flat CSR view
// (Graph.CSR, DESIGN.md §8-9) by default: weak components union-find
// directly over CSR arcs, strong components run per-snapshot Tarjan off
// the CSR rows, and the size distribution fans its per-root BFS runs
// across a worker pool with pooled frontier scratch (core.ReachSweep).
// Options.UseAdjacencyMaps routes each computation through the original
// per-stamp adjacency traversal instead — slower, kept as the
// differential-testing oracle; results are identical either way, which
// the package's equivalence tests assert.
package components

import (
	"sort"

	"repro/internal/core"
	"repro/internal/ds"
	"repro/internal/egraph"
)

// Component is a set of temporal nodes.
type Component []egraph.TemporalNode

// Options configures the component computations. The zero value is the
// default CSR engine under the paper's all-pairs causal mode.
type Options struct {
	// Mode selects the causal edge set. Weak and out-component structure
	// is identical in both modes (causal reachability is transitive);
	// the option exists so differential tests can exercise both unfolded
	// edge sets.
	Mode egraph.CausalMode
	// UseAdjacencyMaps routes the computation through the adjacency-map
	// oracle (per-stamp neighbour lists, Unfold-based traversal) instead
	// of the flat CSR view. Results are identical; the slow path is kept
	// for differential testing.
	UseAdjacencyMaps bool
	// Workers bounds the fan-out of SizeDistribution's per-root BFS
	// sweep on the CSR engine; 0 means GOMAXPROCS. The oracle engine is
	// always sequential.
	Workers int
}

// Weak returns the weakly connected components of the evolving graph's
// unfolding: temporal nodes joined by static or causal edges in either
// direction. Components are sorted by decreasing size (ties: by first
// member); members are in stamp-major order.
func Weak(g *egraph.IntEvolvingGraph, mode egraph.CausalMode) []Component {
	return WeakOpts(g, Options{Mode: mode})
}

// WeakOpts is Weak with engine control.
func WeakOpts(g *egraph.IntEvolvingGraph, opts Options) []Component {
	if opts.UseAdjacencyMaps {
		return weakReference(g, opts.Mode)
	}
	return weakCSR(g, opts.Mode)
}

// weakCSR computes weak components by union-find straight over the CSR
// view: every static out-arc and forward causal arc of every active
// temporal node is one Union call (unions are symmetric, so one
// direction per arc suffices; undirected graphs already carry both
// directions in their out rows).
func weakCSR(g *egraph.IntEvolvingGraph, mode egraph.CausalMode) []Component {
	csr := g.CSR()
	n := int32(csr.N)
	consecutive := mode == egraph.CausalConsecutive
	uf := ds.NewUnionFind(csr.Size())
	for id := csr.Active.NextSet(0); id >= 0; id = csr.Active.NextSet(id + 1) {
		for _, nb := range csr.OutArcs(int32(id)) {
			uf.Union(id, int(nb))
		}
		stamps, v := csr.CausalArcs(int32(id), true, consecutive)
		for _, s := range stamps {
			uf.Union(id, int(s*n+v))
		}
	}
	// Group active ids by root; stamp-major id order keeps every
	// component's member list sorted as it is built.
	groups := make(map[int][]int)
	for id := csr.Active.NextSet(0); id >= 0; id = csr.Active.NextSet(id + 1) {
		r := uf.Find(id)
		groups[r] = append(groups[r], id)
	}
	out := make([]Component, 0, len(groups))
	for _, ids := range groups {
		comp := make(Component, len(ids))
		for i, id := range ids {
			comp[i] = egraph.TemporalNode{Node: int32(id) % n, Stamp: int32(id) / n}
		}
		out = append(out, comp)
	}
	sortComponents(out)
	return out
}

// weakReference is the adjacency-map oracle: union-find over the
// materialised Theorem 1 unfolding.
func weakReference(g *egraph.IntEvolvingGraph, mode egraph.CausalMode) []Component {
	u := g.Unfold(mode)
	n := u.Graph.NumNodes()
	uf := ds.NewUnionFind(n)
	for v := 0; v < n; v++ {
		for _, w := range u.Graph.Neighbors(int32(v)) {
			uf.Union(v, int(w))
		}
	}
	groups := make(map[int][]int, uf.Sets())
	for v := 0; v < n; v++ {
		r := uf.Find(v)
		groups[r] = append(groups[r], v)
	}
	out := make([]Component, 0, len(groups))
	for _, ids := range groups {
		comp := make(Component, len(ids))
		for i, id := range ids {
			comp[i] = u.Order[id]
		}
		out = append(out, comp)
	}
	sortComponents(out)
	return out
}

// Strong returns the strongly connected components of the unfolding with
// at least minSize members. Because the unfolded graph's cross-stamp
// edges are acyclic, this runs Tarjan's algorithm independently on each
// snapshot's active subgraph; TestStrongMatchesGenericTarjan verifies the
// shortcut against a direct Tarjan on the whole unfolding. Causal mode is
// irrelevant: causal edges cannot close cycles.
func Strong(g *egraph.IntEvolvingGraph, minSize int) []Component {
	return StrongOpts(g, minSize, Options{})
}

// StrongOpts is Strong with engine control.
func StrongOpts(g *egraph.IntEvolvingGraph, minSize int, opts Options) []Component {
	if minSize < 1 {
		minSize = 1
	}
	if opts.UseAdjacencyMaps {
		return strongReference(g, minSize)
	}
	return strongCSR(g, minSize)
}

// strongCSR runs the per-snapshot Tarjan over the CSR rows: each
// snapshot's active nodes get dense local ids through one reusable index
// array, and adjacency comes from the pre-rebased OutArcs rows — no maps
// and no per-visit neighbour lookups.
func strongCSR(g *egraph.IntEvolvingGraph, minSize int) []Component {
	csr := g.CSR()
	n := csr.N
	index := make([]int32, n)
	var ids []int32
	var out []Component
	for t := 0; t < csr.T; t++ {
		base := t * n
		act := g.ActiveNodes(t)
		ids = ids[:0]
		for v := act.NextSet(0); v >= 0; v = act.NextSet(v + 1) {
			index[v] = int32(len(ids))
			ids = append(ids, int32(v))
		}
		adj := make([][]int32, len(ids))
		for i, v := range ids {
			row := csr.OutArcs(int32(base + int(v)))
			if len(row) == 0 {
				continue
			}
			local := make([]int32, len(row))
			for j, w := range row {
				local[j] = index[int(w)-base]
			}
			adj[i] = local
		}
		out = appendSCCs(out, adj, ids, int32(t), minSize)
	}
	sortComponents(out)
	return out
}

// strongReference is the adjacency-map oracle for Strong.
func strongReference(g *egraph.IntEvolvingGraph, minSize int) []Component {
	var out []Component
	for t := 0; t < g.NumStamps(); t++ {
		act := g.ActiveNodes(t)
		ids := make([]int32, 0, act.Count())
		index := make(map[int32]int32)
		for v := act.NextSet(0); v >= 0; v = act.NextSet(v + 1) {
			index[int32(v)] = int32(len(ids))
			ids = append(ids, int32(v))
		}
		adj := make([][]int32, len(ids))
		for i, v := range ids {
			for _, w := range g.OutNeighbors(v, int32(t)) {
				adj[i] = append(adj[i], index[w])
			}
		}
		out = appendSCCs(out, adj, ids, int32(t), minSize)
	}
	sortComponents(out)
	return out
}

// appendSCCs converts one snapshot's Tarjan output to Components,
// dropping those below minSize.
func appendSCCs(out []Component, adj [][]int32, ids []int32, stamp int32, minSize int) []Component {
	for _, scc := range tarjan(adj) {
		if len(scc) < minSize {
			continue
		}
		comp := make(Component, len(scc))
		for i, li := range scc {
			comp[i] = egraph.TemporalNode{Node: ids[li], Stamp: stamp}
		}
		sort.Slice(comp, func(a, b int) bool { return comp[a].Node < comp[b].Node })
		out = append(out, comp)
	}
	return out
}

// OutComponent returns the reachability set of an active temporal node
// (Def. 7) as a Component, root included, sorted stamp-major.
func OutComponent(g *egraph.IntEvolvingGraph, root egraph.TemporalNode, mode egraph.CausalMode) (Component, error) {
	return OutComponentOpts(g, root, Options{Mode: mode})
}

// OutComponentOpts is OutComponent with engine control; the engine
// choice flows into the underlying core.BFS.
func OutComponentOpts(g *egraph.IntEvolvingGraph, root egraph.TemporalNode, opts Options) (Component, error) {
	res, err := core.BFS(g, root, core.Options{Mode: opts.Mode, UseAdjacencyMaps: opts.UseAdjacencyMaps})
	if err != nil {
		return nil, err
	}
	comp := make(Component, 0, res.NumReached())
	// Visit iterates temporal-node ids ascending — already stamp-major.
	res.Visit(func(tn egraph.TemporalNode, _ int) bool {
		comp = append(comp, tn)
		return true
	})
	return comp, nil
}

// SizeDistribution returns the multiset of out-component sizes over all
// active temporal nodes, sorted descending — the influence profile of
// the graph. Cost is one BFS per active temporal node; on the default
// engine the runs are fanned across workers with pooled scratch.
func SizeDistribution(g *egraph.IntEvolvingGraph, mode egraph.CausalMode) []int {
	return SizeDistributionOpts(g, Options{Mode: mode})
}

// SizeDistributionOpts is SizeDistribution with engine and worker
// control.
func SizeDistributionOpts(g *egraph.IntEvolvingGraph, opts Options) []int {
	roots := g.ActiveTemporalNodes()
	sizes := make([]int, len(roots))
	if opts.UseAdjacencyMaps {
		for i, root := range roots {
			res, err := core.BFS(g, root, core.Options{Mode: opts.Mode, UseAdjacencyMaps: true})
			if err != nil {
				continue // unreachable: roots are active by construction
			}
			sizes[i] = res.NumReached()
		}
	} else {
		// Roots are active by construction, so the sweep cannot fail.
		_ = core.ReachSweep(g, roots, core.Options{Mode: opts.Mode}, opts.Workers,
			func(i int, reached []int32) { sizes[i] = len(reached) })
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	return sizes
}

// sortComponents orders by decreasing size, then by first member.
func sortComponents(cs []Component) {
	for _, c := range cs {
		sort.Slice(c, func(a, b int) bool {
			if c[a].Stamp != c[b].Stamp {
				return c[a].Stamp < c[b].Stamp
			}
			return c[a].Node < c[b].Node
		})
	}
	sort.Slice(cs, func(i, j int) bool {
		if len(cs[i]) != len(cs[j]) {
			return len(cs[i]) > len(cs[j])
		}
		a, b := cs[i][0], cs[j][0]
		if a.Stamp != b.Stamp {
			return a.Stamp < b.Stamp
		}
		return a.Node < b.Node
	})
}

// tarjan computes strongly connected components of a digraph given as
// adjacency lists, iteratively (no recursion, safe for deep graphs).
// Components are emitted in reverse topological order.
func tarjan(adj [][]int32) [][]int32 {
	n := len(adj)
	const unset = -1
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unset
	}
	var (
		stack   []int32 // Tarjan stack
		sccs    [][]int32
		counter int32
	)
	type frame struct {
		v  int32
		ei int // next edge index to explore
	}
	var call []frame
	for s := 0; s < n; s++ {
		if index[s] != unset {
			continue
		}
		call = append(call[:0], frame{v: int32(s)})
		index[s] = counter
		low[s] = counter
		counter++
		stack = append(stack, int32(s))
		onStack[s] = true
		for len(call) > 0 {
			f := &call[len(call)-1]
			if f.ei < len(adj[f.v]) {
				w := adj[f.v][f.ei]
				f.ei++
				if index[w] == unset {
					index[w] = counter
					low[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					call = append(call, frame{v: w})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			// Post-order: pop the frame, emit an SCC if v is a root.
			v := f.v
			call = call[:len(call)-1]
			if len(call) > 0 {
				p := call[len(call)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] == index[v] {
				var scc []int32
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					scc = append(scc, w)
					if w == v {
						break
					}
				}
				sccs = append(sccs, scc)
			}
		}
	}
	return sccs
}

// TarjanStatic exposes the generic Tarjan over an unfolded static graph,
// used by tests to validate the per-snapshot shortcut of Strong.
func TarjanStatic(g *egraph.StaticGraph) [][]int32 {
	adj := make([][]int32, g.NumNodes())
	for v := 0; v < g.NumNodes(); v++ {
		adj[v] = g.Neighbors(int32(v))
	}
	return tarjan(adj)
}
