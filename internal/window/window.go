// Package window provides sliding-window views of an evolving graph:
// the subgraph induced by a contiguous range of stamps, plus a rolling
// iterator that advances the range one stamp at a time.
//
// Windowed analysis is the standard way to study long temporal networks
// (Tang et al.'s metrics are defined per window; communicability decays
// by window). A window of Gn = ⟨G[1], …, G[n]⟩ is itself an evolving
// graph ⟨G[a], …, G[b]⟩, so the entire algorithm suite applies to it
// unchanged; this package handles the slicing, the stamp-index
// bookkeeping between window and parent, and window-level summary
// statistics.
package window

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/egraph"
)

// Window is an evolving graph cut from a contiguous stamp range of a
// parent graph, remembering the correspondence.
type Window struct {
	// Graph is the induced evolving graph over stamps [Lo, Hi] of the
	// parent. Its stamp indices run from 0 with the parent's labels;
	// nodes keep their parent ids. Stamps left with no edges are
	// dropped by the build, so Graph.NumStamps() can be smaller than
	// Hi−Lo+1 — translate indices through ParentStamp.
	Graph *egraph.IntEvolvingGraph
	// Lo and Hi are the parent stamp indices bounding the window
	// (inclusive).
	Lo, Hi int

	parent *egraph.IntEvolvingGraph
}

// Cut returns the window of g covering parent stamps [lo, hi] inclusive.
func Cut(g *egraph.IntEvolvingGraph, lo, hi int) (*Window, error) {
	if lo < 0 || hi >= g.NumStamps() || lo > hi {
		return nil, fmt.Errorf("window: bad range [%d, %d] for %d stamps", lo, hi, g.NumStamps())
	}
	b := egraph.NewBuilder(g.Directed())
	for t := lo; t <= hi; t++ {
		label := g.TimeLabel(t)
		g.VisitEdges(int32(t), func(u, v int32, w float64) bool {
			b.AddEdge(u, v, label) // VisitEdges reports undirected edges once
			return true
		})
	}
	return &Window{Graph: b.Build(), Lo: lo, Hi: hi, parent: g}, nil
}

// Width returns the number of parent stamps the window spans.
func (w *Window) Width() int { return w.Hi - w.Lo + 1 }

// ParentStamp translates a stamp index of the window's graph to the
// parent's stamp index, or -1 for an out-of-range window stamp. Labels
// are preserved by Cut, so the translation is a label lookup.
func (w *Window) ParentStamp(windowStamp int32) int32 {
	if windowStamp < 0 || int(windowStamp) >= w.Graph.NumStamps() {
		return -1
	}
	return int32(w.parent.StampOf(w.Graph.TimeLabel(int(windowStamp))))
}

// Stats summarises one window position for rolling analyses.
type Stats struct {
	// Lo and Hi are the parent stamp indices of the window.
	Lo, Hi int
	// StaticEdges is |Ẽ| within the window.
	StaticEdges int
	// ActiveNodes is |V| within the window (active temporal nodes).
	ActiveNodes int
	// ReachableFromRoot is the number of temporal nodes the window
	// root reaches, 0 if the root node is inactive in this window.
	ReachableFromRoot int
}

// Roll slides a width-stamp window across the whole parent graph one
// stamp at a time and reports per-position statistics. root selects the
// node whose windowed reach is tracked (the paper's influence question
// asked per window); pass a negative root to skip the BFS.
func Roll(g *egraph.IntEvolvingGraph, width int, root int32) ([]Stats, error) {
	if width <= 0 || width > g.NumStamps() {
		return nil, fmt.Errorf("window: width %d out of range (1..%d)", width, g.NumStamps())
	}
	if int(root) >= g.NumNodes() {
		return nil, fmt.Errorf("window: root %d out of range (n=%d)", root, g.NumNodes())
	}
	var out []Stats
	for lo := 0; lo+width-1 < g.NumStamps(); lo++ {
		w, err := Cut(g, lo, lo+width-1)
		if err != nil {
			return nil, err
		}
		st := Stats{
			Lo:          w.Lo,
			Hi:          w.Hi,
			StaticEdges: w.Graph.StaticEdgeCount(),
			ActiveNodes: w.Graph.NumActiveNodes(),
		}
		// The window graph's node universe can be smaller than the
		// parent's when high-numbered nodes have no edges in range.
		if root >= 0 && int(root) < w.Graph.NumNodes() {
			if stamps := w.Graph.ActiveStamps(root); len(stamps) > 0 {
				res, err := core.BFS(w.Graph,
					egraph.TemporalNode{Node: root, Stamp: stamps[0]}, core.Options{})
				if err != nil {
					return nil, err
				}
				st.ReachableFromRoot = res.NumReached()
			}
		}
		out = append(out, st)
	}
	return out, nil
}
