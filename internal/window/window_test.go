package window

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/egraph"
)

func tn(v, s int32) egraph.TemporalNode { return egraph.TemporalNode{Node: v, Stamp: s} }

func randomGraph(rng *rand.Rand, directed bool) *egraph.IntEvolvingGraph {
	b := egraph.NewBuilder(directed)
	n := 2 + rng.Intn(8)
	stamps := 1 + rng.Intn(5)
	edges := rng.Intn(3 * n)
	for e := 0; e < edges; e++ {
		b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)), int64(1+rng.Intn(stamps)))
	}
	b.AddEdge(0, 1, 1)
	return b.Build()
}

func TestCutValidation(t *testing.T) {
	g := egraph.Figure1Graph()
	for _, c := range [][2]int{{-1, 1}, {0, 3}, {2, 1}} {
		if _, err := Cut(g, c[0], c[1]); err == nil {
			t.Errorf("Cut(%d, %d) succeeded, want error", c[0], c[1])
		}
	}
}

func TestCutFigure1(t *testing.T) {
	g := egraph.Figure1Graph()
	// The middle window [t2] contains only the edge 1→3.
	w, err := Cut(g, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if w.Width() != 1 || w.Graph.NumStamps() != 1 || w.Graph.StaticEdgeCount() != 1 {
		t.Fatalf("window = width %d, stamps %d, edges %d", w.Width(), w.Graph.NumStamps(), w.Graph.StaticEdgeCount())
	}
	if !w.Graph.HasEdge(0, 2, 0) {
		t.Fatal("window lost the 1→3 edge")
	}
	if got := w.ParentStamp(0); got != 1 {
		t.Fatalf("ParentStamp(0) = %d, want 1", got)
	}
	if got := w.ParentStamp(5); got != -1 {
		t.Fatalf("ParentStamp(out of range) = %d, want -1", got)
	}
	// The suffix window [t2, t3] supports the Fig. 3 search from (1,t2).
	w, err = Cut(g, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.BFS(w.Graph, tn(0, 0), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumReached() != 3 {
		t.Fatalf("suffix-window BFS reached %d, want 3 (Fig. 3)", res.NumReached())
	}
}

// A full-range window reproduces the parent graph: same edges, labels,
// activity, and BFS results from every root.
func TestFullWindowIsIdentity(t *testing.T) {
	f := func(seed int64, directed bool) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, directed)
		w, err := Cut(g, 0, g.NumStamps()-1)
		if err != nil {
			t.Log(err)
			return false
		}
		if w.Graph.NumStamps() != g.NumStamps() || w.Graph.StaticEdgeCount() != g.StaticEdgeCount() {
			t.Logf("seed %d: stamps %d/%d edges %d/%d", seed,
				w.Graph.NumStamps(), g.NumStamps(), w.Graph.StaticEdgeCount(), g.StaticEdgeCount())
			return false
		}
		for ts := 0; ts < g.NumStamps(); ts++ {
			if w.Graph.TimeLabel(ts) != g.TimeLabel(ts) || w.ParentStamp(int32(ts)) != int32(ts) {
				t.Logf("seed %d: stamp mapping broken at %d", seed, ts)
				return false
			}
		}
		root := tn(0, g.ActiveStamps(0)[0])
		full, err := core.BFS(g, root, core.Options{})
		if err != nil {
			t.Log(err)
			return false
		}
		cut, err := core.BFS(w.Graph, root, core.Options{})
		if err != nil {
			t.Log(err)
			return false
		}
		return full.NumReached() == cut.NumReached() && full.MaxDist() == cut.MaxDist()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Every edge of a window exists in the parent at the matching label, and
// every parent edge within range appears in the window.
func TestWindowEdgeCorrespondence(t *testing.T) {
	f := func(seed int64, directed bool, loSel, hiSel uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, directed)
		lo := int(loSel) % g.NumStamps()
		hi := lo + int(hiSel)%(g.NumStamps()-lo)
		w, err := Cut(g, lo, hi)
		if err != nil {
			t.Log(err)
			return false
		}
		// Window → parent.
		for ts := 0; ts < w.Graph.NumStamps(); ts++ {
			ps := w.ParentStamp(int32(ts))
			if ps < int32(lo) || ps > int32(hi) {
				t.Logf("seed %d: ParentStamp(%d) = %d outside [%d, %d]", seed, ts, ps, lo, hi)
				return false
			}
			ok := true
			w.Graph.VisitEdges(int32(ts), func(u, v int32, _ float64) bool {
				if !g.HasEdge(u, v, ps) {
					ok = false
				}
				return ok
			})
			if !ok {
				t.Logf("seed %d: window edge missing in parent", seed)
				return false
			}
		}
		// Parent → window (count check suffices given the above).
		want := 0
		for ts := lo; ts <= hi; ts++ {
			want += g.SnapshotEdgeCount(ts)
		}
		if w.Graph.StaticEdgeCount() != want {
			t.Logf("seed %d: window edges %d, parent range %d", seed, w.Graph.StaticEdgeCount(), want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRollValidation(t *testing.T) {
	g := egraph.Figure1Graph()
	if _, err := Roll(g, 0, -1); err == nil {
		t.Error("Roll(width 0) succeeded")
	}
	if _, err := Roll(g, 4, -1); err == nil {
		t.Error("Roll(width > stamps) succeeded")
	}
	if _, err := Roll(g, 1, 99); err == nil {
		t.Error("Roll(root out of range) succeeded")
	}
}

func TestRollFigure1(t *testing.T) {
	g := egraph.Figure1Graph()
	stats, err := Roll(g, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 2 {
		t.Fatalf("Roll(2) returned %d positions, want 2", len(stats))
	}
	// Window [t1,t2]: edges 1→2, 1→3; node 1 reaches {(1,t1),(2,t1),(1,t2),(3,t2)}.
	if stats[0].Lo != 0 || stats[0].Hi != 1 || stats[0].StaticEdges != 2 || stats[0].ReachableFromRoot != 4 {
		t.Fatalf("stats[0] = %+v", stats[0])
	}
	// Window [t2,t3]: edges 1→3, 2→3; node 1 reaches {(1,t2),(3,t2),(3,t3)} (Fig. 3).
	if stats[1].Lo != 1 || stats[1].Hi != 2 || stats[1].StaticEdges != 2 || stats[1].ReachableFromRoot != 3 {
		t.Fatalf("stats[1] = %+v", stats[1])
	}
}

// Rolling with width = NumStamps yields exactly one position whose edge
// and activity counts match the parent.
func TestRollFullWidth(t *testing.T) {
	f := func(seed int64, directed bool) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, directed)
		stats, err := Roll(g, g.NumStamps(), -1)
		if err != nil {
			t.Log(err)
			return false
		}
		return len(stats) == 1 &&
			stats[0].StaticEdges == g.StaticEdgeCount() &&
			stats[0].ActiveNodes == g.NumActiveNodes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
