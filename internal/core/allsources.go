package core

import (
	"runtime"
	"sync"

	"repro/internal/egraph"
)

// SourceStats summarises one source's BFS for the all-sources sweep.
type SourceStats struct {
	Root         egraph.TemporalNode
	Reached      int     // temporal nodes reached, root included
	Eccentricity int     // largest finite distance
	Closeness    float64 // Σ 1/d over reached nodes at d > 0
}

// AllSourcesBFS runs one BFS from every active temporal node, fanned out
// over a worker pool, and returns per-source statistics in unfolding
// order. It is the building block for diameters, closeness rankings and
// reachability profiles at analysis scale; workers ≤ 0 means GOMAXPROCS.
//
// Each worker owns its BFS scratch state; the graph is read-only and
// safe to share.
func AllSourcesBFS(g *egraph.IntEvolvingGraph, mode egraph.CausalMode, workers int) []SourceStats {
	u := g.Unfold(mode)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	out := make([]SourceStats, len(u.Order))
	var next int64
	var mu sync.Mutex
	take := func() int {
		mu.Lock()
		defer mu.Unlock()
		if next >= int64(len(u.Order)) {
			return -1
		}
		i := int(next)
		next++
		return i
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := take()
				if i < 0 {
					return
				}
				root := u.Order[i]
				res, err := BFS(g, root, Options{Mode: mode})
				if err != nil {
					out[i] = SourceStats{Root: root}
					continue
				}
				st := SourceStats{
					Root:         root,
					Reached:      res.NumReached(),
					Eccentricity: res.MaxDist(),
				}
				res.Visit(func(_ egraph.TemporalNode, d int) bool {
					if d > 0 {
						st.Closeness += 1 / float64(d)
					}
					return true
				})
				out[i] = st
			}
		}()
	}
	wg.Wait()
	return out
}

// ParallelTemporalDiameter computes the temporal diameter with the
// all-sources worker pool.
func ParallelTemporalDiameter(g *egraph.IntEvolvingGraph, mode egraph.CausalMode, workers int) int {
	diam := 0
	for _, st := range AllSourcesBFS(g, mode, workers) {
		if st.Eccentricity > diam {
			diam = st.Eccentricity
		}
	}
	return diam
}

// EarliestArrival returns, for every node w, the earliest stamp index at
// which information leaving root can reach w — the classic
// earliest-arrival semantics of temporal reachability, derived from one
// Algorithm 1 run by taking the minimum stamp over w's reached temporal
// nodes. Unreachable nodes map to -1; root's own node maps to its
// starting stamp.
func EarliestArrival(g *egraph.IntEvolvingGraph, root egraph.TemporalNode, mode egraph.CausalMode) ([]int32, error) {
	res, err := BFS(g, root, Options{Mode: mode})
	if err != nil {
		return nil, err
	}
	arrival := make([]int32, g.NumNodes())
	for i := range arrival {
		arrival[i] = -1
	}
	res.Visit(func(tn egraph.TemporalNode, _ int) bool {
		if cur := arrival[tn.Node]; cur < 0 || tn.Stamp < cur {
			arrival[tn.Node] = tn.Stamp
		}
		return true
	})
	return arrival, nil
}
