package core

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/egraph"
)

// Figure 2: exactly two temporal paths of length 4 from (1,t1) to (3,t3),
// ⟨(1,t1),(1,t2),(3,t2),(3,t3)⟩ and ⟨(1,t1),(2,t1),(2,t3),(3,t3)⟩.
func TestFigure2TemporalPaths(t *testing.T) {
	g := egraph.Figure1Graph()
	paths, err := EnumeratePaths(g, tn(0, 0), tn(2, 2), egraph.CausalAllPairs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("found %d paths, want 2: %v", len(paths), paths)
	}
	want := map[string]bool{
		"⟨(0,t1), (0,t2), (2,t2), (2,t3)⟩": true,
		"⟨(0,t1), (1,t1), (1,t3), (2,t3)⟩": true,
	}
	for _, p := range paths {
		if p.Length() != 4 {
			t.Fatalf("path %v has length %d, want 4", p, p.Length())
		}
		if p.Hops() != 3 {
			t.Fatalf("path %v has %d hops, want 3", p, p.Hops())
		}
		if !want[p.String()] {
			t.Fatalf("unexpected path %v", p)
		}
		if !p.IsValid(g, egraph.CausalAllPairs) {
			t.Fatalf("enumerated path %v fails IsValid", p)
		}
	}
}

// The non-path from Sec. II-A: ⟨(1,t1),(1,t2),(2,t2),(3,t2),(3,t3)⟩ is
// invalid because (2,t2) is inactive.
func TestInvalidPathThroughInactiveNode(t *testing.T) {
	g := egraph.Figure1Graph()
	p := TemporalPath{tn(0, 0), tn(0, 1), tn(1, 1), tn(2, 1), tn(2, 2)}
	if p.IsValid(g, egraph.CausalAllPairs) {
		t.Fatal("path through inactive (2,t2) reported valid")
	}
}

func TestPathValidation(t *testing.T) {
	g := egraph.Figure1Graph()
	cases := []struct {
		name string
		p    TemporalPath
		mode egraph.CausalMode
		want bool
	}{
		{"empty", TemporalPath{}, egraph.CausalAllPairs, true},
		{"single active", TemporalPath{tn(0, 0)}, egraph.CausalAllPairs, true},
		{"single inactive", TemporalPath{tn(2, 0)}, egraph.CausalAllPairs, false},
		{"static hop", TemporalPath{tn(0, 0), tn(1, 0)}, egraph.CausalAllPairs, true},
		{"missing edge", TemporalPath{tn(1, 0), tn(0, 0)}, egraph.CausalAllPairs, false},
		{"causal hop", TemporalPath{tn(0, 0), tn(0, 1)}, egraph.CausalAllPairs, true},
		{"backward in time", TemporalPath{tn(0, 1), tn(0, 0)}, egraph.CausalAllPairs, false},
		{"repeat temporal node", TemporalPath{tn(0, 0), tn(0, 0)}, egraph.CausalAllPairs, false},
		{"skip causal all-pairs", TemporalPath{tn(1, 0), tn(1, 2)}, egraph.CausalAllPairs, true},
		{"out of range", TemporalPath{tn(9, 0)}, egraph.CausalAllPairs, false},
	}
	for _, tc := range cases {
		if got := tc.p.IsValid(g, tc.mode); got != tc.want {
			t.Errorf("%s: IsValid = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestConsecutiveModeRejectsSkipHop(t *testing.T) {
	// Node 0 active at stamps 0,1,2.
	b := egraph.NewBuilder(true)
	b.AddEdge(0, 1, 1)
	b.AddEdge(0, 1, 2)
	b.AddEdge(0, 1, 3)
	g := b.Build()
	skip := TemporalPath{tn(0, 0), tn(0, 2)}
	if !skip.IsValid(g, egraph.CausalAllPairs) {
		t.Fatal("skip hop should be valid in all-pairs mode")
	}
	if skip.IsValid(g, egraph.CausalConsecutive) {
		t.Fatal("skip hop should be invalid in consecutive mode")
	}
	chain := TemporalPath{tn(0, 0), tn(0, 1), tn(0, 2)}
	if !chain.IsValid(g, egraph.CausalConsecutive) {
		t.Fatal("chain should be valid in consecutive mode")
	}
}

// CountWalks reproduces the algebraic result: 2 walks of 3 hops from
// (1,t1) to (3,t3), 0 of any other hop count.
func TestCountWalksFigure1(t *testing.T) {
	g := egraph.Figure1Graph()
	got, err := CountWalks(g, tn(0, 0), tn(2, 2), egraph.CausalAllPairs, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Fatalf("3-hop walks = %d, want 2", got)
	}
	for _, k := range []int{0, 1, 2, 4, 5} {
		got, err := CountWalks(g, tn(0, 0), tn(2, 2), egraph.CausalAllPairs, k)
		if err != nil {
			t.Fatal(err)
		}
		if got != 0 {
			t.Fatalf("%d-hop walks = %d, want 0", k, got)
		}
	}
}

func TestCountWalksErrors(t *testing.T) {
	g := egraph.Figure1Graph()
	if _, err := CountWalks(g, tn(2, 0), tn(2, 2), egraph.CausalAllPairs, 1); err == nil {
		t.Fatal("inactive source should fail")
	}
	if _, err := CountWalks(g, tn(0, 0), tn(2, 2), egraph.CausalAllPairs, -1); err == nil {
		t.Fatal("negative k should fail")
	}
}

// Property: on acyclic snapshots (DAG per stamp), the number of paths
// found by enumeration with exactly k hops equals CountWalks(k).
func TestEnumerationMatchesWalkCountOnDAGs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := egraph.NewBuilder(true)
		n := 2 + rng.Intn(5)
		stamps := 1 + rng.Intn(3)
		for e := 0; e < rng.Intn(2*n); e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			if u > v {
				u, v = v, u
			}
			b.AddEdge(int32(u), int32(v), int64(1+rng.Intn(stamps)))
		}
		b.AddEdge(0, 1, 1)
		g := b.Build()
		u := g.Unfold(egraph.CausalAllPairs)
		from := u.Order[0]
		for _, to := range u.Order {
			if to == from {
				continue
			}
			paths, err := EnumeratePaths(g, from, to, egraph.CausalAllPairs, 0)
			if err != nil {
				return false
			}
			byHops := map[int]int64{}
			for _, p := range paths {
				byHops[p.Hops()]++
			}
			maxK := g.NumActiveNodes()
			for k := 1; k <= maxK; k++ {
				walks, err := CountWalks(g, from, to, egraph.CausalAllPairs, k)
				if err != nil {
					return false
				}
				if walks != byHops[k] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestShortestPathFigure1(t *testing.T) {
	g := egraph.Figure1Graph()
	p, err := ShortestPath(g, tn(0, 0), tn(2, 2), egraph.CausalAllPairs)
	if err != nil {
		t.Fatal(err)
	}
	if p.Hops() != 3 {
		t.Fatalf("shortest path %v has %d hops, want 3", p, p.Hops())
	}
	if p[0] != tn(0, 0) || p[len(p)-1] != tn(2, 2) {
		t.Fatalf("endpoints wrong: %v", p)
	}
	if !p.IsValid(g, egraph.CausalAllPairs) {
		t.Fatalf("shortest path %v invalid", p)
	}
	// Unreachable target → nil.
	p, err = ShortestPath(g, tn(2, 2), tn(0, 0), egraph.CausalAllPairs)
	if err != nil {
		t.Fatal(err)
	}
	if p != nil {
		t.Fatalf("unreachable target returned path %v", p)
	}
}

// Property: PathTo returns a valid temporal path of exactly Dist hops
// for every reached node.
func TestPathToAlwaysValidAndShortest(t *testing.T) {
	f := func(seed int64, directed bool) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, directed)
		u := g.Unfold(egraph.CausalAllPairs)
		root := u.Order[0]
		res, err := BFS(g, root, Options{TrackParents: true})
		if err != nil {
			return false
		}
		ok := true
		res.Visit(func(n egraph.TemporalNode, d int) bool {
			p := TemporalPath(res.PathTo(n))
			if p.Hops() != d || !p.IsValid(g, egraph.CausalAllPairs) {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPathToWithoutParents(t *testing.T) {
	g := egraph.Figure1Graph()
	res, err := BFS(g, tn(0, 0), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.PathTo(tn(2, 2)) != nil {
		t.Fatal("PathTo without TrackParents should return nil")
	}
	if _, ok := res.Parent(tn(2, 2)); ok {
		t.Fatal("Parent without TrackParents should be ok=false")
	}
}

func TestEnumeratePathsMaxHops(t *testing.T) {
	g := egraph.Figure1Graph()
	paths, err := EnumeratePaths(g, tn(0, 0), tn(2, 2), egraph.CausalAllPairs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 0 {
		t.Fatalf("2-hop cap should exclude both 3-hop paths, got %v", paths)
	}
}

func TestEnumeratePathsErrors(t *testing.T) {
	g := egraph.Figure1Graph()
	if _, err := EnumeratePaths(g, tn(2, 0), tn(2, 2), egraph.CausalAllPairs, 0); err == nil {
		t.Fatal("inactive source should fail")
	}
	if _, err := EnumeratePaths(g, tn(0, 0), tn(2, 0), egraph.CausalAllPairs, 0); err == nil {
		t.Fatal("inactive target should fail")
	}
}

func TestTemporalPathString(t *testing.T) {
	p := TemporalPath{tn(0, 0), tn(1, 0)}
	if got := p.String(); !strings.Contains(got, "(0,t1)") || !strings.Contains(got, "(1,t1)") {
		t.Fatalf("String = %q", got)
	}
	if (TemporalPath{}).String() != "⟨⟩" {
		t.Fatal("empty path string wrong")
	}
	if (TemporalPath{}).Hops() != 0 {
		t.Fatal("empty path hops wrong")
	}
}
