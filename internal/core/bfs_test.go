package core

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/egraph"
)

func tn(v, s int32) egraph.TemporalNode { return egraph.TemporalNode{Node: v, Stamp: s} }

// randomGraph mirrors egraph's property-test generator.
func randomGraph(rng *rand.Rand, directed bool) *egraph.IntEvolvingGraph {
	b := egraph.NewBuilder(directed)
	n := 2 + rng.Intn(8)
	stamps := 1 + rng.Intn(5)
	edges := rng.Intn(3 * n)
	for e := 0; e < edges; e++ {
		b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)), int64(1+rng.Intn(stamps)))
	}
	b.AddEdge(0, 1, 1)
	return b.Build()
}

// Forward neighbours of the Fig. 1 graph exactly as stated in Sec. II-A:
// "the forward neighbors of (1,t1) are (2,t1) and (1,t2) and the only
// forward neighbor of (2,t1) is (2,t3)".
func TestForwardNeighborsFigure1(t *testing.T) {
	g := egraph.Figure1Graph()
	got := ForwardNeighbors(g, tn(0, 0), egraph.CausalAllPairs)
	want := map[egraph.TemporalNode]bool{tn(1, 0): true, tn(0, 1): true}
	if len(got) != len(want) {
		t.Fatalf("ForwardNeighbors((1,t1)) = %v", got)
	}
	for _, nb := range got {
		if !want[nb] {
			t.Fatalf("unexpected neighbour %v", nb)
		}
	}
	got = ForwardNeighbors(g, tn(1, 0), egraph.CausalAllPairs)
	if len(got) != 1 || got[0] != tn(1, 2) {
		t.Fatalf("ForwardNeighbors((2,t1)) = %v, want [(2,t3)]", got)
	}
}

// 2-forward neighbours of (1,t1) per Sec. II-A: (2,t1), (1,t2), (2,t2)…
// — the paper lists (2,t2) but (2,t2) is inactive; the reachable set at
// distance ≤ 2 is {(2,t1), (1,t2), (3,t2), (2,t3)}. We test distances.
func TestFigure1Distances(t *testing.T) {
	g := egraph.Figure1Graph()
	res, err := BFS(g, tn(0, 0), Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantDist := map[egraph.TemporalNode]int{
		tn(0, 0): 0,
		tn(1, 0): 1, tn(0, 1): 1,
		tn(2, 1): 2, tn(1, 2): 2,
		tn(2, 2): 3,
	}
	for node, want := range wantDist {
		if got := res.Dist(node); got != want {
			t.Errorf("dist(%v) = %d, want %d", node, got, want)
		}
	}
	if res.NumReached() != 6 {
		t.Fatalf("NumReached = %d, want 6", res.NumReached())
	}
	if res.MaxDist() != 3 {
		t.Fatalf("MaxDist = %d, want 3", res.MaxDist())
	}
	ls := res.LevelSizes()
	want := []int{1, 2, 2, 1}
	for i := range want {
		if ls[i] != want[i] {
			t.Fatalf("LevelSizes = %v, want %v", ls, want)
		}
	}
}

// Fig. 3: BFS from root (1,t2) reaches (3,t2) at k=1, (3,t3) at k=2, and
// never touches stamp t1.
func TestFigure3BFSTrace(t *testing.T) {
	g := egraph.Figure1Graph()
	res, err := BFS(g, tn(0, 1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d := res.Dist(tn(2, 1)); d != 1 {
		t.Fatalf("dist((3,t2)) = %d, want 1", d)
	}
	if d := res.Dist(tn(2, 2)); d != 2 {
		t.Fatalf("dist((3,t3)) = %d, want 2", d)
	}
	if res.NumReached() != 3 {
		t.Fatalf("NumReached = %d, want 3", res.NumReached())
	}
	// "the time t1 does not participate in the BFS": nothing at stamp 0
	// is reached.
	res.Visit(func(n egraph.TemporalNode, _ int) bool {
		if n.Stamp == 0 {
			t.Fatalf("BFS from (1,t2) reached %v at stamp t1", n)
		}
		return true
	})
}

// Sec. II-C: "all G[t] with time stamps t < t′ for a starting node (v,t′)
// are irrelevant to the BFS traversal" — deleting earlier snapshots must
// not change the result.
func TestEarlierStampsIrrelevant(t *testing.T) {
	f := func(seed int64, directed bool) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, directed)
		if g.NumStamps() < 2 {
			return true
		}
		// Pick a root active at the last stamp.
		last := int32(g.NumStamps() - 1)
		act := g.ActiveNodes(int(last))
		v := act.NextSet(0)
		if v < 0 {
			return true
		}
		root := tn(int32(v), last)
		full, err := BFS(g, root, Options{})
		if err != nil {
			return false
		}
		// Rebuild the graph keeping only the last stamp.
		b := egraph.NewBuilder(directed)
		g.VisitEdges(last, func(u, w int32, _ float64) bool {
			b.AddEdge(u, w, g.TimeLabel(int(last)))
			return true
		})
		trimmed := b.Build()
		troot := tn(int32(v), 0)
		tres, err := BFS(trimmed, troot, Options{})
		if err != nil {
			return false
		}
		if full.NumReached() != tres.NumReached() {
			return false
		}
		ok := true
		full.Visit(func(n egraph.TemporalNode, d int) bool {
			if n.Stamp != last {
				ok = false
				return false
			}
			if tres.Dist(tn(n.Node, 0)) != d {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBFSInactiveRoot(t *testing.T) {
	g := egraph.Figure1Graph()
	if _, err := BFS(g, tn(2, 0), Options{}); !errors.Is(err, ErrInactiveRoot) {
		t.Fatalf("err = %v, want ErrInactiveRoot", err)
	}
}

func TestBFSRootOutOfRange(t *testing.T) {
	g := egraph.Figure1Graph()
	for _, root := range []egraph.TemporalNode{tn(-1, 0), tn(5, 0), tn(0, -1), tn(0, 9)} {
		if _, err := BFS(g, root, Options{}); err == nil {
			t.Fatalf("BFS(%v) should fail", root)
		}
	}
}

// Theorem 1: the evolving-graph BFS agrees with the textbook static BFS
// on the unfolded graph G = (V, E), for random directed and undirected
// graphs, in both causal modes, from every active root.
func TestBFSMatchesUnfoldedStaticBFS(t *testing.T) {
	f := func(seed int64, directed, consecutive bool) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, directed)
		mode := egraph.CausalAllPairs
		if consecutive {
			mode = egraph.CausalConsecutive
		}
		u := g.Unfold(mode)
		for rootID, root := range u.Order {
			res, err := BFS(g, root, Options{Mode: mode})
			if err != nil {
				return false
			}
			staticDist := u.Graph.BFS(int32(rootID))
			for id, want := range staticDist {
				if res.Dist(u.Order[id]) != int(want) {
					return false
				}
			}
			// And nothing inactive is ever reached.
			reached := 0
			res.Visit(func(n egraph.TemporalNode, _ int) bool {
				if u.IDOf(n) < 0 {
					reached = -1
					return false
				}
				reached++
				return true
			})
			if reached != res.NumReached() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Def. 6: the distance is not symmetric — exhibit a pair with
// d(a→b) finite and d(b→a) infinite.
func TestDistanceIsNotSymmetric(t *testing.T) {
	g := egraph.Figure1Graph()
	fwd, err := BFS(g, tn(0, 0), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fwd.Dist(tn(2, 2)) != 3 {
		t.Fatalf("d((1,t1)→(3,t3)) = %d, want 3", fwd.Dist(tn(2, 2)))
	}
	back, err := BFS(g, tn(2, 2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if back.Reached(tn(0, 0)) {
		t.Fatal("(1,t1) should be unreachable from (3,t3)")
	}
}

func TestMaxDepth(t *testing.T) {
	g := egraph.Figure1Graph()
	res, err := BFS(g, tn(0, 0), Options{MaxDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumReached() != 3 { // root + 2 forward neighbours
		t.Fatalf("NumReached = %d, want 3", res.NumReached())
	}
	if res.Reached(tn(2, 2)) {
		t.Fatal("depth-1 BFS should not reach distance-3 node")
	}
}

// Backward BFS must agree with forward BFS on the time-reversed graph.
func TestBackwardBFSEqualsForwardOnReverse(t *testing.T) {
	f := func(seed int64, directed bool) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, directed)
		rev := g.TimeReverse()
		lastStamp := int32(g.NumStamps() - 1)
		u := g.Unfold(egraph.CausalAllPairs)
		for _, root := range u.Order {
			back, err := BFS(g, root, Options{Direction: Backward})
			if err != nil {
				return false
			}
			// The same temporal node in the reversed graph.
			rroot := tn(root.Node, lastStamp-root.Stamp)
			fwd, err := BFS(rev, rroot, Options{})
			if err != nil {
				return false
			}
			if back.NumReached() != fwd.NumReached() {
				return false
			}
			ok := true
			back.Visit(func(n egraph.TemporalNode, d int) bool {
				if fwd.Dist(tn(n.Node, lastStamp-n.Stamp)) != d {
					ok = false
					return false
				}
				return true
			})
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestBackwardNeighborsFigure1(t *testing.T) {
	g := egraph.Figure1Graph()
	got := BackwardNeighbors(g, tn(2, 2), egraph.CausalAllPairs)
	want := map[egraph.TemporalNode]bool{tn(1, 2): true, tn(2, 1): true}
	if len(got) != 2 {
		t.Fatalf("BackwardNeighbors((3,t3)) = %v", got)
	}
	for _, nb := range got {
		if !want[nb] {
			t.Fatalf("unexpected backward neighbour %v", nb)
		}
	}
}

func TestMultiSourceBFS(t *testing.T) {
	g := egraph.Figure1Graph()
	res, err := MultiSourceBFS(g, []egraph.TemporalNode{tn(0, 1), tn(1, 2)}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dist(tn(0, 1)) != 0 || res.Dist(tn(1, 2)) != 0 {
		t.Fatal("roots should have distance 0")
	}
	if res.Dist(tn(2, 2)) != 1 {
		t.Fatalf("dist((3,t3)) = %d, want 1 (nearest root)", res.Dist(tn(2, 2)))
	}
}

func TestMultiSourceBFSDuplicateRoots(t *testing.T) {
	g := egraph.Figure1Graph()
	res, err := MultiSourceBFS(g, []egraph.TemporalNode{tn(0, 0), tn(0, 0)}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.LevelSizes()[0] != 1 {
		t.Fatal("duplicate roots should collapse")
	}
}

func TestMultiSourceBFSErrors(t *testing.T) {
	g := egraph.Figure1Graph()
	if _, err := MultiSourceBFS(g, nil, Options{}); err == nil {
		t.Fatal("empty root set should fail")
	}
	if _, err := MultiSourceBFS(g, []egraph.TemporalNode{tn(2, 0)}, Options{}); err == nil {
		t.Fatal("inactive root should fail")
	}
}

// Property: multi-source distance = min over single-source distances.
func TestMultiSourceIsMinOfSingle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, true)
		u := g.Unfold(egraph.CausalAllPairs)
		if len(u.Order) < 2 {
			return true
		}
		roots := []egraph.TemporalNode{u.Order[0], u.Order[len(u.Order)/2]}
		multi, err := MultiSourceBFS(g, roots, Options{})
		if err != nil {
			return false
		}
		singles := make([]*Result, len(roots))
		for i, root := range roots {
			if singles[i], err = BFS(g, root, Options{}); err != nil {
				return false
			}
		}
		for _, node := range u.Order {
			want := -1
			for _, s := range singles {
				d := s.Dist(node)
				if d >= 0 && (want < 0 || d < want) {
					want = d
				}
			}
			if multi.Dist(node) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestReachable(t *testing.T) {
	g := egraph.Figure1Graph()
	ok, err := Reachable(g, tn(0, 0), tn(2, 2), egraph.CausalAllPairs)
	if err != nil || !ok {
		t.Fatalf("Reachable((1,t1)→(3,t3)) = %v, %v", ok, err)
	}
	ok, err = Reachable(g, tn(2, 2), tn(0, 0), egraph.CausalAllPairs)
	if err != nil || ok {
		t.Fatalf("Reachable((3,t3)→(1,t1)) = %v, %v; want false", ok, err)
	}
	ok, err = Reachable(g, tn(0, 0), tn(0, 0), egraph.CausalAllPairs)
	if err != nil || !ok {
		t.Fatal("node should reach itself")
	}
	if _, err = Reachable(g, tn(2, 0), tn(0, 0), egraph.CausalAllPairs); err == nil {
		t.Fatal("inactive source should fail")
	}
}

// Causal-mode ablation: consecutive mode preserves reachability but can
// increase distances (skip edges are gone).
func TestCausalModeDistancesDiffer(t *testing.T) {
	// Node 0 active at stamps 0,1,2 (edges to 1 each stamp). All-pairs:
	// dist((0,t0)→(0,t2)) = 1; consecutive: 2.
	b := egraph.NewBuilder(true)
	b.AddEdge(0, 1, 1)
	b.AddEdge(0, 1, 2)
	b.AddEdge(0, 1, 3)
	g := b.Build()
	all, err := BFS(g, tn(0, 0), Options{Mode: egraph.CausalAllPairs})
	if err != nil {
		t.Fatal(err)
	}
	cons, err := BFS(g, tn(0, 0), Options{Mode: egraph.CausalConsecutive})
	if err != nil {
		t.Fatal(err)
	}
	if all.Dist(tn(0, 2)) != 1 {
		t.Fatalf("all-pairs dist = %d, want 1", all.Dist(tn(0, 2)))
	}
	if cons.Dist(tn(0, 2)) != 2 {
		t.Fatalf("consecutive dist = %d, want 2", cons.Dist(tn(0, 2)))
	}
	if all.NumReached() != cons.NumReached() {
		t.Fatal("causal mode changed reachability")
	}
}

// Property: reachability sets agree across causal modes; all-pairs
// distances never exceed consecutive distances.
func TestCausalModesSameReachability(t *testing.T) {
	f := func(seed int64, directed bool) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, directed)
		u := g.Unfold(egraph.CausalAllPairs)
		for _, root := range u.Order {
			all, err := BFS(g, root, Options{Mode: egraph.CausalAllPairs})
			if err != nil {
				return false
			}
			cons, err := BFS(g, root, Options{Mode: egraph.CausalConsecutive})
			if err != nil {
				return false
			}
			if all.NumReached() != cons.NumReached() {
				return false
			}
			ok := true
			cons.Visit(func(n egraph.TemporalNode, d int) bool {
				ad := all.Dist(n)
				if ad < 0 || ad > d {
					ok = false
					return false
				}
				return true
			})
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestIntroGameReachability(t *testing.T) {
	// "1 talks to 2 first, and 2 in turn talks to 3. Then 3 can collect
	// all the messages" — (1,t1) reaches player 3.
	g := egraph.IntroGameGraph(false)
	ok, err := Reachable(g, tn(0, 0), tn(2, 1), egraph.CausalAllPairs)
	if err != nil || !ok {
		t.Fatal("message a should reach player 3 in the original order")
	}
	// "if 2 talks to 3 before 1 talks to 2, then 3 can never get a."
	gs := egraph.IntroGameGraph(true)
	// Player 1 talks at the second stamp in the swapped game.
	ok, err = Reachable(gs, tn(0, 1), tn(2, 0), egraph.CausalAllPairs)
	if err != nil || ok {
		t.Fatal("message a must not reach player 3 in the swapped order")
	}
	// Exhaustive: no active (0,·) reaches any (2,·) in the swapped game.
	for _, s := range gs.ActiveStamps(0) {
		res, err := BFS(gs, tn(0, s), Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, s2 := range gs.ActiveStamps(2) {
			if res.Reached(tn(2, s2)) {
				t.Fatal("swapped game leaked message a to player 3")
			}
		}
	}
}

func TestDirectionString(t *testing.T) {
	if Forward.String() != "forward" || Backward.String() != "backward" {
		t.Fatal("Direction strings wrong")
	}
}
