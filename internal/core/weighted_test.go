package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/egraph"
)

func TestWeightedMatchesBFSOnUnitWeights(t *testing.T) {
	f := func(seed int64, directed, consecutive bool) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, directed)
		mode := egraph.CausalAllPairs
		if consecutive {
			mode = egraph.CausalConsecutive
		}
		u := g.Unfold(mode)
		for _, root := range u.Order {
			bfs, err := BFS(g, root, Options{Mode: mode})
			if err != nil {
				return false
			}
			dij, err := WeightedShortestPaths(g, root, WeightedOptions{Mode: mode, CausalWeight: 1})
			if err != nil {
				return false
			}
			for _, node := range u.Order {
				bd := bfs.Dist(node)
				wd := dij.Dist(node)
				if bd < 0 {
					if !math.IsInf(wd, 1) {
						return false
					}
				} else if wd != float64(bd) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedPrefersCheapRoute(t *testing.T) {
	// Two routes 0→2 at one stamp: direct weight 10, via 1 weight 1+1.
	b := egraph.NewWeightedBuilder(true)
	b.AddWeightedEdge(0, 2, 1, 10)
	b.AddWeightedEdge(0, 1, 1, 1)
	b.AddWeightedEdge(1, 2, 1, 1)
	g := b.Build()
	res, err := WeightedShortestPaths(g, tn(0, 0), WeightedOptions{CausalWeight: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dist(tn(2, 0)) != 2 {
		t.Fatalf("dist = %g, want 2", res.Dist(tn(2, 0)))
	}
	p := res.PathTo(tn(2, 0))
	if len(p) != 3 || p[1] != tn(1, 0) {
		t.Fatalf("path = %v, want via node 1", p)
	}
}

func TestWeightedFreeCausalHops(t *testing.T) {
	// CausalWeight 0 reproduces the dynamic-walk convention: waiting is
	// free, so the distance to a later stamp of the same node is 0.
	g := egraph.Figure1Graph()
	res, err := WeightedShortestPaths(g, tn(0, 0), WeightedOptions{CausalWeight: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dist(tn(0, 1)) != 0 {
		t.Fatalf("free causal hop dist = %g, want 0", res.Dist(tn(0, 1)))
	}
	// (3,t3): hop to (1,t2) free, edge to (3,t2) costs 1, wait free = 1.
	if res.Dist(tn(2, 2)) != 1 {
		t.Fatalf("dist((3,t3)) = %g, want 1", res.Dist(tn(2, 2)))
	}
}

func TestWeightedUnreachable(t *testing.T) {
	g := egraph.Figure1Graph()
	res, err := WeightedShortestPaths(g, tn(2, 2), WeightedOptions{CausalWeight: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reached(tn(0, 0)) {
		t.Fatal("(1,t1) should be unreachable from (3,t3)")
	}
	if res.PathTo(tn(0, 0)) != nil {
		t.Fatal("PathTo unreachable should be nil")
	}
}

func TestWeightedErrors(t *testing.T) {
	g := egraph.Figure1Graph()
	if _, err := WeightedShortestPaths(g, tn(2, 0), WeightedOptions{}); err == nil {
		t.Fatal("inactive root should fail")
	}
	if _, err := WeightedShortestPaths(g, tn(0, 0), WeightedOptions{CausalWeight: -1}); err != ErrNegativeWeight {
		t.Fatal("negative causal weight should fail")
	}
	b := egraph.NewWeightedBuilder(true)
	b.AddWeightedEdge(0, 1, 1, -5)
	gn := b.Build()
	if _, err := WeightedShortestPaths(gn, tn(0, 0), WeightedOptions{}); err != ErrNegativeWeight {
		t.Fatal("negative edge weight should fail")
	}
}

// Property: weighted paths returned by PathTo have total weight equal to
// the reported distance.
func TestWeightedPathCostMatchesDist(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := egraph.NewWeightedBuilder(true)
		n := 2 + rng.Intn(6)
		stamps := 1 + rng.Intn(3)
		for e := 0; e < 3*n; e++ {
			b.AddWeightedEdge(int32(rng.Intn(n)), int32(rng.Intn(n)),
				int64(1+rng.Intn(stamps)), float64(1+rng.Intn(9)))
		}
		b.AddWeightedEdge(0, 1, 1, 1)
		g := b.Build()
		const cw = 2.0
		root := tn(0, g.ActiveStamps(0)[0])
		res, err := WeightedShortestPaths(g, root, WeightedOptions{CausalWeight: cw})
		if err != nil {
			return false
		}
		u := g.Unfold(egraph.CausalAllPairs)
		for _, node := range u.Order {
			if !res.Reached(node) {
				continue
			}
			p := res.PathTo(node)
			var cost float64
			for i := 1; i < len(p); i++ {
				a, c := p[i-1], p[i]
				if a.Node == c.Node {
					cost += cw
					continue
				}
				adj := g.OutNeighbors(a.Node, a.Stamp)
				ws := g.OutWeights(a.Node, a.Stamp)
				found := false
				for j, w := range adj {
					if w == c.Node {
						cost += ws[j]
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
			if cost != res.Dist(node) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
