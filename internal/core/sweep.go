package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/ds"
	"repro/internal/egraph"
)

// ReachSweep runs one BFS per root, fanned out over a worker pool on the
// flat CSR engine (DESIGN.md §8), and invokes fn(i, reached) for root i
// with the ids of every reached temporal node — root included, in
// discovery order. The reached slice is worker-owned scratch: it is only
// valid during the call and must not be retained. fn may run
// concurrently for different indices but never twice for the same index,
// so writing to out[i] needs no locking. Every root must be active.
//
// This is the fan-out primitive behind the reach-only all-sources
// analytics — components.SizeDistribution and influence reach-set
// evaluation (DESIGN.md §9): a full BFS Result per root would cost an
// O(N·T) allocation and memset each, while the sweep recycles one
// pooled ds.Frontier and one id buffer per worker. Sweeps that need
// distances (metrics.GlobalEfficiencyOpts) run full BFS Results over
// their own worker pool instead. There is deliberately no
// adjacency-map variant of the sweep — differential callers route their
// oracle path through BFS with Options.UseAdjacencyMaps instead.
func ReachSweep(g *egraph.IntEvolvingGraph, roots []egraph.TemporalNode, opts Options, workers int, fn func(i int, reached []int32)) error {
	for _, root := range roots {
		if err := checkRoot(g, root); err != nil {
			return err
		}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(roots) {
		workers = len(roots)
	}
	csr := g.CSR()
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			f := frontierPool.Get().(*ds.Frontier)
			var buf []int32
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= len(roots) {
					break
				}
				rootID := int32(g.TemporalNodeID(roots[i]))
				buf = expandReach(csr, rootID, opts, f, buf[:0])
				fn(i, buf)
			}
			frontierPool.Put(f)
		}()
	}
	wg.Wait()
	return nil
}

// expandReach runs a frontier expansion from rootID over the CSR view,
// appending every reached id (rootID first) to out. It is the
// reach-only core of runCSR: no distances, parents or level sizes, so a
// sweep of many roots allocates nothing past its scratch buffers.
func expandReach(csr *egraph.CSR, rootID int32, opts Options, f *ds.Frontier, out []int32) []int32 {
	f.Reset(csr.Size())
	f.Seed(rootID)
	out = append(out, rootID)

	n := int32(csr.N)
	useOut := (opts.Direction == Forward) != opts.ReverseEdges
	forward := opts.Direction == Forward
	consecutive := opts.Mode == egraph.CausalConsecutive

	k := 1
	for len(f.Cur) > 0 {
		if opts.MaxDepth > 0 && k > opts.MaxDepth {
			break
		}
		for _, id := range f.Cur {
			var arcs []int32
			if useOut {
				arcs = csr.OutAdj[csr.OutPtr[id]:csr.OutPtr[id+1]]
			} else {
				arcs = csr.InAdj[csr.InPtr[id]:csr.InPtr[id+1]]
			}
			for _, nb := range arcs {
				if !f.Visited.TestAndSet(int(nb)) {
					f.Push(nb)
				}
			}
			stamps, v := csr.CausalArcs(id, forward, consecutive)
			for _, s := range stamps {
				nb := s*n + v
				if !f.Visited.TestAndSet(int(nb)) {
					f.Push(nb)
				}
			}
		}
		out = append(out, f.Next...)
		f.Advance()
		k++
	}
	return out
}
