package core

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/egraph"
)

func TestParallelBFSFigure1(t *testing.T) {
	g := egraph.Figure1Graph()
	res, err := ParallelBFS(g, tn(0, 0), ParallelOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumReached() != 6 || res.Dist(tn(2, 2)) != 3 {
		t.Fatalf("parallel BFS wrong: reached=%d dist=%d", res.NumReached(), res.Dist(tn(2, 2)))
	}
}

func TestParallelBFSInactiveRoot(t *testing.T) {
	g := egraph.Figure1Graph()
	if _, err := ParallelBFS(g, tn(2, 0), ParallelOptions{}); err == nil {
		t.Fatal("inactive root should fail")
	}
}

// Property: parallel BFS produces the same distance labelling as
// sequential BFS for every active root, any worker count, both modes.
func TestParallelBFSMatchesSequential(t *testing.T) {
	f := func(seed int64, directed, consecutive bool, workerSel uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, directed)
		mode := egraph.CausalAllPairs
		if consecutive {
			mode = egraph.CausalConsecutive
		}
		workers := 1 + int(workerSel%8)
		u := g.Unfold(mode)
		for _, root := range u.Order {
			seq, err := BFS(g, root, Options{Mode: mode})
			if err != nil {
				return false
			}
			par, err := ParallelBFS(g, root, ParallelOptions{
				Options: Options{Mode: mode},
				Workers: workers,
			})
			if err != nil {
				return false
			}
			if seq.NumReached() != par.NumReached() || seq.MaxDist() != par.MaxDist() {
				return false
			}
			ok := true
			seq.Visit(func(n egraph.TemporalNode, d int) bool {
				if par.Dist(n) != d {
					ok = false
					return false
				}
				return true
			})
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// A denser graph exercises real contention between workers (run with
// -race to check the claim protocol).
func TestParallelBFSDenseGraphRace(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := egraph.NewBuilder(true)
	const n, stamps = 200, 6
	for e := 0; e < 4000; e++ {
		b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)), int64(1+rng.Intn(stamps)))
	}
	g := b.Build()
	root := tn(int32(g.ActiveNodes(0).NextSet(0)), 0)
	seq, err := BFS(g, root, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		par, err := ParallelBFS(g, root, ParallelOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if par.NumReached() != seq.NumReached() {
			t.Fatalf("workers=%d reached %d, want %d", workers, par.NumReached(), seq.NumReached())
		}
		seq.Visit(func(n egraph.TemporalNode, d int) bool {
			if par.Dist(n) != d {
				t.Fatalf("workers=%d dist(%v) = %d, want %d", workers, n, par.Dist(n), d)
			}
			return true
		})
	}
}

// Parallel BFS with TrackParents must produce a parent tree whose paths
// are valid and as short as the sequential distances.
func TestParallelBFSParents(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randomGraph(rng, true)
	u := g.Unfold(egraph.CausalAllPairs)
	root := u.Order[0]
	par, err := ParallelBFS(g, root, ParallelOptions{
		Options: Options{TrackParents: true},
		Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	par.Visit(func(n egraph.TemporalNode, d int) bool {
		p := TemporalPath(par.PathTo(n))
		if p.Hops() != d || !p.IsValid(g, egraph.CausalAllPairs) {
			t.Fatalf("parallel parent path to %v invalid: %v (dist %d)", n, p, d)
		}
		return true
	})
}

func TestParallelBFSMaxDepth(t *testing.T) {
	g := egraph.Figure1Graph()
	res, err := ParallelBFS(g, tn(0, 0), ParallelOptions{
		Options: Options{MaxDepth: 1}, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumReached() != 3 {
		t.Fatalf("NumReached = %d, want 3", res.NumReached())
	}
}

func TestParallelBFSDefaultWorkers(t *testing.T) {
	g := egraph.Figure1Graph()
	res, err := ParallelBFS(g, tn(0, 0), ParallelOptions{}) // Workers = 0
	if err != nil {
		t.Fatal(err)
	}
	if res.NumReached() != 6 {
		t.Fatalf("NumReached = %d, want 6", res.NumReached())
	}
}

// Regression: a worker that fills its buffer on one level and then goes
// idle (the frontier shrank below workers·chunk) must not leak that
// buffer back into later frontiers — the stale, already-visited nodes
// would then re-enter the frontier forever and the search live-locks.
//
// The trigger, with 2 workers: level ⟨(1,t1),(2,t1)⟩ splits one node per
// worker; worker 1 discovers the causal hop (2,t1)→(2,t2) into its
// buffer. The next frontier ⟨(2,t2)⟩ has width 1, so worker 1 idles with
// its stale buffer while worker 0 expands (2,t2) into nothing — and the
// stale ⟨(2,t2)⟩ must not resurrect the frontier.
func TestParallelBFSStaleBufferTerminates(t *testing.T) {
	b := egraph.NewBuilder(true)
	b.AddEdge(0, 1, 1) // frontier filler for worker 0
	b.AddEdge(0, 2, 1) // node 2's first activity
	b.AddEdge(4, 2, 2) // activates (2,t2) with no out-edges
	g := b.Build()
	root := egraph.TemporalNode{Node: 0, Stamp: 0}

	done := make(chan *Result, 1)
	go func() {
		res, err := ParallelBFS(g, root, ParallelOptions{Workers: 2})
		if err != nil {
			t.Error(err)
		}
		done <- res
	}()
	select {
	case res := <-done:
		seq, err := BFS(g, root, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.NumReached() != seq.NumReached() || res.MaxDist() != seq.MaxDist() {
			t.Fatalf("parallel (reached %d, max %d) ≠ sequential (reached %d, max %d)",
				res.NumReached(), res.MaxDist(), seq.NumReached(), seq.MaxDist())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("ParallelBFS did not terminate (stale worker buffer re-entered the frontier?)")
	}
}
