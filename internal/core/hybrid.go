package core

import (
	"repro/internal/ds"
	"repro/internal/egraph"
)

// HybridOptions configures the direction-optimizing BFS. Alpha tunes the
// switch into bottom-up mode (larger = later switch); Beta the switch
// back. Zero values select the classic defaults (14, 24) of
// direction-optimizing BFS.
type HybridOptions struct {
	Options
	Alpha int
	Beta  int
}

// HybridBFS is a direction-optimizing variant of Algorithm 1 (in the
// style of Beamer's top-down/bottom-up BFS, adapted to temporal graphs).
// When the frontier is small it expands top-down like the plain BFS;
// when the frontier grows past |unvisited|/Alpha it flips to bottom-up:
// every still-unvisited active temporal node scans its *backward*
// neighbours — static in-edges at its own stamp and causal in-edges from
// the node's earlier active stamps — and claims itself if any parent is
// on the frontier. On low-diameter evolving graphs (the Fig. 5 random
// workload saturates within a few levels) bottom-up skips the bulk of
// edge re-scans.
//
// The distance labelling is identical to BFS; only parent choice within
// a level may differ.
func HybridBFS(g *egraph.IntEvolvingGraph, root egraph.TemporalNode, opts HybridOptions) (*Result, error) {
	if err := checkRoot(g, root); err != nil {
		return nil, err
	}
	alpha := opts.Alpha
	if alpha <= 0 {
		alpha = 14
	}
	beta := opts.Beta
	if beta <= 0 {
		beta = 24
	}
	r := newResult(g, root, opts.Options)
	n := g.NumNodes()
	size := n * g.NumStamps()

	// Unvisited active temporal nodes, compacted per level.
	unvisited := make([]int32, 0, g.NumActiveNodes())
	for t := 0; t < g.NumStamps(); t++ {
		act := g.ActiveNodes(t)
		for v := act.NextSet(0); v >= 0; v = act.NextSet(v + 1) {
			unvisited = append(unvisited, int32(t*n+v))
		}
	}

	rootID := g.TemporalNodeID(root)
	r.dist[rootID] = 0
	r.reached = 1
	r.levels = []int{1}
	frontier := []int32{int32(rootID)}
	frontierSet := ds.NewBitSet(size)
	frontierSet.Set(rootID)

	k := int32(1)
	for len(frontier) > 0 {
		if opts.MaxDepth > 0 && int(k) > opts.MaxDepth {
			break
		}
		// Compact the unvisited list (drop anything claimed last level).
		live := unvisited[:0]
		for _, id := range unvisited {
			if r.dist[id] < 0 {
				live = append(live, id)
			}
		}
		unvisited = live

		var next []int32
		if len(frontier)*alpha > len(unvisited) && len(frontier) > beta {
			next = bottomUpStep(g, r, opts.Options, frontierSet, unvisited, k)
		} else {
			next = topDownStep(g, r, opts.Options, frontier, k)
		}
		if len(next) > 0 {
			r.levels = append(r.levels, len(next))
			r.reached += len(next)
		}
		frontierSet.Reset()
		for _, id := range next {
			frontierSet.Set(int(id))
		}
		frontier = next
		k++
	}
	return r, nil
}

func topDownStep(g *egraph.IntEvolvingGraph, r *Result, opts Options, frontier []int32, k int32) []int32 {
	var next []int32
	for _, id := range frontier {
		tn := g.TemporalNodeFromID(int(id))
		visitNeighborsOpts(g, tn, opts, func(nb egraph.TemporalNode) bool {
			nbID := g.TemporalNodeID(nb)
			if r.dist[nbID] < 0 {
				r.dist[nbID] = k
				if r.parent != nil {
					r.parent[nbID] = id
				}
				next = append(next, int32(nbID))
			}
			return true
		})
	}
	return next
}

// bottomUpStep claims every unvisited active temporal node with a
// frontier member among its backward neighbours.
func bottomUpStep(g *egraph.IntEvolvingGraph, r *Result, opts Options,
	frontierSet *ds.BitSet, unvisited []int32, k int32) []int32 {

	n := g.NumNodes()
	var next []int32
	back := Options{Mode: opts.Mode, Direction: Backward, ReverseEdges: opts.ReverseEdges}
	if opts.Direction == Backward {
		back.Direction = Forward
	}
	_ = n
	for _, id := range unvisited {
		tn := g.TemporalNodeFromID(int(id))
		claimed := false
		visitNeighborsOpts(g, tn, back, func(nb egraph.TemporalNode) bool {
			nbID := g.TemporalNodeID(nb)
			if frontierSet.Get(nbID) {
				r.dist[id] = k
				if r.parent != nil {
					r.parent[id] = int32(nbID)
				}
				claimed = true
				return false // one parent suffices
			}
			return true
		})
		if claimed {
			next = append(next, id)
		}
	}
	return next
}
