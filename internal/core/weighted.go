package core

import (
	"errors"
	"math"

	"repro/internal/ds"
	"repro/internal/egraph"
)

// WeightedOptions configures the weighted temporal shortest-path search.
type WeightedOptions struct {
	// Mode selects the causal edge set.
	Mode egraph.CausalMode
	// CausalWeight is the cost of one causal hop. The paper's distance
	// counts causal edges as ordinary edges, so the default 1 matches
	// Def. 6 when all static weights are 1. Set 0 to reproduce the
	// dynamic-walk convention in which waiting is free.
	CausalWeight float64
}

// WeightedResult holds weighted shortest-path distances from a root.
type WeightedResult struct {
	g      *egraph.IntEvolvingGraph
	root   egraph.TemporalNode
	dist   []float64 // +Inf = unreachable
	parent []int32
}

// Dist returns the weighted distance to (v, t); +Inf if unreachable.
func (r *WeightedResult) Dist(tn egraph.TemporalNode) float64 {
	return r.dist[r.g.TemporalNodeID(tn)]
}

// Reached reports whether (v, t) is reachable from the root.
func (r *WeightedResult) Reached(tn egraph.TemporalNode) bool {
	return !math.IsInf(r.dist[r.g.TemporalNodeID(tn)], 1)
}

// PathTo reconstructs a cheapest temporal path to (v, t), root first;
// nil if unreachable.
func (r *WeightedResult) PathTo(tn egraph.TemporalNode) TemporalPath {
	if !r.Reached(tn) {
		return nil
	}
	var rev TemporalPath
	cur := tn
	for {
		rev = append(rev, cur)
		if cur == r.root {
			break
		}
		cur = r.g.TemporalNodeFromID(int(r.parent[r.g.TemporalNodeID(cur)]))
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// ErrNegativeWeight is returned when Dijkstra encounters a negative edge
// or causal weight.
var ErrNegativeWeight = errors.New("core: negative weight in weighted temporal search")

// WeightedShortestPaths runs Dijkstra's algorithm over the temporal
// forward-neighbour relation: static hops cost the edge weight (1 for
// unweighted graphs), causal hops cost opts.CausalWeight. With unit
// weights and CausalWeight 1 the distances coincide with BFS (Def. 6).
func WeightedShortestPaths(g *egraph.IntEvolvingGraph, root egraph.TemporalNode, opts WeightedOptions) (*WeightedResult, error) {
	if err := checkRoot(g, root); err != nil {
		return nil, err
	}
	if opts.CausalWeight < 0 {
		return nil, ErrNegativeWeight
	}
	size := g.NumNodes() * g.NumStamps()
	r := &WeightedResult{
		g:      g,
		root:   root,
		dist:   make([]float64, size),
		parent: make([]int32, size),
	}
	for i := range r.dist {
		r.dist[i] = math.Inf(1)
		r.parent[i] = -1
	}
	rootID := g.TemporalNodeID(root)
	r.dist[rootID] = 0

	done := ds.NewBitSet(size)
	h := ds.NewMinHeap(64)
	h.Push(0, rootID)
	var negErr error
	for h.Len() > 0 {
		d, id := h.Pop()
		if done.TestAndSet(id) {
			continue // stale heap entry
		}
		tn := g.TemporalNodeFromID(id)
		v, t := tn.Node, tn.Stamp

		// Static hops with their weights.
		adj := g.OutNeighbors(v, t)
		ws := g.OutWeights(v, t)
		for i, w := range adj {
			cost := 1.0
			if ws != nil {
				cost = ws[i]
			}
			if cost < 0 {
				negErr = ErrNegativeWeight
				break
			}
			relax(r, h, id, g.TemporalNodeID(egraph.TemporalNode{Node: w, Stamp: t}), d+cost)
		}
		if negErr != nil {
			break
		}
		// Causal hops.
		visitCausal(g, tn, opts.Mode, func(nb egraph.TemporalNode) {
			relax(r, h, id, g.TemporalNodeID(nb), d+opts.CausalWeight)
		})
	}
	if negErr != nil {
		return nil, negErr
	}
	return r, nil
}

func relax(r *WeightedResult, h *ds.MinHeap, from, to int, nd float64) {
	if nd < r.dist[to] {
		r.dist[to] = nd
		r.parent[to] = int32(from)
		h.Push(nd, to)
	}
}

func visitCausal(g *egraph.IntEvolvingGraph, tn egraph.TemporalNode,
	mode egraph.CausalMode, fn func(egraph.TemporalNode)) {
	v, t := tn.Node, tn.Stamp
	switch mode {
	case egraph.CausalAllPairs:
		stamps := g.ActiveStamps(v)
		for i := len(stamps) - 1; i >= 0; i-- {
			s := stamps[i]
			if s <= t {
				break
			}
			fn(egraph.TemporalNode{Node: v, Stamp: s})
		}
	case egraph.CausalConsecutive:
		if s := g.NextActiveStamp(v, t); s >= 0 {
			fn(egraph.TemporalNode{Node: v, Stamp: s})
		}
	}
}
