package core

import (
	"runtime"
	"sync"

	"repro/internal/ds"
	"repro/internal/egraph"
)

// ParallelOptions configures the level-synchronous parallel BFS.
type ParallelOptions struct {
	Options
	// Workers is the number of goroutines expanding each frontier.
	// Zero means GOMAXPROCS.
	Workers int
}

// ParallelBFS is a level-synchronous parallel variant of Algorithm 1:
// each BFS level is partitioned into contiguous ranges across Workers
// goroutines; workers claim newly discovered temporal nodes through an
// atomic visited bitmap (exactly one claimant per node) and append them
// to per-worker buffers that are concatenated into the next frontier.
// Because levels are processed with a barrier between them, the distance
// labelling is identical to the sequential BFS — only discovery order
// within a level (and hence the parent tree) may differ.
//
// Like BFS, it runs on the flat CSR engine unless
// Options.UseAdjacencyMaps selects the adjacency-map oracle.
func ParallelBFS(g *egraph.IntEvolvingGraph, root egraph.TemporalNode, opts ParallelOptions) (*Result, error) {
	if err := checkRoot(g, root); err != nil {
		return nil, err
	}
	r := newResult(g, root, opts.Options)
	rootID := g.TemporalNodeID(root)
	r.dist[rootID] = 0
	r.reached = 1
	r.levels = []int{1}
	if !opts.UseAdjacencyMaps {
		runParallelCSR(g, r, rootID, opts)
		return r, nil
	}
	parallelReference(g, r, rootID, opts)
	return r, nil
}

// parallelReference is the adjacency-map variant of the parallel
// expansion, kept as the differential-testing oracle.
func parallelReference(g *egraph.IntEvolvingGraph, r *Result, rootID int, opts ParallelOptions) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	size := g.NumNodes() * g.NumStamps()
	visited := ds.NewAtomicBitSet(size)
	visited.Set(rootID)

	frontier := []int32{int32(rootID)}
	buffers := make([][]int32, workers)
	k := int32(1)
	for len(frontier) > 0 {
		if opts.MaxDepth > 0 && int(k) > opts.MaxDepth {
			break
		}
		chunk := (len(frontier) + workers - 1) / workers
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo := w * chunk
			if lo >= len(frontier) {
				break
			}
			hi := lo + chunk
			if hi > len(frontier) {
				hi = len(frontier)
			}
			wg.Add(1)
			go func(w int, part []int32) {
				defer wg.Done()
				buf := buffers[w][:0]
				for _, id := range part {
					tn := g.TemporalNodeFromID(int(id))
					visitNeighborsOpts(g, tn, opts.Options, func(nb egraph.TemporalNode) bool {
						nbID := g.TemporalNodeID(nb)
						if !visited.TestAndSet(nbID) {
							// This goroutine exclusively claimed nbID: the
							// stores below race with no other writer.
							r.dist[nbID] = k
							if r.parent != nil {
								r.parent[nbID] = id
							}
							buf = append(buf, int32(nbID))
						}
						return true
					})
				}
				buffers[w] = buf
			}(w, frontier[lo:hi])
		}
		wg.Wait()

		frontier = frontier[:0]
		for w := range buffers {
			frontier = append(frontier, buffers[w]...)
			// Reset every buffer, including those of workers that had
			// no slice of this level: a worker that stays idle next
			// level must not leak this level's nodes back into the
			// frontier (that would re-expand visited nodes forever
			// once the frontier shrinks below workers·chunk).
			buffers[w] = buffers[w][:0]
		}
		if len(frontier) > 0 {
			r.levels = append(r.levels, len(frontier))
			r.reached += len(frontier)
		}
		k++
	}
}
