package core

import (
	"repro/internal/egraph"
)

// BidirectionalShortestPath finds the Def. 6 distance between two
// temporal nodes by growing a forward BFS from `from` and a backward
// (time-reversed) BFS from `to` simultaneously, always expanding the
// smaller frontier. Point-to-point queries on high-reach evolving
// graphs touch far fewer temporal nodes this way than a full forward
// search: each side only explores to roughly half the distance.
//
// Returns the shortest path and true, or nil and false when `to` is
// unreachable from `from`. Inactive endpoints are unreachable by
// definition (Def. 4), reported as (nil, false, nil) rather than an
// error, matching Reachable's contract.
//
// The search is correct for directed and undirected graphs: expansion
// is level-synchronous on both sides, a meeting node yields the
// candidate distance df + db, and the loop keeps expanding until no
// undiscovered path can beat the incumbent (fDepth + bDepth ≥ best).
func BidirectionalShortestPath(g *egraph.IntEvolvingGraph, from, to egraph.TemporalNode,
	mode egraph.CausalMode) (path TemporalPath, ok bool, err error) {
	if err := checkRoot(g, from); err != nil {
		return nil, false, nil
	}
	if err := checkRoot(g, to); err != nil {
		return nil, false, nil
	}
	if from == to {
		return TemporalPath{from}, true, nil
	}
	size := g.NumNodes() * g.NumStamps()
	df := make([]int32, size)
	db := make([]int32, size)
	pf := make([]int32, size)
	pb := make([]int32, size)
	for i := range df {
		df[i], db[i] = -1, -1
	}
	fromID := g.TemporalNodeID(from)
	toID := g.TemporalNodeID(to)
	df[fromID], db[toID] = 0, 0
	pf[fromID], pb[toID] = -1, -1

	fOpts := Options{Mode: mode}
	bOpts := Options{Mode: mode, Direction: Backward}

	fFrontier := []int32{int32(fromID)}
	bFrontier := []int32{int32(toID)}
	fDepth, bDepth := int32(0), int32(0)
	best := int32(-1)
	var meet int32 = -1

	// expand grows one side by a level and reports any improved meeting.
	expand := func(frontier []int32, depth int32, dist, other, parent []int32, opts Options) []int32 {
		var next []int32
		for _, id := range frontier {
			tn := g.TemporalNodeFromID(int(id))
			visitNeighborsOpts(g, tn, opts, func(nb egraph.TemporalNode) bool {
				nbID := int32(g.TemporalNodeID(nb))
				if dist[nbID] >= 0 {
					return true
				}
				dist[nbID] = depth + 1
				parent[nbID] = id
				if d := other[nbID]; d >= 0 {
					if total := depth + 1 + d; best < 0 || total < best {
						best = total
						meet = nbID
					}
				}
				next = append(next, nbID)
				return true
			})
		}
		return next
	}

	for len(fFrontier) > 0 && len(bFrontier) > 0 {
		// No undiscovered meeting can beat the incumbent once the
		// completed radii already add up to it.
		if best >= 0 && fDepth+bDepth >= best {
			break
		}
		if len(fFrontier) <= len(bFrontier) {
			fFrontier = expand(fFrontier, fDepth, df, db, pf, fOpts)
			fDepth++
		} else {
			bFrontier = expand(bFrontier, bDepth, db, df, pb, bOpts)
			bDepth++
		}
	}
	if meet < 0 {
		return nil, false, nil
	}
	// Stitch: forward tree from the meeting node back to `from`, then
	// backward tree onward to `to`.
	var head TemporalPath
	for id := meet; id >= 0; id = pf[id] {
		head = append(head, g.TemporalNodeFromID(int(id)))
	}
	for i, j := 0, len(head)-1; i < j; i, j = i+1, j-1 {
		head[i], head[j] = head[j], head[i]
	}
	for id := pb[meet]; id >= 0; id = pb[id] {
		head = append(head, g.TemporalNodeFromID(int(id)))
	}
	return head, true, nil
}
