package core

import (
	"repro/internal/ds"
	"repro/internal/egraph"
)

// Closure is the all-pairs temporal reachability relation: for every
// active temporal node, the bitset of unfolded ids it reaches (itself
// included). Rows are indexed by unfolded id; use Unfolding.IDOf /
// Order to translate.
type Closure struct {
	u    *egraph.Unfolding
	rows []*ds.BitSet
}

// TransitiveClosure computes Def. 7 reachability between every pair of
// active temporal nodes. It walks the unfolded graph in reverse
// topological-ish order (stamp-major from the latest stamp backwards,
// which is a valid dependency order across stamps) and unions successor
// rows; within-stamp cycles are handled by iterating until fixpoint per
// stamp. Cost is O(|V|·|E|/64) word operations — fine for the analysis
// scales (citation networks), not the Fig. 5 scale.
func TransitiveClosure(g *egraph.IntEvolvingGraph, mode egraph.CausalMode) *Closure {
	u := g.Unfold(mode)
	n := u.Graph.NumNodes()
	rows := make([]*ds.BitSet, n)
	for i := range rows {
		rows[i] = ds.NewBitSet(n)
		rows[i].Set(i)
	}
	// Process ids in reverse (stamp-major order means all cross-stamp
	// arcs point to larger... not necessarily larger id within a stamp,
	// but always to a later-or-equal stamp). Iterate per stamp until
	// stable to absorb within-stamp cycles.
	stampStart := make(map[int32]int) // stamp -> first id
	for id, tn := range u.Order {
		if _, ok := stampStart[tn.Stamp]; !ok {
			stampStart[tn.Stamp] = id
		}
	}
	for s := int32(g.NumStamps() - 1); s >= 0; s-- {
		start, ok := stampStart[s]
		if !ok {
			continue
		}
		end := n
		for s2 := s + 1; s2 < int32(g.NumStamps()); s2++ {
			if e, ok := stampStart[s2]; ok {
				end = e
				break
			}
		}
		for changed := true; changed; {
			changed = false
			for id := end - 1; id >= start; id-- {
				row := rows[id]
				before := row.Count()
				for _, w := range u.Graph.Neighbors(int32(id)) {
					row.Or(rows[w])
				}
				if row.Count() != before {
					changed = true
				}
			}
		}
	}
	return &Closure{u: u, rows: rows}
}

// Reaches reports whether a temporal path joins from to to. Inactive
// endpoints are never reachable (and reach nothing but themselves being
// absent entirely).
func (c *Closure) Reaches(from, to egraph.TemporalNode) bool {
	fi := c.u.IDOf(from)
	ti := c.u.IDOf(to)
	if fi < 0 || ti < 0 {
		return false
	}
	return c.rows[fi].Get(int(ti))
}

// ReachSetSize returns |{w : from ⇝ w}| including from itself, or 0 for
// inactive nodes.
func (c *Closure) ReachSetSize(from egraph.TemporalNode) int {
	fi := c.u.IDOf(from)
	if fi < 0 {
		return 0
	}
	return c.rows[fi].Count()
}

// ReachablePairs returns the number of ordered pairs (a, b), a ≠ b, with
// a ⇝ b — a global temporal-connectivity index.
func (c *Closure) ReachablePairs() int {
	total := 0
	for _, row := range c.rows {
		total += row.Count() - 1 // exclude self
	}
	return total
}

// Eccentricity and diameter over temporal distances.

// Eccentricity returns the largest finite distance from root, or -1 for
// an inactive root.
func Eccentricity(g *egraph.IntEvolvingGraph, root egraph.TemporalNode, mode egraph.CausalMode) int {
	res, err := BFS(g, root, Options{Mode: mode})
	if err != nil {
		return -1
	}
	return res.MaxDist()
}

// TemporalDiameter returns the largest finite temporal distance between
// any ordered pair of active temporal nodes (one BFS per active node).
func TemporalDiameter(g *egraph.IntEvolvingGraph, mode egraph.CausalMode) int {
	u := g.Unfold(mode)
	diam := 0
	for _, root := range u.Order {
		if e := Eccentricity(g, root, mode); e > diam {
			diam = e
		}
	}
	return diam
}
