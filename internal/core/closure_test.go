package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/egraph"
)

func TestTransitiveClosureFigure1(t *testing.T) {
	g := egraph.Figure1Graph()
	c := TransitiveClosure(g, egraph.CausalAllPairs)
	if !c.Reaches(tn(0, 0), tn(2, 2)) {
		t.Fatal("(1,t1) should reach (3,t3)")
	}
	if c.Reaches(tn(2, 2), tn(0, 0)) {
		t.Fatal("(3,t3) must not reach (1,t1)")
	}
	if !c.Reaches(tn(0, 0), tn(0, 0)) {
		t.Fatal("self-reachability missing")
	}
	if c.Reaches(tn(2, 0), tn(2, 2)) {
		t.Fatal("inactive (3,t1) should reach nothing")
	}
	if got := c.ReachSetSize(tn(0, 0)); got != 6 {
		t.Fatalf("ReachSetSize((1,t1)) = %d, want 6", got)
	}
	if got := c.ReachSetSize(tn(2, 0)); got != 0 {
		t.Fatalf("inactive ReachSetSize = %d, want 0", got)
	}
}

// Property: closure agrees with one BFS per root, including on graphs
// with within-stamp cycles.
func TestTransitiveClosureMatchesBFS(t *testing.T) {
	f := func(seed int64, directed, consecutive bool) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, directed)
		mode := egraph.CausalAllPairs
		if consecutive {
			mode = egraph.CausalConsecutive
		}
		c := TransitiveClosure(g, mode)
		u := g.Unfold(mode)
		pairSum := 0
		for _, root := range u.Order {
			res, err := BFS(g, root, Options{Mode: mode})
			if err != nil {
				return false
			}
			if c.ReachSetSize(root) != res.NumReached() {
				return false
			}
			pairSum += res.NumReached() - 1
			for _, to := range u.Order {
				if c.Reaches(root, to) != res.Reached(to) {
					return false
				}
			}
		}
		return c.ReachablePairs() == pairSum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestTransitiveClosureCycles(t *testing.T) {
	// 3-cycle at one stamp: every member reaches every member.
	b := egraph.NewBuilder(true)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(2, 0, 1)
	g := b.Build()
	c := TransitiveClosure(g, egraph.CausalAllPairs)
	for u := int32(0); u < 3; u++ {
		for v := int32(0); v < 3; v++ {
			if !c.Reaches(tn(u, 0), tn(v, 0)) {
				t.Fatalf("(%d,t1) should reach (%d,t1)", u, v)
			}
		}
	}
	if c.ReachablePairs() != 6 {
		t.Fatalf("pairs = %d, want 6", c.ReachablePairs())
	}
}

func TestEccentricityAndDiameter(t *testing.T) {
	g := egraph.Figure1Graph()
	if e := Eccentricity(g, tn(0, 0), egraph.CausalAllPairs); e != 3 {
		t.Fatalf("ecc((1,t1)) = %d, want 3", e)
	}
	if e := Eccentricity(g, tn(2, 2), egraph.CausalAllPairs); e != 0 {
		t.Fatalf("ecc((3,t3)) = %d, want 0", e)
	}
	if e := Eccentricity(g, tn(2, 0), egraph.CausalAllPairs); e != -1 {
		t.Fatalf("inactive ecc = %d, want -1", e)
	}
	if d := TemporalDiameter(g, egraph.CausalAllPairs); d != 3 {
		t.Fatalf("diameter = %d, want 3", d)
	}
}

// Property: diameter = max eccentricity; consecutive mode never shrinks
// the diameter.
func TestDiameterConsistency(t *testing.T) {
	f := func(seed int64, directed bool) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, directed)
		dAll := TemporalDiameter(g, egraph.CausalAllPairs)
		dCons := TemporalDiameter(g, egraph.CausalConsecutive)
		return dCons >= dAll
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
