package core

import (
	"errors"

	"repro/internal/egraph"
)

// DFSEvent labels the callbacks of the temporal depth-first search.
type DFSEvent int

const (
	// Discover fires when a temporal node is first visited.
	Discover DFSEvent = iota
	// Finish fires when a temporal node's subtree is exhausted.
	Finish
)

// DFS runs a depth-first traversal over the forward-neighbour relation
// from root, invoking visit for Discover and Finish events. Returning
// false from visit aborts the walk. The traversal is iterative, so deep
// temporal graphs cannot overflow the goroutine stack.
func DFS(g *egraph.IntEvolvingGraph, root egraph.TemporalNode, opts Options,
	visit func(tn egraph.TemporalNode, ev DFSEvent) bool) error {
	if err := checkRoot(g, root); err != nil {
		return err
	}
	size := g.NumNodes() * g.NumStamps()
	seen := make([]bool, size)

	type frame struct {
		id  int32
		nbs []egraph.TemporalNode
		i   int
	}
	push := func(stack []frame, tn egraph.TemporalNode) []frame {
		id := g.TemporalNodeID(tn)
		seen[id] = true
		return append(stack, frame{id: int32(id), nbs: neighborsOf(g, tn, opts)})
	}
	if !visit(root, Discover) {
		return nil
	}
	stack := push(nil, root)
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.i < len(f.nbs) {
			nb := f.nbs[f.i]
			f.i++
			if !seen[g.TemporalNodeID(nb)] {
				if !visit(nb, Discover) {
					return nil
				}
				stack = push(stack, nb)
			}
			continue
		}
		tn := g.TemporalNodeFromID(int(f.id))
		stack = stack[:len(stack)-1]
		if !visit(tn, Finish) {
			return nil
		}
	}
	return nil
}

func neighborsOf(g *egraph.IntEvolvingGraph, tn egraph.TemporalNode, opts Options) []egraph.TemporalNode {
	var out []egraph.TemporalNode
	visitNeighborsOpts(g, tn, opts, func(nb egraph.TemporalNode) bool {
		out = append(out, nb)
		return true
	})
	return out
}

// ErrCyclic is returned by TopologicalOrder when some snapshot contains
// a directed cycle (the unfolded graph is a DAG iff every snapshot is
// acyclic — the graph-side reading of Lemma 1).
var ErrCyclic = errors.New("core: evolving graph has a cyclic snapshot")

// TopologicalOrder returns all active temporal nodes in a topological
// order of the unfolded graph G = (V, E): every static and causal edge
// points from an earlier to a later position. It fails with ErrCyclic if
// any snapshot has a directed cycle.
//
// The stamp-major structure does half the work (causal and cross-stamp
// edges always point to later stamps); within each stamp a Kahn pass
// orders the snapshot's active subgraph.
func TopologicalOrder(g *egraph.IntEvolvingGraph, mode egraph.CausalMode) ([]egraph.TemporalNode, error) {
	var order []egraph.TemporalNode
	for t := 0; t < g.NumStamps(); t++ {
		act := g.ActiveNodes(t)
		// In-degrees within the snapshot.
		indeg := make(map[int32]int)
		for vi := act.NextSet(0); vi >= 0; vi = act.NextSet(vi + 1) {
			v := int32(vi)
			if _, ok := indeg[v]; !ok {
				indeg[v] = 0
			}
			for _, w := range g.OutNeighbors(v, int32(t)) {
				indeg[w]++
			}
		}
		// Kahn: repeatedly emit zero-in-degree nodes, ascending id for
		// determinism.
		var queue []int32
		for vi := act.NextSet(0); vi >= 0; vi = act.NextSet(vi + 1) {
			if indeg[int32(vi)] == 0 {
				queue = append(queue, int32(vi))
			}
		}
		emitted := 0
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, egraph.TemporalNode{Node: v, Stamp: int32(t)})
			emitted++
			for _, w := range g.OutNeighbors(v, int32(t)) {
				indeg[w]--
				if indeg[w] == 0 {
					queue = append(queue, w)
				}
			}
		}
		if emitted != act.Count() {
			return nil, ErrCyclic
		}
	}
	_ = mode // the order is valid for both causal modes: causal edges go to later stamps
	return order, nil
}

// IsTemporalDAG reports whether every snapshot is acyclic, i.e. the
// unfolded graph is a DAG and A_n is nilpotent (Lemma 1).
func IsTemporalDAG(g *egraph.IntEvolvingGraph) bool {
	_, err := TopologicalOrder(g, egraph.CausalAllPairs)
	return err == nil
}
