package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/egraph"
)

func TestDFSVisitsReachableSet(t *testing.T) {
	g := egraph.Figure1Graph()
	var discovered, finished []egraph.TemporalNode
	err := DFS(g, tn(0, 0), Options{}, func(n egraph.TemporalNode, ev DFSEvent) bool {
		if ev == Discover {
			discovered = append(discovered, n)
		} else {
			finished = append(finished, n)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(discovered) != 6 || len(finished) != 6 {
		t.Fatalf("discovered %d, finished %d, want 6/6", len(discovered), len(finished))
	}
	if discovered[0] != tn(0, 0) {
		t.Fatal("root not discovered first")
	}
	// The root finishes last in a DFS from a single root.
	if finished[len(finished)-1] != tn(0, 0) {
		t.Fatalf("root should finish last, got %v", finished)
	}
}

func TestDFSEarlyAbort(t *testing.T) {
	g := egraph.Figure1Graph()
	count := 0
	err := DFS(g, tn(0, 0), Options{}, func(n egraph.TemporalNode, ev DFSEvent) bool {
		if ev == Discover {
			count++
		}
		return count < 2
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Fatalf("visited %d, want abort at 2", count)
	}
}

func TestDFSInactiveRoot(t *testing.T) {
	g := egraph.Figure1Graph()
	if err := DFS(g, tn(2, 0), Options{}, func(egraph.TemporalNode, DFSEvent) bool { return true }); err == nil {
		t.Fatal("inactive root should fail")
	}
}

// Property: DFS discovers exactly the BFS-reachable set.
func TestDFSMatchesBFSReachability(t *testing.T) {
	f := func(seed int64, directed bool) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, directed)
		u := g.Unfold(egraph.CausalAllPairs)
		for _, root := range u.Order {
			bfs, err := BFS(g, root, Options{})
			if err != nil {
				return false
			}
			seen := map[egraph.TemporalNode]bool{}
			err = DFS(g, root, Options{}, func(n egraph.TemporalNode, ev DFSEvent) bool {
				if ev == Discover {
					seen[n] = true
				}
				return true
			})
			if err != nil {
				return false
			}
			if len(seen) != bfs.NumReached() {
				return false
			}
			for n := range seen {
				if !bfs.Reached(n) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestTopologicalOrderFigure1(t *testing.T) {
	g := egraph.Figure1Graph()
	order, err := TopologicalOrder(g, egraph.CausalAllPairs)
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 6 {
		t.Fatalf("order = %v", order)
	}
	checkTopological(t, g, order)
}

func checkTopological(t *testing.T, g *egraph.IntEvolvingGraph, order []egraph.TemporalNode) {
	t.Helper()
	pos := make(map[egraph.TemporalNode]int, len(order))
	for i, n := range order {
		pos[n] = i
	}
	u := g.Unfold(egraph.CausalAllPairs)
	for fromID, from := range u.Order {
		for _, toID := range u.Graph.Neighbors(int32(fromID)) {
			to := u.Order[toID]
			if pos[from] >= pos[to] {
				t.Fatalf("arc %v→%v violates order", from, to)
			}
		}
	}
}

func TestTopologicalOrderCycle(t *testing.T) {
	b := egraph.NewBuilder(true)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 0, 1)
	g := b.Build()
	if _, err := TopologicalOrder(g, egraph.CausalAllPairs); err != ErrCyclic {
		t.Fatalf("err = %v, want ErrCyclic", err)
	}
	if IsTemporalDAG(g) {
		t.Fatal("cyclic graph reported as DAG")
	}
	if !IsTemporalDAG(egraph.Figure1Graph()) {
		t.Fatal("Fig. 1 graph should be a temporal DAG")
	}
}

// Property: on DAG-snapshot graphs the topological order is valid and
// covers all active temporal nodes; undirected graphs (inherently
// cyclic once an edge exists) are rejected.
func TestTopologicalOrderProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := egraph.NewBuilder(true)
		n := 2 + rng.Intn(6)
		stamps := 1 + rng.Intn(4)
		for e := 0; e < rng.Intn(3*n); e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			if u > v {
				u, v = v, u
			}
			b.AddEdge(int32(u), int32(v), int64(1+rng.Intn(stamps)))
		}
		b.AddEdge(0, 1, 1)
		g := b.Build()
		order, err := TopologicalOrder(g, egraph.CausalAllPairs)
		if err != nil {
			return false
		}
		if len(order) != g.NumActiveNodes() {
			return false
		}
		pos := make(map[egraph.TemporalNode]int, len(order))
		for i, nd := range order {
			pos[nd] = i
		}
		u := g.Unfold(egraph.CausalAllPairs)
		for fromID, from := range u.Order {
			for _, toID := range u.Graph.Neighbors(int32(fromID)) {
				if pos[from] >= pos[u.Order[toID]] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}

	bu := egraph.NewBuilder(false)
	bu.AddEdge(0, 1, 1)
	if _, err := TopologicalOrder(bu.Build(), egraph.CausalAllPairs); err != ErrCyclic {
		t.Fatal("undirected edge should be cyclic")
	}
}
