package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/egraph"
)

func TestBidirectionalFigure1(t *testing.T) {
	g := egraph.Figure1Graph()
	path, ok, err := BidirectionalShortestPath(g, tn(0, 0), tn(2, 2), egraph.CausalAllPairs)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	// The paper's Fig. 2: distance 3 from (1,t1) to (3,t3).
	if path.Hops() != 3 {
		t.Fatalf("hops = %d, want 3 (path %v)", path.Hops(), path)
	}
	if path[0] != tn(0, 0) || path[len(path)-1] != tn(2, 2) {
		t.Fatalf("endpoints wrong: %v", path)
	}
	if !path.IsValid(g, egraph.CausalAllPairs) {
		t.Fatalf("invalid path %v", path)
	}
}

func TestBidirectionalUnreachableAndDegenerate(t *testing.T) {
	g := egraph.Figure1Graph()
	// (3,t2) cannot reach (1,t1): time only moves forward.
	if _, ok, err := BidirectionalShortestPath(g, tn(2, 1), tn(0, 0), egraph.CausalAllPairs); ok || err != nil {
		t.Fatalf("backward-in-time query: ok=%v err=%v", ok, err)
	}
	// Inactive endpoints are unreachable by Def. 4, not an error.
	if _, ok, err := BidirectionalShortestPath(g, tn(2, 0), tn(2, 2), egraph.CausalAllPairs); ok || err != nil {
		t.Fatalf("inactive source: ok=%v err=%v", ok, err)
	}
	if _, ok, err := BidirectionalShortestPath(g, tn(0, 0), tn(1, 1), egraph.CausalAllPairs); ok || err != nil {
		t.Fatalf("inactive target: ok=%v err=%v", ok, err)
	}
	// Identical endpoints: the trivial path.
	path, ok, err := BidirectionalShortestPath(g, tn(0, 0), tn(0, 0), egraph.CausalAllPairs)
	if err != nil || !ok || len(path) != 1 || path.Hops() != 0 {
		t.Fatalf("self query = %v, %v, %v", path, ok, err)
	}
}

// The bidirectional distance must equal the unidirectional BFS distance
// for every reachable pair, and the returned path must be a valid
// temporal path of that length — over random graphs, both causal modes,
// both orientations.
func TestBidirectionalMatchesBFS(t *testing.T) {
	for _, mode := range []egraph.CausalMode{egraph.CausalAllPairs, egraph.CausalConsecutive} {
		f := func(seed int64, directed bool) bool {
			rng := rand.New(rand.NewSource(seed))
			g := randomGraph(rng, directed)
			u := g.Unfold(mode)
			// One forward BFS per source gives the oracle distances.
			for _, from := range u.Order {
				res, err := BFS(g, from, Options{Mode: mode})
				if err != nil {
					t.Log(err)
					return false
				}
				for _, to := range u.Order {
					want := res.Dist(to)
					path, ok, err := BidirectionalShortestPath(g, from, to, mode)
					if err != nil {
						t.Log(err)
						return false
					}
					if (want >= 0) != ok {
						t.Logf("seed %d mode %v %v→%v: ok=%v, oracle dist %d", seed, mode, from, to, ok, want)
						return false
					}
					if !ok {
						continue
					}
					if path.Hops() != want {
						t.Logf("seed %d mode %v %v→%v: hops %d, oracle %d (path %v)",
							seed, mode, from, to, path.Hops(), want, path)
						return false
					}
					if path[0] != from || path[len(path)-1] != to {
						t.Logf("seed %d: endpoints wrong: %v", seed, path)
						return false
					}
					if !path.IsValid(g, mode) {
						t.Logf("seed %d mode %v: invalid path %v", seed, mode, path)
						return false
					}
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
	}
}
