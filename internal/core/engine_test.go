package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/egraph"
	"repro/internal/gen"
)

// optionMatrix enumerates every engine-relevant option combination.
func optionMatrix(trackParents bool) []Options {
	var out []Options
	for _, mode := range []egraph.CausalMode{egraph.CausalAllPairs, egraph.CausalConsecutive} {
		for _, dir := range []Direction{Forward, Backward} {
			for _, rev := range []bool{false, true} {
				out = append(out, Options{
					Mode: mode, Direction: dir, ReverseEdges: rev,
					TrackParents: trackParents,
				})
			}
		}
	}
	return out
}

func firstActive(g *egraph.IntEvolvingGraph) egraph.TemporalNode {
	for t := 0; t < g.NumStamps(); t++ {
		if v := g.ActiveNodes(t).NextSet(0); v >= 0 {
			return egraph.TemporalNode{Node: int32(v), Stamp: int32(t)}
		}
	}
	panic("no active temporal node")
}

// assertIdentical compares every observable of two results. The CSR
// engine mirrors the oracle's visit order, so even parents and level
// sizes must be bit-identical.
func assertIdentical(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if got.reached != want.reached {
		t.Fatalf("%s: reached %d, want %d", label, got.reached, want.reached)
	}
	for id := range want.dist {
		if got.dist[id] != want.dist[id] {
			t.Fatalf("%s: dist[%d] = %d, want %d", label, id, got.dist[id], want.dist[id])
		}
	}
	if (got.parent == nil) != (want.parent == nil) {
		t.Fatalf("%s: parent tracking mismatch", label)
	}
	for id := range want.parent {
		if got.parent[id] != want.parent[id] {
			t.Fatalf("%s: parent[%d] = %d, want %d", label, id, got.parent[id], want.parent[id])
		}
	}
	if len(got.levels) != len(want.levels) {
		t.Fatalf("%s: levels %v, want %v", label, got.levels, want.levels)
	}
	for i := range want.levels {
		if got.levels[i] != want.levels[i] {
			t.Fatalf("%s: levels %v, want %v", label, got.levels, want.levels)
		}
	}
}

// assertSameDistances compares distances only (for engines that may
// legitimately pick different BFS-tree parents).
func assertSameDistances(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if got.reached != want.reached {
		t.Fatalf("%s: reached %d, want %d", label, got.reached, want.reached)
	}
	for id := range want.dist {
		if got.dist[id] != want.dist[id] {
			t.Fatalf("%s: dist[%d] = %d, want %d", label, id, got.dist[id], want.dist[id])
		}
	}
}

// The CSR engine must be indistinguishable from the adjacency-map
// oracle on randomized graphs across both causal modes, both time
// directions, and both static-edge senses.
func TestCSREngineMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(20160189))
	for trial := 0; trial < 60; trial++ {
		g := randomGraph(rng, trial%2 == 0)
		root := firstActive(g)
		for _, opts := range optionMatrix(true) {
			oracle := opts
			oracle.UseAdjacencyMaps = true
			want, err := BFS(g, root, oracle)
			if err != nil {
				t.Fatal(err)
			}
			got, err := BFS(g, root, opts)
			if err != nil {
				t.Fatal(err)
			}
			label := fmt.Sprintf("trial %d %v/%v rev=%v", trial, opts.Mode, opts.Direction, opts.ReverseEdges)
			assertIdentical(t, label, got, want)
		}
	}
}

// Same differential check on the larger Figure 5 generator workload.
func TestCSREngineMatchesOracleOnGeneratorGraphs(t *testing.T) {
	graphs := []*egraph.IntEvolvingGraph{
		gen.Random(gen.RandomConfig{Nodes: 300, Stamps: 6, Edges: 2500, Directed: true, Seed: 1}),
		gen.Random(gen.RandomConfig{Nodes: 300, Stamps: 6, Edges: 2500, Directed: false, Seed: 2}),
		gen.GNP(120, 5, 0.02, true, 3),
		gen.PreferentialAttachment(200, 5, 3, 4),
	}
	for gi, g := range graphs {
		root := firstActive(g)
		for _, opts := range optionMatrix(true) {
			oracle := opts
			oracle.UseAdjacencyMaps = true
			want, err := BFS(g, root, oracle)
			if err != nil {
				t.Fatal(err)
			}
			got, err := BFS(g, root, opts)
			if err != nil {
				t.Fatal(err)
			}
			label := fmt.Sprintf("graph %d %v/%v rev=%v", gi, opts.Mode, opts.Direction, opts.ReverseEdges)
			assertIdentical(t, label, got, want)
		}
	}
}

// MaxDepth must truncate both engines at the same level.
func TestCSREngineMaxDepthMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		g := randomGraph(rng, trial%2 == 0)
		root := firstActive(g)
		for depth := 1; depth <= 3; depth++ {
			opts := Options{MaxDepth: depth, TrackParents: true}
			oracle := opts
			oracle.UseAdjacencyMaps = true
			want, err := BFS(g, root, oracle)
			if err != nil {
				t.Fatal(err)
			}
			got, err := BFS(g, root, opts)
			if err != nil {
				t.Fatal(err)
			}
			assertIdentical(t, fmt.Sprintf("trial %d depth %d", trial, depth), got, want)
		}
	}
}

// Multi-source searches share the engine dispatch; check both paths.
func TestCSREngineMultiSourceMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		g := randomGraph(rng, trial%2 == 0)
		var roots []egraph.TemporalNode
		for t2 := 0; t2 < g.NumStamps() && len(roots) < 3; t2++ {
			act := g.ActiveNodes(t2)
			for v := act.NextSet(0); v >= 0 && len(roots) < 3; v = act.NextSet(v + 1) {
				roots = append(roots, egraph.TemporalNode{Node: int32(v), Stamp: int32(t2)})
			}
		}
		for _, opts := range optionMatrix(true) {
			oracle := opts
			oracle.UseAdjacencyMaps = true
			want, err := MultiSourceBFS(g, roots, oracle)
			if err != nil {
				t.Fatal(err)
			}
			got, err := MultiSourceBFS(g, roots, opts)
			if err != nil {
				t.Fatal(err)
			}
			assertIdentical(t, fmt.Sprintf("trial %d %+v", trial, opts), got, want)
		}
	}
}

// The parallel CSR engine guarantees identical distances (parents may
// differ by claim order) against both sequential engines.
func TestParallelCSRMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 30; trial++ {
		g := randomGraph(rng, trial%2 == 0)
		root := firstActive(g)
		for _, base := range optionMatrix(false) {
			oracle := base
			oracle.UseAdjacencyMaps = true
			want, err := BFS(g, root, oracle)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 4} {
				// Both the CSR engine and the adjacency-map parallel
				// oracle must reproduce the sequential distances.
				for _, useMaps := range []bool{false, true} {
					popts := base
					popts.UseAdjacencyMaps = useMaps
					got, err := ParallelBFS(g, root, ParallelOptions{Options: popts, Workers: workers})
					if err != nil {
						t.Fatal(err)
					}
					label := fmt.Sprintf("trial %d workers %d maps=%v %+v", trial, workers, useMaps, base)
					assertSameDistances(t, label, got, want)
				}
			}
		}
	}
}

// Parallel CSR parents, when tracked, must form a valid BFS tree: every
// non-root reached node's parent sits exactly one level closer.
func TestParallelCSRParentsValid(t *testing.T) {
	g := gen.Random(gen.RandomConfig{Nodes: 200, Stamps: 5, Edges: 1500, Directed: true, Seed: 9})
	root := firstActive(g)
	res, err := ParallelBFS(g, root, ParallelOptions{Options: Options{TrackParents: true}, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	rootID := g.TemporalNodeID(root)
	for id, d := range res.dist {
		if d < 0 || id == rootID {
			continue
		}
		p := res.parent[id]
		if p < 0 {
			t.Fatalf("reached node %d has no parent", id)
		}
		if res.dist[p] != d-1 {
			t.Fatalf("parent of %d at dist %d has dist %d", id, d, res.dist[p])
		}
	}
}
