package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/egraph"
)

// The sweep must reach exactly the set BFS reaches, per root, under
// every option combination.
func TestReachSweepMatchesBFS(t *testing.T) {
	f := func(seed int64, directed, reverse bool) bool {
		rng := rand.New(rand.NewSource(seed))
		g := sweepRandomGraph(rng, directed)
		roots := g.ActiveTemporalNodes()
		for _, mode := range []egraph.CausalMode{egraph.CausalAllPairs, egraph.CausalConsecutive} {
			opts := Options{Mode: mode, ReverseEdges: reverse}
			got := make([]map[int32]bool, len(roots))
			if err := ReachSweep(g, roots, opts, 3, func(i int, reached []int32) {
				set := make(map[int32]bool, len(reached))
				for _, id := range reached {
					set[id] = true
				}
				got[i] = set
			}); err != nil {
				t.Log(err)
				return false
			}
			for i, root := range roots {
				res, err := BFS(g, root, opts)
				if err != nil {
					t.Log(err)
					return false
				}
				if len(got[i]) != res.NumReached() {
					t.Logf("seed %d root %v mode %v: sweep reached %d, BFS %d",
						seed, root, mode, len(got[i]), res.NumReached())
					return false
				}
				ok := true
				res.Visit(func(tn egraph.TemporalNode, _ int) bool {
					if !got[i][int32(g.TemporalNodeID(tn))] {
						ok = false
						return false
					}
					return true
				})
				if !ok {
					t.Logf("seed %d root %v mode %v: sweep missed a BFS-reached node", seed, root, mode)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestReachSweepRejectsInactiveRoot(t *testing.T) {
	g := egraph.Figure1Graph()
	err := ReachSweep(g, []egraph.TemporalNode{{Node: 2, Stamp: 0}}, Options{}, 0,
		func(int, []int32) { t.Error("fn called despite invalid root") })
	if err == nil {
		t.Fatal("inactive root accepted")
	}
}

func sweepRandomGraph(rng *rand.Rand, directed bool) *egraph.IntEvolvingGraph {
	b := egraph.NewBuilder(directed)
	n := 2 + rng.Intn(8)
	stamps := 1 + rng.Intn(4)
	for e := 0; e < rng.Intn(3*n); e++ {
		b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)), int64(1+rng.Intn(stamps)))
	}
	b.AddEdge(0, 1, 1)
	return b.Build()
}
