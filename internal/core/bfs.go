// Package core implements the paper's primary contribution: breadth-first
// search over evolving graphs (Algorithm 1 of Chen & Zhang 2016) and its
// variants — backward (time-reversed) search, bounded-depth and
// multi-source search, a level-synchronous parallel BFS, temporal-path
// enumeration and counting, and weighted temporal shortest paths.
//
// The search explores forward neighbours in both space and time: from an
// active temporal node (v, t) it may follow a static edge (v, w) ∈ E[t]
// to (w, t), or a causal edge to (v, t′) for a later stamp t′ where v is
// active. Distances count both kinds of hops (Def. 6), which is what
// distinguishes the paper's formulation from dynamic walks
// (Grindrod–Higham) and temporal distance (Tang et al.); see
// internal/metrics for those baselines.
package core

import (
	"errors"
	"fmt"

	"repro/internal/ds"
	"repro/internal/egraph"
)

// Direction selects the time orientation of a search.
type Direction int

const (
	// Forward searches along edges and forward in time (influence:
	// everything the root can reach).
	Forward Direction = iota
	// Backward searches against edges and backward in time
	// (provenance: everything that can reach the root). Equivalent to
	// a Forward search on g.TimeReverse().
	Backward
)

func (d Direction) String() string {
	if d == Backward {
		return "backward"
	}
	return "forward"
}

// Options configures a BFS run. The zero value is the paper's Algorithm 1:
// forward direction, all-pairs causal edges, unbounded depth.
type Options struct {
	// Mode selects the causal edge set (Def. of E′ vs the consecutive
	// ablation). Reachability is identical in both; distances differ.
	Mode egraph.CausalMode
	// Direction selects forward (influence) or backward (provenance).
	Direction Direction
	// ReverseEdges flips the sense of static edges while keeping the
	// time orientation of Direction. Citation networks need this: an
	// edge i→j means "i cites j", so influence flows j→i forward in
	// time (Forward + ReverseEdges), and the authors that influenced i
	// are found by Backward + ReverseEdges (Sec. V).
	ReverseEdges bool
	// MaxDepth, if positive, stops the search after that many levels;
	// temporal nodes further away are left unreached.
	MaxDepth int
	// TrackParents records one BFS-tree parent per reached node so
	// shortest temporal paths can be reconstructed.
	TrackParents bool
	// UseAdjacencyMaps routes the search through the original
	// per-stamp adjacency traversal (visitNeighbors over OutNeighbors /
	// ActiveStamps with per-visit searches) instead of the flat
	// CSR/bitset engine (DESIGN.md §8). The two produce identical
	// results; the slower path is kept as a differential-testing oracle
	// and as an escape hatch for huge graphs where materialising the
	// CSR view is undesirable.
	UseAdjacencyMaps bool
}

// ErrInactiveRoot is returned when the search root is an inactive
// temporal node. By Def. 4, every temporal path from an inactive node is
// the empty sequence, so the search is vacuous; asking for it is almost
// always a caller bug.
var ErrInactiveRoot = errors.New("core: BFS root is not an active temporal node")

// Result holds the outcome of a BFS: the reached dictionary of
// Algorithm 1, stored densely by temporal-node id, plus optional parents.
type Result struct {
	g       *egraph.IntEvolvingGraph
	root    egraph.TemporalNode
	opts    Options
	dist    []int32 // -1 = unreached, else distance from root
	parent  []int32 // temporal-node id of BFS-tree parent, -1 at root/unreached
	reached int     // number of reached temporal nodes (including root)
	levels  []int   // levels[k] = number of nodes at distance k
}

// Root returns the search root.
func (r *Result) Root() egraph.TemporalNode { return r.root }

// Reached reports whether (v, t) was reached (Def. 7 reachability).
func (r *Result) Reached(tn egraph.TemporalNode) bool {
	return r.dist[r.g.TemporalNodeID(tn)] >= 0
}

// Dist returns the distance (Def. 6) from the root to (v, t), or -1 if
// it is unreachable.
func (r *Result) Dist(tn egraph.TemporalNode) int {
	return int(r.dist[r.g.TemporalNodeID(tn)])
}

// NumReached returns the number of reached temporal nodes, root included.
func (r *Result) NumReached() int { return r.reached }

// MaxDist returns the eccentricity of the root: the largest finite
// distance discovered.
func (r *Result) MaxDist() int { return len(r.levels) - 1 }

// LevelSizes returns the number of temporal nodes at each distance
// 0..MaxDist (a copy).
func (r *Result) LevelSizes() []int { return append([]int(nil), r.levels...) }

// Parent returns the BFS-tree parent of (v, t). ok is false at the root,
// at unreached nodes, or when the search did not track parents.
func (r *Result) Parent(tn egraph.TemporalNode) (parent egraph.TemporalNode, ok bool) {
	if r.parent == nil {
		return egraph.TemporalNode{}, false
	}
	p := r.parent[r.g.TemporalNodeID(tn)]
	if p < 0 {
		return egraph.TemporalNode{}, false
	}
	return r.g.TemporalNodeFromID(int(p)), true
}

// Visit calls fn for every reached temporal node with its distance, in
// ascending temporal-node id order — equivalently stamp-major,
// node-ascending. That order is a documented guarantee: the analytics
// layer relies on it both for sorted output (components.OutComponent)
// and for engine-independent floating-point accumulation order
// (metrics closeness/efficiency, DESIGN.md §9). Iteration stops early
// if fn returns false.
func (r *Result) Visit(fn func(tn egraph.TemporalNode, dist int) bool) {
	for id, d := range r.dist {
		if d >= 0 {
			if !fn(r.g.TemporalNodeFromID(id), int(d)) {
				return
			}
		}
	}
}

// ReachedNodes returns all reached temporal nodes (root included) in
// unspecified order.
func (r *Result) ReachedNodes() []egraph.TemporalNode {
	out := make([]egraph.TemporalNode, 0, r.reached)
	r.Visit(func(tn egraph.TemporalNode, _ int) bool {
		out = append(out, tn)
		return true
	})
	return out
}

// PathTo reconstructs a shortest temporal path from the root to (v, t)
// as a sequence of temporal nodes (root first). It returns nil if the
// target is unreached or parents were not tracked.
func (r *Result) PathTo(tn egraph.TemporalNode) []egraph.TemporalNode {
	if r.parent == nil || !r.Reached(tn) {
		return nil
	}
	var rev []egraph.TemporalNode
	cur := tn
	for {
		rev = append(rev, cur)
		if cur == r.root {
			break
		}
		p := r.parent[r.g.TemporalNodeID(cur)]
		cur = r.g.TemporalNodeFromID(int(p))
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// BFS runs Algorithm 1 from root under opts and returns the reached
// dictionary. The root must be an active temporal node of g.
//
// By default the search runs on the flat CSR/bitset engine (DESIGN.md
// §8); set Options.UseAdjacencyMaps to traverse the per-stamp adjacency
// directly instead. Distances, parents and level sizes are identical
// either way.
func BFS(g *egraph.IntEvolvingGraph, root egraph.TemporalNode, opts Options) (*Result, error) {
	if err := checkRoot(g, root); err != nil {
		return nil, err
	}
	r := newResult(g, root, opts)
	rootID := g.TemporalNodeID(root)
	r.dist[rootID] = 0
	r.reached = 1
	r.levels = []int{1}
	r.run(g, []int32{int32(rootID)}, opts)
	return r, nil
}

// run expands the seeded frontier to exhaustion on the engine opts
// selects. Seeds must already be recorded in r (dist 0, reached count,
// level 0).
func (r *Result) run(g *egraph.IntEvolvingGraph, seeds []int32, opts Options) {
	if opts.UseAdjacencyMaps {
		runReference(g, r, seeds, opts)
	} else {
		runCSR(g, r, seeds, opts)
	}
}

// runReference is the original adjacency-map engine: frontier expansion
// through visitNeighborsOpts, with per-visit stamp searches. Kept as the
// differential-testing oracle for the CSR engine.
func runReference(g *egraph.IntEvolvingGraph, r *Result, seeds []int32, opts Options) {
	frontier := append([]int32(nil), seeds...)
	var next []int32
	k := int32(1)
	for len(frontier) > 0 {
		if opts.MaxDepth > 0 && int(k) > opts.MaxDepth {
			break
		}
		next = next[:0]
		for _, id := range frontier {
			tn := g.TemporalNodeFromID(int(id))
			visitNeighborsOpts(g, tn, opts, func(nb egraph.TemporalNode) bool {
				nbID := g.TemporalNodeID(nb)
				if r.dist[nbID] < 0 {
					r.dist[nbID] = k
					if r.parent != nil {
						r.parent[nbID] = id
					}
					r.reached++
					next = append(next, int32(nbID))
				}
				return true
			})
		}
		if len(next) > 0 {
			r.levels = append(r.levels, len(next))
		}
		frontier, next = next, frontier
		k++
	}
}

func checkRoot(g *egraph.IntEvolvingGraph, root egraph.TemporalNode) error {
	if root.Node < 0 || int(root.Node) >= g.NumNodes() ||
		root.Stamp < 0 || int(root.Stamp) >= g.NumStamps() {
		return fmt.Errorf("core: root %v outside graph with %d nodes, %d stamps",
			root, g.NumNodes(), g.NumStamps())
	}
	if !g.IsActive(root.Node, root.Stamp) {
		return ErrInactiveRoot
	}
	return nil
}

func newResult(g *egraph.IntEvolvingGraph, root egraph.TemporalNode, opts Options) *Result {
	size := g.NumNodes() * g.NumStamps()
	r := &Result{g: g, root: root, opts: opts, dist: make([]int32, size)}
	for i := range r.dist {
		r.dist[i] = -1
	}
	if opts.TrackParents {
		r.parent = make([]int32, size)
		for i := range r.parent {
			r.parent[i] = -1
		}
	}
	return r
}

// visitNeighbors enumerates the forward (or backward) neighbours of an
// active temporal node: static neighbours at the same stamp, then causal
// neighbours of the same node at other stamps. Iteration stops early if
// fn returns false.
func visitNeighbors(g *egraph.IntEvolvingGraph, tn egraph.TemporalNode,
	mode egraph.CausalMode, dir Direction, fn func(egraph.TemporalNode) bool) {
	visitNeighborsOpts(g, tn, Options{Mode: mode, Direction: dir}, fn)
}

// visitNeighborsOpts is visitNeighbors with the full option set
// (honouring ReverseEdges).
func visitNeighborsOpts(g *egraph.IntEvolvingGraph, tn egraph.TemporalNode,
	opts Options, fn func(egraph.TemporalNode) bool) {

	mode, dir := opts.Mode, opts.Direction
	v, t := tn.Node, tn.Stamp
	var static []int32
	if (dir == Forward) != opts.ReverseEdges {
		static = g.OutNeighbors(v, t)
	} else {
		static = g.InNeighbors(v, t)
	}
	for _, w := range static {
		if !fn(egraph.TemporalNode{Node: w, Stamp: t}) {
			return
		}
	}
	switch mode {
	case egraph.CausalAllPairs:
		stamps := g.ActiveStamps(v)
		if dir == Forward {
			for i := len(stamps) - 1; i >= 0; i-- {
				s := stamps[i]
				if s <= t {
					break
				}
				if !fn(egraph.TemporalNode{Node: v, Stamp: s}) {
					return
				}
			}
		} else {
			for _, s := range stamps {
				if s >= t {
					break
				}
				if !fn(egraph.TemporalNode{Node: v, Stamp: s}) {
					return
				}
			}
		}
	case egraph.CausalConsecutive:
		var s int32
		if dir == Forward {
			s = g.NextActiveStamp(v, t)
		} else {
			s = g.PrevActiveStamp(v, t)
		}
		if s >= 0 {
			if !fn(egraph.TemporalNode{Node: v, Stamp: s}) {
				return
			}
		}
	}
}

// ForwardNeighbors returns the forward neighbours (Def. 5) of an active
// temporal node under the given causal mode. The root of every length-2
// temporal path from (v, t) appears exactly once.
func ForwardNeighbors(g *egraph.IntEvolvingGraph, tn egraph.TemporalNode, mode egraph.CausalMode) []egraph.TemporalNode {
	var out []egraph.TemporalNode
	visitNeighbors(g, tn, mode, Forward, func(nb egraph.TemporalNode) bool {
		out = append(out, nb)
		return true
	})
	return out
}

// BackwardNeighbors returns the temporal nodes of which (v, t) is a
// forward neighbour.
func BackwardNeighbors(g *egraph.IntEvolvingGraph, tn egraph.TemporalNode, mode egraph.CausalMode) []egraph.TemporalNode {
	var out []egraph.TemporalNode
	visitNeighbors(g, tn, mode, Backward, func(nb egraph.TemporalNode) bool {
		out = append(out, nb)
		return true
	})
	return out
}

// MultiSourceBFS runs one BFS from a set of roots simultaneously: every
// root has distance 0 and each temporal node's distance is its distance
// to the nearest root. All roots must be active.
func MultiSourceBFS(g *egraph.IntEvolvingGraph, roots []egraph.TemporalNode, opts Options) (*Result, error) {
	if len(roots) == 0 {
		return nil, errors.New("core: MultiSourceBFS needs at least one root")
	}
	for _, root := range roots {
		if err := checkRoot(g, root); err != nil {
			return nil, err
		}
	}
	r := newResult(g, roots[0], opts)
	frontier := make([]int32, 0, len(roots))
	for _, root := range roots {
		id := g.TemporalNodeID(root)
		if r.dist[id] == 0 {
			continue // duplicate root
		}
		r.dist[id] = 0
		r.reached++
		frontier = append(frontier, int32(id))
	}
	r.levels = []int{len(frontier)}
	r.run(g, frontier, opts)
	return r, nil
}

// Reachable reports whether (w, s) is reachable from (v, t) (Def. 7),
// i.e. a temporal path joins them. It early-exits as soon as the target
// is claimed.
func Reachable(g *egraph.IntEvolvingGraph, from, to egraph.TemporalNode, mode egraph.CausalMode) (bool, error) {
	if err := checkRoot(g, from); err != nil {
		return false, err
	}
	if from == to {
		return true, nil
	}
	size := g.NumNodes() * g.NumStamps()
	seen := ds.NewBitSet(size)
	seen.Set(g.TemporalNodeID(from))
	q := ds.NewIntQueue(64)
	q.Push(g.TemporalNodeID(from))
	found := false
	for !q.Empty() && !found {
		tn := g.TemporalNodeFromID(q.Pop())
		visitNeighbors(g, tn, mode, Forward, func(nb egraph.TemporalNode) bool {
			if nb == to {
				found = true
				return false
			}
			id := g.TemporalNodeID(nb)
			if !seen.TestAndSet(id) {
				q.Push(id)
			}
			return true
		})
	}
	return found, nil
}
