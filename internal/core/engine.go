package core

import (
	"runtime"
	"sync"

	"repro/internal/ds"
	"repro/internal/egraph"
)

// This file holds the default BFS engine (DESIGN.md §8): Algorithm 1
// over the graph's flat CSR view. A frontier expansion is pure array
// traversal — static arcs are pre-rebased temporal-node ids, causal
// arcs are a suffix or prefix scan of the node's active-stamp row, and
// visited-set membership is a single bit test. Frontier buffers and the
// visited bitset are recycled through a pool, so steady-state searches
// allocate only the Result.
//
// Neighbour visit order deliberately mirrors the adjacency-map oracle
// (static arcs ascending, then causal stamps descending for forward
// searches / ascending for backward): with identical discovery order
// the two engines produce bit-identical distance, parent and level
// arrays, which is what the differential tests assert.

var frontierPool = sync.Pool{New: func() interface{} { return new(ds.Frontier) }}

// runCSR expands the seeded frontier to exhaustion over g.CSR().
// Seeds must already be recorded in r (dist 0, reached, level 0).
func runCSR(g *egraph.IntEvolvingGraph, r *Result, seeds []int32, opts Options) {
	csr := g.CSR()
	f := frontierPool.Get().(*ds.Frontier)
	f.Reset(csr.Size())
	f.Seed(seeds...)

	n := int32(csr.N)
	useOut := (opts.Direction == Forward) != opts.ReverseEdges
	forward := opts.Direction == Forward
	consecutive := opts.Mode == egraph.CausalConsecutive
	dist, parent := r.dist, r.parent

	k := int32(1)
	for len(f.Cur) > 0 {
		if opts.MaxDepth > 0 && int(k) > opts.MaxDepth {
			break
		}
		for _, id := range f.Cur {
			// Static arcs within this stamp.
			var arcs []int32
			if useOut {
				arcs = csr.OutAdj[csr.OutPtr[id]:csr.OutPtr[id+1]]
			} else {
				arcs = csr.InAdj[csr.InPtr[id]:csr.InPtr[id+1]]
			}
			for _, nb := range arcs {
				if !f.Visited.TestAndSet(int(nb)) {
					dist[nb] = k
					if parent != nil {
						parent[nb] = id
					}
					f.Push(nb)
				}
			}
			// Causal arcs: the node's active-stamp row around this stamp.
			stamps, v := csr.CausalArcs(id, forward, consecutive)
			for i := range stamps {
				s := stamps[i]
				if forward {
					s = stamps[len(stamps)-1-i] // oracle order: descending
				}
				nb := s*n + v
				if !f.Visited.TestAndSet(int(nb)) {
					dist[nb] = k
					if parent != nil {
						parent[nb] = id
					}
					f.Push(nb)
				}
			}
		}
		if len(f.Next) > 0 {
			r.levels = append(r.levels, len(f.Next))
			r.reached += len(f.Next)
		}
		f.Advance()
		k++
	}
	frontierPool.Put(f)
}

// runParallelCSR is the level-synchronous parallel expansion over the
// CSR view: each level's frontier is partitioned into contiguous ranges,
// one per worker; workers claim discoveries through an atomic bitset
// (exactly one claimant per temporal node) into per-worker buffers that
// concatenate into the next frontier at the level barrier. Distances and
// level sizes are identical to the sequential engines; parent choice
// within a level may differ.
func runParallelCSR(g *egraph.IntEvolvingGraph, r *Result, rootID int, opts ParallelOptions) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	csr := g.CSR()
	n := int32(csr.N)
	useOut := (opts.Direction == Forward) != opts.ReverseEdges
	forward := opts.Direction == Forward
	consecutive := opts.Mode == egraph.CausalConsecutive
	dist, parent := r.dist, r.parent

	visited := ds.NewAtomicBitSet(csr.Size())
	visited.Set(rootID)
	frontier := []int32{int32(rootID)}
	buffers := make([][]int32, workers)

	k := int32(1)
	for len(frontier) > 0 {
		if opts.MaxDepth > 0 && int(k) > opts.MaxDepth {
			break
		}
		chunk := (len(frontier) + workers - 1) / workers
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo := w * chunk
			if lo >= len(frontier) {
				break
			}
			hi := lo + chunk
			if hi > len(frontier) {
				hi = len(frontier)
			}
			wg.Add(1)
			go func(w int, part []int32) {
				defer wg.Done()
				buf := buffers[w][:0]
				claim := func(nb, id int32) {
					if !visited.TestAndSet(int(nb)) {
						// Exclusive claim: the stores below race with
						// no other writer.
						dist[nb] = k
						if parent != nil {
							parent[nb] = id
						}
						buf = append(buf, nb)
					}
				}
				for _, id := range part {
					var arcs []int32
					if useOut {
						arcs = csr.OutAdj[csr.OutPtr[id]:csr.OutPtr[id+1]]
					} else {
						arcs = csr.InAdj[csr.InPtr[id]:csr.InPtr[id+1]]
					}
					for _, nb := range arcs {
						claim(nb, id)
					}
					stamps, v := csr.CausalArcs(id, forward, consecutive)
					for _, s := range stamps {
						claim(s*n+v, id)
					}
				}
				buffers[w] = buf
			}(w, frontier[lo:hi])
		}
		wg.Wait()

		frontier = frontier[:0]
		for w := range buffers {
			frontier = append(frontier, buffers[w]...)
			// Reset every buffer, including those of idle workers: a
			// worker with no slice of the next level must not leak this
			// level's nodes back into the frontier.
			buffers[w] = buffers[w][:0]
		}
		if len(frontier) > 0 {
			r.levels = append(r.levels, len(frontier))
			r.reached += len(frontier)
		}
		k++
	}
}
