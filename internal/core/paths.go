package core

import (
	"fmt"

	"repro/internal/egraph"
)

// TemporalPath is a time-ordered sequence of active temporal nodes
// (Def. 4). Each consecutive pair is either a static hop (same stamp,
// edge in E[t]) or a causal hop (same node, later stamp). The paper's
// "length" is the number of temporal nodes; the number of hops is
// len(p) - 1 and equals the distance contribution of the path.
type TemporalPath []egraph.TemporalNode

// Hops returns the number of edges traversed by the path.
func (p TemporalPath) Hops() int {
	if len(p) == 0 {
		return 0
	}
	return len(p) - 1
}

// Length returns the paper's path length: the number of temporal nodes.
func (p TemporalPath) Length() int { return len(p) }

func (p TemporalPath) String() string {
	s := "⟨"
	for i, tn := range p {
		if i > 0 {
			s += ", "
		}
		s += tn.String()
	}
	return s + "⟩"
}

// IsValid verifies that p is a temporal path of g under mode: all nodes
// active, time non-decreasing, and each consecutive pair a static edge
// or an allowed causal edge. The empty path is valid (Def. 4 makes the
// path from an inactive endpoint the empty sequence).
func (p TemporalPath) IsValid(g *egraph.IntEvolvingGraph, mode egraph.CausalMode) bool {
	for _, tn := range p {
		if tn.Node < 0 || int(tn.Node) >= g.NumNodes() ||
			tn.Stamp < 0 || int(tn.Stamp) >= g.NumStamps() {
			return false
		}
		if !g.IsActive(tn.Node, tn.Stamp) {
			return false
		}
	}
	for i := 1; i < len(p); i++ {
		a, b := p[i-1], p[i]
		switch {
		case a.Stamp == b.Stamp && a.Node != b.Node:
			if !g.HasEdge(a.Node, b.Node, a.Stamp) {
				return false
			}
		case a.Node == b.Node && a.Stamp < b.Stamp:
			if mode == egraph.CausalConsecutive && g.NextActiveStamp(a.Node, a.Stamp) != b.Stamp {
				return false
			}
		default:
			return false // same temporal node twice, or backward in time
		}
	}
	return true
}

// EnumeratePaths returns every simple temporal path from `from` to `to`
// with at most maxHops hops (maxHops ≤ 0 means unbounded — use only on
// small graphs). Paths are discovered by DFS over forward neighbours;
// a node may not repeat within one path. The result for the Fig. 1 graph
// from (1,t1) to (3,t3) is exactly the two length-4 paths of Fig. 2.
func EnumeratePaths(g *egraph.IntEvolvingGraph, from, to egraph.TemporalNode,
	mode egraph.CausalMode, maxHops int) ([]TemporalPath, error) {
	if err := checkRoot(g, from); err != nil {
		return nil, err
	}
	if !g.IsActive(to.Node, to.Stamp) {
		return nil, fmt.Errorf("core: path target %v is inactive", to)
	}
	var out []TemporalPath
	onPath := make(map[egraph.TemporalNode]bool)
	var cur TemporalPath

	var dfs func(tn egraph.TemporalNode)
	dfs = func(tn egraph.TemporalNode) {
		cur = append(cur, tn)
		onPath[tn] = true
		if tn == to {
			out = append(out, append(TemporalPath(nil), cur...))
		} else if maxHops <= 0 || len(cur)-1 < maxHops {
			visitNeighbors(g, tn, mode, Forward, func(nb egraph.TemporalNode) bool {
				if !onPath[nb] {
					dfs(nb)
				}
				return true
			})
		}
		onPath[tn] = false
		cur = cur[:len(cur)-1]
	}
	dfs(from)
	return out, nil
}

// CountWalks returns the number of temporal walks with exactly k hops
// from `from` to `to` — the quantity the algebraic iterate (A_nᵀ)^k b
// counts (Sec. III-C: (A3ᵀ)³e1 holds 2 in the (3,t3) slot). On acyclic
// snapshots walks and paths coincide.
func CountWalks(g *egraph.IntEvolvingGraph, from, to egraph.TemporalNode,
	mode egraph.CausalMode, k int) (int64, error) {
	if err := checkRoot(g, from); err != nil {
		return 0, err
	}
	if k < 0 {
		return 0, fmt.Errorf("core: negative walk length %d", k)
	}
	size := g.NumNodes() * g.NumStamps()
	cur := make([]int64, size)
	next := make([]int64, size)
	cur[g.TemporalNodeID(from)] = 1
	for step := 0; step < k; step++ {
		for i := range next {
			next[i] = 0
		}
		for id, c := range cur {
			if c == 0 {
				continue
			}
			tn := g.TemporalNodeFromID(id)
			visitNeighbors(g, tn, mode, Forward, func(nb egraph.TemporalNode) bool {
				next[g.TemporalNodeID(nb)] += c
				return true
			})
		}
		cur, next = next, cur
	}
	return cur[g.TemporalNodeID(to)], nil
}

// ShortestPath returns one shortest temporal path from `from` to `to`,
// or nil if `to` is unreachable.
func ShortestPath(g *egraph.IntEvolvingGraph, from, to egraph.TemporalNode,
	mode egraph.CausalMode) (TemporalPath, error) {
	res, err := BFS(g, from, Options{Mode: mode, TrackParents: true})
	if err != nil {
		return nil, err
	}
	return TemporalPath(res.PathTo(to)), nil
}
