package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/egraph"
)

func TestHybridBFSFigure1(t *testing.T) {
	g := egraph.Figure1Graph()
	res, err := HybridBFS(g, tn(0, 0), HybridOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumReached() != 6 || res.Dist(tn(2, 2)) != 3 {
		t.Fatalf("hybrid BFS wrong: reached=%d dist=%d", res.NumReached(), res.Dist(tn(2, 2)))
	}
}

func TestHybridBFSInactiveRoot(t *testing.T) {
	g := egraph.Figure1Graph()
	if _, err := HybridBFS(g, tn(2, 0), HybridOptions{}); err == nil {
		t.Fatal("inactive root should fail")
	}
}

// Force the bottom-up path with aggressive switching and verify the
// distance labelling still matches plain BFS, all modes and directions.
func TestHybridBFSMatchesSequential(t *testing.T) {
	f := func(seed int64, directed, consecutive, backward bool) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, directed)
		mode := egraph.CausalAllPairs
		if consecutive {
			mode = egraph.CausalConsecutive
		}
		opts := Options{Mode: mode}
		if backward {
			opts.Direction = Backward
		}
		u := g.Unfold(mode)
		for _, root := range u.Order {
			ref, err := BFS(g, root, opts)
			if err != nil {
				return false
			}
			// Alpha/Beta = 1 forces bottom-up almost immediately.
			hyb, err := HybridBFS(g, root, HybridOptions{Options: opts, Alpha: 1, Beta: 1})
			if err != nil {
				return false
			}
			if hyb.NumReached() != ref.NumReached() || hyb.MaxDist() != ref.MaxDist() {
				return false
			}
			ok := true
			ref.Visit(func(n egraph.TemporalNode, d int) bool {
				if hyb.Dist(n) != d {
					ok = false
					return false
				}
				return true
			})
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Default switching thresholds on a dense low-diameter graph: result must
// match, regardless of which steps ran bottom-up.
func TestHybridBFSDenseGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	b := egraph.NewBuilder(true)
	const n, stamps = 150, 4
	for e := 0; e < 6000; e++ {
		b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)), int64(1+rng.Intn(stamps)))
	}
	g := b.Build()
	root := tn(int32(g.ActiveNodes(0).NextSet(0)), 0)
	ref, err := BFS(g, root, Options{})
	if err != nil {
		t.Fatal(err)
	}
	hyb, err := HybridBFS(g, root, HybridOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if hyb.NumReached() != ref.NumReached() {
		t.Fatalf("hybrid reached %d, want %d", hyb.NumReached(), ref.NumReached())
	}
	ref.Visit(func(n egraph.TemporalNode, d int) bool {
		if hyb.Dist(n) != d {
			t.Fatalf("dist(%v) = %d, want %d", n, hyb.Dist(n), d)
		}
		return true
	})
}

// Parent tracking in bottom-up mode still yields valid shortest paths.
func TestHybridBFSParents(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := randomGraph(rng, true)
	u := g.Unfold(egraph.CausalAllPairs)
	root := u.Order[0]
	hyb, err := HybridBFS(g, root, HybridOptions{
		Options: Options{TrackParents: true}, Alpha: 1, Beta: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	hyb.Visit(func(n egraph.TemporalNode, d int) bool {
		p := TemporalPath(hyb.PathTo(n))
		if p.Hops() != d || !p.IsValid(g, egraph.CausalAllPairs) {
			t.Fatalf("hybrid parent path to %v invalid: %v (dist %d)", n, p, d)
		}
		return true
	})
}

func TestHybridBFSMaxDepth(t *testing.T) {
	g := egraph.Figure1Graph()
	res, err := HybridBFS(g, tn(0, 0), HybridOptions{Options: Options{MaxDepth: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumReached() != 3 {
		t.Fatalf("NumReached = %d, want 3", res.NumReached())
	}
}
