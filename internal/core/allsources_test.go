package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/egraph"
)

func TestAllSourcesBFSFigure1(t *testing.T) {
	g := egraph.Figure1Graph()
	stats := AllSourcesBFS(g, egraph.CausalAllPairs, 4)
	if len(stats) != 6 {
		t.Fatalf("stats for %d sources, want 6", len(stats))
	}
	// First source in unfolding order is (1,t1) with reach 6, ecc 3.
	if stats[0].Root != tn(0, 0) || stats[0].Reached != 6 || stats[0].Eccentricity != 3 {
		t.Fatalf("stats[0] = %+v", stats[0])
	}
	// (3,t3) is a sink: reach 1, ecc 0, closeness 0.
	last := stats[len(stats)-1]
	if last.Root != tn(2, 2) || last.Reached != 1 || last.Closeness != 0 {
		t.Fatalf("sink stats = %+v", last)
	}
}

// Property: the parallel all-sources sweep agrees with per-source BFS
// for any worker count.
func TestAllSourcesBFSMatchesSequential(t *testing.T) {
	f := func(seed int64, directed bool, workerSel uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, directed)
		workers := 1 + int(workerSel%6)
		stats := AllSourcesBFS(g, egraph.CausalAllPairs, workers)
		u := g.Unfold(egraph.CausalAllPairs)
		if len(stats) != len(u.Order) {
			return false
		}
		for i, root := range u.Order {
			res, err := BFS(g, root, Options{})
			if err != nil {
				return false
			}
			if stats[i].Root != root || stats[i].Reached != res.NumReached() ||
				stats[i].Eccentricity != res.MaxDist() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestParallelTemporalDiameterMatches(t *testing.T) {
	f := func(seed int64, directed bool) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, directed)
		return ParallelTemporalDiameter(g, egraph.CausalAllPairs, 3) ==
			TemporalDiameter(g, egraph.CausalAllPairs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestEarliestArrivalFigure1(t *testing.T) {
	g := egraph.Figure1Graph()
	arr, err := EarliestArrival(g, tn(0, 0), egraph.CausalAllPairs)
	if err != nil {
		t.Fatal(err)
	}
	// From (1,t1): node 1 at t1 (itself), node 2 at t1, node 3 at t2.
	want := []int32{0, 0, 1}
	for v, w := range want {
		if arr[v] != w {
			t.Fatalf("arrival = %v, want %v", arr, want)
		}
	}
	// From (1,t2): node 2 never reached.
	arr2, err := EarliestArrival(g, tn(0, 1), egraph.CausalAllPairs)
	if err != nil {
		t.Fatal(err)
	}
	if arr2[1] != -1 {
		t.Fatalf("node 2 arrival = %d, want -1", arr2[1])
	}
	if arr2[2] != 1 {
		t.Fatalf("node 3 arrival = %d, want 1", arr2[2])
	}
	if _, err := EarliestArrival(g, tn(2, 0), egraph.CausalAllPairs); err == nil {
		t.Fatal("inactive root should fail")
	}
}

// Property: earliest arrival is monotone under edge addition (adding
// edges can only make arrivals earlier or equal).
func TestEarliestArrivalMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b1 := egraph.NewBuilder(true)
		b2 := egraph.NewBuilder(true)
		n := 3 + rng.Intn(6)
		stamps := 2 + rng.Intn(3)
		b1.AddEdge(0, 1, 1)
		b2.AddEdge(0, 1, 1)
		for e := 0; e < 2*n; e++ {
			u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
			ts := int64(1 + rng.Intn(stamps))
			b1.AddEdge(u, v, ts)
			b2.AddEdge(u, v, ts)
		}
		// b2 gets extra edges.
		for e := 0; e < n; e++ {
			b2.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)), int64(1+rng.Intn(stamps)))
		}
		g1, g2 := b1.Build(), b2.Build()
		if g1.NumStamps() != g2.NumStamps() {
			return true // stamp sets differ; skip
		}
		a1, err := EarliestArrival(g1, tn(0, 0), egraph.CausalAllPairs)
		if err != nil {
			return true
		}
		a2, err := EarliestArrival(g2, tn(0, 0), egraph.CausalAllPairs)
		if err != nil {
			return true
		}
		for v := 0; v < g1.NumNodes(); v++ {
			if a1[v] >= 0 && (a2[v] < 0 || a2[v] > a1[v]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
