package algebra

import (
	"repro/internal/ds"
	"repro/internal/egraph"
	"repro/internal/matrix"
)

// SparseABFS is the "future work" formulation the paper's conclusion
// asks for: an algebraic BFS whose per-iteration cost is proportional to
// the *frontier*, not the whole matrix, restoring the O(|E| + |V|) bound
// of the adjacency-list Algorithm 1 at the computational level.
//
// Sec. III-E shows why the gaxpy-style Algorithm 2 cannot be linear: the
// CSC kernel touches every column of every diagonal block on every
// iteration, costing O(k(|Ẽ|+|V|)) overall. The fix is the standard
// SpMSpV (sparse-matrix × sparse-vector) trick from the
// graphs-as-linear-algebra literature the paper builds on [11]: keep the
// iterate b as a *sparse* vector (a list of nonzero temporal-node ids),
// and compute A_nᵀ ⊙ b by scattering each nonzero through one CSR row
// (static part) and one active-stamp list (causal part). Each edge of the
// unfolded graph G is then touched exactly once over the whole run.
//
// The result is bit-identical to ABFS and DenseABFS (Theorem 4 extends
// to it); BenchmarkAlg1VsAlg2Sparse shows it tracking Algorithm 1's
// linear scaling where the gaxpy formulation falls behind.
func SparseABFS(g *egraph.IntEvolvingGraph, root egraph.TemporalNode, mode egraph.CausalMode) (Reached, error) {
	if !validRoot(g, root) {
		return nil, ErrInactiveRoot
	}
	// Per-stamp CSR adjacency: row v of block t lists the static
	// out-neighbours of (v, t); A_nᵀ-scatter walks rows of A_n.
	rows := snapshotsCSR(g)

	n := g.NumNodes()
	size := n * g.NumStamps()
	visited := ds.NewBitSet(size)
	rootID := g.TemporalNodeID(root)
	visited.Set(rootID)

	reached := Reached{root: 0}
	frontier := []int32{int32(rootID)}
	var next []int32
	for k := 1; len(frontier) > 0; k++ {
		next = next[:0]
		for _, id := range frontier {
			v := int(id) % n
			t := int(id) / n
			// Static scatter: one CSR row, touched once per run.
			cols, _ := rows[t].Row(v)
			for _, w := range cols {
				nbID := t*n + int(w)
				if !visited.TestAndSet(nbID) {
					next = append(next, int32(nbID))
				}
			}
			// Causal scatter: the ⊙ action restricted to this nonzero.
			stamps := g.ActiveStamps(int32(v))
			switch mode {
			case egraph.CausalAllPairs:
				for i := len(stamps) - 1; i >= 0; i-- {
					s := stamps[i]
					if int(s) <= t {
						break
					}
					nbID := int(s)*n + v
					if !visited.TestAndSet(nbID) {
						next = append(next, int32(nbID))
					}
				}
			case egraph.CausalConsecutive:
				if s := g.NextActiveStamp(int32(v), int32(t)); s >= 0 {
					nbID := int(s)*n + v
					if !visited.TestAndSet(nbID) {
						next = append(next, int32(nbID))
					}
				}
			}
		}
		for _, id := range next {
			reached[g.TemporalNodeFromID(int(id))] = k
		}
		frontier, next = next, frontier
	}
	return reached, nil
}

// snapshotsCSR materialises the per-stamp adjacency matrices in CSR form
// (row = static out-neighbours), the transpose-friendly layout SpMSpV
// scatters through.
func snapshotsCSR(g *egraph.IntEvolvingGraph) []*matrix.CSR {
	n := g.NumNodes()
	out := make([]*matrix.CSR, g.NumStamps())
	for t := 0; t < g.NumStamps(); t++ {
		coo := matrix.NewCOO(n, n)
		act := g.ActiveNodes(t)
		for vi := act.NextSet(0); vi >= 0; vi = act.NextSet(vi + 1) {
			for _, w := range g.OutNeighbors(int32(vi), int32(t)) {
				coo.Add(vi, int(w), 1)
			}
		}
		out[t] = coo.ToCSR()
	}
	return out
}
