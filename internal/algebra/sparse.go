package algebra

import (
	"repro/internal/ds"
	"repro/internal/egraph"
)

// SparseABFS is the "future work" formulation the paper's conclusion
// asks for: an algebraic BFS whose per-iteration cost is proportional to
// the *frontier*, not the whole matrix, restoring the O(|E| + |V|) bound
// of the adjacency-list Algorithm 1 at the computational level.
//
// Sec. III-E shows why the gaxpy-style Algorithm 2 cannot be linear: the
// CSC kernel touches every column of every diagonal block on every
// iteration, costing O(k(|Ẽ|+|V|)) overall. The fix is the standard
// SpMSpV (sparse-matrix × sparse-vector) trick from the
// graphs-as-linear-algebra literature the paper builds on [11]: keep the
// iterate b as a *sparse* vector (a list of nonzero temporal-node ids),
// and compute A_nᵀ ⊙ b by scattering each nonzero through one CSR row
// (static part) and one active-stamp list (causal part). Each edge of the
// unfolded graph G is then touched exactly once over the whole run.
//
// The result is bit-identical to ABFS and DenseABFS (Theorem 4 extends
// to it); BenchmarkAlg1VsAlg2Sparse shows it tracking Algorithm 1's
// linear scaling where the gaxpy formulation falls behind.
//
// The diagonal (static) blocks of A_n are exactly the flat CSR view the
// graph already carries for the BFS engine (DESIGN.md §8), so the
// scatter shares g.CSR() instead of materialising its own per-stamp
// matrices: row id of the view lists the static nonzeros of column id
// of A_nᵀ, and the causal ⊙ action is the active-stamp row suffix.
func SparseABFS(g *egraph.IntEvolvingGraph, root egraph.TemporalNode, mode egraph.CausalMode) (Reached, error) {
	if !validRoot(g, root) {
		return nil, ErrInactiveRoot
	}
	csr := g.CSR()
	n := int32(csr.N)
	visited := ds.NewBitSet(csr.Size())
	rootID := g.TemporalNodeID(root)
	visited.Set(rootID)

	reached := Reached{root: 0}
	frontier := []int32{int32(rootID)}
	var next []int32
	for k := 1; len(frontier) > 0; k++ {
		next = next[:0]
		for _, id := range frontier {
			// Static scatter: one CSR row, touched once per run.
			for _, nbID := range csr.OutAdj[csr.OutPtr[id]:csr.OutPtr[id+1]] {
				if !visited.TestAndSet(int(nbID)) {
					next = append(next, nbID)
				}
			}
			// Causal scatter: the ⊙ action restricted to this nonzero —
			// the suffix of the node's active-stamp row after this stamp.
			stamps, v := csr.CausalArcs(id, true, mode == egraph.CausalConsecutive)
			for _, s := range stamps {
				nbID := s*n + v
				if !visited.TestAndSet(int(nbID)) {
					next = append(next, nbID)
				}
			}
		}
		for _, id := range next {
			reached[g.TemporalNodeFromID(int(id))] = k
		}
		frontier, next = next, frontier
	}
	return reached, nil
}
