package algebra

import (
	"testing"

	"repro/internal/core"
	"repro/internal/egraph"
)

// The paper's central counterexample (Sec. III-A): on the Fig. 1 graph,
// (S[t3])₁₃ = (A[t1]A[t2]A[t3] + A[t1]A[t3])₁₃ = 1, yet there are two
// temporal paths from (1,t1) to (3,t3).
func TestNaivePathSumMiscount(t *testing.T) {
	g := egraph.Figure1Graph()
	s3 := NaivePathSum(g, 2)
	if got := s3.At(0, 2); got != 1 {
		t.Fatalf("(S[t3])₁₃ = %g, want the paper's miscounted 1", got)
	}
	truth, err := core.CountWalks(g, tn(0, 0), tn(2, 2), egraph.CausalAllPairs, 3)
	if err != nil {
		t.Fatal(err)
	}
	if truth != 2 {
		t.Fatalf("true count = %d, want 2", truth)
	}
	if int64(s3.At(0, 2)) == truth {
		t.Fatal("naive sum should disagree with the true count")
	}
}

// Sec. III-A: S[t2] = A[t1]A[t2] vanishes entirely, yet the temporal
// path ⟨(1,t1),(1,t2),(3,t2)⟩ exists.
func TestNaivePathSumMissesCausalPath(t *testing.T) {
	g := egraph.Figure1Graph()
	s2 := NaivePathSum(g, 1)
	// S[t2] restricted to chains through ≥1 edge at t1 then t2 = A1·A2;
	// plus the bare... Eq. 2's S[t2] has the single term A[t1]A[t2].
	if got := s2.At(0, 2); got != 0 {
		t.Fatalf("(S[t2])₁₃ = %g, want 0 (the naive sum misses the causal path)", got)
	}
	truth, err := core.CountWalks(g, tn(0, 0), tn(2, 1), egraph.CausalAllPairs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if truth != 1 {
		t.Fatalf("true 2-hop count = %d, want 1 (path ⟨(1,t1),(1,t2),(3,t2)⟩)", truth)
	}
}

func TestNaivePathSumSingleStamp(t *testing.T) {
	g := egraph.Figure1Graph()
	s1 := NaivePathSum(g, 0)
	if s1.At(0, 1) != 1 || s1.NNZ() != 1 {
		t.Fatalf("S[t1] should equal A[t1]:\n%v", s1)
	}
}

// The attempted amendment — ones on the diagonal — is still wrong: it
// "counts paths with subsequences ⟨(3,t1),(3,t2)⟩". Node 3 is inactive
// at t1, so no temporal path starts at (3,t1); yet the self-loop product
// reports a walk from 3 to 3.
func TestSelfLoopPathSumStillWrong(t *testing.T) {
	g := egraph.Figure1Graph()
	p := SelfLoopPathSum(g, 2)
	if got := p.At(2, 2); got < 1 {
		t.Fatalf("self-loop product (3,3) entry = %g, want ≥ 1 (the spurious walk)", got)
	}
	// Ground truth: (3,t1) is inactive, so the BFS refuses it as a root
	// and the set of temporal paths from it is empty.
	if _, err := core.BFS(g, tn(2, 0), core.Options{}); err == nil {
		t.Fatal("(3,t1) must be an invalid root")
	}
}

// The self-loop product also conflates distinct causal structures: it
// counts a walk through the *inactive* (2,t2) as if it were the skip
// causal edge (2,t1)→(2,t3). The aggregate (1,3) count accidentally
// matches on Fig. 1; this test documents the coincidence so nobody
// mistakes it for correctness.
func TestSelfLoopPathSumAccidentalAgreement(t *testing.T) {
	g := egraph.Figure1Graph()
	p := SelfLoopPathSum(g, 2)
	if got := p.At(0, 2); got != 2 {
		t.Fatalf("self-loop product (1,3) = %g; the documented coincidence is 2", got)
	}
}

func TestSnapshotsDenseUndirected(t *testing.T) {
	b := egraph.NewBuilder(false)
	b.AddEdge(0, 1, 1)
	g := b.Build()
	s := NaivePathSum(g, 0)
	if s.At(0, 1) != 1 || s.At(1, 0) != 1 {
		t.Fatalf("undirected adjacency not symmetric:\n%v", s)
	}
}

func TestNaivePathSumOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NaivePathSum(egraph.Figure1Graph(), 5)
}
