package algebra

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/egraph"
)

func tn(v, s int32) egraph.TemporalNode { return egraph.TemporalNode{Node: v, Stamp: s} }

func randomGraph(rng *rand.Rand, directed bool) *egraph.IntEvolvingGraph {
	b := egraph.NewBuilder(directed)
	n := 2 + rng.Intn(8)
	stamps := 1 + rng.Intn(5)
	for e := 0; e < rng.Intn(3*n); e++ {
		b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)), int64(1+rng.Intn(stamps)))
	}
	b.AddEdge(0, 1, 1)
	return b.Build()
}

func TestABFSFigure1(t *testing.T) {
	g := egraph.Figure1Graph()
	reached, err := ABFS(g, tn(0, 0), egraph.CausalAllPairs)
	if err != nil {
		t.Fatal(err)
	}
	want := Reached{
		tn(0, 0): 0,
		tn(1, 0): 1, tn(0, 1): 1,
		tn(2, 1): 2, tn(1, 2): 2,
		tn(2, 2): 3,
	}
	if len(reached) != len(want) {
		t.Fatalf("reached = %v, want %v", reached, want)
	}
	for node, d := range want {
		if reached[node] != d {
			t.Fatalf("reached[%v] = %d, want %d", node, reached[node], d)
		}
	}
}

func TestABFSInactiveRoot(t *testing.T) {
	g := egraph.Figure1Graph()
	if _, err := ABFS(g, tn(2, 0), egraph.CausalAllPairs); err != ErrInactiveRoot {
		t.Fatalf("err = %v, want ErrInactiveRoot", err)
	}
	if _, err := DenseABFS(g, tn(2, 0), egraph.CausalAllPairs); err != ErrInactiveRoot {
		t.Fatalf("dense err = %v, want ErrInactiveRoot", err)
	}
}

// Theorem 4: Algorithm 1 and Algorithm 2 are equivalent — the blocked and
// dense algebraic BFS agree with the adjacency-list BFS for every active
// root of random graphs, in both causal modes and both directions of
// edge type.
func TestAlgebraicBFSEquivalence(t *testing.T) {
	f := func(seed int64, directed, consecutive bool) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, directed)
		mode := egraph.CausalAllPairs
		if consecutive {
			mode = egraph.CausalConsecutive
		}
		u := g.Unfold(mode)
		for _, root := range u.Order {
			ref, err := core.BFS(g, root, core.Options{Mode: mode})
			if err != nil {
				return false
			}
			for _, impl := range []func(*egraph.IntEvolvingGraph, egraph.TemporalNode, egraph.CausalMode) (Reached, error){ABFS, DenseABFS} {
				got, err := impl(g, root, mode)
				if err != nil {
					return false
				}
				if len(got) != ref.NumReached() {
					return false
				}
				for node, d := range got {
					if ref.Dist(node) != d {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Theorem 3: Algorithm 2 terminates even on cyclic evolving graphs
// (A_n not nilpotent), thanks to the visited zeroing.
func TestABFSTerminatesOnCycles(t *testing.T) {
	b := egraph.NewBuilder(true)
	// 2-cycle at every stamp.
	for ts := int64(1); ts <= 3; ts++ {
		b.AddEdge(0, 1, ts)
		b.AddEdge(1, 0, ts)
	}
	g := b.Build()
	if g.BlockMatrix(egraph.CausalAllPairs).IsNilpotent() {
		t.Fatal("test graph should not be nilpotent")
	}
	reached, err := ABFS(g, tn(0, 0), egraph.CausalAllPairs)
	if err != nil {
		t.Fatal(err)
	}
	// All 6 temporal nodes are active and reachable from (0,t1).
	if len(reached) != 6 {
		t.Fatalf("reached %d nodes, want 6", len(reached))
	}
	ref, err := core.BFS(g, tn(0, 0), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for node, d := range reached {
		if ref.Dist(node) != d {
			t.Fatalf("cyclic graph: reached[%v] = %d, want %d", node, d, ref.Dist(node))
		}
	}
}

// WalkCounts reproduces the paper's power-iteration sequence on Fig. 1.
func TestWalkCountsFigure1(t *testing.T) {
	g := egraph.Figure1Graph()
	steps := []map[egraph.TemporalNode]int64{
		{tn(0, 0): 1},
		{tn(1, 0): 1, tn(0, 1): 1},
		{tn(2, 1): 1, tn(1, 2): 1},
		{tn(2, 2): 2},
		{},
	}
	for k, want := range steps {
		got, err := WalkCounts(g, tn(0, 0), egraph.CausalAllPairs, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("k=%d: got %v, want %v", k, got, want)
		}
		for node, c := range want {
			if got[node] != c {
				t.Fatalf("k=%d: got %v, want %v", k, got, want)
			}
		}
	}
}

func TestWalkCountsErrors(t *testing.T) {
	g := egraph.Figure1Graph()
	if _, err := WalkCounts(g, tn(2, 0), egraph.CausalAllPairs, 1); err == nil {
		t.Fatal("inactive root should fail")
	}
	if _, err := WalkCounts(g, tn(0, 0), egraph.CausalAllPairs, -1); err == nil {
		t.Fatal("negative k should fail")
	}
}

// Property: WalkCounts agrees with core.CountWalks for every pair and
// length on random acyclic-snapshot graphs.
func TestWalkCountsMatchCore(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, true)
		u := g.Unfold(egraph.CausalAllPairs)
		root := u.Order[0]
		for k := 0; k <= 4; k++ {
			walks, err := WalkCounts(g, root, egraph.CausalAllPairs, k)
			if err != nil {
				return false
			}
			for _, to := range u.Order {
				want, err := core.CountWalks(g, root, to, egraph.CausalAllPairs, k)
				if err != nil {
					return false
				}
				if walks[to] != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestBlockAdjacencyExposed(t *testing.T) {
	g := egraph.Figure1Graph()
	blk := BlockAdjacency(g, egraph.CausalConsecutive)
	if !blk.Consecutive {
		t.Fatal("causal mode not propagated")
	}
}
