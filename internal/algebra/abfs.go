// Package algebra implements the linear-algebra formulation of the
// evolving-graph BFS (Sec. III of Chen & Zhang 2016): Algorithm 2 as
// power iteration of the transposed block adjacency matrix A_nᵀ over
// CSC-blocked and dense representations, and the *incorrect* naïve
// adjacency-product path sums of Eq. 2, kept as executable baselines for
// the paper's central counterexample.
package algebra

import (
	"errors"

	"repro/internal/egraph"
	"repro/internal/matrix"
)

// ErrInactiveRoot mirrors core.ErrInactiveRoot for the algebraic entry
// points.
var ErrInactiveRoot = errors.New("algebra: ABFS root is not an active temporal node")

// Reached is the paper's `reached` dictionary: distances from the root
// keyed by temporal node.
type Reached map[egraph.TemporalNode]int

// ABFS is Algorithm 2 over the CSC-blocked representation (Theorem 6):
// iterate b ← A_nᵀ ⊙ b, zeroing components of already-visited temporal
// nodes (lines 8–12, which also guarantee termination on cyclic graphs,
// Theorem 3), and record each new nonzero at distance k. The off-diagonal
// causal blocks act through activity masks — A_n is never materialised.
func ABFS(g *egraph.IntEvolvingGraph, root egraph.TemporalNode, mode egraph.CausalMode) (Reached, error) {
	if !validRoot(g, root) {
		return nil, ErrInactiveRoot
	}
	blk := g.BlockMatrix(mode)
	dim := blk.Dim()
	b := make([]float64, dim)
	next := make([]float64, dim)
	b[g.TemporalNodeID(root)] = 1

	reached := Reached{root: 0}
	for k := 1; ; k++ {
		blk.TMatVec(next, b)
		// Zero out already-visited active nodes (Algorithm 2 lines 8-12).
		nonzero := false
		for id := range next {
			if next[id] == 0 {
				continue
			}
			tn := g.TemporalNodeFromID(id)
			if _, ok := reached[tn]; ok {
				next[id] = 0
				continue
			}
			nonzero = true
		}
		if !nonzero {
			break
		}
		for id := range next {
			if next[id] != 0 {
				reached[g.TemporalNodeFromID(id)] = k
			}
		}
		b, next = next, b
	}
	return reached, nil
}

// DenseABFS is Algorithm 2 over the dense compacted adjacency matrix A_n
// of the unfolded graph (Theorem 5's representation). Cost per iteration
// is O(|V|²); it exists to make the Theorem 5 vs Theorem 6 comparison
// measurable and to double-check the blocked implementation.
func DenseABFS(g *egraph.IntEvolvingGraph, root egraph.TemporalNode, mode egraph.CausalMode) (Reached, error) {
	if !validRoot(g, root) {
		return nil, ErrInactiveRoot
	}
	blk := g.BlockMatrix(mode)
	an, order := blk.CompactActive()
	at := an.Transpose()

	index := make(map[egraph.TemporalNode]int, len(order))
	for i, p := range order {
		index[egraph.TemporalNode{Node: int32(p[1]), Stamp: int32(p[0])}] = i
	}
	rootIdx, ok := index[root]
	if !ok {
		return nil, ErrInactiveRoot
	}
	dim := len(order)
	b := make([]float64, dim)
	next := make([]float64, dim)
	b[rootIdx] = 1
	visited := make([]bool, dim)
	visited[rootIdx] = true

	reached := Reached{root: 0}
	for k := 1; ; k++ {
		at.MatVec(next, b)
		nonzero := false
		for i := range next {
			if next[i] == 0 {
				continue
			}
			if visited[i] {
				next[i] = 0
				continue
			}
			nonzero = true
		}
		if !nonzero {
			break
		}
		for i := range next {
			if next[i] != 0 {
				visited[i] = true
				tn := egraph.TemporalNode{Node: int32(order[i][1]), Stamp: int32(order[i][0])}
				reached[tn] = k
			}
		}
		b, next = next, b
	}
	return reached, nil
}

// WalkCounts returns the iterate (A_nᵀ)^k b for a unit starting vector at
// root, as walk counts keyed by temporal node — the quantity the paper
// reads off its explicit power-iteration example ((A3ᵀ)³e1 has a 2 in the
// (3,t3) slot). Unlike ABFS it does not zero visited nodes.
func WalkCounts(g *egraph.IntEvolvingGraph, root egraph.TemporalNode, mode egraph.CausalMode, k int) (map[egraph.TemporalNode]int64, error) {
	if !validRoot(g, root) {
		return nil, ErrInactiveRoot
	}
	if k < 0 {
		return nil, errors.New("algebra: negative walk length")
	}
	blk := g.BlockMatrix(mode)
	dim := blk.Dim()
	b := make([]float64, dim)
	next := make([]float64, dim)
	b[g.TemporalNodeID(root)] = 1
	for step := 0; step < k; step++ {
		blk.TMatVec(next, b)
		b, next = next, b
	}
	out := make(map[egraph.TemporalNode]int64)
	for id, v := range b {
		if v != 0 {
			out[g.TemporalNodeFromID(id)] = int64(v)
		}
	}
	return out, nil
}

func validRoot(g *egraph.IntEvolvingGraph, root egraph.TemporalNode) bool {
	return root.Node >= 0 && int(root.Node) < g.NumNodes() &&
		root.Stamp >= 0 && int(root.Stamp) < g.NumStamps() &&
		g.IsActive(root.Node, root.Stamp)
}

// BlockAdjacency exposes the assembled A_n for benchmarks and tests.
func BlockAdjacency(g *egraph.IntEvolvingGraph, mode egraph.CausalMode) *matrix.Block {
	return g.BlockMatrix(mode)
}
