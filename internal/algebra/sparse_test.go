package algebra

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/egraph"
)

func TestSparseABFSFigure1(t *testing.T) {
	g := egraph.Figure1Graph()
	reached, err := SparseABFS(g, tn(0, 0), egraph.CausalAllPairs)
	if err != nil {
		t.Fatal(err)
	}
	want := Reached{
		tn(0, 0): 0,
		tn(1, 0): 1, tn(0, 1): 1,
		tn(2, 1): 2, tn(1, 2): 2,
		tn(2, 2): 3,
	}
	if len(reached) != len(want) {
		t.Fatalf("reached = %v, want %v", reached, want)
	}
	for node, d := range want {
		if reached[node] != d {
			t.Fatalf("reached[%v] = %d, want %d", node, reached[node], d)
		}
	}
}

func TestSparseABFSInactiveRoot(t *testing.T) {
	g := egraph.Figure1Graph()
	if _, err := SparseABFS(g, tn(2, 0), egraph.CausalAllPairs); err != ErrInactiveRoot {
		t.Fatalf("err = %v, want ErrInactiveRoot", err)
	}
}

// The Theorem 4 equivalence extends to the sparse formulation: SparseABFS
// agrees with Algorithm 1 and with the gaxpy ABFS on random graphs, both
// modes, every active root.
func TestSparseABFSEquivalence(t *testing.T) {
	f := func(seed int64, directed, consecutive bool) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, directed)
		mode := egraph.CausalAllPairs
		if consecutive {
			mode = egraph.CausalConsecutive
		}
		u := g.Unfold(mode)
		for _, root := range u.Order {
			ref, err := core.BFS(g, root, core.Options{Mode: mode})
			if err != nil {
				return false
			}
			got, err := SparseABFS(g, root, mode)
			if err != nil {
				return false
			}
			if len(got) != ref.NumReached() {
				return false
			}
			for node, d := range got {
				if ref.Dist(node) != d {
					return false
				}
			}
			dense, err := ABFS(g, root, mode)
			if err != nil {
				return false
			}
			if len(dense) != len(got) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Termination on cyclic graphs carries over (the visited bitset plays
// the role of Algorithm 2's zeroing lines).
func TestSparseABFSTerminatesOnCycles(t *testing.T) {
	b := egraph.NewBuilder(true)
	for ts := int64(1); ts <= 3; ts++ {
		b.AddEdge(0, 1, ts)
		b.AddEdge(1, 0, ts)
	}
	g := b.Build()
	reached, err := SparseABFS(g, tn(0, 0), egraph.CausalAllPairs)
	if err != nil {
		t.Fatal(err)
	}
	if len(reached) != 6 {
		t.Fatalf("reached %d nodes, want 6", len(reached))
	}
}
