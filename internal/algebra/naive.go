package algebra

import (
	"repro/internal/egraph"
	"repro/internal/matrix"
)

// NaivePathSum evaluates the discrete path sum S[t_upto] of Eq. 2: the
// sum over all strictly increasing stamp chains t1 < s1 < … < sk < t_upto
// (k ≥ 0) of the adjacency products A[t1]·A[s1]···A[sk]·A[t_upto]. Its
// (i,j) entry *purports* to count temporal paths from (i, t1) to
// (j, t_upto) — the paper's counterexample shows it undercounts because
// products of adjacency matrices cannot express causal edges. upto is a
// stamp index; upto = NumStamps()-1 gives the paper's S[tn].
//
// For a single stamp (upto == 0) the sum degenerates to A[t1] itself.
func NaivePathSum(g *egraph.IntEvolvingGraph, upto int) *matrix.Dense {
	n := g.NumNodes()
	adj := snapshotsDense(g, upto)
	if upto == 0 {
		return adj[0].Clone()
	}
	// Dynamic programming over chains: P[s] = sum over chains starting
	// with A[0] and ending with A[s] of the product. Answer is P[upto].
	p := make([]*matrix.Dense, upto+1)
	p[0] = adj[0]
	for s := 1; s <= upto; s++ {
		acc := matrix.NewDense(n, n)
		for r := 0; r < s; r++ {
			acc = acc.Add(p[r].Mul(adj[s]))
		}
		p[s] = acc
	}
	return p[upto]
}

// SelfLoopPathSum is the paper's attempted amendment of Eq. 2: replace
// each A[t] with A[t] + I so products can "wait" on a node, and take the
// full product over stamps 0..upto. The paper notes this is *still*
// incorrect: the identity diagonal lets walks sit on inactive temporal
// nodes (e.g. subsequences ⟨(3,t1),(3,t2)⟩ in the running example),
// which are not temporal paths.
func SelfLoopPathSum(g *egraph.IntEvolvingGraph, upto int) *matrix.Dense {
	n := g.NumNodes()
	adj := snapshotsDense(g, upto)
	prod := matrix.Identity(n)
	for s := 0; s <= upto; s++ {
		prod = prod.Mul(adj[s].Add(matrix.Identity(n)))
	}
	return prod
}

// snapshotsDense materialises the per-stamp one-sided adjacency matrices
// A[t] (Eq. 1) for stamps 0..upto.
func snapshotsDense(g *egraph.IntEvolvingGraph, upto int) []*matrix.Dense {
	if upto < 0 || upto >= g.NumStamps() {
		panic("algebra: stamp index out of range")
	}
	n := g.NumNodes()
	out := make([]*matrix.Dense, upto+1)
	for t := 0; t <= upto; t++ {
		d := matrix.NewDense(n, n)
		g.VisitEdges(int32(t), func(u, v int32, _ float64) bool {
			d.Set(int(u), int(v), 1)
			if !g.Directed() {
				d.Set(int(v), int(u), 1)
			}
			return true
		})
		out[t] = d
	}
	return out
}
