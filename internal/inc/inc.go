// Package inc incrementally maintains whole-graph analytics across
// ingest epochs, so the read side of the live service pays
// delta-proportional cost instead of recomputing from zero on every
// published revision (DESIGN.md §13).
//
// The epoch compactor hands a Maintainer the same resolved ArcDelta it
// hands egraph.Patch, and the Maintainer rolls its state forward:
//
//   - Weak components live in a persistent union-find. Arc insertions
//     absorb in near-O(α) — a union per new arc plus chain links for
//     newly activated temporal nodes. Deletions re-derive connectivity
//     only for the components the delta touched (their members' CSR
//     rows are rescanned; everything else is seeded from the old
//     partition), falling back to a full rebuild when the touched
//     region exceeds Config.ChurnThreshold of the active set.
//   - Temporal Katz is maintained as a sparse correction series:
//     x_new = x_old + Σ_k (αA_newᵀ)^k r, where the residual r is
//     non-zero only on rows whose in-arcs or activity the delta
//     changed. The correction propagates outward from the changed rows
//     until its term mass attenuates — the same truncation discipline
//     as the full power series, with a tighter tolerance so carried
//     state cannot drift across epochs.
//
// The existing full recomputations (components.WeakOpts,
// rank.TemporalKatz) are kept verbatim as differential oracles: the
// package tests, the fuzz harness and egbench's inc suite assert the
// maintained results equivalent to a from-scratch recompute after
// every epoch.
//
// Every Apply also classifies the revision for the serving layer's
// cache carry-over: a Results proves when the weak partition is
// unchanged, and when a specific temporal node's component provably
// saw no change at all, so qcache entries survive revisions whose
// delta cannot have altered their answers.
package inc

import (
	"sync"
	"sync/atomic"

	"repro/internal/components"
	"repro/internal/ds"
	"repro/internal/egraph"
)

// Config tunes a Maintainer. The zero value maintains Katz at the
// serving layer's default alpha with default thresholds.
type Config struct {
	// KatzAlpha is the attenuation of the maintained Katz vectors
	// (default 0.1 — the /katz endpoint's default). Queries at any
	// other alpha fall through to on-demand computation.
	KatzAlpha float64
	// ChurnThreshold is the fraction of active temporal nodes past
	// which the weak-component recheck abandons the per-component
	// rescan and rebuilds from scratch (default 0.25). A delta that
	// touches most of the graph gains nothing from incrementality.
	ChurnThreshold float64
	// KatzDirtyThreshold is the fraction of the temporal-node id space
	// past which the Katz correction series starts from a full
	// recompute instead (default 0.25).
	KatzDirtyThreshold float64
}

func (c *Config) defaults() {
	if c.KatzAlpha == 0 {
		c.KatzAlpha = 0.1
	}
	if c.ChurnThreshold == 0 {
		c.ChurnThreshold = 0.25
	}
	if c.KatzDirtyThreshold == 0 {
		c.KatzDirtyThreshold = 0.25
	}
}

// Stats is a point-in-time snapshot of the maintenance counters: how
// many epochs each analytic absorbed incrementally vs recomputed.
type Stats struct {
	Epochs          int64 `json:"epochs"`
	WeakIncremental int64 `json:"weakIncremental"`
	WeakFull        int64 `json:"weakFull"`
	KatzIncremental int64 `json:"katzIncremental"`
	KatzFull        int64 `json:"katzFull"`
}

// Maintainer rolls analytics state forward across ingest epochs.
// Construct with New; Apply is safe for concurrent use (epochs are
// serialised internally), and the Results it returns are immutable.
type Maintainer struct {
	cfg Config

	mu  sync.Mutex
	g   *egraph.IntEvolvingGraph // graph the state below describes
	uf  *ds.UnionFind            // weak connectivity of g, persistent across add-only epochs
	res *Results                 // last published results

	// Scratch reused across epochs (guarded by mu): root→label/size
	// arrays for the canonical relabel pass and the sparse-term
	// accumulators of the Katz correction series.
	rootLabel []int32
	rootSize  []int32
	katzVal   []float64
	katzVal2  []float64
	katzMark  []int32
	markEpoch int32

	// katzDrift accumulates, per causal mode, the certified bound on
	// how far the maintained vector has drifted from the SeriesTol
	// fixpoint through correction-series truncation. Past
	// KatzDriftBudget the next epoch recomputes that mode and resets
	// the ledger (katz.go).
	katzDrift [2]float64

	epochs   atomic.Int64
	weakInc  atomic.Int64
	weakFull atomic.Int64
	katzInc  atomic.Int64
	katzFull atomic.Int64
}

// New returns an unprimed Maintainer; Prime it (or let the first Apply
// prime it) before serving its Results.
func New(cfg Config) *Maintainer {
	cfg.defaults()
	return &Maintainer{cfg: cfg}
}

// Stats snapshots the maintenance counters.
func (m *Maintainer) Stats() Stats {
	return Stats{
		Epochs:          m.epochs.Load(),
		WeakIncremental: m.weakInc.Load(),
		WeakFull:        m.weakFull.Load(),
		KatzIncremental: m.katzInc.Load(),
		KatzFull:        m.katzFull.Load(),
	}
}

// Alpha returns the maintained Katz attenuation.
func (m *Maintainer) Alpha() float64 { return m.cfg.KatzAlpha }

// Results is one epoch's immutable maintained-analytics snapshot,
// published alongside the graph it was computed for. The serving layer
// reads the weak partition and Katz vectors directly and uses the
// classification methods to decide which cached answers survive the
// revision swap.
type Results struct {
	// WeakCount and WeakSizes describe the weak partition: component
	// count and sizes sorted descending — exactly the payload of
	// /components/weak (identical in both causal modes; causal chains
	// connect a node's active stamps either way).
	WeakCount int
	WeakSizes []int
	// KatzAlpha is the attenuation the katz vectors were maintained at.
	KatzAlpha float64

	katz [2][]float64 // by causal mode; nil when the series diverged
	comp []int32      // canonical component label per temporal id; -1 inactive
	n, t int

	noOp             bool
	axisChanged      bool
	partitionChanged bool
	touched          map[int32]struct{} // labels of components holding a delta endpoint
}

// KatzScores returns the maintained Katz vector for a causal mode
// (indexed by temporal-node id t·N+v), or nil when it is unavailable
// (divergent alpha). The slice is shared and must not be mutated.
func (r *Results) KatzScores(mode egraph.CausalMode) []float64 {
	return r.katz[katzModeIndex(mode)]
}

// ComponentOf returns the canonical weak-component label of an active
// temporal node (the minimum temporal-node id of its component), or -1
// if (node, stamp) is inactive.
func (r *Results) ComponentOf(node, stamp int32) int32 {
	id := int(stamp)*r.n + int(node)
	if stamp < 0 || node < 0 || int(stamp) >= r.t || int(node) >= r.n {
		return -1
	}
	return r.comp[id]
}

// Nodes returns the node-universe size the results were maintained
// over (the N of the t·N+v temporal-id layout KatzScores uses).
func (r *Results) Nodes() int { return r.n }

// Stamps returns the stamp-axis length the results were maintained
// over.
func (r *Results) Stamps() int { return r.t }

// NoOp reports whether the epoch's delta was structurally a no-op:
// the published graph is arc-for-arc identical to its base, so every
// cached answer of the previous revision is still correct.
func (r *Results) NoOp() bool { return r.noOp }

// AxisUnchanged reports whether the node universe and stamp axis are
// identical to the base revision's — the precondition for any
// per-temporal-node carry-over, since cached keys cite stamp indices.
func (r *Results) AxisUnchanged() bool { return !r.axisChanged }

// PartitionUnchanged reports whether the weak partition is provably
// identical to the base revision's (axis unchanged and every temporal
// node under the same canonical label), in which case cached
// /components/weak answers remain correct.
func (r *Results) PartitionUnchanged() bool { return !r.axisChanged && !r.partitionChanged }

// QueryUnaffected reports whether the delta provably cannot have
// changed any distance-based answer rooted at (node, stamp): the axis
// is unchanged and the temporal node's weak component contains no
// endpoint of a surviving delta op. An untouched component kept its
// exact membership and arc set (splits and merges always leave a
// delta endpoint inside every resulting component), so every temporal
// path from its members is intact.
func (r *Results) QueryUnaffected(node, stamp int32) bool {
	if r.axisChanged {
		return false
	}
	if r.noOp {
		return true
	}
	label := r.ComponentOf(node, stamp)
	if label < 0 {
		return false // inactive or out of range: nothing provable
	}
	_, hit := r.touched[label]
	return !hit
}

// resolvedOp is one surviving (post last-wins) structural change:
// canonicalised like egraph.Patch, filtered down to ops that actually
// alter the base graph (removals of absent arcs and re-adds of present
// arcs are no-ops there too).
type resolvedOp struct {
	u, v  int32
	label int64
	del   bool
}

// resolveDelta collapses delta last-wins per canonical arc against
// base — the same rules as egraph.Patch — and keeps only ops that
// structurally change the graph.
func resolveDelta(base *egraph.IntEvolvingGraph, delta []egraph.ArcDelta) []resolvedOp {
	type key struct {
		u, v int32
		t    int64
	}
	final := make(map[key]bool, len(delta))
	order := make([]key, 0, len(delta))
	for _, d := range delta {
		if d.U == d.V || d.U < 0 || d.V < 0 {
			continue // self-loops never activate (Def. 3); Patch skips them too
		}
		k := key{u: d.U, v: d.V, t: d.T}
		if !base.Directed() && k.u > k.v {
			k.u, k.v = k.v, k.u
		}
		if _, seen := final[k]; !seen {
			order = append(order, k)
		}
		final[k] = d.Del
	}
	ops := make([]resolvedOp, 0, len(order))
	for _, k := range order {
		del := final[k]
		ts := base.StampOf(k.t)
		present := ts >= 0 && base.HasEdge(k.u, k.v, int32(ts))
		if del == present { // real removal or real insertion only
			ops = append(ops, resolvedOp{u: k.u, v: k.v, label: k.t, del: del})
		}
	}
	return ops
}

// Prime (re)computes the full state for g from scratch — the state
// every incremental epoch rolls forward from.
func (m *Maintainer) Prime(g *egraph.IntEvolvingGraph) *Results {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.primeLocked(g)
}

func (m *Maintainer) primeLocked(g *egraph.IntEvolvingGraph) *Results {
	res := &Results{n: g.NumNodes(), t: g.NumStamps(), KatzAlpha: m.cfg.KatzAlpha,
		axisChanged: true, partitionChanged: true}
	m.uf = m.weakRebuild(g)
	res.comp, res.WeakSizes, res.WeakCount = m.weakLabels(g, m.uf)
	for mode := 0; mode < 2; mode++ {
		res.katz[mode] = m.katzRecompute(g, katzMode(mode))
	}
	m.weakFull.Add(1)
	m.katzFull.Add(1)
	m.katzDrift = [2]float64{}
	m.g = g
	m.res = res
	return res
}

// Apply rolls the maintained state from base to g, the graph the
// compactor produced from base by applying delta (via egraph.Patch or
// the equivalent full rebuild). It returns the new epoch's Results.
// If the Maintainer's state does not describe base — first epoch, or a
// caller swapped graphs behind it — Apply primes from scratch.
func (m *Maintainer) Apply(base, g *egraph.IntEvolvingGraph, delta []egraph.ArcDelta) *Results {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.epochs.Add(1)
	if m.g != base || m.res == nil {
		return m.primeLocked(g)
	}
	ops := resolveDelta(base, delta)
	if len(ops) == 0 && !sameAxis(base, g) {
		// Arc-free axis change (e.g. an explicit empty-stamp
		// registration): every temporal id shifts meaning. Too rare to
		// deserve an incremental remap.
		return m.primeLocked(g)
	}
	if len(ops) == 0 {
		// Structurally a no-op: g is arc-for-arc base (the Patch path
		// even returns base itself). State carries over verbatim; only
		// the per-revision classification changes.
		r := *m.res
		r.noOp, r.axisChanged, r.partitionChanged = true, false, false
		r.touched = nil
		m.g, m.res = g, &r
		return &r
	}

	res := &Results{n: g.NumNodes(), t: g.NumStamps(), KatzAlpha: m.cfg.KatzAlpha}
	res.axisChanged = !sameAxis(base, g)

	// The touched node set: every endpoint of a surviving op. Activity
	// can only change at these nodes, and every changed static or
	// causal row belongs to one of them.
	touched := make(map[int32]struct{}, 2*len(ops))
	hasDel := false
	for _, op := range ops {
		touched[op.u] = struct{}{}
		touched[op.v] = struct{}{}
		if op.del {
			hasDel = true
		}
	}

	m.applyWeak(base, g, ops, touched, hasDel, res)
	m.applyKatz(base, g, touched, res)

	// Classify which new components hold a delta endpoint — the
	// carry-over predicate for distance-based answers.
	res.touched = make(map[int32]struct{})
	for w := range touched {
		if int(w) >= g.NumNodes() {
			continue
		}
		for _, ts := range g.ActiveStamps(w) {
			res.touched[res.comp[int(ts)*res.n+int(w)]] = struct{}{}
		}
	}
	if !res.axisChanged {
		res.partitionChanged = !compEqual(m.res.comp, res.comp)
	} else {
		res.partitionChanged = true
	}

	m.g, m.res = g, res
	return res
}

// sameAxis reports whether two graphs share node universe and stamp
// axis, so temporal-node ids mean the same thing in both.
func sameAxis(a, b *egraph.IntEvolvingGraph) bool {
	if a == b {
		return true
	}
	if a.NumNodes() != b.NumNodes() || a.NumStamps() != b.NumStamps() {
		return false
	}
	for t := 0; t < a.NumStamps(); t++ {
		if a.TimeLabel(t) != b.TimeLabel(t) {
			return false
		}
	}
	return true
}

func compEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func katzModeIndex(mode egraph.CausalMode) int {
	if mode == egraph.CausalConsecutive {
		return 1
	}
	return 0
}

func katzMode(i int) egraph.CausalMode {
	if i == 1 {
		return egraph.CausalConsecutive
	}
	return egraph.CausalAllPairs
}

// WeakOracle is the differential oracle of the weak maintenance: the
// verbatim full recomputation the maintained partition must match.
// Exposed so tests, the fuzz harness and egbench's inc suite all
// compare against the same ground truth.
func WeakOracle(g *egraph.IntEvolvingGraph, mode egraph.CausalMode) []components.Component {
	return components.WeakOpts(g, components.Options{Mode: mode})
}

// MatchesWeak checks the maintained partition against the oracle's
// component list: same canonical labelling (minimum member id per
// component) over every active temporal node, same sizes.
func (r *Results) MatchesWeak(g *egraph.IntEvolvingGraph, oracle []components.Component) error {
	return matchWeak(r, g, oracle)
}
