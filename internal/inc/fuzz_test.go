package inc

// Fuzz harness over random delta sequences: the input bytes decode into
// a bounded sequence of epochs of ArcDelta ops (adds, removes, re-adds,
// stamp insertions and drops — a label with no surviving arcs leaves
// the axis), each applied through egraph.Patch and the Maintainer, with
// the maintained results asserted against the verbatim full
// recomputations after every epoch, in both causal modes.
//
// Run with the race detector to also exercise the locking:
//
//	go test -race -run='^$' -fuzz='^FuzzIncWeak$' -fuzztime=30s ./internal/inc
//	go test -race -run='^$' -fuzz='^FuzzIncKatz$' -fuzztime=30s ./internal/inc
//
// Plain `go test` replays the checked-in corpus and the seeds below.

import (
	"testing"

	"repro/internal/egraph"
)

const (
	fuzzNodes     = 10 // node ids drawn from [0, 10)
	fuzzLabels    = 6  // labels 10, 20, ..., 60
	fuzzMaxEpochs = 8
	fuzzMaxEvents = 24 // per epoch
)

// decodeEpochs turns fuzz bytes into epochs of deltas: byte 0 picks
// directedness, then each 3-byte group is one op — endpoints and label
// from the low bits, the delete flag and an epoch boundary from the
// high bits.
func decodeEpochs(data []byte) (directed bool, epochs [][]egraph.ArcDelta) {
	if len(data) == 0 {
		return true, nil
	}
	directed = data[0]&1 == 0
	data = data[1:]
	var cur []egraph.ArcDelta
	for len(data) >= 3 && len(epochs) < fuzzMaxEpochs {
		b0, b1, b2 := data[0], data[1], data[2]
		data = data[3:]
		u := int32(b0 % fuzzNodes)
		v := int32(b1 % fuzzNodes)
		if u == v {
			v = (v + 1) % fuzzNodes
		}
		d := egraph.ArcDelta{U: u, V: v, T: int64(10 * (1 + int(b2%fuzzLabels))), W: 1, Del: b0&0x80 != 0}
		cur = append(cur, d)
		if b1&0x80 != 0 || len(cur) >= fuzzMaxEvents {
			epochs = append(epochs, cur)
			cur = nil
		}
	}
	if len(cur) > 0 && len(epochs) < fuzzMaxEpochs {
		epochs = append(epochs, cur)
	}
	return directed, epochs
}

// fuzzBase is the fixed starting graph: two components spanning two
// stamps, so the very first epoch can already split, merge, or drop.
func fuzzBase(directed bool) *egraph.IntEvolvingGraph {
	return build(directed, []arc{{0, 1, 10}, {1, 2, 20}, {3, 4, 10}})
}

// seedCorpus registers the cases the issue calls out: deletion-heavy
// sequences and stamp churn (arcs appearing at fresh labels, then every
// arc of a label removed again), plus a mixed baseline, for both
// directednesses.
func seedCorpus(f *testing.F) {
	mixed := []byte{0}
	for i := 0; i < 30; i++ {
		op := byte(i % fuzzNodes)
		if i%3 == 2 {
			op |= 0x80 // delete
		}
		nb := byte((i * 3) % fuzzNodes)
		if i%5 == 4 {
			nb |= 0x80 // epoch boundary
		}
		mixed = append(mixed, op, nb, byte(i%fuzzLabels))
	}
	f.Add(mixed)

	// Deletion-heavy: re-remove the base arcs and whatever the first
	// epoch added, across several epochs.
	delHeavy := []byte{1}
	for i := 0; i < 24; i++ {
		nb := byte((i + 1) % fuzzNodes)
		if i%4 == 3 {
			nb |= 0x80
		}
		delHeavy = append(delHeavy, 0x80|byte(i%fuzzNodes), nb, byte(i%3))
	}
	f.Add(delHeavy)

	// Stamp churn: fill a fresh label, drop it entirely, repeat at
	// another label — the axis grows and shrinks every other epoch.
	churn := []byte{0}
	for round := 0; round < 3; round++ {
		lab := byte(3 + round%3)
		for i := 0; i < 4; i++ {
			churn = append(churn, byte(2*i), byte(2*i+1), lab)
		}
		churn = append(churn, 0, 0x80|1, lab) // boundary
		for i := 0; i < 4; i++ {
			churn = append(churn, 0x80|byte(2*i), byte(2*i+1), lab)
		}
		churn = append(churn, 0x80|0, 0x80|1, lab) // boundary
	}
	f.Add(churn)
}

// FuzzIncWeak asserts the maintained weak partition against the full
// union-find recompute after every epoch.
func FuzzIncWeak(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		directed, epochs := decodeEpochs(data)
		g := fuzzBase(directed)
		m := New(Config{})
		m.Prime(g)
		for _, delta := range epochs {
			ng := egraph.Patch(g, delta)
			res := m.Apply(g, ng, delta)
			for mi := 0; mi < 2; mi++ {
				if err := res.MatchesWeak(ng, WeakOracle(ng, katzMode(mi))); err != nil {
					t.Fatalf("epoch delta %v, mode %d: %v", delta, mi, err)
				}
			}
			g = ng
		}
	})
}

// FuzzIncKatz asserts the full epoch equivalence — weak partition and
// both causal modes' Katz vectors within 1e-12 of the full recompute.
func FuzzIncKatz(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		directed, epochs := decodeEpochs(data)
		g := fuzzBase(directed)
		m := New(Config{})
		checkEpoch(t, m.Prime(g), g)
		for _, delta := range epochs {
			g = step(t, m, g, delta)
		}
	})
}
