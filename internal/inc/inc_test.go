package inc

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/egraph"
	"repro/internal/rank"
)

// katzTol is the equivalence bound of the oracle harness: incremental
// and full-recompute scores must agree to 1e-12 (relative for scores
// above 1 — every active slot's score is ≥ 1, so this is never looser
// than 1e-12 absolute on meaningful entries).
func katzTol(a, b float64) float64 {
	return 1e-12 * math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// checkEpoch asserts the maintained results of one epoch equivalent to
// the verbatim full recomputations, in both causal modes.
func checkEpoch(t testing.TB, res *Results, g *egraph.IntEvolvingGraph) {
	t.Helper()
	for mi := 0; mi < 2; mi++ {
		mode := katzMode(mi)
		if err := res.MatchesWeak(g, WeakOracle(g, mode)); err != nil {
			t.Fatalf("weak mode %d: %v", mi, err)
		}
		want, err := rank.TemporalKatz(g, rank.KatzOptions{Alpha: res.KatzAlpha, Mode: mode, Tol: SeriesTol})
		got := res.KatzScores(mode)
		if err != nil {
			if got != nil {
				t.Fatalf("katz mode %d: oracle diverged but maintainer kept scores", mi)
			}
			continue
		}
		if got == nil {
			t.Fatalf("katz mode %d: maintained scores missing (oracle converged)", mi)
		}
		if len(got) != len(want) {
			t.Fatalf("katz mode %d: dim %d, oracle %d", mi, len(got), len(want))
		}
		for i := range want {
			if d := math.Abs(got[i] - want[i]); d > katzTol(got[i], want[i]) {
				t.Fatalf("katz mode %d id %d: maintained %.17g, oracle %.17g (diff %g)",
					mi, i, got[i], want[i], d)
			}
		}
	}
}

// step patches g with delta, rolls the maintainer forward, and asserts
// epoch equivalence against the oracles.
func step(t testing.TB, m *Maintainer, g *egraph.IntEvolvingGraph, delta []egraph.ArcDelta) *egraph.IntEvolvingGraph {
	t.Helper()
	ng := egraph.Patch(g, delta)
	res := m.Apply(g, ng, delta)
	checkEpoch(t, res, ng)
	return ng
}

type arc struct {
	u, v int32
	t    int64
}

func build(directed bool, arcs []arc) *egraph.IntEvolvingGraph {
	b := egraph.NewBuilder(directed)
	for _, a := range arcs {
		b.AddEdge(a.u, a.v, a.t)
	}
	return b.Build()
}

func add(u, v int32, t int64) egraph.ArcDelta {
	return egraph.ArcDelta{U: u, V: v, T: t, W: 1}
}

func del(u, v int32, t int64) egraph.ArcDelta {
	return egraph.ArcDelta{U: u, V: v, T: t, Del: true}
}

// TestScenarioDirected walks the maintainer through every structural
// regime on a hand-built directed graph: add-only absorption, deletion
// recheck, re-adds, mixed no-ops, stamp insertion and drop, universe
// growth, a split-heavy deletion epoch, and a pure no-op epoch.
func TestScenarioDirected(t *testing.T) {
	g := build(true, []arc{
		{0, 1, 10}, {1, 2, 20}, // component A across two stamps
		{3, 4, 10}, // component B
		{5, 6, 30}, // component C
	})
	m := New(Config{})
	checkEpoch(t, m.Prime(g), g)

	// Add-only on an unchanged axis: close a cycle in A and activate
	// node 0 at a stamp it was inactive at — absorbed in place.
	g = step(t, m, g, []egraph.ArcDelta{add(2, 0, 20), add(0, 5, 30)})
	if s := m.Stats(); s.WeakIncremental != 1 || s.KatzIncremental == 0 {
		t.Fatalf("add-only epoch not absorbed incrementally: %+v", s)
	}

	// Universe growth: new node 7 changes the axis, taking the slow
	// path, but the partition must still come out oracle-identical.
	g = step(t, m, g, []egraph.ArcDelta{add(6, 7, 30), add(0, 7, 30)})

	// Deletion: split A's cross-stamp link; B and C must carry over.
	g = step(t, m, g, []egraph.ArcDelta{del(1, 2, 20)})

	// Re-add it, mixed with no-ops: a removal of an absent arc and an
	// add that a later delete in the same delta cancels (last wins).
	g = step(t, m, g, []egraph.ArcDelta{
		add(1, 2, 20), del(3, 9, 10), add(5, 3, 10), del(5, 3, 10),
	})

	// Stamp insertion in the middle of the axis.
	g = step(t, m, g, []egraph.ArcDelta{add(3, 5, 15), add(4, 6, 15)})

	// Stamp drop: delete every arc at the new label.
	g = step(t, m, g, []egraph.ArcDelta{del(3, 5, 15), del(4, 6, 15)})

	// Deletion-heavy epoch: rip out arcs touching most of the graph.
	// Genuine splits are enumerated as exact pieces, so even this stays
	// on the incremental path (the full rebuild is reserved for
	// over-budget examinations, unreachable at this scale).
	before := m.Stats()
	g = step(t, m, g, []egraph.ArcDelta{
		del(0, 1, 10), del(3, 4, 10), del(5, 6, 30), del(2, 0, 20),
	})
	if s := m.Stats(); s.WeakFull != before.WeakFull || s.WeakIncremental != before.WeakIncremental+1 {
		t.Fatalf("deletion-heavy epoch did not stay incremental: %+v", s)
	}

	// Pure no-op epoch: re-adding a present arc changes nothing, and
	// Patch hands back the base graph itself.
	ng := egraph.Patch(g, []egraph.ArcDelta{add(1, 2, 20)})
	if ng != g {
		t.Fatalf("no-op patch returned a new graph")
	}
	res := m.Apply(g, ng, []egraph.ArcDelta{add(1, 2, 20)})
	if !res.NoOp() || !res.PartitionUnchanged() || !res.AxisUnchanged() {
		t.Fatalf("no-op epoch misclassified: %+v", res)
	}
	checkEpoch(t, res, ng)
}

// TestScenarioUndirected covers the canonicalised-arc path.
func TestScenarioUndirected(t *testing.T) {
	g := build(false, []arc{{0, 1, 10}, {2, 3, 10}, {1, 2, 20}})
	m := New(Config{})
	checkEpoch(t, m.Prime(g), g)
	// (3,2) must canonicalise onto the existing (2,3): a no-op add.
	g = step(t, m, g, []egraph.ArcDelta{add(3, 2, 10), add(0, 3, 20)})
	g = step(t, m, g, []egraph.ArcDelta{del(2, 3, 10)})
	g = step(t, m, g, []egraph.ArcDelta{del(1, 0, 10), add(0, 2, 10)})
	_ = g
}

// TestClassification pins the cache carry-over predicates: a delta
// confined to one component leaves queries rooted in the others
// provably unaffected, while a partition-changing delta flips the
// partition flag.
func TestClassification(t *testing.T) {
	g := build(true, []arc{{0, 1, 10}, {2, 3, 10}})
	m := New(Config{})
	m.Prime(g)

	// Reverse arc inside the {2,3} component: same axis, same partition.
	delta := []egraph.ArcDelta{add(3, 2, 10)}
	ng := egraph.Patch(g, delta)
	res := m.Apply(g, ng, delta)
	checkEpoch(t, res, ng)
	if !res.AxisUnchanged() || !res.PartitionUnchanged() {
		t.Fatalf("axis/partition misclassified: axis %v partition %v",
			res.AxisUnchanged(), res.PartitionUnchanged())
	}
	if !res.QueryUnaffected(0, 0) || !res.QueryUnaffected(1, 0) {
		t.Fatal("untouched component reported affected")
	}
	if res.QueryUnaffected(2, 0) || res.QueryUnaffected(3, 0) {
		t.Fatal("touched component reported unaffected")
	}
	// Inactive slots prove nothing.
	if res.QueryUnaffected(0, 5) || res.QueryUnaffected(9, 0) {
		t.Fatal("out-of-range query reported unaffected")
	}

	// Merge the components: partition changes, everyone is touched.
	g = ng
	delta = []egraph.ArcDelta{add(1, 2, 10)}
	ng = egraph.Patch(g, delta)
	res = m.Apply(g, ng, delta)
	checkEpoch(t, res, ng)
	if res.PartitionUnchanged() {
		t.Fatal("merge left partition flagged unchanged")
	}
	if res.QueryUnaffected(0, 0) {
		t.Fatal("merged component reported unaffected")
	}

	// New stamp label: axis changes, nothing is provable per-node.
	g = ng
	delta = []egraph.ArcDelta{add(0, 1, 99)}
	ng = egraph.Patch(g, delta)
	res = m.Apply(g, ng, delta)
	checkEpoch(t, res, ng)
	if res.AxisUnchanged() || res.QueryUnaffected(2, 0) {
		t.Fatal("axis change must disable carry-over")
	}
}

// TestPrimeOnForeignBase: an Apply whose base is not the maintained
// graph (state handed a different lineage) must fall back to priming.
func TestPrimeOnForeignBase(t *testing.T) {
	g1 := build(true, []arc{{0, 1, 10}})
	g2 := build(true, []arc{{0, 1, 10}, {1, 2, 20}})
	m := New(Config{})
	m.Prime(g1)
	other := build(true, []arc{{4, 5, 10}})
	res := m.Apply(other, g2, nil) // base mismatch
	checkEpoch(t, res, g2)
}

// TestRandomEpochs drives many randomized delta sequences through the
// maintainer, asserting oracle equivalence after every epoch — the
// deterministic sibling of the fuzz harness.
func TestRandomEpochs(t *testing.T) {
	labels := []int64{10, 20, 30, 40}
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			directed := seed%2 == 0
			g := build(directed, []arc{{0, 1, 10}, {2, 3, 20}})
			m := New(Config{})
			checkEpoch(t, m.Prime(g), g)
			for epoch := 0; epoch < 30; epoch++ {
				k := 1 + rng.Intn(10)
				delta := make([]egraph.ArcDelta, 0, k)
				for i := 0; i < k; i++ {
					u := int32(rng.Intn(9))
					v := int32(rng.Intn(9))
					if u == v {
						v = (v + 1) % 9
					}
					lab := labels[rng.Intn(len(labels))]
					if rng.Intn(3) == 0 {
						delta = append(delta, del(u, v, lab))
					} else {
						delta = append(delta, add(u, v, lab))
					}
				}
				g = step(t, m, g, delta)
			}
			s := m.Stats()
			if s.Epochs != 30 {
				t.Fatalf("epochs = %d", s.Epochs)
			}
		})
	}
}
