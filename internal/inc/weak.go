package inc

// Incremental weak components. The maintained invariant: after every
// Apply, m.uf partitions the current graph's active temporal nodes
// exactly as a from-scratch union-find over its CSR would
// (components.weakCSR — the oracle). Three regimes:
//
//   - Add-only epoch on an unchanged axis: absorb in place. One Union
//     per inserted arc, plus causal chain links for every newly
//     activated (node, stamp) slot — near-O(α) per event.
//   - Epoch with deletions (or axis churn): first examine every
//     connection a deletion might have severed (weakSuspects) with
//     bounded searches in the new graph (weakExam). Endpoints that
//     reconnect join the examined remainder; a conclusive disconnect
//     fully enumerates the smaller side — an exact new component, kept
//     as a "piece". The old partition then carries onto the new axis
//     as the candidate, with piece rows split out: rows of enumerated
//     pieces union only among themselves, everything else unions by
//     its old set, and rows without an active base counterpart are
//     rescanned. Deletions inside a well-connected component — the
//     common live-ingest case — reconnect within a few hops, and even
//     genuine splits stay delta-proportional as long as the smaller
//     side is small.
//   - Only an over-budget examination (or an oversized suspect set)
//     falls back to the full rebuild.
//
// Why the candidate is exact: every union comes from an old arc or
// causal chain (same old set), this epoch's insertions, a rescanned
// row, or a piece. Insertions, rescanned rows and old arcs that
// survived are arcs of g; piece members were enumerated as one g
// component; and a node's surviving stamps always re-chain in g
// (consecutive causal links span deactivated gaps). So every union is
// realised by a path in g. Conversely no g connection is missed: each
// old set's non-piece survivors are one g component — every severed
// connection produced a suspect pair, and the examination pieces off
// every split part that does not reconnect with the remainder — and
// arcs g gained are the insertion/rescan unions. Pieces are exact by
// enumeration.
//
// Forest hygiene: an epoch that deactivates any row (or splits any
// set) rebuilds the forest from per-set representatives, so a row
// that is inactive afterwards is always a singleton — reactivating it
// later can never drag stale memberships in. Same-axis epochs with no
// deactivations mutate the forest in place; pure stamp-axis growth
// carries it by id remap (ds.UnionFind.Remap). Both preserve the
// singleton invariant.

import (
	"fmt"
	"sort"

	"repro/internal/components"
	"repro/internal/ds"
	"repro/internal/egraph"
)

// weakRebuild is the from-scratch union-find over g's CSR, mirroring
// components.weakCSR. Consecutive-mode causal links suffice: a node's
// active stamps chain into one set either way, so weak connectivity is
// mode-independent (which the oracle relies on too).
func (m *Maintainer) weakRebuild(g *egraph.IntEvolvingGraph) *ds.UnionFind {
	csr := g.CSR()
	n := int32(csr.N)
	uf := ds.NewUnionFind(csr.Size())
	for id := csr.Active.NextSet(0); id >= 0; id = csr.Active.NextSet(id + 1) {
		for _, nb := range csr.OutArcs(int32(id)) {
			uf.Union(id, int(nb))
		}
		stamps, v := csr.CausalArcs(int32(id), true, true)
		for _, s := range stamps {
			uf.Union(id, int(s*n+v))
		}
	}
	return uf
}

// applyWeak rolls the weak partition from base to g and fills in the
// partition fields of res.
func (m *Maintainer) applyWeak(base, g *egraph.IntEvolvingGraph, ops []resolvedOp,
	touched map[int32]struct{}, hasDel bool, res *Results) {
	if hasDel || res.axisChanged {
		m.uf = m.weakRecheck(base, g, ops, touched, res.axisChanged)
	} else {
		m.weakAbsorb(base, g, ops, touched)
		m.weakInc.Add(1)
	}
	res.comp, res.WeakSizes, res.WeakCount = m.weakLabels(g, m.uf)
}

// weakFallback abandons the incremental path for this epoch: a full
// rebuild, which also leaves a forest with every inactive id singleton.
func (m *Maintainer) weakFallback(g *egraph.IntEvolvingGraph) *ds.UnionFind {
	m.weakFull.Add(1)
	return m.weakRebuild(g)
}

// weakAbsorb handles the add-only same-axis epoch: the old partition
// can only coarsen, so m.uf is updated in place.
func (m *Maintainer) weakAbsorb(base, g *egraph.IntEvolvingGraph, ops []resolvedOp,
	touched map[int32]struct{}) {
	n := g.NumNodes()
	uf := m.uf
	for _, op := range ops {
		ts := g.StampOf(op.label)
		uf.Union(ts*n+int(op.u), ts*n+int(op.v))
	}
	// Newly activated slots join their node's causal chain.
	for w := range touched {
		for _, ts := range g.ActiveStamps(w) {
			if base.IsActive(w, ts) {
				continue
			}
			id := int(ts)*n + int(w)
			if prev := g.PrevActiveStamp(w, ts); prev >= 0 {
				uf.Union(id, int(prev)*n+int(w))
			}
			if next := g.NextActiveStamp(w, ts); next >= 0 {
				uf.Union(id, int(next)*n+int(w))
			}
		}
	}
}

// weakRecheck re-derives connectivity after deletions or axis churn:
// suspects are examined first (splitting off exact pieces), then the
// old partition carries onto the new axis as the candidate — in place,
// by forest remap, or from per-set representatives, depending on what
// the epoch changed — and rows without an active base counterpart are
// rescanned (see the package comment for the soundness argument).
func (m *Maintainer) weakRecheck(base, g *egraph.IntEvolvingGraph, ops []resolvedOp,
	touched map[int32]struct{}, axisChanged bool) *ds.UnionFind {
	csr := g.CSR()
	n := int32(csr.N)
	oldN := base.NumNodes()
	dim := csr.Size()

	// Stamp-index maps in both directions, by label.
	newToOld := make([]int, g.NumStamps())
	for t := range newToOld {
		newToOld[t] = base.StampOf(g.TimeLabel(t))
	}
	oldToNew := make([]int, base.NumStamps())
	allOldStamps := true
	for t := range oldToNew {
		oldToNew[t] = g.StampOf(base.TimeLabel(t))
		if oldToNew[t] < 0 {
			allOldStamps = false
		}
	}

	// Examine every connection a deletion might have severed before any
	// candidate work: examination only reads g's CSR, so an over-budget
	// epoch (or an oversized suspect set) rebuilds without paying for a
	// candidate it would throw away.
	suspects, dead, ok := weakSuspects(base, g, ops, touched, oldToNew)
	if !ok {
		return m.weakFallback(g)
	}
	budget := int(m.cfg.ChurnThreshold * float64(g.NumActiveNodes()))
	if budget < 4096 {
		budget = 4096
	}
	exam := newWeakExam(csr, budget)
	for _, p := range suspects {
		if !exam.pair(p.a, p.b) {
			return m.weakFallback(g)
		}
	}

	// Candidate partition: old connectivity carried onto the new axis.
	// A clean epoch — nothing deactivated, nothing split — keeps the
	// forest: in place on the same axis, by id remap when only new
	// stamps appeared. Otherwise the forest is rebuilt from per-set
	// representatives with enumerated pieces split out, which leaves
	// every inactive id a singleton again.
	clean := len(dead) == 0 && exam.pieces == 0
	var uf *ds.UnionFind
	switch {
	case clean && !axisChanged:
		m.weakAbsorb(base, g, ops, touched)
		m.weakInc.Add(1)
		return m.uf
	case clean && int(n) == oldN && allOldStamps:
		on := oldN
		uf = m.uf.Remap(dim, func(id int) int {
			return oldToNew[id/on]*on + id%on
		})
	default:
		uf = ds.NewUnionFind(dim)
		rootRep := make(map[int]int)
		pieceRep := make(map[int32]int)
		for id := csr.Active.NextSet(0); id >= 0; id = csr.Active.NextSet(id + 1) {
			if c, known := exam.comp[int32(id)]; known && c >= 0 {
				// An enumerated piece is exactly one g component: union
				// within it, never through the old set it split from.
				if rep, seen := pieceRep[c]; seen {
					uf.Union(id, rep)
				} else {
					pieceRep[c] = id
				}
				continue
			}
			v := int32(id) % n
			ts := int32(id) / n
			oldTs := newToOld[ts]
			if int(v) >= oldN || oldTs < 0 || !base.IsActive(v, int32(oldTs)) {
				continue // no counterpart: rescanned below
			}
			r := m.uf.Find(oldTs*oldN + int(v))
			if rep, seen := rootRep[r]; seen {
				uf.Union(id, rep)
			} else {
				rootRep[r] = id
			}
		}
	}

	// Coarsen by this epoch's insertions, then rescan every row with no
	// active base counterpart in both static and both causal directions.
	// Activity only changes at delta endpoints, and every row of a new
	// stamp or new node holds an inserted arc, so the touched nodes'
	// stamps cover the whole rescan set.
	for _, op := range ops {
		if op.del {
			continue
		}
		ts := int32(g.StampOf(op.label))
		uf.Union(int(ts*n+op.u), int(ts*n+op.v))
	}
	for w := range touched {
		if int(w) >= int(n) {
			continue
		}
		for _, ts := range g.ActiveStamps(w) {
			oldTs := newToOld[ts]
			if int(w) < oldN && oldTs >= 0 && base.IsActive(w, int32(oldTs)) {
				continue
			}
			id := ts*n + w
			for _, nb := range csr.OutArcs(id) {
				uf.Union(int(id), int(nb))
			}
			for _, nb := range csr.InArcs(id) {
				uf.Union(int(id), int(nb))
			}
			stamps, v := csr.CausalArcs(id, true, true)
			for _, s := range stamps {
				uf.Union(int(id), int(s*n+v))
			}
			stamps, v = csr.CausalArcs(id, false, true)
			for _, s := range stamps {
				uf.Union(int(id), int(s*n+v))
			}
		}
	}

	m.weakInc.Add(1)
	return uf
}

// idPair is a connection to re-examine: two active rows of g.
type idPair struct{ a, b int32 }

// weakSuspects lists the connections this epoch's deletions might have
// severed: the endpoints of every deleted arc that are both still
// active, and — for rows that vanished entirely — a chain across the
// surviving neighbours of each connected group of vanished rows (any
// old path through the group entered and left via those neighbours;
// one representative per surviving node suffices, its own stamps
// re-chain causally). dead lists this epoch's vanished rows as base
// ids — a non-empty list forces the caller to rebuild the forest from
// representatives, keeping vanished ids singletons. ok is false when
// the suspect set itself is too large to be worth examining.
func weakSuspects(base, g *egraph.IntEvolvingGraph, ops []resolvedOp,
	touched map[int32]struct{}, oldToNew []int) (suspects []idPair, dead []int32, ok bool) {
	csr := g.CSR()
	n := g.NumNodes()
	oldN := base.NumNodes()

	// aliveRow maps a base-active row to its row in g, if still active.
	aliveRow := func(w, bts int32) (int32, bool) {
		if int(w) >= n {
			return -1, false
		}
		nts := oldToNew[bts]
		if nts < 0 {
			return -1, false
		}
		id := int32(nts)*int32(n) + w
		return id, csr.ActPos[id] >= 0
	}

	// Vanished rows (base-active, gone from g) — only delta endpoints
	// can lose activity, so the touched set covers them all.
	const maxDead = 1 << 14
	deadIdx := make(map[int32]int32)
	for w := range touched {
		if int(w) >= oldN {
			continue
		}
		for _, bts := range base.ActiveStamps(w) {
			if _, alive := aliveRow(w, bts); alive {
				continue
			}
			if len(dead) >= maxDead {
				return nil, nil, false
			}
			oldId := bts*int32(oldN) + w
			deadIdx[oldId] = int32(len(dead))
			dead = append(dead, oldId)
		}
	}

	if len(dead) > 0 {
		bcsr := base.CSR()
		groups := ds.NewUnionFind(len(dead))
		// Group vanished rows adjacent in base: via a static arc, or as
		// consecutive active stamps of one node (the base causal chain).
		for i, oldId := range dead {
			for _, nb := range bcsr.OutArcs(oldId) {
				if j, isDead := deadIdx[nb]; isDead {
					groups.Union(i, int(j))
				}
			}
			for _, nb := range bcsr.InArcs(oldId) {
				if j, isDead := deadIdx[nb]; isDead {
					groups.Union(i, int(j))
				}
			}
		}
		for w := range touched {
			if int(w) >= oldN {
				continue
			}
			prev := int32(-1)
			for _, bts := range base.ActiveStamps(w) {
				j, isDead := deadIdx[bts*int32(oldN)+w]
				if isDead {
					if prev >= 0 {
						groups.Union(int(prev), int(j))
					}
					prev = j
				} else {
					prev = -1
				}
			}
		}
		// Each group's boundary: surviving mapped static neighbours,
		// plus one representative row per group member's node that is
		// still active anywhere (its causal chain reaches the rest).
		boundary := make(map[int][]int32)
		for i, oldId := range dead {
			r := groups.Find(i)
			w := oldId % int32(oldN)
			for _, nb := range bcsr.OutArcs(oldId) {
				if id, alive := aliveRow(nb%int32(oldN), nb/int32(oldN)); alive {
					boundary[r] = append(boundary[r], id)
				}
			}
			for _, nb := range bcsr.InArcs(oldId) {
				if id, alive := aliveRow(nb%int32(oldN), nb/int32(oldN)); alive {
					boundary[r] = append(boundary[r], id)
				}
			}
			if int(w) < n {
				if act := g.ActiveStamps(w); len(act) > 0 {
					boundary[r] = append(boundary[r], act[0]*int32(n)+w)
				}
			}
		}
		for _, b := range boundary {
			sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
			for i := 1; i < len(b); i++ {
				if b[i] != b[i-1] {
					suspects = append(suspects, idPair{a: b[i-1], b: b[i]})
				}
			}
		}
	}

	// Deleted arcs whose rows both survived.
	for _, op := range ops {
		if !op.del {
			continue
		}
		nts := int32(g.StampOf(op.label))
		if nts < 0 || int(op.u) >= n || int(op.v) >= n {
			continue // stamp or node vanished: rows dead, handled above
		}
		a, b := nts*int32(n)+op.u, nts*int32(n)+op.v
		if csr.ActPos[a] >= 0 && csr.ActPos[b] >= 0 {
			suspects = append(suspects, idPair{a: a, b: b})
		}
	}
	const maxSuspects = 1 << 13
	if len(suspects) > maxSuspects {
		return nil, nil, false
	}
	return suspects, dead, true
}

// weakExam classifies the rows of suspect pairs into exact components
// of g with bounded searches over its undirected flat view. Rows land
// either in the anchor component (-1) — the one component the first
// examined pair bootstraps, never fully enumerated — or in a numbered
// piece: a component a conclusive disconnect exhausted, known member
// by member. Markings are memoised, so a later search stops as soon as
// it touches any already-classified row. All searches draw on one
// shared budget; pair returns false once it runs out.
type weakExam struct {
	csr    *egraph.CSR
	n      int32
	comp   map[int32]int32 // row → -1 (anchor component) or piece index
	pieces int32
	booted bool
	budget int
}

func newWeakExam(csr *egraph.CSR, budget int) *weakExam {
	return &weakExam{csr: csr, n: int32(csr.N), comp: make(map[int32]int32), budget: budget}
}

// neighbors visits id's undirected flat-view neighbourhood.
func (e *weakExam) neighbors(id int32, fn func(int32)) {
	for _, nb := range e.csr.OutArcs(id) {
		fn(nb)
	}
	for _, nb := range e.csr.InArcs(id) {
		fn(nb)
	}
	stamps, v := e.csr.CausalArcs(id, true, true)
	for _, s := range stamps {
		fn(s*e.n + v)
	}
	stamps, v = e.csr.CausalArcs(id, false, true)
	for _, s := range stamps {
		fn(s*e.n + v)
	}
}

// pair examines one suspect connection. After it returns true, both
// endpoints are classified; false means the budget ran out and the
// caller must fall back.
func (e *weakExam) pair(a, b int32) bool {
	if !e.booted {
		if !e.boot(a, b) {
			return false
		}
		e.booted = true
		return true
	}
	if _, known := e.comp[a]; !known {
		if !e.settle(a) {
			return false
		}
	}
	if _, known := e.comp[b]; !known {
		if !e.settle(b) {
			return false
		}
	}
	return true
}

// boot examines the first pair bidirectionally, always expanding the
// smaller frontier. Meeting proves one component — it becomes the
// anchor. A side exhausting without meeting is a fully enumerated
// piece; the other, partially explored side anchors the remainder.
func (e *weakExam) boot(a, b int32) bool {
	if a == b {
		e.comp[a] = -1
		return true
	}
	seen := map[int32]int8{a: 1, b: 2}
	va, vb := []int32{a}, []int32{b}
	fa, fb := []int32{a}, []int32{b}
	e.budget -= 2
	met := false
	for len(fa) > 0 && len(fb) > 0 && !met {
		cur, s := fa, int8(1)
		if len(fb) < len(fa) {
			cur, s = fb, 2
		}
		var next []int32
		for _, id := range cur {
			e.neighbors(id, func(nb int32) {
				if met {
					return
				}
				if prev, ok := seen[nb]; ok {
					if prev != s {
						met = true
					}
					return
				}
				seen[nb] = s
				next = append(next, nb)
			})
			if met {
				break
			}
		}
		e.budget -= len(next)
		if e.budget <= 0 {
			return false
		}
		if s == 1 {
			fa = next
			va = append(va, next...)
		} else {
			fb = next
			vb = append(vb, next...)
		}
	}
	if met {
		for _, id := range va {
			e.comp[id] = -1
		}
		for _, id := range vb {
			e.comp[id] = -1
		}
		return true
	}
	exhausted, rest := va, vb
	if len(fb) == 0 {
		exhausted, rest = vb, va
	}
	p := e.pieces
	e.pieces++
	for _, id := range exhausted {
		e.comp[id] = p
	}
	for _, id := range rest {
		e.comp[id] = -1
	}
	return true
}

// settle classifies one unclassified row: a search from it either
// touches an already-classified row — same component, adopt its class
// for everything visited — or exhausts, enumerating a new piece.
func (e *weakExam) settle(w int32) bool {
	adopt := int32(-2)
	visited := []int32{w}
	frontier := []int32{w}
	seen := map[int32]struct{}{w: {}}
	e.budget--
	for len(frontier) > 0 && adopt == -2 {
		var next []int32
		for _, id := range frontier {
			e.neighbors(id, func(nb int32) {
				if adopt != -2 {
					return
				}
				if c, known := e.comp[nb]; known {
					adopt = c
					return
				}
				if _, ok := seen[nb]; ok {
					return
				}
				seen[nb] = struct{}{}
				next = append(next, nb)
			})
			if adopt != -2 {
				break
			}
		}
		e.budget -= len(next)
		if e.budget <= 0 {
			return false
		}
		visited = append(visited, next...)
		frontier = next
	}
	if adopt == -2 {
		adopt = e.pieces
		e.pieces++
	}
	for _, id := range visited {
		e.comp[id] = adopt
	}
	return true
}

// weakLabels derives the canonical labelling from a union-find: comp
// maps every temporal id to the minimum member id of its component
// (-1 inactive), sizes descending. Root-indexed scratch is reused
// across epochs and left zeroed for the next caller.
func (m *Maintainer) weakLabels(g *egraph.IntEvolvingGraph, uf *ds.UnionFind) (comp []int32, sizes []int, count int) {
	csr := g.CSR()
	size := csr.Size()
	if cap(m.rootLabel) < size {
		m.rootLabel = make([]int32, size)
		m.rootSize = make([]int32, size)
		for i := range m.rootLabel {
			m.rootLabel[i] = -1
		}
	}
	rl, rs := m.rootLabel[:size], m.rootSize[:size]

	comp = make([]int32, size)
	for i := range comp {
		comp[i] = -1
	}
	var roots []int32
	// Ascending id order: the first visit of each root is its minimum
	// member, i.e. the canonical label.
	for id := csr.Active.NextSet(0); id >= 0; id = csr.Active.NextSet(id + 1) {
		r := uf.Find(id)
		if rl[r] < 0 {
			rl[r] = int32(id)
			roots = append(roots, int32(r))
		}
		rs[r]++
		comp[id] = rl[r]
	}
	sizes = make([]int, len(roots))
	for i, r := range roots {
		sizes[i] = int(rs[r])
		rl[r], rs[r] = -1, 0
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	return comp, sizes, len(roots)
}

// matchWeak checks a maintained partition against the oracle's
// component list: identical member sets under the canonical labelling
// (each oracle component's first member is its minimum id — members
// are stamp-major sorted), identical sizes.
func matchWeak(r *Results, g *egraph.IntEvolvingGraph, oracle []components.Component) error {
	if len(oracle) != r.WeakCount {
		return fmt.Errorf("component count: maintained %d, oracle %d", r.WeakCount, len(oracle))
	}
	sizes := make([]int, len(oracle))
	total := 0
	for i, comp := range oracle {
		sizes[i] = len(comp)
		total += len(comp)
		label := int32(int(comp[0].Stamp)*r.n + int(comp[0].Node))
		for _, tn := range comp {
			id := int(tn.Stamp)*r.n + int(tn.Node)
			if id < 0 || id >= len(r.comp) {
				return fmt.Errorf("oracle member (%d,%d) out of maintained range", tn.Node, tn.Stamp)
			}
			if r.comp[id] != label {
				return fmt.Errorf("member (%d,%d): maintained label %d, oracle %d",
					tn.Node, tn.Stamp, r.comp[id], label)
			}
		}
	}
	labelled := 0
	for _, c := range r.comp {
		if c >= 0 {
			labelled++
		}
	}
	if labelled != total {
		return fmt.Errorf("labelled %d temporal nodes, oracle covers %d", labelled, total)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	if len(sizes) != len(r.WeakSizes) {
		return fmt.Errorf("size list length: maintained %d, oracle %d", len(r.WeakSizes), len(sizes))
	}
	for i := range sizes {
		if sizes[i] != r.WeakSizes[i] {
			return fmt.Errorf("size[%d]: maintained %d, oracle %d", i, r.WeakSizes[i], sizes[i])
		}
	}
	return nil
}
