package inc

// Incremental temporal Katz. The fixpoint x = 1_active + αA_nᵀx is
// maintained across epochs as a correction series: starting from the
// previous epoch's vector x₀ (remapped onto the new axis, with
// deactivated slots zeroed), the residual
//
//	r(id) = 1 + α·gather(id, x₀) − x₀(id)        (active ids)
//
// is non-zero only on rows the delta changed — a row's static in-arcs
// or causal in-row differ between base and g only at slots of delta
// endpoints — and the exact correction is x = x₀ + Σ_k (αA_newᵀ)^k r,
// propagated sparsely outward from those rows. Both causal modes are
// maintained; a divergent series (α too large) degrades that mode to
// nil, exactly as the full recompute would error.
//
// Residuals are two-phase on purpose: every residual is gathered from
// the *unmodified* x₀ before any update lands. Folding updates in
// while other residuals are still being gathered would double-count a
// dirty row that feeds another dirty row — once through the
// neighbour's residual and again when the correction propagates.
//
// Truncation is certified, not merely heuristic. One application of
// αAᵀ can grow a term's L1 norm by at most qOut = α·(maxOutDeg+fan)
// (the maximal column sum) and its L∞ norm by at most
// qIn = α·(maxInDeg+fan) (the maximal row sum), so after folding a
// term of L1 norm `mass` and peak `linf`, everything the series still
// owes any single entry is bounded by
//
//	min( mass·qOut/(1−qOut), linf·qIn/(1−qIn) )
//
// The series therefore stops as soon as either bound certifies a
// per-entry tail under KatzTailTol — typically several terms before
// the raw mass reaches SeriesTol, which is where the delta-proportional
// saving over the full recompute comes from. The bound of each stop is
// added to a per-mode drift ledger; once the accumulated ledger would
// pass KatzDriftBudget, the next epoch recomputes that mode from
// scratch. Maintained scores thus stay within KatzDriftBudget + ~ε of
// the SeriesTol fixpoint no matter how many epochs chain — an order of
// magnitude inside the 1e-12 the oracle harness asserts.

import (
	"math"
	"slices"
	"sort"

	"repro/internal/egraph"
	"repro/internal/rank"
)

// SeriesTol is the truncation tolerance of the full recomputations the
// Maintainer (and its differential tests) run, and the floor of the
// correction series' certified stop — tighter than rank.KatzOptions'
// default so both sides approximate the same fixpoint to well under
// the 1e-12 the oracle harness asserts.
const SeriesTol = 1e-15

// KatzTailTol is the certified per-entry truncation budget of one
// epoch's correction series.
const KatzTailTol = 1e-14

// KatzDriftBudget caps the accumulated per-entry truncation bound
// across chained incremental epochs; once the ledger reaches it, the
// next epoch recomputes that mode from scratch (counted as a full) and
// resets the ledger.
const KatzDriftBudget = 1e-13

// katzPruneTerms scales the per-term pruning threshold: each term that
// prunes anything may cost any single entry at most KatzTailTol divided
// by this, so even a long pruned series stays within one KatzTailTol of
// budget (see katzCorrect).
const katzPruneTerms = 16

// katzRecompute is the full-recompute path (and fallback): the verbatim
// oracle iteration at the maintained alpha.
func (m *Maintainer) katzRecompute(g *egraph.IntEvolvingGraph, mode egraph.CausalMode) []float64 {
	x, err := rank.TemporalKatz(g, rank.KatzOptions{Alpha: m.cfg.KatzAlpha, Mode: mode, Tol: SeriesTol})
	if err != nil {
		return nil
	}
	return x
}

// applyKatz rolls both modes' Katz vectors from base to g.
func (m *Maintainer) applyKatz(base, g *egraph.IntEvolvingGraph, touched map[int32]struct{}, res *Results) {
	csr := g.CSR()
	dim := csr.Size()
	n := g.NumNodes()
	oldN := base.NumNodes()

	stampMap := make([]int, g.NumStamps())
	for t := range stampMap {
		stampMap[t] = base.StampOf(g.TimeLabel(t))
	}

	// Dirty rows: every active slot of a delta endpoint. (A superset of
	// the strictly-changed rows for directed arcs — the extra residuals
	// are exactly zero and drop out immediately.)
	var dirty []int32
	for w := range touched {
		if int(w) >= n {
			continue
		}
		for _, ts := range g.ActiveStamps(w) {
			dirty = append(dirty, ts*int32(n)+w)
		}
	}
	sort.Slice(dirty, func(i, j int) bool { return dirty[i] < dirty[j] })
	tooDirty := float64(len(dirty)) > m.cfg.KatzDirtyThreshold*float64(dim)

	width := n
	if oldN < width {
		width = oldN
	}
	maxOut, maxIn, fansDone := 0, 0, false
	for mi := 0; mi < 2; mi++ {
		old := m.res.katz[mi]
		if old == nil || tooDirty || m.katzDrift[mi] >= KatzDriftBudget {
			res.katz[mi] = m.katzRecompute(g, katzMode(mi))
			m.katzFull.Add(1)
			m.katzDrift[mi] = 0
			continue
		}
		if !fansDone {
			maxOut, maxIn = katzFanBounds(csr)
			fansDone = true
		}
		fan := csr.T - 1 // causal fan-out/-in per row: ≤ T−1 all-pairs…
		if mi == 1 {
			fan = 1 // …and ≤ 1 consecutive
		}
		qOut := m.cfg.KatzAlpha * float64(maxOut+fan)
		qIn := m.cfg.KatzAlpha * float64(maxIn+fan)
		// Remap the previous vector onto the new axis by stamp label,
		// then zero anything not active in g (deactivated slots, and
		// rows carried for stamps that gained/lost nothing stay put).
		x := make([]float64, dim)
		for ts := range stampMap {
			if oldTs := stampMap[ts]; oldTs >= 0 {
				copy(x[ts*n:ts*n+width], old[oldTs*oldN:oldTs*oldN+width])
			}
		}
		for id := range x {
			if x[id] != 0 && csr.ActPos[id] < 0 {
				x[id] = 0
			}
		}
		// Frontier pruning threshold: a pruned entry's lost sub-series
		// is per-entry ≤ qIn·pruneEps/(1−qIn) = KatzTailTol/katzPruneTerms
		// per pruned term. Uncertified qIn (≥1) disables pruning.
		pruneEps, pruneRate := 0.0, 0.0
		if qIn < 1 {
			pruneRate = KatzTailTol / katzPruneTerms
			pruneEps = pruneRate * (1 - qIn) / qIn
		}
		mass, linf, pruneLoss, ok := m.katzCorrect(csr, mi == 1, x, dirty,
			katzStopL1(qOut), katzStopInf(qIn), pruneEps, pruneRate)
		if ok {
			m.katzDrift[mi] += katzDriftBound(mass, linf, qOut, qIn) + pruneLoss
			res.katz[mi] = x
			m.katzInc.Add(1)
		} else {
			res.katz[mi] = m.katzRecompute(g, katzMode(mi))
			m.katzFull.Add(1)
			m.katzDrift[mi] = 0
		}
	}
}

// katzStopL1 is the largest term L1 norm at which the series may stop
// under contraction factor qOut: the tail it leaves on any entry is at
// most mass·qOut/(1−qOut) ≤ KatzTailTol. A vacuous factor (qOut ≥ 1)
// certifies nothing — fall back to the SeriesTol stop.
func katzStopL1(qOut float64) float64 {
	if qOut >= 1 {
		return SeriesTol
	}
	return math.Max(SeriesTol, KatzTailTol*(1-qOut)/qOut)
}

// katzStopInf is the L∞ counterpart of katzStopL1. It returns 0 (a stop
// that never fires; the L1 stop still applies) when qIn is vacuous, so
// an uncertified peak can never end the series early.
func katzStopInf(qIn float64) float64 {
	if qIn >= 1 {
		return 0
	}
	return math.Max(SeriesTol, KatzTailTol*(1-qIn)/qIn)
}

// katzDriftBound is the certified per-entry error a stopped series left
// behind — the tighter of its L1 and L∞ geometric tails. With no valid
// certificate it returns the whole budget, forcing a refresh next epoch.
func katzDriftBound(mass, linf, qOut, qIn float64) float64 {
	b := math.Inf(1)
	if qOut < 1 {
		b = mass * qOut / (1 - qOut)
	}
	if qIn < 1 {
		if b2 := linf * qIn / (1 - qIn); b2 < b {
			b = b2
		}
	}
	if math.IsInf(b, 1) {
		return KatzDriftBudget
	}
	return b
}

// katzFanBounds scans the active rows once for the maximal static out-
// and in-degree, the static part of the contraction factors above.
func katzFanBounds(csr *egraph.CSR) (maxOut, maxIn int) {
	for id := csr.Active.NextSet(0); id >= 0; id = csr.Active.NextSet(id + 1) {
		if d := len(csr.OutArcs(int32(id))); d > maxOut {
			maxOut = d
		}
		if d := len(csr.InArcs(int32(id))); d > maxIn {
			maxIn = d
		}
	}
	return maxOut, maxIn
}

// katzCorrect runs the sparse correction series over x in place. It
// reports the L1 norm and peak of the last folded term, the accumulated
// certified pruning loss, and whether the series attenuated under its
// certified stop within the same term budget as the full iteration
// (caller falls back to a recompute).
//
// Pruning: entries under pruneEps are folded into x but not propagated.
// The sub-series such an entry would have spawned is, per target entry,
// at most qIn·pruneEps/(1−qIn) — one αAᵀ application grows an L∞ bound
// by at most qIn — so each term that prunes anything adds pruneRate to
// the returned loss, which the caller charges to the drift ledger. This
// is what keeps the frontier delta-proportional: after a few hops the
// halo of a localised delta is certifiably too small to matter, and
// without pruning it would still grow to a large fraction of the graph.
func (m *Maintainer) katzCorrect(csr *egraph.CSR, consecutive bool, x []float64, dirty []int32,
	stopL1, stopInf, pruneEps, pruneRate float64) (float64, float64, float64, bool) {
	alpha := m.cfg.KatzAlpha
	n := int32(csr.N)
	dim := csr.Size()
	if cap(m.katzVal) < dim {
		m.katzVal = make([]float64, dim)
		m.katzVal2 = make([]float64, dim)
		m.katzMark = make([]int32, dim)
		m.markEpoch = 0
	}
	vals, nvals := m.katzVal[:dim], m.katzVal2[:dim]
	marks := m.katzMark[:dim]

	// Phase 1: gather every residual from the unmodified x.
	ids := make([]int32, 0, len(dirty))
	for _, id := range dirty {
		r := 1 + alpha*gatherOne(csr, consecutive, x, id) - x[id]
		if r != 0 {
			vals[id] = r
			ids = append(ids, id)
		}
	}
	// Phase 2: fold the term in, then propagate next = αA_newᵀ·term.
	var nids []int32
	var pruneLoss float64
	maxTerms := 10*csr.T + 100
	// Past this frontier size the sparse bookkeeping (dedup marks plus
	// the determinism sort) costs more than one dense kernel pass, so
	// the remaining terms iterate densely instead. On a well-mixing
	// graph a localised correction reaches the cutover within a few
	// hops; the early sparse terms are where the delta-proportional
	// saving lives, the dense tail is what the series still owes.
	denseCutover := dim / 4
	for k := 0; ; k++ {
		var mass, linf float64
		for _, id := range ids {
			x[id] += vals[id]
			a := math.Abs(vals[id])
			mass += a
			if a > linf {
				linf = a
			}
		}
		done := mass < stopL1 || linf < stopInf
		if done || k >= maxTerms {
			for _, id := range ids {
				vals[id] = 0
			}
			return mass, linf, pruneLoss, done
		}
		if len(ids) > denseCutover {
			dm, dl, ddone := m.katzCorrectDense(csr, consecutive, x, vals, nvals, k, maxTerms, stopL1, stopInf)
			return dm, dl, pruneLoss, ddone
		}
		m.markEpoch++
		e := m.markEpoch
		nids = nids[:0]
		pruned := false
		for _, id := range ids {
			v := vals[id]
			vals[id] = 0
			if v < pruneEps && v > -pruneEps {
				pruned = true
				continue
			}
			av := alpha * v
			for _, nb := range csr.OutArcs(id) {
				if marks[nb] != e {
					marks[nb] = e
					nvals[nb] = 0
					nids = append(nids, nb)
				}
				nvals[nb] += av
			}
			stamps, cv := csr.CausalArcs(id, true, consecutive)
			for _, s := range stamps {
				nb := s*n + cv
				if marks[nb] != e {
					marks[nb] = e
					nvals[nb] = 0
					nids = append(nids, nb)
				}
				nvals[nb] += av
			}
		}
		if pruned {
			pruneLoss += pruneRate
		}
		// Ascending-id scatter order keeps the series deterministic.
		slices.Sort(nids)
		ids, nids = nids, ids
		vals, nvals = nvals, vals
	}
}

// katzCorrectDense finishes a correction series whose frontier has
// outgrown sparse tracking: vals holds the current term densely (the
// entries named by ids, zero elsewhere, already folded into x) and each
// remaining term is one full gather pass — the same kernel shape as the
// verbatim recompute, minus its seed and allocation. Both scratch
// vectors are zeroed before returning, restoring katzCorrect's
// all-zero invariant.
func (m *Maintainer) katzCorrectDense(csr *egraph.CSR, consecutive bool, x, vals, nvals []float64,
	k, maxTerms int, stopL1, stopInf float64) (float64, float64, bool) {
	alpha := m.cfg.KatzAlpha
	dim := csr.Size()
	var mass, linf float64
	done := false
	for !done {
		k++
		if k > maxTerms {
			break
		}
		for id := 0; id < dim; id++ {
			if csr.ActPos[id] >= 0 {
				nvals[id] = alpha * gatherOne(csr, consecutive, vals, int32(id))
			} else {
				nvals[id] = 0
			}
		}
		// Clear the consumed term fully: in sparse mode only frontier
		// entries were ever non-zero, so a dense clear also erases them.
		for i := range vals {
			vals[i] = 0
		}
		vals, nvals = nvals, vals
		mass, linf = 0, 0
		for id := 0; id < dim; id++ {
			if vals[id] != 0 {
				x[id] += vals[id]
				a := math.Abs(vals[id])
				mass += a
				if a > linf {
					linf = a
				}
			}
		}
		done = mass < stopL1 || linf < stopInf
	}
	for i := range vals {
		vals[i] = 0
	}
	return mass, linf, done
}

// gatherOne is one row of rank's csrTMatVec: the score flowing into an
// active temporal node from its static in-neighbours and earlier
// active stamps.
func gatherOne(csr *egraph.CSR, consecutive bool, src []float64, id int32) float64 {
	var s float64
	for _, u := range csr.InArcs(id) {
		s += src[u]
	}
	stamps, v := csr.CausalArcs(id, false, consecutive)
	n := int32(csr.N)
	for _, t := range stamps {
		s += src[t*n+v]
	}
	return s
}
