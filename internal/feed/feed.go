// Package feed is the streaming change-feed subsystem of the query
// service (DESIGN.md §15): the push-based replacement for polling the
// X-Graph-Revision header. The serving layer publishes one record per
// revision swap — the compactor already knows the exact delta and the
// maintained-analytics diff per epoch — and subscribers receive framed
// events at epoch boundaries: revision publications, a temporal node's
// weak-component membership changes, or a node's Katz delta.
//
// Delivery is pull-paced with resumable cursors. The Hub keeps a
// bounded ring of recent epochs; a subscription is a cursor into that
// ring plus a derivation rule (Spec). Sub.Next blocks until an epoch
// past the cursor exists, derives the subscriber's events from it and
// advances. Backpressure is therefore structural: a slow consumer
// simply stops calling Next (the transport's write buffer is what
// stalls), the Hub never blocks a publisher, and memory is bounded by
// the ring — when a consumer falls so far behind that its next epoch
// has been evicted, it gets one Gap event naming the skipped revision
// range and resumes from the oldest retained epoch. A client that
// reconnects passes its last-seen revision as the cursor and replays
// anything the ring still holds — resume-from-cursor across revision
// swaps, tested in internal/server's transport suite.
package feed

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/egraph"
	"repro/internal/inc"
)

// Kind selects what a subscription watches.
type Kind uint8

const (
	// KindRevision streams one event per published revision — the
	// push-based form of watching X-Graph-Revision.
	KindRevision Kind = 1
	// KindComponents streams the weak-component membership of one
	// temporal node (Spec.Node, Spec.Stamp): an event per epoch whose
	// delta changed its canonical component label (and one initial
	// snapshot event so the subscriber knows the current label).
	// Requires the maintained-analytics pipeline.
	KindComponents Kind = 2
	// KindKatz streams one node's maintained Katz mass (the sum of its
	// temporal-node scores, allpairs mode): an event per epoch where it
	// moved. Requires the maintained-analytics pipeline.
	KindKatz Kind = 3
	// KindGap is never subscribed to; it is delivered inside any
	// stream whose cursor fell off the ring, naming the revision range
	// the subscriber missed.
	KindGap Kind = 4
)

// String returns the wire name of the kind.
func (k Kind) String() string {
	switch k {
	case KindRevision:
		return "revision"
	case KindComponents:
		return "components"
	case KindKatz:
		return "katz"
	case KindGap:
		return "gap"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// CursorLive subscribes from the current revision onward: no backfill,
// the first event is the next published epoch.
const CursorLive = math.MaxUint64

// Spec describes one subscription.
type Spec struct {
	Kind Kind
	// Node (and Stamp, for KindComponents) scope the node-level kinds.
	Node  int32
	Stamp int32
	// Cursor is the last revision the subscriber has already seen:
	// delivery starts strictly after it. CursorLive means "from now";
	// 0 means "everything the ring still holds".
	Cursor uint64
}

// Event is one change-feed record. Revision is always set; the other
// fields depend on Kind.
type Event struct {
	Kind     Kind   `json:"kind"`
	Revision uint64 `json:"revision"`

	// KindRevision: the published graph's shape.
	Nodes       int `json:"nodes,omitempty"`
	Stamps      int `json:"stamps,omitempty"`
	ActiveNodes int `json:"activeNodes,omitempty"`

	// KindComponents: the subscribed temporal node's canonical weak
	// component label after this epoch (-1 inactive) and before it.
	Node      int32 `json:"node,omitempty"`
	Stamp     int32 `json:"stamp,omitempty"`
	Component int32 `json:"component,omitempty"`
	Previous  int32 `json:"previous,omitempty"`

	// KindKatz: the node's maintained Katz mass and its change.
	Score float64 `json:"score,omitempty"`
	Delta float64 `json:"delta,omitempty"`

	// KindGap: revisions (FromRevision, Revision) were evicted before
	// the subscriber caught up; the stream resumes at Revision.
	FromRevision uint64 `json:"fromRevision,omitempty"`

	// At is the publish time of the epoch this event derives from —
	// zero for gap events, which have no single source epoch. It never
	// travels to clients (neither JSON nor EGWP); the serving layer
	// reads it to observe feed delivery lag at the moment it writes the
	// event to a subscriber.
	At time.Time `json:"-"`
}

// Epoch is one published revision swap, recorded by the serving layer.
// Results/Prev are the maintained analytics travelling with the new
// and previous snapshots (nil when no maintainer feeds the server);
// they are immutable, so retaining a few epochs costs only the
// analytics vectors, never a graph.
type Epoch struct {
	Revision    uint64
	Nodes       int
	Stamps      int
	ActiveNodes int
	At          time.Time
	Results     *inc.Results
	Prev        *inc.Results
}

// Options sizes a Hub. The zero value is usable.
type Options struct {
	// Ring bounds how many recent epochs are retained for cursor
	// resume (default 64). A subscriber lagging further receives a Gap
	// event and resumes from the oldest retained epoch.
	Ring int
}

// Hub fans published epochs out to subscriptions. Construct with
// NewHub; all methods are safe for concurrent use.
type Hub struct {
	mu     sync.Mutex
	cond   *sync.Cond
	ring   []Epoch // oldest first; len ≤ cap(ringCap)
	cap    int
	cur    uint64 // latest published revision (0 before the first)
	seeded bool
	closed bool

	published int64
	subs      int64
	active    int64
	gaps      int64
}

// NewHub returns a Hub retaining up to opts.Ring epochs.
func NewHub(opts Options) *Hub {
	if opts.Ring <= 0 {
		opts.Ring = 64
	}
	h := &Hub{cap: opts.Ring}
	h.cond = sync.NewCond(&h.mu)
	return h
}

// Publish records one revision swap and wakes every subscription.
// Publishers never block: delivery is pull-paced by each subscriber.
func (h *Hub) Publish(e Epoch) {
	if e.At.IsZero() {
		e.At = time.Now()
	}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.ring = append(h.ring, e)
	if len(h.ring) > h.cap {
		h.ring = h.ring[1:]
	}
	h.cur = e.Revision
	h.seeded = true
	h.published++
	h.mu.Unlock()
	h.cond.Broadcast()
}

// Close wakes every blocked subscriber with ErrHubClosed and rejects
// further publishes and subscribes.
func (h *Hub) Close() {
	h.mu.Lock()
	h.closed = true
	h.mu.Unlock()
	h.cond.Broadcast()
}

// ErrHubClosed reports that the Hub shut down under a blocked Next.
var ErrHubClosed = fmt.Errorf("feed: hub closed")

// Stats is a point-in-time snapshot of the Hub counters.
type Stats struct {
	Published     int64  `json:"published"`     // epochs recorded
	Subscriptions int64  `json:"subscriptions"` // total ever opened
	Active        int64  `json:"active"`        // currently open
	Gaps          int64  `json:"gaps"`          // gap events delivered
	Revision      uint64 `json:"revision"`      // latest published
	Retained      int    `json:"retained"`      // epochs in the ring
	Capacity      int    `json:"capacity"`      // ring capacity (occupancy = Retained/Capacity)
}

// Stats returns the current counters.
func (h *Hub) Stats() Stats {
	h.mu.Lock()
	defer h.mu.Unlock()
	return Stats{
		Published:     h.published,
		Subscriptions: h.subs,
		Active:        h.active,
		Gaps:          h.gaps,
		Revision:      h.cur,
		Retained:      len(h.ring),
		Capacity:      h.cap,
	}
}

// Sub is one subscription: an iterator over the events its Spec
// derives from published epochs. Next is not safe for concurrent use
// with itself; Close may race anything.
type Sub struct {
	h      *Hub
	spec   Spec
	cursor uint64 // events delivered through this revision
	primed bool   // node-scoped kinds: initial snapshot delivered
	// lastComp / lastScore track the subscribed node's state as of
	// cursor, so change detection survives ring eviction of the epoch
	// that set it.
	lastComp  int32
	lastScore float64
	queue     []Event // derived, not yet returned
	closed    bool
}

// Subscribe opens a subscription. The cursor in spec selects where the
// stream starts: CursorLive for "from now", a prior revision to resume
// after a disconnect, 0 to replay everything retained.
func (h *Hub) Subscribe(spec Spec) (*Sub, error) {
	switch spec.Kind {
	case KindRevision, KindComponents, KindKatz:
	default:
		return nil, fmt.Errorf("feed: cannot subscribe to kind %s", spec.Kind)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, ErrHubClosed
	}
	s := &Sub{h: h, spec: spec, cursor: spec.Cursor, lastComp: -1, lastScore: math.NaN()}
	if spec.Cursor == CursorLive {
		s.cursor = h.cur
		// A live node-scoped subscription still gets its snapshot event
		// from the newest retained epoch, so the subscriber learns the
		// current state without waiting for the next change.
		if len(h.ring) > 0 && spec.Kind != KindRevision {
			s.seedLocked(h.ring[len(h.ring)-1])
		}
	}
	h.subs++
	h.active++
	return s, nil
}

// seedLocked emits the initial snapshot event for a node-scoped
// subscription from epoch e (h.mu held).
func (s *Sub) seedLocked(e Epoch) {
	if e.Results == nil {
		return
	}
	switch s.spec.Kind {
	case KindComponents:
		comp := e.Results.ComponentOf(s.spec.Node, s.spec.Stamp)
		s.queue = append(s.queue, Event{
			Kind: KindComponents, Revision: e.Revision,
			Node: s.spec.Node, Stamp: s.spec.Stamp,
			Component: comp, Previous: comp,
		})
		s.lastComp = comp
		s.primed = true
	case KindKatz:
		score := katzMass(e.Results, s.spec.Node)
		s.queue = append(s.queue, Event{
			Kind: KindKatz, Revision: e.Revision,
			Node: s.spec.Node, Score: score,
		})
		s.lastScore = score
		s.primed = true
	}
}

// Next blocks until the subscription has an event, the context is
// cancelled, the Sub is closed, or the Hub shuts down. It returns
// events in revision order; a Gap event reports evicted revisions.
func (s *Sub) Next(ctx context.Context) (Event, error) {
	// A context cancellation must wake the cond wait; one watcher per
	// blocked Next keeps Close/cancel prompt without polling.
	stop := context.AfterFunc(ctx, func() { s.h.cond.Broadcast() })
	defer stop()

	s.h.mu.Lock()
	defer s.h.mu.Unlock()
	for {
		if len(s.queue) > 0 {
			e := s.queue[0]
			s.queue = s.queue[1:]
			return e, nil
		}
		if s.closed {
			return Event{}, ErrSubClosed
		}
		if s.h.closed {
			return Event{}, ErrHubClosed
		}
		if err := ctx.Err(); err != nil {
			return Event{}, err
		}
		s.deriveLocked()
		if len(s.queue) > 0 {
			continue
		}
		s.h.cond.Wait()
	}
}

// ErrSubClosed reports Next on a closed subscription.
var ErrSubClosed = fmt.Errorf("feed: subscription closed")

// Close detaches the subscription, waking a blocked Next.
func (s *Sub) Close() {
	s.h.mu.Lock()
	if !s.closed {
		s.closed = true
		s.h.active--
	}
	s.h.mu.Unlock()
	s.h.cond.Broadcast()
}

// Cursor returns the revision the stream has delivered through — the
// value to resubscribe with after a disconnect.
func (s *Sub) Cursor() uint64 {
	s.h.mu.Lock()
	defer s.h.mu.Unlock()
	return s.cursor
}

// deriveLocked advances the cursor through every retained epoch past
// it, queuing the subscriber's events (h.mu held).
func (s *Sub) deriveLocked() {
	h := s.h
	if len(h.ring) == 0 || h.cur <= s.cursor {
		return
	}
	// Published revisions are contiguous (+1 per swap, starting at 1),
	// so the epoch after the cursor was evicted exactly when cursor+1
	// precedes the oldest retained revision; cursor 0 against a ring
	// starting at 1 is a full replay, not a gap.
	if oldest := h.ring[0].Revision; s.cursor+1 < oldest {
		s.queue = append(s.queue, Event{
			Kind: KindGap, Revision: oldest - 1, FromRevision: s.cursor,
		})
		h.gaps++
		s.cursor = oldest - 1
	}
	for i := range h.ring {
		e := &h.ring[i]
		if e.Revision <= s.cursor {
			continue
		}
		s.deriveEpochLocked(e)
		s.cursor = e.Revision
	}
}

// deriveEpochLocked queues the events epoch e produces for this
// subscription (h.mu held).
func (s *Sub) deriveEpochLocked(e *Epoch) {
	switch s.spec.Kind {
	case KindRevision:
		s.queue = append(s.queue, Event{
			Kind: KindRevision, Revision: e.Revision,
			Nodes: e.Nodes, Stamps: e.Stamps, ActiveNodes: e.ActiveNodes,
			At: e.At,
		})
	case KindComponents:
		if e.Results == nil {
			return
		}
		comp := e.Results.ComponentOf(s.spec.Node, s.spec.Stamp)
		if !s.primed {
			s.seedFrom(e, comp)
			return
		}
		if comp != s.lastComp {
			s.queue = append(s.queue, Event{
				Kind: KindComponents, Revision: e.Revision,
				Node: s.spec.Node, Stamp: s.spec.Stamp,
				Component: comp, Previous: s.lastComp,
				At: e.At,
			})
			s.lastComp = comp
		}
	case KindKatz:
		if e.Results == nil {
			return
		}
		score := katzMass(e.Results, s.spec.Node)
		if !s.primed {
			s.primed = true
			s.lastScore = score
			s.queue = append(s.queue, Event{
				Kind: KindKatz, Revision: e.Revision, Node: s.spec.Node, Score: score,
				At: e.At,
			})
			return
		}
		if score != s.lastScore && !(math.IsNaN(score) && math.IsNaN(s.lastScore)) {
			s.queue = append(s.queue, Event{
				Kind: KindKatz, Revision: e.Revision,
				Node: s.spec.Node, Score: score, Delta: score - s.lastScore,
				At: e.At,
			})
			s.lastScore = score
		}
	}
}

// seedFrom primes a components subscription mid-stream (first epoch
// with maintained results past the cursor).
func (s *Sub) seedFrom(e *Epoch, comp int32) {
	s.primed = true
	s.lastComp = comp
	s.queue = append(s.queue, Event{
		Kind: KindComponents, Revision: e.Revision,
		Node: s.spec.Node, Stamp: s.spec.Stamp,
		Component: comp, Previous: comp,
	})
}

// katzMass is a node's maintained Katz mass: the sum of its
// temporal-node scores in allpairs mode, or NaN when the maintained
// vector is unavailable (diverged series). The change detector guards
// NaN→NaN explicitly since NaN never equals itself.
func katzMass(res *inc.Results, node int32) float64 {
	scores := res.KatzScores(egraph.CausalAllPairs)
	if scores == nil {
		return math.NaN()
	}
	// Temporal ids are t·N+node; the score vector length is n·t.
	n := res.Nodes()
	if n <= 0 || node < 0 || int(node) >= n {
		return math.NaN()
	}
	var sum float64
	for id := int(node); id < len(scores); id += n {
		sum += scores[id]
	}
	return sum
}
