package feed

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/egraph"
	"repro/internal/inc"
)

// publishN records revisions 1..n with trivial shape metadata.
func publishN(h *Hub, n int) {
	for i := 1; i <= n; i++ {
		h.Publish(Epoch{Revision: uint64(i), Nodes: 4, Stamps: 1, ActiveNodes: 4})
	}
}

// nextOrFail pulls one event with a short deadline.
func nextOrFail(t *testing.T, s *Sub) Event {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	e, err := s.Next(ctx)
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	return e
}

func TestRevisionStreamFromZero(t *testing.T) {
	h := NewHub(Options{})
	publishN(h, 3)
	s, err := h.Subscribe(Spec{Kind: KindRevision})
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	defer s.Close()
	for want := uint64(1); want <= 3; want++ {
		e := nextOrFail(t, s)
		if e.Kind != KindRevision || e.Revision != want {
			t.Fatalf("event %+v, want revision %d", e, want)
		}
		if e.Nodes != 4 || e.ActiveNodes != 4 {
			t.Fatalf("revision event lost shape: %+v", e)
		}
	}
	if got := s.Cursor(); got != 3 {
		t.Fatalf("Cursor = %d, want 3", got)
	}
}

func TestNextBlocksUntilPublish(t *testing.T) {
	h := NewHub(Options{})
	s, err := h.Subscribe(Spec{Kind: KindRevision, Cursor: CursorLive})
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	defer s.Close()

	got := make(chan Event, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		e, err := s.Next(ctx)
		if err == nil {
			got <- e
		}
	}()
	time.Sleep(20 * time.Millisecond) // let Next park on the cond
	h.Publish(Epoch{Revision: 1, Nodes: 2})
	select {
	case e := <-got:
		if e.Revision != 1 {
			t.Fatalf("woke with %+v", e)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("Next never woke after Publish")
	}
}

func TestCursorResume(t *testing.T) {
	h := NewHub(Options{})
	publishN(h, 5)
	// A reconnecting client passes its last-seen revision; delivery
	// resumes strictly after it.
	s, err := h.Subscribe(Spec{Kind: KindRevision, Cursor: 3})
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	defer s.Close()
	if e := nextOrFail(t, s); e.Revision != 4 {
		t.Fatalf("resume delivered revision %d, want 4", e.Revision)
	}
	if e := nextOrFail(t, s); e.Revision != 5 {
		t.Fatalf("resume delivered revision %d, want 5", e.Revision)
	}
}

func TestGapWhenCursorEvicted(t *testing.T) {
	h := NewHub(Options{Ring: 4})
	publishN(h, 10) // ring retains 7..10
	s, err := h.Subscribe(Spec{Kind: KindRevision, Cursor: 2})
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	defer s.Close()
	gap := nextOrFail(t, s)
	if gap.Kind != KindGap || gap.FromRevision != 2 || gap.Revision != 6 {
		t.Fatalf("gap event %+v, want (2, 6]", gap)
	}
	for want := uint64(7); want <= 10; want++ {
		if e := nextOrFail(t, s); e.Kind != KindRevision || e.Revision != want {
			t.Fatalf("post-gap event %+v, want revision %d", e, want)
		}
	}
	if h.Stats().Gaps != 1 {
		t.Fatalf("Gaps = %d, want 1", h.Stats().Gaps)
	}
}

func TestZeroCursorFullReplayIsNotAGap(t *testing.T) {
	h := NewHub(Options{Ring: 8})
	publishN(h, 3)
	s, _ := h.Subscribe(Spec{Kind: KindRevision, Cursor: 0})
	defer s.Close()
	if e := nextOrFail(t, s); e.Kind != KindRevision || e.Revision != 1 {
		t.Fatalf("first event %+v, want revision 1 (no gap)", e)
	}
}

func TestLiveCursorSkipsBackfill(t *testing.T) {
	h := NewHub(Options{})
	publishN(h, 4)
	s, _ := h.Subscribe(Spec{Kind: KindRevision, Cursor: CursorLive})
	defer s.Close()
	h.Publish(Epoch{Revision: 5})
	if e := nextOrFail(t, s); e.Revision != 5 {
		t.Fatalf("live subscription saw revision %d, want only 5", e.Revision)
	}
}

func TestSubscribeRejectsBadKind(t *testing.T) {
	h := NewHub(Options{})
	if _, err := h.Subscribe(Spec{Kind: KindGap}); err == nil {
		t.Fatalf("subscribing to KindGap should fail")
	}
	if _, err := h.Subscribe(Spec{Kind: Kind(99)}); err == nil {
		t.Fatalf("subscribing to unknown kind should fail")
	}
}

func TestHubCloseWakesSubscriber(t *testing.T) {
	h := NewHub(Options{})
	s, _ := h.Subscribe(Spec{Kind: KindRevision, Cursor: CursorLive})
	errc := make(chan error, 1)
	go func() {
		_, err := s.Next(context.Background())
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	h.Close()
	select {
	case err := <-errc:
		if err != ErrHubClosed {
			t.Fatalf("Next after Close: %v, want ErrHubClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("Close did not wake Next")
	}
	if _, err := h.Subscribe(Spec{Kind: KindRevision}); err != ErrHubClosed {
		t.Fatalf("Subscribe after Close: %v, want ErrHubClosed", err)
	}
}

func TestContextCancelWakesNext(t *testing.T) {
	h := NewHub(Options{})
	s, _ := h.Subscribe(Spec{Kind: KindRevision, Cursor: CursorLive})
	defer s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := s.Next(ctx)
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if err != context.Canceled {
			t.Fatalf("Next after cancel: %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("cancel did not wake Next")
	}
}

// maintained rolls a real maintainer through deltas, returning the
// epochs a serving layer would publish.
func maintained(t *testing.T, deltas [][]egraph.ArcDelta) []Epoch {
	t.Helper()
	b := egraph.NewBuilder(true)
	b.AddEdge(0, 1, 10)
	b.AddEdge(2, 3, 10)
	g := b.Build()
	m := inc.New(inc.Config{})
	res := m.Prime(g)
	epochs := []Epoch{{Revision: 1, Nodes: g.NumNodes(), Stamps: g.NumStamps(), Results: res}}
	for i, d := range deltas {
		ng := egraph.Patch(g, d)
		nres := m.Apply(g, ng, d)
		epochs = append(epochs, Epoch{
			Revision: uint64(i + 2),
			Nodes:    ng.NumNodes(), Stamps: ng.NumStamps(),
			Results: nres, Prev: res,
		})
		g, res = ng, nres
	}
	return epochs
}

func TestComponentChangeDetection(t *testing.T) {
	// Node 3 starts in component {2,3}; the second delta bridges the
	// two components, changing its canonical label.
	epochs := maintained(t, [][]egraph.ArcDelta{
		{{U: 3, V: 2, T: 10, W: 1}}, // internal arc: label unchanged
		{{U: 1, V: 2, T: 10, W: 1}}, // merge: label changes
	})
	h := NewHub(Options{})
	s, err := h.Subscribe(Spec{Kind: KindComponents, Node: 3, Stamp: 0})
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	defer s.Close()
	for _, e := range epochs {
		h.Publish(e)
	}

	first := nextOrFail(t, s)
	if first.Kind != KindComponents || first.Revision != 1 || first.Component != first.Previous {
		t.Fatalf("snapshot event %+v, want self-consistent prime at revision 1", first)
	}
	change := nextOrFail(t, s)
	if change.Revision != 3 {
		t.Fatalf("change event at revision %d, want 3 (internal arc must not emit)", change.Revision)
	}
	if change.Component == change.Previous || change.Previous != first.Component {
		t.Fatalf("change event %+v inconsistent with snapshot %+v", change, first)
	}
	if got := s.Cursor(); got != 3 {
		t.Fatalf("Cursor = %d, want 3", got)
	}
}

func TestKatzChangeDetection(t *testing.T) {
	epochs := maintained(t, [][]egraph.ArcDelta{
		{{U: 1, V: 2, T: 10, W: 1}}, // new arc into node 2 moves its mass
	})
	h := NewHub(Options{})
	s, err := h.Subscribe(Spec{Kind: KindKatz, Node: 2})
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	defer s.Close()
	for _, e := range epochs {
		h.Publish(e)
	}
	prime := nextOrFail(t, s)
	if prime.Kind != KindKatz || prime.Revision != 1 || prime.Delta != 0 {
		t.Fatalf("prime event %+v, want delta-free snapshot at revision 1", prime)
	}
	move := nextOrFail(t, s)
	if move.Revision != 2 || move.Delta == 0 {
		t.Fatalf("move event %+v, want nonzero delta at revision 2", move)
	}
	if got := move.Score - (prime.Score + move.Delta); got > 1e-12 || got < -1e-12 {
		t.Fatalf("score %v != previous %v + delta %v", move.Score, prime.Score, move.Delta)
	}
}

func TestLiveNodeScopedSeedsFromNewestEpoch(t *testing.T) {
	epochs := maintained(t, nil)
	h := NewHub(Options{})
	h.Publish(epochs[0])
	s, err := h.Subscribe(Spec{Kind: KindComponents, Node: 0, Stamp: 0, Cursor: CursorLive})
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	defer s.Close()
	e := nextOrFail(t, s)
	if e.Kind != KindComponents || e.Revision != 1 || e.Component != e.Previous {
		t.Fatalf("live seed event %+v, want current-state snapshot", e)
	}
}

// TestConcurrentPublishSubscribe drives many publishers' worth of
// epochs against several subscribers — the pull-paced delivery and the
// single Hub lock are what -race exercises here.
func TestConcurrentPublishSubscribe(t *testing.T) {
	h := NewHub(Options{Ring: 16})
	const revs = 200
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		s, err := h.Subscribe(Spec{Kind: KindRevision})
		if err != nil {
			t.Fatalf("Subscribe: %v", err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer s.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			last := uint64(0)
			for last < revs {
				e, err := s.Next(ctx)
				if err != nil {
					t.Errorf("Next: %v", err)
					return
				}
				// Revision order must be strictly increasing; a gap
				// event fast-forwards past evicted epochs.
				if e.Revision <= last {
					t.Errorf("revision went backwards: %d after %d", e.Revision, last)
					return
				}
				last = e.Revision
			}
		}()
	}
	go publishN(h, revs)
	wg.Wait()
	if st := h.Stats(); st.Published != revs || st.Active != 0 {
		t.Fatalf("Stats = %+v, want %d published, 0 active", st, revs)
	}
}
